/**
 * @file
 * Figure 11: memory access analysis — 10 MB sequential access under
 * the five activities (Vanilla, Remote-access-Origin, RaO-No-Cold,
 * Origin-access-Remote, OaR-No-Cold), for Popcorn-SHM and for
 * Stramash on each memory model.
 *
 * Paper shapes:
 *  - Stramash(Shared) outperforms SHM on cold cases (up to 2.5x);
 *    FullyShared up to 4.5x;
 *  - SHM's No-Cold cases approach Vanilla (replicas are local);
 *  - Stramash's No-Cold cases stay slower on Shared/Separated — no
 *    replication means evicted lines reload from remote memory.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stramash/workloads/microbench.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

Cycles
run(OsDesign design, MemoryModel model, MemAccessCase c, Addr bytes)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = model;
    cfg.transport = Transport::SharedMemory;
    System sys(cfg);
    return runMemAccessCase(sys, c, bytes);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Figure 11: memory access analysis (10 MB "
                "sequential) ===\n\n");

    const Addr bytes = 10 * 1024 * 1024;
    const std::vector<MemAccessCase> cases{
        MemAccessCase::Vanilla,
        MemAccessCase::RemoteAccessOrigin,
        MemAccessCase::RemoteAccessOriginNoCold,
        MemAccessCase::OriginAccessRemote,
        MemAccessCase::OriginAccessRemoteNoCold,
    };

    struct Row
    {
        std::string label;
        OsDesign design;
        MemoryModel model;
    };
    const std::vector<Row> rows{
        {"Popcorn-SHM (Shared)", OsDesign::MultipleKernel,
         MemoryModel::Shared},
        {"Stramash Separated", OsDesign::FusedKernel,
         MemoryModel::Separated},
        {"Stramash Shared", OsDesign::FusedKernel,
         MemoryModel::Shared},
        {"Stramash FullyShared", OsDesign::FusedKernel,
         MemoryModel::FullyShared},
    };

    Cycles vanillaRef = run(OsDesign::FusedKernel,
                            MemoryModel::Shared,
                            MemAccessCase::Vanilla, bytes);

    Table tab({"config", "Vanilla", "RaO", "RaO-NC", "OaR",
               "OaR-NC"});
    double shmRao = 0, stramashSharedRao = 0, stramashFullyRao = 0;
    double shmRaoNc = 0, stramashSharedRaoNc = 0;
    for (const auto &row : rows) {
        std::vector<std::string> cells{row.label};
        for (auto c : cases) {
            Cycles v = run(row.design, row.model, c, bytes);
            double norm = static_cast<double>(v) /
                          static_cast<double>(vanillaRef);
            cells.push_back(Table::num(norm));
            if (c == MemAccessCase::RemoteAccessOrigin) {
                if (row.label.find("SHM") != std::string::npos)
                    shmRao = norm;
                if (row.label == "Stramash Shared")
                    stramashSharedRao = norm;
                if (row.label == "Stramash FullyShared")
                    stramashFullyRao = norm;
            }
            if (c == MemAccessCase::RemoteAccessOriginNoCold) {
                if (row.label.find("SHM") != std::string::npos)
                    shmRaoNc = norm;
                if (row.label == "Stramash Shared")
                    stramashSharedRaoNc = norm;
            }
        }
        tab.addRow(cells);
    }
    tab.print();
    std::printf("  (all values normalised to Vanilla; lower is "
                "better)\n\n");

    std::printf("Shape checks vs the paper:\n");
    check(shmRao / stramashSharedRao > 1.3,
          "cold RaO: Stramash(Shared) beats SHM (paper: up to 2.5x) "
          "— measured " +
              Table::num(shmRao / stramashSharedRao) + "x");
    check(shmRao / stramashFullyRao > stramashSharedRao /
                                          stramashFullyRao &&
              shmRao / stramashFullyRao > 2.0,
          "cold RaO: Stramash(FullyShared) gains the most (paper: "
          "up to 4.5x) — measured " +
              Table::num(shmRao / stramashFullyRao) + "x");
    check(shmRaoNc < 3.0,
          "No-Cold: SHM replicas make warm access near-local "
          "(paper: ~vanilla) — measured " +
              Table::num(shmRaoNc) + "x vanilla");
    check(stramashSharedRaoNc > shmRaoNc,
          "No-Cold: Stramash(Shared) stays slower than warm SHM "
          "(the replication trade-off takeaway)");
    return checksExitCode();
}
