/**
 * @file
 * Figure 7: icount validation — the icount-based timing model
 * (fixed non-memory IPC, perf-aligned, plus Cache-plugin feedback on
 * the simulated geometry) against the higher-fidelity bare-metal
 * reference of each physical machine (its *own* cache configuration
 * and out-of-order stall overlap).
 *
 * The paper reports relative errors always below 13% and about 4%
 * on average across NPB benchmarks on the small and big machine
 * pairs; this harness reproduces the methodology and the error band.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stramash/cache/coherence.hh"
#include "stramash/sim/baremetal_ref.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

/**
 * The icount model's single stall-overlap calibration constant —
 * the analogue of the paper's alignment of icount data with native
 * perf measurements. One global value for all machines and
 * benchmarks (no per-experiment tuning).
 */
constexpr double icountStallExposure = 0.91;

/** Replay a trace through a reference machine. */
Cycles
replayReference(const Trace &trace, const BareMetalConfig &cfg)
{
    BareMetalRef ref(cfg);
    for (const auto &op : trace.ops) {
        if (op.isRetire) {
            ref.retire(op.count);
            continue;
        }
        Addr first = lineBase(op.addr);
        Addr last = lineBase(op.addr + (op.size ? op.size - 1 : 0));
        for (Addr a = first; a <= last; a += cacheLineSize)
            ref.access(op.type, a);
    }
    return ref.counters().cycles;
}

/**
 * Replay through the Stramash-QEMU icount model: perf-aligned base
 * IPC plus serial Cache-plugin feedback (simulated 4 MiB geometry)
 * for everything beyond the L1.
 */
Cycles
replayIcount(const Trace &trace, const BareMetalConfig &machine)
{
    PhysMap map = PhysMap::paperDefault(MemoryModel::FullyShared);
    CoherenceDomain domain(map, SnoopCosts{});
    auto geom = HierarchyGeometry::paperDefault(4 * 1024 * 1024);
    const LatencyProfile &prof = latencyProfile(machine.core);
    if (prof.l3 == 0)
        geom.l3.sizeBytes = 0; // Cortex-A72: no L3 (Table 2 "*")
    domain.addNode(0, geom, prof);

    double cycles = 0.0;
    for (const auto &op : trace.ops) {
        if (op.isRetire) {
            // "We align these native perf results with the Stramash
            // icount data": the non-memory IPC comes from perf.
            cycles += static_cast<double>(op.count) * machine.baseCpi;
            continue;
        }
        Addr first = lineBase(op.addr);
        Addr last = lineBase(op.addr + (op.size ? op.size - 1 : 0));
        for (Addr a = first; a <= last; a += cacheLineSize) {
            AccessResult r = domain.accessLine(0, op.type, a);
            if (r.level != HitLevel::L1)
                cycles += static_cast<double>(r.latency) *
                          icountStallExposure;
        }
    }
    return static_cast<Cycles>(cycles);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Figure 7: icount validation against bare-metal "
                "references ===\n\n");

    const std::vector<BareMetalConfig> machines{
        BareMetalConfig::smallX86(), BareMetalConfig::smallArm(),
        BareMetalConfig::bigX86(), BareMetalConfig::bigArm()};

    Table tab({"bench", "machine", "perf cycles(M)",
               "icount cycles(M)", "error"});

    double errSum = 0.0, errMax = 0.0;
    int cells = 0;
    for (const auto &kernel : npbKernelNames()) {
        Trace trace = captureNpbTrace(kernel, 1024 * 1024, 2);
        for (const auto &m : machines) {
            Cycles ref = replayReference(trace, m);
            Cycles icount = replayIcount(trace, m);
            double err =
                std::abs(static_cast<double>(icount) -
                         static_cast<double>(ref)) /
                static_cast<double>(ref);
            tab.addRow({kernel, m.name,
                        Table::num(static_cast<double>(ref) / 1e6),
                        Table::num(
                            static_cast<double>(icount) / 1e6),
                        Table::num(err * 100.0, 1) + "%"});
            errSum += err;
            errMax = std::max(errMax, err);
            ++cells;
        }
    }
    tab.print();
    double avg = errSum / cells;
    std::printf("\n  average error %.1f%%, max error %.1f%%\n\n",
                avg * 100.0, errMax * 100.0);

    std::printf("Shape checks vs the paper:\n");
    check(errMax < 0.13,
          "relative error always below 13% (paper Fig. 7)");
    check(avg < 0.06,
          "average error in the paper's ~4% band (measured " +
              Table::num(avg * 100.0, 1) + "%)");
    return checksExitCode();
}
