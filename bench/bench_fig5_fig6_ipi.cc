/**
 * @file
 * Figures 5 and 6: IPI latency characterisation on the four
 * reference machines (per-core-pair latency matrices, RDTSC +
 * MONITOR/MWAIT methodology in the paper). The big-machine averages
 * of ~2 us justify the simulated cross-ISA IPI cost (§9.1.1).
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stramash/sim/ipi_topology.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

void
printMatrixSummary(const IpiTopologyModel &m)
{
    auto mat = m.latencyMatrixNs(16, 2025);
    std::printf("--- %s (%u cores) ---\n", m.name.c_str(),
                m.numCores);

    // Print the top-left corner like the paper's heatmaps; big
    // machines get a condensed 8x8 view.
    unsigned show = std::min(m.numCores, 8u);
    std::printf("  from\\to ");
    for (unsigned t = 0; t < show; ++t)
        std::printf("%7u", t);
    std::printf("\n");
    for (unsigned f = 0; f < show; ++f) {
        std::printf("  %7u ", f);
        for (unsigned t = 0; t < show; ++t)
            std::printf("%7.0f", mat[f][t]);
        std::printf("\n");
    }

    double mean = IpiTopologyModel::meanOffDiagonalNs(mat);
    double minV = 1e30, maxV = 0;
    for (unsigned f = 0; f < m.numCores; ++f) {
        for (unsigned t = 0; t < m.numCores; ++t) {
            if (f == t)
                continue;
            minV = std::min(minV, mat[f][t]);
            maxV = std::max(maxV, mat[f][t]);
        }
    }
    std::printf("  mean %.0f ns   min %.0f ns   max %.0f ns\n\n",
                mean, minV, maxV);
}

double
meanNs(const IpiTopologyModel &m)
{
    return IpiTopologyModel::meanOffDiagonalNs(
        m.latencyMatrixNs(16, 2025));
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Figures 5 & 6: IPI latency matrices (ns) "
                "===\n\n");

    printMatrixSummary(IpiTopologyModel::smallArm());
    printMatrixSummary(IpiTopologyModel::bigArm());
    printMatrixSummary(IpiTopologyModel::smallX86());
    printMatrixSummary(IpiTopologyModel::bigX86());

    double bigArm = meanNs(IpiTopologyModel::bigArm());
    double bigX86 = meanNs(IpiTopologyModel::bigX86());

    std::printf("Shape checks vs the paper:\n");
    check(bigArm > 1500 && bigArm < 2600,
          "big_Arm mean ~2 us (" + Table::num(bigArm / 1000.0) +
              " us) — the adopted cross-ISA IPI cost");
    check(bigX86 > 1500 && bigX86 < 2600,
          "big_x86 mean ~2 us (" + Table::num(bigX86 / 1000.0) +
              " us)");
    check(meanNs(IpiTopologyModel::smallArm()) < bigArm,
          "small machines have lower IPI latency than big ones");
    return checksExitCode();
}
