/**
 * @file
 * Scheduler benchmark: work stealing under Zipfian-skewed load, and
 * the cost asymmetry of the two steal paths.
 *
 * Sweep: N in {2, 4, 8} alternating x86/Arm nodes, both OS designs,
 * stealing on vs off. Work items land on the node their Zipfian-
 * scrambled key hashes to, so a few nodes take most of the work;
 * static placement leaves the other nodes idle while the hot node
 * grinds, stealing rebalances at every epoch barrier. Throughput is
 * items per simulated megacycle of max-node runtime — deterministic,
 * so the committed baseline gates it in CI.
 *
 * The steal-cost microsection runs with the cache plugin live and
 * measures one batch steal end to end in each design:
 *
 *   - fused: no messages; the cost is coherent cache traffic, and the
 *     snoop-filter counters must show the lines moving.
 *   - Popcorn: a StealRequest/StealResponse round-trip through the
 *     transport; the message counter must show it.
 *
 * Cost metrics are emitted as higher-is-better values (items per
 * kilocycle, Popcorn/fused cost ratio) so the regression checker's
 * floor semantics apply cleanly.
 *
 * A final sweep re-runs the 8-node fused stealing case on 1, 2 and 4
 * host threads and asserts the full fingerprint (runtime, per-node
 * clocks, executed count, steal counters) is bit-identical: steals
 * only happen at serial epoch barriers, so the thread count must not
 * be observable.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/bench_util.hh"
#include "stramash/load/keydist.hh"
#include "stramash/sched/scheduler.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

constexpr std::uint64_t kItems = 1200;
constexpr std::uint64_t kItemWeight = 20000;
constexpr std::uint64_t kItemInstructions = 4000;

const char *
designName(OsDesign d)
{
    return d == OsDesign::FusedKernel ? "fused" : "popcorn";
}

SchedConfig
sweepSchedConfig(bool stealing)
{
    SchedConfig sc;
    sc.stealing = stealing;
    // Small blocks = frequent barriers = frequent steal rounds.
    sc.runBlock = 16;
    sc.stealBatch = 8;
    return sc;
}

/** Submit the Zipfian-placed item stream (identical for every
 *  configuration at a given node count). */
void
submitSkewed(Scheduler &sched, System &sys, std::size_t nodes)
{
    KeyChooser keys(KeyDistConfig::zipfian(4096, 0.99, 17));
    for (std::uint64_t i = 0; i < kItems; ++i) {
        NodeId target = static_cast<NodeId>(keys.next() % nodes);
        WorkItem item;
        item.tag = i;
        item.weight = kItemWeight;
        item.footprintBytes = 4096;
        item.fn = [&sys](NodeId node) {
            sys.machine().retire(node, kItemInstructions);
            sys.machine().stall(node, kItemWeight);
        };
        sched.submitTo(target, std::move(item));
    }
}

struct SweepResult
{
    double itemsPerMcycle = 0.0;
    Cycles spent = 0;
    std::uint64_t steals = 0;
    std::uint64_t stolenItems = 0;
    bool drained = false;
};

SweepResult
runSweep(OsDesign design, std::size_t nodes, bool stealing)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.topology = TopologySpec::alternating(nodes, MemoryModel::Shared);
    System sys(cfg);

    Scheduler sched(sys, sweepSchedConfig(stealing));
    submitSkewed(sched, sys, nodes);
    Cycles spent = sched.runToIdle();

    SweepResult r;
    r.spent = spent;
    r.itemsPerMcycle = spent ? static_cast<double>(kItems) /
                                   (static_cast<double>(spent) / 1e6)
                             : 0.0;
    r.steals = sched.stats().value("steals_succeeded");
    r.stolenItems = sched.stats().value("steal_items");
    r.drained = sched.totalQueued() == 0 &&
                sched.itemsExecuted() == kItems;
    return r;
}

// ---- steal-cost microsection (cache plugin live) -------------------

struct StealCost
{
    /** Total cycles (all nodes) one batch steal cost. */
    double cyclesPerItem = 0.0;
    std::uint64_t messages = 0;
    /** Cross-node coherence activity the steal produced. */
    std::uint64_t coherenceDelta = 0;
};

std::uint64_t
coherenceTotal(System &sys)
{
    std::uint64_t total = 0;
    Machine &m = sys.machine();
    for (NodeId n = 0; n < m.nodeCount(); ++n) {
        StatGroup &cs = m.caches().nodeStats(n);
        total += cs.value("snoop_datas");
        total += cs.value("snoop_invalidates");
        total += cs.value("remote_mem_hits");
        total += cs.value("remote_shared_mem_hits");
    }
    return total;
}

std::uint64_t
cycleTotal(System &sys)
{
    std::uint64_t total = 0;
    for (NodeId n = 0; n < sys.machine().nodeCount(); ++n)
        total += sys.machine().node(n).cycles();
    return total;
}

StealCost
measureStealCost(OsDesign design)
{
    constexpr unsigned kBatch = 8;
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = true;
    cfg.topology = TopologySpec::alternating(4, MemoryModel::Shared);
    System sys(cfg);

    // No executor session here: the cache plugin's counters are only
    // safe on the direct (sequential) charge path.
    Scheduler sched(sys, sweepSchedConfig(true));

    std::uint64_t cyc0 = cycleTotal(sys);
    std::uint64_t msg0 = sys.messagesSent();
    std::uint64_t coh0 = coherenceTotal(sys);
    unsigned got = sched.chargeStealPath(/*thief=*/1, /*victim=*/0,
                                         kBatch);

    StealCost c;
    c.cyclesPerItem = got ? static_cast<double>(cycleTotal(sys) - cyc0) /
                                static_cast<double>(got)
                          : 0.0;
    c.messages = sys.messagesSent() - msg0;
    c.coherenceDelta = coherenceTotal(sys) - coh0;
    return c;
}

// ---- host-thread bit-identity --------------------------------------

struct HostFingerprint
{
    Cycles spent = 0;
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t stolenItems = 0;
    std::vector<std::uint64_t> perNode;

    bool
    operator==(const HostFingerprint &o) const
    {
        return spent == o.spent && executed == o.executed &&
               steals == o.steals && stolenItems == o.stolenItems &&
               perNode == o.perNode;
    }
};

HostFingerprint
runThreaded(unsigned threads)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.topology = TopologySpec::alternating(8, MemoryModel::Shared);
    cfg.hostThreads = threads;
    System sys(cfg);

    Scheduler sched(sys, sweepSchedConfig(true));
    submitSkewed(sched, sys, 8);

    HostFingerprint fp;
    fp.spent = sched.runToIdle();
    fp.executed = sched.itemsExecuted();
    fp.steals = sched.stats().value("steals_succeeded");
    fp.stolenItems = sched.stats().value("steal_items");
    Machine &m = sys.machine();
    for (NodeId n = 0; n < m.nodeCount(); ++n) {
        fp.perNode.push_back(m.node(n).cycles());
        fp.perNode.push_back(m.node(n).icount());
    }
    return fp;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string jsonPath = "BENCH_sched.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }

    std::printf("=== Scheduler: Zipfian-skewed load, stealing on/off "
                "(%llu items, weight %llu cycles) ===\n\n",
                static_cast<unsigned long long>(kItems),
                static_cast<unsigned long long>(kItemWeight));

    const std::size_t nodeCounts[] = {2, 4, 8};
    const OsDesign designs[] = {OsDesign::FusedKernel,
                                OsDesign::MultipleKernel};

    Table tab({"design", "nodes", "static it/Mcyc", "steal it/Mcyc",
               "speedup", "steals", "stolen"});
    std::vector<std::pair<std::string, double>> metrics;
    std::map<std::string, std::map<std::size_t, double>> speedups;
    bool allDrained = true;

    for (OsDesign d : designs) {
        for (std::size_t n : nodeCounts) {
            SweepResult stat = runSweep(d, n, false);
            SweepResult steal = runSweep(d, n, true);
            allDrained &= stat.drained && steal.drained;
            double speedup = stat.itemsPerMcycle > 0
                                 ? steal.itemsPerMcycle /
                                       stat.itemsPerMcycle
                                 : 0.0;
            speedups[designName(d)][n] = speedup;
            tab.addRow({designName(d), std::to_string(n),
                        Table::num(stat.itemsPerMcycle, 2),
                        Table::num(steal.itemsPerMcycle, 2),
                        Table::num(speedup, 2) + "x",
                        std::to_string(steal.steals),
                        std::to_string(steal.stolenItems)});
            std::string prefix = std::string(designName(d)) + ".n" +
                                 std::to_string(n);
            metrics.emplace_back(prefix + ".static_items_per_mcycle",
                                 stat.itemsPerMcycle);
            metrics.emplace_back(prefix + ".steal_items_per_mcycle",
                                 steal.itemsPerMcycle);
            metrics.emplace_back(prefix + ".steal_speedup", speedup);
        }
    }
    tab.print();
    std::printf("\n");

    check(allDrained, "every configuration drains all items exactly "
                      "once");
    check(speedups["fused"][8] >= 1.3,
          "fused 8-node stealing >= 1.3x static placement under "
          "skewed load (got " +
              Table::num(speedups["fused"][8], 2) + "x)");
    check(speedups["popcorn"][8] > 1.0,
          "popcorn stealing still wins at 8 nodes despite RPC cost");

    // ---- steal path cost (cache plugin live) ----
    StealCost fusedCost = measureStealCost(OsDesign::FusedKernel);
    StealCost popCost = measureStealCost(OsDesign::MultipleKernel);
    std::printf("steal path, one 8-item batch (4-node, cache "
                "plugin on):\n");
    std::printf("  fused:   %7.1f cyc/item, %llu messages, "
                "%llu coherence events\n",
                fusedCost.cyclesPerItem,
                static_cast<unsigned long long>(fusedCost.messages),
                static_cast<unsigned long long>(
                    fusedCost.coherenceDelta));
    std::printf("  popcorn: %7.1f cyc/item, %llu messages, "
                "%llu coherence events\n\n",
                popCost.cyclesPerItem,
                static_cast<unsigned long long>(popCost.messages),
                static_cast<unsigned long long>(
                    popCost.coherenceDelta));

    check(fusedCost.messages == 0,
          "fused steal sends no messages (coherent memory only)");
    check(fusedCost.coherenceDelta > 0,
          "fused steal is visible in the snoop/remote-access "
          "counters (the queue lines actually moved)");
    check(popCost.messages >= 2,
          "popcorn steal pays the request/response message pair");
    check(popCost.cyclesPerItem > fusedCost.cyclesPerItem,
          "fused steal cost per item is below popcorn's (" +
              Table::num(fusedCost.cyclesPerItem, 1) + " vs " +
              Table::num(popCost.cyclesPerItem, 1) + ")");
    double costRatio = fusedCost.cyclesPerItem > 0
                           ? popCost.cyclesPerItem /
                                 fusedCost.cyclesPerItem
                           : 0.0;
    metrics.emplace_back("steal_cost_ratio_popcorn_over_fused",
                         costRatio);
    metrics.emplace_back("fused.steal_items_per_kcycle",
                         fusedCost.cyclesPerItem > 0
                             ? 1000.0 / fusedCost.cyclesPerItem
                             : 0.0);
    metrics.emplace_back("popcorn.steal_items_per_kcycle",
                         popCost.cyclesPerItem > 0
                             ? 1000.0 / popCost.cyclesPerItem
                             : 0.0);

    // ---- host-thread bit-identity ----
    HostFingerprint fp1 = runThreaded(1);
    HostFingerprint fp2 = runThreaded(2);
    HostFingerprint fp4 = runThreaded(4);
    std::printf("8-node fused stealing run: %llu cycles, %llu "
                "steals (%llu items) — thread sweep {1,2,4}\n\n",
                static_cast<unsigned long long>(fp1.spent),
                static_cast<unsigned long long>(fp1.steals),
                static_cast<unsigned long long>(fp1.stolenItems));
    check(fp1 == fp2 && fp1 == fp4,
          "stealing run is bit-identical across host thread counts "
          "{1, 2, 4} (barrier-serial steals)");
    check(fp1.steals > 0,
          "the bit-identity sweep actually exercised stealing");

    check(writeBenchJson(jsonPath, metrics), "wrote " + jsonPath);
    return checksExitCode();
}
