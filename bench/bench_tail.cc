/**
 * @file
 * Open-loop tail-latency characterisation of the sharded kv-store
 * service loop: throughput vs p50/p99/p999 for both OS designs at
 * N in {2, 4, 8} alternating x86/Arm nodes.
 *
 * Each (design, N) pair is first calibrated with a closed-loop run
 * to find its service capacity, then swept with seeded Poisson
 * arrivals at 0.5x, 0.8x and 1.15x that capacity through the
 * KvFrontEnd (batching + admission control + per-node hot-key
 * cache). The 0.8x point is the "highest stable rate" of the
 * acceptance gates: below saturation, so latency is meaningful, but
 * loaded enough that queueing shows. The 1.15x point drives the loop
 * past capacity to show bounded queues + admission shedding instead
 * of open-loop queueing collapse.
 *
 * Gate metrics are higher-is-better by construction (goodput, and
 * inverse p99 = 1e9 / p99 cycles) so the regression checker's
 * one-sided tolerance works; the raw latency curves live under the
 * non-numeric "curves" key, which the checker ignores.
 *
 * Functional-mode (cache plugin off), all timing in simulated
 * cycles: identical seeds reproduce bit-identical curves on any
 * host. Emits BENCH_tail.json (override with --json <path>).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_util.hh"
#include "stramash/load/engine.hh"
#include "stramash/load/parallel_service.hh"
#include "stramash/sim/parallel_executor.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

constexpr std::uint64_t kSeed = 42;
constexpr std::size_t kRequests = 2500;

struct Point
{
    double ratePerMcycle = 0.0;
    OpenLoopReport rep;
    bool verified = false;
};

/** Closed-loop capacity (requests per Mcycle) for one config. */
double
calibrate(OsDesign design, std::size_t nodes)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.topology = TopologySpec::alternating(nodes, MemoryModel::Shared);
    System sys(cfg);

    ShardedKvStore store(sys);
    store.populate();
    const std::uint64_t requests = 2000;
    Cycles spent = store.run(requests);
    return spent ? static_cast<double>(requests) /
                       (static_cast<double>(spent) / 1e6)
                 : 0.0;
}

Point
runPoint(OsDesign design, std::size_t nodes, double ratePerMcycle,
         bool hotKeyCache)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.topology = TopologySpec::alternating(nodes, MemoryModel::Shared);
    System sys(cfg);

    ShardedKvStore store(sys);
    store.populate();

    ServiceConfig sc;
    sc.hotKeyCache = hotKeyCache;
    KvFrontEnd fe(sys, store, sc);

    OpenLoopConfig oc;
    oc.arrival = ArrivalConfig::poisson(ratePerMcycle, kSeed);
    oc.keys = KeyDistConfig::zipfian(store.keySpace(), 0.99, kSeed + 1);
    oc.requests = kRequests;
    oc.seed = kSeed + 2;

    Point p;
    p.ratePerMcycle = ratePerMcycle;
    p.rep = OpenLoopEngine(oc).run(fe);
    p.verified = store.verify();
    return p;
}

const char *
designName(OsDesign d)
{
    return d == OsDesign::FusedKernel ? "fused" : "popcorn";
}

/** One host-parallel tail run: its report, per-node clocks and the
 *  wall-clock milliseconds the service loop itself took. */
struct ParallelPoint
{
    OpenLoopReport rep;
    std::vector<Cycles> perNode;
    double wallMs = 0.0;
};

/** The 8-node fused open-loop point served by ParallelKvService on
 *  @p threads host lanes (its report must be thread-count
 *  invariant; the wall clock is what varies). */
ParallelPoint
runParallelPoint(double ratePerMcycle, unsigned threads)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.topology = TopologySpec::alternating(8, MemoryModel::Shared);
    cfg.hostThreads = threads;
    System sys(cfg);

    ShardedKvStore store(sys);
    store.populate();
    ParallelKvService service(sys, store);

    OpenLoopConfig oc;
    oc.arrival = ArrivalConfig::poisson(ratePerMcycle, kSeed);
    oc.keys = KeyDistConfig::zipfian(store.keySpace(), 0.99, kSeed + 1);
    oc.requests = kRequests;
    oc.seed = kSeed + 2;

    ParallelPoint p;
    auto t0 = std::chrono::steady_clock::now();
    p.rep = service.run(oc, sys.hostExecutor());
    auto t1 = std::chrono::steady_clock::now();
    p.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (NodeId n = 0; n < sys.machine().nodeCount(); ++n)
        p.perNode.push_back(sys.machine().node(n).cycles());
    return p;
}

bool
sameReport(const OpenLoopReport &a, const OpenLoopReport &b)
{
    return a.offered == b.offered && a.accepted == b.accepted &&
           a.shed == b.shed && a.served == b.served &&
           a.batches == b.batches && a.cacheHits == b.cacheHits &&
           a.cacheStale == b.cacheStale &&
           a.cacheMisses == b.cacheMisses &&
           a.invalidationsSent == b.invalidationsSent &&
           a.coherentInvalidations == b.coherentInvalidations &&
           a.meanLatency == b.meanLatency && a.p50 == b.p50 &&
           a.p99 == b.p99 && a.p999 == b.p999 &&
           a.lastCompletion == b.lastCompletion &&
           a.lastArrival == b.lastArrival;
}

/** BENCH_tail.json: flat gate metrics + a nested "curves" object
 *  (non-numeric at top level, so the regression checker skips it). */
bool
writeTailJson(
    const std::string &path,
    const std::vector<std::pair<std::string, double>> &metrics,
    const std::map<std::string,
                   std::map<std::size_t, std::vector<Point>>> &curves)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "{\n");
    for (const auto &[name, value] : metrics)
        std::fprintf(f, "  \"%s\": %.6f,\n", name.c_str(), value);
    std::fprintf(f, "  \"curves\": {");
    bool firstD = true;
    for (const auto &[design, byN] : curves) {
        std::fprintf(f, "%s\n    \"%s\": {", firstD ? "" : ",",
                     design.c_str());
        firstD = false;
        bool firstN = true;
        for (const auto &[n, pts] : byN) {
            std::fprintf(f, "%s\n      \"n%zu\": [",
                         firstN ? "" : ",", n);
            firstN = false;
            for (std::size_t i = 0; i < pts.size(); ++i) {
                const Point &p = pts[i];
                std::fprintf(
                    f,
                    "%s\n        {\"rate_per_mcycle\": %.6f, "
                    "\"goodput_per_mcycle\": %.6f, \"p50\": %.1f, "
                    "\"p99\": %.1f, \"p999\": %.1f, "
                    "\"shed_rate\": %.6f, \"cache_hits\": %llu}",
                    i ? "," : "", p.ratePerMcycle,
                    p.rep.goodputPerMcycle(), p.rep.p50, p.rep.p99,
                    p.rep.p999, p.rep.shedRate(),
                    static_cast<unsigned long long>(p.rep.cacheHits));
            }
            std::fprintf(f, "\n      ]");
        }
        std::fprintf(f, "\n    }");
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string jsonPath = "BENCH_tail.json";
    unsigned hostThreads = 4;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            hostThreads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
    }

    const std::size_t nodeCounts[] = {2, 4, 8};
    const OsDesign designs[] = {OsDesign::FusedKernel,
                                OsDesign::MultipleKernel};
    // Fractions of the calibrated closed-loop capacity: stable low,
    // highest stable, and past saturation.
    const double rhos[] = {0.5, 0.8, 1.15};

    std::printf("=== Open-loop tail latency "
                "(%zu Poisson arrivals, Zipf 0.99 keys, seed %llu) "
                "===\n\n",
                kRequests, static_cast<unsigned long long>(kSeed));

    Table tab({"design", "nodes", "rate/Mc", "goodput", "p50", "p99",
               "p999", "shed", "hit%", "verified"});
    std::vector<std::pair<std::string, double>> metrics;
    std::map<std::string, std::map<std::size_t, std::vector<Point>>>
        curves;
    std::map<std::size_t, double> fusedUncachedP99;
    std::map<std::size_t, double> fusedCachedP99;
    std::map<std::string, std::map<std::size_t, Point>> midPoints;
    bool allVerified = true;

    for (OsDesign d : designs) {
        for (std::size_t n : nodeCounts) {
            double cap = calibrate(d, n);
            for (double rho : rhos) {
                Point p = runPoint(d, n, rho * cap, true);
                allVerified &= p.verified;
                curves[designName(d)][n].push_back(p);
                double lookups = static_cast<double>(
                    p.rep.cacheHits + p.rep.cacheStale +
                    p.rep.cacheMisses);
                tab.addRow(
                    {designName(d), std::to_string(n),
                     Table::num(p.ratePerMcycle, 1),
                     Table::num(p.rep.goodputPerMcycle(), 1),
                     Table::num(p.rep.p50, 0),
                     Table::num(p.rep.p99, 0),
                     Table::num(p.rep.p999, 0),
                     Table::num(p.rep.shedRate() * 100, 1) + "%",
                     lookups > 0
                         ? Table::num(100.0 * p.rep.cacheHits /
                                          lookups, 1)
                         : "-",
                     p.verified ? "yes" : "NO"});
                if (rho == 0.8) {
                    midPoints[designName(d)][n] = p;
                    std::string prefix = std::string(designName(d)) +
                                         ".n" + std::to_string(n);
                    metrics.emplace_back(prefix + ".goodput_mid",
                                         p.rep.goodputPerMcycle());
                    metrics.emplace_back(
                        prefix + ".p99_inv_mid",
                        p.rep.p99 > 0 ? 1e9 / p.rep.p99 : 0.0);
                    if (d == OsDesign::FusedKernel) {
                        fusedCachedP99[n] = p.rep.p99;
                        Point u = runPoint(d, n, rho * cap, false);
                        allVerified &= u.verified;
                        fusedUncachedP99[n] = u.rep.p99;
                        metrics.emplace_back(
                            prefix + ".cache_p99_gain",
                            u.rep.p99 > 0 && p.rep.p99 > 0
                                ? u.rep.p99 / p.rep.p99
                                : 0.0);
                    }
                }
            }
        }
    }
    tab.print();
    std::printf("\n");

    check(allVerified, "every run verifies end to end "
                       "(host mirror matches every slot)");

    // Determinism: the whole pipeline (arrivals, keys, mix, service
    // loop, percentiles) must be bit-identical for identical seeds.
    {
        Point a = runPoint(OsDesign::FusedKernel, 4,
                           midPoints["fused"][4].ratePerMcycle, true);
        check(sameReport(a.rep, midPoints["fused"][4].rep),
              "identical seeds reproduce a bit-identical report "
              "(fused, 4 nodes, 0.8x capacity)");
    }

    for (std::size_t n : nodeCounts) {
        double gain = fusedCachedP99[n] > 0
                          ? fusedUncachedP99[n] / fusedCachedP99[n]
                          : 0.0;
        check(gain >= 1.05,
              "fused hot-key cache improves p99 at 0.8x capacity, " +
                  std::to_string(n) + " nodes (gain " +
                  Table::num(gain, 2) + "x, gate 1.05x)");
    }

    // Iso-rate comparison: the two designs have very different
    // capacities, so comparing them at 0.8x of *their own* capacity
    // is different absolute load. Serve popcorn's highest-stable
    // rate on the fused design and compare tails at equal traffic.
    for (std::size_t n : nodeCounts) {
        const Point &p = midPoints["popcorn"][n];
        Point iso = runPoint(OsDesign::FusedKernel, n,
                             p.ratePerMcycle, true);
        check(iso.verified && iso.rep.p99 <= p.rep.p99,
              "fused p99 <= popcorn p99 at popcorn's 0.8x rate, " +
                  std::to_string(n) + " nodes (" +
                  Table::num(iso.rep.p99, 0) + " vs " +
                  Table::num(p.rep.p99, 0) + ")");
        metrics.emplace_back(
            "fused.n" + std::to_string(n) + ".iso_rate_p99_gain",
            iso.rep.p99 > 0 ? p.rep.p99 / iso.rep.p99 : 0.0);
    }

    // Overload (1.15x) must shed rather than collapse: non-zero
    // shed rate on every 8-node overload point.
    for (OsDesign d : designs) {
        const Point &over = curves[designName(d)][8].back();
        check(over.rep.shed > 0,
              std::string(designName(d)) +
                  " 8-node overload point sheds via admission "
                  "control (shed " +
                  std::to_string(over.rep.shed) + ")");
    }

    // ---- host-parallel wall clock (simulator speed, not simulated
    // time): the 8-node fused open-loop point served by the epoch
    // staged service on 1 host thread vs --threads. The report and
    // every per-node clock must be thread-count invariant; the
    // wall-clock metrics stay out of the committed baseline, so they
    // never gate.
    {
        double rate = midPoints["fused"][8].ratePerMcycle;
        ParallelPoint p1 = runParallelPoint(rate, 1);
        ParallelPoint pT = runParallelPoint(rate, hostThreads);
        double speedup = pT.wallMs > 0 ? p1.wallMs / pT.wallMs : 0.0;
        std::printf("host wall clock (8-node fused open loop, "
                    "%.1f req/Mcyc): 1 thread %.1f ms, %u threads "
                    "%.1f ms (%.2fx)\n\n",
                    rate, p1.wallMs, hostThreads, pT.wallMs, speedup);
        check(sameReport(p1.rep, pT.rep) && p1.perNode == pT.perNode,
              "parallel tail service is thread-count invariant "
              "(report, percentiles, per-node clocks)");
        metrics.emplace_back("host_wall_ms_1t", p1.wallMs);
        metrics.emplace_back("host_wall_ms", pT.wallMs);
        metrics.emplace_back("host_speedup", speedup);
    }

    check(writeTailJson(jsonPath, metrics, curves),
          "wrote " + jsonPath);
    return checksExitCode();
}
