/**
 * @file
 * google-benchmark microbenchmarks of the core primitives: these
 * measure *simulator* throughput (host-side), useful for keeping the
 * framework fast enough to run the paper-scale experiments.
 */

#include <benchmark/benchmark.h>

#include "common/bench_util.hh"
#include "stramash/cache/coherence.hh"
#include "stramash/common/rng.hh"
#include "stramash/rbtree/rbtree.hh"

using namespace stramash;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    PhysMap map = PhysMap::paperDefault(MemoryModel::FullyShared);
    CoherenceDomain domain(map, SnoopCosts{});
    domain.addNode(0, HierarchyGeometry::paperDefault(4 * 1024 * 1024),
                   latencyProfile(CoreModel::XeonGold));
    Rng rng(1);
    Addr span = static_cast<Addr>(state.range(0));
    for (auto _ : state) {
        Addr a = rng.below64(span) & ~Addr{63};
        benchmark::DoNotOptimize(
            domain.accessLine(0, AccessType::Load, a).latency);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1 << 20)->Arg(64 << 20);

void
BM_CoherentStorePingPong(benchmark::State &state)
{
    PhysMap map = PhysMap::paperDefault(MemoryModel::FullyShared);
    CoherenceDomain domain(map, SnoopCosts{});
    auto geom = HierarchyGeometry::paperDefault(4 * 1024 * 1024);
    domain.addNode(0, geom, latencyProfile(CoreModel::XeonGold));
    domain.addNode(1, geom, latencyProfile(CoreModel::ThunderX2));
    NodeId n = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            domain.accessLine(n, AccessType::Store, 0x1000).latency);
        n ^= 1;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoherentStorePingPong);

void
BM_PageTableWalk(benchmark::State &state)
{
    GuestMemory mem;
    Addr next = 0x100000;
    PageTable pt(
        mem, X86PteFormat::instance(),
        [&] {
            Addr f = next;
            next += pageSize;
            return f;
        },
        [](Addr) {});
    PteAttrs attrs;
    attrs.present = true;
    attrs.writable = true;
    for (Addr va = 0; va < 512 * pageSize; va += pageSize)
        pt.map(0x10000000 + va, 0x20000000 + va, attrs);
    Rng rng(2);
    for (auto _ : state) {
        Addr va = 0x10000000 + (rng.below(512) * pageSize);
        benchmark::DoNotOptimize(pt.walk(va));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableWalk);

void
BM_RbTreeInsertErase(benchmark::State &state)
{
    RbTree<std::uint64_t, std::uint64_t> tree;
    Rng rng(3);
    for (auto _ : state) {
        std::uint64_t k = rng.below(1 << 16);
        tree.insert(k, k);
        tree.eraseKey(rng.below(1 << 16));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RbTreeInsertErase);

void
BM_UserAccessRoundTrip(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    System sys(cfg);
    App app(sys, 0);
    Addr buf = app.mmap(1 << 20);
    // Fault everything in once.
    for (Addr a = 0; a < (1 << 20); a += pageSize)
        app.write<std::uint64_t>(buf + a, a);
    Rng rng(4);
    for (auto _ : state) {
        Addr a = buf + (rng.below(1 << 14) * 64);
        benchmark::DoNotOptimize(app.read<std::uint64_t>(a));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UserAccessRoundTrip);

} // namespace

BENCHMARK_MAIN();
