/**
 * @file
 * Node-count scaling of the sharded kv-store: the N-node experiment
 * the TopologySpec generalisation exists for. Sweeps 2-, 4- and
 * 8-node alternating x86/Arm machines under both OS designs, serves
 * the same seeded request stream on each, and reports aggregate
 * throughput (requests per simulated megacycle of max-node runtime).
 *
 * Shards pin one server per node and requests arrive round-robin at
 * every node's ingress, so added nodes add both ingress capacity and
 * shard-service capacity; throughput should grow close to linearly,
 * with cross-shard forwarding (fraction (N-1)/N of requests) as the
 * sub-linear term. The fused design forwards through coherent shared
 * memory plus one IPI, the multiple-kernel design through a
 * two-message RPC, so the fused curve stays above.
 *
 * As with the Figure-14 kv-store runs this is a functional-mode
 * experiment (cache plugin off); all timing is simulated cycles, so
 * every metric is deterministic across hosts. Emits
 * BENCH_scaling.json (override with --json <path>) for the topology
 * CI job.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_util.hh"
#include "stramash/workloads/sharded_kvstore.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

struct RunResult
{
    double reqPerMcycle = 0.0;
    double crossShardFrac = 0.0;
    bool verified = false;
};

RunResult
runOne(OsDesign design, std::size_t nodes, std::uint64_t requests)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.topology = TopologySpec::alternating(nodes, MemoryModel::Shared);
    System sys(cfg);

    ShardedKvStore store(sys);
    store.populate();
    Cycles spent = store.run(requests);

    RunResult r;
    r.reqPerMcycle = spent ? static_cast<double>(requests) /
                                 (static_cast<double>(spent) / 1e6)
                           : 0.0;
    r.crossShardFrac =
        static_cast<double>(store.crossShardRequests()) /
        static_cast<double>(store.requestsServed());
    r.verified = store.verify();
    return r;
}

const char *
designName(OsDesign d)
{
    return d == OsDesign::FusedKernel ? "fused" : "popcorn";
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string jsonPath = "BENCH_scaling.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }

    const std::uint64_t requests = 4000;
    const std::size_t nodeCounts[] = {2, 4, 8};
    const OsDesign designs[] = {OsDesign::FusedKernel,
                                OsDesign::MultipleKernel};

    std::printf("=== Sharded kv-store scaling "
                "(%llu requests, alternating x86/Arm nodes) ===\n\n",
                static_cast<unsigned long long>(requests));

    Table tab({"design", "nodes", "req/Mcyc", "vs 2-node",
               "cross-shard", "verified"});
    std::vector<std::pair<std::string, double>> metrics;
    std::map<std::string, std::map<std::size_t, RunResult>> results;

    for (OsDesign d : designs) {
        double base = 0.0;
        for (std::size_t n : nodeCounts) {
            RunResult r = runOne(d, n, requests);
            results[designName(d)][n] = r;
            if (n == nodeCounts[0])
                base = r.reqPerMcycle;
            double rel = base > 0 ? r.reqPerMcycle / base : 0.0;
            tab.addRow({designName(d), std::to_string(n),
                        Table::num(r.reqPerMcycle, 2),
                        Table::num(rel, 2) + "x",
                        Table::num(r.crossShardFrac * 100, 1) + "%",
                        r.verified ? "yes" : "NO"});
            std::string prefix = std::string(designName(d)) + ".n" +
                                 std::to_string(n);
            metrics.emplace_back(prefix + ".req_per_mcycle",
                                 r.reqPerMcycle);
            metrics.emplace_back(prefix + ".speedup_vs_n2", rel);
        }
    }
    tab.print();
    std::printf("\n");

    bool allVerified = true;
    for (const auto &[d, byN] : results)
        for (const auto &[n, r] : byN)
            allVerified &= r.verified;
    check(allVerified, "every run verifies end to end "
                       "(host mirror matches every slot)");

    const auto &fused = results["fused"];
    double f42 = fused.at(2).reqPerMcycle > 0
                     ? fused.at(4).reqPerMcycle /
                           fused.at(2).reqPerMcycle
                     : 0.0;
    check(f42 >= 1.5,
          "fused 4-node aggregate throughput >= 1.5x 2-node (got " +
              Table::num(f42, 2) + "x)");
    check(fused.at(8).reqPerMcycle > fused.at(4).reqPerMcycle,
          "fused throughput still climbing at 8 nodes");
    const auto &pop = results["popcorn"];
    check(fused.at(4).reqPerMcycle >= pop.at(4).reqPerMcycle,
          "fused forwarding beats two-message RPC at 4 nodes");
    check(writeBenchJson(jsonPath, metrics), "wrote " + jsonPath);
    return checksExitCode();
}
