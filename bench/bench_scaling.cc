/**
 * @file
 * Node-count scaling of the sharded kv-store: the N-node experiment
 * the TopologySpec generalisation exists for. Sweeps 2-, 4- and
 * 8-node alternating x86/Arm machines under both OS designs, serves
 * the same seeded request stream on each, and reports aggregate
 * throughput (requests per simulated megacycle of max-node runtime).
 *
 * Shards pin one server per node and requests arrive round-robin at
 * every node's ingress, so added nodes add both ingress capacity and
 * shard-service capacity; throughput should grow close to linearly,
 * with cross-shard forwarding (fraction (N-1)/N of requests) as the
 * sub-linear term. The fused design forwards through coherent shared
 * memory plus one IPI, the multiple-kernel design through a
 * two-message RPC, so the fused curve stays above.
 *
 * As with the Figure-14 kv-store runs this is a functional-mode
 * experiment (cache plugin off); all timing is simulated cycles, so
 * every metric is deterministic across hosts. Emits
 * BENCH_scaling.json (override with --json <path>) for the topology
 * CI job.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bench_util.hh"
#include "stramash/sim/parallel_executor.hh"
#include "stramash/workloads/sharded_kvstore.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

struct RunResult
{
    double reqPerMcycle = 0.0;
    double crossShardFrac = 0.0;
    bool verified = false;
};

RunResult
runOne(OsDesign design, std::size_t nodes, std::uint64_t requests)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = Transport::SharedMemory;
    cfg.cachePluginEnabled = false;
    cfg.topology = TopologySpec::alternating(nodes, MemoryModel::Shared);
    System sys(cfg);

    ShardedKvStore store(sys);
    store.populate();
    Cycles spent = store.run(requests);

    RunResult r;
    r.reqPerMcycle = spent ? static_cast<double>(requests) /
                                 (static_cast<double>(spent) / 1e6)
                           : 0.0;
    r.crossShardFrac =
        static_cast<double>(store.crossShardRequests()) /
        static_cast<double>(store.requestsServed());
    r.verified = store.verify();
    return r;
}

const char *
designName(OsDesign d)
{
    return d == OsDesign::FusedKernel ? "fused" : "popcorn";
}

/** Everything one kv batch run can perturb, for the host-parallel
 *  bit-identity assertion. */
struct HostFingerprint
{
    Cycles spent = 0;
    std::uint64_t requests = 0;
    std::uint64_t crossShard = 0;
    bool verified = false;
    std::vector<std::uint64_t> perNode;

    bool
    operator==(const HostFingerprint &o) const
    {
        return spent == o.spent && requests == o.requests &&
               crossShard == o.crossShard && verified == o.verified &&
               perNode == o.perNode;
    }
};

/**
 * Wall-clock one 8-node fused kv batch on @p threads host threads
 * (0 = the classic sequential loop). Best of @p reps fresh systems;
 * the fingerprint (identical across reps by construction) comes
 * along for the bit-identity check.
 */
std::pair<double, HostFingerprint>
timeHostRun(unsigned threads, std::uint64_t requests, int reps)
{
    double bestMs = 0.0;
    HostFingerprint fp;
    for (int rep = 0; rep < reps; ++rep) {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        cfg.transport = Transport::SharedMemory;
        cfg.cachePluginEnabled = false;
        cfg.topology = TopologySpec::alternating(8, MemoryModel::Shared);
        cfg.hostThreads = threads ? threads : 1;
        System sys(cfg);
        ShardedKvStore store(sys);
        store.populate();

        auto t0 = std::chrono::steady_clock::now();
        Cycles spent = threads == 0
                           ? store.run(requests)
                           : store.runParallel(requests,
                                               sys.hostExecutor());
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || ms < bestMs)
            bestMs = ms;

        fp.spent = spent;
        fp.requests = store.requestsServed();
        fp.crossShard = store.crossShardRequests();
        fp.verified = store.verify();
        fp.perNode.clear();
        Machine &m = sys.machine();
        for (NodeId n = 0; n < m.nodeCount(); ++n) {
            fp.perNode.push_back(m.node(n).cycles());
            fp.perNode.push_back(m.node(n).icount());
            fp.perNode.push_back(m.ipisReceived(n));
        }
    }
    return {bestMs, fp};
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string jsonPath = "BENCH_scaling.json";
    unsigned hostThreads = 4;
    double gateSpeedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            hostThreads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (std::strcmp(argv[i], "--gate-speedup") == 0 &&
                 i + 1 < argc)
            gateSpeedup = std::strtod(argv[++i], nullptr);
    }

    const std::uint64_t requests = 4000;
    const std::size_t nodeCounts[] = {2, 4, 8};
    const OsDesign designs[] = {OsDesign::FusedKernel,
                                OsDesign::MultipleKernel};

    std::printf("=== Sharded kv-store scaling "
                "(%llu requests, alternating x86/Arm nodes) ===\n\n",
                static_cast<unsigned long long>(requests));

    Table tab({"design", "nodes", "req/Mcyc", "vs 2-node",
               "cross-shard", "verified"});
    std::vector<std::pair<std::string, double>> metrics;
    std::map<std::string, std::map<std::size_t, RunResult>> results;

    for (OsDesign d : designs) {
        double base = 0.0;
        for (std::size_t n : nodeCounts) {
            RunResult r = runOne(d, n, requests);
            results[designName(d)][n] = r;
            if (n == nodeCounts[0])
                base = r.reqPerMcycle;
            double rel = base > 0 ? r.reqPerMcycle / base : 0.0;
            tab.addRow({designName(d), std::to_string(n),
                        Table::num(r.reqPerMcycle, 2),
                        Table::num(rel, 2) + "x",
                        Table::num(r.crossShardFrac * 100, 1) + "%",
                        r.verified ? "yes" : "NO"});
            std::string prefix = std::string(designName(d)) + ".n" +
                                 std::to_string(n);
            metrics.emplace_back(prefix + ".req_per_mcycle",
                                 r.reqPerMcycle);
            metrics.emplace_back(prefix + ".speedup_vs_n2", rel);
        }
    }
    tab.print();
    std::printf("\n");

    bool allVerified = true;
    for (const auto &[d, byN] : results)
        for (const auto &[n, r] : byN)
            allVerified &= r.verified;
    check(allVerified, "every run verifies end to end "
                       "(host mirror matches every slot)");

    const auto &fused = results["fused"];
    double f42 = fused.at(2).reqPerMcycle > 0
                     ? fused.at(4).reqPerMcycle /
                           fused.at(2).reqPerMcycle
                     : 0.0;
    check(f42 >= 1.5,
          "fused 4-node aggregate throughput >= 1.5x 2-node (got " +
              Table::num(f42, 2) + "x)");
    check(fused.at(8).reqPerMcycle > fused.at(4).reqPerMcycle,
          "fused throughput still climbing at 8 nodes");
    const auto &pop = results["popcorn"];
    check(fused.at(4).reqPerMcycle >= pop.at(4).reqPerMcycle,
          "fused forwarding beats two-message RPC at 4 nodes");

    // ---- host-parallel wall clock (simulator speed, not simulated
    // time): the same 8-node fused batch on the sequential loop vs
    // the epoch-parallel executor. host_speedup is higher-is-better;
    // wall-clock metrics stay out of the committed baseline, so they
    // never gate — the optional --gate-speedup flag does.
    {
        const std::uint64_t hostRequests = 20000;
        auto [seqMs, seqFp] = timeHostRun(0, hostRequests, 3);
        auto [parMs, parFp] =
            timeHostRun(hostThreads, hostRequests, 3);
        double speedup = parMs > 0 ? seqMs / parMs : 0.0;
        std::printf("host wall clock (8-node fused, %llu requests): "
                    "sequential %.1f ms, %u threads %.1f ms "
                    "(%.2fx)\n\n",
                    static_cast<unsigned long long>(hostRequests),
                    seqMs, hostThreads, parMs, speedup);
        check(parFp == seqFp,
              "parallel host run is bit-identical to the sequential "
              "loop (cycles, icount, IPIs, cross-shard, verify)");
        unsigned hw = std::thread::hardware_concurrency();
        if (gateSpeedup > 0.0 && hw >= hostThreads)
            check(speedup >= gateSpeedup,
                  "host_speedup >= " + Table::num(gateSpeedup, 1) +
                      "x at " + std::to_string(hostThreads) +
                      " threads (got " + Table::num(speedup, 2) +
                      "x)");
        else if (gateSpeedup > 0.0)
            std::printf("  [SKIP] host_speedup gate: host has %u "
                        "hardware thread(s), need %u\n",
                        hw, hostThreads);
        metrics.emplace_back("host_wall_ms_1t", seqMs);
        metrics.emplace_back("host_wall_ms", parMs);
        metrics.emplace_back("host_speedup", speedup);
    }

    check(writeBenchJson(jsonPath, metrics), "wrote " + jsonPath);
    return checksExitCode();
}
