/**
 * @file
 * Figure 13: futex lock microbenchmark — the origin kernel
 * continuously locks while the remote kernel continuously unlocks
 * the same futex, performing a simple addition per loop.
 *
 * Paper shape: the Stramash futex optimisation (direct access to the
 * origin's futex list + a single cross-ISA IPI per wake) beats the
 * regular origin-managed message protocol, with the gap growing
 * linearly in the loop count.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stramash/workloads/microbench.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

Cycles
run(OsDesign design, unsigned loops)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.transport = Transport::SharedMemory;
    System sys(cfg);
    return runFutexPingPong(sys, loops);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Figure 13: futex ping-pong (origin locks, "
                "remote unlocks) ===\n\n");

    Table tab({"loops", "regular(Mcyc)", "futex-opt(Mcyc)",
               "speedup"});
    double firstSpeedup = 0, lastSpeedup = 0;
    for (unsigned loops : {64u, 128u, 256u, 512u, 1024u}) {
        Cycles regular = run(OsDesign::MultipleKernel, loops);
        Cycles optimised = run(OsDesign::FusedKernel, loops);
        double speedup = static_cast<double>(regular) /
                         static_cast<double>(optimised);
        tab.addRow({Table::big(loops),
                    Table::num(static_cast<double>(regular) / 1e6),
                    Table::num(static_cast<double>(optimised) / 1e6),
                    Table::num(speedup) + "x"});
        if (loops == 64)
            firstSpeedup = speedup;
        if (loops == 1024)
            lastSpeedup = speedup;
    }
    tab.print();
    std::printf("\n");

    std::printf("Shape checks vs the paper:\n");
    check(firstSpeedup > 1.5,
          "the futex optimisation wins at every loop count");
    check(lastSpeedup > 1.5,
          "the win persists as futex operations dominate "
          "(one IPI vs a full message protocol per wake)");
    return checksExitCode();
}
