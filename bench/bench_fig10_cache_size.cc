/**
 * @file
 * Figure 10: cache-size sensitivity — IS and CG with a 4 MiB vs a
 * 32 MiB L3, comparing Popcorn-SHM against Stramash on the Shared
 * and Separated models.
 *
 * Paper shapes:
 *  - CG: Popcorn-SHM is insensitive to L3 size (its replicas are
 *    local); Stramash's slowdown vs SHM shrinks dramatically with
 *    the larger cache (34% -> <1% in the paper) because read-only
 *    lines survive in the big L3 across migrations.
 *  - IS: write-intensive invalidations keep Stramash's miss rate up,
 *    while SHM gains from fewer evictions, so Stramash's advantage
 *    *narrows* with the bigger L3 (2.1x -> 1.6x in the paper).
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

struct Cell
{
    Cycles shm;
    Cycles stramash;
};

Cell
runPair(const std::string &kernel, Addr l3, const NpbConfig &ncfg)
{
    EvalConfig shm{"Shared-SHM", OsDesign::MultipleKernel,
                   MemoryModel::Shared, Transport::SharedMemory, true,
                   l3};
    EvalConfig fused{"Shared", OsDesign::FusedKernel,
                     MemoryModel::Shared, Transport::SharedMemory,
                     true, l3};
    Cell out;
    out.shm = runNpbConfig(kernel, shm, ncfg).runtime;
    out.stramash = runNpbConfig(kernel, fused, ncfg).runtime;
    return out;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Figure 10: IS vs CG under 4 MiB and 32 MiB L3 "
                "===\n\n");

    // The working set must exceed the small L3 but fit the large
    // one for CG's read-only lines to survive across migrations —
    // the effect Fig. 10 demonstrates.
    // 20 MiB: CG's matrix (~20 MiB) fits only the large L3, while
    // IS's two key arrays (2 x 20 MiB) exceed even 32 MiB — so CG
    // gains from the big cache and IS stays invalidation/miss-bound,
    // the two halves of Fig. 10.
    NpbConfig ncfg;
    ncfg.iterations = 3;
    ncfg.problemBytes = 20 * 1024 * 1024;

    Table tab({"kernel", "L3", "Popcorn-SHM(Mcyc)", "Stramash(Mcyc)",
               "SHM/Stramash"});

    double isSmall = 0, isBig = 0, cgSmall = 0, cgBig = 0;
    for (const std::string kernel : {"is", "cg"}) {
        for (Addr l3 : {Addr{4} << 20, Addr{32} << 20}) {
            Cell c = runPair(kernel, l3, ncfg);
            double ratio = static_cast<double>(c.shm) /
                           static_cast<double>(c.stramash);
            tab.addRow({kernel,
                        l3 == (Addr{4} << 20) ? "4MiB" : "32MiB",
                        Table::num(static_cast<double>(c.shm) / 1e6),
                        Table::num(
                            static_cast<double>(c.stramash) / 1e6),
                        Table::num(ratio)});
            if (kernel == "is")
                (l3 == (Addr{4} << 20) ? isSmall : isBig) = ratio;
            else
                (l3 == (Addr{4} << 20) ? cgSmall : cgBig) = ratio;
        }
    }
    tab.print();
    std::printf("\n");

    std::printf("Shape checks vs the paper:\n");
    check(cgBig > cgSmall,
          "CG: Stramash's relative position improves with the "
          "larger L3 (paper: -34% -> <1%) — SHM/Stramash " +
              Table::num(cgSmall) + " -> " + Table::num(cgBig));
    // The paper's IS ratio narrows (2.1x -> 1.6x) because its SHM
    // implementation gains ~25% from fewer write-backs at 32 MiB; in
    // our model that second-order effect is noise-level (see
    // EXPERIMENTS.md), so we check the defensible halves: Stramash's
    // IS performance is cache-size-stable ("relatively stable
    // performance despite the increased cache size") and it stays
    // ahead at both sizes.
    check(isBig > 0.7 * isSmall && isBig < 1.4 * isSmall,
          "IS: Stramash's position is stable across L3 sizes — " +
              Table::num(isSmall) + "x -> " + Table::num(isBig) + "x");
    check(isSmall > 1.0 && isBig > 1.0,
          "IS: Stramash ahead at both L3 sizes");
    return checksExitCode();
}
