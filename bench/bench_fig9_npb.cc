/**
 * @file
 * Figure 9: NPB benchmark results — execution time of IS/CG/MG/FT
 * under every OS-design x memory-model configuration, normalised to
 * the Vanilla (no migration) case. Also prints the Table 2 latency
 * configuration in effect.
 *
 * Paper shapes being reproduced:
 *  - Stramash FullyShared tracks Vanilla closely;
 *  - Stramash beats Popcorn-SHM by up to ~2.1x (IS) and Popcorn-TCP
 *    by more (~2.6x in the paper);
 *  - CG (read-intensive) is the outlier where Stramash
 *    Shared/Separated can *lose* to SHM.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stramash/mem/latency_profile.hh"

using namespace stramash;
using namespace stramash::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    ArtifactWriter artifacts(parseArtifactArgs(argc, argv));
    std::printf("=== Figure 9: NPB cross-ISA migration, normalised "
                "execution time ===\n\n");

    std::printf("Table 2 configuration (cycles):\n");
    Table t2({"core", "L1", "L2", "L3", "mem", "remote-mem"});
    for (auto m : {CoreModel::XeonGold, CoreModel::ThunderX2}) {
        const auto &p = latencyProfile(m);
        t2.addRow({coreModelName(m), Table::big(p.l1),
                   Table::big(p.l2), Table::big(p.l3),
                   Table::big(p.mem), Table::big(p.remoteMem)});
    }
    t2.print();
    std::printf("\n");

    NpbConfig ncfg;
    ncfg.iterations = 5;
    ncfg.problemBytes = 2 * 1024 * 1024;
    const Addr l3 = 4 * 1024 * 1024;

    auto configs = figure9Configs(l3);

    double isStramashVsShm = 0.0;
    double isStramashVsTcp = 0.0;
    double cgStramashVsShm = 0.0;

    for (const auto &kernel : npbKernelNames()) {
        std::printf("--- %s ---\n", kernel.c_str());
        Table tab({"config", "runtime(Mcyc)", "norm", "inst%", "mem%",
                   "msgs", "repl.pages", "verified"});
        Cycles vanilla = 0;
        double shmShared = 0, stramashShared = 0, tcp = 0;
        for (const auto &config : configs) {
            EvalResult r = runNpbConfig(kernel, config, ncfg,
                                        &artifacts);
            if (config.label == "Vanilla")
                vanilla = r.runtime;
            double norm = vanilla
                              ? static_cast<double>(r.runtime) /
                                    static_cast<double>(vanilla)
                              : 1.0;
            if (config.label == "Shared-SHM")
                shmShared = norm;
            if (config.label == "Shared")
                stramashShared = norm;
            if (config.label == "TCP")
                tcp = norm;
            tab.addRow(
                {config.label,
                 Table::num(static_cast<double>(r.runtime) / 1e6),
                 Table::num(norm),
                 Table::num(100.0 *
                            static_cast<double>(r.instCycles) /
                            static_cast<double>(r.runtime), 1),
                 Table::num(100.0 * static_cast<double>(r.memCycles) /
                            static_cast<double>(r.runtime), 1),
                 Table::big(r.messages), Table::big(r.replicated),
                 r.verified ? "yes" : "NO"});
        }
        tab.print();
        std::printf("\n");
        if (kernel == "is") {
            isStramashVsShm = shmShared / stramashShared;
            isStramashVsTcp = tcp / stramashShared;
        }
        if (kernel == "cg")
            cgStramashVsShm = shmShared / stramashShared;
    }

    std::printf("Shape checks vs the paper:\n");
    check(isStramashVsShm > 1.3,
          "IS: Stramash(Shared) beats Popcorn Shared-SHM (paper: up "
          "to 2.1x) — measured " +
              Table::num(isStramashVsShm) + "x");
    check(isStramashVsTcp > isStramashVsShm,
          "IS: the TCP baseline is the slowest (paper: 2.6x) — "
          "measured " +
              Table::num(isStramashVsTcp) + "x");
    check(cgStramashVsShm < isStramashVsShm,
          "CG (read-intensive) benefits far less than IS — CG " +
              Table::num(cgStramashVsShm) + "x vs IS " +
              Table::num(isStramashVsShm) + "x");
    return checksExitCode();
}
