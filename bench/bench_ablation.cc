/**
 * @file
 * Ablations of the design choices DESIGN.md calls out — not a paper
 * figure, but the "why is it built this way" evidence:
 *
 *  A1. Cross-ISA IPI latency sweep: Popcorn-SHM's performance hangs
 *      on the notification cost; Stramash, being message-free on the
 *      fault path, barely moves.
 *  A2. IPI notification vs polling for the SHM messaging layer
 *      (paper §6.2 supports both).
 *  A3. CXL snoop-cost sweep: write-intensive workloads under the
 *      fused design feel coherence-action pricing directly.
 *  A4. Bulk-copy memory-level parallelism: serialising the kernel's
 *      page copies (MLP=1) shows why streaming transfers matter for
 *      the DSM baseline.
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

Cycles
runIs(SystemConfig cfg, unsigned iterations = 3,
      Addr problemBytes = 1 << 20)
{
    System sys(cfg);
    App app(sys, 0);
    NpbConfig n;
    n.iterations = iterations;
    n.problemBytes = problemBytes;
    NpbResult r = makeNpbKernel("is")->run(app, n);
    panic_if(!r.verified, "ablation run failed verification");
    return sys.runtime();
}

SystemConfig
base(OsDesign design)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.transport = Transport::SharedMemory;
    return cfg;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Ablations (IS, Shared model) ===\n\n");

    // ---- A1: IPI latency sweep ----
    std::printf("A1. cross-ISA IPI latency sweep\n");
    Table a1({"IPI (us)", "Popcorn-SHM (Mcyc)", "Stramash (Mcyc)"});
    double pop05 = 0, pop8 = 0, str05 = 0, str8 = 0;
    for (double us : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        SystemConfig p = base(OsDesign::MultipleKernel);
        p.crossIsaIpiUs = us;
        SystemConfig s = base(OsDesign::FusedKernel);
        s.crossIsaIpiUs = us;
        double pc = static_cast<double>(runIs(p)) / 1e6;
        double sc = static_cast<double>(runIs(s)) / 1e6;
        a1.addRow({Table::num(us, 1), Table::num(pc),
                   Table::num(sc)});
        if (us == 0.5) {
            pop05 = pc;
            str05 = sc;
        }
        if (us == 8.0) {
            pop8 = pc;
            str8 = sc;
        }
    }
    a1.print();
    check(pop8 / pop05 > 1.05,
          "Popcorn-SHM slows measurably as the IPI gets dearer");
    check(str8 / str05 < 1.02,
          "Stramash is insensitive to IPI cost (message-free faults)");
    std::printf("\n");

    // ---- A2: notification vs polling ----
    std::printf("A2. SHM messaging: IPI notification vs polling\n");
    SystemConfig ipiCfg = base(OsDesign::MultipleKernel);
    SystemConfig pollCfg = base(OsDesign::MultipleKernel);
    pollCfg.useIpiNotification = false;
    double withIpi = static_cast<double>(runIs(ipiCfg)) / 1e6;
    double withPoll = static_cast<double>(runIs(pollCfg)) / 1e6;
    Table a2({"notification", "Popcorn-SHM (Mcyc)"});
    a2.addRow({"IPI", Table::num(withIpi)});
    a2.addRow({"polling", Table::num(withPoll)});
    a2.print();
    check(withPoll < withIpi,
          "polling skips the 2 us delivery cost in this "
          "single-app setting (the paper supports both, §6.2)");
    std::printf("\n");

    // ---- A3: snoop cost sweep ----
    std::printf("A3. CXL snoop-cost sweep (Stramash)\n");
    Table a3({"snoop inval (cyc)", "Stramash (Mcyc)"});
    double s0 = 0, s4x = 0;
    for (Cycles c : {Cycles{0}, Cycles{120}, Cycles{480}}) {
        SystemConfig s = base(OsDesign::FusedKernel);
        s.snoopCosts.snoopInvalidate = c;
        s.snoopCosts.snoopData = c > 0 ? c - 20 : 0;
        double v = static_cast<double>(runIs(s)) / 1e6;
        a3.addRow({Table::big(c), Table::num(v)});
        if (c == 0)
            s0 = v;
        if (c == 480)
            s4x = v;
    }
    a3.print();
    check(s4x > s0,
          "write-intensive IS feels coherence-action pricing under "
          "the fused design");
    std::printf("\n");

    // ---- A4: bulk-copy MLP ----
    std::printf("A4. kernel bulk-copy memory-level parallelism\n");
    Table a4({"stream MLP", "Popcorn-SHM (Mcyc)"});
    SystemConfig serial = base(OsDesign::MultipleKernel);
    serial.streamMlp = 1;
    SystemConfig parallel = base(OsDesign::MultipleKernel);
    parallel.streamMlp = 8;
    double mlp1 = static_cast<double>(runIs(serial)) / 1e6;
    double mlp8 = static_cast<double>(runIs(parallel)) / 1e6;
    a4.addRow({"1 (serial)", Table::num(mlp1)});
    a4.addRow({"8", Table::num(mlp8)});
    a4.print();
    check(mlp1 > mlp8 * 1.1,
          "serialising page copies penalises the replication-based "
          "baseline");

    return checksExitCode();
}
