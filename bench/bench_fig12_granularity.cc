/**
 * @file
 * Figure 12: software vs hardware consistency at cacheline
 * granularity — touch 1..64 cachelines per page across remote pages
 * and compare DSM (page replication) against hardware coherence
 * (cacheline transfers).
 *
 * Paper shape: DSM is enormously worse when one line per page is
 * touched (replication of the whole page is wasted) and converges
 * toward ~2x when the full page is consumed; software consistency
 * regains appeal only for dense sequential use.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stramash/workloads/microbench.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

Cycles
run(OsDesign design, unsigned lines, unsigned pages)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.transport = Transport::SharedMemory;
    System sys(cfg);
    return runGranularityCase(sys, lines, pages);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Figure 12: page access at cacheline "
                "granularity (64 B .. 4096 B per page) ===\n\n");

    const unsigned pages = 256;
    Table tab({"lines/page", "bytes", "DSM(SHM) cyc/page",
               "HW(Stramash) cyc/page", "DSM/HW"});

    double first = 0, last = 0;
    for (unsigned lines : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        Cycles dsm = run(OsDesign::MultipleKernel, lines, pages);
        Cycles hw = run(OsDesign::FusedKernel, lines, pages);
        double ratio =
            static_cast<double>(dsm) / static_cast<double>(hw);
        tab.addRow({Table::big(lines), Table::big(lines * 64),
                    Table::num(static_cast<double>(dsm) / pages, 0),
                    Table::num(static_cast<double>(hw) / pages, 0),
                    Table::num(ratio, 1) + "x"});
        if (lines == 1)
            first = ratio;
        if (lines == 64)
            last = ratio;
    }
    tab.print();
    std::printf("\n");

    std::printf("Shape checks vs the paper:\n");
    check(first > 8.0,
          "1 line: DSM vastly worse than hardware coherence (paper: "
          ">300x on real Linux software paths; our thinner modelled "
          "kernel compresses the extreme) — measured " +
              Table::num(first, 1) + "x");
    check(last < first / 3,
          "64 lines: the gap collapses as the replicated page gets "
          "used (paper: ~2x) — measured " +
              Table::num(last, 1) + "x");
    return checksExitCode();
}
