/**
 * @file
 * Table 4: global memory allocator overheads — time to offline and
 * online memory slices of 2^15..2^20 pages on the x86 and Arm
 * kernels (milliseconds; the paper's §9.2.7 uses 4 GB of dynamically
 * shared memory in 256 MB slices and attributes the cost mainly to
 * the page isolation pass).
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stramash/common/units.hh"
#include "stramash/fused/global_alloc.hh"

using namespace stramash;
using namespace stramash::bench;

int
main()
{
    setQuiet(true);
    std::printf("=== Table 4: memory allocator offline/online "
                "overheads ===\n\n");

    Table tab({"pages", "slice", "x86 offline(ms)", "x86 online(ms)",
               "arm offline(ms)", "arm online(ms)"});

    bool monotonic = true;
    bool offlineDominates = true;
    double prevX86Off = 0;

    for (unsigned log2Pages = 15; log2Pages <= 20; ++log2Pages) {
        Addr pages = Addr{1} << log2Pages;
        Addr sliceBytes = pages * pageSize;

        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        cfg.memoryModel = MemoryModel::Shared;
        // TCP transport so the pool is free of the messaging rings
        // and a full 4 GiB slice fits.
        cfg.transport = Transport::Network;
        cfg.enableGlobalAllocator = false; // we drive our own
        System sys(cfg);

        GmaConfig gcfg;
        gcfg.blockSize = sliceBytes;
        std::vector<KernelInstance *> ks{&sys.kernel(0),
                                         &sys.kernel(1)};
        GlobalMemoryAllocator gma(sys.machine(), ks, gcfg);

        AddrRange b0{4_GiB, 4_GiB + sliceBytes};
        // A second block when it fits; otherwise the Arm kernel
        // reuses the first one after the x86 side releases it.
        AddrRange b1 = (b0.end + sliceBytes <= 8_GiB)
                           ? AddrRange{b0.end, b0.end + sliceBytes}
                           : b0;

        double x86ghz = latencyProfile(CoreModel::XeonGold).ghz;
        double armghz = latencyProfile(CoreModel::ThunderX2).ghz;

        Cycles onX86 = gma.onlineBlock(sys.kernel(0), b0);
        Cycles offX86 = gma.offlineBlock(sys.kernel(0), b0);
        Cycles onArm = gma.onlineBlock(sys.kernel(1), b1);
        Cycles offArm = gma.offlineBlock(sys.kernel(1), b1);

        auto ms = [](Cycles c, double ghz) {
            return static_cast<double>(c) / (ghz * 1e6);
        };
        double x86OffMs = ms(offX86, x86ghz);
        tab.addRow({"2^" + std::to_string(log2Pages),
                    std::to_string(sliceBytes >> 20) + "MiB",
                    Table::num(x86OffMs, 1),
                    Table::num(ms(onX86, x86ghz), 1),
                    Table::num(ms(offArm, armghz), 1),
                    Table::num(ms(onArm, armghz), 1)});

        monotonic &= x86OffMs > prevX86Off;
        prevX86Off = x86OffMs;
        offlineDominates &= offX86 > onX86 && offArm > onArm;
    }
    tab.print();
    std::printf("\n");

    std::printf("Shape checks vs the paper:\n");
    check(monotonic,
          "cost grows with slice size (paper: 12.5ms at 2^15 to "
          "246.3ms at 2^20 for x86 offline)");
    check(offlineDominates,
          "offlining (page isolation) costs more than onlining on "
          "both ISAs");
    return checksExitCode();
}
