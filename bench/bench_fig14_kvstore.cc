/**
 * @file
 * Figure 14: the network-serving application (Redis analogue) —
 * 10 K requests of 1024 B per operation type, processing time
 * measured inside the migrated server, normalised to the
 * POPCORN-TCP baseline (higher is better).
 *
 * As in the paper (§9.2.8), the cache plugin is disabled: this is a
 * functional-validation experiment; the differences come from the
 * messaging layer and fault paths.
 *
 * Paper shape: POPCORN-SHM gains ~4-10x over TCP; STRAMASH up to
 * ~12x.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stramash/workloads/kvstore.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

struct ServerRun
{
    std::unique_ptr<System> sys;
    std::unique_ptr<App> app;
    std::unique_ptr<KvStore> store;
};

ServerRun
makeServer(OsDesign design, Transport transport)
{
    ServerRun r;
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.transport = transport;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.cachePluginEnabled = false;
    r.sys = std::make_unique<System>(cfg);
    r.app = std::make_unique<App>(*r.sys, 0);
    r.store = std::make_unique<KvStore>(*r.app, 512, 1024);
    r.store->populate();
    // The modified Redis-server migrates during its time_event.
    r.app->migrateToNext();
    return r;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Figure 14: kv-store speedup over POPCORN-TCP "
                "(10K requests, 1024 B payloads) ===\n\n");

    const unsigned requests = 10000;

    ServerRun tcp =
        makeServer(OsDesign::MultipleKernel, Transport::Network);
    ServerRun shm = makeServer(OsDesign::MultipleKernel,
                               Transport::SharedMemory);
    ServerRun fused =
        makeServer(OsDesign::FusedKernel, Transport::SharedMemory);

    Table tab({"op", "TCP(Mcyc)", "SHM(Mcyc)", "STRAMASH(Mcyc)",
               "SHM speedup", "STRAMASH speedup"});

    double minShm = 1e30, maxShm = 0, minFused = 1e30, maxFused = 0;
    for (KvOp op : allKvOps()) {
        Rng r1(42), r2(42), r3(42);
        Cycles t = tcp.store->measureRound(op, requests, r1);
        Cycles s = shm.store->measureRound(op, requests, r2);
        Cycles f = fused.store->measureRound(op, requests, r3);
        double su = static_cast<double>(t) / static_cast<double>(s);
        double fu = static_cast<double>(t) / static_cast<double>(f);
        tab.addRow({kvOpName(op),
                    Table::num(static_cast<double>(t) / 1e6),
                    Table::num(static_cast<double>(s) / 1e6),
                    Table::num(static_cast<double>(f) / 1e6),
                    Table::num(su) + "x", Table::num(fu) + "x"});
        minShm = std::min(minShm, su);
        maxShm = std::max(maxShm, su);
        minFused = std::min(minFused, fu);
        maxFused = std::max(maxFused, fu);
    }
    tab.print();
    std::printf("\n");

    std::printf("Shape checks vs the paper:\n");
    check(minShm > 1.0,
          "SHM beats TCP on every operation (paper: 4-10x) — range " +
              Table::num(minShm) + "x.." + Table::num(maxShm) + "x");
    check(maxFused >= maxShm,
          "STRAMASH reaches the highest speedup (paper: up to 12x) "
          "— max " +
              Table::num(maxFused) + "x");
    check(minFused >= minShm,
          "STRAMASH never behind SHM");
    return checksExitCode();
}
