/**
 * @file
 * Figure 8: cache simulation validation — per-level hit rates of the
 * primary Cache-plugin model against the independently implemented
 * Ruby-style MESI three-level reference, on the NPB traces.
 *
 * The paper validates its plugin against gem5's Ruby MESI
 * three-level model with discrepancies below 5% at every level; our
 * reference model plays gem5's role.
 */

#include <cmath>
#include <cstdio>

#include "common/bench_util.hh"
#include "stramash/cache/coherence.hh"
#include "stramash/cache/ruby_ref.hh"

using namespace stramash;
using namespace stramash::bench;

int
main()
{
    setQuiet(true);
    std::printf("=== Figure 8: Cache plugin vs Ruby-style reference "
                "(hit rates) ===\n\n");

    Table tab({"bench", "level", "plugin", "ruby", "|diff|"});
    double worst = 0.0;

    for (const auto &kernel : npbKernelNames()) {
        Trace trace = captureNpbTrace(kernel, 1024 * 1024, 2);

        PhysMap map = PhysMap::paperDefault(MemoryModel::FullyShared);
        CoherenceDomain plugin(map, SnoopCosts{});
        plugin.addNode(0,
                       HierarchyGeometry::paperDefault(4 * 1024 *
                                                       1024),
                       latencyProfile(CoreModel::XeonGold));
        RubyRefModel ruby(1,
                          RubyGeometry::paperDefault(4 * 1024 * 1024));

        for (const auto &op : trace.ops) {
            if (op.isRetire)
                continue;
            Addr first = lineBase(op.addr);
            Addr last =
                lineBase(op.addr + (op.size ? op.size - 1 : 0));
            for (Addr a = first; a <= last; a += cacheLineSize) {
                plugin.accessLine(0, op.type, a);
                ruby.access(0, op.type, a);
            }
        }

        auto &s = plugin.nodeStats(0);
        auto rate = [&](const char *hits, const char *acc) {
            double a = static_cast<double>(s.value(acc));
            return a > 0 ? static_cast<double>(s.value(hits)) / a
                         : 0.0;
        };
        struct LevelRow
        {
            const char *name;
            double plugin;
            double ruby;
        };
        // The plugin's unified L1 counters vs Ruby's L1D (data
        // dominates; the workloads issue no instruction fetches).
        std::vector<LevelRow> rows{
            {"L1", rate("l1_hits", "l1_accesses"),
             ruby.levelStats(0, 1).hitRate()},
            {"L2", rate("l2_hits", "l2_accesses"),
             ruby.levelStats(0, 2).hitRate()},
            {"L3", rate("l3_hits", "l3_accesses"),
             ruby.levelStats(0, 3).hitRate()},
        };
        for (const auto &r : rows) {
            double diff = std::abs(r.plugin - r.ruby);
            worst = std::max(worst, diff);
            tab.addRow({kernel, r.name,
                        Table::num(r.plugin * 100.0, 1) + "%",
                        Table::num(r.ruby * 100.0, 1) + "%",
                        Table::num(diff * 100.0, 1) + "pp"});
        }
    }
    tab.print();
    std::printf("\n");

    std::printf("Shape checks vs the paper:\n");
    check(worst < 0.12,
          "per-level hit-rate discrepancy stays small (paper: <5% "
          "vs gem5; worst here " +
              Table::num(worst * 100.0, 1) + "pp)");
    return checksExitCode();
}
