/**
 * @file
 * Table 3: message count during migration and replicated page count
 * during runtime migration — Popcorn vs Stramash, with reduction
 * rates. The paper reports >99% message reduction on all four
 * benchmarks and 83-99.9% replication reduction.
 */

#include <cstdio>

#include <algorithm>

#include "common/bench_util.hh"

using namespace stramash;
using namespace stramash::bench;

int
main()
{
    setQuiet(true);
    std::printf("=== Table 3: messages and replicated pages, "
                "Popcorn vs Stramash ===\n\n");

    NpbConfig ncfg;
    ncfg.iterations = 5;
    ncfg.problemBytes = 2 * 1024 * 1024;
    const Addr l3 = 4 * 1024 * 1024;

    EvalConfig popcorn{"popcorn", OsDesign::MultipleKernel,
                       MemoryModel::Shared, Transport::SharedMemory,
                       true, l3};
    EvalConfig stramash{"stramash", OsDesign::FusedKernel,
                        MemoryModel::Shared, Transport::SharedMemory,
                        true, l3};

    Table tab({"bench", "msgs(Popcorn)", "msgs(Stramash)",
               "msg reduction", "repl(Popcorn)", "repl(Stramash)",
               "repl reduction"});

    bool allMsgsReduced = true;
    double minNonFtRepl = 100.0;
    double ftRepl = 100.0;
    for (const auto &kernel : npbKernelNames()) {
        EvalResult p = runNpbConfig(kernel, popcorn, ncfg);
        EvalResult s = runNpbConfig(kernel, stramash, ncfg);
        double msgRed =
            100.0 * (1.0 - static_cast<double>(s.messages) /
                               static_cast<double>(p.messages));
        double replRed =
            p.replicated
                ? 100.0 * (1.0 - static_cast<double>(s.replicated) /
                                     static_cast<double>(
                                         p.replicated))
                : 100.0;
        tab.addRow({kernel, Table::big(p.messages),
                    Table::big(s.messages),
                    Table::num(msgRed, 2) + "%",
                    Table::big(p.replicated),
                    Table::big(s.replicated),
                    Table::num(replRed, 2) + "%"});
        allMsgsReduced &= msgRed > 90.0;
        if (kernel == "ft")
            ftRepl = replRed;
        else
            minNonFtRepl = std::min(minNonFtRepl, replRed);
    }
    tab.print();
    std::printf("\nNote: Stramash's \"replicated pages\" column "
                "counts PTEs the remote kernel inserted into both "
                "page tables (foreign-format fast path, reconciled "
                "at migrate-back); Popcorn's counts 4 KiB content "
                "replications through DSM.\n\n");

    std::printf("Shape checks vs the paper:\n");
    check(allMsgsReduced,
          "message reduction > 90% on every benchmark (paper: "
          ">99.7%)");
    check(minNonFtRepl > 95.0,
          "IS/CG/MG replication reduction is near-total (paper: "
          ">99.8%)");
    check(ftRepl > 20.0 && ftRepl < minNonFtRepl,
          "FT is the replication outlier — its fresh remote "
          "allocations become dual-table insertions (paper: 83.3% "
          "vs >99.8% elsewhere)");
    return checksExitCode();
}
