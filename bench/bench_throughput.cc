/**
 * @file
 * Simulator-throughput benchmark for the coherence hot loop: how many
 * simulated line accesses per second the domain sustains, compared
 * across three implementations of the same simulation:
 *
 *   legacy     a faithful port of the pre-directory CoherenceDomain
 *              (std::map node contexts, broadcast probing, four-probe
 *              holds(), per-miss std::function) — the baseline the
 *              speedup is quoted against
 *   broadcast  today's CoherenceDomain with the directory disabled
 *              (setBroadcastMode): dense contexts, L1 fast path,
 *              single-probe membership, but still probing every node
 *   filter     today's default: the snoop-filter directory on top
 *
 * Unlike the figure benches this measures *wall-clock* simulator
 * speed, not simulated time — the ROADMAP's "as fast as the hardware
 * allows" axis. Scenarios cover the hot-path mix:
 *
 *   l1_resident      per-node working sets inside L1 (fast path)
 *   private_stream   disjoint per-node streaming, miss-heavy — the
 *                    private-data common case where broadcast pays
 *                    full hierarchy probes for nothing
 *   shared_rw        two nodes mixing loads/stores over one shared
 *                    region — the 2-node shared-memory workload the
 *                    acceptance gate is measured on
 *   pingpong         write-write contention on a few hot lines
 *
 * Every run is repeated and the best rate kept (the simulation is
 * deterministic; repetition only rejects scheduler noise), and all
 * per-node counters are cross-checked across the three
 * implementations so a speedup can never come from simulating
 * something different. Emits BENCH_coherence.json (override with
 * --json <path>) for the perf-smoke CI job.
 */

#include <chrono>
#include <cstdio>
#include <ctime>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_util.hh"
#include "common/legacy_coherence.hh"
#include "stramash/cache/coherence.hh"
#include "stramash/common/units.hh"

using namespace stramash;
using namespace stramash::bench;

namespace
{

enum class Mode { Legacy, Broadcast, Filter };

struct Scenario
{
    const char *name;
    /** Compute access @p i: which node, what type, which address. */
    void (*gen)(std::uint64_t i, NodeId &node, AccessType &type,
                Addr &addr);
    std::uint64_t accesses;
};

constexpr Addr kBase = 0x10000000;

/** Per-node 16 KiB hot set: virtually always an L1 hit. */
void
genL1Resident(std::uint64_t i, NodeId &node, AccessType &type,
              Addr &addr)
{
    node = i & 1;
    addr = kBase + (node ? 1_MiB : 0) + (i % 256) * cacheLineSize;
    type = (i % 8) == 7 ? AccessType::Store : AccessType::Load;
}

/** Disjoint 32 MiB streams per node: miss-dominated, zero sharing. */
void
genPrivateStream(std::uint64_t i, NodeId &node, AccessType &type,
                 Addr &addr)
{
    node = i & 1;
    Addr region = 32_MiB;
    addr = kBase + (node ? 64_MiB : 0) +
           ((i / 2) * cacheLineSize) % region;
    type = (i % 16) == 15 ? AccessType::Store : AccessType::Load;
}

/** Both nodes over one 16 MiB region, 1 store in 8. */
void
genSharedRw(std::uint64_t i, NodeId &node, AccessType &type, Addr &addr)
{
    node = i & 1;
    // A stride walk de-correlates the two nodes' positions so some
    // accesses truly collide while most lines have aged out.
    Addr region = 16_MiB;
    addr = kBase +
           ((i * 2654435761u) % region) / cacheLineSize * cacheLineSize;
    type = (i % 8) == 7 ? AccessType::Store : AccessType::Load;
}

/** Write-write ping-pong over 16 hot lines. */
void
genPingpong(std::uint64_t i, NodeId &node, AccessType &type, Addr &addr)
{
    node = i & 1;
    addr = kBase + (i % 16) * cacheLineSize;
    type = AccessType::Store;
}

using CounterSnapshot = std::vector<std::pair<std::string, std::uint64_t>>;

/**
 * Process CPU time. The CI runners (and many dev boxes) give this
 * bench a single contended core, where wall clock mostly measures the
 * neighbours; CPU time excludes preemption while still counting the
 * cache-miss stalls that the bench exists to compare.
 */
double
cpuNow()
{
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
#else
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
#endif
}

struct RunResult
{
    double accessesPerSec = 0.0;
    CounterSnapshot counters;
};

void
snapshotCounters(StatGroup &stats, CounterSnapshot &out)
{
    for (const auto &[name, c] : stats.counters())
        out.emplace_back(name, c.value());
}

/**
 * One full measurement: fresh domain, warm-up prefix, timed body.
 * Templated over the domain type so legacy and current builds share
 * the exact same driver loop.
 */
template <typename Domain>
RunResult
runOnce(const Scenario &s, Domain &d)
{
    std::uint64_t warmup = s.accesses / 8;
    NodeId node;
    AccessType type;
    Addr addr;
    for (std::uint64_t i = 0; i < warmup; ++i) {
        s.gen(i, node, type, addr);
        d.accessLine(node, type, addr);
    }

    RunResult r;
    double t0 = cpuNow();
    for (std::uint64_t i = warmup; i < warmup + s.accesses; ++i) {
        s.gen(i, node, type, addr);
        d.accessLine(node, type, addr);
    }
    double secs = cpuNow() - t0;
    r.accessesPerSec =
        secs > 0 ? static_cast<double>(s.accesses) / secs : 0.0;
    for (NodeId n = 0; n < 2; ++n)
        snapshotCounters(d.nodeStats(n), r.counters);
    return r;
}

RunResult
runMode(const Scenario &s, const PhysMap &map, Mode mode)
{
    auto geom = HierarchyGeometry::paperDefault(4_MiB);
    if (mode == Mode::Legacy) {
        LegacyCoherenceDomain d(map, SnoopCosts{});
        d.addNode(0, geom, latencyProfile(CoreModel::XeonGold));
        d.addNode(1, geom, latencyProfile(CoreModel::ThunderX2));
        return runOnce(s, d);
    }
    CoherenceDomain d(map, SnoopCosts{});
    d.setBroadcastMode(mode == Mode::Broadcast);
    d.addNode(0, geom, latencyProfile(CoreModel::XeonGold));
    d.addNode(1, geom, latencyProfile(CoreModel::ThunderX2));
    return runOnce(s, d);
}

struct ScenarioResults
{
    RunResult legacy;
    RunResult bcast;
    RunResult filt;
};

/**
 * Measure all three implementations, interleaved within each
 * repetition: on a busy host the background load drifts over the
 * seconds a scenario takes, and running the implementations
 * back-to-back inside one rep exposes them to the same conditions —
 * the *ratios* the checks gate on stay stable even when the absolute
 * rates wobble.
 */
ScenarioResults
runScenario(const Scenario &s, const PhysMap &map)
{
    constexpr int reps = 3;
    ScenarioResults best;
    auto keep = [](RunResult &b, RunResult r) {
        if (r.accessesPerSec > b.accessesPerSec)
            b = std::move(r);
    };
    for (int rep = 0; rep < reps; ++rep) {
        keep(best.legacy, runMode(s, map, Mode::Legacy));
        keep(best.bcast, runMode(s, map, Mode::Broadcast));
        keep(best.filt, runMode(s, map, Mode::Filter));
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string jsonPath = "BENCH_coherence.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }

    std::printf("=== Coherence hot-loop throughput "
                "(simulated accesses/second) ===\n\n");

    const Scenario scenarios[] = {
        {"l1_resident", genL1Resident, 8'000'000},
        {"private_stream", genPrivateStream, 3'000'000},
        {"shared_rw", genSharedRw, 3'000'000},
        {"pingpong", genPingpong, 2'000'000},
    };

    PhysMap map = PhysMap::paperDefault(MemoryModel::FullyShared);

    Table tab({"scenario", "legacy Macc/s", "broadcast Macc/s",
               "filter Macc/s", "vs legacy", "vs broadcast"});
    std::vector<std::pair<std::string, double>> metrics;
    double pingpongSpeedup = 0.0;
    bool countersMatch = true;

    for (const Scenario &s : scenarios) {
        ScenarioResults sr = runScenario(s, map);
        const RunResult &legacy = sr.legacy;
        const RunResult &bcast = sr.bcast;
        const RunResult &filt = sr.filt;
        countersMatch &= legacy.counters == bcast.counters &&
                         bcast.counters == filt.counters;
        auto ratio = [](const RunResult &num, const RunResult &den) {
            return den.accessesPerSec > 0
                       ? num.accessesPerSec / den.accessesPerSec
                       : 0.0;
        };
        double vsLegacy = ratio(filt, legacy);
        double vsBcast = ratio(filt, bcast);
        if (std::strcmp(s.name, "pingpong") == 0)
            pingpongSpeedup = vsLegacy;
        tab.addRow({s.name, Table::num(legacy.accessesPerSec / 1e6, 2),
                    Table::num(bcast.accessesPerSec / 1e6, 2),
                    Table::num(filt.accessesPerSec / 1e6, 2),
                    Table::num(vsLegacy, 2) + "x",
                    Table::num(vsBcast, 2) + "x"});
        metrics.emplace_back(std::string(s.name) + ".legacy_aps",
                             legacy.accessesPerSec);
        metrics.emplace_back(std::string(s.name) + ".broadcast_aps",
                             bcast.accessesPerSec);
        metrics.emplace_back(std::string(s.name) + ".filter_aps",
                             filt.accessesPerSec);
        metrics.emplace_back(std::string(s.name) + ".speedup",
                             vsLegacy);
    }
    tab.print();
    std::printf("\n");

    check(countersMatch,
          "legacy, broadcast and filter simulate identically "
          "(all per-node counters equal)");
    check(pingpongSpeedup >= 2.0,
          "hot loop gives >= 2x on the 2-node shared-memory workload "
          "(write-write sharing on hot lines) vs the pre-directory "
          "path (got " +
              Table::num(pingpongSpeedup, 2) + "x)");
    check(writeBenchJson(jsonPath, metrics), "wrote " + jsonPath);
    return checksExitCode();
}
