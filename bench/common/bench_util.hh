/**
 * @file
 * Shared utilities for the experiment harnesses: aligned table
 * printing, per-configuration NPB runs with cost breakdowns, and the
 * system-configuration vocabulary of the evaluation (§8).
 */

#ifndef STRAMASH_BENCH_BENCH_UTIL_HH
#define STRAMASH_BENCH_BENCH_UTIL_HH

#include <string>
#include <utility>
#include <vector>

#include "stramash/workloads/npb.hh"

namespace stramash::bench
{

/** Simple fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print() const;

    static std::string num(double v, int precision = 2);
    static std::string big(std::uint64_t v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** One evaluated configuration of Fig. 9 / Fig. 10. */
struct EvalConfig
{
    std::string label;
    OsDesign design;
    MemoryModel model;
    Transport transport;
    bool migrate;
    Addr l3Size;
};

/** The paper's eight Fig.-9 columns. */
std::vector<EvalConfig> figure9Configs(Addr l3Size);

/** Outcome of one NPB run under one configuration. */
struct EvalResult
{
    Cycles runtime = 0;
    Cycles instCycles = 0;   ///< non-memory (icount / fixed IPC)
    Cycles memCycles = 0;    ///< memory-system feedback
    std::uint64_t messages = 0;
    std::uint64_t replicated = 0;
    std::uint64_t localMemHits = 0;
    std::uint64_t remoteMemHits = 0;
    std::uint64_t ipis = 0;
    bool verified = false;
};

/**
 * Telemetry artifact destinations, parsed from the common
 * `--trace-out <file>` / `--stats-json <file>` CLI flags every
 * harness accepts. Empty paths disable the corresponding output.
 */
struct ArtifactOptions
{
    std::string traceOut;
    std::string statsJson;

    bool any() const { return !traceOut.empty() || !statsJson.empty(); }
};

/** Parse the artifact flags; unknown arguments are left alone. */
ArtifactOptions parseArtifactArgs(int argc, char **argv);

/**
 * Collects telemetry from benchmark runs. apply() turns tracing on
 * in a SystemConfig when a trace file was requested; capture() dumps
 * the system's trace (one file per run with the label spliced in
 * before the extension, while the plain --trace-out path always holds
 * the latest capture) and accumulates the system's stat groups under
 * the run label. The stats JSON, one object per captured run, is
 * written on destruction.
 */
class ArtifactWriter
{
  public:
    explicit ArtifactWriter(ArtifactOptions opts);
    ~ArtifactWriter();

    ArtifactWriter(const ArtifactWriter &) = delete;
    ArtifactWriter &operator=(const ArtifactWriter &) = delete;

    bool wantsTrace() const { return !opts_.traceOut.empty(); }
    void apply(SystemConfig &cfg) const;
    void capture(System &sys, const std::string &label);

  private:
    ArtifactOptions opts_;
    unsigned traceCaptures_ = 0;
    bool traceWriteFailed_ = false;
    std::vector<std::pair<std::string, std::string>> statRuns_;
};

/** Run one NPB kernel under one configuration. */
EvalResult runNpbConfig(const std::string &kernel,
                        const EvalConfig &config,
                        const NpbConfig &ncfg,
                        ArtifactWriter *artifacts = nullptr);

/** One recorded event of an execution trace. */
struct TraceOp
{
    bool isRetire;
    AccessType type;
    unsigned size;
    Addr addr;
    ICount count;
};

/** A captured execution (access + retirement stream). */
struct Trace
{
    std::vector<TraceOp> ops;
    ICount totalInst = 0;
    std::uint64_t totalAccessBytes = 0;
};

/**
 * Run an NPB kernel vanilla (no migration, FullyShared) and capture
 * the full access/retire stream for replay through alternative
 * timing models (Figs. 7 and 8).
 */
Trace captureNpbTrace(const std::string &kernel, Addr problemBytes,
                      unsigned iterations);

/** Shape-check helper: prints PASS/FAIL like the AE scripts. */
void check(bool ok, const std::string &what);

/** Non-zero exit if any check() failed. */
int checksExitCode();

/**
 * Write a flat machine-readable benchmark artifact: a single JSON
 * object of name -> number, in the order given. Used by the
 * perf-smoke CI job (scripts/check_bench_regression.py) to track
 * throughput across commits. @return false if the file could not be
 * written (also reported on stderr).
 */
bool writeBenchJson(
    const std::string &path,
    const std::vector<std::pair<std::string, double>> &metrics);

} // namespace stramash::bench

#endif // STRAMASH_BENCH_BENCH_UTIL_HH
