/**
 * @file
 * A faithful port of the pre-directory CoherenceDomain, kept as the
 * measurement baseline for bench_throughput's "speedup vs the old
 * coherence hot loop" number.
 *
 * This reproduces the original implementation's simulator-side costs
 * exactly where they differed from today's CoherenceDomain:
 *
 *   - node contexts in a std::map<NodeId, NodeCtx>, looked up on
 *     every access and iterated (pointer-chasing) on every snoop
 *     round;
 *   - no snoop-filter directory and no L1 fast path: every miss and
 *     every store upgrade probes every other node's hierarchy;
 *   - the original four-probe holds() (L1I, L1D, L2, L3) instead of
 *     the inclusion-based single-probe membership query;
 *   - two separate probe rounds per load miss (one to snoop, one to
 *     decide the Shared-vs-Exclusive fill state);
 *   - the eviction callback wrapped in a std::function constructed
 *     per miss (one heap allocation each), as fill() took it before
 *     becoming a template;
 *   - the back-invalidate counter bumped through a by-name StatGroup
 *     lookup.
 *
 * It drives the same CacheHierarchy/SetAssocCache machinery, so given
 * the same access stream it must produce exactly the same statistics
 * as CoherenceDomain in either mode — bench_throughput cross-checks
 * that, which is what makes the throughput comparison meaningful.
 * Tracing hooks are omitted (the benches never attach them); the
 * back_invalidates counter is registered eagerly so all three
 * implementations expose identical counter sets.
 */

#ifndef STRAMASH_BENCH_LEGACY_COHERENCE_HH
#define STRAMASH_BENCH_LEGACY_COHERENCE_HH

#include <functional>
#include <map>
#include <memory>

#include "stramash/cache/coherence.hh"
#include "stramash/cache/hierarchy.hh"
#include "stramash/common/stats.hh"
#include "stramash/mem/latency_profile.hh"
#include "stramash/mem/phys_map.hh"

namespace stramash::bench
{

class LegacyCoherenceDomain
{
  public:
    LegacyCoherenceDomain(const PhysMap &map, SnoopCosts snoopCosts,
                          const CacheGeometry *sharedLlc = nullptr)
        : map_(map), snoopCosts_(snoopCosts)
    {
        if (sharedLlc)
            sharedLlc_ = std::make_unique<SetAssocCache>(*sharedLlc);
    }

    void
    addNode(NodeId node, const HierarchyGeometry &geom,
            const LatencyProfile &profile)
    {
        panic_if(nodes_.count(node), "node ", node,
                 " already registered");
        NodeCtx nc;
        nc.stats = std::make_unique<StatGroup>(
            std::string("cache.node") + std::to_string(node));
        HierarchyGeometry g = geom;
        if (sharedLlc_)
            g.l3.sizeBytes = 0;
        nc.hier = std::make_unique<CacheHierarchy>(node, g, *nc.stats);
        if (sharedLlc_)
            nc.hier->attachSharedL3(sharedLlc_.get());
        nc.profile = profile;
        nc.localMemHits = &nc.stats->counter("local_mem_hits");
        nc.remoteMemHits = &nc.stats->counter("remote_mem_hits");
        nc.remoteSharedMemHits =
            &nc.stats->counter("remote_shared_mem_hits");
        nc.memAccesses = &nc.stats->counter("mem_accesses");
        nc.snoopInvalidates = &nc.stats->counter("snoop_invalidates");
        nc.snoopDatas = &nc.stats->counter("snoop_datas");
        nc.writebacks = &nc.stats->counter("writebacks");
        nc.stats->counter("back_invalidates");
        nodes_.emplace(node, std::move(nc));
    }

    StatGroup &nodeStats(NodeId node) { return *ctx(node).stats; }

    AccessResult
    accessLine(NodeId node, AccessType type, Addr addr)
    {
        NodeCtx &nc = ctx(node);
        CacheHierarchy &hier = *nc.hier;
        Addr lineAddr = lineBase(addr);
        bool inst = type == AccessType::InstFetch;

        AccessResult res;
        res.level = hier.lookup(lineAddr, inst);

        if (res.level != HitLevel::Memory) {
            res.latency =
                nc.profile.levelLatency(static_cast<int>(res.level));
            if (type == AccessType::Store) {
                Mesi state = hier.lineState(lineAddr);
                if (state != Mesi::Modified &&
                    state != Mesi::Exclusive) {
                    res.latency +=
                        snoopOthers(node, type, lineAddr, res);
                }
                hier.setState(lineAddr, Mesi::Modified);
            }
            return res;
        }

        res.latency += snoopOthers(node, type, lineAddr, res);

        res.memClass = map_.classify(addr, node);
        ++*nc.memAccesses;
        switch (res.memClass) {
          case MemoryClass::Local:
            res.latency += nc.profile.mem;
            ++*nc.localMemHits;
            break;
          case MemoryClass::Remote:
            res.latency += nc.profile.remoteMem;
            ++*nc.remoteMemHits;
            break;
          case MemoryClass::SharedPool:
            res.latency += nc.profile.remoteMem;
            ++*nc.remoteSharedMemHits;
            break;
        }

        Mesi fillState = Mesi::Modified;
        if (type != AccessType::Store) {
            bool othersHold = false;
            for (auto &kv : nodes_) {
                if (kv.first != node && holds(*kv.second.hier, lineAddr)) {
                    othersHold = true;
                    break;
                }
            }
            fillState = othersHold ? Mesi::Shared : Mesi::Exclusive;
        }

        const std::function<void(Addr, bool, bool)> onEvict =
            [&](Addr victim, bool dirty, bool /*hadInner*/) {
                evicted(node, victim, dirty);
                if (sharedLlc_) {
                    for (auto &kv : nodes_) {
                        if (kv.first == node)
                            continue;
                        if (!holds(*kv.second.hier, victim))
                            continue;
                        bool d = kv.second.hier->invalidateLine(victim);
                        evicted(kv.first, victim, d);
                        res.latency += snoopCosts_.backInvalidate;
                        nc.stats->counter("back_invalidates") += 1;
                    }
                }
            };
        hier.fill(lineAddr, fillState, inst, onEvict);
        return res;
    }

  private:
    struct NodeCtx
    {
        std::unique_ptr<StatGroup> stats;
        std::unique_ptr<CacheHierarchy> hier;
        LatencyProfile profile;
        Counter *localMemHits = nullptr;
        Counter *remoteMemHits = nullptr;
        Counter *remoteSharedMemHits = nullptr;
        Counter *memAccesses = nullptr;
        Counter *snoopInvalidates = nullptr;
        Counter *snoopDatas = nullptr;
        Counter *writebacks = nullptr;
    };

    NodeCtx &
    ctx(NodeId node)
    {
        auto it = nodes_.find(node);
        panic_if(it == nodes_.end(), "unknown node ", node);
        return it->second;
    }

    /** The original all-levels membership walk. */
    static bool
    holds(CacheHierarchy &h, Addr lineAddr)
    {
        return h.l1i().holds(lineAddr) || h.l1d().holds(lineAddr) ||
               h.l2().holds(lineAddr) ||
               (h.l3() && h.l3()->holds(lineAddr));
    }

    void
    evicted(NodeId node, Addr /*lineAddr*/, bool dirty)
    {
        if (!dirty)
            return;
        ++*ctx(node).writebacks;
    }

    Cycles
    snoopOthers(NodeId node, AccessType type, Addr lineAddr,
                AccessResult &res)
    {
        Cycles extra = 0;
        NodeCtx &self = ctx(node);
        for (auto &kv : nodes_) {
            if (kv.first == node)
                continue;
            CacheHierarchy &other = *kv.second.hier;
            if (!holds(other, lineAddr))
                continue;
            if (type == AccessType::Store) {
                bool dirty = other.invalidateLine(lineAddr);
                evicted(kv.first, lineAddr, dirty);
                extra += snoopCosts_.snoopInvalidate;
                res.snoopInvalidate = true;
                ++*self.snoopInvalidates;
            } else {
                Mesi state = other.lineState(lineAddr);
                if (state == Mesi::Modified ||
                    state == Mesi::Exclusive) {
                    other.downgradeLine(lineAddr);
                    extra += snoopCosts_.snoopData;
                    res.snoopData = true;
                    ++*self.snoopDatas;
                }
            }
        }
        return extra;
    }

    const PhysMap &map_;
    SnoopCosts snoopCosts_;
    std::unique_ptr<SetAssocCache> sharedLlc_;
    std::map<NodeId, NodeCtx> nodes_;
};

} // namespace stramash::bench

#endif // STRAMASH_BENCH_LEGACY_COHERENCE_HH
