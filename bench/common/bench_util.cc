#include "bench_util.hh"

#include <cstdio>
#include <sstream>

namespace stramash::bench
{

namespace
{
int failedChecks = 0;
} // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::print() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size();
             ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto printRow = [&](const std::vector<std::string> &cells) {
        std::printf("  ");
        for (std::size_t c = 0; c < cells.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(widths[c]),
                        cells[c].c_str());
        std::printf("\n");
    };
    printRow(headers_);
    std::size_t total = 2;
    for (auto w : widths)
        total += w + 2;
    std::printf("  %s\n", std::string(total - 2, '-').c_str());
    for (const auto &row : rows_)
        printRow(row);
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::big(std::uint64_t v)
{
    return std::to_string(v);
}

std::vector<EvalConfig>
figure9Configs(Addr l3Size)
{
    using D = OsDesign;
    using M = MemoryModel;
    using T = Transport;
    return {
        {"Vanilla", D::FusedKernel, M::Separated, T::SharedMemory,
         false, l3Size},
        {"TCP", D::MultipleKernel, M::Separated, T::Network, true,
         l3Size},
        {"Separated-SHM", D::MultipleKernel, M::Separated,
         T::SharedMemory, true, l3Size},
        {"Shared-SHM", D::MultipleKernel, M::Shared, T::SharedMemory,
         true, l3Size},
        {"FullyShared-SHM", D::MultipleKernel, M::FullyShared,
         T::SharedMemory, true, l3Size},
        {"Separated", D::FusedKernel, M::Separated, T::SharedMemory,
         true, l3Size},
        {"Shared", D::FusedKernel, M::Shared, T::SharedMemory, true,
         l3Size},
        {"FullyShared", D::FusedKernel, M::FullyShared,
         T::SharedMemory, true, l3Size},
    };
}

EvalResult
runNpbConfig(const std::string &kernel, const EvalConfig &config,
             const NpbConfig &ncfg)
{
    SystemConfig cfg;
    cfg.osDesign = config.design;
    cfg.memoryModel = config.model;
    cfg.transport = config.transport;
    cfg.l3Size = config.l3Size;
    System sys(cfg);
    App app(sys, 0);

    NpbConfig run = ncfg;
    run.migrate = config.migrate;
    sys.resetExperimentCounters();

    NpbResult r = makeNpbKernel(kernel)->run(app, run);

    EvalResult out;
    out.runtime = sys.runtime();
    for (NodeId n = 0; n < sys.nodeCount(); ++n) {
        const Node &node = sys.machine().node(n);
        out.memCycles += node.memCycles();
        auto &cs = sys.machine().caches().nodeStats(n);
        out.localMemHits += cs.value("local_mem_hits");
        out.remoteMemHits += cs.value("remote_mem_hits") +
                             cs.value("remote_shared_mem_hits");
        out.ipis += sys.machine().ipisReceived(n);
    }
    out.instCycles = out.runtime - out.memCycles;
    out.messages = sys.messagesSent();
    out.replicated = sys.replicatedPages();
    out.verified = r.verified;
    return out;
}

Trace
captureNpbTrace(const std::string &kernel, Addr problemBytes,
                unsigned iterations)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.memoryModel = MemoryModel::FullyShared;
    cfg.transport = Transport::SharedMemory;
    System sys(cfg);
    App app(sys, 0);

    Trace trace;
    sys.machine().setTraceHooks(
        [&](NodeId, AccessType type, Addr addr, unsigned size) {
            trace.ops.push_back({false, type, size, addr, 0});
            trace.totalAccessBytes += size;
        },
        [&](NodeId, ICount n) {
            trace.ops.push_back({true, AccessType::Load, 0, 0, n});
            trace.totalInst += n;
        });

    NpbConfig ncfg;
    ncfg.iterations = iterations;
    ncfg.problemBytes = problemBytes;
    ncfg.migrate = false;
    NpbResult r = makeNpbKernel(kernel)->run(app, ncfg);
    sys.machine().clearTraceHooks();
    panic_if(!r.verified, "trace capture run failed verification");
    return trace;
}

void
check(bool ok, const std::string &what)
{
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok)
        ++failedChecks;
}

int
checksExitCode()
{
    return failedChecks == 0 ? 0 : 1;
}

} // namespace stramash::bench
