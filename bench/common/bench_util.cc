#include "bench_util.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "stramash/trace/json_stats.hh"
#include "stramash/trace/json_util.hh"

namespace stramash::bench
{

namespace
{
int failedChecks = 0;
} // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::print() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size();
             ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto printRow = [&](const std::vector<std::string> &cells) {
        std::printf("  ");
        for (std::size_t c = 0; c < cells.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(widths[c]),
                        cells[c].c_str());
        std::printf("\n");
    };
    printRow(headers_);
    std::size_t total = 2;
    for (auto w : widths)
        total += w + 2;
    std::printf("  %s\n", std::string(total - 2, '-').c_str());
    for (const auto &row : rows_)
        printRow(row);
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::big(std::uint64_t v)
{
    return std::to_string(v);
}

std::vector<EvalConfig>
figure9Configs(Addr l3Size)
{
    using D = OsDesign;
    using M = MemoryModel;
    using T = Transport;
    return {
        {"Vanilla", D::FusedKernel, M::Separated, T::SharedMemory,
         false, l3Size},
        {"TCP", D::MultipleKernel, M::Separated, T::Network, true,
         l3Size},
        {"Separated-SHM", D::MultipleKernel, M::Separated,
         T::SharedMemory, true, l3Size},
        {"Shared-SHM", D::MultipleKernel, M::Shared, T::SharedMemory,
         true, l3Size},
        {"FullyShared-SHM", D::MultipleKernel, M::FullyShared,
         T::SharedMemory, true, l3Size},
        {"Separated", D::FusedKernel, M::Separated, T::SharedMemory,
         true, l3Size},
        {"Shared", D::FusedKernel, M::Shared, T::SharedMemory, true,
         l3Size},
        {"FullyShared", D::FusedKernel, M::FullyShared,
         T::SharedMemory, true, l3Size},
    };
}

ArtifactOptions
parseArtifactArgs(int argc, char **argv)
{
    ArtifactOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--trace-out" && i + 1 < argc)
            opts.traceOut = argv[++i];
        else if (arg == "--stats-json" && i + 1 < argc)
            opts.statsJson = argv[++i];
    }
    return opts;
}

ArtifactWriter::ArtifactWriter(ArtifactOptions opts)
    : opts_(std::move(opts))
{
}

void
ArtifactWriter::apply(SystemConfig &cfg) const
{
    if (wantsTrace())
        cfg.trace.enabled = true;
}

namespace
{

std::string
labelledPath(const std::string &path, const std::string &label)
{
    std::string safe;
    for (char c : label)
        safe += (std::isalnum(static_cast<unsigned char>(c)) ||
                 c == '-' || c == '_')
                    ? c
                    : '_';
    auto dot = path.rfind('.');
    auto slash = path.rfind('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "." + safe;
    return path.substr(0, dot) + "." + safe + path.substr(dot);
}

} // namespace

void
ArtifactWriter::capture(System &sys, const std::string &label)
{
    if (wantsTrace()) {
        // Per-run labelled file, plus the plain --trace-out path
        // always holding the latest capture (the most interesting
        // runs — migrating configs — come last in every harness).
        bool ok = sys.writeChromeTrace(labelledPath(opts_.traceOut, label));
        ok = sys.writeChromeTrace(opts_.traceOut) && ok;
        if (ok) {
            ++traceCaptures_;
        } else if (!traceWriteFailed_) {
            // Benches run setQuiet(true), which swallows warn();
            // a requested artifact that cannot be written must
            // still be reported.
            traceWriteFailed_ = true;
            std::fprintf(stderr,
                         "warning: cannot write trace to %s\n",
                         opts_.traceOut.c_str());
        }
    }
    if (!opts_.statsJson.empty()) {
        JsonStatsExporter exporter;
        sys.forEachStatGroup(
            [&](const StatGroup &g) { exporter.add(g); });
        std::ostringstream os;
        exporter.writeGroupsObject(os);
        statRuns_.emplace_back(label, os.str());
    }
}

ArtifactWriter::~ArtifactWriter()
{
    if (opts_.statsJson.empty() || statRuns_.empty())
        return;
    std::ofstream out(opts_.statsJson);
    if (!out) {
        std::fprintf(stderr,
                     "warning: cannot write stats JSON to %s\n",
                     opts_.statsJson.c_str());
        return;
    }
    out << "{\"runs\":{";
    bool first = true;
    for (const auto &[label, groups] : statRuns_) {
        if (!first)
            out << ",";
        first = false;
        json::writeString(out, label);
        out << ":" << groups;
    }
    out << "}}\n";
}

EvalResult
runNpbConfig(const std::string &kernel, const EvalConfig &config,
             const NpbConfig &ncfg, ArtifactWriter *artifacts)
{
    SystemConfig cfg;
    cfg.osDesign = config.design;
    cfg.memoryModel = config.model;
    cfg.transport = config.transport;
    cfg.l3Size = config.l3Size;
    if (artifacts)
        artifacts->apply(cfg);
    System sys(cfg);
    App app(sys, 0);

    NpbConfig run = ncfg;
    run.migrate = config.migrate;
    sys.resetExperimentCounters();

    NpbResult r = makeNpbKernel(kernel)->run(app, run);

    if (artifacts)
        artifacts->capture(sys, kernel + "-" + config.label);

    EvalResult out;
    out.runtime = sys.runtime();
    for (NodeId n = 0; n < sys.nodeCount(); ++n) {
        const Node &node = sys.machine().node(n);
        out.memCycles += node.memCycles();
        auto &cs = sys.machine().caches().nodeStats(n);
        out.localMemHits += cs.value("local_mem_hits");
        out.remoteMemHits += cs.value("remote_mem_hits") +
                             cs.value("remote_shared_mem_hits");
        out.ipis += sys.machine().ipisReceived(n);
    }
    out.instCycles = out.runtime - out.memCycles;
    out.messages = sys.messagesSent();
    out.replicated = sys.replicatedPages();
    out.verified = r.verified;
    return out;
}

Trace
captureNpbTrace(const std::string &kernel, Addr problemBytes,
                unsigned iterations)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.memoryModel = MemoryModel::FullyShared;
    cfg.transport = Transport::SharedMemory;
    System sys(cfg);
    App app(sys, 0);

    Trace trace;
    sys.machine().setTraceHooks(
        [&](NodeId, AccessType type, Addr addr, unsigned size) {
            trace.ops.push_back({false, type, size, addr, 0});
            trace.totalAccessBytes += size;
        },
        [&](NodeId, ICount n) {
            trace.ops.push_back({true, AccessType::Load, 0, 0, n});
            trace.totalInst += n;
        });

    NpbConfig ncfg;
    ncfg.iterations = iterations;
    ncfg.problemBytes = problemBytes;
    ncfg.migrate = false;
    NpbResult r = makeNpbKernel(kernel)->run(app, ncfg);
    sys.machine().clearTraceHooks();
    panic_if(!r.verified, "trace capture run failed verification");
    return trace;
}

void
check(bool ok, const std::string &what)
{
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok)
        ++failedChecks;
}

int
checksExitCode()
{
    return failedChecks == 0 ? 0 : 1;
}

bool
writeBenchJson(
    const std::string &path,
    const std::vector<std::pair<std::string, double>> &metrics)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warning: cannot write bench JSON to %s\n",
                     path.c_str());
        return false;
    }
    out << "{";
    bool first = true;
    for (const auto &[name, value] : metrics) {
        if (!first)
            out << ",";
        first = false;
        out << "\n  ";
        json::writeString(out, name);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        out << ": " << buf;
    }
    out << "\n}\n";
    return static_cast<bool>(out);
}

} // namespace stramash::bench
