/**
 * @file
 * Seeded key-skew generators for the open-loop traffic engine.
 *
 * Production kv-store traffic is never uniform: a few hot keys take
 * most of the reads. The Zipfian generator here is the bounded
 * Gray et al. construction (the one YCSB popularised): rank r is
 * drawn with probability proportional to 1 / r^theta, in O(1) per
 * draw after an O(n) zeta precomputation. Because rank 0 would
 * otherwise always live on shard 0, ranks are scrambled through a
 * splitmix64 finaliser before use, spreading the hot set across
 * shards while preserving the rank-frequency shape.
 *
 * Draws come from a seeded PCG32 stream: identical seeds give
 * bit-identical key sequences.
 */

#ifndef STRAMASH_LOAD_KEYDIST_HH
#define STRAMASH_LOAD_KEYDIST_HH

#include "stramash/common/rng.hh"

namespace stramash
{

struct KeyDistConfig
{
    enum class Kind
    {
        Zipfian,
        Uniform,
    };

    Kind kind = Kind::Zipfian;
    /** Key-space size; keys are in [0, numKeys). */
    std::uint64_t numKeys = 256;
    /** Skew exponent (YCSB default 0.99). Ignored for Uniform. */
    double theta = 0.99;
    std::uint64_t seed = 1;

    static KeyDistConfig zipfian(std::uint64_t numKeys,
                                 double theta = 0.99,
                                 std::uint64_t seed = 1);
    static KeyDistConfig uniform(std::uint64_t numKeys,
                                 std::uint64_t seed = 1);
};

class KeyChooser
{
  public:
    explicit KeyChooser(KeyDistConfig cfg);

    /**
     * Next key in [0, numKeys). Zipfian ranks are scrambled so the
     * hot set does not collapse onto low key ids (= shard 0).
     */
    std::uint64_t next();

    /**
     * Next *rank* in [0, numKeys): rank 0 is the hottest. The
     * rank-frequency tests sample this stream directly; next() is
     * scramble(nextRank()).
     */
    std::uint64_t nextRank();

    /** The scramble permutation applied to ranks. */
    std::uint64_t scramble(std::uint64_t rank) const;

    const KeyDistConfig &config() const { return cfg_; }

  private:
    KeyDistConfig cfg_;
    Rng rng_;

    // Zipfian constants (Gray et al.).
    double zetan_ = 0.0;
    double theta_ = 0.0;
    double alpha_ = 0.0;
    double eta_ = 0.0;
};

} // namespace stramash

#endif // STRAMASH_LOAD_KEYDIST_HH
