/**
 * @file
 * Deterministic open-loop arrival processes.
 *
 * Every workload the repro ran before this subsystem was closed-loop:
 * a client issues its next request only after the previous one
 * completes, so offered load can never exceed service capacity and
 * the system can never exhibit queueing collapse or tail-latency
 * amplification. An ArrivalProcess decouples request injection from
 * completion: it emits inter-arrival gaps in *simulated cycles* at a
 * configured mean rate, independent of how the servers are doing.
 *
 * Two processes cover the evaluation:
 *
 *  - Poisson: exponential inter-arrival gaps (memoryless, the
 *    classic open-loop reference).
 *  - OnOff: a two-state modulated Poisson process (bursty traces) —
 *    an "on" phase offers burstMultiplier times the mean rate, an
 *    "off" phase idleMultiplier times, with exponentially
 *    distributed phase lengths. Mean rate is preserved when the
 *    multipliers average to 1 across phases.
 *
 * Both draw from seeded PCG32 streams (common/rng.hh), so identical
 * seeds give bit-identical arrival timelines on every host.
 */

#ifndef STRAMASH_LOAD_ARRIVAL_HH
#define STRAMASH_LOAD_ARRIVAL_HH

#include "stramash/common/rng.hh"
#include "stramash/common/types.hh"

namespace stramash
{

struct ArrivalConfig
{
    enum class Kind
    {
        Poisson,
        OnOff,
    };

    Kind kind = Kind::Poisson;

    /** Mean arrival rate in requests per simulated megacycle. */
    double ratePerMcycle = 100.0;

    /** On-phase rate multiplier (OnOff only). */
    double burstMultiplier = 4.0;
    /** Off-phase rate multiplier (OnOff only). */
    double idleMultiplier = 0.25;
    /** Mean phase length in cycles (exponential, OnOff only). */
    double meanPhaseCycles = 250000.0;

    /** Stream seed; identical seeds replay identical timelines. */
    std::uint64_t seed = 1;

    static ArrivalConfig poisson(double ratePerMcycle,
                                 std::uint64_t seed = 1);
    static ArrivalConfig onOff(double ratePerMcycle,
                               std::uint64_t seed = 1);
};

class ArrivalProcess
{
  public:
    explicit ArrivalProcess(ArrivalConfig cfg);

    /** Next inter-arrival gap in cycles (always >= 1). */
    Cycles next();

    const ArrivalConfig &config() const { return cfg_; }

    /** Arrivals generated so far. */
    std::uint64_t count() const { return count_; }

  private:
    ArrivalConfig cfg_;
    Rng rng_;
    std::uint64_t count_ = 0;

    /** OnOff modulation state. */
    bool onPhase_ = true;
    double phaseLeftCycles_ = 0.0;

    double expGap(double ratePerCycle);
};

} // namespace stramash

#endif // STRAMASH_LOAD_ARRIVAL_HH
