/**
 * @file
 * The shard-parallel open-loop service loop: the tail-latency
 * experiment restated as an epoch-driven event model so it can run
 * on the parallel host executor (sim/parallel_executor.hh).
 *
 * The classic KvFrontEnd couples every node's clock on every
 * cross-shard request (the ingress reads the owner's clock and walks
 * it forward before serving), which makes its timeline inherently
 * sequential — parallelising it bit-identically would need a
 * max-plus closure per request. ParallelKvService instead treats a
 * cross-shard request the way the hardware does: the ingress runs
 * its half, hands the owner a *demand* that travels for the IPI
 * latency, the owner serves it against its own clock and hands back
 * a *completion* that travels the same way; the request's latency is
 * the completion's arrival minus the open-loop arrival stamp. Both
 * legs ride the executor's conservative epoch staging, so the whole
 * timeline — every clock, counter, histogram bucket and shed
 * decision — is bit-identical for any host thread count, including
 * one.
 *
 * The OS-design asymmetry is preserved: the fused design forwards a
 * demand with two coherent doorbell accesses plus one IPI and the
 * owner runs half a stack pass, while the multiple-kernel design
 * pays a two-message RPC (accounted through the message layer's
 * modeled-send path) and a full stack pass at the owner. Batching,
 * admission control and shedding match the classic front end's
 * knobs (ServiceConfig); the hot-key cache is not modeled here.
 */

#ifndef STRAMASH_LOAD_PARALLEL_SERVICE_HH
#define STRAMASH_LOAD_PARALLEL_SERVICE_HH

#include "stramash/load/engine.hh"

namespace stramash
{

class HostExecutor;

class ParallelKvService
{
  public:
    ParallelKvService(System &sys, ShardedKvStore &store,
                      ServiceConfig cfg = {});

    /**
     * Offer @p lcfg.requests open-loop arrivals (the identical
     * seeded streams OpenLoopEngine would draw), serve them to
     * completion on @p exec's host lanes, and report. One service
     * instance is single-use like a fresh KvFrontEnd: build a new
     * System + store + service per measured run.
     */
    OpenLoopReport run(const OpenLoopConfig &lcfg, HostExecutor &exec);

    const ServiceConfig &config() const { return cfg_; }

  private:
    System &sys_;
    ShardedKvStore &store_;
    ServiceConfig cfg_;
};

} // namespace stramash

#endif // STRAMASH_LOAD_PARALLEL_SERVICE_HH
