/**
 * @file
 * The production service loop for the sharded kv-store: bounded
 * ingress queues, request batching, admission control, and a
 * per-node hot-key read cache.
 *
 * Each topology node owns an ingress queue of pending requests
 * stamped with their open-loop arrival cycle. The service loop
 * drains up to batchSize requests per dispatch (amortising the
 * wakeup/drain overhead the way a real event loop amortises epoll
 * wakeups), and admission control refuses work once the queue is at
 * capacity — load is shed through the same Errc::RingFull path the
 * transport uses, instead of queueing unboundedly. Per-request
 * latency (arrival → completion, in simulated cycles) feeds a
 * Histogram, so p50/p99/p999 drop out of the existing percentile
 * machinery.
 *
 * The hot-key cache is where the two OS designs diverge (the
 * Figure-14 asymmetry restated for serving traffic):
 *
 *  - FusedKernel: an ingress node caches hot values and validates a
 *    hit with ONE coherent load of the owner shard's version line.
 *    Writes invalidate every cached copy for free — coherence does
 *    it — so a stale hit is detected by the tag compare and simply
 *    refetched. No messages, no IPI, no owner work on a hit.
 *
 *  - MultipleKernel (Popcorn): there is no coherent memory to
 *    validate against, so the owner must *push* explicit
 *    CacheInvalidate messages to every caching node on each write.
 *    Hits are cheap but every write to a cached key pays per-sharer
 *    messaging — the cost the fused design dodges.
 */

#ifndef STRAMASH_LOAD_SERVICE_HH
#define STRAMASH_LOAD_SERVICE_HH

#include <deque>
#include <list>
#include <set>
#include <unordered_map>
#include <vector>

#include "stramash/workloads/sharded_kvstore.hh"

namespace stramash
{

class Scheduler;

struct ServiceConfig
{
    /** Max requests drained per dispatch. */
    std::size_t batchSize = 8;
    /** Per-node ingress queue bound; arrivals beyond it are shed. */
    std::size_t queueCapacity = 64;
    /** Per-dispatch fixed overhead (wakeup, drain, re-arm). */
    Cycles batchDispatchCycles = 4000;
    /** Per-arrival admission test (occupancy check at the socket). */
    Cycles admissionCycles = 200;
    /** Hot-key cache lookup/maintenance cost. */
    Cycles cacheLookupCycles = 300;
    /** Enable the per-node hot-key read cache. */
    bool hotKeyCache = false;
    /** Cached entries per node (LRU beyond that). */
    std::size_t cacheEntriesPerNode = 32;
    /** When set, drain() rebalances skewed ingress queues by work
     *  stealing: an idle node pulls pending requests from the
     *  deepest queue, paying the scheduler's design-specific steal
     *  path (coherent pops when fused, a StealRequest RPC on
     *  Popcorn). */
    Scheduler *sched = nullptr;
};

/** One queued request. */
struct PendingRequest
{
    Cycles arrival;
    KvOp op;
    std::uint64_t key;
};

class KvFrontEnd
{
  public:
    KvFrontEnd(System &sys, ShardedKvStore &store,
               ServiceConfig cfg = {});
    ~KvFrontEnd();

    KvFrontEnd(const KvFrontEnd &) = delete;
    KvFrontEnd &operator=(const KvFrontEnd &) = delete;

    /**
     * Offer one request arriving at simulated cycle @p arrival to
     * @p ingress's queue. Runs the service loop far enough to know
     * the queue's occupancy at that instant, then admits or sheds.
     *
     * @return Errc::Ok if admitted, Errc::RingFull if shed.
     *
     * Arrivals must be offered in non-decreasing arrival order per
     * ingress node (the open-loop engine guarantees a globally
     * sorted timeline).
     */
    Errc inject(Cycles arrival, KvOp op, std::uint64_t key,
                NodeId ingress);

    /** Serve every queued request to completion.
     *  @return the last completion cycle seen so far. */
    Cycles drain();

    /** Completion cycle of the most recently finished request. */
    Cycles lastCompletion() const { return lastCompletion_; }

    /** Front-end counters and histograms ("load" group; also
     *  registered with the System for --stats-json export). */
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    const ServiceConfig &config() const { return cfg_; }

    /** Current depth of @p node's ingress queue. */
    std::size_t queueDepth(NodeId node) const
    {
        return queues_[node].size();
    }

    /** Number of ingress nodes (the topology's node count). */
    std::size_t nodeCount() const { return queues_.size(); }

    /** True when @p node currently caches @p key. */
    bool cachesKey(NodeId node, std::uint64_t key) const
    {
        return caches_[node].map.count(key) != 0;
    }

  private:
    struct NodeCache
    {
        struct Entry
        {
            std::uint64_t tag;
            std::list<std::uint64_t>::iterator lruPos;
        };
        /** Front = most recently used key. */
        std::list<std::uint64_t> lru;
        std::unordered_map<std::uint64_t, Entry> map;
    };

    System &sys_;
    ShardedKvStore &store_;
    ServiceConfig cfg_;
    StatGroup stats_;

    std::vector<std::deque<PendingRequest>> queues_;
    std::vector<NodeCache> caches_;
    /** key -> nodes caching it (the owner's sharer directory; the
     *  multiple-kernel design needs it to target invalidations). */
    std::unordered_map<std::uint64_t, std::set<NodeId>> sharers_;

    Cycles lastCompletion_ = 0;

    Counter &accepted_;
    Counter &shed_;
    Counter &degradedShed_;
    Counter &served_;
    Counter &batches_;
    Counter &cacheHits_;
    Counter &cacheStale_;
    Counter &cacheMisses_;
    Counter &invalidationsSent_;
    Counter &coherentInvalidations_;
    Histogram &latencyHist_;
    Histogram &queueDepthHist_;
    Histogram &batchSizeHist_;

    bool fused() const
    {
        return sys_.config().osDesign == OsDesign::FusedKernel;
    }

    /** True when @p node is dead or partition-fenced: its ingress
     *  socket refuses work (degraded_shed) instead of queueing
     *  requests it could lose. */
    bool degradedNode(NodeId node) const;

    Cycles nodeClock(NodeId n) const;

    /** Run batches on @p node while they start before @p horizon. */
    void pump(NodeId node, Cycles horizon);

    /** Serve one batch from @p node's queue (must be non-empty). */
    void serveBatch(NodeId node);

    /** One steal round over the ingress queues (drain() only; needs
     *  cfg_.sched). @return true when any requests moved. */
    bool stealPending();

    /** Serve one request at @p ingress; records latency. */
    void serveOne(NodeId ingress, const PendingRequest &req);

    /** @return true when served from @p ingress's hot-key cache. */
    bool tryCachedGet(NodeId ingress, std::uint64_t key);

    /** Copy the value into @p ingress's cache after a miss. */
    void refill(NodeId ingress, std::uint64_t key);

    /** Write-side cache maintenance at the shard owner. */
    void invalidateSharers(NodeId owner, std::uint64_t key);

    /** Charge a payload-sized copy in @p node's local memory. */
    void chargeLocalPayload(NodeId node, AccessType type);

    void evictIfNeeded(NodeId node);
};

} // namespace stramash

#endif // STRAMASH_LOAD_SERVICE_HH
