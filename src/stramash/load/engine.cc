#include "stramash/load/engine.hh"

namespace stramash
{

OpenLoopEngine::OpenLoopEngine(OpenLoopConfig cfg) : cfg_(cfg)
{
    panic_if(cfg_.requests == 0, "open-loop run with no requests");
    panic_if(cfg_.setFraction < 0.0 || cfg_.setFraction > 1.0,
             "setFraction must be in [0, 1]");
}

OpenLoopReport
OpenLoopEngine::run(KvFrontEnd &fe)
{
    ArrivalProcess arrivals(cfg_.arrival);
    KeyChooser keys(cfg_.keys);
    // Independent stream for the op mix and ingress spraying, so
    // changing e.g. the arrival kind never perturbs which keys are
    // written.
    Rng mix(cfg_.seed, 0x0919);

    std::size_t n = fe.nodeCount();
    Cycles t = 0;
    for (std::size_t i = 0; i < cfg_.requests; ++i) {
        t += arrivals.next();
        std::uint64_t key = keys.next();
        KvOp op = mix.uniform() < cfg_.setFraction ? KvOp::Set
                                                   : KvOp::Get;
        auto ingress = static_cast<NodeId>(mix.below64(n));
        fe.inject(t, op, key, ingress);
    }
    Cycles last = fe.drain();

    const StatGroup &sg = fe.stats();
    auto &g = const_cast<StatGroup &>(sg);
    const Histogram &lat = g.histogram("latency", {1});

    OpenLoopReport r;
    r.offered = cfg_.requests;
    r.accepted = g.counter("accepted").value();
    r.shed = g.counter("ring_full").value();
    r.served = g.counter("served").value();
    r.batches = g.counter("batches").value();
    r.cacheHits = g.counter("cache_hits").value();
    r.cacheStale = g.counter("cache_stale").value();
    r.cacheMisses = g.counter("cache_misses").value();
    r.invalidationsSent = g.counter("invalidations_sent").value();
    r.coherentInvalidations =
        g.counter("coherent_invalidations").value();
    r.meanLatency = lat.mean();
    r.p50 = lat.percentile(0.50);
    r.p99 = lat.percentile(0.99);
    r.p999 = lat.percentile(0.999);
    r.lastCompletion = last;
    r.lastArrival = t;
    return r;
}

} // namespace stramash
