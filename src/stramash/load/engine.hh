/**
 * @file
 * The open-loop traffic engine: a seeded arrival process, a seeded
 * key chooser, and a seeded op/ingress mix, driven through a
 * KvFrontEnd on a global simulated timeline.
 *
 * Open-loop means arrivals do NOT wait for completions — the
 * timeline is fixed up front by the arrival process, exactly like
 * production traffic hitting a service. Past the saturation point
 * the queues grow, admission control sheds, and tail latency
 * explodes; a closed-loop driver (like ShardedKvStore::run) can
 * never show that regime because each client politely waits.
 *
 * Everything is seeded: identical configs produce bit-identical
 * request streams and therefore bit-identical reports.
 */

#ifndef STRAMASH_LOAD_ENGINE_HH
#define STRAMASH_LOAD_ENGINE_HH

#include "stramash/load/arrival.hh"
#include "stramash/load/keydist.hh"
#include "stramash/load/service.hh"

namespace stramash
{

struct OpenLoopConfig
{
    ArrivalConfig arrival;
    KeyDistConfig keys;
    /** Requests to offer (accepted + shed). */
    std::size_t requests = 2000;
    /** Fraction of offered requests that are Sets. */
    double setFraction = 0.10;
    /** Seed for the op-mix / ingress-choice stream (independent of
     *  the arrival and key streams). */
    std::uint64_t seed = 1;
};

/** What one open-loop run produced, in simulated cycles. */
struct OpenLoopReport
{
    std::uint64_t offered = 0;
    std::uint64_t accepted = 0;
    std::uint64_t shed = 0;
    std::uint64_t served = 0;
    std::uint64_t batches = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheStale = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t invalidationsSent = 0;
    std::uint64_t coherentInvalidations = 0;

    double meanLatency = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;

    /** Cycle the last served request completed at. */
    Cycles lastCompletion = 0;
    /** Cycle the last request arrived at. */
    Cycles lastArrival = 0;

    /** Fraction of offered requests refused by admission control. */
    double shedRate() const
    {
        return offered ? static_cast<double>(shed) / offered : 0.0;
    }

    /** Served requests per million cycles of run time. */
    double goodputPerMcycle() const
    {
        return lastCompletion
                   ? static_cast<double>(served) * 1e6 / lastCompletion
                   : 0.0;
    }
};

class OpenLoopEngine
{
  public:
    explicit OpenLoopEngine(OpenLoopConfig cfg);

    /**
     * Offer cfg.requests arrivals to @p fe on one global timeline,
     * then drain, then snapshot the front end's stats into a report.
     * Reuses of the same front end accumulate into its stats; use a
     * fresh System + front end per measured run.
     */
    OpenLoopReport run(KvFrontEnd &fe);

    const OpenLoopConfig &config() const { return cfg_; }

  private:
    OpenLoopConfig cfg_;
};

} // namespace stramash

#endif // STRAMASH_LOAD_ENGINE_HH
