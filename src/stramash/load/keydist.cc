#include "stramash/load/keydist.hh"

#include <cmath>

namespace stramash
{

KeyDistConfig
KeyDistConfig::zipfian(std::uint64_t numKeys, double theta,
                       std::uint64_t seed)
{
    KeyDistConfig cfg;
    cfg.kind = Kind::Zipfian;
    cfg.numKeys = numKeys;
    cfg.theta = theta;
    cfg.seed = seed;
    return cfg;
}

KeyDistConfig
KeyDistConfig::uniform(std::uint64_t numKeys, std::uint64_t seed)
{
    KeyDistConfig cfg;
    cfg.kind = Kind::Uniform;
    cfg.numKeys = numKeys;
    cfg.seed = seed;
    return cfg;
}

KeyChooser::KeyChooser(KeyDistConfig cfg)
    : cfg_(cfg), rng_(cfg.seed, 0x21bf)
{
    panic_if(cfg_.numKeys == 0, "key chooser with empty key space");
    if (cfg_.kind == KeyDistConfig::Kind::Zipfian) {
        panic_if(cfg_.theta <= 0.0 || cfg_.theta >= 1.0,
                 "zipfian theta must be in (0, 1)");
        theta_ = cfg_.theta;
        for (std::uint64_t i = 1; i <= cfg_.numKeys; ++i)
            zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
        double zeta2 = 1.0 + std::pow(0.5, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        double n = static_cast<double>(cfg_.numKeys);
        eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta_)) /
               (1.0 - zeta2 / zetan_);
    }
}

std::uint64_t
KeyChooser::nextRank()
{
    if (cfg_.kind == KeyDistConfig::Kind::Uniform)
        return rng_.below64(cfg_.numKeys);

    // Gray et al. O(1) bounded-Zipfian draw.
    double u = rng_.uniform();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    double n = static_cast<double>(cfg_.numKeys);
    auto rank = static_cast<std::uint64_t>(
        n * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= cfg_.numKeys ? cfg_.numKeys - 1 : rank;
}

std::uint64_t
KeyChooser::scramble(std::uint64_t rank) const
{
    if (cfg_.kind == KeyDistConfig::Kind::Uniform)
        return rank;
    // Affine permutation on the next power-of-two domain plus
    // cycle-walking back into [0, numKeys): a true permutation, so
    // distinct hot ranks land on distinct (and shard-spread) keys.
    std::uint64_t m = 1;
    while (m < cfg_.numKeys)
        m <<= 1;
    std::uint64_t mask = m - 1;
    std::uint64_t x = rank;
    do {
        x = (x * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL) &
            mask;
    } while (x >= cfg_.numKeys);
    return x;
}

std::uint64_t
KeyChooser::next()
{
    return scramble(nextRank());
}

} // namespace stramash
