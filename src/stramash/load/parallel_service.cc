#include "stramash/load/parallel_service.hh"

#include <algorithm>
#include <deque>

#include "stramash/sim/parallel_executor.hh"

namespace stramash
{

namespace
{

/** Latency buckets: powers of two, 1 Kcycle .. 128 Mcycles (same
 *  shape as the classic front end's histogram). */
std::vector<std::uint64_t>
latencyEdges()
{
    std::vector<std::uint64_t> e;
    for (std::uint64_t v = 1024; v <= (1ULL << 27); v <<= 1)
        e.push_back(v);
    return e;
}

/** Owner-side protocol work per served request (the app.compute()
 *  budget the closed-loop store charges). */
constexpr std::uint64_t kServeInstructions = 2500;

/** Staged-event kinds on the executor's cross-lane channel. */
constexpr std::uint32_t kDemand = 0;     // ingress -> shard owner
constexpr std::uint32_t kCompletion = 1; // owner -> ingress

/** One open-loop arrival bound for a specific ingress node. */
struct Arrival
{
    Cycles t;
    std::uint64_t key;
    KvOp op;
};

class TailDriver final : public EpochDriver
{
  public:
    TailDriver(System &sys, ShardedKvStore &store,
               const ServiceConfig &cfg,
               std::vector<std::vector<Arrival>> streams)
        : sys_(sys), store_(store), cfg_(cfg),
          streams_(std::move(streams)), nodes_(streams_.size()),
          latency_(latencyEdges()), queueDepth_({1, 2, 4, 8, 16, 32,
                                                 64, 128, 256, 512}),
          batchSize_({1, 2, 4, 8, 16, 32, 64})
    {
    }

    bool
    step(NodeId node, const EpochCtx &ctx) override
    {
        PerNode &st = nodes_[node];
        const std::vector<Arrival> &stream = streams_[node];
        for (;;) {
            // Admissions happen in arrival order; batches that start
            // before the next arrival (or the window edge) run
            // first, so the admission test sees the queue occupancy
            // of the arrival instant — exactly like the classic
            // front end's inject() pump.
            bool haveArrival = st.cursor < stream.size() &&
                               stream[st.cursor].t < ctx.windowEnd;
            Cycles limit = haveArrival ? stream[st.cursor].t
                                       : ctx.windowEnd;
            pump(node, limit);
            if (!haveArrival)
                break;
            admit(node, stream[st.cursor]);
            ++st.cursor;
        }
        return st.cursor < stream.size() || !st.queue.empty();
    }

    void
    deliver(NodeId node, const StagedEvent &ev) override
    {
        if (ev.kind == kDemand)
            serveDemand(node, ev);
        else
            complete(node, ev);
    }

    Cycles
    nextEventAt(NodeId node) const override
    {
        const PerNode &st = nodes_[node];
        Cycles next = kNoPendingEvent;
        if (st.cursor < streams_[node].size())
            next = streams_[node][st.cursor].t;
        if (!st.queue.empty())
            next = std::min(next,
                            std::max(clock(node),
                                     st.queue.front().arrival));
        return next;
    }

    OpenLoopReport
    report(Cycles lastArrival) const
    {
        OpenLoopReport r;
        for (const PerNode &st : nodes_) {
            r.offered += st.offered;
            r.accepted += st.accepted;
            r.shed += st.shed;
            r.served += st.served;
            r.batches += st.batches;
            r.lastCompletion =
                std::max(r.lastCompletion, st.lastCompletion);
        }
        r.meanLatency = latency_.mean();
        r.p50 = latency_.percentile(0.50);
        r.p99 = latency_.percentile(0.99);
        r.p999 = latency_.percentile(0.999);
        r.lastArrival = lastArrival;
        return r;
    }

  private:
    struct Pending
    {
        Cycles arrival;
        KvOp op;
        std::uint64_t key;
    };

    struct PerNode
    {
        std::size_t cursor = 0;
        std::deque<Pending> queue;
        std::uint64_t offered = 0;
        std::uint64_t accepted = 0;
        std::uint64_t shed = 0;
        std::uint64_t served = 0;
        std::uint64_t batches = 0;
        Cycles lastCompletion = 0;
    };

    System &sys_;
    ShardedKvStore &store_;
    const ServiceConfig &cfg_;
    std::vector<std::vector<Arrival>> streams_;
    std::vector<PerNode> nodes_;
    /** Shared, spinlocked, all-integer: sample order across lanes
     *  cannot perturb any derived value. */
    Histogram latency_;
    Histogram queueDepth_;
    Histogram batchSize_;

    bool
    fused() const
    {
        return sys_.config().osDesign == OsDesign::FusedKernel;
    }

    Cycles
    clock(NodeId n) const
    {
        return sys_.machine().node(n).cycles();
    }

    void
    admit(NodeId node, const Arrival &a)
    {
        Machine &machine = sys_.machine();
        PerNode &st = nodes_[node];
        ++st.offered;
        machine.stall(node, cfg_.admissionCycles);
        queueDepth_.sample(st.queue.size());
        if (st.queue.size() >= cfg_.queueCapacity) {
            ++st.shed;
            return;
        }
        st.queue.push_back({a.t, a.op, a.key});
        ++st.accepted;
    }

    void
    pump(NodeId node, Cycles limit)
    {
        PerNode &st = nodes_[node];
        while (!st.queue.empty()) {
            Cycles start =
                std::max(clock(node), st.queue.front().arrival);
            if (start >= limit)
                break;
            serveBatch(node);
        }
    }

    void
    serveBatch(NodeId node)
    {
        Machine &machine = sys_.machine();
        PerNode &st = nodes_[node];
        Cycles now = clock(node);
        Cycles start = std::max(now, st.queue.front().arrival);
        if (start > now)
            machine.stall(node, start - now);
        machine.stall(node, cfg_.batchDispatchCycles);

        std::size_t taken = 0;
        while (taken < cfg_.batchSize && !st.queue.empty() &&
               st.queue.front().arrival <= start) {
            Pending req = st.queue.front();
            st.queue.pop_front();
            ++taken;
            serveOne(node, req);
        }
        batchSize_.sample(taken);
        ++st.batches;
    }

    void
    serveOne(NodeId ingress, const Pending &req)
    {
        Machine &machine = sys_.machine();
        NodeId owner = store_.ownerNodeOf(req.key);
        if (owner == ingress) {
            machine.stall(ingress, KvStore::stackCycles);
            machine.retire(ingress, kServeInstructions);
            chargePayload(ingress, req.op == KvOp::Set
                                       ? AccessType::Store
                                       : AccessType::Load);
            Cycles done = clock(ingress);
            finish(ingress, done, req.arrival);
            return;
        }

        // Cross-shard: the ingress runs its half and hands the owner
        // a demand that travels for the IPI latency. The doorbell IPI
        // itself lands at the owner when the demand does
        // (serveDemand): charging it at send time would interleave
        // with the owner's idle gap-fills in a lane-dependent order.
        if (fused()) {
            KernelInstance &ownerK = sys_.kernel(owner);
            machine.dataAccess(ingress, AccessType::Load,
                               ownerK.dataAddrFor(0x50cce7), 64);
            machine.dataAccess(ingress, AccessType::Store,
                               ownerK.dataAddrFor(0xd00b311), 64);
            machine.stall(ingress, 2 * KvStore::remoteMmioCycles);
        } else {
            // Two-message RPC, modeled: the sender's setup stall and
            // the wire accounting happen now; the owner pays handler
            // dispatch when the demand lands (serveDemand), and the
            // response is accounted there too.
            machine.stall(ingress,
                          sys_.config().msgCosts.sendSetupCycles);
            Message m;
            m.type = MsgType::AppRequest;
            m.from = ingress;
            m.to = owner;
            sys_.msg().noteModeledSend(m);
        }
        LaneContext *lc = tlsLaneContext();
        panic_if(!lc, "parallel tail service outside an epoch lane");
        Cycles ready =
            clock(ingress) + sys_.machine().ipiCycles(owner);
        lc->events.push_back({ready, ingress, owner, lc->nextSeq++,
                              kDemand, req.arrival, req.key,
                              static_cast<std::uint64_t>(req.op)});
    }

    void
    serveDemand(NodeId owner, const StagedEvent &ev)
    {
        Machine &machine = sys_.machine();
        Cycles now = clock(owner);
        if (ev.ready > now)
            machine.stall(owner, ev.ready - now);
        if (fused()) {
            // The demand's doorbell IPI lands now; the owner's lane
            // owns it, so this delivers (and charges) inline.
            machine.sendIpi(ev.src, owner);
            machine.stall(owner, KvStore::stackCycles / 2);
        } else {
            machine.stall(owner,
                          sys_.config().msgCosts.handlerCycles);
            machine.stall(owner, KvStore::stackCycles);
        }
        machine.retire(owner, kServeInstructions);
        auto op = static_cast<KvOp>(ev.c);
        chargePayload(owner, op == KvOp::Set ? AccessType::Store
                                             : AccessType::Load);
        if (!fused()) {
            machine.stall(owner,
                          sys_.config().msgCosts.sendSetupCycles);
            Message m;
            m.type = MsgType::AppResponse;
            m.from = owner;
            m.to = ev.src;
            sys_.msg().noteModeledSend(m);
        }
        LaneContext *lc = tlsLaneContext();
        panic_if(!lc, "parallel tail service outside an epoch lane");
        Cycles ready =
            clock(owner) + sys_.machine().ipiCycles(ev.src);
        lc->events.push_back({ready, owner, ev.src, lc->nextSeq++,
                              kCompletion, ev.a, ev.b, ev.c});
    }

    void
    complete(NodeId ingress, const StagedEvent &ev)
    {
        finish(ingress, ev.ready, ev.a);
    }

    void
    finish(NodeId node, Cycles done, Cycles arrival)
    {
        PerNode &st = nodes_[node];
        panic_if(done < arrival,
                 "request completed before it arrived");
        latency_.sample(done - arrival);
        ++st.served;
        st.lastCompletion = std::max(st.lastCompletion, done);
    }

    void
    chargePayload(NodeId node, AccessType type)
    {
        Machine &machine = sys_.machine();
        std::size_t bytes = store_.payloadBytes();
        for (std::size_t off = 0; off < bytes; off += cacheLineSize) {
            machine.dataAccess(
                node, type,
                sys_.kernel(node).dataAddrFor(
                    0x10ad0000ULL + node * 0x10000ULL + off),
                cacheLineSize);
        }
    }
};

} // namespace

ParallelKvService::ParallelKvService(System &sys,
                                     ShardedKvStore &store,
                                     ServiceConfig cfg)
    : sys_(sys), store_(store), cfg_(cfg)
{
    panic_if(cfg_.batchSize == 0,
             "parallel service: batchSize must be >= 1");
    panic_if(cfg_.queueCapacity == 0,
             "parallel service: queueCapacity must be >= 1");
    panic_if(cfg_.hotKeyCache,
             "parallel service: the hot-key cache is not modeled; "
             "use the classic KvFrontEnd for cache experiments");
}

OpenLoopReport
ParallelKvService::run(const OpenLoopConfig &lcfg, HostExecutor &exec)
{
    panic_if(lcfg.requests == 0, "open-loop run with no requests");

    // Draw the identical seeded streams OpenLoopEngine would, in the
    // identical order, then split per ingress node.
    ArrivalProcess arrivals(lcfg.arrival);
    KeyChooser keys(lcfg.keys);
    Rng mix(lcfg.seed, 0x0919);

    std::size_t n = sys_.nodeCount();
    std::vector<std::vector<Arrival>> streams(n);
    Cycles t = 0;
    for (std::size_t i = 0; i < lcfg.requests; ++i) {
        t += arrivals.next();
        std::uint64_t key = keys.next();
        KvOp op = mix.uniform() < lcfg.setFraction ? KvOp::Set
                                                   : KvOp::Get;
        auto ingress = static_cast<NodeId>(mix.below64(n));
        streams[ingress].push_back({t, key, op});
    }

    TailDriver driver(sys_, store_, cfg_, std::move(streams));
    exec.run(driver);
    return driver.report(t);
}

} // namespace stramash
