#include "stramash/load/arrival.hh"

#include <cmath>

namespace stramash
{

ArrivalConfig
ArrivalConfig::poisson(double ratePerMcycle, std::uint64_t seed)
{
    ArrivalConfig cfg;
    cfg.kind = Kind::Poisson;
    cfg.ratePerMcycle = ratePerMcycle;
    cfg.seed = seed;
    return cfg;
}

ArrivalConfig
ArrivalConfig::onOff(double ratePerMcycle, std::uint64_t seed)
{
    ArrivalConfig cfg;
    cfg.kind = Kind::OnOff;
    cfg.ratePerMcycle = ratePerMcycle;
    cfg.seed = seed;
    return cfg;
}

ArrivalProcess::ArrivalProcess(ArrivalConfig cfg)
    : cfg_(cfg), rng_(cfg.seed, 0xa221)
{
    panic_if(cfg_.ratePerMcycle <= 0.0,
             "arrival process needs a positive rate");
    panic_if(cfg_.kind == ArrivalConfig::Kind::OnOff &&
                 (cfg_.burstMultiplier <= 0.0 ||
                  cfg_.idleMultiplier <= 0.0 ||
                  cfg_.meanPhaseCycles <= 0.0),
             "on/off arrival process needs positive multipliers "
             "and phase length");
}

double
ArrivalProcess::expGap(double ratePerCycle)
{
    // Inverse-CDF exponential draw. uniform() < 1 by construction,
    // so the log argument stays positive.
    double u = rng_.uniform();
    return -std::log(1.0 - u) / ratePerCycle;
}

Cycles
ArrivalProcess::next()
{
    ++count_;
    double baseRate = cfg_.ratePerMcycle / 1e6;
    double gap;
    if (cfg_.kind == ArrivalConfig::Kind::Poisson) {
        gap = expGap(baseRate);
    } else {
        // Modulated Poisson: consume phase budget; a gap can span a
        // phase boundary, in which case the remainder is re-drawn at
        // the next phase's rate (memorylessness makes this exact).
        gap = 0.0;
        for (;;) {
            double rate = baseRate * (onPhase_ ? cfg_.burstMultiplier
                                               : cfg_.idleMultiplier);
            if (phaseLeftCycles_ <= 0.0)
                phaseLeftCycles_ = expGap(1.0 / cfg_.meanPhaseCycles);
            double g = expGap(rate);
            if (g <= phaseLeftCycles_) {
                phaseLeftCycles_ -= g;
                gap += g;
                break;
            }
            gap += phaseLeftCycles_;
            phaseLeftCycles_ = 0.0;
            onPhase_ = !onPhase_;
        }
    }
    // Round up so time always advances (two requests never share a
    // cycle, keeping per-request completion ordering well defined).
    double rounded = std::ceil(gap);
    if (rounded < 1.0)
        rounded = 1.0;
    return static_cast<Cycles>(rounded);
}

} // namespace stramash
