#include "stramash/load/service.hh"

#include <algorithm>

#include "stramash/sched/scheduler.hh"

namespace stramash
{

namespace
{

/** Latency buckets: powers of two, 1 Kcycle .. 128 Mcycles. */
std::vector<std::uint64_t>
latencyEdges()
{
    std::vector<std::uint64_t> e;
    for (std::uint64_t v = 1024; v <= (1ULL << 27); v <<= 1)
        e.push_back(v);
    return e;
}

} // namespace

KvFrontEnd::KvFrontEnd(System &sys, ShardedKvStore &store,
                       ServiceConfig cfg)
    : sys_(sys),
      store_(store),
      cfg_(cfg),
      stats_("load"),
      queues_(sys.nodeCount()),
      caches_(sys.nodeCount()),
      accepted_(stats_.counter("accepted")),
      shed_(stats_.counter("ring_full")),
      degradedShed_(stats_.counter("degraded_shed")),
      served_(stats_.counter("served")),
      batches_(stats_.counter("batches")),
      cacheHits_(stats_.counter("cache_hits")),
      cacheStale_(stats_.counter("cache_stale")),
      cacheMisses_(stats_.counter("cache_misses")),
      invalidationsSent_(stats_.counter("invalidations_sent")),
      coherentInvalidations_(
          stats_.counter("coherent_invalidations")),
      latencyHist_(stats_.histogram("latency", latencyEdges())),
      queueDepthHist_(stats_.histogram(
          "queue_depth", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512})),
      batchSizeHist_(
          stats_.histogram("batch_size", {1, 2, 4, 8, 16, 32, 64}))
{
    panic_if(cfg_.batchSize == 0, "front end: batchSize must be >= 1");
    panic_if(cfg_.queueCapacity == 0,
             "front end: queueCapacity must be >= 1 (capacity 0 "
             "would shed everything)");
    panic_if(cfg_.hotKeyCache && cfg_.cacheEntriesPerNode == 0,
             "front end: hot-key cache with no entries");

    // The multiple-kernel design's push invalidations arrive as
    // CacheInvalidate notes; each kernel drops its node's entry.
    Counter &rx = stats_.counter("invalidations_received");
    Counter *rxp = &rx;
    for (NodeId n = 0; n < sys_.nodeCount(); ++n) {
        sys_.kernel(n).registerMsgHandler(
            MsgType::CacheInvalidate,
            [this, n, rxp](const Message &m) {
                NodeCache &c = caches_[n];
                auto it = c.map.find(m.arg0);
                if (it != c.map.end()) {
                    c.lru.erase(it->second.lruPos);
                    c.map.erase(it);
                }
                ++*rxp;
            });
    }
    sys_.registerExternalStatGroup(&stats_);
}

KvFrontEnd::~KvFrontEnd()
{
    sys_.unregisterExternalStatGroup(&stats_);
}

Cycles
KvFrontEnd::nodeClock(NodeId n) const
{
    return sys_.machine().node(n).cycles();
}

bool
KvFrontEnd::degradedNode(NodeId node) const
{
    if (!sys_.machine().nodeAlive(node))
        return true;
    CrashManager *cm = sys_.crashManager();
    return cm && cm->isSelfFenced(node);
}

Errc
KvFrontEnd::inject(Cycles arrival, KvOp op, std::uint64_t key,
                   NodeId ingress)
{
    panic_if(ingress >= queues_.size(), "inject at unknown node");
    if (degradedNode(ingress)) {
        // The node's socket is fenced (or the node is gone): refuse
        // at the door, before any queueing or clock charge. Nothing
        // is acknowledged, so nothing can be lost.
        ++degradedShed_;
        sys_.machine().tracer().instant(TraceCategory::App,
                                        "load.degraded_shed", ingress,
                                        0, key, 0);
        return Errc::Degraded;
    }
    // Let the service loop catch up to this arrival instant first,
    // so the occupancy the admission test sees is the occupancy at
    // time `arrival`, not at the end of the previous drain.
    pump(ingress, arrival);

    Machine &machine = sys_.machine();
    machine.stall(ingress, cfg_.admissionCycles);
    std::deque<PendingRequest> &q = queues_[ingress];
    queueDepthHist_.sample(q.size());
    if (q.size() >= cfg_.queueCapacity) {
        // Backpressure: shed through the same error path a full
        // transport ring reports, instead of queueing unboundedly.
        ++shed_;
        machine.tracer().instant(TraceCategory::App, "load.shed",
                                 ingress, 0, key, q.size());
        return Errc::RingFull;
    }
    q.push_back({arrival, op, key});
    ++accepted_;
    return Errc::Ok;
}

void
KvFrontEnd::pump(NodeId node, Cycles horizon)
{
    std::deque<PendingRequest> &q = queues_[node];
    while (!q.empty()) {
        Cycles start = std::max(nodeClock(node), q.front().arrival);
        if (start >= horizon)
            break;
        serveBatch(node);
    }
}

void
KvFrontEnd::serveBatch(NodeId node)
{
    std::deque<PendingRequest> &q = queues_[node];
    panic_if(q.empty(), "serveBatch on empty queue");
    Machine &machine = sys_.machine();

    // A dead node's clock is frozen; requests stranded in its queue
    // are shed wholesale, with no dispatch charge to account them to.
    if (!machine.nodeAlive(node)) {
        degradedShed_ += static_cast<std::int64_t>(q.size());
        q.clear();
        return;
    }

    // The dispatch wakes when the head request is available: either
    // now (work was queued) or at its arrival (the loop was idle).
    Cycles clock = nodeClock(node);
    Cycles start = std::max(clock, q.front().arrival);
    if (start > clock)
        machine.stall(node, start - clock);
    machine.stall(node, cfg_.batchDispatchCycles);

    // Drain up to batchSize requests that had arrived by wakeup;
    // the fixed dispatch overhead amortises across all of them.
    std::size_t taken = 0;
    while (taken < cfg_.batchSize && !q.empty() &&
           q.front().arrival <= start) {
        PendingRequest req = q.front();
        q.pop_front();
        ++taken;
        serveOne(node, req);
    }
    batchSizeHist_.sample(taken);
    ++batches_;
}

void
KvFrontEnd::serveOne(NodeId ingress, const PendingRequest &req)
{
    Machine &machine = sys_.machine();
    NodeId owner = store_.ownerNodeOf(req.key);

    // A request can get trapped in the queue by a partition that
    // lands after admission: shed it here (no latency sample, no
    // served count) — the store would refuse it anyway, and a dead
    // owner's clock cannot be charged.
    if (degradedNode(ingress) || degradedNode(owner)) {
        ++degradedShed_;
        machine.tracer().instant(TraceCategory::App,
                                 "load.degraded_shed", ingress, 0,
                                 req.key, owner);
        return;
    }

    // A forwarded request cannot start on the owner before it was
    // sent: pull an idle owner's clock up to the ingress clock.
    if (owner != ingress) {
        Cycles now = nodeClock(ingress);
        Cycles oc = nodeClock(owner);
        if (oc < now)
            machine.stall(owner, now - oc);
    }

    bool cached = false;
    if (cfg_.hotKeyCache && req.op == KvOp::Get && owner != ingress)
        cached = tryCachedGet(ingress, req.key);

    if (!cached) {
        if (store_.exec(req.op, req.key, ingress) != Errc::Ok) {
            // Shed mid-flight (fencing raced us, or the forward link
            // is down and the breaker tripped): not served, and no
            // latency sample — tail percentiles measure service, not
            // refusals.
            ++degradedShed_;
            machine.tracer().instant(TraceCategory::App,
                                     "load.degraded_shed", ingress, 0,
                                     req.key, owner);
            return;
        }
        if (cfg_.hotKeyCache) {
            if (req.op == KvOp::Get && owner != ingress)
                refill(ingress, req.key);
            else if (req.op == KvOp::Set)
                invalidateSharers(owner, req.key);
        }
    }

    Cycles done = nodeClock(ingress);
    if (!cached && owner != ingress)
        done = std::max(done, nodeClock(owner));
    panic_if(done < req.arrival,
             "request completed before it arrived");
    latencyHist_.sample(done - req.arrival);
    ++served_;
    if (done > lastCompletion_)
        lastCompletion_ = done;
}

bool
KvFrontEnd::tryCachedGet(NodeId ingress, std::uint64_t key)
{
    Machine &machine = sys_.machine();
    machine.stall(ingress, cfg_.cacheLookupCycles);
    NodeCache &c = caches_[ingress];
    auto it = c.map.find(key);
    if (it == c.map.end()) {
        ++cacheMisses_;
        return false;
    }

    if (fused()) {
        // Validate with one coherent load of the owner shard's
        // version line: if a write happened anywhere, coherence has
        // already invalidated our copy of that line, so the tag
        // compare sees the new value. This load *is* the entire
        // invalidation protocol.
        NodeId owner = store_.ownerNodeOf(key);
        machine.dataAccess(
            ingress, AccessType::Load,
            sys_.kernel(owner).dataAddrFor(0x5ca1ab1e00000000ULL +
                                           key),
            8);
        if (it->second.tag != store_.currentTag(key)) {
            // Stale: coherent memory invalidated it for free. Fall
            // back to the full path (the refill updates the tag).
            ++cacheStale_;
            return false;
        }
    }
    // Popcorn hits skip validation entirely: the owner's push
    // invalidations (invalidateSharers) keep present == valid.

    // Serve locally: socket stack work plus a local payload copy.
    // No forwarding, no IPI, no owner involvement.
    machine.stall(ingress, KvStore::stackCycles);
    chargeLocalPayload(ingress, AccessType::Load);
    c.lru.erase(it->second.lruPos);
    c.lru.push_front(key);
    it->second.lruPos = c.lru.begin();
    ++cacheHits_;
    return true;
}

void
KvFrontEnd::refill(NodeId ingress, std::uint64_t key)
{
    Machine &machine = sys_.machine();
    machine.stall(ingress, cfg_.cacheLookupCycles);
    chargeLocalPayload(ingress, AccessType::Store);

    NodeCache &c = caches_[ingress];
    auto it = c.map.find(key);
    if (it != c.map.end()) {
        it->second.tag = store_.currentTag(key);
        c.lru.erase(it->second.lruPos);
        c.lru.push_front(key);
        it->second.lruPos = c.lru.begin();
        return;
    }
    c.lru.push_front(key);
    c.map.emplace(key,
                  NodeCache::Entry{store_.currentTag(key),
                                   c.lru.begin()});
    sharers_[key].insert(ingress);
    evictIfNeeded(ingress);
}

void
KvFrontEnd::evictIfNeeded(NodeId node)
{
    NodeCache &c = caches_[node];
    while (c.map.size() > cfg_.cacheEntriesPerNode) {
        std::uint64_t victim = c.lru.back();
        c.lru.pop_back();
        c.map.erase(victim);
        auto sh = sharers_.find(victim);
        if (sh != sharers_.end()) {
            sh->second.erase(node);
            if (sh->second.empty())
                sharers_.erase(sh);
        }
    }
}

void
KvFrontEnd::invalidateSharers(NodeId owner, std::uint64_t key)
{
    auto it = sharers_.find(key);
    if (it == sharers_.end() || it->second.empty())
        return;

    if (fused()) {
        // Nothing to send: the tag store in exec() already bounced
        // the version line out of every sharer's cache hierarchy.
        // Count the free invalidations so the asymmetry is visible
        // in the stats.
        coherentInvalidations_ += it->second.size();
        return;
    }

    // Multiple-kernel: push one explicit invalidation note per
    // sharer, paying transport costs for each. Delivery is
    // immediate (dispatchPending) so present == valid holds.
    MessageLayer &msg = sys_.msg();
    for (NodeId n : it->second) {
        if (n == owner)
            continue;
        Message m;
        m.type = MsgType::CacheInvalidate;
        m.from = owner;
        m.to = n;
        m.arg0 = key;
        while (msg.send(m) == Errc::RingFull)
            msg.dispatchPending(n);
        msg.dispatchPending(n);
        ++invalidationsSent_;
    }
    sharers_.erase(it);
}

void
KvFrontEnd::chargeLocalPayload(NodeId node, AccessType type)
{
    Machine &machine = sys_.machine();
    std::size_t bytes = store_.payloadBytes();
    for (std::size_t off = 0; off < bytes; off += cacheLineSize) {
        machine.dataAccess(
            node, type,
            sys_.kernel(node).dataAddrFor(
                0x10ad0000ULL + node * 0x10000ULL + off),
            cacheLineSize);
    }
}

bool
KvFrontEnd::stealPending()
{
    Scheduler *sched = cfg_.sched;
    unsigned batch = sched->config().stealBatch;
    bool moved = false;
    for (NodeId thief = 0; thief < queues_.size(); ++thief) {
        if (!queues_[thief].empty() || degradedNode(thief))
            continue;
        // Deepest ingress queue worth robbing (>= 2 so the victim's
        // loop keeps its head request).
        NodeId victim = invalidNode;
        std::size_t bestDepth = 1;
        for (NodeId n = 0; n < queues_.size(); ++n) {
            if (n == thief || degradedNode(n))
                continue;
            if (queues_[n].size() > bestDepth) {
                victim = n;
                bestDepth = queues_[n].size();
            }
        }
        if (victim == invalidNode)
            continue;
        unsigned want = static_cast<unsigned>(std::min<std::size_t>(
            batch, queues_[victim].size() - 1));
        unsigned got = sched->chargeStealPath(thief, victim, want);
        if (got == 0)
            continue;
        // Move the tail of the victim's queue, preserving order; the
        // stolen requests complete on the thief's clock from here.
        std::deque<PendingRequest> &vq = queues_[victim];
        std::deque<PendingRequest> &tq = queues_[thief];
        tq.insert(tq.end(), vq.end() - got, vq.end());
        vq.erase(vq.end() - got, vq.end());
        stats_.counter("queue_steals") += 1;
        stats_.counter("queue_steal_items") += got;
        sys_.machine().tracer().instant(TraceCategory::Sched,
                                        "load.queue_steal", thief, 0,
                                        victim, got);
        moved = true;
    }
    return moved;
}

Cycles
KvFrontEnd::drain()
{
    bool any = true;
    while (any) {
        any = false;
        if (cfg_.sched && cfg_.sched->config().stealing)
            any |= stealPending();
        for (NodeId n = 0; n < queues_.size(); ++n) {
            if (!queues_[n].empty()) {
                serveBatch(n);
                any = true;
            }
        }
    }
    return lastCompletion_;
}

} // namespace stramash
