/**
 * @file
 * Machine-readable export of StatGroups.
 *
 * The bench harnesses historically post-processed `name value` dump
 * lines with ad-hoc scripts; JsonStatsExporter replaces that with one
 * JSON document per run. Groups are *snapshotted* when added, so the
 * exporter stays valid after the System that owned them is gone.
 *
 * Document shape:
 *
 *   {
 *     "groups": {
 *       "kernel.node0": {
 *         "counters": {"page_faults": 12, ...},
 *         "histograms": {
 *           "wire_bytes": {"count":..., "min":..., "max":...,
 *                          "mean":..., "p50":..., "p99":...,
 *                          "p999":..., "samples":...,
 *                          "edges":[...], "buckets":[...]}
 *         }
 *       }, ...
 *     }
 *   }
 */

#ifndef STRAMASH_TRACE_JSON_STATS_HH
#define STRAMASH_TRACE_JSON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "stramash/common/stats.hh"

namespace stramash
{

class JsonStatsExporter
{
  public:
    /** Snapshot @p group now; later mutations are not reflected. */
    void add(const StatGroup &group);

    /** Number of snapshotted groups. */
    std::size_t groupCount() const { return groups_.size(); }

    /** Write the full document ({"groups": {...}}). */
    void write(std::ostream &os) const;

    /**
     * Write only the groups object ({...}), for embedding in a
     * larger document (the bench artifact writer nests one object
     * per configuration label).
     */
    void writeGroupsObject(std::ostream &os) const;

    /** Write the full document to @p path; false on I/O error. */
    bool writeFile(const std::string &path) const;

  private:
    struct HistSnapshot
    {
        std::uint64_t count, min, max;
        double mean, p50, p99, p999;
        std::vector<std::uint64_t> edges;
        std::vector<std::uint64_t> buckets;
    };

    struct GroupSnapshot
    {
        std::map<std::string, std::uint64_t> counters;
        std::map<std::string, HistSnapshot> histograms;
    };

    // Group name -> snapshot. Same-named groups (e.g. two Systems
    // alive at once) merge last-writer-wins, which matches how the
    // benches use one exporter per configuration.
    std::map<std::string, GroupSnapshot> groups_;
};

} // namespace stramash

#endif // STRAMASH_TRACE_JSON_STATS_HH
