/**
 * @file
 * Chrome trace-event / Perfetto export of a Tracer's buffers.
 *
 * The output is the JSON Object Format of the Chrome trace-event
 * specification ({"traceEvents": [...]}), which chrome://tracing and
 * https://ui.perfetto.dev open directly. Mapping:
 *
 *  - one *process* per simulated node ("node0 (x86_64)", ...), so
 *    each node gets its own track group;
 *  - the event's task pid becomes the thread id within that process
 *    (pid 0 = kernel work not attributable to one task);
 *  - timestamps are the node's cycle clock. Chrome's ts unit is
 *    nominally microseconds; we emit raw cycles and note the unit in
 *    otherData, which keeps relative durations exact.
 */

#ifndef STRAMASH_TRACE_CHROME_EXPORTER_HH
#define STRAMASH_TRACE_CHROME_EXPORTER_HH

#include <map>
#include <ostream>
#include <string>

#include "stramash/trace/trace.hh"

namespace stramash
{

class ChromeTraceExporter
{
  public:
    explicit ChromeTraceExporter(const Tracer &tracer)
        : tracer_(tracer)
    {
    }

    /** Pretty per-node track name ("node0 (x86_64)"). */
    void
    setNodeLabel(NodeId node, std::string label)
    {
        labels_[node] = std::move(label);
    }

    /** Write the full JSON document. */
    void write(std::ostream &os) const;

    /** Write to @p path; false (with a logged warning) on I/O error. */
    bool writeFile(const std::string &path) const;

  private:
    const Tracer &tracer_;
    std::map<NodeId, std::string> labels_;
};

} // namespace stramash

#endif // STRAMASH_TRACE_CHROME_EXPORTER_HH
