/**
 * @file
 * Tiny JSON-writing helpers shared by the trace exporters. Output
 * only — the simulator never parses JSON.
 */

#ifndef STRAMASH_TRACE_JSON_UTIL_HH
#define STRAMASH_TRACE_JSON_UTIL_HH

#include <cstdio>
#include <ostream>
#include <string_view>

namespace stramash::json
{

/** Write @p s as a quoted, escaped JSON string. */
inline void
writeString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/**
 * Write a finite double with enough precision to round-trip typical
 * stat values; JSON has no NaN/Inf, so those become 0.
 */
inline void
writeDouble(std::ostream &os, double v)
{
    if (!(v == v) || v > 1e308 || v < -1e308)
        v = 0.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
}

} // namespace stramash::json

#endif // STRAMASH_TRACE_JSON_UTIL_HH
