#include "stramash/trace/chrome_exporter.hh"

#include <fstream>
#include <set>

#include "stramash/trace/json_util.hh"

namespace stramash
{

void
ChromeTraceExporter::write(std::ostream &os) const
{
    auto events = tracer_.merged();

    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Track metadata: one "process" per node that has events (plus
    // every labelled node, so empty tracks still show their name).
    std::set<NodeId> nodes;
    for (const auto &ev : events)
        nodes.insert(ev.node);
    for (const auto &kv : labels_)
        nodes.insert(kv.first);
    for (NodeId n : nodes) {
        sep();
        auto it = labels_.find(n);
        std::string label = it != labels_.end()
                                ? it->second
                                : "node" + std::to_string(n);
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << n
           << ",\"tid\":0,\"args\":{\"name\":";
        json::writeString(os, label);
        os << "}}";
    }

    for (const auto &ev : events) {
        sep();
        Cycles dur = ev.endCycles - ev.startCycles;
        os << "{\"name\":";
        json::writeString(os, ev.name ? ev.name : "?");
        os << ",\"cat\":";
        json::writeString(os, traceCategoryName(ev.category));
        // Complete events ("X") render spans; instants keep ph "X"
        // with dur 0 rather than "i" so every record carries the
        // same fields (simpler for post-processing).
        os << ",\"ph\":\"X\",\"pid\":" << ev.node
           << ",\"tid\":" << ev.pid << ",\"ts\":" << ev.startCycles
           << ",\"dur\":" << dur << ",\"args\":{\"arg0\":" << ev.arg0
           << ",\"arg1\":" << ev.arg1 << "}}";
    }

    os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{"
       << "\"timestampUnit\":\"cycles\",\"droppedEvents\":"
       << tracer_.totalDropped() << "}}\n";
}

bool
ChromeTraceExporter::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open trace output file ", path);
        return false;
    }
    write(os);
    return static_cast<bool>(os);
}

} // namespace stramash
