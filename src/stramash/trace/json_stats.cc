#include "stramash/trace/json_stats.hh"

#include <fstream>

#include "stramash/common/logging.hh"
#include "stramash/trace/json_util.hh"

namespace stramash
{

void
JsonStatsExporter::add(const StatGroup &group)
{
    GroupSnapshot snap;
    for (const auto &kv : group.counters())
        snap.counters.emplace(kv.first, kv.second.value());
    for (const auto &kv : group.histograms()) {
        const Histogram &h = kv.second;
        HistSnapshot hs;
        hs.count = h.count();
        hs.min = h.minValue();
        hs.max = h.maxValue();
        hs.mean = h.mean();
        hs.p50 = h.percentile(0.50);
        hs.p99 = h.percentile(0.99);
        hs.p999 = h.percentile(0.999);
        hs.edges = h.edges();
        hs.buckets = h.buckets();
        snap.histograms.emplace(kv.first, std::move(hs));
    }
    groups_[group.name()] = std::move(snap);
}

void
JsonStatsExporter::writeGroupsObject(std::ostream &os) const
{
    os << "{";
    bool firstGroup = true;
    for (const auto &gkv : groups_) {
        if (!firstGroup)
            os << ",";
        firstGroup = false;
        os << "\n  ";
        json::writeString(os, gkv.first);
        os << ":{\"counters\":{";
        bool first = true;
        for (const auto &ckv : gkv.second.counters) {
            if (!first)
                os << ",";
            first = false;
            json::writeString(os, ckv.first);
            os << ":" << ckv.second;
        }
        os << "},\"histograms\":{";
        first = true;
        for (const auto &hkv : gkv.second.histograms) {
            if (!first)
                os << ",";
            first = false;
            const HistSnapshot &h = hkv.second;
            json::writeString(os, hkv.first);
            os << ":{\"count\":" << h.count << ",\"min\":" << h.min
               << ",\"max\":" << h.max << ",\"mean\":";
            json::writeDouble(os, h.mean);
            os << ",\"p50\":";
            json::writeDouble(os, h.p50);
            os << ",\"p99\":";
            json::writeDouble(os, h.p99);
            os << ",\"p999\":";
            json::writeDouble(os, h.p999);
            os << ",\"samples\":" << h.count;
            os << ",\"edges\":[";
            for (std::size_t i = 0; i < h.edges.size(); ++i)
                os << (i ? "," : "") << h.edges[i];
            os << "],\"buckets\":[";
            for (std::size_t i = 0; i < h.buckets.size(); ++i)
                os << (i ? "," : "") << h.buckets[i];
            os << "]}";
        }
        os << "}}";
    }
    os << "\n}";
}

void
JsonStatsExporter::write(std::ostream &os) const
{
    os << "{\"groups\":";
    writeGroupsObject(os);
    os << "}\n";
}

bool
JsonStatsExporter::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open stats output file ", path);
        return false;
    }
    write(os);
    return static_cast<bool>(os);
}

} // namespace stramash
