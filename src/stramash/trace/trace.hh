/**
 * @file
 * Cross-layer event tracing (the `stramash/trace` subsystem).
 *
 * Every simulated component can emit timestamped TraceEvents onto its
 * node's TraceBuffer: page faults, inter-kernel messages, cross-ISA
 * IPIs, futex operations, migrations, allocator block moves and
 * coherence actions. Timestamps are the node's icount-driven cycle
 * clock, so a trace lines up exactly with the timing model that
 * produced the run's Figure/Table numbers.
 *
 * Design goals, in order:
 *
 *  1. Near-zero cost when disabled: one predictable branch per
 *     potential event (`Tracer::enabledFor`), no allocation, no
 *     clock read. Compiling with -DSTRAMASH_TRACE_DISABLED removes
 *     the span macro entirely.
 *  2. Bounded memory: each node owns a preallocated ring of POD
 *     records; when full the oldest record is overwritten and a
 *     dropped-events counter advances.
 *  3. Tool-friendly output: ChromeTraceExporter (chrome_exporter.hh)
 *     turns the merged buffers into Chrome/Perfetto JSON, one track
 *     per node.
 */

#ifndef STRAMASH_TRACE_TRACE_HH
#define STRAMASH_TRACE_TRACE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "stramash/common/logging.hh"
#include "stramash/common/types.hh"

namespace stramash
{

/** Event categories; one bit each in TraceConfig::categoryMask. */
enum class TraceCategory : std::uint8_t {
    Fault = 0,     ///< page-fault handling (local / DSM / fused paths)
    Msg = 1,       ///< message layer send / receive
    Ipi = 2,       ///< cross-ISA IPI delivery
    Futex = 3,     ///< futex wait / wake
    Migrate = 4,   ///< thread and whole-process migration
    Alloc = 5,     ///< global-allocator block online / offline
    Coherence = 6, ///< writebacks and cross-node snoops
    App = 7,       ///< workload-defined phases
    Chaos = 8,     ///< injected faults, retries, timeouts, give-ups
    Sched = 9,     ///< run-queue ops, placement decisions, steals
};

inline constexpr unsigned traceCategoryCount = 10;

/** Human-readable category name ("fault", "msg", ...). */
const char *traceCategoryName(TraceCategory c);

/** Mask bit for one category. */
constexpr std::uint32_t
traceCategoryBit(TraceCategory c)
{
    return std::uint32_t{1} << static_cast<unsigned>(c);
}

/** Mask covering every category. */
inline constexpr std::uint32_t traceAllCategories =
    (std::uint32_t{1} << traceCategoryCount) - 1;

/** Knobs wired through SystemConfig / MachineConfig. */
struct TraceConfig
{
    /** Master switch; everything is a no-op when false. */
    bool enabled = false;
    /** Ring capacity per node, in events. */
    std::size_t bufferEntries = 1 << 16;
    /** Only categories with their bit set are recorded. */
    std::uint32_t categoryMask = traceAllCategories;
};

/**
 * One recorded event. POD: `name` must point at a string with static
 * storage duration (a literal or msgTypeName()-style table entry) —
 * the buffer stores the pointer, never a copy.
 */
struct TraceEvent
{
    TraceCategory category;
    const char *name;
    NodeId node;
    Pid pid; ///< 0 when no task is involved
    Cycles startCycles;
    Cycles endCycles; ///< == startCycles for instant events
    std::uint64_t arg0;
    std::uint64_t arg1;
};

/** Anything that can absorb a stream of trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceEvent &ev) = 0;
};

/**
 * A preallocated drop-oldest ring of events. Single-threaded, like
 * the rest of the simulator: record() is a couple of stores.
 */
class TraceBuffer final : public TraceSink
{
  public:
    explicit TraceBuffer(std::size_t capacity);

    void record(const TraceEvent &ev) override;

    std::size_t capacity() const { return ring_.size(); }
    /** Events currently held (<= capacity). */
    std::size_t size() const { return size_; }
    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }
    /** Total events ever recorded (held + dropped). */
    std::uint64_t recorded() const { return size_ + dropped_; }

    /** Held events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    void clear();

  private:
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0; ///< next write slot
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
};

/**
 * The per-machine tracer: one TraceBuffer per node plus the clock
 * used to timestamp events. Owned by sim::Machine; every layer
 * reaches it through `machine().tracer()`.
 */
class Tracer
{
  public:
    /** Maps a node id to its current cycle count. */
    using ClockFn = std::function<Cycles(NodeId)>;

    Tracer(const TraceConfig &cfg, std::size_t nodeCount,
           ClockFn clock);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    const TraceConfig &config() const { return cfg_; }

    bool enabled() const { return cfg_.enabled; }

    /** The one check on every potential-event path. */
    bool
    enabledFor(TraceCategory c) const
    {
        return cfg_.enabled &&
               (cfg_.categoryMask & traceCategoryBit(c)) != 0;
    }

    /** Current cycle count of @p node's clock. */
    Cycles now(NodeId node) const { return clock_(node); }

    /** Record a complete event with explicit timestamps. */
    void emit(TraceCategory c, const char *name, NodeId node, Pid pid,
              Cycles start, Cycles end, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0);

    /** Record a zero-duration event stamped "now". */
    void instant(TraceCategory c, const char *name, NodeId node,
                 Pid pid = 0, std::uint64_t arg0 = 0,
                 std::uint64_t arg1 = 0);

    std::size_t nodeCount() const { return buffers_.size(); }
    TraceBuffer &buffer(NodeId node);
    const TraceBuffer &buffer(NodeId node) const;

    /** Every held event across all nodes, sorted by startCycles
     *  (ties keep per-node order). */
    std::vector<TraceEvent> merged() const;

    /** Sum of per-buffer drop counters. */
    std::uint64_t totalDropped() const;
    /** Sum of per-buffer held events. */
    std::uint64_t totalEvents() const;

    /** Empty every buffer (between experiment phases). */
    void clear();

  private:
    TraceConfig cfg_;
    ClockFn clock_;
    std::vector<TraceBuffer> buffers_;
};

/**
 * RAII span: reads the node clock at construction and records one
 * complete event at destruction. When the tracer is disabled (or the
 * category masked) construction is a single branch and nothing else.
 */
class TraceSpan
{
  public:
    TraceSpan(Tracer &tracer, TraceCategory c, const char *name,
              NodeId node, Pid pid = 0, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0)
    {
        if (!tracer.enabledFor(c))
            return;
        tracer_ = &tracer;
        category_ = c;
        name_ = name;
        node_ = node;
        pid_ = pid;
        arg0_ = arg0;
        arg1_ = arg1;
        start_ = tracer.now(node);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach result arguments discovered mid-span. */
    void
    setArgs(std::uint64_t arg0, std::uint64_t arg1)
    {
        arg0_ = arg0;
        arg1_ = arg1;
    }

    ~TraceSpan()
    {
        if (tracer_) {
            tracer_->emit(category_, name_, node_, pid_, start_,
                          tracer_->now(node_), arg0_, arg1_);
        }
    }

  private:
    Tracer *tracer_ = nullptr;
    TraceCategory category_ = TraceCategory::App;
    const char *name_ = nullptr;
    NodeId node_ = 0;
    Pid pid_ = 0;
    Cycles start_ = 0;
    std::uint64_t arg0_ = 0;
    std::uint64_t arg1_ = 0;
};

// Span macro: compiles out entirely under -DSTRAMASH_TRACE_DISABLED.
#define STRAMASH_TRACE_CONCAT2(a, b) a##b
#define STRAMASH_TRACE_CONCAT(a, b) STRAMASH_TRACE_CONCAT2(a, b)

#ifndef STRAMASH_TRACE_DISABLED
#define STRAMASH_TRACE_SPAN(...)                                           \
    ::stramash::TraceSpan STRAMASH_TRACE_CONCAT(stramashTraceSpan_,        \
                                                __LINE__)(__VA_ARGS__)
#else
#define STRAMASH_TRACE_SPAN(...)                                           \
    do {                                                                   \
    } while (0)
#endif

} // namespace stramash

#endif // STRAMASH_TRACE_TRACE_HH
