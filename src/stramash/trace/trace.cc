#include "stramash/trace/trace.hh"

#include <algorithm>

namespace stramash
{

const char *
traceCategoryName(TraceCategory c)
{
    switch (c) {
      case TraceCategory::Fault: return "fault";
      case TraceCategory::Msg: return "msg";
      case TraceCategory::Ipi: return "ipi";
      case TraceCategory::Futex: return "futex";
      case TraceCategory::Migrate: return "migrate";
      case TraceCategory::Alloc: return "alloc";
      case TraceCategory::Coherence: return "coherence";
      case TraceCategory::App: return "app";
      case TraceCategory::Chaos: return "chaos";
      case TraceCategory::Sched: return "sched";
    }
    panic("unknown TraceCategory");
}

// ===================== TraceBuffer ===================================

TraceBuffer::TraceBuffer(std::size_t capacity) : ring_(capacity)
{
    panic_if(capacity == 0, "TraceBuffer needs capacity >= 1");
}

void
TraceBuffer::record(const TraceEvent &ev)
{
    ring_[head_] = ev;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size())
        ++size_;
    else
        ++dropped_; // overwrote the oldest event
}

std::vector<TraceEvent>
TraceBuffer::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(size_);
    // Oldest event sits at head_ once the ring has wrapped.
    std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

void
TraceBuffer::clear()
{
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
}

// ===================== Tracer ========================================

Tracer::Tracer(const TraceConfig &cfg, std::size_t nodeCount,
               ClockFn clock)
    : cfg_(cfg), clock_(std::move(clock))
{
    panic_if(!clock_, "Tracer needs a clock");
    std::size_t entries = cfg_.bufferEntries ? cfg_.bufferEntries : 1;
    buffers_.reserve(nodeCount);
    for (std::size_t i = 0; i < nodeCount; ++i)
        buffers_.emplace_back(entries);
}

void
Tracer::emit(TraceCategory c, const char *name, NodeId node, Pid pid,
             Cycles start, Cycles end, std::uint64_t arg0,
             std::uint64_t arg1)
{
    if (!enabledFor(c))
        return;
    buffer(node).record({c, name, node, pid, start, end, arg0, arg1});
}

void
Tracer::instant(TraceCategory c, const char *name, NodeId node, Pid pid,
                std::uint64_t arg0, std::uint64_t arg1)
{
    if (!enabledFor(c))
        return;
    Cycles t = now(node);
    buffer(node).record({c, name, node, pid, t, t, arg0, arg1});
}

TraceBuffer &
Tracer::buffer(NodeId node)
{
    panic_if(node >= buffers_.size(), "tracer: unknown node ", node);
    return buffers_[node];
}

const TraceBuffer &
Tracer::buffer(NodeId node) const
{
    panic_if(node >= buffers_.size(), "tracer: unknown node ", node);
    return buffers_[node];
}

std::vector<TraceEvent>
Tracer::merged() const
{
    std::vector<TraceEvent> out;
    for (const auto &b : buffers_) {
        auto evs = b.snapshot();
        out.insert(out.end(), evs.begin(), evs.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.startCycles < b.startCycles;
                     });
    return out;
}

std::uint64_t
Tracer::totalDropped() const
{
    std::uint64_t total = 0;
    for (const auto &b : buffers_)
        total += b.dropped();
    return total;
}

std::uint64_t
Tracer::totalEvents() const
{
    std::uint64_t total = 0;
    for (const auto &b : buffers_)
        total += b.size();
    return total;
}

void
Tracer::clear()
{
    for (auto &b : buffers_)
        b.clear();
}

} // namespace stramash
