#include "stramash/isa/page_table.hh"

#include "stramash/common/logging.hh"

namespace stramash
{

namespace
{

/** Decode an entry, honouring the foreign-format tag when present. */
DecodedPte
decodeRaw(std::uint64_t raw, int level, const PteFormat &fmt,
          const PteFormat *taggedFmt)
{
    if (raw & foreignFormatTag) {
        panic_if(!taggedFmt,
                 "foreign-format PTE encountered without a remote CPU "
                 "driver to decode it");
        return taggedFmt->decode(raw & ~foreignFormatTag, level);
    }
    return fmt.decode(raw, level);
}

} // namespace

PageTable::PageTable(GuestMemory &mem, const PteFormat &fmt,
                     FrameAlloc alloc, FrameFree free,
                     const PteFormat *foreignFmt)
    : mem_(mem),
      fmt_(fmt),
      foreignFmt_(foreignFmt),
      alloc_(std::move(alloc)),
      free_(std::move(free))
{
    panic_if(!alloc_ || !free_, "PageTable needs frame callbacks");
    root_ = newTable();
}

PageTable::~PageTable()
{
    for (Addr f : frames_)
        free_(f);
}

Addr
PageTable::newTable()
{
    Addr f = alloc_();
    panic_if(pageOffset(f) != 0, "table frame not page aligned");
    mem_.zero(f, pageSize);
    frames_.push_back(f);
    return f;
}

bool
PageTable::map(Addr va, Addr pa, const PteAttrs &attrs)
{
    Addr table = root_;
    for (int level = fmt_.levels() - 1; level > 0; --level) {
        Addr ea = entryAddr(table, va, level);
        std::uint64_t raw = mem_.load<std::uint64_t>(ea);
        DecodedPte d = decodeRaw(raw, level, fmt_, foreignFmt_);
        if (!d.attrs.present) {
            Addr child = newTable();
            mem_.store<std::uint64_t>(ea, fmt_.encodeTable(child));
            table = child;
        } else {
            panic_if(!d.table, "huge pages are not modelled");
            table = d.frame;
        }
    }
    Addr leaf = entryAddr(table, va, 0);
    std::uint64_t raw = mem_.load<std::uint64_t>(leaf);
    if (decodeRaw(raw, 0, fmt_, foreignFmt_).attrs.present)
        return false;
    mem_.store<std::uint64_t>(leaf, fmt_.encodeLeaf(pa, attrs));
    ++mapped_;
    return true;
}

void
PageTable::buildChain(Addr va)
{
    Addr table = root_;
    for (int level = fmt_.levels() - 1; level > 0; --level) {
        Addr ea = entryAddr(table, va, level);
        std::uint64_t raw = mem_.load<std::uint64_t>(ea);
        DecodedPte d = decodeRaw(raw, level, fmt_, foreignFmt_);
        if (!d.attrs.present) {
            Addr child = newTable();
            mem_.store<std::uint64_t>(ea, fmt_.encodeTable(child));
            table = child;
        } else {
            panic_if(!d.table, "huge pages are not modelled");
            table = d.frame;
        }
    }
}

bool
PageTable::unmap(Addr va)
{
    auto w = walk(va);
    if (!w)
        return false;
    mem_.store<std::uint64_t>(w->pteAddr, fmt_.encodeEmpty());
    // Foreign-inserted PTEs never incremented our counter; do not let
    // their removal underflow it.
    if (mapped_ > 0)
        --mapped_;
    return true;
}

std::optional<WalkResult>
PageTable::walk(Addr va) const
{
    Addr table = root_;
    for (int level = fmt_.levels() - 1; level > 0; --level) {
        Addr ea = entryAddr(table, va, level);
        std::uint64_t raw = mem_.load<std::uint64_t>(ea);
        DecodedPte d = decodeRaw(raw, level, fmt_, foreignFmt_);
        if (!d.attrs.present)
            return std::nullopt;
        table = d.frame;
    }
    Addr leaf = entryAddr(table, va, 0);
    std::uint64_t raw = mem_.load<std::uint64_t>(leaf);
    DecodedPte d = decodeRaw(raw, 0, fmt_, foreignFmt_);
    if (!d.attrs.present)
        return std::nullopt;
    return WalkResult{d, leaf};
}

bool
PageTable::protect(Addr va, const PteAttrs &attrs)
{
    auto w = walk(va);
    if (!w)
        return false;
    mem_.store<std::uint64_t>(w->pteAddr,
                              fmt_.encodeLeaf(w->pte.frame, attrs));
    return true;
}

int
PageTable::presentDepth(Addr va) const
{
    Addr table = root_;
    int depth = 1;
    for (int level = fmt_.levels() - 1; level > 0; --level) {
        Addr ea = entryAddr(table, va, level);
        std::uint64_t raw = mem_.load<std::uint64_t>(ea);
        DecodedPte d = decodeRaw(raw, level, fmt_, foreignFmt_);
        if (!d.attrs.present)
            return depth;
        table = d.frame;
        ++depth;
    }
    return depth;
}

// ===================== Remote walker =================================

std::optional<WalkResult>
walkForeign(const GuestMemory &mem, const PteFormat &fmt, Addr root,
            Addr va, const TouchFn &touch, const PteFormat *taggedFmt)
{
    Addr table = root;
    for (int level = fmt.levels() - 1; level > 0; --level) {
        Addr ea = table + fmt.indexOf(va, level) * 8;
        if (touch)
            touch(AccessType::Load, ea);
        std::uint64_t raw = mem.load<std::uint64_t>(ea);
        DecodedPte d = decodeRaw(raw, level, fmt, taggedFmt);
        if (!d.attrs.present)
            return std::nullopt;
        table = d.frame;
    }
    Addr leaf = table + fmt.indexOf(va, 0) * 8;
    if (touch)
        touch(AccessType::Load, leaf);
    std::uint64_t raw = mem.load<std::uint64_t>(leaf);
    DecodedPte d = decodeRaw(raw, 0, fmt, taggedFmt);
    if (!d.attrs.present)
        return std::nullopt;
    return WalkResult{d, leaf};
}

std::optional<WalkResult>
walkForeign(const GuestMemory &mem, const PteFormat &fmt, Addr root,
            Addr va, const TouchFn &touch,
            const TaggedFmtFn &taggedFmtOf)
{
    // Upper levels are always in the table's own format; only the
    // leaf can carry a tagged writer-format entry.
    Addr table = root;
    for (int level = fmt.levels() - 1; level > 0; --level) {
        Addr ea = table + fmt.indexOf(va, level) * 8;
        if (touch)
            touch(AccessType::Load, ea);
        std::uint64_t raw = mem.load<std::uint64_t>(ea);
        DecodedPte d = fmt.decode(raw, level);
        if (!d.attrs.present)
            return std::nullopt;
        table = d.frame;
    }
    Addr leaf = table + fmt.indexOf(va, 0) * 8;
    if (touch)
        touch(AccessType::Load, leaf);
    std::uint64_t raw = mem.load<std::uint64_t>(leaf);
    DecodedPte d = decodeRaw(raw, 0, fmt,
                             taggedFmtOf ? taggedFmtOf(va) : nullptr);
    if (!d.attrs.present)
        return std::nullopt;
    return WalkResult{d, leaf};
}

int
foreignPresentDepth(const GuestMemory &mem, const PteFormat &fmt,
                    Addr root, Addr va, const TouchFn &touch)
{
    Addr table = root;
    int depth = 1;
    for (int level = fmt.levels() - 1; level > 0; --level) {
        Addr ea = table + fmt.indexOf(va, level) * 8;
        if (touch)
            touch(AccessType::Load, ea);
        std::uint64_t raw = mem.load<std::uint64_t>(ea);
        DecodedPte d = fmt.decode(raw, level);
        if (!d.attrs.present)
            return depth;
        table = d.frame;
        ++depth;
    }
    return depth;
}

bool
mapForeign(GuestMemory &mem, const PteFormat &tableFmt,
           const PteFormat &writerFmt, Addr root, Addr va, Addr pa,
           const PteAttrs &attrs, bool asForeignFormat,
           const TouchFn &touch)
{
    Addr table = root;
    for (int level = tableFmt.levels() - 1; level > 0; --level) {
        Addr ea = table + tableFmt.indexOf(va, level) * 8;
        if (touch)
            touch(AccessType::Load, ea);
        std::uint64_t raw = mem.load<std::uint64_t>(ea);
        DecodedPte d = tableFmt.decode(raw, level);
        if (!d.attrs.present) {
            // Fast path only inserts at the PTE level; a missing
            // upper level means the origin must handle the fault.
            return false;
        }
        table = d.frame;
    }
    Addr leaf = table + tableFmt.indexOf(va, 0) * 8;
    if (touch)
        touch(AccessType::Load, leaf);
    std::uint64_t raw = mem.load<std::uint64_t>(leaf);
    if (tableFmt.decode(raw & ~foreignFormatTag, 0).attrs.present ||
        writerFmt.decode(raw & ~foreignFormatTag, 0).attrs.present) {
        return false;
    }
    std::uint64_t enc = asForeignFormat
                            ? (writerFmt.encodeLeaf(pa, attrs) |
                               foreignFormatTag)
                            : tableFmt.encodeLeaf(pa, attrs);
    if (touch)
        touch(AccessType::Store, leaf);
    mem.store<std::uint64_t>(leaf, enc);
    return true;
}

bool
unmapForeign(GuestMemory &mem, const PteFormat &tableFmt, Addr root,
             Addr va, const TouchFn &touch)
{
    Addr table = root;
    for (int level = tableFmt.levels() - 1; level > 0; --level) {
        Addr ea = table + tableFmt.indexOf(va, level) * 8;
        if (touch)
            touch(AccessType::Load, ea);
        std::uint64_t raw = mem.load<std::uint64_t>(ea);
        DecodedPte d = tableFmt.decode(raw, level);
        if (!d.attrs.present)
            return false;
        table = d.frame;
    }
    Addr leaf = table + tableFmt.indexOf(va, 0) * 8;
    if (touch)
        touch(AccessType::Store, leaf);
    std::uint64_t raw = mem.load<std::uint64_t>(leaf);
    if (raw == 0)
        return false;
    mem.store<std::uint64_t>(leaf, 0);
    return true;
}

bool
reconcileForeign(GuestMemory &mem, const PteFormat &tableFmt,
                 const PteFormat &writerFmt, Addr root, Addr va)
{
    Addr table = root;
    for (int level = tableFmt.levels() - 1; level > 0; --level) {
        Addr ea = table + tableFmt.indexOf(va, level) * 8;
        std::uint64_t raw = mem.load<std::uint64_t>(ea);
        DecodedPte d = tableFmt.decode(raw, level);
        if (!d.attrs.present)
            return false;
        table = d.frame;
    }
    Addr leaf = table + tableFmt.indexOf(va, 0) * 8;
    std::uint64_t raw = mem.load<std::uint64_t>(leaf);
    if (!(raw & foreignFormatTag))
        return false;
    DecodedPte d = writerFmt.decode(raw & ~foreignFormatTag, 0);
    panic_if(!d.attrs.present, "tagged PTE decodes as not-present");
    mem.store<std::uint64_t>(leaf,
                             tableFmt.encodeLeaf(d.frame, d.attrs));
    return true;
}

} // namespace stramash
