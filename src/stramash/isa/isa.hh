/**
 * @file
 * Per-ISA descriptors: the static properties the simulator and the
 * kernels need to know about each instruction set.
 */

#ifndef STRAMASH_ISA_ISA_HH
#define STRAMASH_ISA_ISA_HH

#include "stramash/isa/pte_format.hh"

namespace stramash
{

/**
 * Static description of one ISA.
 *
 * instExpansion models code-density differences: the same abstract
 * unit of work compiles to more instructions on a fixed-width RISC
 * encoding than on x86 (visible in the paper's AE example output,
 * where the Arm side retires ~18% more instructions than x86 for the
 * same benchmark half).
 */
struct IsaDescriptor
{
    IsaType type;
    const PteFormat *pteFormat;
    /** Instructions per abstract work unit. */
    double instExpansion;
    /** Non-memory IPC of the fixed core model (paper §7.3, PriME). */
    double fixedIpc;
    /** True if LSE-style single-instruction CAS is available
     *  (paper §6.5: Stramash requires CAS, not LL/SC, for cross-ISA
     *  locking). */
    bool hasCas;
};

/** The descriptor for @p isa. */
const IsaDescriptor &isaDescriptor(IsaType isa);

} // namespace stramash

#endif // STRAMASH_ISA_ISA_HH
