/**
 * @file
 * Architectural register files and the migration-time state
 * transformation.
 *
 * The Popcorn compiler toolchain (reused by Stramash, paper §5)
 * compiles applications so that at *migration points* (function-call
 * boundaries) the live state can be transformed between ISAs: the
 * common logical state (program counter, stack pointer, frame
 * pointer, argument and callee-saved values) is extracted from the
 * source ISA's registers and re-materialised in the destination
 * ISA's registers, while memory state needs no transformation thanks
 * to a common data layout. We model exactly that contract.
 */

#ifndef STRAMASH_ISA_REGFILE_HH
#define STRAMASH_ISA_REGFILE_HH

#include <array>
#include <cstdint>

#include "stramash/common/types.hh"

namespace stramash
{

/** x86-64 integer register file (subset relevant to migration). */
struct X86RegFile
{
    std::uint64_t rax = 0, rbx = 0, rcx = 0, rdx = 0;
    std::uint64_t rsi = 0, rdi = 0, rbp = 0, rsp = 0;
    std::array<std::uint64_t, 8> r8_15{}; // r8..r15
    std::uint64_t rip = 0;
    std::uint64_t rflags = 0x202;
};

/** AArch64 integer register file (subset relevant to migration). */
struct ArmRegFile
{
    std::array<std::uint64_t, 31> x{}; // x0..x30 (x29 fp, x30 lr)
    std::uint64_t sp = 0;
    std::uint64_t pc = 0;
    std::uint64_t nzcv = 0;
};

/**
 * The ISA-neutral logical state at a migration point — what the
 * Popcorn state-transformation runtime reconstructs on the
 * destination. Stack memory travels for free through the shared (or
 * replicated) address space.
 */
struct MigrationState
{
    Addr pc = 0;
    Addr sp = 0;
    Addr fp = 0;
    std::uint64_t retVal = 0;
    std::array<std::uint64_t, 6> args{};
    std::array<std::uint64_t, 6> calleeSaved{};
    Pid pid = 0;

    bool
    operator==(const MigrationState &o) const
    {
        return pc == o.pc && sp == o.sp && fp == o.fp &&
               retVal == o.retVal && args == o.args &&
               calleeSaved == o.calleeSaved && pid == o.pid;
    }
};

/** Extract logical state from x86 registers (SysV mapping). */
MigrationState captureX86(const X86RegFile &r);
/** Materialise logical state into x86 registers. */
X86RegFile materializeX86(const MigrationState &s);

/** Extract logical state from Arm registers (AAPCS64 mapping). */
MigrationState captureArm(const ArmRegFile &r);
/** Materialise logical state into Arm registers. */
ArmRegFile materializeArm(const MigrationState &s);

/**
 * Size in bytes of the serialized MigrationState as carried by a
 * Popcorn-style migration message.
 */
std::size_t migrationStateWireSize();

/** Serialize/deserialize for the messaging layer. */
void serializeMigrationState(const MigrationState &s, std::uint8_t *out);
MigrationState deserializeMigrationState(const std::uint8_t *in);

} // namespace stramash

#endif // STRAMASH_ISA_REGFILE_HH
