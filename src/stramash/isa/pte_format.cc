#include "stramash/isa/pte_format.hh"

#include "stramash/common/logging.hh"

namespace stramash
{

namespace
{

constexpr std::uint64_t bit(int n)
{
    return std::uint64_t{1} << n;
}

// --- x86 layout -----------------------------------------------------
constexpr std::uint64_t x86P = bit(0);
constexpr std::uint64_t x86RW = bit(1);
constexpr std::uint64_t x86US = bit(2);
constexpr std::uint64_t x86A = bit(5);
constexpr std::uint64_t x86D = bit(6);
constexpr std::uint64_t x86FrameMask = 0x000ffffffffff000ULL; // 51:12
constexpr std::uint64_t x86NX = bit(63);
// Software bit marking a non-leaf entry (real x86 infers it from the
// level; keeping it explicit makes cross-format decoding honest).
constexpr std::uint64_t x86TableBit = bit(9); // ignored by HW (AVL)

// --- Arm layout ------------------------------------------------------
constexpr std::uint64_t armValid = bit(0);
constexpr std::uint64_t armType = bit(1); // 1 = table/page descriptor
constexpr std::uint64_t armApEl0 = bit(6); // AP[1]: EL0 accessible
constexpr std::uint64_t armApRo = bit(7); // AP[2]: read-only
constexpr std::uint64_t armAf = bit(10); // access flag
constexpr std::uint64_t armFrameMask = 0x0000fffffffff000ULL; // 47:12
constexpr std::uint64_t armPxn = bit(53);
constexpr std::uint64_t armUxn = bit(54);
constexpr std::uint64_t armSoftDirty = bit(55);
// Software bit distinguishing a next-level table from a leaf page at
// intermediate levels (real AArch64 uses descriptor type per level).
constexpr std::uint64_t armSoftTable = bit(58);

} // namespace

// ===================== X86PteFormat ==================================

int
X86PteFormat::levelShift(int level) const
{
    panic_if(level < 0 || level >= levels(), "x86: bad level ", level);
    return 12 + 9 * level;
}

int
X86PteFormat::levelBits(int level) const
{
    panic_if(level < 0 || level >= levels(), "x86: bad level ", level);
    return 9;
}

std::uint64_t
X86PteFormat::encodeLeaf(Addr frame, const PteAttrs &attrs) const
{
    panic_if(frame & ~x86FrameMask, "x86: frame out of range");
    std::uint64_t raw = frame & x86FrameMask;
    if (attrs.present)
        raw |= x86P;
    if (attrs.writable)
        raw |= x86RW;
    if (attrs.user)
        raw |= x86US;
    if (attrs.accessed)
        raw |= x86A;
    if (attrs.dirty)
        raw |= x86D;
    if (!attrs.executable)
        raw |= x86NX;
    return raw;
}

std::uint64_t
X86PteFormat::encodeTable(Addr tableAddr) const
{
    // Intermediate entries are present+writable+user so leaf
    // permissions govern.
    return (tableAddr & x86FrameMask) | x86P | x86RW | x86US |
           x86TableBit;
}

DecodedPte
X86PteFormat::decode(std::uint64_t raw, int level) const
{
    DecodedPte d;
    d.attrs.present = raw & x86P;
    if (!d.attrs.present)
        return d;
    d.attrs.writable = raw & x86RW;
    d.attrs.user = raw & x86US;
    d.attrs.accessed = raw & x86A;
    d.attrs.dirty = raw & x86D;
    d.attrs.executable = !(raw & x86NX);
    d.frame = raw & x86FrameMask;
    d.table = (raw & x86TableBit) && level > 0;
    return d;
}

const X86PteFormat &
X86PteFormat::instance()
{
    static const X86PteFormat f;
    return f;
}

// ===================== ArmPteFormat ==================================

int
ArmPteFormat::levelShift(int level) const
{
    panic_if(level < 0 || level >= levels(), "arm: bad level ", level);
    return 12 + 9 * level;
}

int
ArmPteFormat::levelBits(int level) const
{
    panic_if(level < 0 || level >= levels(), "arm: bad level ", level);
    return 9;
}

std::uint64_t
ArmPteFormat::encodeLeaf(Addr frame, const PteAttrs &attrs) const
{
    panic_if(frame & ~armFrameMask, "arm: frame out of range");
    std::uint64_t raw = frame & armFrameMask;
    if (attrs.present)
        raw |= armValid | armType;
    if (!attrs.writable)
        raw |= armApRo; // inverted sense vs x86
    if (attrs.user)
        raw |= armApEl0;
    if (attrs.accessed)
        raw |= armAf;
    if (attrs.dirty)
        raw |= armSoftDirty;
    if (!attrs.executable)
        raw |= armUxn | armPxn;
    return raw;
}

std::uint64_t
ArmPteFormat::encodeTable(Addr tableAddr) const
{
    return (tableAddr & armFrameMask) | armValid | armType |
           armSoftTable;
}

DecodedPte
ArmPteFormat::decode(std::uint64_t raw, int level) const
{
    DecodedPte d;
    d.attrs.present = (raw & armValid) && (raw & armType);
    if (!d.attrs.present)
        return d;
    d.attrs.writable = !(raw & armApRo);
    d.attrs.user = raw & armApEl0;
    d.attrs.accessed = raw & armAf;
    d.attrs.dirty = raw & armSoftDirty;
    d.attrs.executable = !(raw & armUxn);
    d.frame = raw & armFrameMask;
    d.table = (raw & armSoftTable) && level > 0;
    return d;
}

const ArmPteFormat &
ArmPteFormat::instance()
{
    static const ArmPteFormat f;
    return f;
}

const PteFormat &
pteFormatFor(IsaType isa)
{
    switch (isa) {
      case IsaType::X86_64: return X86PteFormat::instance();
      case IsaType::AArch64: return ArmPteFormat::instance();
    }
    panic("unknown IsaType");
}

} // namespace stramash
