/**
 * @file
 * Multi-level page tables resident in guest physical memory.
 *
 * Tables are real: each level is a 4 KiB frame of 512 eight-byte
 * entries in the fused GuestMemory, allocated from the owning
 * kernel's physical allocator. Because they live in the coherent
 * shared memory, *another* kernel can walk them — that is exactly the
 * paper's "Software Remote Page Table Walker" (§6.4), implemented
 * here as walkForeign()/mapForeign(), which decode a foreign format
 * through PteFormat accessor functions and charge every table access
 * to a caller-supplied cost hook.
 */

#ifndef STRAMASH_ISA_PAGE_TABLE_HH
#define STRAMASH_ISA_PAGE_TABLE_HH

#include <functional>
#include <optional>
#include <vector>

#include "stramash/isa/pte_format.hh"
#include "stramash/mem/guest_memory.hh"

namespace stramash
{

/** Allocate a zeroed, page-aligned guest frame; returns its address. */
using FrameAlloc = std::function<Addr()>;
/** Release a frame previously returned by FrameAlloc. */
using FrameFree = std::function<void(Addr)>;
/** Charge one guest memory access made during a walk. */
using TouchFn = std::function<void(AccessType, Addr)>;

/** Result of a successful walk. */
struct WalkResult
{
    DecodedPte pte;
    /** Guest-physical address of the leaf entry itself. */
    Addr pteAddr;
};

/** A page table in one architecture's format. */
class PageTable
{
  public:
    /**
     * @param foreignFmt The other ISA's format ("remote CPU driver"),
     *        needed to decode entries a remote kernel wrote in its
     *        own format before they are reconciled. May be null in
     *        single-ISA tests.
     */
    PageTable(GuestMemory &mem, const PteFormat &fmt, FrameAlloc alloc,
              FrameFree free, const PteFormat *foreignFmt = nullptr);
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /** Physical address of the root table (CR3 / TTBR analogue). */
    Addr rootAddr() const { return root_; }

    const PteFormat &format() const { return fmt_; }

    /**
     * Map one page. Intermediate tables are allocated as needed.
     * @return false if the page was already mapped.
     */
    bool map(Addr va, Addr pa, const PteAttrs &attrs);

    /** Remove a leaf mapping. @return false if it was not mapped. */
    bool unmap(Addr va);

    /**
     * Materialise the intermediate-table chain for @p va down to the
     * leaf table without touching the leaf entry itself — the origin
     * side of Stramash's slow-path fault (§9.2.3).
     */
    void buildChain(Addr va);

    /** Translate; nullopt if not present. Does not charge costs. */
    std::optional<WalkResult> walk(Addr va) const;

    /** Rewrite a leaf's attributes. @return false if not mapped. */
    bool protect(Addr va, const PteAttrs &attrs);

    /**
     * Number of levels of the table chain that exist for @p va, from
     * 1 (only the root) to levels() (the leaf *table* exists; the
     * leaf entry itself may still be empty). Stramash's fault
     * handler takes the fast path only when the leaf table exists
     * (paper §9.2.3).
     */
    int presentDepth(Addr va) const;

    /** Count of currently mapped leaf pages. */
    std::uint64_t mappedPages() const { return mapped_; }

    /** Guest frames consumed by table structure (for stats). */
    std::size_t tableFrames() const { return frames_.size(); }

  private:
    GuestMemory &mem_;
    const PteFormat &fmt_;
    const PteFormat *foreignFmt_;
    FrameAlloc alloc_;
    FrameFree free_;
    Addr root_;
    std::vector<Addr> frames_;
    std::uint64_t mapped_ = 0;

    Addr newTable();

    /** Address of the entry for @p va in the @p level table. */
    Addr
    entryAddr(Addr tableAddr, Addr va, int level) const
    {
        return tableAddr + fmt_.indexOf(va, level) * 8;
    }
};

/**
 * The Software Remote Page Table Walker (paper §6.4): walk another
 * kernel's page table given its root and format. Each 8-byte table
 * read is charged through @p touch so the remote-access cost is
 * modelled faithfully.
 */
std::optional<WalkResult>
walkForeign(const GuestMemory &mem, const PteFormat &fmt, Addr root,
            Addr va, const TouchFn &touch,
            const PteFormat *taggedFmt = nullptr);

/** Resolve the format a tagged leaf entry for @p va was written in.
 *  May return null when no record exists (the entry then panics if
 *  actually tagged). */
using TaggedFmtFn = std::function<const PteFormat *(Addr va)>;

/**
 * walkForeign() for N-node machines: tagged leaf entries may have
 * been written by *different* remote kernels in different formats, so
 * the decode format is looked up per page instead of being fixed for
 * the whole walk.
 */
std::optional<WalkResult>
walkForeign(const GuestMemory &mem, const PteFormat &fmt, Addr root,
            Addr va, const TouchFn &touch,
            const TaggedFmtFn &taggedFmtOf);

/** presentDepth() over a foreign table, charging through @p touch. */
int
foreignPresentDepth(const GuestMemory &mem, const PteFormat &fmt,
                    Addr root, Addr va, const TouchFn &touch);

/**
 * Insert a leaf PTE into a foreign table whose leaf-level table
 * already exists (the Stramash fast-path constraint: "it only allows
 * remote kernel allocation at the PTE level").
 *
 * @param asForeignFormat If true the entry is written in @p writerFmt
 *        (the writer's native format) and tagged, reproducing the
 *        paper's "adds it to the origin kernel's page table with the
 *        remote node ISA format"; reconcileForeign() later rewrites
 *        it into the table's own format.
 * @return false if the leaf table chain is incomplete or the entry
 *         is already present.
 */
bool
mapForeign(GuestMemory &mem, const PteFormat &tableFmt,
           const PteFormat &writerFmt, Addr root, Addr va, Addr pa,
           const PteAttrs &attrs, bool asForeignFormat,
           const TouchFn &touch);

/** Clear a leaf PTE in a foreign table. @return false if absent. */
bool
unmapForeign(GuestMemory &mem, const PteFormat &tableFmt, Addr root,
             Addr va, const TouchFn &touch);

/**
 * Rewrite one foreign-format (tagged) leaf entry into the table's own
 * format — the "origin kernel reconfigures the PTE to its own format"
 * step at migration-back. @return true if the entry was tagged and
 * got rewritten.
 */
bool
reconcileForeign(GuestMemory &mem, const PteFormat &tableFmt,
                 const PteFormat &writerFmt, Addr root, Addr va);

/** The tag bit marking an entry encoded in the writer's format. */
inline constexpr std::uint64_t foreignFormatTag = std::uint64_t{1} << 62;

} // namespace stramash

#endif // STRAMASH_ISA_PAGE_TABLE_HH
