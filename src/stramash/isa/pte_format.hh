/**
 * @file
 * Architecture-dependent page-table entry formats.
 *
 * The fused-kernel design's "accessor function" pattern (paper §5)
 * exists because shared data cannot always be shared as-is: a page
 * table is the canonical architecture-dependent structure. We model
 * two genuinely different 64-bit PTE encodings:
 *
 *  x86-64 style:  P=bit0, RW=bit1, US=bit2, A=bit5, D=bit6,
 *                 frame=bits[51:12], NX=bit63
 *  AArch64 style: VALID=bit0, TYPE=bit1 (1=table/page),
 *                 AP[1]=bit6 (EL0), AP[2]=bit7 (read-only — note the
 *                 *inverted* sense vs x86 RW), AF=bit10,
 *                 frame=bits[47:12], PXN=bit53, UXN=bit54,
 *                 soft-dirty=bit55
 *
 * A PteFormat instance is exactly the paper's "remote CPU driver": a
 * collection of accessor functions that lets one kernel decode and
 * encode the other kernel's entries.
 */

#ifndef STRAMASH_ISA_PTE_FORMAT_HH
#define STRAMASH_ISA_PTE_FORMAT_HH

#include <cstdint>

#include "stramash/common/types.hh"

namespace stramash
{

/** Architecture-independent view of a leaf PTE's attributes. */
struct PteAttrs
{
    bool present = false;
    bool writable = false;
    bool user = false;
    bool executable = false;
    bool accessed = false;
    bool dirty = false;

    bool
    operator==(const PteAttrs &o) const
    {
        return present == o.present && writable == o.writable &&
               user == o.user && executable == o.executable &&
               accessed == o.accessed && dirty == o.dirty;
    }
};

/** A decoded entry: attributes plus the physical frame it points at. */
struct DecodedPte
{
    PteAttrs attrs;
    Addr frame = 0; ///< physical address, page-aligned
    bool table = false; ///< points at a next-level table (non-leaf)
};

/**
 * Abstract PTE codec + level geometry for one architecture.
 * All methods are pure functions of their inputs.
 */
class PteFormat
{
  public:
    virtual ~PteFormat() = default;

    virtual IsaType isa() const = 0;

    /** Number of translation levels (both modelled ISAs use 5). */
    virtual int levels() const = 0;

    /**
     * Bit shift of the index for @p level, where level 0 is the
     * *leaf* level. The paper's remote walker "re-defines each level
     * page mask if it is different between x86 and Arm".
     */
    virtual int levelShift(int level) const = 0;

    /** Number of index bits at @p level. */
    virtual int levelBits(int level) const = 0;

    /** Index into the @p level table for virtual address @p va. */
    std::uint64_t
    indexOf(Addr va, int level) const
    {
        return (va >> levelShift(level)) &
               ((std::uint64_t{1} << levelBits(level)) - 1);
    }

    /** Encode a leaf entry. */
    virtual std::uint64_t encodeLeaf(Addr frame,
                                     const PteAttrs &attrs) const = 0;

    /** Encode a non-leaf (table) entry pointing at @p tableAddr. */
    virtual std::uint64_t encodeTable(Addr tableAddr) const = 0;

    /** Decode any entry. */
    virtual DecodedPte decode(std::uint64_t raw, int level) const = 0;

    /** The "not present" encoding. */
    std::uint64_t encodeEmpty() const { return 0; }
};

/** x86-64 flavoured format. */
class X86PteFormat final : public PteFormat
{
  public:
    IsaType isa() const override { return IsaType::X86_64; }
    int levels() const override { return 5; }
    int levelShift(int level) const override;
    int levelBits(int level) const override;
    std::uint64_t encodeLeaf(Addr frame,
                             const PteAttrs &attrs) const override;
    std::uint64_t encodeTable(Addr tableAddr) const override;
    DecodedPte decode(std::uint64_t raw, int level) const override;

    static const X86PteFormat &instance();
};

/** AArch64 flavoured format. */
class ArmPteFormat final : public PteFormat
{
  public:
    IsaType isa() const override { return IsaType::AArch64; }
    int levels() const override { return 5; }
    int levelShift(int level) const override;
    int levelBits(int level) const override;
    std::uint64_t encodeLeaf(Addr frame,
                             const PteAttrs &attrs) const override;
    std::uint64_t encodeTable(Addr tableAddr) const override;
    DecodedPte decode(std::uint64_t raw, int level) const override;

    static const ArmPteFormat &instance();
};

/** The format used natively by @p isa. */
const PteFormat &pteFormatFor(IsaType isa);

} // namespace stramash

#endif // STRAMASH_ISA_PTE_FORMAT_HH
