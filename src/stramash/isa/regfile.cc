#include "stramash/isa/regfile.hh"

#include <cstring>

namespace stramash
{

MigrationState
captureX86(const X86RegFile &r)
{
    MigrationState s;
    s.pc = r.rip;
    s.sp = r.rsp;
    s.fp = r.rbp;
    s.retVal = r.rax;
    // SysV argument registers: rdi, rsi, rdx, rcx, r8, r9.
    s.args = {r.rdi, r.rsi, r.rdx, r.rcx, r.r8_15[0], r.r8_15[1]};
    // Callee-saved: rbx, r12..r15 (rbp already carried as fp).
    s.calleeSaved = {r.rbx, r.r8_15[4], r.r8_15[5], r.r8_15[6],
                     r.r8_15[7], 0};
    return s;
}

X86RegFile
materializeX86(const MigrationState &s)
{
    X86RegFile r;
    r.rip = s.pc;
    r.rsp = s.sp;
    r.rbp = s.fp;
    r.rax = s.retVal;
    r.rdi = s.args[0];
    r.rsi = s.args[1];
    r.rdx = s.args[2];
    r.rcx = s.args[3];
    r.r8_15[0] = s.args[4];
    r.r8_15[1] = s.args[5];
    r.rbx = s.calleeSaved[0];
    r.r8_15[4] = s.calleeSaved[1];
    r.r8_15[5] = s.calleeSaved[2];
    r.r8_15[6] = s.calleeSaved[3];
    r.r8_15[7] = s.calleeSaved[4];
    return r;
}

MigrationState
captureArm(const ArmRegFile &r)
{
    MigrationState s;
    s.pc = r.pc;
    s.sp = r.sp;
    s.fp = r.x[29];
    s.retVal = r.x[0];
    // AAPCS64 argument registers: x0..x5 (of x0..x7).
    s.args = {r.x[0], r.x[1], r.x[2], r.x[3], r.x[4], r.x[5]};
    // Callee-saved: x19..x24 (of x19..x28).
    s.calleeSaved = {r.x[19], r.x[20], r.x[21], r.x[22], r.x[23],
                     r.x[24]};
    return s;
}

ArmRegFile
materializeArm(const MigrationState &s)
{
    ArmRegFile r;
    r.pc = s.pc;
    r.sp = s.sp;
    r.x[29] = s.fp;
    for (int i = 0; i < 6; ++i)
        r.x[i] = s.args[i];
    // x0 doubles as the return register at a call boundary.
    if (s.retVal)
        r.x[0] = s.retVal;
    for (int i = 0; i < 6; ++i)
        r.x[19 + i] = s.calleeSaved[i];
    return r;
}

namespace
{
constexpr std::size_t wireWords = 3 + 1 + 6 + 6 + 1; // +pid packed
} // namespace

std::size_t
migrationStateWireSize()
{
    return wireWords * 8;
}

void
serializeMigrationState(const MigrationState &s, std::uint8_t *out)
{
    std::uint64_t w[wireWords];
    w[0] = s.pc;
    w[1] = s.sp;
    w[2] = s.fp;
    w[3] = s.retVal;
    for (int i = 0; i < 6; ++i)
        w[4 + i] = s.args[i];
    for (int i = 0; i < 6; ++i)
        w[10 + i] = s.calleeSaved[i];
    w[16] = s.pid;
    std::memcpy(out, w, sizeof(w));
}

MigrationState
deserializeMigrationState(const std::uint8_t *in)
{
    std::uint64_t w[wireWords];
    std::memcpy(w, in, sizeof(w));
    MigrationState s;
    s.pc = w[0];
    s.sp = w[1];
    s.fp = w[2];
    s.retVal = w[3];
    for (int i = 0; i < 6; ++i)
        s.args[i] = w[4 + i];
    for (int i = 0; i < 6; ++i)
        s.calleeSaved[i] = w[10 + i];
    s.pid = static_cast<Pid>(w[16]);
    return s;
}

} // namespace stramash
