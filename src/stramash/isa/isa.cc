#include "stramash/isa/isa.hh"

#include "stramash/common/logging.hh"

namespace stramash
{

const IsaDescriptor &
isaDescriptor(IsaType isa)
{
    // Expansion ratio calibrated to the paper's AE example output
    // (x86 8.60G instructions vs Arm 10.13G for the same benchmark
    // split: ~1.18x).
    static const IsaDescriptor x86{IsaType::X86_64,
                                   &X86PteFormat::instance(), 1.00, 1.0,
                                   true};
    static const IsaDescriptor arm{IsaType::AArch64,
                                   &ArmPteFormat::instance(), 1.18, 1.0,
                                   true};
    switch (isa) {
      case IsaType::X86_64: return x86;
      case IsaType::AArch64: return arm;
    }
    panic("unknown IsaType");
}

} // namespace stramash
