/**
 * @file
 * A from-scratch red-black tree.
 *
 * Stramash-Linux (like the Linux 5.2 kernel it models) keeps each
 * address space's VMA list in a red-black tree — the paper explicitly
 * notes "the VMA lists are still maintained using the RB-tree structure
 * not a Maple-tree". We implement the tree ourselves rather than using
 * std::map so that (a) the remote VMA walker can traverse another
 * kernel's tree through the same accessor-function pattern the paper
 * describes, and (b) the structure invariants can be property-tested.
 *
 * The tree is an ordered map: unique keys, each holding a value.
 * Iteration is in ascending key order. checkInvariants() verifies the
 * five red-black properties and the BST ordering; tests call it after
 * randomised operation sequences.
 */

#ifndef STRAMASH_RBTREE_RBTREE_HH
#define STRAMASH_RBTREE_RBTREE_HH

#include <cstddef>
#include <functional>
#include <utility>

#include "stramash/common/logging.hh"

namespace stramash
{

template <typename Key, typename Value, typename Compare = std::less<Key>>
class RbTree
{
  public:
    enum class Color : unsigned char { Red, Black };

    struct Node
    {
        Key key;
        Value value;
        Node *left = nullptr;
        Node *right = nullptr;
        Node *parent = nullptr;
        Color color = Color::Red;

        Node(Key k, Value v) : key(std::move(k)), value(std::move(v)) {}
    };

    RbTree() = default;

    RbTree(const RbTree &) = delete;
    RbTree &operator=(const RbTree &) = delete;

    RbTree(RbTree &&other) noexcept
        : root_(other.root_), size_(other.size_), cmp_(other.cmp_)
    {
        other.root_ = nullptr;
        other.size_ = 0;
    }

    ~RbTree() { clear(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Remove every node. */
    void
    clear()
    {
        destroy(root_);
        root_ = nullptr;
        size_ = 0;
    }

    /**
     * Insert a key/value pair.
     * @return pointer to the node and whether it was newly inserted;
     *         on a duplicate key the existing node is returned
     *         unchanged.
     */
    std::pair<Node *, bool>
    insert(Key key, Value value)
    {
        Node *parent = nullptr;
        Node **link = &root_;
        while (*link) {
            parent = *link;
            if (cmp_(key, parent->key)) {
                link = &parent->left;
            } else if (cmp_(parent->key, key)) {
                link = &parent->right;
            } else {
                return {parent, false};
            }
        }
        Node *n = new Node(std::move(key), std::move(value));
        n->parent = parent;
        *link = n;
        ++size_;
        insertFixup(n);
        return {n, true};
    }

    /** Find the node with exactly this key, or nullptr. */
    Node *
    find(const Key &key) const
    {
        Node *n = root_;
        while (n) {
            if (cmp_(key, n->key))
                n = n->left;
            else if (cmp_(n->key, key))
                n = n->right;
            else
                return n;
        }
        return nullptr;
    }

    /** First node whose key is >= @p key, or nullptr. */
    Node *
    lowerBound(const Key &key) const
    {
        Node *n = root_;
        Node *best = nullptr;
        while (n) {
            if (!cmp_(n->key, key)) { // n->key >= key
                best = n;
                n = n->left;
            } else {
                n = n->right;
            }
        }
        return best;
    }

    /** Last node whose key is <= @p key, or nullptr. */
    Node *
    floor(const Key &key) const
    {
        Node *n = root_;
        Node *best = nullptr;
        while (n) {
            if (!cmp_(key, n->key)) { // n->key <= key
                best = n;
                n = n->right;
            } else {
                n = n->left;
            }
        }
        return best;
    }

    /** Smallest-key node, or nullptr. */
    Node *
    first() const
    {
        Node *n = root_;
        while (n && n->left)
            n = n->left;
        return n;
    }

    /** Largest-key node, or nullptr. */
    Node *
    last() const
    {
        Node *n = root_;
        while (n && n->right)
            n = n->right;
        return n;
    }

    /** In-order successor. */
    static Node *
    next(Node *n)
    {
        if (n->right) {
            n = n->right;
            while (n->left)
                n = n->left;
            return n;
        }
        Node *p = n->parent;
        while (p && n == p->right) {
            n = p;
            p = p->parent;
        }
        return p;
    }

    /** In-order predecessor. */
    static Node *
    prev(Node *n)
    {
        if (n->left) {
            n = n->left;
            while (n->right)
                n = n->right;
            return n;
        }
        Node *p = n->parent;
        while (p && n == p->left) {
            n = p;
            p = p->parent;
        }
        return p;
    }

    /** Erase a node returned by find/lowerBound/first/... */
    void
    erase(Node *z)
    {
        panic_if(!z, "RbTree::erase(nullptr)");
        Node *y = z;
        Node *x = nullptr;
        Node *xParent = nullptr;
        Color yOriginal = y->color;

        if (!z->left) {
            x = z->right;
            xParent = z->parent;
            transplant(z, z->right);
        } else if (!z->right) {
            x = z->left;
            xParent = z->parent;
            transplant(z, z->left);
        } else {
            y = z->right;
            while (y->left)
                y = y->left;
            yOriginal = y->color;
            x = y->right;
            if (y->parent == z) {
                xParent = y;
            } else {
                xParent = y->parent;
                transplant(y, y->right);
                y->right = z->right;
                y->right->parent = y;
            }
            transplant(z, y);
            y->left = z->left;
            y->left->parent = y;
            y->color = z->color;
        }
        delete z;
        --size_;
        if (yOriginal == Color::Black)
            eraseFixup(x, xParent);
    }

    /** Erase by key. @return true if a node was removed. */
    bool
    eraseKey(const Key &key)
    {
        Node *n = find(key);
        if (!n)
            return false;
        erase(n);
        return true;
    }

    /** Apply @p fn to every (key, value) pair in ascending key order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (Node *n = first(); n; n = next(n))
            fn(n->key, n->value);
    }

    /**
     * Verify the red-black and BST invariants.
     * @return true if all hold; used by property tests.
     */
    bool
    checkInvariants() const
    {
        if (!root_)
            return true;
        if (root_->color != Color::Black)
            return false;
        int expected = -1;
        return checkNode(root_, nullptr, nullptr, 0, expected) &&
               checkParents(root_, nullptr);
    }

  private:
    Node *root_ = nullptr;
    std::size_t size_ = 0;
    Compare cmp_{};

    static void
    destroy(Node *n)
    {
        if (!n)
            return;
        destroy(n->left);
        destroy(n->right);
        delete n;
    }

    void
    rotateLeft(Node *x)
    {
        Node *y = x->right;
        x->right = y->left;
        if (y->left)
            y->left->parent = x;
        y->parent = x->parent;
        if (!x->parent)
            root_ = y;
        else if (x == x->parent->left)
            x->parent->left = y;
        else
            x->parent->right = y;
        y->left = x;
        x->parent = y;
    }

    void
    rotateRight(Node *x)
    {
        Node *y = x->left;
        x->left = y->right;
        if (y->right)
            y->right->parent = x;
        y->parent = x->parent;
        if (!x->parent)
            root_ = y;
        else if (x == x->parent->right)
            x->parent->right = y;
        else
            x->parent->left = y;
        y->right = x;
        x->parent = y;
    }

    void
    insertFixup(Node *z)
    {
        while (z->parent && z->parent->color == Color::Red) {
            Node *gp = z->parent->parent;
            if (z->parent == gp->left) {
                Node *uncle = gp->right;
                if (uncle && uncle->color == Color::Red) {
                    z->parent->color = Color::Black;
                    uncle->color = Color::Black;
                    gp->color = Color::Red;
                    z = gp;
                } else {
                    if (z == z->parent->right) {
                        z = z->parent;
                        rotateLeft(z);
                    }
                    z->parent->color = Color::Black;
                    gp->color = Color::Red;
                    rotateRight(gp);
                }
            } else {
                Node *uncle = gp->left;
                if (uncle && uncle->color == Color::Red) {
                    z->parent->color = Color::Black;
                    uncle->color = Color::Black;
                    gp->color = Color::Red;
                    z = gp;
                } else {
                    if (z == z->parent->left) {
                        z = z->parent;
                        rotateRight(z);
                    }
                    z->parent->color = Color::Black;
                    gp->color = Color::Red;
                    rotateLeft(gp);
                }
            }
        }
        root_->color = Color::Black;
    }

    void
    transplant(Node *u, Node *v)
    {
        if (!u->parent)
            root_ = v;
        else if (u == u->parent->left)
            u->parent->left = v;
        else
            u->parent->right = v;
        if (v)
            v->parent = u->parent;
    }

    static Color
    colorOf(Node *n)
    {
        return n ? n->color : Color::Black;
    }

    void
    eraseFixup(Node *x, Node *parent)
    {
        while (x != root_ && colorOf(x) == Color::Black) {
            if (!parent)
                break;
            if (x == parent->left) {
                Node *w = parent->right;
                if (colorOf(w) == Color::Red) {
                    w->color = Color::Black;
                    parent->color = Color::Red;
                    rotateLeft(parent);
                    w = parent->right;
                }
                if (colorOf(w->left) == Color::Black &&
                    colorOf(w->right) == Color::Black) {
                    w->color = Color::Red;
                    x = parent;
                    parent = x->parent;
                } else {
                    if (colorOf(w->right) == Color::Black) {
                        if (w->left)
                            w->left->color = Color::Black;
                        w->color = Color::Red;
                        rotateRight(w);
                        w = parent->right;
                    }
                    w->color = parent->color;
                    parent->color = Color::Black;
                    if (w->right)
                        w->right->color = Color::Black;
                    rotateLeft(parent);
                    x = root_;
                    parent = nullptr;
                }
            } else {
                Node *w = parent->left;
                if (colorOf(w) == Color::Red) {
                    w->color = Color::Black;
                    parent->color = Color::Red;
                    rotateRight(parent);
                    w = parent->left;
                }
                if (colorOf(w->right) == Color::Black &&
                    colorOf(w->left) == Color::Black) {
                    w->color = Color::Red;
                    x = parent;
                    parent = x->parent;
                } else {
                    if (colorOf(w->left) == Color::Black) {
                        if (w->right)
                            w->right->color = Color::Black;
                        w->color = Color::Red;
                        rotateLeft(w);
                        w = parent->left;
                    }
                    w->color = parent->color;
                    parent->color = Color::Black;
                    if (w->left)
                        w->left->color = Color::Black;
                    rotateRight(parent);
                    x = root_;
                    parent = nullptr;
                }
            }
        }
        if (x)
            x->color = Color::Black;
    }

    bool
    checkNode(Node *n, const Key *lo, const Key *hi, int blackDepth,
              int &expected) const
    {
        if (!n) {
            if (expected < 0)
                expected = blackDepth;
            return blackDepth == expected;
        }
        if (lo && !cmp_(*lo, n->key))
            return false;
        if (hi && !cmp_(n->key, *hi))
            return false;
        if (n->color == Color::Red) {
            if (colorOf(n->left) == Color::Red ||
                colorOf(n->right) == Color::Red)
                return false;
        } else {
            ++blackDepth;
        }
        return checkNode(n->left, lo, &n->key, blackDepth, expected) &&
               checkNode(n->right, &n->key, hi, blackDepth, expected);
    }

    bool
    checkParents(Node *n, Node *parent) const
    {
        if (!n)
            return true;
        if (n->parent != parent)
            return false;
        return checkParents(n->left, n) && checkParents(n->right, n);
    }
};

} // namespace stramash

#endif // STRAMASH_RBTREE_RBTREE_HH
