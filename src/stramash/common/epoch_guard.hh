/**
 * @file
 * Epoch-scoped single-writer assertion for shared simulation state.
 *
 * The parallel host executor partitions nodes across lanes and only
 * lets cross-lane effects flow at epoch barriers. Structures that are
 * *supposed* to be touched by at most one lane per epoch (a coherence
 * domain, a snoop filter) embed an EpochAccessGuard: the first access
 * in an epoch claims the guard for the calling thread, later accesses
 * from the same thread are free, and an access from a *different*
 * thread inside the same epoch panics — it means the epoch window was
 * too wide (a node observed an effect before the barrier that should
 * have delivered it), i.e. the conservative lookahead bound was
 * violated.
 *
 * The guard is inert (zero branches beyond one relaxed load) when no
 * parallel session is active, and is fenced — reset to unclaimed — by
 * the executor at every barrier.
 */

#ifndef STRAMASH_COMMON_EPOCH_GUARD_HH
#define STRAMASH_COMMON_EPOCH_GUARD_HH

#include <atomic>

#include "stramash/common/logging.hh"

namespace stramash
{

class EpochAccessGuard
{
  public:
    /** A stable, unique tag for the calling host thread. */
    static const void *
    threadTag()
    {
        static thread_local char tag;
        return &tag;
    }

    /** Enable / disable checking (executor session begin/end). */
    void
    setActive(bool on)
    {
        active_.store(on, std::memory_order_relaxed);
        holder_.store(nullptr, std::memory_order_relaxed);
    }

    /** Barrier point: forget the epoch's claimant. */
    void
    fence()
    {
        holder_.store(nullptr, std::memory_order_relaxed);
    }

    /**
     * Assert the calling thread may touch the guarded structure in
     * the current epoch. @p what names the structure in the panic.
     */
    void
    check(const char *what)
    {
        if (!active_.load(std::memory_order_relaxed))
            return;
        const void *me = threadTag();
        const void *cur = holder_.load(std::memory_order_acquire);
        if (cur == me)
            return;
        if (cur == nullptr) {
            const void *expected = nullptr;
            if (holder_.compare_exchange_strong(
                    expected, me, std::memory_order_acq_rel))
                return;
            cur = expected;
            if (cur == me)
                return;
        }
        panic("epoch guard: ", what,
              " touched by two host threads within one epoch "
              "(lookahead bound violated)");
    }

  private:
    std::atomic<bool> active_{false};
    std::atomic<const void *> holder_{nullptr};
};

} // namespace stramash

#endif // STRAMASH_COMMON_EPOCH_GUARD_HH
