/**
 * @file
 * Lightweight error channel for recoverable boundaries.
 *
 * Panics remain the right tool for programming errors (broken
 * invariants, impossible states). Conditions a resilient system must
 * survive — a full message ring, a timed-out RPC, a denied allocator
 * negotiation — instead travel as an Errc so callers can retry, back
 * off, or degrade gracefully.
 */

#ifndef STRAMASH_COMMON_RESULT_HH
#define STRAMASH_COMMON_RESULT_HH

#include <optional>
#include <ostream>
#include <utility>

#include "stramash/common/logging.hh"

namespace stramash
{

/** Recoverable error conditions. */
enum class Errc : std::uint8_t {
    Ok = 0,
    /** Message ring had no free slot; the message was not sent. */
    RingFull,
    /** No response arrived within the simulated-cycle deadline. */
    Timeout,
    /** Payload failed the CRC check and was discarded. */
    CrcMismatch,
    /** The peer refused the request (e.g. allocator negotiation). */
    Denied,
    /** The peer could not be reached after every retry. */
    Unreachable,
    /** Out of a genuinely exhausted resource (not transient). */
    NoMemory,
    /** The serving node is fenced/degraded and sheds new work;
     *  existing state is preserved and the request may be retried
     *  after the partition heals. */
    Degraded,
};

inline const char *
errcName(Errc e)
{
    switch (e) {
      case Errc::Ok: return "ok";
      case Errc::RingFull: return "ring_full";
      case Errc::Timeout: return "timeout";
      case Errc::CrcMismatch: return "crc_mismatch";
      case Errc::Denied: return "denied";
      case Errc::Unreachable: return "unreachable";
      case Errc::NoMemory: return "no_memory";
      case Errc::Degraded: return "degraded";
    }
    panic("unknown Errc");
}

/** Stream Errc symbolically — gtest failure messages and logs print
 *  "timeout" instead of a raw integer. */
inline std::ostream &
operator<<(std::ostream &os, Errc e)
{
    return os << errcName(e);
}

/**
 * A value or an Errc. Deliberately minimal: the simulator's
 * recoverable paths need exactly "did it work, and if not, why".
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)), errc_(Errc::Ok) {}
    Result(Errc e) : errc_(e)
    {
        panic_if(e == Errc::Ok, "error Result built with Errc::Ok");
    }

    bool ok() const { return errc_ == Errc::Ok; }
    explicit operator bool() const { return ok(); }
    Errc error() const { return errc_; }

    T &
    value()
    {
        panic_if(!ok(), "Result::value() on error: ", errcName(errc_));
        return *value_;
    }

    const T &
    value() const
    {
        panic_if(!ok(), "Result::value() on error: ", errcName(errc_));
        return *value_;
    }

    T *operator->() { return &value(); }
    T &operator*() { return value(); }

  private:
    std::optional<T> value_;
    Errc errc_;
};

} // namespace stramash

#endif // STRAMASH_COMMON_RESULT_HH
