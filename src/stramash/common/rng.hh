/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the simulator draws from a seeded PCG32
 * stream so that experiments are reproducible bit-for-bit. PCG32 is
 * used instead of std::mt19937 because its state is two words, it is
 * trivially seedable per-component, and its output is identical across
 * standard library implementations.
 */

#ifndef STRAMASH_COMMON_RNG_HH
#define STRAMASH_COMMON_RNG_HH

#include <cstdint>

#include "stramash/common/logging.hh"

namespace stramash
{

/** PCG32 (XSH-RR variant) deterministic random number generator. */
class Rng
{
  public:
    /**
     * @param seed Stream initial state.
     * @param seq  Stream selector; distinct seq values give independent
     *             sequences even with the same seed.
     */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t seq = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (seq << 1) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31));
    }

    /** Next 64-bit value. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        panic_if(bound == 0, "Rng::below(0)");
        std::uint32_t threshold = (~bound + 1u) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform 64-bit integer in [0, bound). */
    std::uint64_t
    below64(std::uint64_t bound)
    {
        panic_if(bound == 0, "Rng::below64(0)");
        if (bound <= UINT32_MAX)
            return below(static_cast<std::uint32_t>(bound));
        std::uint64_t threshold = (~bound + 1u) % bound;
        for (;;) {
            std::uint64_t r = next64();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        panic_if(lo > hi, "Rng::range with lo > hi");
        return lo + static_cast<std::int64_t>(
                        below64(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 27 random bits are exactly representable in a double mantissa.
        return static_cast<double>(next() >> 5) * (1.0 / 134217728.0);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace stramash

#endif // STRAMASH_COMMON_RNG_HH
