/**
 * @file
 * Size and time unit helpers.
 */

#ifndef STRAMASH_COMMON_UNITS_HH
#define STRAMASH_COMMON_UNITS_HH

#include <cstdint>

namespace stramash
{

inline namespace units
{

constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}

constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}

constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

} // namespace units

/**
 * Convert microseconds to cycles at a given core clock.
 * Used to express the measured 2 us cross-ISA IPI cost and the 75 us
 * network round trip in the icount timebase.
 */
constexpr std::uint64_t
usToCycles(double us, double ghz)
{
    return static_cast<std::uint64_t>(us * ghz * 1000.0);
}

/** Convert cycles back to microseconds at a given core clock. */
constexpr double
cyclesToUs(std::uint64_t cycles, double ghz)
{
    return static_cast<double>(cycles) / (ghz * 1000.0);
}

} // namespace stramash

#endif // STRAMASH_COMMON_UNITS_HH
