#include "stramash/common/types.hh"

#include "stramash/common/logging.hh"

namespace stramash
{

const char *
isaName(IsaType isa)
{
    switch (isa) {
      case IsaType::X86_64: return "x86-64";
      case IsaType::AArch64: return "aarch64";
    }
    panic("unknown IsaType");
}

const char *
memoryModelName(MemoryModel model)
{
    switch (model) {
      case MemoryModel::Separated: return "Separated";
      case MemoryModel::Shared: return "Shared";
      case MemoryModel::FullyShared: return "FullyShared";
    }
    panic("unknown MemoryModel");
}

const char *
osDesignName(OsDesign design)
{
    switch (design) {
      case OsDesign::MultipleKernel: return "MultipleKernel";
      case OsDesign::FusedKernel: return "FusedKernel";
    }
    panic("unknown OsDesign");
}

const char *
transportName(Transport t)
{
    switch (t) {
      case Transport::SharedMemory: return "SHM";
      case Transport::Network: return "TCP";
    }
    panic("unknown Transport");
}

const char *
memoryClassName(MemoryClass c)
{
    switch (c) {
      case MemoryClass::Local: return "Local";
      case MemoryClass::Remote: return "Remote";
      case MemoryClass::SharedPool: return "SharedPool";
    }
    panic("unknown MemoryClass");
}

} // namespace stramash
