/**
 * @file
 * Fundamental scalar types and enumerations shared by every Stramash
 * module. Nothing here allocates or depends on other modules.
 */

#ifndef STRAMASH_COMMON_TYPES_HH
#define STRAMASH_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace stramash
{

/** Guest physical or virtual address. */
using Addr = std::uint64_t;

/** Simulated time expressed in core clock cycles. */
using Cycles = std::uint64_t;

/** Retired-instruction count (the simulator's icount timebase). */
using ICount = std::uint64_t;

/** Identifier of a node (an island of homogeneous-ISA cores). */
using NodeId = std::uint32_t;

/** Identifier of a core within the whole machine. */
using CoreId = std::uint32_t;

/** Process identifier inside the fused namespace. */
using Pid = std::uint32_t;

/** An invalid / not-yet-assigned node. */
inline constexpr NodeId invalidNode = ~NodeId{0};

/** Page size used throughout (both modelled ISAs use 4 KiB pages). */
inline constexpr Addr pageSize = 4096;
inline constexpr Addr pageShift = 12;

/** Cache line size shared by both modelled ISAs. */
inline constexpr Addr cacheLineSize = 64;

/** Round an address down to its containing page base. */
constexpr Addr
pageBase(Addr a)
{
    return a & ~(pageSize - 1);
}

/** Round an address up to the next page boundary. */
constexpr Addr
pageAlignUp(Addr a)
{
    return (a + pageSize - 1) & ~(pageSize - 1);
}

/** Byte offset of an address within its page. */
constexpr Addr
pageOffset(Addr a)
{
    return a & (pageSize - 1);
}

/** Round an address down to its containing cache-line base. */
constexpr Addr
lineBase(Addr a)
{
    return a & ~(cacheLineSize - 1);
}

/** Instruction-set architecture of a node. */
enum class IsaType : std::uint8_t {
    X86_64,
    AArch64,
};

/** Human-readable ISA name. */
const char *isaName(IsaType isa);

/**
 * Hardware memory configuration (paper Figure 3).
 *
 * Separated:   per-node memory, coherence via LLC snooping (NUMA-like).
 * Shared:      per-node private memory plus a CXL-style coherent pool.
 * FullyShared: one memory shared by all processors.
 */
enum class MemoryModel : std::uint8_t {
    Separated,
    Shared,
    FullyShared,
};

/** Human-readable memory model name. */
const char *memoryModelName(MemoryModel model);

/**
 * Operating-system design under test (paper Figure 2).
 *
 * MultipleKernel: shared-nothing Popcorn-style baseline (DSM page
 *                 replication, message-based services).
 * FusedKernel:    shared-mostly Stramash design (direct shared-memory
 *                 access, remote walkers, fused address space).
 */
enum class OsDesign : std::uint8_t {
    MultipleKernel,
    FusedKernel,
};

/** Human-readable OS design name. */
const char *osDesignName(OsDesign design);

/** Transport used by the inter-kernel messaging layer. */
enum class Transport : std::uint8_t {
    /** Shared-memory ring buffers with cross-ISA IPI notification. */
    SharedMemory,
    /** TCP/IP network transport model (Popcorn "TCP"). */
    Network,
};

/** Human-readable transport name. */
const char *transportName(Transport t);

/** Kind of memory access issued by a core. */
enum class AccessType : std::uint8_t {
    InstFetch,
    Load,
    Store,
};

/**
 * Where a physical address lives relative to the accessing node, under
 * the active memory model.
 */
enum class MemoryClass : std::uint8_t {
    /** In the node's own local memory. */
    Local,
    /** In the other node's memory, reached over the coherent fabric. */
    Remote,
    /** In the CXL-style shared pool (Shared model only). */
    SharedPool,
};

/** Human-readable memory class name. */
const char *memoryClassName(MemoryClass c);

} // namespace stramash

#endif // STRAMASH_COMMON_TYPES_HH
