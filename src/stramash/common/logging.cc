#include "stramash/common/logging.hh"

#include <atomic>
#include <stdexcept>

namespace stramash
{

namespace
{
std::atomic<bool> quietFlag{false};
} // namespace

void
setQuiet(bool q)
{
    quietFlag.store(q, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace log_detail
{

void
emit(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

} // namespace log_detail

} // namespace stramash
