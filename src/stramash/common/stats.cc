#include "stramash/common/stats.hh"

#include <algorithm>
#include <cstdio>

namespace stramash
{

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::min(1.0, std::max(0.0, p));
    if (p == 0.0)
        return static_cast<double>(min_);
    // Rank of the requested quantile, in (0, count].
    double target = p * static_cast<double>(count_);
    if (target < 1.0)
        target = 1.0;

    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (static_cast<double>(cum + buckets_[i]) >= target) {
            // Bucket bounds, clamped to the observed extremes so
            // interpolation never leaves [min, max].
            double lo = i == 0 ? static_cast<double>(min_)
                               : static_cast<double>(edges_[i - 1]);
            double hi = i < edges_.size()
                            ? static_cast<double>(edges_[i])
                            : static_cast<double>(max_);
            lo = std::max(lo, static_cast<double>(min_));
            hi = std::min(hi, static_cast<double>(max_));
            if (hi <= lo)
                return lo;
            double frac = (target - static_cast<double>(cum)) /
                          static_cast<double>(buckets_[i]);
            return lo + frac * (hi - lo);
        }
        cum += buckets_[i];
    }
    return static_cast<double>(max_);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

void
Histogram::merge(const Histogram &other)
{
    panic_if(edges_ != other.edges_,
             "Histogram::merge with mismatched bucket edges");
    if (other.count_ == 0)
        return;
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
}

Counter &
StatGroup::counter(const std::string &name)
{
    std::lock_guard<std::mutex> g(regMu_);
    return counters_[name];
}

Histogram &
StatGroup::histogram(const std::string &name,
                     std::vector<std::uint64_t> edges)
{
    std::lock_guard<std::mutex> g(regMu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        // try_emplace builds the Histogram in place: it is neither
        // copyable nor movable (it owns a spinlock).
        it = histograms_.try_emplace(name, std::move(edges)).first;
    }
    return it->second;
}

bool
StatGroup::has(const std::string &name) const
{
    std::lock_guard<std::mutex> g(regMu_);
    return counters_.count(name) != 0;
}

bool
StatGroup::hasHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> g(regMu_);
    return histograms_.count(name) != 0;
}

std::uint64_t
StatGroup::value(const std::string &name) const
{
    std::lock_guard<std::mutex> g(regMu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

const Histogram *
StatGroup::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> g(regMu_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << ' ' << kv.second.value()
           << '\n';
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "hist count=%llu min=%llu max=%llu mean=%.2f "
                      "p50=%.2f p99=%.2f p999=%.2f",
                      static_cast<unsigned long long>(h.count()),
                      static_cast<unsigned long long>(h.minValue()),
                      static_cast<unsigned long long>(h.maxValue()),
                      h.mean(), h.percentile(0.50), h.percentile(0.99),
                      h.percentile(0.999));
        os << name_ << '.' << kv.first << ' ' << buf << '\n';
    }
}

std::map<std::string, std::uint64_t>
StatGroup::snapshot() const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &kv : counters_)
        out.emplace(kv.first, kv.second.value());
    return out;
}

} // namespace stramash
