#include "stramash/common/stats.hh"

namespace stramash
{

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

bool
StatGroup::has(const std::string &name) const
{
    return counters_.count(name) != 0;
}

std::uint64_t
StatGroup::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << ' ' << kv.second.value()
           << '\n';
}

std::map<std::string, std::uint64_t>
StatGroup::snapshot() const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &kv : counters_)
        out.emplace(kv.first, kv.second.value());
    return out;
}

} // namespace stramash
