/**
 * @file
 * Lightweight statistics collection.
 *
 * Every simulated component owns a StatGroup and registers named
 * counters with it. At the end of a run the groups can be dumped as a
 * flat name=value table, which the bench harnesses post-process into
 * the paper's tables and figures.
 */

#ifndef STRAMASH_COMMON_STATS_HH
#define STRAMASH_COMMON_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "stramash/common/logging.hh"

namespace stramash
{

/**
 * A monotonically increasing named counter.
 *
 * Increments are relaxed atomics so parallel host sessions (several
 * lanes bumping the same message-layer counter) stay race-free; the
 * final value is an exact sum regardless of interleaving, which is
 * what keeps parallel runs bit-identical to the single-thread
 * reference. Reads are meaningful at serial points (epoch barriers,
 * end of run).
 */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator+=(std::uint64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
        return *this;
    }

    Counter &
    operator++()
    {
        value_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * A fixed-bucket histogram for latency-style distributions (used by
 * the IPI characterisation experiment).
 *
 * sample() is guarded by a tiny spinlock so concurrent lanes of a
 * parallel host session can share one histogram: the recorded
 * multiset of samples — and therefore count/sum/min/max and every
 * percentile — is order-independent, keeping parallel runs
 * bit-identical. Readers run at serial points only.
 */
class Histogram
{
  public:
    /** Buckets are [edges[i], edges[i+1]); an overflow bucket follows. */
    explicit Histogram(std::vector<std::uint64_t> edges)
        : edges_(std::move(edges)), buckets_(edges_.size() + 1, 0)
    {
        panic_if(edges_.empty(), "Histogram with no bucket edges");
    }

    void
    sample(std::uint64_t v)
    {
        while (lock_.test_and_set(std::memory_order_acquire)) {
        }
        ++count_;
        sum_ += v;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
        std::size_t i = 0;
        while (i < edges_.size() && v >= edges_[i])
            ++i;
        ++buckets_[i];
        lock_.clear(std::memory_order_release);
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t minValue() const { return min_; }
    std::uint64_t maxValue() const { return max_; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    /**
     * Estimate the @p p quantile (p in [0, 1]) by linear
     * interpolation within the containing bucket. The first bucket
     * is bounded below by the observed minimum and the overflow
     * bucket above by the observed maximum, so p=0 / p=1 return the
     * exact extremes.
     */
    double percentile(double p) const;

    /** Forget every sample (keeps the bucket edges). */
    void reset();

    /**
     * Fold @p other's samples into this histogram. Both must share
     * the same bucket edges. The result is exactly what sampling the
     * union multiset would have produced, so per-epoch scratch
     * histograms (e.g. run-queue depth sampled every scheduler
     * epoch) can be merged into a long-lived one instead of
     * re-registering it. Serial points only.
     */
    void merge(const Histogram &other);

    const std::vector<std::uint64_t> &edges() const { return edges_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

  private:
    std::vector<std::uint64_t> edges_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
};

/**
 * A named collection of counters and histograms. Components register
 * their stats once at construction; lookups after that are by
 * pointer, not name.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register (or fetch) a counter by name. Pointers stay stable. */
    Counter &counter(const std::string &name);

    /**
     * Register (or fetch) a histogram by name. @p edges is only used
     * on first registration; later fetches return the existing
     * histogram unchanged. Pointers stay stable.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<std::uint64_t> edges);

    /** True if a counter of this name has been registered. */
    bool has(const std::string &name) const;

    /** True if a histogram of this name has been registered. */
    bool hasHistogram(const std::string &name) const;

    /** Value of a registered counter; 0 if never registered. */
    std::uint64_t value(const std::string &name) const;

    /** A registered histogram, or nullptr. */
    const Histogram *findHistogram(const std::string &name) const;

    /** Reset every counter and histogram. */
    void resetAll();

    /**
     * Dump one line per stat, sorted by name. Counters keep the
     * original two-token format the bench post-processing splits on:
     *
     *     group.counter VALUE
     *
     * Histogram lines are distinguishable by their "hist" marker
     * token and carry the distribution summary:
     *
     *     group.name hist count=N min=A max=B mean=C p50=D p99=E
     *         p999=F
     */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

    /** Snapshot of all counters, for diffing before/after a phase. */
    std::map<std::string, std::uint64_t> snapshot() const;

    /** All registered counters, sorted by name. */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    /** All registered histograms, sorted by name. */
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

  private:
    std::string name_;
    // std::map keeps pointer stability under insertion and gives the
    // sorted dump order for free. Registration (the by-name lookup
    // that may insert) is mutex-guarded so two host lanes hitting a
    // lazily registered counter for the first time cannot race the
    // map; the returned references stay lock-free to use.
    mutable std::mutex regMu_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace stramash

#endif // STRAMASH_COMMON_STATS_HH
