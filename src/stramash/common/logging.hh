/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated: a Stramash bug. Aborts.
 * fatal()  — the simulation cannot continue due to user error (bad
 *            configuration, invalid arguments). Exits with an error code.
 * warn()   — something is off but the run may still be meaningful.
 * inform() — routine status the user may want to see.
 */

#ifndef STRAMASH_COMMON_LOGGING_HH
#define STRAMASH_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace stramash
{

namespace log_detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void emit(const char *prefix, const std::string &msg);

/** Build a message string from any streamable arguments. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace log_detail

/** Globally silence warn()/inform() (used by benches for clean tables). */
void setQuiet(bool quiet);
bool quiet();

template <typename... Args>
void
warn(Args &&...args)
{
    if (!quiet())
        log_detail::emit("warn", log_detail::format(args...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    if (!quiet())
        log_detail::emit("info", log_detail::format(args...));
}

#define panic(...)                                                         \
    ::stramash::log_detail::panicImpl(                                     \
        __FILE__, __LINE__, ::stramash::log_detail::format(__VA_ARGS__))

#define fatal(...)                                                         \
    ::stramash::log_detail::fatalImpl(                                     \
        __FILE__, __LINE__, ::stramash::log_detail::format(__VA_ARGS__))

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            panic(__VA_ARGS__);                                            \
    } while (0)

#define fatal_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            fatal(__VA_ARGS__);                                            \
    } while (0)

} // namespace stramash

#endif // STRAMASH_COMMON_LOGGING_HH
