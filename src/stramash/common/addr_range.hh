/**
 * @file
 * Half-open address ranges and an interval set over them.
 *
 * Used by the physical memory map (which regions belong to which node
 * under each memory model) and by allocators to track free extents.
 */

#ifndef STRAMASH_COMMON_ADDR_RANGE_HH
#define STRAMASH_COMMON_ADDR_RANGE_HH

#include <map>
#include <optional>
#include <vector>

#include "stramash/common/logging.hh"
#include "stramash/common/types.hh"

namespace stramash
{

/** A half-open address range [start, end). */
struct AddrRange
{
    Addr start = 0;
    Addr end = 0;

    constexpr AddrRange() = default;

    constexpr AddrRange(Addr s, Addr e) : start(s), end(e) {}

    constexpr Addr size() const { return end - start; }
    constexpr bool empty() const { return end <= start; }

    constexpr bool
    contains(Addr a) const
    {
        return a >= start && a < end;
    }

    constexpr bool
    containsRange(const AddrRange &o) const
    {
        return o.start >= start && o.end <= end;
    }

    constexpr bool
    overlaps(const AddrRange &o) const
    {
        return start < o.end && o.start < end;
    }

    constexpr bool
    operator==(const AddrRange &o) const
    {
        return start == o.start && end == o.end;
    }
};

/**
 * A set of disjoint address ranges with coalescing insert and
 * splitting erase. Operations are O(log n) in the number of disjoint
 * extents.
 */
class IntervalSet
{
  public:
    /** Add [start, end), merging with any adjacent/overlapping extent. */
    void
    insert(Addr start, Addr end)
    {
        panic_if(start >= end, "IntervalSet::insert empty range");
        // Find the first extent whose end >= start (could merge).
        auto it = map_.lower_bound(start);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second >= start) {
                it = prev;
                start = std::min(start, it->first);
            }
        }
        while (it != map_.end() && it->first <= end) {
            end = std::max(end, it->second);
            start = std::min(start, it->first);
            it = map_.erase(it);
        }
        map_.emplace(start, end);
    }

    void insert(const AddrRange &r) { insert(r.start, r.end); }

    /** Remove [start, end), splitting extents as needed. */
    void
    erase(Addr start, Addr end)
    {
        panic_if(start >= end, "IntervalSet::erase empty range");
        auto it = map_.lower_bound(start);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second > start)
                it = prev;
        }
        while (it != map_.end() && it->first < end) {
            Addr eStart = it->first;
            Addr eEnd = it->second;
            it = map_.erase(it);
            if (eStart < start)
                map_.emplace(eStart, start);
            if (eEnd > end) {
                map_.emplace(end, eEnd);
                break;
            }
        }
    }

    /** True if addr is covered by some extent. */
    bool
    contains(Addr a) const
    {
        auto it = map_.upper_bound(a);
        if (it == map_.begin())
            return false;
        --it;
        return a < it->second;
    }

    /** True if the whole range [start, end) is covered. */
    bool
    containsRange(Addr start, Addr end) const
    {
        auto it = map_.upper_bound(start);
        if (it == map_.begin())
            return false;
        --it;
        return start >= it->first && end <= it->second;
    }

    /**
     * Find the lowest extent of at least @p size bytes and carve it
     * out of the set.
     * @return the carved range, or nullopt if nothing fits.
     */
    std::optional<AddrRange>
    allocate(Addr size)
    {
        for (auto it = map_.begin(); it != map_.end(); ++it) {
            if (it->second - it->first >= size) {
                AddrRange r{it->first, it->first + size};
                Addr eEnd = it->second;
                map_.erase(it);
                if (r.end < eEnd)
                    map_.emplace(r.end, eEnd);
                return r;
            }
        }
        return std::nullopt;
    }

    /** Total bytes covered. */
    Addr
    totalBytes() const
    {
        Addr total = 0;
        for (const auto &kv : map_)
            total += kv.second - kv.first;
        return total;
    }

    bool empty() const { return map_.empty(); }
    std::size_t extentCount() const { return map_.size(); }

    /** Drop every extent. */
    void clear() { map_.clear(); }

    /** Snapshot of the disjoint extents in ascending order. */
    std::vector<AddrRange>
    extents() const
    {
        std::vector<AddrRange> out;
        out.reserve(map_.size());
        for (const auto &kv : map_)
            out.push_back({kv.first, kv.second});
        return out;
    }

  private:
    // start -> end of each disjoint extent.
    std::map<Addr, Addr> map_;
};

} // namespace stramash

#endif // STRAMASH_COMMON_ADDR_RANGE_HH
