#include "stramash/sched/scheduler.hh"

#include <algorithm>

#include "stramash/sim/parallel_executor.hh"

namespace stramash
{

namespace
{

/** Pseudo-address key of a node's run-queue anchor line (head/tail
 *  words) inside its kernel's coherent data region. */
constexpr std::uint64_t kQueueAnchorKey = 0x5c4ed0000ULL;
/** Key base for the per-slot item records behind the anchor. */
constexpr std::uint64_t kItemKeyBase = 0x5c4ed8000ULL;

/** Thief-side bookkeeping after a fused steal (re-link, accounting). */
constexpr Cycles kStealBookkeepCycles = 120;
/** Victim-side protocol work serving a Popcorn steal request. */
constexpr Cycles kStealServeCycles = 600;

Addr
anchorAddr(KernelInstance &k, NodeId node)
{
    return k.dataAddrFor(kQueueAnchorKey ^ node);
}

Addr
itemAddr(KernelInstance &k, NodeId node, std::uint64_t slot)
{
    return k.dataAddrFor(kItemKeyBase ^
                         (static_cast<std::uint64_t>(node) << 16) ^
                         slot);
}

} // namespace

const char *
placementPolicyName(PlacementPolicy p)
{
    switch (p) {
      case PlacementPolicy::IsaAffinity: return "isa_affinity";
      case PlacementPolicy::LeastLoaded: return "least_loaded";
      case PlacementPolicy::CostModel: return "cost_model";
    }
    panic("unknown PlacementPolicy");
}

/** Drives the run queues through the host executor: every epoch each
 *  node pops a block of its own queue (items charge only their
 *  executing node, so lanes never race), and the serial barrier runs
 *  the steal round. */
class SchedDriver final : public EpochDriver
{
  public:
    explicit SchedDriver(Scheduler &sched) : sched_(sched) {}

    bool
    step(NodeId node, const EpochCtx &) override
    {
        return sched_.runBlockOn(node, sched_.config().runBlock);
    }

    void
    atBarrier(std::uint64_t) override
    {
        sched_.stealRound();
    }

  private:
    Scheduler &sched_;
};

Scheduler::Scheduler(System &sys, SchedConfig cfg)
    : sys_(sys),
      cfg_(cfg),
      queues_(sys.nodeCount()),
      queuedWeight_(sys.nodeCount(), 0),
      stats_("sched")
{
    depthHist_ = &stats_.histogram(
        "runqueue_depth", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
    sys_.registerExternalStatGroup(&stats_);
    if (cfg_.registerWithSystem) {
        sys_.setPlacer(this);
        registered_ = true;
    }

    // Popcorn victims serve steal requests like any other RPC; the
    // fused design never sends one (steals ride coherent memory).
    if (sys_.config().osDesign == OsDesign::MultipleKernel) {
        MessageLayer *msg = &sys_.msg();
        for (NodeId n = 0; n < sys_.nodeCount(); ++n) {
            KernelInstance *k = &sys_.kernel(n);
            k->registerMsgHandler(
                MsgType::StealRequest,
                [k, msg](const Message &m) {
                    // The thief already decided the grant (it owns
                    // the queue bookkeeping — the scheduler's run
                    // queues or the front end's request queues); the
                    // victim pays the dequeue-side protocol work and
                    // ships the item descriptors back.
                    NodeId victim = k->nodeId();
                    unsigned grant = static_cast<unsigned>(m.arg0);
                    k->machine().stall(victim, kStealServeCycles);
                    Message resp;
                    resp.type = MsgType::StealResponse;
                    resp.from = victim;
                    resp.to = m.from;
                    resp.arg0 = grant;
                    resp.payload.assign(
                        static_cast<std::size_t>(grant) * 64, 0);
                    msg->send(resp);
                });
        }
    }

    if (CrashManager *cm = sys_.crashManager()) {
        crashHookToken_ = cm->addRecoveryHook(
            [this](NodeId dead, NodeId survivor) {
                drainDeadNode(dead, survivor);
            });
    }
}

Scheduler::~Scheduler()
{
    if (CrashManager *cm = sys_.crashManager();
        cm && crashHookToken_)
        cm->removeRecoveryHook(crashHookToken_);
    if (registered_ && sys_.placer() == this)
        sys_.setPlacer(nullptr);
    if (sys_.config().osDesign == OsDesign::MultipleKernel) {
        // Replace the steal handlers, which capture this.
        for (NodeId n = 0; n < sys_.nodeCount(); ++n)
            sys_.kernel(n).registerMsgHandler(MsgType::StealRequest,
                                              [](const Message &) {});
    }
    sys_.unregisterExternalStatGroup(&stats_);
}

bool
Scheduler::nodeUsable(NodeId n) const
{
    if (!sys_.machine().nodeAlive(n))
        return false;
    const CrashManager *cm =
        const_cast<System &>(sys_).crashManager();
    return !(cm && cm->isSelfFenced(n));
}

std::uint64_t
Scheduler::loadOf(NodeId n) const
{
    return sys_.machine().node(n).cycles() + queuedWeight_[n];
}

NodeId
Scheduler::leastLoaded() const
{
    NodeId best = invalidNode;
    std::uint64_t bestLoad = 0;
    for (NodeId n = 0; n < queues_.size(); ++n) {
        if (!nodeUsable(n))
            continue;
        std::uint64_t load = loadOf(n);
        if (best == invalidNode || load < bestLoad) {
            best = n;
            bestLoad = load;
        }
    }
    panic_if(best == invalidNode, "leastLoaded: no usable node");
    return best;
}

NodeId
Scheduler::place(const PlacementHints &hints)
{
    ++stats_.counter("placed_total");
    NodeId chosen;
    if (hints.pin) {
        // Pins always win: this is the compatibility path the
        // differential tests pass through, identical to the
        // scheduler-less System fallback.
        ++stats_.counter("placed_pin");
        chosen = sys_.firstAliveFrom(*hints.pin);
    } else if (cfg_.policy == PlacementPolicy::IsaAffinity) {
        ++stats_.counter("placed_affinity");
        std::size_t n = queues_.size();
        chosen = invalidNode;
        for (std::size_t step = 0; step < n; ++step) {
            NodeId cand =
                static_cast<NodeId>((rrNext_ + step) % n);
            if (!nodeUsable(cand))
                continue;
            if (hints.preferIsa &&
                sys_.kernel(cand).isa() != *hints.preferIsa)
                continue;
            chosen = cand;
            break;
        }
        if (chosen == invalidNode) // ISA preference unsatisfiable
            chosen = sys_.firstAliveFrom(rrNext_);
        rrNext_ = static_cast<NodeId>((chosen + 1) % n);
    } else {
        // LeastLoaded and CostModel place new tasks the same way: a
        // fresh task has no warm cache, so there is no refill cost
        // to weigh and load alone decides.
        ++stats_.counter("placed_least_loaded");
        chosen = leastLoaded();
    }
    sys_.tracer().instant(TraceCategory::Sched, "sched.place",
                          chosen, 0, hints.weightCycles,
                          hints.footprintBytes);
    return chosen;
}

NodeId
Scheduler::offloadTarget(NodeId from, const PlacementHints &hints)
{
    if (hints.pin) {
        ++stats_.counter("offload_pin");
        return sys_.firstAliveFrom(*hints.pin);
    }
    if (cfg_.policy == PlacementPolicy::IsaAffinity) {
        // Bit-identical to App::migrateToNext(): the cyclic next
        // alive node, falling back to the (refused) cyclic successor
        // when every peer is dead.
        ++stats_.counter("offload_affinity");
        std::size_t n = queues_.size();
        for (std::size_t step = 1; step < n; ++step) {
            NodeId cand = static_cast<NodeId>((from + step) % n);
            if (sys_.isNodeAlive(cand))
                return cand;
        }
        return static_cast<NodeId>((from + 1) % n);
    }

    NodeId cand = leastLoaded();
    if (cand == from) {
        ++stats_.counter("offload_stay");
        return from;
    }
    if (cfg_.policy == PlacementPolicy::CostModel) {
        std::uint64_t lFrom = loadOf(from);
        std::uint64_t lCand = loadOf(cand);
        std::uint64_t benefit = lFrom > lCand ? lFrom - lCand : 0;
        std::uint64_t lines =
            (hints.footprintBytes + cacheLineSize - 1) /
            cacheLineSize;
        std::uint64_t cost = cfg_.migrationChargeCycles +
                             lines * cfg_.refillCyclesPerLine;
        if (benefit <= cost) {
            ++stats_.counter("offload_cost_stay");
            return from;
        }
        ++stats_.counter("offload_cost_move");
    } else {
        ++stats_.counter("offload_move");
    }
    sys_.tracer().instant(TraceCategory::Sched, "sched.offload",
                          from, 0, cand, hints.footprintBytes);
    return cand;
}

NodeId
Scheduler::submit(WorkItem item)
{
    PlacementHints hints;
    hints.weightCycles = item.weight;
    hints.footprintBytes = item.footprintBytes;
    return submitTo(place(hints), std::move(item));
}

NodeId
Scheduler::submitTo(NodeId node, WorkItem item)
{
    NodeId n = sys_.firstAliveFrom(node);
    queuedWeight_[n] += item.weight;
    queues_[n].push_back(std::move(item));
    ++stats_.counter("items_submitted");
    return n;
}

std::size_t
Scheduler::queueDepth(NodeId node) const
{
    panic_if(node >= queues_.size(), "queueDepth: unknown node");
    return queues_[node].size();
}

std::size_t
Scheduler::totalQueued() const
{
    std::size_t total = 0;
    for (const auto &q : queues_)
        total += q.size();
    return total;
}

bool
Scheduler::runBlockOn(NodeId node, std::size_t block)
{
    // A dead node's items stay queued until the recovery hook drains
    // them to a survivor (fused) or declares them lost (Popcorn).
    if (!nodeUsable(node))
        return false;
    auto &q = queues_[node];
    std::size_t n = std::min(q.size(), block);
    for (std::size_t i = 0; i < n; ++i) {
        WorkItem item = std::move(q.front());
        q.pop_front();
        queuedWeight_[node] -=
            std::min(queuedWeight_[node], item.weight);
        execOne(node, item);
    }
    return !q.empty();
}

void
Scheduler::execOne(NodeId node, WorkItem &item)
{
    // Popping the local run queue touches its coherent anchor line;
    // both designs pay this identically — only steals differ.
    Machine &m = sys_.machine();
    m.dataAccess(node, AccessType::Load,
                 anchorAddr(sys_.kernel(node), node), 64);
    sys_.tracer().instant(TraceCategory::Sched, "sched.exec", node,
                          0, item.tag, item.weight);
    if (item.fn)
        item.fn(node);
    ++executed_;
    ++stats_.counter("items_executed");
}

NodeId
Scheduler::chooseVictim(NodeId thief) const
{
    NodeId best = invalidNode;
    std::size_t bestDepth = 1; // need >= 2: the victim keeps one
    for (NodeId n = 0; n < queues_.size(); ++n) {
        if (n == thief || !nodeUsable(n))
            continue;
        if (queues_[n].size() > bestDepth) {
            best = n;
            bestDepth = queues_[n].size();
        }
    }
    return best;
}

unsigned
Scheduler::grantFor(NodeId victim, unsigned want) const
{
    std::size_t depth = queues_[victim].size();
    if (depth < 2)
        return 0;
    return static_cast<unsigned>(std::min<std::size_t>(
        {static_cast<std::size_t>(want),
         static_cast<std::size_t>(cfg_.stealBatch), depth - 1}));
}

unsigned
Scheduler::chargeStealPath(NodeId thief, NodeId victim,
                           unsigned grant)
{
    panic_if(grant == 0, "chargeStealPath: grant must be > 0");
    Machine &m = sys_.machine();
    if (sys_.config().osDesign == OsDesign::FusedKernel) {
        // Coherent-memory steal: read the victim's queue anchor,
        // claim the tail with a store, pull one line per item. The
        // cost is pure cache traffic — the snoop filter sees every
        // cross-node line move; the message layer sees nothing.
        KernelInstance &vk = sys_.kernel(victim);
        m.dataAccess(thief, AccessType::Load,
                     anchorAddr(vk, victim), 64);
        m.dataAccess(thief, AccessType::Store,
                     anchorAddr(vk, victim), 64);
        for (unsigned i = 0; i < grant; ++i)
            m.dataAccess(thief, AccessType::Load,
                         itemAddr(vk, victim, i), 64);
        m.stall(thief, kStealBookkeepCycles);
        return grant;
    }
    // Shared-nothing steal: a full RPC round-trip. The victim's
    // handler echoes the grant and ships the item descriptors in
    // the reply; the resilient tryRpc is the historical rpc()
    // bit-for-bit when no fault injector is attached.
    ChannelScope channel(sys_.msg(), thief, victim);
    Message req;
    req.type = MsgType::StealRequest;
    req.from = thief;
    req.to = victim;
    req.arg0 = grant;
    std::optional<Message> resp =
        sys_.msg().tryRpc(req, MsgType::StealResponse);
    if (!resp) {
        ++stats_.counter("steals_unreachable");
        return 0;
    }
    return static_cast<unsigned>(resp->arg0);
}

void
Scheduler::moveItems(NodeId victim, NodeId thief, unsigned n)
{
    auto &vq = queues_[victim];
    auto &tq = queues_[thief];
    panic_if(n == 0 || n >= vq.size(),
             "moveItems: victim must keep at least one item");
    std::size_t start = vq.size() - n;
    for (std::size_t i = start; i < vq.size(); ++i) {
        std::uint64_t w = vq[i].weight;
        queuedWeight_[victim] -= std::min(queuedWeight_[victim], w);
        queuedWeight_[thief] += w;
        tq.push_back(std::move(vq[i]));
    }
    vq.resize(start);
}

void
Scheduler::stealRound()
{
    // Depth histogram sampled at serial points, one sample per
    // usable node per round.
    for (NodeId n = 0; n < queues_.size(); ++n) {
        if (nodeUsable(n))
            depthHist_->sample(queues_[n].size());
    }
    if (!cfg_.stealing)
        return;
    for (NodeId thief = 0; thief < queues_.size(); ++thief) {
        if (!nodeUsable(thief) || !queues_[thief].empty())
            continue;
        NodeId victim = chooseVictim(thief);
        if (victim == invalidNode)
            continue;
        unsigned want = grantFor(victim, cfg_.stealBatch);
        if (want == 0)
            continue;
        ++stats_.counter("steals_attempted");
        unsigned got = chargeStealPath(thief, victim, want);
        if (got == 0) {
            ++stats_.counter("steals_refused");
            continue;
        }
        moveItems(victim, thief, got);
        ++stats_.counter("steals_succeeded");
        stats_.counter("steal_items") += got;
        sys_.tracer().instant(TraceCategory::Sched, "sched.steal",
                              thief, 0, victim, got);
    }
}

Cycles
Scheduler::runToIdle()
{
    Cycles before = sys_.machine().maxRuntime();
    SchedDriver driver(*this);
    sys_.hostExecutor().run(driver);
    return sys_.machine().maxRuntime() - before;
}

Cycles
Scheduler::runInline()
{
    Cycles before = sys_.machine().maxRuntime();
    for (;;) {
        std::uint64_t ranBefore = executed_;
        for (NodeId n = 0; n < queues_.size(); ++n)
            runBlockOn(n, cfg_.runBlock);
        stealRound();
        // Only stranded (dead-node) items can remain once a full
        // round executes nothing.
        if (executed_ == ranBefore)
            break;
    }
    return sys_.machine().maxRuntime() - before;
}

void
Scheduler::drainDeadNode(NodeId dead, NodeId survivor)
{
    auto &dq = queues_[dead];
    queuedWeight_[dead] = 0;
    if (dq.empty())
        return;
    ++stats_.counter("dead_queue_drains");
    Machine &m = sys_.machine();
    if (sys_.config().osDesign == OsDesign::FusedKernel) {
        // The dead kernel's memory is still coherent: the survivor
        // walks the queue straight out of it and adopts every item,
        // charged like the task re-homing that just ran.
        KernelInstance &dk = sys_.kernel(dead);
        m.dataAccess(survivor, AccessType::Load,
                     anchorAddr(dk, dead), 64);
        std::uint64_t slot = 0;
        for (WorkItem &item : dq) {
            m.dataAccess(survivor, AccessType::Load,
                         itemAddr(dk, dead, slot++), 64);
            queuedWeight_[survivor] += item.weight;
            queues_[survivor].push_back(std::move(item));
        }
        stats_.counter("queue_items_drained") += slot;
        sys_.tracer().instant(TraceCategory::Sched, "sched.drain",
                              survivor, 0, dead, slot);
    } else {
        // Shared-nothing: the dead node's queue lived in its own
        // memory and is simply gone.
        stats_.counter("queue_items_lost") += dq.size();
        sys_.tracer().instant(TraceCategory::Sched,
                              "sched.queue_lost", survivor, 0, dead,
                              dq.size());
    }
    dq.clear();
}

} // namespace stramash
