/**
 * @file
 * The real scheduler: per-node run queues, heterogeneity-aware
 * placement, and cross-kernel work stealing.
 *
 * Each kernel node owns one run queue of detached work items. A
 * pluggable placement policy decides where new work (and new tasks —
 * the Scheduler implements core::Placer) starts:
 *
 *   - IsaAffinity: honour the ISA preference; offload hops are the
 *     cyclic next-alive node, bit-identical to App::migrateToNext().
 *   - LeastLoaded: the alive node with the smallest clock + queued
 *     weight.
 *   - CostModel: least-loaded, but a move only happens when the load
 *     benefit outweighs the migration charge plus the warm-cache
 *     refill of the task's footprint.
 *
 * Work stealing runs at the serial epoch barriers of the parallel
 * host executor, so a thread-count sweep stays bit-identical by
 * construction (the barrier is single-threaded at any thread count,
 * and steal decisions read only barrier-synced state). An idle node
 * steals from the deepest queue, the way each OS design can:
 *
 *   - FusedKernel: the thief pops the victim's run queue directly
 *     out of coherent shared memory — a load of the queue anchor, a
 *     claiming store, and one line per stolen item. No messages; the
 *     cost is cache traffic, visible in the snoop-filter counters.
 *   - MultipleKernel (Popcorn): nothing is shared, so the thief pays
 *     a StealRequest/StealResponse RPC round-trip through the
 *     transport, riding the resilient retry/backoff machinery.
 *
 * A victim always retains at least one item, which keeps the
 * executor's quiescence check sound: the victim's lane still reports
 * pending work on the epoch a steal happens.
 *
 * Dead nodes drain through the crash-recovery path: the Scheduler
 * registers a CrashManager recovery hook, and the survivor adopts
 * the dead node's queued items during the same pass that re-homes
 * tasks and futex waiters.
 */

#ifndef STRAMASH_SCHED_SCHEDULER_HH
#define STRAMASH_SCHED_SCHEDULER_HH

#include <deque>
#include <functional>

#include "stramash/core/app.hh"
#include "stramash/core/system.hh"

namespace stramash
{

class HostExecutor;

/** Which placement policy drives place()/offloadTarget(). */
enum class PlacementPolicy {
    /** ISA preference; offload = cyclic next alive (migrateToNext). */
    IsaAffinity,
    /** Smallest clock + queued-weight among alive nodes. */
    LeastLoaded,
    /** LeastLoaded gated by migration charge + warm-cache refill. */
    CostModel,
};

const char *placementPolicyName(PlacementPolicy p);

struct SchedConfig
{
    PlacementPolicy policy = PlacementPolicy::LeastLoaded;
    /** Idle-node work stealing at epoch barriers. */
    bool stealing = true;
    /** Max items moved per steal (victim keeps >= 1 regardless). */
    unsigned stealBatch = 8;
    /** Items one node executes per executor epoch. */
    std::size_t runBlock = 64;
    /** CostModel: flat charge for moving a task across nodes
     *  (state transformation, cold TLB/branch state). */
    Cycles migrationChargeCycles = 8000;
    /** CostModel: refill cost per cache line of warm footprint. */
    Cycles refillCyclesPerLine = 40;
    /** Attach as the System's Placer for spawnPlaced/placeNode. */
    bool registerWithSystem = true;
};

/**
 * One unit of schedulable work. Detached from any node: fn runs on
 * whichever node's queue it is popped from (that node's id is the
 * argument), so a stolen item simply executes — and charges — on the
 * thief.
 */
struct WorkItem
{
    /** Stable identity, for traces and differential checks. */
    std::uint64_t tag = 0;
    /** Expected compute weight in cycles (load accounting). */
    std::uint64_t weight = 0;
    /** Warm-cache footprint in bytes (cost model). */
    std::uint64_t footprintBytes = 0;
    std::function<void(NodeId)> fn;
};

class Scheduler final : public Placer
{
  public:
    explicit Scheduler(System &sys, SchedConfig cfg = {});
    ~Scheduler() override;

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    System &system() { return sys_; }
    const SchedConfig &config() const { return cfg_; }

    // ---- core::Placer ----

    /** Policy-chosen start node for a new task (pin always wins). */
    NodeId place(const PlacementHints &hints) override;

    /**
     * Where a task at @p from should run its next offloadable phase.
     * IsaAffinity reproduces App::migrateToNext() exactly; the load
     * policies answer least-loaded, the cost model only moves when
     * the benefit clears the migration + refill charge.
     */
    NodeId offloadTarget(NodeId from,
                         const PlacementHints &hints) override;

    // ---- run queues ----

    /** Enqueue @p item on the policy-chosen node. @return the node. */
    NodeId submit(WorkItem item);

    /** Enqueue @p item on @p node (slides to the next alive node if
     *  @p node is dead). @return the node actually used. */
    NodeId submitTo(NodeId node, WorkItem item);

    std::size_t queueDepth(NodeId node) const;
    std::size_t totalQueued() const;
    std::uint64_t itemsExecuted() const { return executed_; }

    /**
     * Drain every run queue through the System's host executor
     * (epoch-parallel when config().hostThreads > 1; the identical
     * algorithm inline when 1). Steals happen at the serial epoch
     * barriers.
     * @return the max-node-runtime delta the drain cost.
     */
    Cycles runToIdle();

    /**
     * Sequential drain without an executor session: rounds of
     * (every alive node pops and runs up to runBlock items) with a
     * steal round between rounds. Use when the cache plugin must
     * stay live (coherence counters are not lane-safe inside a
     * parallel session).
     * @return the max-node-runtime delta the drain cost.
     */
    Cycles runInline();

    // ---- steal primitives (shared with the load front end) ----

    /** Deepest-queue victim for @p thief (>= 2 items, alive), or
     *  invalidNode when nobody is worth stealing from. */
    NodeId chooseVictim(NodeId thief) const;

    /**
     * Charge the design-specific steal path for a transfer of
     * @p grant items (> 0, decided by the caller — the scheduler's
     * steal round or the load front end): fused = coherent-memory
     * pops (cache traffic only), Popcorn = a StealRequest /
     * StealResponse RPC. Does not move any items itself.
     * @return items actually granted (0 = victim unreachable).
     */
    unsigned chargeStealPath(NodeId thief, NodeId victim,
                             unsigned grant);

    /** One serial steal round: every idle alive node tries one
     *  steal. Runs automatically at executor barriers. */
    void stealRound();

    StatGroup &stats() { return stats_; }

  private:
    friend class SchedDriver;

    System &sys_;
    SchedConfig cfg_;
    std::vector<std::deque<WorkItem>> queues_;
    /** Sum of queued item weights per node, kept incrementally. */
    std::vector<std::uint64_t> queuedWeight_;
    /** Round-robin cursor for affinity placement of new tasks. */
    NodeId rrNext_ = 0;
    StatGroup stats_;
    /** Run-queue depth distribution, sampled each steal round. */
    Histogram *depthHist_ = nullptr;
    std::uint64_t executed_ = 0;
    std::uint64_t crashHookToken_ = 0;
    bool registered_ = false;

    bool nodeUsable(NodeId n) const;
    std::uint64_t loadOf(NodeId n) const;
    NodeId leastLoaded() const;
    /** Items the victim may give up right now (keeps >= 1). */
    unsigned grantFor(NodeId victim, unsigned want) const;
    /** Move @p n items from the back of @p victim to @p thief,
     *  preserving their relative order. */
    void moveItems(NodeId victim, NodeId thief, unsigned n);
    /** Pop and execute up to @p block items on @p node.
     *  @return true when the queue still has work. */
    bool runBlockOn(NodeId node, std::size_t block);
    void execOne(NodeId node, WorkItem &item);
    /** Recovery hook: survivor adopts the dead node's queue. */
    void drainDeadNode(NodeId dead, NodeId survivor);
};

} // namespace stramash

#endif // STRAMASH_SCHED_SCHEDULER_HH
