/**
 * @file
 * The Fused Kernel Virtual Address Space (paper §6.4).
 *
 * Stramash aligns the kernel virtual ranges of the two instances so
 * each kernel can address the other's memory directly: x86's vmalloc
 * range is adjusted to alias the Arm instance's direct map and vice
 * versa. We model the result: a shared direct map at a fixed offset,
 * identical on both kernels, with helpers to convert between kernel
 * virtual and guest physical addresses and to verify the alignment
 * invariant that makes remote accessor functions plain loads/stores.
 */

#ifndef STRAMASH_FUSED_FUSED_VAS_HH
#define STRAMASH_FUSED_FUSED_VAS_HH

#include "stramash/common/logging.hh"
#include "stramash/mem/phys_map.hh"

namespace stramash
{

class FusedVas
{
  public:
    /** Direct-map base shared by every kernel instance. */
    static constexpr Addr directMapBase = 0xffff800000000000ULL;

    explicit FusedVas(const PhysMap &map) : map_(map) {}

    /** Kernel virtual address of a physical address. */
    Addr
    physToKv(Addr pa) const
    {
        panic_if(!map_.isDram(pa), "physToKv of non-DRAM address");
        return directMapBase + pa;
    }

    /** Physical address behind a kernel virtual address. */
    Addr
    kvToPhys(Addr kv) const
    {
        panic_if(kv < directMapBase, "not a direct-map address");
        Addr pa = kv - directMapBase;
        panic_if(!map_.isDram(pa), "direct-map address beyond DRAM");
        return pa;
    }

    /**
     * The fused-VAS invariant: every DRAM byte of every node is
     * addressable at the same kernel virtual address from every
     * kernel instance. With a single shared direct map this reduces
     * to round-tripping each region boundary.
     */
    bool
    checkAlignment() const
    {
        for (const auto &r : map_.regions()) {
            if (kvToPhys(physToKv(r.range.start)) != r.range.start)
                return false;
            if (kvToPhys(physToKv(r.range.end - 1)) != r.range.end - 1)
                return false;
        }
        return true;
    }

  private:
    const PhysMap &map_;
};

} // namespace stramash

#endif // STRAMASH_FUSED_FUSED_VAS_HH
