/**
 * @file
 * The Stramash policy set: the paper's fused-kernel (shared-mostly)
 * design.
 *
 *  - StramashFaultHandler (§6.4): the remote kernel resolves faults
 *    by walking the origin's VMA tree and page table *directly*
 *    through cache-coherent shared memory (accessor functions /
 *    remote CPU driver), under the cross-ISA Stramash-PTL. Pages the
 *    origin already backs are mapped shared (no copy); missing leaf
 *    PTEs are fast-pathed: the remote kernel allocates from its own
 *    memory and inserts the PTE into *both* page tables — into the
 *    origin's in the remote's native format, tagged for later
 *    reconciliation ("replicated pages" of Table 3). Only a missing
 *    upper table level falls back to one message round so the origin
 *    builds the chain (§9.2.3).
 *
 *  - StramashFutexPolicy (§6.5): the remote kernel manipulates the
 *    origin's futex queues directly over shared memory; waking a
 *    thread parked on the other kernel costs exactly one cross-ISA
 *    IPI.
 *
 *  - StramashMigrationPolicy: register state is handed over through
 *    a shared-memory mailbox; one notification message per
 *    migration. Migrating back to the origin reconciles the
 *    foreign-format PTEs into the origin's native format.
 */

#ifndef STRAMASH_FUSED_STRAMASH_HH
#define STRAMASH_FUSED_STRAMASH_HH

#include <map>
#include <set>
#include <vector>

#include "stramash/dsm/dsm_engine.hh"
#include "stramash/kernel/kernel.hh"

namespace stramash
{

/** Bookkeeping shared by the Stramash policies. */
struct StramashShared
{
    /** pid -> (vpage -> writer node) for leaf PTEs a remote kernel
     *  inserted into the origin's table in its own format — Table 3's
     *  Stramash "replicated pages", reconciled at migrate-back. The
     *  writer matters on N-node machines: the tagged entry decodes
     *  in the *writer's* PTE format, and different remote nodes may
     *  run different ISAs. */
    std::map<Pid, std::map<Addr, NodeId>> foreignMapped;
    /** Total foreign-format insertions (monotonic counter). */
    std::uint64_t foreignInsertions = 0;
    /** Shared-frame mappings established by remote faults. */
    std::uint64_t sharedMappings = 0;
    /** Slow-path rounds (upper table level missing). */
    std::uint64_t slowPathFaults = 0;

    /** Mailbox for migration state handoff (guest address). */
    Addr mailbox = 0;
    /** Node whose data region hosts the mailbox. */
    NodeId mailboxOwner = invalidNode;

    void
    resetCounters()
    {
        foreignInsertions = 0;
        sharedMappings = 0;
        slowPathFaults = 0;
    }
};

class StramashFaultHandler final : public FaultHandler
{
  public:
    StramashFaultHandler(MessageLayer &msg, KernelLookup kernels,
                         StramashShared &shared);

    /** Register the slow-path handler on a kernel. */
    void installHandlers(KernelInstance &k);

    void handleFault(KernelInstance &kernel, Task &task, Addr va,
                     XlateStatus kind, AccessType type) override;

    void onTaskExit(KernelInstance &kernel, Task &task) override;

  private:
    MessageLayer &msg_;
    KernelLookup kernels_;
    StramashShared &shared_;

    /** Copy the VMA covering @p va out of the origin's tree, through
     *  the remote VMA walker (charged, locked). */
    void remoteVmaWalk(KernelInstance &k, Task &t, Addr va);

    /** Acquire/release a guest lock word owned by @p owner
     *  (guard-checked, charged CAS). */
    void lockWord(KernelInstance &k, NodeId owner, Addr addr);
    void unlockWord(KernelInstance &k, NodeId owner, Addr addr);

    void onRemoteFaultRequest(KernelInstance &k, const Message &m);
};

class StramashFutexPolicy final : public FutexPolicy
{
  public:
    StramashFutexPolicy(KernelLookup kernels, StramashShared &shared);

    bool wait(KernelInstance &kernel, Task &task, Addr uaddr,
              std::uint32_t expected) override;
    unsigned wake(KernelInstance &kernel, Task &task, Addr uaddr,
                  unsigned count) override;

  private:
    KernelLookup kernels_;
    StramashShared &shared_;
};

class StramashMigrationPolicy final : public MigrationPolicy
{
  public:
    StramashMigrationPolicy(MessageLayer &msg, KernelLookup kernels,
                            StramashShared &shared);

    void installHandlers(KernelInstance &k);
    void trackTask(Pid pid, NodeId origin);
    void migrate(Pid pid, NodeId dest) override;

    /** Whole-process migration, fused style: the destination walks
     *  the source's VMA tree and page table directly through shared
     *  memory, adopts the *same* physical frames (no copies), and
     *  the source forgets the task. One notification message. */
    void migrateProcess(Pid pid, NodeId dest) override;

    std::uint64_t
    replicatedPages() const override
    {
        return shared_.foreignInsertions;
    }

    void resetCounters() override { shared_.resetCounters(); }

    NodeId currentNode(Pid pid) const override;

    void
    setCurrentNode(Pid pid, NodeId node) override
    {
        current_[pid] = node;
    }

    void forgetTask(Pid pid) override { current_.erase(pid); }

    void
    forEachTask(
        const std::function<void(Pid, NodeId)> &fn) const override
    {
        for (const auto &[pid, node] : current_)
            fn(pid, node);
    }

    static constexpr Cycles transformCycles = 2000;

  private:
    MessageLayer &msg_;
    KernelLookup kernels_;
    StramashShared &shared_;
    std::map<Pid, NodeId> current_;

    void onTaskMigrate(KernelInstance &k, const Message &m);

    /** Reconcile the task's foreign-format PTEs into the origin's
     *  native format (migrate-back step, §6.4). */
    void reconcile(KernelInstance &origin, Pid pid);
};

} // namespace stramash

#endif // STRAMASH_FUSED_STRAMASH_HH
