#include "stramash/fused/stramash.hh"

#include "stramash/isa/isa.hh"

namespace stramash
{

namespace
{

/**
 * The PTE format a tagged (foreign-inserted) leaf entry was written
 * in: the recorded writer node's native format, or @p fallback when
 * no record exists (single untracked insertion — decode as the
 * calling remote kernel's own format, the historical two-node rule).
 */
const PteFormat &
taggedWriterFormat(const StramashShared &shared, Machine &machine,
                   Pid pid, Addr vpage, const PteFormat &fallback)
{
    auto pit = shared.foreignMapped.find(pid);
    if (pit != shared.foreignMapped.end()) {
        auto vit = pit->second.find(vpage);
        if (vit != pit->second.end()) {
            return *isaDescriptor(machine.node(vit->second).isa())
                        .pteFormat;
        }
    }
    return fallback;
}

} // namespace

// ===================== StramashFaultHandler ==========================

StramashFaultHandler::StramashFaultHandler(MessageLayer &msg,
                                           KernelLookup kernels,
                                           StramashShared &shared)
    : msg_(msg), kernels_(std::move(kernels)), shared_(shared)
{
}

void
StramashFaultHandler::installHandlers(KernelInstance &k)
{
    k.registerMsgHandler(MsgType::RemoteFaultRequest,
                         [this, &k](const Message &m) {
                             onRemoteFaultRequest(k, m);
                         });
}

void
StramashFaultHandler::lockWord(KernelInstance &k, NodeId owner,
                               Addr addr)
{
    // Cross-ISA CAS acquisition (LSE, §6.5): exclusive-ownership
    // store on the lock word. Remote lock words pay remote latency;
    // the guard verifies the word is in the owner's shared set.
    k.remoteAccess(owner, AccessType::Store, addr, 8);
}

void
StramashFaultHandler::unlockWord(KernelInstance &k, NodeId owner,
                                 Addr addr)
{
    k.remoteAccess(owner, AccessType::Store, addr, 8);
}

void
StramashFaultHandler::remoteVmaWalk(KernelInstance &k, Task &t, Addr va)
{
    KernelInstance &origin = kernels_(t.origin);
    Task &ot = origin.task(t.pid);

    // "each kernel can access the other kernel's VMA lists, with
    // appropriate VMA locks acquired" (§6.4).
    lockWord(k, t.origin, ot.as->vmaLockAddr());
    unsigned visited = 0;
    const Vma *vma = ot.as->vmas().findCounting(va, visited);
    // Each visited tree node is a (remote) cache-line read in the
    // origin's kernel data region.
    for (unsigned i = 0; i < visited; ++i) {
        std::uint64_t key = (static_cast<std::uint64_t>(t.pid) << 40) ^
                            0x564d41 ^ (static_cast<std::uint64_t>(i)
                                        << 20) ^
                            (va >> 30);
        k.remoteAccess(t.origin, AccessType::Load,
                       origin.dataAddrFor(key), 64);
    }
    unlockWord(k, t.origin, ot.as->vmaLockAddr());

    panic_if(!vma, "remote fault outside every origin VMA at 0x",
             std::hex, va);
    bool ok = t.as->vmas().insert(*vma);
    panic_if(!ok, "remote VMA conflicts with local tree");
}

void
StramashFaultHandler::handleFault(KernelInstance &kernel, Task &task,
                                  Addr va, XlateStatus kind,
                                  AccessType type)
{
    NodeId self = kernel.nodeId();
    Addr vpage = pageBase(va);

    panic_if(kind == XlateStatus::NoWrite,
             "Stramash maps with full VMA permissions; write-protect "
             "fault at 0x", std::hex, va);

    if (task.origin == self) {
        bool ok = kernel.handleLocalAnonFault(task, va, type);
        panic_if(!ok, "origin fault outside every VMA at 0x", std::hex,
                 va);
        return;
    }

    // ---- Remote-side fault ----
    if (!task.as->vmas().find(va))
        remoteVmaWalk(kernel, task, va);
    const Vma *vma = task.as->vmas().find(va);
    panic_if(!vma, "no VMA after remote walk");

    KernelInstance &origin = kernels_(task.origin);
    Task &ot = origin.task(task.pid);
    const PteFormat &ofmt = ot.as->pageTable().format();
    const PteFormat &sfmt = task.as->pageTable().format();
    GuestMemory &mem = kernel.machine().memory();
    auto touch = [&](AccessType at, Addr a) {
        kernel.remoteAccess(task.origin, at, a, 8);
    };

    // Cross-ISA page table lock (Stramash-PTL, §6.4).
    lockWord(kernel, task.origin, ot.as->ptlAddr());

    // Software remote page table walk in the origin's format, with
    // per-level masks re-defined by the format object (§6.4).
    Addr table = ot.as->pageTable().rootAddr();
    bool chainComplete = true;
    for (int level = ofmt.levels() - 1; level > 0; --level) {
        Addr ea = table + ofmt.indexOf(vpage, level) * 8;
        touch(AccessType::Load, ea);
        std::uint64_t raw = mem.load<std::uint64_t>(ea);
        DecodedPte d = ofmt.decode(raw, level);
        if (!d.attrs.present) {
            chainComplete = false;
            break;
        }
        table = d.frame;
    }

    if (!chainComplete) {
        // Slow path (§9.2.3): only PTE-level insertion is allowed
        // remotely; a missing upper level is the origin's problem.
        unlockWord(kernel, task.origin, ot.as->ptlAddr());
        ++shared_.slowPathFaults;
        kernel.machine().tracer().instant(TraceCategory::Fault,
                                          "fault.slow_path", self,
                                          task.pid, vpage);
        Message req;
        req.type = MsgType::RemoteFaultRequest;
        req.from = self;
        req.to = task.origin;
        req.arg0 = task.pid;
        req.arg1 = vpage;
        if (!msg_.tryRpc(req, MsgType::RemoteFaultResponse)) {
            // Origin unreachable: leave the page unmapped and let the
            // architectural retry loop re-fault.
            kernel.stats().counter("slow_path_unreachable") += 1;
            return;
        }
        // The chain now exists; retry resolves via the fast path.
        handleFault(kernel, task, va, kind, type);
        return;
    }

    Addr leafEa = table + ofmt.indexOf(vpage, 0) * 8;
    touch(AccessType::Load, leafEa);
    std::uint64_t raw = mem.load<std::uint64_t>(leafEa);
    DecodedPte leaf;
    if (raw & foreignFormatTag) {
        // A tagged entry decodes in its *writer's* format — on an
        // N-node machine that may be a third kernel, not us.
        const PteFormat &wfmt = taggedWriterFormat(
            shared_, kernel.machine(), task.pid, vpage, sfmt);
        leaf = wfmt.decode(raw & ~foreignFormatTag, 0);
    } else {
        leaf = ofmt.decode(raw, 0);
    }

    PteAttrs attrs = vmaPageAttrs(*vma, vma->prot.writable);

    if (leaf.attrs.present) {
        // The origin already backs this page: point our page table
        // at the *same* physical frame — cache-coherent shared
        // memory does the rest. No copy, no message.
        bool ok = task.as->mapPage(vpage, leaf.frame, attrs);
        panic_if(!ok, "shared mapping raced");
        ++shared_.sharedMappings;
        kernel.stats().counter("stramash_shared_maps") += 1;
        kernel.machine().tracer().instant(TraceCategory::Fault,
                                          "fault.shared_map", self,
                                          task.pid, vpage, leaf.frame);
    } else {
        // Fast path: allocate from our own memory, map locally, and
        // insert into the origin's table in *our* format, tagged for
        // reconciliation at migrate-back.
        Addr pa = kernel.allocUserPage(true);
        task.ownedPages.push_back(pa);
        bool ok = task.as->mapPage(vpage, pa, attrs);
        panic_if(!ok, "fast-path mapping raced");
        touch(AccessType::Store, leafEa);
        mem.store<std::uint64_t>(leafEa, sfmt.encodeLeaf(pa, attrs) |
                                             foreignFormatTag);
        shared_.foreignMapped[task.pid][vpage] = self;
        ++shared_.foreignInsertions;
        kernel.stats().counter("stramash_foreign_inserts") += 1;
        kernel.machine().tracer().instant(TraceCategory::Fault,
                                          "fault.foreign_insert", self,
                                          task.pid, vpage, pa);
    }
    unlockWord(kernel, task.origin, ot.as->ptlAddr());
}

void
StramashFaultHandler::onRemoteFaultRequest(KernelInstance &k,
                                           const Message &m)
{
    Task &t = k.task(static_cast<Pid>(m.arg0));
    // Build the table chain; a few local table-frame writes.
    t.as->pageTable().buildChain(m.arg1);
    k.machine().dataAccess(k.nodeId(), AccessType::Store,
                           k.dataAddrFor(m.arg1 ^ 0x510), 64);
    Message resp;
    resp.type = MsgType::RemoteFaultResponse;
    resp.from = k.nodeId();
    resp.to = m.from;
    resp.arg0 = m.arg0;
    resp.arg1 = m.arg1;
    msg_.send(resp);
}

void
StramashFaultHandler::onTaskExit(KernelInstance &kernel, Task &task)
{
    // "the origin kernel only invalidates the PTE and does not
    // attempt to release the page" — frames are freed by whichever
    // kernel allocated them (Task::ownedPages), so only the foreign
    // bookkeeping needs dropping here.
    if (task.origin == kernel.nodeId())
        shared_.foreignMapped.erase(task.pid);
}

// ===================== StramashFutexPolicy ===========================

StramashFutexPolicy::StramashFutexPolicy(KernelLookup kernels,
                                         StramashShared &shared)
    : kernels_(std::move(kernels)), shared_(shared)
{
}

bool
StramashFutexPolicy::wait(KernelInstance &kernel, Task &task, Addr uaddr,
                          std::uint32_t expected)
{
    std::uint32_t v = kernel.userLoad<std::uint32_t>(task, uaddr);
    if (v != expected)
        return false;

    // Direct access to the origin kernel's futex list (§6.5): lock
    // the hash bucket, link the waiter — plain (possibly remote)
    // memory traffic, no messages.
    KernelInstance &origin = kernels_(task.origin);
    Addr bucket = origin.dataAddrFor(uaddr ^ 0xf07e);
    kernel.remoteAccess(task.origin, AccessType::Store, bucket,
                        8); // bucket lock (CAS)
    kernel.remoteAccess(task.origin, AccessType::Store, bucket + 64,
                        16); // queue link
    origin.futexTable().enqueue(uaddr, {kernel.nodeId(), task.pid});
    kernel.remoteAccess(task.origin, AccessType::Store, bucket,
                        8); // unlock
    return true;
}

unsigned
StramashFutexPolicy::wake(KernelInstance &kernel, Task &task, Addr uaddr,
                          unsigned count)
{
    KernelInstance &origin = kernels_(task.origin);
    Addr bucket = origin.dataAddrFor(uaddr ^ 0xf07e);
    kernel.remoteAccess(task.origin, AccessType::Store, bucket, 8);
    kernel.remoteAccess(task.origin, AccessType::Load, bucket + 64,
                        16);
    auto woken = origin.futexTable().wake(uaddr, count);
    kernel.remoteAccess(task.origin, AccessType::Store, bucket, 8);
    for (const auto &w : woken) {
        if (w.node != kernel.nodeId()) {
            // "only one cross-ISA IPI is needed to wake up the
            // waiting thread" (§9.2.6).
            kernel.machine().sendIpi(kernel.nodeId(), w.node);
        }
    }
    return static_cast<unsigned>(woken.size());
}

// ===================== StramashMigrationPolicy =======================

StramashMigrationPolicy::StramashMigrationPolicy(MessageLayer &msg,
                                                 KernelLookup kernels,
                                                 StramashShared &shared)
    : msg_(msg), kernels_(std::move(kernels)), shared_(shared)
{
}

void
StramashMigrationPolicy::installHandlers(KernelInstance &k)
{
    k.registerMsgHandler(MsgType::TaskMigrate,
                         [this, &k](const Message &m) {
                             onTaskMigrate(k, m);
                         });
    k.registerMsgHandler(MsgType::ProcessMigrate,
                         [&k](const Message &) {
                             // Source-side retirement notification.
                             k.stats().counter(
                                 "process_migrations_out") += 1;
                         });
}

void
StramashMigrationPolicy::trackTask(Pid pid, NodeId origin)
{
    current_[pid] = origin;
}

NodeId
StramashMigrationPolicy::currentNode(Pid pid) const
{
    auto it = current_.find(pid);
    panic_if(it == current_.end(), "untracked task ", pid);
    return it->second;
}

void
StramashMigrationPolicy::migrate(Pid pid, NodeId dest)
{
    NodeId src = currentNode(pid);
    if (src == dest)
        return;
    KernelInstance &ks = kernels_(src);
    Task &ts = ks.task(pid);

    ks.machine().stall(src, transformCycles);

    // Hand the transformed state over through shared memory: write
    // the mailbox (charged), then one notification message.
    if (shared_.mailbox == 0) {
        shared_.mailbox = ks.allocDataArea(256);
        shared_.mailboxOwner = src;
    }
    std::vector<std::uint8_t> wire(migrationStateWireSize());
    serializeMigrationState(ts.state, wire.data());
    ks.machine().memory().write(shared_.mailbox, wire.data(),
                                wire.size());
    ks.remoteAccess(shared_.mailboxOwner, AccessType::Store,
                    shared_.mailbox,
                    static_cast<unsigned>(wire.size()));

    Message m;
    m.type = MsgType::TaskMigrate;
    m.from = src;
    m.to = dest;
    m.arg0 = pid;
    m.arg1 = ts.origin;
    m.arg2 = shared_.mailbox;
    if (msg_.sendReliable(m) != Errc::Ok) {
        // Destination unreachable: the thread stays put (the mailbox
        // write is idempotent — a later migrate simply rewrites it).
        ks.stats().counter("migrations_aborted") += 1;
        ks.machine().tracer().instant(TraceCategory::Chaos,
                                      "migrate.aborted", src, pid,
                                      dest);
        return;
    }

    current_[pid] = dest;
}

void
StramashMigrationPolicy::migrateProcess(Pid pid, NodeId dest)
{
    NodeId src = currentNode(pid);
    if (src == dest)
        return;
    KernelInstance &ks = kernels_(src);
    KernelInstance &kd = kernels_(dest);
    Task &ts = ks.task(pid);
    panic_if(src != ts.origin,
             "process migration must start from the origin (migrate "
             "the thread home first)");
    Machine &machine = ks.machine();
    GuestMemory &mem = machine.memory();

    machine.stall(src, transformCycles);

    // Fresh task at the destination — it becomes the new origin.
    if (kd.hasTask(pid))
        kd.destroyTask(pid);
    Task &td = kd.createTask(pid, dest);
    td.state = ts.state;
    td.heapBrk = ts.heapBrk;
    machine.stall(dest, transformCycles);

    // The destination reads the source's VMA tree directly (charged
    // remote walks under the VMA lock).
    kd.remoteAccess(src, AccessType::Store, ts.as->vmaLockAddr(), 8);
    std::vector<Vma> vmas;
    ts.as->vmas().forEach([&](const Vma &v) { vmas.push_back(v); });
    for (std::size_t i = 0; i < vmas.size(); ++i) {
        kd.remoteAccess(src, AccessType::Load,
                        ks.dataAddrFor((Addr{pid} << 32) ^ i), 64);
        bool ok = td.as->vmas().insert(vmas[i]);
        panic_if(!ok, "process migration: VMA conflict");
    }
    kd.remoteAccess(src, AccessType::Store, ts.as->vmaLockAddr(), 8);

    // Adopt every resident page by walking the source's table in its
    // format (software remote page table walker) and pointing the
    // new table at the *same* frame — no content moves.
    const PteFormat &sfmt = ts.as->pageTable().format();
    auto touch = [&](AccessType at, Addr a) {
        kd.remoteAccess(src, at, a, 8);
    };
    // Tagged entries in the source's table decode in their recorded
    // writer's format; an unrecorded tag defaults to the
    // destination's format (the only possible writer on the pair).
    const PteFormat *destFmt = &td.as->pageTable().format();
    TaggedFmtFn taggedFmtOf = [&](Addr va) -> const PteFormat * {
        return &taggedWriterFormat(shared_, machine, pid,
                                   pageBase(va), *destFmt);
    };
    kd.remoteAccess(src, AccessType::Store, ts.as->ptlAddr(), 8);
    for (const Vma &v : vmas) {
        for (Addr va = v.start; va < v.end; va += pageSize) {
            auto w = walkForeign(mem, sfmt,
                                 ts.as->pageTable().rootAddr(), va,
                                 touch, taggedFmtOf);
            if (!w)
                continue;
            bool ok = td.as->mapPage(
                va, w->pte.frame,
                vmaPageAttrs(v, v.prot.writable));
            panic_if(!ok, "process migration: duplicate page");
        }
    }
    kd.remoteAccess(src, AccessType::Store, ts.as->ptlAddr(), 8);

    // Frame ownership: the frames stay in whichever kernel's memory
    // they were allocated from; the new task borrows them and
    // System::exit routes them home.
    for (Addr pa : ts.ownedPages)
        td.borrowedPages.emplace_back(src, pa);
    for (auto bp : ts.borrowedPages)
        td.borrowedPages.push_back(bp);
    ts.ownedPages.clear();
    ts.borrowedPages.clear();

    // One notification so the source-side scheduler retires the
    // task; then the source forgets it (§5). The destination already
    // owns the process at this point, so a lost notification only
    // costs the source-side counter — never a second live copy.
    Message note;
    note.type = MsgType::ProcessMigrate;
    note.from = dest;
    note.to = src;
    note.arg0 = pid;
    if (msg_.sendReliable(note) != Errc::Ok)
        kd.stats().counter("retire_notes_lost") += 1;

    shared_.foreignMapped.erase(pid);
    ks.destroyTask(pid);
    current_[pid] = dest;
    kd.stats().counter("process_migrations_in") += 1;
}

void
StramashMigrationPolicy::onTaskMigrate(KernelInstance &k,
                                       const Message &m)
{
    Pid pid = static_cast<Pid>(m.arg0);
    NodeId origin = static_cast<NodeId>(m.arg1);

    // Read the state out of the shared mailbox (guard-checked,
    // charged loads).
    std::vector<std::uint8_t> wire(migrationStateWireSize());
    k.remoteAccess(shared_.mailboxOwner, AccessType::Load, m.arg2,
                   static_cast<unsigned>(wire.size()));
    k.machine().memory().read(m.arg2, wire.data(), wire.size());

    Task *t = k.findTask(pid);
    if (!t)
        t = &k.createTask(pid, origin);
    t->state = deserializeMigrationState(wire.data());
    k.machine().stall(k.nodeId(), transformCycles);
    k.stats().counter("migrations_in") += 1;
    k.machine().tracer().instant(TraceCategory::Migrate, "migrate.in",
                                 k.nodeId(), pid, m.from);

    if (k.nodeId() == origin)
        reconcile(k, pid);
}

void
StramashMigrationPolicy::reconcile(KernelInstance &origin, Pid pid)
{
    auto it = shared_.foreignMapped.find(pid);
    if (it == shared_.foreignMapped.end() || it->second.empty())
        return;
    Task &t = origin.task(pid);
    GuestMemory &mem = origin.machine().memory();
    const PteFormat &ofmt = t.as->pageTable().format();

    for (const auto &[vpage, writer] : it->second) {
        auto w = t.as->pageTable().walk(vpage);
        if (!w)
            continue; // entry was unmapped meanwhile
        std::uint64_t raw = mem.load<std::uint64_t>(w->pteAddr);
        if (!(raw & foreignFormatTag))
            continue;
        // "the origin kernel can simply reconfigure the PTE to its
        // own format" (§6.4). The entry decodes in the format of the
        // remote kernel that inserted it.
        const PteFormat &wfmt =
            *isaDescriptor(origin.machine().node(writer).isa())
                 .pteFormat;
        bool ok = reconcileForeign(mem, ofmt, wfmt,
                                   t.as->pageTable().rootAddr(), vpage);
        panic_if(!ok, "tagged PTE vanished during reconcile");
        origin.machine().dataAccess(origin.nodeId(), AccessType::Store,
                                    w->pteAddr, 8);
        origin.stats().counter("ptes_reconciled") += 1;
    }
    it->second.clear();
}

} // namespace stramash
