/**
 * @file
 * Data packing in contiguous physical memory (paper §5, §6).
 *
 * The fused design proposes packing data structures' backing pages
 * into contiguous physical memory "so it is simple to categorize and
 * share between kernels" (and to make MPU/IOMMU-style hardware
 * protection effective). The prototype paper implements exactly this
 * — "including moving pages to reorganize data" — and so do we: the
 * packer allocates one contiguous extent, migrates every
 * kernel-owned page of a VMA into it in virtual-address order
 * (copying content, remapping, shooting down the TLB entry) and
 * releases the scattered frames.
 */

#ifndef STRAMASH_FUSED_PACKING_HH
#define STRAMASH_FUSED_PACKING_HH

#include <optional>

#include "stramash/kernel/kernel.hh"

namespace stramash
{

/** Outcome of one packing pass. */
struct PackResult
{
    /** Base of the new contiguous physical extent. */
    Addr base = 0;
    /** Extent size in bytes. */
    Addr bytes = 0;
    /** Pages whose content was moved. */
    std::uint64_t pagesMoved = 0;
    /** Pages skipped because this kernel does not own their frame
     *  (shared frames of the other kernel stay put). */
    std::uint64_t pagesSkipped = 0;
};

/**
 * Pack the resident, kernel-owned pages of the VMA containing
 * @p vaInVma into one physically contiguous extent, in ascending
 * virtual order.
 *
 * @return nullopt if the VMA does not exist, nothing is resident, or
 *         no contiguous extent of the required size is free.
 */
std::optional<PackResult> packVmaContiguous(KernelInstance &kernel,
                                            Task &task, Addr vaInVma);

/** True if every resident page of the VMA sits in one ascending
 *  contiguous physical extent (the packing invariant). */
bool vmaIsPacked(KernelInstance &kernel, Task &task, Addr vaInVma);

} // namespace stramash

#endif // STRAMASH_FUSED_PACKING_HH
