#include "stramash/fused/global_alloc.hh"

namespace stramash
{

namespace
{

/** MemBlockResponse.arg2 verdicts. */
constexpr std::uint64_t blockGranted = 0;
constexpr std::uint64_t blockDenied = 1;
constexpr std::uint64_t blockNoMemory = 2;

} // namespace

GlobalMemoryAllocator::GlobalMemoryAllocator(
    Machine &machine, std::vector<KernelInstance *> kernels,
    GmaConfig cfg, const std::vector<AddrRange> &excluded,
    MessageLayer *msg)
    : machine_(machine),
      kernels_(std::move(kernels)),
      cfg_(cfg),
      stats_("gma"),
      msg_(msg)
{
    if (msg_) {
        for (auto *k : kernels_) {
            k->registerMsgHandler(MsgType::MemBlockRequest,
                                  [this, k](const Message &m) {
                                      onMemBlockRequest(*k, m);
                                  });
        }
    }
    panic_if(cfg_.blockSize < 32 * 1024 * 1024 ||
                 cfg_.blockSize > Addr{4} * 1024 * 1024 * 1024,
             "block size outside the 32 MiB - 4 GiB range");
    IntervalSet pool;
    for (const auto &r : machine_.physMap().poolRanges())
        pool.insert(r);
    for (const auto &r : excluded) {
        if (!r.empty())
            pool.erase(r.start, r.end);
    }
    for (const auto &r : pool.extents())
        addPoolRange(r);
}

void
GlobalMemoryAllocator::addPoolRange(const AddrRange &r)
{
    for (Addr b = r.start; b + cfg_.blockSize <= r.end;
         b += cfg_.blockSize) {
        blocks_.emplace(
            b, std::make_pair(AddrRange{b, b + cfg_.blockSize},
                              invalidNode));
    }
}

std::size_t
GlobalMemoryAllocator::freeBlocks() const
{
    std::size_t n = 0;
    for (const auto &kv : blocks_) {
        if (kv.second.second == invalidNode)
            ++n;
    }
    return n;
}

std::size_t
GlobalMemoryAllocator::blocksOwnedBy(NodeId node) const
{
    std::size_t n = 0;
    for (const auto &kv : blocks_) {
        if (kv.second.second == node)
            ++n;
    }
    return n;
}

std::vector<AddrRange>
GlobalMemoryAllocator::ownedBlocks(NodeId node) const
{
    std::vector<AddrRange> out;
    for (const auto &kv : blocks_) {
        if (kv.second.second == node)
            out.push_back(kv.second.first);
    }
    return out;
}

KernelInstance &
GlobalMemoryAllocator::kernelOf(NodeId node)
{
    for (auto *k : kernels_) {
        if (k->nodeId() == node)
            return *k;
    }
    panic("global allocator: unknown node ", node);
}

void
GlobalMemoryAllocator::chargePagePass(KernelInstance &k, Addr pa,
                                      bool store, ICount inst)
{
    // struct-page metadata access in the kernel's data region...
    machine_.dataAccess(k.nodeId(),
                        store ? AccessType::Store : AccessType::Load,
                        k.dataAddrFor(pa >> pageShift), 64);
    if (!store) {
        // The offline isolation pass also rewrites the page state
        // (reserved/isolated flags) on a second metadata line — this
        // is why offlining dominates (§9.2.7, Table 4).
        machine_.dataAccess(k.nodeId(), AccessType::Store,
                            k.dataAddrFor((pa >> pageShift) ^
                                          0x150147eULL), 64);
    }
    // ...plus the fixed per-page bookkeeping work.
    machine_.retire(k.nodeId(), inst);
}

Cycles
GlobalMemoryAllocator::onlineBlock(KernelInstance &kernel,
                                   const AddrRange &block)
{
    auto it = blocks_.find(block.start);
    panic_if(it == blocks_.end(), "onlining an unknown block");
    panic_if(it->second.second != invalidNode,
             "onlining a block owned by node ", it->second.second);

    Cycles before = machine_.node(kernel.nodeId()).cycles();
    STRAMASH_TRACE_SPAN(machine_.tracer(), TraceCategory::Alloc,
                        "gma.online", kernel.nodeId(), 0, block.start,
                        block.end - block.start);
    for (Addr pa = block.start; pa < block.end; pa += pageSize)
        chargePagePass(kernel, pa, true, cfg_.onlinePerPageInst);
    kernel.palloc().addRange(block);
    it->second.second = kernel.nodeId();
    stats_.counter("blocks_onlined") += 1;
    return machine_.node(kernel.nodeId()).cycles() - before;
}

Cycles
GlobalMemoryAllocator::offlineBlock(KernelInstance &kernel,
                                    const AddrRange &block,
                                    const RemapFn &remap)
{
    auto it = blocks_.find(block.start);
    panic_if(it == blocks_.end(), "offlining an unknown block");
    panic_if(it->second.second != kernel.nodeId(),
             "offlining a block this kernel does not own");

    Cycles before = machine_.node(kernel.nodeId()).cycles();
    STRAMASH_TRACE_SPAN(machine_.tracer(), TraceCategory::Alloc,
                        "gma.offline", kernel.nodeId(), 0, block.start,
                        block.end - block.start);

    // Evacuation: move live frames out of the block (paper §6.3:
    // "it first evacuates the memory block and then isolates the
    // pages").
    auto live = kernel.palloc().allocatedIn(block);
    if (!live.empty()) {
        if (!remap)
            return 0;
        for (Addr oldPa : live) {
            // The replacement frame must come from outside the block
            // being withdrawn; retry a bounded number of times.
            std::vector<Addr> inBlock;
            Addr newPa = 0;
            for (int tries = 0; tries < 64; ++tries) {
                Addr cand = kernel.allocUserPage(false);
                if (!block.contains(cand)) {
                    newPa = cand;
                    break;
                }
                inBlock.push_back(cand);
            }
            for (Addr p : inBlock)
                kernel.freeUserPage(p);
            panic_if(!newPa, "no frame outside the offlining block");
            machine_.memory().copy(newPa, oldPa, pageSize);
            machine_.streamAccess(kernel.nodeId(), AccessType::Load,
                                  oldPa, pageSize);
            machine_.streamAccess(kernel.nodeId(), AccessType::Store,
                                  newPa, pageSize);
            remap(oldPa, newPa);
            kernel.freeUserPage(oldPa);
            stats_.counter("pages_evacuated") += 1;
        }
    }

    // Isolation pass over every page in the block.
    for (Addr pa = block.start; pa < block.end; pa += pageSize)
        chargePagePass(kernel, pa, false, cfg_.offlinePerPageInst);

    bool ok = kernel.palloc().removeRange(block);
    panic_if(!ok, "offline failed after evacuation");
    it->second.second = invalidNode;
    stats_.counter("blocks_offlined") += 1;
    return machine_.node(kernel.nodeId()).cycles() - before;
}

void
GlobalMemoryAllocator::onMemBlockRequest(KernelInstance &k,
                                         const Message &m)
{
    Message resp;
    resp.type = MsgType::MemBlockResponse;
    resp.from = k.nodeId();
    resp.to = m.from;

    FaultInjector *fi = machine_.faultInjector();
    if (fi && fi->shouldDenyMemBlock(k.nodeId())) {
        // Transient refusal (the donor is "busy"): the requester
        // backs off and asks again.
        stats_.counter("negotiations_denied") += 1;
        resp.arg2 = blockDenied;
        msg_->send(resp);
        return;
    }

    for (const auto &block : ownedBlocks(k.nodeId())) {
        if (!k.palloc().allocatedIn(block).empty())
            continue;
        if (offlineBlock(k, block) == 0)
            continue;
        resp.arg0 = block.start;
        resp.arg1 = block.end;
        resp.arg2 = blockGranted;
        msg_->send(resp);
        return;
    }
    resp.arg2 = blockNoMemory;
    msg_->send(resp);
}

std::size_t
GlobalMemoryAllocator::reclaimDeadNode(NodeId dead)
{
    // Ownership recovery after a crash: every block the dead kernel
    // had onlined returns to the global pool. Its allocator state is
    // gone with it — no evacuation, no isolation pass; the survivor's
    // frame sweep has already copied out anything it still needs.
    std::size_t reclaimed = 0;
    for (auto &kv : blocks_) {
        if (kv.second.second != dead)
            continue;
        kv.second.second = invalidNode;
        ++reclaimed;
    }
    if (reclaimed) {
        stats_.counter("blocks_reclaimed") +=
            static_cast<std::int64_t>(reclaimed);
        machine_.tracer().instant(TraceCategory::Chaos, "gma.reclaim",
                                  dead, 0, reclaimed, dead);
    }
    return reclaimed;
}

Result<AddrRange>
GlobalMemoryAllocator::requestBlockFrom(KernelInstance &kernel,
                                        KernelInstance &donor)
{
    Message req;
    req.type = MsgType::MemBlockRequest;
    req.from = kernel.nodeId();
    req.to = donor.nodeId();
    auto resp = msg_->tryRpc(req, MsgType::MemBlockResponse);
    if (!resp)
        return Errc::Unreachable;
    switch (resp->arg2) {
      case blockGranted:
        return AddrRange{resp->arg0, resp->arg1};
      case blockDenied:
        return Errc::Denied;
      case blockNoMemory:
        return Errc::NoMemory;
    }
    panic("bad MemBlockResponse verdict ", resp->arg2);
}

bool
GlobalMemoryAllocator::onLowMemory(KernelInstance &kernel)
{
    // A free block is assigned directly.
    for (auto &kv : blocks_) {
        if (kv.second.second == invalidNode) {
            onlineBlock(kernel, kv.second.first);
            return true;
        }
    }

    // Otherwise evict from another kernel until pressure balances
    // (paper §6.3).
    double myPressure = kernel.palloc().pressure();
    KernelInstance *donor = nullptr;
    for (auto *k : kernels_) {
        if (k->nodeId() == kernel.nodeId())
            continue;
        // A crashed kernel cannot negotiate; its blocks come back to
        // the pool through reclaimDeadNode(), not eviction.
        if (!machine_.nodeAlive(k->nodeId()))
            continue;
        if (k->palloc().pressure() < myPressure &&
            (!donor || k->palloc().pressure() <
                           donor->palloc().pressure())) {
            donor = k;
        }
    }
    if (!donor)
        return false;

    if (!msg_) {
        // Direct hand-off (no messaging attached).
        for (const auto &block : ownedBlocks(donor->nodeId())) {
            if (donor->palloc().allocatedIn(block).empty()) {
                Cycles c = offlineBlock(*donor, block);
                if (c == 0)
                    continue;
                onlineBlock(kernel, block);
                stats_.counter("blocks_migrated") += 1;
                return true;
            }
        }
        return false;
    }

    // Message-based negotiation: transient refusals and lost
    // messages are retried with exponential backoff before the
    // kernel degrades to local memory only.
    const RpcPolicy &pol = msg_->rpcPolicy();
    unsigned attempts =
        machine_.faultInjector() ? pol.maxAttempts : 1;
    for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
        if (attempt > 1) {
            stats_.counter("negotiation_retries") += 1;
            machine_.stall(kernel.nodeId(),
                           pol.backoffForAttempt(attempt - 1));
        }
        Result<AddrRange> got = requestBlockFrom(kernel, *donor);
        if (got.ok()) {
            onlineBlock(kernel, got.value());
            stats_.counter("blocks_migrated") += 1;
            return true;
        }
        if (got.error() == Errc::NoMemory) {
            // Permanent for this donor: nothing it can release.
            break;
        }
    }
    stats_.counter("degraded_local") += 1;
    machine_.tracer().instant(TraceCategory::Chaos,
                              "gma.degraded_local", kernel.nodeId(), 0,
                              donor->nodeId());
    return false;
}

} // namespace stramash
