#include "stramash/fused/packing.hh"

#include <algorithm>

namespace stramash
{

namespace
{

/** Resident pages of the VMA, ascending by virtual address. */
std::vector<std::pair<Addr, WalkResult>>
residentPages(Task &task, const Vma &vma)
{
    std::vector<std::pair<Addr, WalkResult>> out;
    for (Addr va = vma.start; va < vma.end; va += pageSize) {
        auto w = task.as->pageTable().walk(va);
        if (w)
            out.emplace_back(va, *w);
    }
    return out;
}

} // namespace

std::optional<PackResult>
packVmaContiguous(KernelInstance &kernel, Task &task, Addr vaInVma)
{
    const Vma *vma = task.as->vmas().find(vaInVma);
    if (!vma)
        return std::nullopt;

    auto resident = residentPages(task, *vma);
    if (resident.empty())
        return std::nullopt;

    // Only frames this kernel allocated may move (the other kernel
    // owns its frames; §6.4's recycling discipline).
    std::vector<Addr> &owned = task.ownedPages;
    auto ownsFrame = [&](Addr pa) {
        return std::find(owned.begin(), owned.end(), pa) !=
               owned.end();
    };

    std::uint64_t movable = 0;
    for (const auto &[va, w] : resident) {
        (void)va;
        if (ownsFrame(w.pte.frame))
            ++movable;
    }
    if (movable == 0)
        return std::nullopt;

    auto extent = kernel.palloc().allocContiguous(movable);
    if (!extent)
        return std::nullopt;

    PackResult res;
    res.base = extent->start;
    res.bytes = extent->size();

    Machine &machine = kernel.machine();
    Addr next = extent->start;
    for (const auto &[va, w] : resident) {
        Addr oldPa = w.pte.frame;
        if (!ownsFrame(oldPa)) {
            ++res.pagesSkipped;
            continue;
        }
        // Move the content (bulk kernel copy), remap, shoot down the
        // stale translation, release the scattered frame.
        machine.memory().copy(next, oldPa, pageSize);
        machine.streamAccess(kernel.nodeId(), AccessType::Load, oldPa,
                             pageSize);
        machine.streamAccess(kernel.nodeId(), AccessType::Store, next,
                             pageSize);
        bool ok = task.as->unmapPage(va);
        panic_if(!ok, "packing lost a mapping");
        ok = task.as->mapPage(va, next, w.pte.attrs);
        panic_if(!ok, "packing could not remap");
        *std::find(owned.begin(), owned.end(), oldPa) = next;
        kernel.freeUserPage(oldPa);
        next += pageSize;
        ++res.pagesMoved;
        kernel.stats().counter("pages_packed") += 1;
    }

    // Release the tail of the extent if skipped pages left it
    // partially unused.
    for (Addr pa = next; pa < extent->end; pa += pageSize)
        kernel.freeUserPage(pa);
    res.bytes = next - extent->start;
    return res;
}

bool
vmaIsPacked(KernelInstance &kernel, Task &task, Addr vaInVma)
{
    (void)kernel;
    const Vma *vma = task.as->vmas().find(vaInVma);
    if (!vma)
        return false;
    auto resident = residentPages(task, *vma);
    if (resident.empty())
        return true;
    Addr expect = resident.front().second.pte.frame;
    for (const auto &[va, w] : resident) {
        (void)va;
        if (w.pte.frame != expect)
            return false;
        expect += pageSize;
    }
    return true;
}

} // namespace stramash
