/**
 * @file
 * The global physical memory allocator (paper §6.3, Table 4).
 *
 * Shared memory is kept in a global pool of fixed-size blocks
 * (32 MiB - 4 GiB, configurable). Each kernel boots with minimal
 * resources; when a kernel's memory pressure passes 70% it requests
 * a block. Free blocks are assigned directly; otherwise the allocator
 * evicts a block from the least-pressured other kernel (evacuating
 * its pages first) until pressure is balanced.
 *
 * Online/offline follow the Linux memory hot-plug shape the paper
 * extends: onlining walks the block initialising per-page metadata;
 * offlining first evacuates live frames, then isolates every page —
 * the isolation pass dominates, exactly as §9.2.7 observes.
 */

#ifndef STRAMASH_FUSED_GLOBAL_ALLOC_HH
#define STRAMASH_FUSED_GLOBAL_ALLOC_HH

#include <functional>
#include <map>
#include <vector>

#include "stramash/kernel/kernel.hh"

namespace stramash
{

/** Tuning knobs for the global allocator. */
struct GmaConfig
{
    Addr blockSize = 256 * 1024 * 1024;
    double pressureThreshold = 0.70;
    /** Instructions of per-page isolation work (offline pass). */
    ICount offlinePerPageInst = 160;
    /** Instructions of per-page metadata init (online pass). */
    ICount onlinePerPageInst = 60;
};

/** Remap callback for evacuation: (old frame, new frame). */
using RemapFn = std::function<void(Addr, Addr)>;

class GlobalMemoryAllocator
{
  public:
    /**
     * @param excluded ranges inside the pool that must not become
     *        blocks (e.g. the messaging area).
     * @param msg when non-null, inter-kernel block hand-offs are
     *        negotiated over MemBlockRequest / MemBlockResponse
     *        messages (and can therefore time out, be denied by a
     *        fault plan, and be retried with backoff). Null keeps
     *        the direct-call hand-off for isolated unit tests.
     */
    GlobalMemoryAllocator(Machine &machine,
                          std::vector<KernelInstance *> kernels,
                          GmaConfig cfg = {},
                          const std::vector<AddrRange> &excluded = {},
                          MessageLayer *msg = nullptr);

    /** Donate pool memory (defaults to the phys map's pool ranges). */
    void addPoolRange(const AddrRange &r);

    std::size_t freeBlocks() const;
    std::size_t blocksOwnedBy(NodeId node) const;
    const GmaConfig &config() const { return cfg_; }

    /**
     * Low-memory entry point (wired as each kernel's hook): try to
     * grow @p kernel by one block. Free blocks are assigned
     * directly. Occupied blocks are negotiated away from the least-
     * pressured donor kernel; a transiently denied or timed-out
     * negotiation is retried with exponential backoff, and after the
     * attempt budget the caller degrades to whatever local memory it
     * still has (`gma.degraded_local`).
     * @return true if a block was onlined.
     */
    bool onLowMemory(KernelInstance &kernel);

    /**
     * One negotiation round with @p donor: ask it to evacuate and
     * release one block.
     * @return the freed block, Errc::Denied (transient refusal),
     *         Errc::NoMemory (donor has no releasable block), or
     *         Errc::Unreachable (messaging gave up).
     */
    Result<AddrRange> requestBlockFrom(KernelInstance &kernel,
                                       KernelInstance &donor);

    /**
     * Online one block into @p kernel's allocator.
     * @return the cycles charged for the online pass.
     */
    Cycles onlineBlock(KernelInstance &kernel, const AddrRange &block);

    /**
     * Offline a block from @p kernel: evacuate live frames (via
     * @p remap, which must repoint page tables), then isolate.
     * @return the cycles charged, or 0 if the block could not be
     *         offlined (live frames and no remap callback).
     */
    Cycles offlineBlock(KernelInstance &kernel, const AddrRange &block,
                        const RemapFn &remap = nullptr);

    /** Blocks currently assigned to @p node. */
    std::vector<AddrRange> ownedBlocks(NodeId node) const;

    /**
     * Crash recovery: return every block owned by the crashed node
     * @p dead to the free pool. The dead kernel's allocator is not
     * consulted (it no longer exists); callers must have finished
     * copying any frames they still need out of these blocks.
     * @return the number of blocks reclaimed.
     */
    std::size_t reclaimDeadNode(NodeId dead);

    StatGroup &stats() { return stats_; }

  private:
    Machine &machine_;
    std::vector<KernelInstance *> kernels_;
    GmaConfig cfg_;
    StatGroup stats_;
    MessageLayer *msg_;

    /** block start -> owner (invalidNode = free). */
    std::map<Addr, std::pair<AddrRange, NodeId>> blocks_;

    KernelInstance &kernelOf(NodeId node);

    /** Donor-side MemBlockRequest service. */
    void onMemBlockRequest(KernelInstance &k, const Message &m);

    /** Charge one per-page metadata access + fixed work. */
    void chargePagePass(KernelInstance &k, Addr pa, bool store,
                        ICount inst);
};

} // namespace stramash

#endif // STRAMASH_FUSED_GLOBAL_ALLOC_HH
