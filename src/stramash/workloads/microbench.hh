/**
 * @file
 * The paper's microbenchmarks:
 *
 *  - memory access analysis (Fig. 11): 10 MB sequential access with
 *    every combination of allocation side, access side and cache
 *    warmth;
 *  - software-vs-hardware consistency granularity (Fig. 12): touch
 *    1..64 cachelines per page and compare DSM's page-granularity
 *    replication against hardware cacheline transfers;
 *  - futex lock ping-pong (Fig. 13): the origin continuously locks
 *    while the remote continuously unlocks.
 */

#ifndef STRAMASH_WORKLOADS_MICROBENCH_HH
#define STRAMASH_WORKLOADS_MICROBENCH_HH

#include "stramash/core/app.hh"

namespace stramash
{

/** Which of Fig. 11's five access activities to run. */
enum class MemAccessCase : std::uint8_t
{
    /** Origin accesses origin memory (baseline). */
    Vanilla,
    /** Remote accesses origin memory, cold caches. */
    RemoteAccessOrigin,
    /** Remote accesses origin memory it has accessed before. */
    RemoteAccessOriginNoCold,
    /** Origin accesses remote-allocated memory, cold. */
    OriginAccessRemote,
    /** Origin accesses remote-allocated memory, warm. */
    OriginAccessRemoteNoCold,
};

const char *memAccessCaseName(MemAccessCase c);

/**
 * Fig. 11: run one access activity on a fresh app.
 * @param bytes      region size (paper: 10 MB)
 * @return cycles spent in the measured access pass
 */
Cycles runMemAccessCase(System &sys, MemAccessCase c, Addr bytes);

/**
 * Fig. 12: touch @p linesPerPage cachelines in each of @p pages
 * remote pages.
 * @return cycles spent in the measured pass
 */
Cycles runGranularityCase(System &sys, unsigned linesPerPage,
                          unsigned pages);

/**
 * Fig. 13: futex ping-pong. The origin side locks, the remote side
 * unlocks, @p loops times, with a small addition per loop.
 * @return total cycles across both nodes
 */
Cycles runFutexPingPong(System &sys, unsigned loops);

} // namespace stramash

#endif // STRAMASH_WORKLOADS_MICROBENCH_HH
