/**
 * @file
 * NPB-derived workload kernels (paper §8.3, §9.2).
 *
 * The paper selected NAS Parallel Benchmarks because they span
 * distinct memory-access patterns: IS (integer sort) is
 * write-intensive, CG (conjugate gradient) is ~98% loads, MG
 * (multigrid) sweeps large grids, FT (Fourier transform) transposes
 * and allocates fresh scratch buffers. Our kernels are faithful
 * miniatures: they run the real algorithms over simulated guest
 * memory (results are verified against host-side shadows) and follow
 * the paper's migration pattern — one migration and back-migration
 * per processing procedure, like offloading.
 */

#ifndef STRAMASH_WORKLOADS_NPB_HH
#define STRAMASH_WORKLOADS_NPB_HH

#include <memory>
#include <string>

#include "stramash/core/app.hh"
#include "stramash/core/placement.hh"

namespace stramash
{

/** Scaling and orchestration knobs. */
struct NpbConfig
{
    /** Processing procedures, each with a migrate + back-migrate. */
    unsigned iterations = 6;
    /** Approximate principal working-set size. */
    Addr problemBytes = 2 * 1024 * 1024;
    /** When false, the whole run stays at the origin ("Vanilla"). */
    bool migrate = true;
    /** Decides each offload hop's target (footprint = problemBytes).
     *  Null keeps the historical cyclic next-alive hop. */
    Placer *placer = nullptr;
    std::uint64_t seed = 42;
};

/** Outcome of one run. */
struct NpbResult
{
    bool verified = false;
    /** Workload-specific checksum (deterministic per seed). */
    std::uint64_t checksum = 0;
};

class NpbKernel
{
  public:
    virtual ~NpbKernel() = default;

    virtual const char *name() const = 0;

    /**
     * Run to completion on @p app (setup at origin, processing
     * procedures with migration per @p cfg, verification at origin).
     */
    virtual NpbResult run(App &app, const NpbConfig &cfg) = 0;
};

/** Factory: "is", "cg", "mg" or "ft". */
std::unique_ptr<NpbKernel> makeNpbKernel(const std::string &name);

/** All four benchmark names in the paper's order. */
const std::vector<std::string> &npbKernelNames();

} // namespace stramash

#endif // STRAMASH_WORKLOADS_NPB_HH
