#include "stramash/workloads/kvstore.hh"

namespace stramash
{

const char *
kvOpName(KvOp op)
{
    switch (op) {
      case KvOp::Get: return "get";
      case KvOp::Set: return "set";
      case KvOp::LPush: return "lpush";
      case KvOp::RPush: return "rpush";
      case KvOp::LPop: return "lpop";
      case KvOp::RPop: return "rpop";
      case KvOp::SAdd: return "sadd";
      case KvOp::MSet: return "mset";
    }
    panic("unknown KvOp");
}

const std::vector<KvOp> &
allKvOps()
{
    static const std::vector<KvOp> ops{
        KvOp::Get,  KvOp::Set,  KvOp::LPush, KvOp::RPush,
        KvOp::LPop, KvOp::RPop, KvOp::SAdd,  KvOp::MSet,
    };
    return ops;
}

KvStore::KvStore(App &server, std::size_t numKeys,
                 std::size_t payloadBytes)
    : app_(server),
      originNode_(server.where()),
      numKeys_(numKeys),
      payload_(payloadBytes)
{
    // The origin kernel answers forwarded socket operations for the
    // multiple-kernel design.
    System &sys = app_.system();
    KernelInstance &origin = sys.kernel(originNode_);
    MessageLayer *msg = &sys.msg();
    origin.registerMsgHandler(
        MsgType::AppRequest, [&origin, msg](const Message &m) {
            origin.machine().stall(origin.nodeId(), stackCycles);
            Message resp;
            resp.type = MsgType::AppResponse;
            resp.from = origin.nodeId();
            resp.to = m.from;
            resp.arg0 = m.arg0;
            msg->send(resp);
        });

    slotBytes_ = ((payload_ + 8 + cacheLineSize - 1) / cacheLineSize) *
                 cacheLineSize;
    listCap_ = numKeys_;
    kvBase_ = app_.mmap(numKeys_ * slotBytes_, true, VmaKind::Anon,
                        "kv_slots");
    listBase_ = app_.mmap(listCap_ * slotBytes_, true, VmaKind::Anon,
                          "kv_list");
    listHdr_ = app_.mmap(pageSize, true, VmaKind::Anon, "kv_list_hdr");
    setBase_ = app_.mmap(numKeys_ / 8 + numKeys_ * slotBytes_, true,
                         VmaKind::Anon, "kv_set");
}

Addr
KvStore::slotAddr(std::uint64_t key) const
{
    return kvBase_ + (key % numKeys_) * slotBytes_;
}

void
KvStore::populate()
{
    std::vector<std::uint8_t> v(payload_, 0xab);
    for (std::uint64_t k = 0; k < numKeys_; ++k) {
        app_.write<std::uint64_t>(slotAddr(k), k ^ 0xdb);
        app_.writeBuf(slotAddr(k) + 8, v.data(), payload_);
    }
    // Half-full list so pops have something to take.
    app_.write<std::uint64_t>(listHdr_, 0);                // head
    app_.write<std::uint64_t>(listHdr_ + 8, numKeys_ / 2); // tail
    for (std::uint64_t i = 0; i < numKeys_ / 2; ++i)
        app_.writeBuf(listBase_ + i * slotBytes_, v.data(), payload_);
}

void
KvStore::chargeRequestOverhead()
{
    // Protocol parse, dispatch, reply serialisation: identical
    // across OS designs.
    app_.compute(2500);
    socketRoundTrip();
}

void
KvStore::socketRoundTrip()
{
    System &sys = app_.system();
    NodeId cur = app_.where();
    Machine &machine = sys.machine();
    if (!sys.isNodeAlive(originNode_)) {
        // The server-socket node crashed: crash recovery re-homed the
        // task (fused) or re-pointed its origin (survivor-side
        // Popcorn); fail the socket over to the task's current home
        // and keep serving.
        originNode_ = sys.kernel(cur).task(app_.pid()).origin;
        if (!sys.isNodeAlive(originNode_))
            originNode_ = cur;
        if (CrashManager *cm = sys.crashManager())
            cm->recovery().counter("kv_socket_failovers") += 1;
    }
    if (cur == originNode_) {
        // Local service: just the stack work.
        machine.stall(cur, stackCycles);
        return;
    }
    if (sys.config().osDesign == OsDesign::MultipleKernel) {
        // Forward the socket operation to the origin kernel and wait
        // for the data — two messages per request.
        Message req;
        req.type = MsgType::AppRequest;
        req.from = cur;
        req.to = originNode_;
        req.arg0 = app_.pid();
        sys.msg().rpc(req, MsgType::AppResponse);
        return;
    }
    // Fused design: drive the origin-side socket/NIC state directly
    // — remote descriptor read, payload ring access, doorbell write
    // (fused MMIO, §7.4) — then one IPI to kick the stack.
    KernelInstance &origin = sys.kernel(originNode_);
    machine.dataAccess(cur, AccessType::Load,
                       origin.dataAddrFor(0x50cce7), 64);
    machine.dataAccess(cur, AccessType::Store,
                       origin.dataAddrFor(0xd00b311), 64);
    machine.stall(cur, 2 * remoteMmioCycles);
    machine.sendIpi(cur, originNode_);
    machine.stall(originNode_, stackCycles / 2);
}

void
KvStore::exec(KvOp op, std::uint64_t key, const std::uint8_t *payload)
{
    static const std::vector<std::uint8_t> defaultPayload(4096, 0x5c);
    if (!payload)
        payload = defaultPayload.data();
    chargeRequestOverhead();

    switch (op) {
      case KvOp::Get: {
        std::vector<std::uint8_t> out(payload_);
        app_.readBuf(slotAddr(key) + 8, out.data(), payload_);
        break;
      }
      case KvOp::Set: {
        app_.write<std::uint64_t>(slotAddr(key), key ^ 0xdb);
        app_.writeBuf(slotAddr(key) + 8, payload, payload_);
        break;
      }
      case KvOp::LPush: {
        std::uint64_t head = app_.read<std::uint64_t>(listHdr_);
        head = (head + listCap_ - 1) % listCap_;
        app_.writeBuf(listBase_ + head * slotBytes_, payload,
                      payload_);
        app_.write<std::uint64_t>(listHdr_, head);
        break;
      }
      case KvOp::RPush: {
        std::uint64_t tail = app_.read<std::uint64_t>(listHdr_ + 8);
        app_.writeBuf(listBase_ + (tail % listCap_) * slotBytes_,
                      payload, payload_);
        app_.write<std::uint64_t>(listHdr_ + 8,
                                  (tail + 1) % listCap_);
        break;
      }
      case KvOp::LPop: {
        std::uint64_t head = app_.read<std::uint64_t>(listHdr_);
        std::vector<std::uint8_t> out(payload_);
        app_.readBuf(listBase_ + head * slotBytes_, out.data(),
                     payload_);
        app_.write<std::uint64_t>(listHdr_, (head + 1) % listCap_);
        break;
      }
      case KvOp::RPop: {
        std::uint64_t tail = app_.read<std::uint64_t>(listHdr_ + 8);
        tail = (tail + listCap_ - 1) % listCap_;
        std::vector<std::uint8_t> out(payload_);
        app_.readBuf(listBase_ + tail * slotBytes_, out.data(),
                     payload_);
        app_.write<std::uint64_t>(listHdr_ + 8, tail);
        break;
      }
      case KvOp::SAdd: {
        std::uint64_t idx = key % numKeys_;
        Addr bitWord = setBase_ + (idx / 64) * 8;
        std::uint64_t bits = app_.read<std::uint64_t>(bitWord);
        bits |= std::uint64_t{1} << (idx % 64);
        app_.write<std::uint64_t>(bitWord, bits);
        app_.writeBuf(setBase_ + numKeys_ / 8 + idx * slotBytes_,
                      payload, payload_);
        break;
      }
      case KvOp::MSet: {
        for (int i = 0; i < 4; ++i) {
            std::uint64_t k = key + static_cast<std::uint64_t>(i) * 97;
            app_.write<std::uint64_t>(slotAddr(k), k ^ 0xdb);
            app_.writeBuf(slotAddr(k) + 8, payload, payload_);
        }
        break;
      }
    }
}

Cycles
KvStore::measureRound(KvOp op, unsigned requests, Rng &rng)
{
    System &sys = app_.system();
    Cycles before = sys.runtime();
    for (unsigned i = 0; i < requests; ++i)
        exec(op, rng.below64(numKeys_), nullptr);
    return sys.runtime() - before;
}

std::vector<std::uint8_t>
KvStore::getValue(std::uint64_t key)
{
    std::vector<std::uint8_t> out(payload_);
    app_.readBuf(slotAddr(key) + 8, out.data(), payload_);
    return out;
}

std::size_t
KvStore::listLength()
{
    std::uint64_t head = app_.read<std::uint64_t>(listHdr_);
    std::uint64_t tail = app_.read<std::uint64_t>(listHdr_ + 8);
    return (tail + listCap_ - head) % listCap_;
}

} // namespace stramash
