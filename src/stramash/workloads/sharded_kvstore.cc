#include "stramash/workloads/sharded_kvstore.hh"

namespace stramash
{

ShardedKvStore::ShardedKvStore(System &sys, ShardedKvConfig cfg)
    : sys_(sys),
      cfg_(cfg),
      rng_(cfg.seed, 0x5a4d),
      slotBytes_(((cfg.payloadBytes + 8 + cacheLineSize - 1) /
                  cacheLineSize) *
                 cacheLineSize)
{
    panic_if(cfg_.keysPerShard == 0, "sharded kv: empty shards");

    // Each kernel answers forwarded socket operations for the
    // multiple-kernel design, exactly like the Figure-14 origin.
    MessageLayer *msg = &sys_.msg();
    for (NodeId n = 0; n < sys_.nodeCount(); ++n) {
        KernelInstance *k = &sys_.kernel(n);
        k->registerMsgHandler(
            MsgType::AppRequest, [k, msg](const Message &m) {
                k->machine().stall(k->nodeId(), KvStore::stackCycles);
                Message resp;
                resp.type = MsgType::AppResponse;
                resp.from = k->nodeId();
                resp.to = m.from;
                resp.arg0 = m.arg0;
                msg->send(resp);
            });
    }

    for (NodeId n = 0; n < sys_.nodeCount(); ++n) {
        servers_.push_back(std::make_unique<App>(sys_, n));
        slabs_.push_back(servers_.back()->mmap(
            cfg_.keysPerShard * slotBytes_, true, VmaKind::Anon,
            "kv_shard"));
    }
    expected_.assign(servers_.size(),
                     std::vector<std::uint64_t>(cfg_.keysPerShard, 0));
}

Addr
ShardedKvStore::slotAddr(NodeId shard, std::uint64_t key) const
{
    std::uint64_t idx = (key / servers_.size()) % cfg_.keysPerShard;
    return slabs_[shard] + idx * slotBytes_;
}

void
ShardedKvStore::populate()
{
    std::vector<std::uint8_t> v(cfg_.payloadBytes, 0xab);
    for (NodeId s = 0; s < servers_.size(); ++s) {
        App &app = *servers_[s];
        for (std::uint64_t i = 0; i < cfg_.keysPerShard; ++i) {
            std::uint64_t tag = (i << 8) ^ s ^ 0xdb;
            Addr slot = slabs_[s] + i * slotBytes_;
            app.write<std::uint64_t>(slot, tag);
            app.writeBuf(slot + 8, v.data(), cfg_.payloadBytes);
            expected_[s][i] = tag;
        }
    }
}

void
ShardedKvStore::ingressPath(NodeId ingress, NodeId owner)
{
    Machine &machine = sys_.machine();
    if (ingress == owner) {
        // Local service: just the ingress-side stack work.
        machine.stall(ingress, KvStore::stackCycles);
        return;
    }
    ++crossShard_;
    if (sys_.config().osDesign == OsDesign::MultipleKernel) {
        // Shared-nothing forwarding: two messages per request.
        Message req;
        req.type = MsgType::AppRequest;
        req.from = ingress;
        req.to = owner;
        req.arg0 = servers_[owner]->pid();
        sys_.msg().rpc(req, MsgType::AppResponse);
        return;
    }
    // Fused forwarding: the ingress kernel drives the owner's socket
    // state directly — descriptor read, doorbell write (fused MMIO,
    // §7.4) — then one IPI; the owner runs half a stack pass.
    KernelInstance &ownerK = sys_.kernel(owner);
    machine.dataAccess(ingress, AccessType::Load,
                       ownerK.dataAddrFor(0x50cce7), 64);
    machine.dataAccess(ingress, AccessType::Store,
                       ownerK.dataAddrFor(0xd00b311), 64);
    machine.stall(ingress, 2 * KvStore::remoteMmioCycles);
    machine.sendIpi(ingress, owner);
    machine.stall(owner, KvStore::stackCycles / 2);
}

void
ShardedKvStore::exec(KvOp op, std::uint64_t key, NodeId ingress)
{
    NodeId owner = shardOf(key);
    ingressPath(ingress, owner);

    // The shard owner executes the operation against its own slab;
    // protocol parse/dispatch/reply is charged there like the
    // single-server experiment does.
    App &app = *servers_[owner];
    app.compute(2500);
    Addr slot = slotAddr(owner, key);
    switch (op) {
      case KvOp::Get: {
        std::vector<std::uint8_t> out(cfg_.payloadBytes);
        app.readBuf(slot + 8, out.data(), cfg_.payloadBytes);
        break;
      }
      case KvOp::Set: {
        std::uint64_t tag = key ^ (requests_ << 16) ^ 0xdb;
        std::vector<std::uint8_t> v(cfg_.payloadBytes,
                                    static_cast<std::uint8_t>(key));
        app.write<std::uint64_t>(slot, tag);
        app.writeBuf(slot + 8, v.data(), cfg_.payloadBytes);
        expected_[owner][(key / servers_.size()) % cfg_.keysPerShard] =
            tag;
        break;
      }
      default:
        panic("sharded kv: only Get/Set are part of the scaling "
              "experiment");
    }
    ++requests_;
}

Cycles
ShardedKvStore::run(std::uint64_t totalRequests)
{
    Cycles before = sys_.machine().maxRuntime();
    std::size_t n = servers_.size();
    for (std::uint64_t r = 0; r < totalRequests; ++r) {
        std::uint64_t key =
            rng_.below64(n * cfg_.keysPerShard);
        KvOp op = (r & 1) ? KvOp::Set : KvOp::Get;
        exec(op, key, static_cast<NodeId>(r % n));
    }
    return sys_.machine().maxRuntime() - before;
}

bool
ShardedKvStore::verify()
{
    for (NodeId s = 0; s < servers_.size(); ++s) {
        App &app = *servers_[s];
        for (std::uint64_t i = 0; i < cfg_.keysPerShard; ++i) {
            Addr slot = slabs_[s] + i * slotBytes_;
            if (app.read<std::uint64_t>(slot) != expected_[s][i])
                return false;
        }
    }
    return true;
}

} // namespace stramash
