#include "stramash/workloads/sharded_kvstore.hh"

#include <algorithm>

#include "stramash/sim/parallel_executor.hh"

namespace stramash
{

ShardedKvStore::ShardedKvStore(System &sys, ShardedKvConfig cfg)
    : sys_(sys),
      cfg_(cfg),
      rng_(cfg.seed, 0x5a4d),
      slotBytes_(((cfg.payloadBytes + 8 + cacheLineSize - 1) /
                  cacheLineSize) *
                 cacheLineSize)
{
    panic_if(cfg_.keysPerShard == 0, "sharded kv: empty shards");

    // Each kernel answers forwarded socket operations for the
    // multiple-kernel design, exactly like the Figure-14 origin.
    MessageLayer *msg = &sys_.msg();
    for (NodeId n = 0; n < sys_.nodeCount(); ++n) {
        KernelInstance *k = &sys_.kernel(n);
        k->registerMsgHandler(
            MsgType::AppRequest, [k, msg](const Message &m) {
                k->machine().stall(k->nodeId(), KvStore::stackCycles);
                Message resp;
                resp.type = MsgType::AppResponse;
                resp.from = k->nodeId();
                resp.to = m.from;
                resp.arg0 = m.arg0;
                msg->send(resp);
            });
    }

    // One server task per shard (shards = nodes). The placer decides
    // where each lives; without one, shard s stays on node s like the
    // historical hard-coded layout.
    for (NodeId s = 0; s < sys_.nodeCount(); ++s) {
        NodeId node = s;
        if (cfg_.placer) {
            PlacementHints hints;
            hints.footprintBytes = cfg_.keysPerShard * slotBytes_;
            node = cfg_.placer->place(hints);
        }
        serverNode_.push_back(node);
        servers_.push_back(std::make_unique<App>(sys_, node));
        slabs_.push_back(servers_.back()->mmap(
            cfg_.keysPerShard * slotBytes_, true, VmaKind::Anon,
            "kv_shard"));
    }
    expected_.assign(servers_.size(),
                     std::vector<std::uint64_t>(cfg_.keysPerShard, 0));
    counters_.assign(servers_.size(), OwnerCounters{});
    breakerOpen_.assign(servers_.size(), 0);
}

bool
ShardedKvStore::degradedNode(NodeId node) const
{
    if (!sys_.machine().nodeAlive(node))
        return true;
    CrashManager *cm = sys_.crashManager();
    return cm && cm->isSelfFenced(node);
}

Addr
ShardedKvStore::slotAddr(NodeId shard, std::uint64_t key) const
{
    std::uint64_t idx = (key / servers_.size()) % cfg_.keysPerShard;
    return slabs_[shard] + idx * slotBytes_;
}

void
ShardedKvStore::populate()
{
    std::vector<std::uint8_t> v(cfg_.payloadBytes, 0xab);
    for (NodeId s = 0; s < servers_.size(); ++s) {
        App &app = *servers_[s];
        for (std::uint64_t i = 0; i < cfg_.keysPerShard; ++i) {
            std::uint64_t tag = (i << 8) ^ s ^ 0xdb;
            Addr slot = slabs_[s] + i * slotBytes_;
            app.write<std::uint64_t>(slot, tag);
            app.writeBuf(slot + 8, v.data(), cfg_.payloadBytes);
            expected_[s][i] = tag;
        }
    }
}

Errc
ShardedKvStore::ingressPath(NodeId ingress, NodeId shard)
{
    Machine &machine = sys_.machine();
    NodeId owner = serverNode_[shard];
    if (ingress == owner) {
        // Local service: just the ingress-side stack work.
        machine.stall(ingress, KvStore::stackCycles);
        return Errc::Ok;
    }
    ++counters_[shard].crossShard;
    if (sys_.config().osDesign == OsDesign::MultipleKernel) {
        if (breakerOpen_[shard]) {
            if (machine.linkState(ingress, owner) != LinkState::Up ||
                machine.linkState(owner, ingress) != LinkState::Up) {
                // Breaker open and the link still impaired: fast-fail
                // without re-paying the full timeout/backoff budget.
                ++counters_[shard].unreachable;
                return Errc::Unreachable;
            }
            breakerOpen_[shard] = 0;
        }
        // Shared-nothing forwarding: two messages per request. The
        // channel scope is a no-op in sequential runs; in a parallel
        // batch it serialises the ingress<->owner ring pair so the
        // request/response exchange stays FIFO per channel. The
        // resilient tryRpc is the historical rpc() bit-for-bit when
        // no fault injector is attached.
        ChannelScope channel(sys_.msg(), ingress, owner);
        Message req;
        req.type = MsgType::AppRequest;
        req.from = ingress;
        req.to = owner;
        req.arg0 = servers_[shard]->pid();
        if (!sys_.msg().tryRpc(req, MsgType::AppResponse)) {
            // Every retry timed out: open the breaker so the next
            // requests to this owner shed cheaply until the link
            // heals.
            breakerOpen_[shard] = 1;
            ++counters_[shard].unreachable;
            return Errc::Unreachable;
        }
        return Errc::Ok;
    }
    // Fused forwarding: the ingress kernel drives the owner's socket
    // state directly — descriptor read, doorbell write (fused MMIO,
    // §7.4) — then one IPI; the owner runs half a stack pass. A
    // severed *message* link does not impair this path: the doorbell
    // rides coherent memory, and the swallowed IPI only costs the
    // owner its wakeup (it polls the descriptor anyway) — the fused
    // design serves straight through a network partition.
    KernelInstance &ownerK = sys_.kernel(owner);
    machine.dataAccess(ingress, AccessType::Load,
                       ownerK.dataAddrFor(0x50cce7), 64);
    machine.dataAccess(ingress, AccessType::Store,
                       ownerK.dataAddrFor(0xd00b311), 64);
    machine.stall(ingress, 2 * KvStore::remoteMmioCycles);
    machine.sendIpi(ingress, owner);
    machine.stall(owner, KvStore::stackCycles / 2);
    return Errc::Ok;
}

Errc
ShardedKvStore::exec(KvOp op, std::uint64_t key, NodeId ingress)
{
    return execTagged(op, key, ingress, requestsServed());
}

Errc
ShardedKvStore::execTagged(KvOp op, std::uint64_t key, NodeId ingress,
                           std::uint64_t salt)
{
    NodeId shard = shardOf(key);
    // Shed before any charge or mirror update: a dead or fenced node
    // must not acknowledge work it could lose. The caller sees
    // Errc::Degraded; the host-side mirror never learns of the
    // request, which is what makes "zero acknowledged-write loss"
    // checkable by verify().
    if (degradedNode(ingress) || degradedNode(serverNode_[shard])) {
        ++counters_[shard].shed;
        return Errc::Degraded;
    }
    if (Errc e = ingressPath(ingress, shard); e != Errc::Ok) {
        ++counters_[shard].shed;
        return e;
    }

    // The shard owner executes the operation against its own slab;
    // protocol parse/dispatch/reply is charged there like the
    // single-server experiment does.
    App &app = *servers_[shard];
    app.compute(2500);
    Addr slot = slotAddr(shard, key);
    // Scratch payload buffer, reused across requests: a per-request
    // vector would put one malloc/free on every op of every host
    // lane of a parallel batch.
    thread_local std::vector<std::uint8_t> payload;
    payload.resize(cfg_.payloadBytes);
    switch (op) {
      case KvOp::Get: {
        app.readBuf(slot + 8, payload.data(), cfg_.payloadBytes);
        break;
      }
      case KvOp::Set: {
        std::uint64_t tag = key ^ (salt << 16) ^ 0xdb;
        std::fill(payload.begin(), payload.end(),
                  static_cast<std::uint8_t>(key));
        app.write<std::uint64_t>(slot, tag);
        app.writeBuf(slot + 8, payload.data(), cfg_.payloadBytes);
        expected_[shard][(key / servers_.size()) % cfg_.keysPerShard] =
            tag;
        break;
      }
      default:
        panic("sharded kv: only Get/Set are part of the scaling "
              "experiment");
    }
    ++counters_[shard].requests;
    return Errc::Ok;
}

Cycles
ShardedKvStore::run(std::uint64_t totalRequests)
{
    Cycles before = sys_.machine().maxRuntime();
    std::size_t n = servers_.size();
    for (std::uint64_t r = 0; r < totalRequests; ++r) {
        std::uint64_t key =
            rng_.below64(n * cfg_.keysPerShard);
        KvOp op = (r & 1) ? KvOp::Set : KvOp::Get;
        exec(op, key, static_cast<NodeId>(r % n));
    }
    return sys_.machine().maxRuntime() - before;
}

namespace
{

/** One owner's slice of a parallel batch: the global stream indices
 *  (ascending, so same-slot Sets keep their sequential last-writer)
 *  plus the keys drawn for them. */
struct OwnerQueue
{
    std::vector<std::uint64_t> r;
    std::vector<std::uint64_t> key;
};

/** Serves blocks of each shard's queue per epoch, on the lane of the
 *  node the shard's server was placed on. Every request runs entirely
 *  on that lane; charges the request makes against other nodes
 *  (ingress stack work, fused doorbells, IPIs) are staged by the
 *  Machine's lane hooks and applied at the next barrier. */
class ShardedKvDriver final : public EpochDriver
{
  public:
    ShardedKvDriver(ShardedKvStore &store,
                    std::vector<std::vector<NodeId>> shardsOn,
                    std::vector<OwnerQueue> queues)
        : store_(store),
          shardsOn_(std::move(shardsOn)),
          next_(queues.size(), 0),
          queues_(std::move(queues))
    {
    }

    bool
    step(NodeId node, const EpochCtx &) override
    {
        // Large enough to amortise the barrier, small enough that
        // lanes owning several shards interleave them fairly.
        static constexpr std::size_t kBlock = 1024;
        std::size_t n = shardsOn_.size();
        bool more = false;
        for (NodeId shard : shardsOn_[node]) {
            const OwnerQueue &q = queues_[shard];
            std::size_t &i = next_[shard];
            std::size_t end = std::min(q.r.size(), i + kBlock);
            for (; i < end; ++i) {
                KvOp op = (q.r[i] & 1) ? KvOp::Set : KvOp::Get;
                store_.execTagged(op, q.key[i],
                                  static_cast<NodeId>(q.r[i] % n),
                                  q.r[i]);
            }
            more |= i < q.r.size();
        }
        return more;
    }

  private:
    ShardedKvStore &store_;
    /** Node -> shards whose server lives there. */
    std::vector<std::vector<NodeId>> shardsOn_;
    std::vector<std::size_t> next_;
    std::vector<OwnerQueue> queues_;
};

} // namespace

Cycles
ShardedKvStore::runParallel(std::uint64_t totalRequests,
                            HostExecutor &exec)
{
    Cycles before = sys_.machine().maxRuntime();
    std::size_t n = servers_.size();
    // Draw the whole request stream up front, consuming the rng in
    // exactly the order run() would, then partition by shard owner.
    std::vector<OwnerQueue> queues(n);
    for (std::uint64_t r = 0; r < totalRequests; ++r) {
        std::uint64_t key = rng_.below64(n * cfg_.keysPerShard);
        OwnerQueue &q = queues[shardOf(key)];
        q.r.push_back(r);
        q.key.push_back(key);
    }
    std::vector<std::vector<NodeId>> shardsOn(sys_.nodeCount());
    for (NodeId s = 0; s < serverNode_.size(); ++s)
        shardsOn[serverNode_[s]].push_back(s);
    ShardedKvDriver driver(*this, std::move(shardsOn),
                           std::move(queues));
    exec.run(driver);
    return sys_.machine().maxRuntime() - before;
}

bool
ShardedKvStore::verify()
{
    for (NodeId s = 0; s < servers_.size(); ++s) {
        App &app = *servers_[s];
        for (std::uint64_t i = 0; i < cfg_.keysPerShard; ++i) {
            Addr slot = slabs_[s] + i * slotBytes_;
            if (app.read<std::uint64_t>(slot) != expected_[s][i])
                return false;
        }
    }
    return true;
}

} // namespace stramash
