#include "stramash/workloads/npb.hh"

#include <cstring>

#include "stramash/common/rng.hh"

namespace stramash
{

namespace
{

constexpr std::size_t tileBytes = cacheLineSize;

/** Order-invariant checksum used by every kernel's verifier. */
std::uint64_t
mixChecksum(std::uint64_t acc, std::uint64_t v)
{
    v *= 0x9e3779b97f4a7c15ULL;
    v ^= v >> 32;
    return acc + v;
}

/** One offload hop before a processing procedure: the placer decides
 *  the target (footprint = the principal working set), the historical
 *  cyclic next-alive hop when no placer is attached. */
void
npbOffload(App &app, const NpbConfig &cfg)
{
    if (!cfg.migrate)
        return;
    if (cfg.placer) {
        PlacementHints hints;
        hints.footprintBytes = cfg.problemBytes;
        NodeId dest = cfg.placer->offloadTarget(app.where(), hints);
        if (dest != app.where())
            app.migrate(dest);
        return;
    }
    app.migrateToNext();
}

// ===================== IS: integer sort ==============================
//
// Bucket sort of 32-bit keys. Write-intensive: the histogram pass
// read-modify-writes the bucket array and the permutation pass
// scatters every key into the output array (paper: IS "would modify
// the sequence of keys during the procedure stage").

class IsKernel final : public NpbKernel
{
  public:
    const char *name() const override { return "is"; }

    NpbResult
    run(App &app, const NpbConfig &cfg) override
    {
        const std::size_t numKeys = cfg.problemBytes / 4;
        const std::size_t keysPerTile = tileBytes / 4;
        const std::size_t numTiles = numKeys / keysPerTile;
        const std::uint32_t numBuckets = 1024;
        const std::uint32_t maxKey = 1u << 20;

        NodeId origin = app.where();

        Addr keysA = app.mmap(numKeys * 4, true, VmaKind::Anon, "keysA");
        Addr keysB = app.mmap(numKeys * 4, true, VmaKind::Anon, "keysB");
        Addr buckets =
            app.mmap(numBuckets * 4, true, VmaKind::Anon, "buckets");

        // Setup at the origin: generate the key array.
        Rng rng(cfg.seed, 0x15);
        std::vector<std::uint32_t> shadow(numKeys);
        for (std::size_t t = 0; t < numTiles; ++t) {
            std::uint32_t tile[16];
            for (std::size_t k = 0; k < keysPerTile; ++k) {
                tile[k] = rng.below(maxKey);
                shadow[t * keysPerTile + k] = tile[k];
            }
            app.writeBuf(keysA + t * tileBytes, tile, tileBytes);
        }
        // NPB setup initialises every array at the origin; only
        // FT-style fresh allocations happen remotely.
        for (std::size_t t = 0; t < numTiles; ++t) {
            std::uint32_t zeroTile[16] = {};
            app.writeBuf(keysB + t * tileBytes, zeroTile, tileBytes);
        }
        for (Addr a = buckets; a < buckets + numBuckets * 4;
             a += tileBytes) {
            std::uint32_t zeroTile[16] = {};
            app.writeBuf(a, zeroTile, tileBytes);
        }

        // Running multiset checksum of the key array (mixChecksum is
        // additive, so in-place updates adjust it incrementally).
        std::uint64_t shadowSum = 0;
        for (std::uint32_t k : shadow)
            shadowSum = mixChecksum(shadowSum, k);

        Addr src = keysA;
        Addr dst = keysB;
        for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
            // Key-modification phase at the origin (NPB IS "would
            // modify the sequence of keys during the procedure
            // stage"): rewrite part of the input before ranking.
            // These origin writes invalidate the remote node's
            // cached copies — the write-intensive signature that
            // keeps IS miss-bound regardless of L3 size.
            if (iter > 0) {
                for (std::size_t t = 0; t < numTiles; ++t) {
                    std::uint32_t tile[16];
                    app.readBuf(src + t * tileBytes, tile, tileBytes);
                    for (std::size_t k = 0; k < keysPerTile; k += 2) {
                        std::uint32_t fresh = rng.below(maxKey);
                        shadowSum -= mixChecksum(0, tile[k]);
                        shadowSum += mixChecksum(0, fresh);
                        tile[k] = fresh;
                    }
                    app.writeBuf(src + t * tileBytes, tile,
                                 tileBytes);
                    app.compute(16);
                }
            }

            npbOffload(app, cfg);

            // --- ranking procedure (runs on the remote side) ---
            std::vector<std::uint32_t> counts(numBuckets, 0);
            for (Addr a = buckets; a < buckets + numBuckets * 4;
                 a += tileBytes) {
                std::uint32_t zero[16] = {};
                app.writeBuf(a, zero, tileBytes);
            }

            // Histogram: stream the keys, RMW the bucket array.
            for (std::size_t t = 0; t < numTiles; ++t) {
                std::uint32_t tile[16];
                app.readBuf(src + t * tileBytes, tile, tileBytes);
                app.compute(32);
                // Batched per-tile RMW of the touched buckets.
                std::uint32_t touched[16];
                std::size_t numTouched = 0;
                for (std::size_t k = 0; k < keysPerTile; ++k) {
                    std::uint32_t b =
                        tile[k] / (maxKey / numBuckets);
                    ++counts[b];
                    bool seen = false;
                    for (std::size_t j = 0; j < numTouched; ++j)
                        seen |= touched[j] == b;
                    if (!seen)
                        touched[numTouched++] = b;
                }
                for (std::size_t j = 0; j < numTouched; ++j) {
                    Addr ba = buckets + touched[j] * 4;
                    std::uint32_t v = app.read<std::uint32_t>(ba);
                    app.write<std::uint32_t>(ba, v + 1);
                }
            }

            // Prefix sums (small array, sequential).
            std::vector<std::uint32_t> starts(numBuckets, 0);
            std::uint32_t acc = 0;
            for (std::uint32_t b = 0; b < numBuckets; ++b) {
                starts[b] = acc;
                acc += counts[b];
            }
            app.compute(numBuckets);

            // Permutation: scatter every key to its rank — the
            // write-intensive heart of IS.
            std::vector<std::uint32_t> cursor = starts;
            for (std::size_t t = 0; t < numTiles; ++t) {
                std::uint32_t tile[16];
                app.readBuf(src + t * tileBytes, tile, tileBytes);
                app.compute(16);
                for (std::size_t k = 0; k < keysPerTile; ++k) {
                    std::uint32_t b =
                        tile[k] / (maxKey / numBuckets);
                    std::uint32_t pos = cursor[b]++;
                    app.write<std::uint32_t>(dst + Addr{pos} * 4,
                                             tile[k]);
                }
            }

            if (cfg.migrate)
                app.migrate(origin);

            // Control phase at the origin: spot-check ranks.
            for (std::uint32_t b = 0; b < numBuckets; b += 64) {
                (void)app.read<std::uint32_t>(buckets + b * 4);
            }
            std::swap(src, dst);
        }

        // Verification at the origin: bucket-sortedness + multiset
        // preservation against the host shadow.
        NpbResult res;
        std::uint64_t sumGuest = 0;
        std::uint32_t prevBucket = 0;
        bool ordered = true;
        for (std::size_t t = 0; t < numTiles; ++t) {
            std::uint32_t tile[16];
            app.readBuf(src + t * tileBytes, tile, tileBytes);
            for (std::size_t k = 0; k < keysPerTile; ++k) {
                std::uint32_t b = tile[k] / (maxKey / numBuckets);
                if (b < prevBucket)
                    ordered = false;
                prevBucket = b;
                sumGuest = mixChecksum(sumGuest, tile[k]);
            }
        }
        res.verified = ordered && sumGuest == shadowSum;
        res.checksum = sumGuest;
        return res;
    }
};

// ===================== CG: conjugate gradient ========================
//
// Sparse matrix-vector products in CSR form. Read-intensive: ~98% of
// memory instructions are loads (matrix values, column indices and
// gathered vector elements), with only one store per row.

class CgKernel final : public NpbKernel
{
  public:
    const char *name() const override { return "cg"; }

    NpbResult
    run(App &app, const NpbConfig &cfg) override
    {
        const std::size_t nnzPerRow = 16;
        const std::size_t rows =
            cfg.problemBytes / (nnzPerRow * 12);
        const std::size_t rowsAligned = rows & ~std::size_t{7};

        NodeId origin = app.where();

        Addr val = app.mmap(rowsAligned * nnzPerRow * 8, true,
                            VmaKind::Anon, "cg_val");
        Addr col = app.mmap(rowsAligned * nnzPerRow * 4, true,
                            VmaKind::Anon, "cg_col");
        Addr vecX =
            app.mmap(rowsAligned * 8, true, VmaKind::Anon, "cg_x");
        Addr vecY =
            app.mmap(rowsAligned * 8, true, VmaKind::Anon, "cg_y");

        Rng rng(cfg.seed, 0xc6);
        std::vector<double> shadowVal(rowsAligned * nnzPerRow);
        std::vector<std::uint32_t> shadowCol(rowsAligned * nnzPerRow);
        std::vector<double> shadowX(rowsAligned, 1.0);

        // Setup at the origin: matrix and initial vector.
        for (std::size_t r = 0; r < rowsAligned; ++r) {
            double vtile[8];
            std::uint32_t ctile[16];
            for (std::size_t j = 0; j < nnzPerRow; ++j) {
                double v = 1.0 / (1.0 + (r + j) % 97);
                std::uint32_t c = rng.below(
                    static_cast<std::uint32_t>(rowsAligned));
                shadowVal[r * nnzPerRow + j] = v;
                shadowCol[r * nnzPerRow + j] = c;
                ctile[j] = c;
                vtile[j % 8] = v;
                if (j % 8 == 7) {
                    app.writeBuf(val + (r * nnzPerRow + j - 7) * 8,
                                 vtile, tileBytes);
                }
            }
            app.writeBuf(col + r * nnzPerRow * 4, ctile, tileBytes);
        }
        for (std::size_t r = 0; r < rowsAligned; r += 8) {
            double ones[8] = {1, 1, 1, 1, 1, 1, 1, 1};
            app.writeBuf(vecX + r * 8, ones, tileBytes);
            double zeros[8] = {};
            app.writeBuf(vecY + r * 8, zeros, tileBytes);
        }

        std::vector<double> shadowY(rowsAligned, 0.0);

        for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
            npbOffload(app, cfg);

            // Two mat-vec passes per procedure.
            for (int pass = 0; pass < 2; ++pass) {
                double ytile[8];
                for (std::size_t r = 0; r < rowsAligned; ++r) {
                    double vtile[8];
                    std::uint32_t ctile[16];
                    app.readBuf(col + r * nnzPerRow * 4, ctile,
                                tileBytes);
                    double sum = 0.0;
                    for (std::size_t j = 0; j < nnzPerRow; ++j) {
                        if (j % 8 == 0) {
                            app.readBuf(val + (r * nnzPerRow + j) * 8,
                                        vtile, tileBytes);
                        }
                        // Random gather: the load-dominated part.
                        double x = app.read<double>(
                            vecX + Addr{ctile[j]} * 8);
                        sum += vtile[j % 8] * x;
                    }
                    app.compute(2 * nnzPerRow);
                    ytile[r % 8] = sum;
                    shadowY[r] = sum;
                    if (r % 8 == 7)
                        app.writeBuf(vecY + (r - 7) * 8, ytile,
                                     tileBytes);
                }
            }

            // Scalar reduction over y (sequential reads).
            double norm = 0.0;
            for (std::size_t r = 0; r < rowsAligned; r += 8) {
                double ytile[8];
                app.readBuf(vecY + r * 8, ytile, tileBytes);
                for (double v : ytile)
                    norm += v * v;
            }
            app.compute(rowsAligned / 4);
            (void)norm;

            if (cfg.migrate)
                app.migrate(origin);
        }

        // Verify against the host shadow mat-vec.
        NpbResult res;
        std::vector<double> expect(rowsAligned, 0.0);
        for (std::size_t r = 0; r < rowsAligned; ++r) {
            double sum = 0.0;
            for (std::size_t j = 0; j < nnzPerRow; ++j) {
                sum += shadowVal[r * nnzPerRow + j] *
                       shadowX[shadowCol[r * nnzPerRow + j]];
            }
            expect[r] = sum;
        }
        bool ok = true;
        std::uint64_t checksum = 0;
        for (std::size_t r = 0; r < rowsAligned; ++r) {
            double got = app.read<double>(vecY + r * 8);
            if (got != expect[r])
                ok = false;
            std::uint64_t bits;
            std::memcpy(&bits, &got, 8);
            checksum = mixChecksum(checksum, bits);
        }
        res.verified = ok;
        res.checksum = checksum;
        return res;
    }
};

// ===================== MG: multigrid =================================
//
// Jacobi smoothing plus restriction/prolongation between a fine and a
// coarse grid: long sequential sweeps over large arrays, mixed
// reads/writes.

class MgKernel final : public NpbKernel
{
  public:
    const char *name() const override { return "mg"; }

    NpbResult
    run(App &app, const NpbConfig &cfg) override
    {
        // One "pencil" = 8 doubles = one tile.
        const std::size_t fine = cfg.problemBytes / 8; // elements
        const std::size_t fineTiles = fine / 8;
        const std::size_t coarseTiles = fineTiles / 8;

        NodeId origin = app.where();

        Addr gridA = app.mmap(fine * 8, true, VmaKind::Anon, "mg_a");
        Addr gridB = app.mmap(fine * 8, true, VmaKind::Anon, "mg_b");
        Addr coarse = app.mmap(coarseTiles * tileBytes, true,
                               VmaKind::Anon, "mg_c");

        Rng rng(cfg.seed, 0x316);
        std::vector<double> shadow(fine);
        for (std::size_t t = 0; t < fineTiles; ++t) {
            double tile[8];
            for (int k = 0; k < 8; ++k) {
                tile[k] = static_cast<double>(rng.below(1000)) / 999.0;
                shadow[t * 8 + k] = tile[k];
            }
            app.writeBuf(gridA + t * tileBytes, tile, tileBytes);
        }
        for (std::size_t t = 0; t < fineTiles; ++t) {
            double zeros[8] = {};
            app.writeBuf(gridB + t * tileBytes, zeros, tileBytes);
        }
        for (std::size_t c = 0; c < coarseTiles; ++c) {
            double zeros[8] = {};
            app.writeBuf(coarse + c * tileBytes, zeros, tileBytes);
        }

        auto smoothShadow = [&](std::vector<double> &g) {
            std::vector<double> out(g.size());
            for (std::size_t i = 0; i < g.size(); ++i) {
                double l = i ? g[i - 1] : g[i];
                double r = i + 1 < g.size() ? g[i + 1] : g[i];
                out[i] = 0.25 * l + 0.5 * g[i] + 0.25 * r;
            }
            g = out;
        };

        for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
            npbOffload(app, cfg);

            // Smooth: read a sliding window of tiles, write the
            // result grid. Boundary elements use themselves as the
            // missing neighbour, matching the host shadow.
            double prev[8], cur[8], next[8];
            app.readBuf(gridA, cur, tileBytes);
            std::memcpy(prev, cur, tileBytes);
            for (std::size_t t = 0; t < fineTiles; ++t) {
                if (t + 1 < fineTiles)
                    app.readBuf(gridA + (t + 1) * tileBytes, next,
                                tileBytes);
                else
                    std::memcpy(next, cur, tileBytes);
                double out[8];
                for (int k = 0; k < 8; ++k) {
                    bool firstElem = t == 0 && k == 0;
                    bool lastElem = t + 1 == fineTiles && k == 7;
                    double l = firstElem ? cur[0]
                               : k       ? cur[k - 1]
                                         : prev[7];
                    double r = lastElem ? cur[7]
                               : k < 7  ? cur[k + 1]
                                        : next[0];
                    out[k] = 0.25 * l + 0.5 * cur[k] + 0.25 * r;
                }
                app.compute(24);
                app.writeBuf(gridB + t * tileBytes, out, tileBytes);
                std::memcpy(prev, cur, tileBytes);
                std::memcpy(cur, next, tileBytes);
            }
            smoothShadow(shadow);

            // Restriction: average 8 fine tiles into one coarse tile.
            for (std::size_t c = 0; c < coarseTiles; ++c) {
                double acc[8] = {};
                for (std::size_t f = 0; f < 8; ++f) {
                    double tile[8];
                    app.readBuf(gridB + (c * 8 + f) * tileBytes, tile,
                                tileBytes);
                    for (int k = 0; k < 8; ++k)
                        acc[f] += tile[k] / 8.0;
                }
                app.compute(64);
                app.writeBuf(coarse + c * tileBytes, acc, tileBytes);
            }

            // Prolongation: add the coarse correction back while
            // copying B into A for the next procedure.
            for (std::size_t t = 0; t < fineTiles; ++t) {
                double tile[8];
                app.readBuf(gridB + t * tileBytes, tile, tileBytes);
                app.compute(8);
                app.writeBuf(gridA + t * tileBytes, tile, tileBytes);
            }

            if (cfg.migrate)
                app.migrate(origin);
        }

        NpbResult res;
        bool ok = true;
        std::uint64_t checksum = 0;
        for (std::size_t t = 0; t < fineTiles; ++t) {
            double tile[8];
            app.readBuf(gridA + t * tileBytes, tile, tileBytes);
            for (int k = 0; k < 8; ++k) {
                if (tile[k] != shadow[t * 8 + k])
                    ok = false;
                std::uint64_t bits;
                std::memcpy(&bits, &tile[k], 8);
                checksum = mixChecksum(checksum, bits);
            }
        }
        res.verified = ok;
        res.checksum = checksum;
        return res;
    }
};

// ===================== FT: Fourier transform =========================
//
// Transpose + butterfly passes over a complex array, with a *fresh
// scratch buffer allocated every procedure* — the allocation-heavy
// pattern that exercises remote anonymous allocation (Stramash's
// fast path / Popcorn's two-round origin allocation).

class FtKernel final : public NpbKernel
{
  public:
    const char *name() const override { return "ft"; }

    NpbResult
    run(App &app, const NpbConfig &cfg) override
    {
        // Complex elements of 16 B; data viewed as rows x cols.
        const std::size_t elems = cfg.problemBytes / 16;
        std::size_t rows = 1;
        while (rows * rows < elems)
            rows <<= 1;
        const std::size_t cols = elems / rows;
        const std::size_t elemsUsed = rows * cols;

        NodeId origin = app.where();

        Addr data =
            app.mmap(elemsUsed * 16, true, VmaKind::Anon, "ft_data");

        Rng rng(cfg.seed, 0xf7);
        std::vector<double> shadow(elemsUsed * 2);
        for (std::size_t t = 0; t < elemsUsed / 4; ++t) {
            double tile[8];
            for (int k = 0; k < 8; ++k) {
                tile[k] = static_cast<double>(rng.below(1 << 16)) /
                          65536.0;
                shadow[t * 8 + k] = tile[k];
            }
            app.writeBuf(data + t * tileBytes, tile, tileBytes);
        }

        for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
            npbOffload(app, cfg);

            // Fresh scratch every procedure — first touched on the
            // remote side.
            Addr scratch = app.mmap(elemsUsed * 16, true,
                                    VmaKind::Anon, "ft_scratch");

            // Transpose (strided reads, sequential writes). One
            // tile = 4 complex elements, so transpose 4-row bands.
            const std::size_t colTiles = cols / 4;
            for (std::size_t band = 0; band < rows; band += 4) {
                for (std::size_t ct = 0; ct < colTiles; ++ct) {
                    double in[4][8];
                    for (std::size_t r = 0; r < 4; ++r) {
                        app.readBuf(data + ((band + r) * cols +
                                            ct * 4) * 16,
                                    in[r], tileBytes);
                    }
                    app.compute(16);
                    for (std::size_t c = 0; c < 4; ++c) {
                        double out[8];
                        for (std::size_t r = 0; r < 4; ++r) {
                            out[r * 2] = in[r][c * 2];
                            out[r * 2 + 1] = in[r][c * 2 + 1];
                        }
                        app.writeBuf(scratch + ((ct * 4 + c) * rows +
                                                band) * 16,
                                     out, tileBytes);
                    }
                }
            }

            // Butterfly-style pass: sequential RMW with twiddles.
            for (std::size_t t = 0; t < elemsUsed / 4; ++t) {
                double tile[8];
                app.readBuf(scratch + t * tileBytes, tile, tileBytes);
                for (int k = 0; k < 8; k += 2) {
                    double re = tile[k], im = tile[k + 1];
                    tile[k] = re * 0.96 - im * 0.28;
                    tile[k + 1] = re * 0.28 + im * 0.96;
                }
                app.compute(48);
                app.writeBuf(scratch + t * tileBytes, tile, tileBytes);
            }

            // Copy back for the next procedure.
            for (std::size_t t = 0; t < elemsUsed / 4; ++t) {
                double tile[8];
                app.readBuf(scratch + t * tileBytes, tile, tileBytes);
                app.writeBuf(data + t * tileBytes, tile, tileBytes);
            }

            // Host shadow of the same procedure.
            std::vector<double> next(shadow.size());
            for (std::size_t r = 0; r < rows; ++r) {
                for (std::size_t c = 0; c < cols; ++c) {
                    std::size_t s = (r * cols + c) * 2;
                    std::size_t d = (c * rows + r) * 2;
                    next[d] = shadow[s];
                    next[d + 1] = shadow[s + 1];
                }
            }
            for (std::size_t i = 0; i < next.size(); i += 2) {
                double re = next[i], im = next[i + 1];
                next[i] = re * 0.96 - im * 0.28;
                next[i + 1] = re * 0.28 + im * 0.96;
            }
            shadow = next;

            if (cfg.migrate)
                app.migrate(origin);
        }

        NpbResult res;
        bool ok = true;
        std::uint64_t checksum = 0;
        for (std::size_t t = 0; t < elemsUsed / 4; ++t) {
            double tile[8];
            app.readBuf(data + t * tileBytes, tile, tileBytes);
            for (int k = 0; k < 8; ++k) {
                if (tile[k] != shadow[t * 8 + k])
                    ok = false;
                std::uint64_t bits;
                std::memcpy(&bits, &tile[k], 8);
                checksum = mixChecksum(checksum, bits);
            }
        }
        res.verified = ok;
        res.checksum = checksum;
        return res;
    }
};

} // namespace

std::unique_ptr<NpbKernel>
makeNpbKernel(const std::string &name)
{
    if (name == "is")
        return std::make_unique<IsKernel>();
    if (name == "cg")
        return std::make_unique<CgKernel>();
    if (name == "mg")
        return std::make_unique<MgKernel>();
    if (name == "ft")
        return std::make_unique<FtKernel>();
    fatal("unknown NPB kernel '", name, "'");
}

const std::vector<std::string> &
npbKernelNames()
{
    static const std::vector<std::string> names{"is", "cg", "mg", "ft"};
    return names;
}

} // namespace stramash
