#include "stramash/workloads/microbench.hh"

namespace stramash
{

const char *
memAccessCaseName(MemAccessCase c)
{
    switch (c) {
      case MemAccessCase::Vanilla: return "Vanilla";
      case MemAccessCase::RemoteAccessOrigin: return "RaO";
      case MemAccessCase::RemoteAccessOriginNoCold: return "RaO-NC";
      case MemAccessCase::OriginAccessRemote: return "OaR";
      case MemAccessCase::OriginAccessRemoteNoCold: return "OaR-NC";
    }
    panic("unknown MemAccessCase");
}

namespace
{

/** Sequential write sweep (materialises pages on the current node). */
void
writeSweep(App &app, Addr base, Addr bytes)
{
    std::uint8_t tile[cacheLineSize];
    for (std::size_t i = 0; i < cacheLineSize; ++i)
        tile[i] = static_cast<std::uint8_t>(i * 31 + 7);
    for (Addr a = base; a < base + bytes; a += cacheLineSize)
        app.writeBuf(a, tile, cacheLineSize);
}

/** Sequential read sweep (the measured activity). */
std::uint64_t
readSweep(App &app, Addr base, Addr bytes)
{
    std::uint64_t acc = 0;
    std::uint8_t tile[cacheLineSize];
    for (Addr a = base; a < base + bytes; a += cacheLineSize) {
        app.readBuf(a, tile, cacheLineSize);
        acc += tile[0];
    }
    return acc;
}

} // namespace

Cycles
runMemAccessCase(System &sys, MemAccessCase c, Addr bytes)
{
    NodeId origin = 0;
    NodeId remote = 1;
    App app(sys, origin);
    Addr region = app.mmap(bytes, true, VmaKind::Anon, "ubench");

    switch (c) {
      case MemAccessCase::Vanilla: {
        writeSweep(app, region, bytes); // allocate at the origin
        Cycles before = sys.runtime();
        readSweep(app, region, bytes);
        return sys.runtime() - before;
      }
      case MemAccessCase::RemoteAccessOrigin: {
        writeSweep(app, region, bytes);
        app.migrate(remote);
        Cycles before = sys.runtime();
        readSweep(app, region, bytes);
        return sys.runtime() - before;
      }
      case MemAccessCase::RemoteAccessOriginNoCold: {
        writeSweep(app, region, bytes);
        app.migrate(remote);
        readSweep(app, region, bytes); // warm-up (unmeasured)
        Cycles before = sys.runtime();
        readSweep(app, region, bytes);
        return sys.runtime() - before;
      }
      case MemAccessCase::OriginAccessRemote: {
        app.migrate(remote);
        writeSweep(app, region, bytes); // allocate at the remote
        app.migrate(origin);
        Cycles before = sys.runtime();
        readSweep(app, region, bytes);
        return sys.runtime() - before;
      }
      case MemAccessCase::OriginAccessRemoteNoCold: {
        app.migrate(remote);
        writeSweep(app, region, bytes);
        app.migrate(origin);
        readSweep(app, region, bytes); // warm-up (unmeasured)
        Cycles before = sys.runtime();
        readSweep(app, region, bytes);
        return sys.runtime() - before;
      }
    }
    panic("unknown MemAccessCase");
}

Cycles
runGranularityCase(System &sys, unsigned linesPerPage, unsigned pages)
{
    panic_if(linesPerPage == 0 ||
                 linesPerPage > pageSize / cacheLineSize,
             "linesPerPage out of range");
    App app(sys, 0);
    Addr region = app.mmap(Addr{pages} * pageSize, true, VmaKind::Anon,
                           "gran");
    // Materialise at the origin so the remote pass faces either DSM
    // page replication or hardware cacheline transfers.
    writeSweep(app, region, Addr{pages} * pageSize);
    app.migrate(1);

    Cycles before = sys.runtime();
    std::uint8_t tile[cacheLineSize];
    for (unsigned p = 0; p < pages; ++p) {
        Addr page = region + Addr{p} * pageSize;
        for (unsigned l = 0; l < linesPerPage; ++l)
            app.readBuf(page + Addr{l} * cacheLineSize, tile,
                        cacheLineSize);
    }
    return sys.runtime() - before;
}

Cycles
runFutexPingPong(System &sys, unsigned loops)
{
    App app(sys, 0);
    Addr page = app.mmap(pageSize, true, VmaKind::Anon, "futex");
    Addr lockWord = page;
    Addr counter = page + 64;
    app.write<std::uint32_t>(lockWord, 0);
    app.write<std::uint32_t>(counter, 0);

    // Create the remote-side task record, then return.
    app.migrate(1);
    app.migrate(0);

    KernelInstance &ko = sys.kernel(0);
    KernelInstance &kr = sys.kernel(1);
    Task &to = ko.task(app.pid());
    Task &tr = kr.task(app.pid());
    FutexPolicy &fp = sys.futexPolicy();

    Cycles before = sys.runtime();
    for (unsigned i = 0; i < loops; ++i) {
        // Origin thread: acquire the lock, then block until the
        // remote thread releases it.
        bool ok = false;
        ko.userCas(to, lockWord, 0, 1, ok);
        panic_if(!ok, "futex lock word corrupted");
        fp.wait(ko, to, lockWord, 1);

        // Remote thread: the simple addition, release, wake.
        std::uint32_t v = kr.userLoad<std::uint32_t>(tr, counter);
        kr.userStore<std::uint32_t>(tr, counter, v + 1);
        kr.machine().retire(kr.nodeId(), 8);
        kr.userStore<std::uint32_t>(tr, lockWord, 0);
        fp.wake(kr, tr, lockWord, 1);
    }
    Cycles spent = sys.runtime() - before;

    std::uint32_t final = ko.userLoad<std::uint32_t>(to, counter);
    panic_if(final != loops, "futex ping-pong lost updates: ", final,
             " != ", loops);
    return spent;
}

} // namespace stramash
