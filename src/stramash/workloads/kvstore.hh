/**
 * @file
 * The network-serving application experiment (paper §9.2.8,
 * Figure 14): a Redis-like in-memory store whose server thread
 * migrates to the other ISA and keeps serving requests from there.
 *
 * The store's data structures live in guest memory and are accessed
 * through the server's address space, so every request's processing
 * cost reflects the OS design under test: Popcorn replicates DB
 * pages through its messaging layer (TCP or SHM rings), Stramash
 * reaches them directly through coherent shared memory. As in the
 * paper, these runs are functional validation: the cache plugin is
 * disabled and only request processing time is compared.
 */

#ifndef STRAMASH_WORKLOADS_KVSTORE_HH
#define STRAMASH_WORKLOADS_KVSTORE_HH

#include "stramash/common/rng.hh"
#include "stramash/core/app.hh"

namespace stramash
{

/** Request kinds from the paper's Figure 14. */
enum class KvOp : std::uint8_t
{
    Get,
    Set,
    LPush,
    RPush,
    LPop,
    RPop,
    SAdd,
    MSet,
};

const char *kvOpName(KvOp op);
const std::vector<KvOp> &allKvOps();

class KvStore
{
  public:
    /**
     * @param payloadBytes value size (paper: 1024 B)
     */
    KvStore(App &server, std::size_t numKeys,
            std::size_t payloadBytes = 1024);

    /** Build the database at the server's current node. */
    void populate();

    /** Process one request; payload may be null for read ops. */
    void exec(KvOp op, std::uint64_t key, const std::uint8_t *payload);

    /**
     * Serve @p requests of @p op with random keys and measure the
     * in-server processing time, as the paper's modified
     * Redis-server does.
     */
    Cycles measureRound(KvOp op, unsigned requests, Rng &rng);

    /** Read a value back (for functional checks). */
    std::vector<std::uint8_t> getValue(std::uint64_t key);

    std::size_t listLength();

    /** Origin-side network stack work per request. */
    static constexpr Cycles stackCycles = 8000;
    /** One remote MMIO/doorbell access (fused direct device path). */
    static constexpr Cycles remoteMmioCycles = 2000;

  private:
    App &app_;
    NodeId originNode_;
    std::size_t numKeys_;
    std::size_t payload_;
    std::size_t slotBytes_;
    Addr kvBase_ = 0;
    Addr listBase_ = 0;
    Addr listHdr_ = 0;
    Addr setBase_ = 0;
    std::size_t listCap_ = 0;

    Addr slotAddr(std::uint64_t key) const;

    /** Per-request fixed server-side work (parse, dispatch, reply). */
    void chargeRequestOverhead();

    /**
     * The socket lives at the origin (a migrated thread cannot take
     * its socket along — the Popcorn limitation that shaped §9.2.8).
     * When serving remotely, each request's socket I/O reaches the
     * origin: Popcorn forwards it over the messaging layer; Stramash
     * drives the origin-side device state directly through shared
     * memory / fused MMIO (§7.4) plus one IPI.
     */
    void socketRoundTrip();
};

} // namespace stramash

#endif // STRAMASH_WORKLOADS_KVSTORE_HH
