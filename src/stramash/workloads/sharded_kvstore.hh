/**
 * @file
 * A sharded, multi-node kv-store: the N-node scaling companion of the
 * Figure-14 single-server experiment (workloads/kvstore).
 *
 * One server task per topology node owns one shard of the key space
 * (shard = key % N) and never migrates; requests arrive round-robin
 * at every node's ingress socket. A request whose shard lives on the
 * ingress node is served locally. A cross-shard request is forwarded
 * to the shard owner the way each OS design can: the fused design
 * drives the owner's socket state directly through coherent shared
 * memory plus one IPI (§7.4), the multiple-kernel design pays a
 * two-message RPC through the transport. The owner then executes the
 * operation against its local slab.
 *
 * Work distributes across the per-node clocks, so aggregate
 * throughput (requests per max-node-runtime) scales with node count
 * — the curve bench/bench_scaling.cc sweeps. Like the paper's §9.2.8
 * runs these are functional-mode experiments (cache plugin off), and
 * every value written is mirrored host-side so a run can be verified
 * end to end.
 */

#ifndef STRAMASH_WORKLOADS_SHARDED_KVSTORE_HH
#define STRAMASH_WORKLOADS_SHARDED_KVSTORE_HH

#include <memory>

#include "stramash/common/rng.hh"
#include "stramash/core/app.hh"
#include "stramash/core/placement.hh"
#include "stramash/workloads/kvstore.hh"

namespace stramash
{

struct ShardedKvConfig
{
    /** Keys per shard (global key space = shards * keysPerShard). */
    std::size_t keysPerShard = 64;
    /** Value size in bytes. */
    std::size_t payloadBytes = 256;
    /** Places each shard's server task (footprint = the shard slab).
     *  Null keeps the historical identity mapping: shard s on node
     *  s. */
    Placer *placer = nullptr;
    /** Request-stream seed (key choice and get/set mix). */
    std::uint64_t seed = 7;
};

class ShardedKvStore
{
  public:
    /** Stands up one server task per node of @p sys. */
    explicit ShardedKvStore(System &sys, ShardedKvConfig cfg = {});

    /** Write the initial value of every slot in every shard. */
    void populate();

    /** Number of shards (= nodes). */
    std::size_t shards() const { return servers_.size(); }

    NodeId
    shardOf(std::uint64_t key) const
    {
        return static_cast<NodeId>(key % servers_.size());
    }

    /** The node @p shard's server task was placed on (identity when
     *  no Placer was configured). */
    NodeId serverNode(NodeId shard) const { return serverNode_[shard]; }

    /** The node serving @p key: serverNode(shardOf(key)). */
    NodeId
    ownerNodeOf(std::uint64_t key) const
    {
        return serverNode_[shardOf(key)];
    }

    /**
     * Serve one request arriving at @p ingress. Only Get and Set are
     * part of the scaling experiment.
     *
     * @return Ok when served. Degraded when the ingress or the shard
     *         owner is dead or partition-fenced — the request is shed
     *         *before* any work or mirror update, so a fenced shard
     *         never acknowledges a write it could lose. Unreachable /
     *         Timeout when a Popcorn cross-shard forward exhausted
     *         its retries (the write never reached the owner and the
     *         mirror is untouched: nothing acknowledged, nothing
     *         lost).
     */
    Errc exec(KvOp op, std::uint64_t key, NodeId ingress);

    /**
     * Serve one request with an explicit tag salt. exec() uses the
     * running request count; the parallel batch path passes the
     * request's global stream index instead, which is the same value
     * the sequential loop would have seen — so the tags written (and
     * verified) are bit-identical regardless of execution order.
     */
    Errc execTagged(KvOp op, std::uint64_t key, NodeId ingress,
                    std::uint64_t salt);

    // ---- hooks for the open-loop front end (stramash/load) ----

    std::size_t keysPerShard() const { return cfg_.keysPerShard; }
    std::size_t payloadBytes() const { return cfg_.payloadBytes; }
    /** Global key-space size (shards * keysPerShard). */
    std::size_t keySpace() const
    {
        return servers_.size() * cfg_.keysPerShard;
    }

    /** Guest address of @p key's slot inside its owner's slab. */
    Addr slotAddr(NodeId shard, std::uint64_t key) const;

    /**
     * The current tag word of @p key's slot (host-side mirror; no
     * simulated cost). A hot-key cache validates its copy against
     * this — the fused design by one coherent load of the slot's
     * version line, which is what makes its invalidation nearly
     * free.
     */
    std::uint64_t
    currentTag(std::uint64_t key) const
    {
        NodeId owner = shardOf(key);
        return expected_[owner]
                        [(key / servers_.size()) % cfg_.keysPerShard];
    }

    System &system() { return sys_; }

    /**
     * Serve @p totalRequests from the seeded request stream, ingress
     * round-robin across nodes.
     * @return the max-node-runtime delta the batch cost.
     */
    Cycles run(std::uint64_t totalRequests);

    /**
     * The same batch as run(), executed shard-parallel on @p exec's
     * host threads: the request stream is drawn up front (consuming
     * the rng exactly as run() would), partitioned by shard owner,
     * and each owner's slice is served on the host lane that owns the
     * node. Cross-node charges ride the executor's epoch staging, so
     * every per-node clock, counter and slot tag lands bit-identical
     * to the sequential run — including with a 1-thread executor.
     * @return the max-node-runtime delta the batch cost.
     */
    Cycles runParallel(std::uint64_t totalRequests, HostExecutor &exec);

    /** Re-read every slot and compare against the host-side mirror.
     *  @return true when nothing was lost or corrupted. */
    bool verify();

    std::uint64_t requestsServed() const
    {
        std::uint64_t total = 0;
        for (const OwnerCounters &c : counters_)
            total += c.requests;
        return total;
    }
    std::uint64_t crossShardRequests() const
    {
        std::uint64_t total = 0;
        for (const OwnerCounters &c : counters_)
            total += c.crossShard;
        return total;
    }
    /** Requests shed because a node was dead or partition-fenced. */
    std::uint64_t requestsShed() const
    {
        std::uint64_t total = 0;
        for (const OwnerCounters &c : counters_)
            total += c.shed;
        return total;
    }
    /** Popcorn forwards refused by the ingress circuit breaker or
     *  given up after exhausting the RPC retry budget. */
    std::uint64_t unreachableForwards() const
    {
        std::uint64_t total = 0;
        for (const OwnerCounters &c : counters_)
            total += c.unreachable;
        return total;
    }

  private:
    /**
     * Request accounting, sliced by shard owner. A parallel batch
     * serves each request on its owner's host lane, so every slot has
     * exactly one writer — and the cache-line alignment keeps the
     * lanes from false-sharing what would otherwise be two hammered
     * global words. Readers run at serial points (totals above).
     */
    struct alignas(64) OwnerCounters
    {
        std::uint64_t requests = 0;
        std::uint64_t crossShard = 0;
        std::uint64_t shed = 0;
        std::uint64_t unreachable = 0;
    };

    System &sys_;
    ShardedKvConfig cfg_;
    Rng rng_;
    std::size_t slotBytes_;
    std::vector<std::unique_ptr<App>> servers_;
    /** Shard -> node its server runs on. */
    std::vector<NodeId> serverNode_;
    /** Per-shard slab base (in that server's address space). */
    std::vector<Addr> slabs_;
    /** Host-side mirror of every slot's tag word, for verify(). */
    std::vector<std::vector<std::uint64_t>> expected_;
    std::vector<OwnerCounters> counters_;
    /** Per-owner circuit breaker for Popcorn forwards: opened by a
     *  failed tryRpc, re-closed when the chaos layer reports the
     *  ingress<->owner links Up again (standing in for a background
     *  probe). While open, forwards fast-fail instead of burning the
     *  full retry/backoff budget per request. One writer per owner
     *  lane in parallel batches. */
    std::vector<std::uint8_t> breakerOpen_;

    /** True when @p node cannot take new work: machine-dead or
     *  frozen in the self-fenced degraded mode. */
    bool degradedNode(NodeId node) const;

    /** Ingress-side socket work, plus forwarding when @p shard's
     *  server lives on another node. */
    Errc ingressPath(NodeId ingress, NodeId shard);
};

} // namespace stramash

#endif // STRAMASH_WORKLOADS_SHARDED_KVSTORE_HH
