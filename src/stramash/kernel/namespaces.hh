/**
 * @file
 * The fused namespace set (paper §6.6): Stramash presents the same
 * mount, PID, net, UTS, user and cgroup namespaces — plus the same
 * CPU topology — on every kernel instance, so a migrated application
 * observes an identical environment.
 */

#ifndef STRAMASH_KERNEL_NAMESPACES_HH
#define STRAMASH_KERNEL_NAMESPACES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stramash/common/types.hh"

namespace stramash
{

/** One CPU as listed in the fused topology. */
struct CpuInfo
{
    CoreId id;
    NodeId node;
    IsaType isa;

    bool
    operator==(const CpuInfo &o) const
    {
        return id == o.id && node == o.node && isa == o.isa;
    }
};

/** Namespace identifiers a task observes. */
struct NamespaceSet
{
    std::uint64_t mountNs = 0;
    std::uint64_t pidNs = 0;
    std::uint64_t netNs = 0;
    std::uint64_t utsNs = 0;
    std::uint64_t userNs = 0;
    std::uint64_t cgroupNs = 0;
    std::string hostname;
    std::vector<CpuInfo> cpus;

    bool
    operator==(const NamespaceSet &o) const
    {
        return mountNs == o.mountNs && pidNs == o.pidNs &&
               netNs == o.netNs && utsNs == o.utsNs &&
               userNs == o.userNs && cgroupNs == o.cgroupNs &&
               hostname == o.hostname && cpus == o.cpus;
    }
};

} // namespace stramash

#endif // STRAMASH_KERNEL_NAMESPACES_HH
