/**
 * @file
 * One task's address space on one kernel instance: an arch-format
 * page table in guest memory, the VMA tree, a softmmu-style
 * translation cache, and the guest-resident lock words the fused
 * design uses (VMA lock, Stramash-PTL).
 */

#ifndef STRAMASH_KERNEL_ADDRESS_SPACE_HH
#define STRAMASH_KERNEL_ADDRESS_SPACE_HH

#include <memory>
#include <unordered_map>

#include "stramash/isa/page_table.hh"
#include "stramash/kernel/vma.hh"

namespace stramash
{

/** Outcome of a translation attempt. */
enum class XlateStatus : std::uint8_t {
    Ok,
    NotMapped, ///< no PTE (demand fault)
    NoWrite,   ///< PTE present but read-only (protection fault)
};

struct XlateResult
{
    XlateStatus status = XlateStatus::NotMapped;
    Addr pa = 0;
};

class AddressSpace
{
  public:
    /**
     * @param lockWordsBase guest address of a 128-byte area holding
     *        this space's VMA lock (offset 0) and cross-ISA page
     *        table lock (offset 64); lives in the owning kernel's
     *        data region so remote acquisitions pay remote latency.
     */
    AddressSpace(GuestMemory &mem, const PteFormat &fmt,
                 const PteFormat *foreignFmt, FrameAlloc alloc,
                 FrameFree free, Addr lockWordsBase);

    VmaTree &vmas() { return vmas_; }
    const VmaTree &vmas() const { return vmas_; }
    PageTable &pageTable() { return *pt_; }
    const PageTable &pageTable() const { return *pt_; }

    /** Translate through the TLB, then the page table. */
    XlateResult translate(Addr va, AccessType type);

    /** Map a page and prime nothing (TLB fills on next access). */
    bool mapPage(Addr va, Addr pa, const PteAttrs &attrs);

    /** Unmap and purge the TLB entry. */
    bool unmapPage(Addr va);

    /** Change protections and purge the TLB entry. */
    bool protectPage(Addr va, const PteAttrs &attrs);

    /** Purge one TLB entry (remote PT modifications must call). */
    void tlbInvalidate(Addr va);

    /** Purge the whole TLB. */
    void tlbFlush();

    /** Guest address of the VMA lock word (paper §6.4). */
    Addr vmaLockAddr() const { return lockWordsBase_; }
    /** Guest address of the Stramash-PTL word (paper §6.4). */
    Addr ptlAddr() const { return lockWordsBase_ + 64; }

    std::uint64_t tlbHits() const { return tlbHits_; }
    std::uint64_t tlbMisses() const { return tlbMisses_; }

  private:
    struct TlbEntry
    {
        Addr pa;
        bool writable;
    };

    VmaTree vmas_;
    std::unique_ptr<PageTable> pt_;
    std::unordered_map<Addr, TlbEntry> tlb_;
    Addr lockWordsBase_;
    std::uint64_t tlbHits_ = 0;
    std::uint64_t tlbMisses_ = 0;
};

} // namespace stramash

#endif // STRAMASH_KERNEL_ADDRESS_SPACE_HH
