#include "stramash/kernel/address_space.hh"

namespace stramash
{

AddressSpace::AddressSpace(GuestMemory &mem, const PteFormat &fmt,
                           const PteFormat *foreignFmt, FrameAlloc alloc,
                           FrameFree free, Addr lockWordsBase)
    : pt_(std::make_unique<PageTable>(mem, fmt, std::move(alloc),
                                      std::move(free), foreignFmt)),
      lockWordsBase_(lockWordsBase)
{
}

XlateResult
AddressSpace::translate(Addr va, AccessType type)
{
    Addr vpage = pageBase(va);
    auto it = tlb_.find(vpage);
    if (it != tlb_.end()) {
        ++tlbHits_;
        if (type == AccessType::Store && !it->second.writable)
            return {XlateStatus::NoWrite, it->second.pa + pageOffset(va)};
        return {XlateStatus::Ok, it->second.pa + pageOffset(va)};
    }
    ++tlbMisses_;
    auto w = pt_->walk(vpage);
    if (!w || !w->pte.attrs.present)
        return {XlateStatus::NotMapped, 0};
    tlb_[vpage] = {w->pte.frame, w->pte.attrs.writable};
    if (type == AccessType::Store && !w->pte.attrs.writable)
        return {XlateStatus::NoWrite, w->pte.frame + pageOffset(va)};
    return {XlateStatus::Ok, w->pte.frame + pageOffset(va)};
}

bool
AddressSpace::mapPage(Addr va, Addr pa, const PteAttrs &attrs)
{
    return pt_->map(pageBase(va), pageBase(pa), attrs);
}

bool
AddressSpace::unmapPage(Addr va)
{
    tlbInvalidate(va);
    return pt_->unmap(pageBase(va));
}

bool
AddressSpace::protectPage(Addr va, const PteAttrs &attrs)
{
    tlbInvalidate(va);
    return pt_->protect(pageBase(va), attrs);
}

void
AddressSpace::tlbInvalidate(Addr va)
{
    tlb_.erase(pageBase(va));
}

void
AddressSpace::tlbFlush()
{
    tlb_.clear();
}

} // namespace stramash
