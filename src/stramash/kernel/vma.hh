/**
 * @file
 * Virtual memory areas, kept in a red-black tree exactly as the
 * modelled Linux 5.2 kernel does (paper §6.4: "the VMA lists are
 * still maintained using the RB-tree structure").
 */

#ifndef STRAMASH_KERNEL_VMA_HH
#define STRAMASH_KERNEL_VMA_HH

#include <string>

#include "stramash/isa/pte_format.hh"
#include "stramash/rbtree/rbtree.hh"

namespace stramash
{

/** What backs a VMA. */
enum class VmaKind : std::uint8_t {
    Code,
    Data,
    Heap,
    Stack,
    Anon,
};

const char *vmaKindName(VmaKind k);

/** One virtual memory area [start, end). */
struct Vma
{
    Addr start = 0;
    Addr end = 0;
    PteAttrs prot;
    VmaKind kind = VmaKind::Anon;
    std::string name;

    Addr size() const { return end - start; }
    bool contains(Addr a) const { return a >= start && a < end; }
};

/** Leaf-PTE attributes for a user page mapped under @p vma. */
PteAttrs vmaPageAttrs(const Vma &vma, bool writable);

/** The per-address-space VMA tree. */
class VmaTree
{
  public:
    /**
     * Insert a VMA.
     * @return false on overlap with an existing area.
     */
    bool insert(const Vma &vma);

    /** Remove the VMA starting exactly at @p start. */
    bool remove(Addr start);

    /** The VMA containing @p addr, or nullptr. */
    const Vma *find(Addr addr) const;

    /** Visit all VMAs in ascending order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        tree_.forEach([&](const Addr &, const Vma &v) { fn(v); });
    }

    /**
     * Like find(), but counts the tree nodes visited — the remote
     * VMA walker charges one cache access per visited node.
     */
    const Vma *findCounting(Addr addr, unsigned &nodesVisited) const;

    std::size_t size() const { return tree_.size(); }
    bool checkInvariants() const { return tree_.checkInvariants(); }

  private:
    RbTree<Addr, Vma> tree_; // keyed by start address
};

} // namespace stramash

#endif // STRAMASH_KERNEL_VMA_HH
