#include "stramash/kernel/phys_alloc.hh"

#include "stramash/common/logging.hh"

namespace stramash
{

PhysAllocator::PhysAllocator(std::string name)
    : stats_(std::move(name))
{
}

void
PhysAllocator::addRange(const AddrRange &r)
{
    panic_if(pageOffset(r.start) || pageOffset(r.end),
             "allocator range must be page aligned");
    free_.insert(r);
    managed_.insert(r);
    totalPages_ += r.size() / pageSize;
    stats_.counter("ranges_added") += 1;
}

bool
PhysAllocator::removeRange(const AddrRange &r)
{
    panic_if(pageOffset(r.start) || pageOffset(r.end),
             "allocator range must be page aligned");
    if (!managed_.containsRange(r.start, r.end))
        return false;
    if (!free_.containsRange(r.start, r.end))
        return false; // still-allocated frames inside
    free_.erase(r.start, r.end);
    managed_.erase(r.start, r.end);
    totalPages_ -= r.size() / pageSize;
    stats_.counter("ranges_removed") += 1;
    return true;
}

std::optional<Addr>
PhysAllocator::allocPage()
{
    auto r = free_.allocate(pageSize);
    if (!r)
        return std::nullopt;
    stats_.counter("pages_allocated") += 1;
    return r->start;
}

std::optional<AddrRange>
PhysAllocator::allocContiguous(std::uint64_t count)
{
    auto r = free_.allocate(count * pageSize);
    if (!r)
        return std::nullopt;
    stats_.counter("pages_allocated") += count;
    return r;
}

void
PhysAllocator::freePage(Addr pa)
{
    panic_if(pageOffset(pa), "freePage: not page aligned");
    panic_if(!managed_.contains(pa), "freePage: frame not managed");
    panic_if(free_.contains(pa), "double free of frame 0x", std::hex,
             pa);
    free_.insert(pa, pa + pageSize);
    stats_.counter("pages_freed") += 1;
}

bool
PhysAllocator::isAllocated(Addr pa) const
{
    return managed_.contains(pa) && !free_.contains(pa);
}

bool
PhysAllocator::manages(Addr pa) const
{
    return managed_.contains(pa);
}

std::uint64_t
PhysAllocator::freePages() const
{
    return free_.totalBytes() / pageSize;
}

std::uint64_t
PhysAllocator::usedPages() const
{
    return totalPages_ - freePages();
}

double
PhysAllocator::pressure() const
{
    if (totalPages_ == 0)
        return 1.0;
    return static_cast<double>(usedPages()) /
           static_cast<double>(totalPages_);
}

void
PhysAllocator::reset()
{
    free_.clear();
    managed_.clear();
    totalPages_ = 0;
    stats_.counter("resets") += 1;
}

std::vector<Addr>
PhysAllocator::allocatedIn(const AddrRange &r) const
{
    std::vector<Addr> out;
    for (Addr pa = r.start; pa < r.end; pa += pageSize) {
        if (isAllocated(pa))
            out.push_back(pa);
    }
    return out;
}

} // namespace stramash
