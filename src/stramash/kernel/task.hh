/**
 * @file
 * A migratable task as seen by one kernel instance.
 *
 * Every kernel that has ever hosted the task keeps its own Task
 * record with its own arch-format AddressSpace — Popcorn replicates
 * the address space contents through DSM, Stramash points both page
 * tables at the same physical pages (paper §6.4).
 */

#ifndef STRAMASH_KERNEL_TASK_HH
#define STRAMASH_KERNEL_TASK_HH

#include <memory>

#include "stramash/isa/regfile.hh"
#include "stramash/kernel/address_space.hh"

namespace stramash
{

struct Task
{
    Pid pid = 0;
    /** Kernel where the task was created (the "origin"). */
    NodeId origin = 0;
    /** Arch-format address space on this kernel. */
    std::unique_ptr<AddressSpace> as;
    /** Logical register state, valid while the task is paused here. */
    MigrationState state;
    /** Simple process heap bump pointer (managed by core::App). */
    Addr heapBrk = 0;

    /** Pages this kernel allocated for the task (for teardown and
     *  the "remote kernel releases its own pages" rule, §6.4). */
    std::vector<Addr> ownedPages;

    /** Frames this task maps that belong to *another* kernel's
     *  allocator (fused process migration keeps frames in place);
     *  System::exit routes them home. */
    std::vector<std::pair<NodeId, Addr>> borrowedPages;
};

} // namespace stramash

#endif // STRAMASH_KERNEL_TASK_HH
