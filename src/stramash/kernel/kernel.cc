#include "stramash/kernel/kernel.hh"

#include "stramash/isa/isa.hh"

namespace stramash
{

KernelInstance::KernelInstance(Machine &machine, NodeId node,
                               MessageLayer &msg,
                               const std::vector<AddrRange> &reserved)
    : machine_(machine),
      node_(node),
      isa_(machine.node(node).isa()),
      msg_(msg),
      stats_(std::string("kernel.node") + std::to_string(node)),
      palloc_(std::string("palloc.node") + std::to_string(node))
{
    // Boot-time memory discovery (paper §6.1): read the firmware
    // map, take only the ranges assigned to this kernel, and carve
    // the kernel data region out of the first one.
    const PhysMap &map = machine.physMap();
    auto ranges = map.bootRanges(node);
    fatal_if(ranges.empty(), "node ", node, " booted with no memory");

    IntervalSet usable;
    for (const auto &r : ranges)
        usable.insert(r);
    for (const auto &r : reserved) {
        if (!r.empty())
            usable.erase(r.start, r.end);
    }

    auto data = usable.allocate(dataRegionBytes);
    fatal_if(!data, "node ", node,
             " has too little memory for the kernel data region");
    dataRegion_ = *data;
    dataBump_ = dataRegion_.start;
    dataHashBase_ = dataRegion_.start + dataBumpBytes;
    dataHashSize_ = dataRegionBytes - dataBumpBytes;

    for (const auto &r : usable.extents())
        palloc_.addRange(r);
    bootExtents_ = usable.extents();

    // Fused namespace defaults (paper §6.6); System overwrites them
    // with a synchronised set when the fused design is active.
    namespaces_.hostname = "stramash";
    for (NodeId n = 0; n < machine.nodeCount(); ++n) {
        const Node &nd = machine.node(n);
        for (unsigned c = 0; c < nd.config().numCores; ++c) {
            namespaces_.cpus.push_back(
                {static_cast<CoreId>(n * 64 + c), n, nd.isa()});
        }
    }
}

Addr
KernelInstance::allocDataArea(Addr bytes)
{
    Addr aligned = (bytes + 63) & ~Addr{63};
    panic_if(dataBump_ + aligned > dataRegion_.start + dataBumpBytes,
             "kernel data bump area exhausted");
    Addr out = dataBump_;
    dataBump_ += aligned;
    return out;
}

Addr
KernelInstance::dataAddrFor(std::uint64_t key) const
{
    // splitmix64 finaliser: uniform spread over the hash area.
    std::uint64_t h = key + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    Addr off = (h % (dataHashSize_ / cacheLineSize)) * cacheLineSize;
    return dataHashBase_ + off;
}

Task &
KernelInstance::createTask(Pid pid, NodeId origin)
{
    panic_if(tasks_.count(pid), "task ", pid, " already on node ",
             node_);
    auto t = std::make_unique<Task>();
    t->pid = pid;
    t->origin = origin;

    const IsaDescriptor &desc = isaDescriptor(isa_);
    const PteFormat *foreign = nullptr;
    // Two-ISA machine: the other node's format is the foreign driver.
    for (NodeId n = 0; n < machine_.nodeCount(); ++n) {
        if (n != node_)
            foreign = isaDescriptor(machine_.node(n).isa()).pteFormat;
    }

    Addr lockWords = allocDataArea(128);
    t->as = std::make_unique<AddressSpace>(
        machine_.memory(), *desc.pteFormat, foreign,
        [this] {
            Addr pa = allocUserPage(false);
            // Page-table frames are part of the legitimately-shared
            // set: the remote walkers traverse them.
            if (guard_)
                guard_->allow(node_, {pa, pa + pageSize});
            return pa;
        },
        [this](Addr pa) {
            if (guard_)
                guard_->revoke(node_, {pa, pa + pageSize});
            freeUserPage(pa);
        }, lockWords);

    auto &ref = *t;
    tasks_.emplace(pid, std::move(t));
    stats_.counter("tasks_created") += 1;
    return ref;
}

Task *
KernelInstance::findTask(Pid pid)
{
    auto it = tasks_.find(pid);
    return it == tasks_.end() ? nullptr : it->second.get();
}

Task &
KernelInstance::task(Pid pid)
{
    Task *t = findTask(pid);
    panic_if(!t, "no task ", pid, " on node ", node_);
    return *t;
}

void
KernelInstance::destroyTask(Pid pid)
{
    Task *t = findTask(pid);
    panic_if(!t, "destroying unknown task ", pid);
    if (faultHandler_)
        faultHandler_->onTaskExit(*this, *t);
    // Release pages this kernel allocated for the task (§6.4: "the
    // remote kernel ... takes responsibility for ... releasing the
    // page").
    for (Addr pa : t->ownedPages)
        freeUserPage(pa);
    t->ownedPages.clear();
    tasks_.erase(pid);
    stats_.counter("tasks_destroyed") += 1;
}

void
KernelInstance::forEachTask(const std::function<void(Task &)> &fn)
{
    for (auto &[pid, t] : tasks_)
        fn(*t);
}

void
KernelInstance::resetForRejoin()
{
    // Task records go without the policy exit hooks: this kernel
    // crashed, and crash recovery has already settled whatever shared
    // state referenced these tasks. The address-space destructors
    // still run their frame callbacks (guard revocations), which is
    // harmless against the pre-reset allocator state.
    tasks_.clear();
    futexes_.clear();

    // A rebooted kernel rediscovers its memory from the firmware map:
    // exactly the boot-time extents, regardless of what the global
    // allocator had onlined or offlined before the crash.
    palloc_.reset();
    for (const auto &r : bootExtents_)
        palloc_.addRange(r);
    dataBump_ = dataRegion_.start;

    stats_.counter("rejoins") += 1;
    machine_.tracer().instant(TraceCategory::Chaos, "crash.rejoin",
                              node_, 0, node_, 0);
}

Addr
KernelInstance::allocUserPage(bool zero)
{
    if (lowMem_ && palloc_.pressure() > 0.70)
        lowMem_(*this);
    auto pa = palloc_.allocPage();
    if (!pa && lowMem_ && lowMem_(*this))
        pa = palloc_.allocPage();
    panic_if(!pa, "node ", node_, " out of physical memory");
    if (zero) {
        machine_.memory().zero(*pa, pageSize);
        machine_.streamAccess(node_, AccessType::Store, *pa,
                              pageSize);
    }
    return *pa;
}

void
KernelInstance::freeUserPage(Addr pa)
{
    palloc_.freePage(pa);
}

bool
KernelInstance::handleLocalAnonFault(Task &t, Addr va, AccessType type)
{
    (void)type;
    const Vma *vma = t.as->vmas().find(va);
    if (!vma)
        return false;
    Addr pa = allocUserPage(true);
    t.ownedPages.push_back(pa);
    PteAttrs attrs = vma->prot;
    attrs.present = true;
    attrs.accessed = true;
    bool ok = t.as->mapPage(va, pa, attrs);
    panic_if(!ok, "local fault raced an existing mapping");
    stats_.counter("anon_faults") += 1;
    machine_.tracer().instant(TraceCategory::Fault, "fault.local",
                              node_, t.pid, pageBase(va), pa);
    return true;
}

Addr
KernelInstance::resolve(Task &t, Addr va, AccessType type)
{
    for (int attempt = 0; attempt < 8; ++attempt) {
        XlateResult x = t.as->translate(va, type);
        if (x.status == XlateStatus::Ok)
            return x.pa;
        panic_if(!faultHandler_, "fault with no handler installed");
        stats_.counter("page_faults") += 1;
        // The span brackets the whole design-specific fault path —
        // everything it triggers (remote walks, DSM messages, IPIs)
        // nests inside it on this node's track.
        STRAMASH_TRACE_SPAN(machine_.tracer(), TraceCategory::Fault,
                            "fault.handle", node_, t.pid, va,
                            static_cast<std::uint64_t>(type));
        faultHandler_->handleFault(*this, t, va, x.status, type);
    }
    panic("persistent fault at va 0x", std::hex, va, " on node ",
          std::dec, node_);
}

void
KernelInstance::userRead(Task &t, Addr va, void *dst, std::size_t size)
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (size > 0) {
        std::size_t chunk = std::min<std::size_t>(
            size, pageSize - pageOffset(va));
        Addr pa = resolve(t, va, AccessType::Load);
        machine_.dataAccess(node_, AccessType::Load, pa,
                            static_cast<unsigned>(chunk));
        machine_.memory().read(pa, out, chunk);
        out += chunk;
        va += chunk;
        size -= chunk;
    }
}

void
KernelInstance::userWrite(Task &t, Addr va, const void *src,
                          std::size_t size)
{
    auto *in = static_cast<const std::uint8_t *>(src);
    while (size > 0) {
        std::size_t chunk = std::min<std::size_t>(
            size, pageSize - pageOffset(va));
        Addr pa = resolve(t, va, AccessType::Store);
        machine_.dataAccess(node_, AccessType::Store, pa,
                            static_cast<unsigned>(chunk));
        machine_.memory().write(pa, in, chunk);
        in += chunk;
        va += chunk;
        size -= chunk;
    }
}

std::uint32_t
KernelInstance::userCas(Task &t, Addr va, std::uint32_t expected,
                        std::uint32_t desired, bool &success)
{
    Addr pa = resolve(t, va, AccessType::Store);
    // A CAS needs exclusive ownership regardless of outcome: charge
    // a store access.
    machine_.dataAccess(node_, AccessType::Store, pa, 4);
    std::uint32_t old = machine_.memory().load<std::uint32_t>(pa);
    success = old == expected;
    if (success)
        machine_.memory().store<std::uint32_t>(pa, desired);
    return old;
}

std::uint32_t
KernelInstance::userFetchAdd(Task &t, Addr va, std::uint32_t delta)
{
    Addr pa = resolve(t, va, AccessType::Store);
    machine_.dataAccess(node_, AccessType::Store, pa, 4);
    std::uint32_t old = machine_.memory().load<std::uint32_t>(pa);
    machine_.memory().store<std::uint32_t>(pa, old + delta);
    return old;
}

const char *
guardModeName(GuardMode m)
{
    switch (m) {
      case GuardMode::Off: return "off";
      case GuardMode::Audit: return "audit";
      case GuardMode::Enforce: return "enforce";
    }
    panic("unknown GuardMode");
}

void
KernelInstance::attachGuard(RemoteAccessGuard *guard)
{
    guard_ = guard;
    if (!guard_)
        return;
    // The shared set: the whole kernel data region (lock words,
    // hashed structures, mailbox). Page-table frames join as they
    // are allocated (createTask's frame callbacks).
    guard_->allow(node_, dataRegion_);
}

Cycles
KernelInstance::remoteAccess(NodeId owner, AccessType type, Addr addr,
                             unsigned size)
{
    if (guard_)
        guard_->checkAccess(node_, owner, addr, size);
    return machine_.dataAccess(node_, type, addr, size);
}

void
KernelInstance::registerMsgHandler(
    MsgType type, std::function<void(const Message &)> fn)
{
    msgHandlers_[type] = std::move(fn);
}

void
KernelInstance::pump(const Message &msg)
{
    auto it = msgHandlers_.find(msg.type);
    panic_if(it == msgHandlers_.end(), "node ", node_,
             ": no handler for ", msgTypeName(msg.type));
    it->second(msg);
}

} // namespace stramash
