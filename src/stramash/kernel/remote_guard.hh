/**
 * @file
 * Remote kernel-memory access guard — the paper's future-work
 * security mechanism (§5 "kernel instances should share only
 * required data structures; everything else should be in private
 * memory or protected by hardware enforcement", §6 "we did not find
 * an efficient method to limit the kernel-space remotely accessible
 * memory between ISAs ... future work").
 *
 * Each kernel registers the extents of its memory that the *other*
 * kernels are allowed to touch through the fused accessor functions:
 * the kernel data region (lock words, futex buckets, VMA nodes, the
 * migration mailbox) and the page-table frames the remote walkers
 * traverse. Every cross-kernel access the fused design performs is
 * routed through KernelInstance::remoteAccess(), which consults the
 * guard:
 *
 *   Off     — no checking (the paper's prototype);
 *   Audit   — violations are counted but allowed;
 *   Enforce — violations panic (the MPU/capability behaviour the
 *             paper postulates).
 */

#ifndef STRAMASH_KERNEL_REMOTE_GUARD_HH
#define STRAMASH_KERNEL_REMOTE_GUARD_HH

#include <map>

#include "stramash/common/addr_range.hh"
#include "stramash/common/stats.hh"

namespace stramash
{

enum class GuardMode : std::uint8_t {
    Off,
    Audit,
    Enforce,
};

const char *guardModeName(GuardMode m);

class RemoteAccessGuard
{
  public:
    explicit RemoteAccessGuard(GuardMode mode = GuardMode::Audit)
        : mode_(mode), stats_("remote_guard")
    {
    }

    GuardMode mode() const { return mode_; }
    void setMode(GuardMode m) { mode_ = m; }

    /** Owner @p node exposes [start, end) to remote kernels. */
    void
    allow(NodeId node, const AddrRange &r)
    {
        allowed_[node].insert(r.start, r.end);
    }

    /** Withdraw an exposed extent (e.g. a freed page-table frame). */
    void
    revoke(NodeId node, const AddrRange &r)
    {
        auto it = allowed_.find(node);
        if (it != allowed_.end())
            it->second.erase(r.start, r.end);
    }

    /** True if a remote access to @p node's address is permitted. */
    bool
    permitted(NodeId node, Addr addr, unsigned size) const
    {
        auto it = allowed_.find(node);
        if (it == allowed_.end())
            return false;
        return it->second.containsRange(addr, addr + size);
    }

    /**
     * Consult the guard for an access by @p accessor to memory owned
     * by @p owner. Returns true when the access may proceed (always,
     * except Enforce-mode violations, which panic before returning).
     */
    bool
    checkAccess(NodeId accessor, NodeId owner, Addr addr,
                unsigned size)
    {
        if (mode_ == GuardMode::Off || accessor == owner)
            return true;
        if (permitted(owner, addr, size)) {
            stats_.counter("checked") += 1;
            return true;
        }
        stats_.counter("violations") += 1;
        panic_if(mode_ == GuardMode::Enforce,
                 "remote kernel-memory access violation: node ",
                 accessor, " touched node ", owner,
                 "'s private memory at 0x", std::hex, addr);
        return true;
    }

    std::uint64_t violations() const { return stats_.value("violations"); }
    std::uint64_t checked() const { return stats_.value("checked"); }
    const StatGroup &stats() const { return stats_; }

    /** Bytes node @p n currently exposes. */
    Addr
    exposedBytes(NodeId n) const
    {
        auto it = allowed_.find(n);
        return it == allowed_.end() ? 0 : it->second.totalBytes();
    }

  private:
    GuardMode mode_;
    StatGroup stats_;
    std::map<NodeId, IntervalSet> allowed_;
};

} // namespace stramash

#endif // STRAMASH_KERNEL_REMOTE_GUARD_HH
