/**
 * @file
 * The futex wait-queue table (paper §6.5).
 *
 * The table structure is shared by both OS designs; the *policies*
 * differ: Popcorn keeps all futex instances at the origin kernel and
 * reaches them by messaging, Stramash lets the remote kernel access
 * the origin's futex list directly through shared memory, sending
 * only a wake-up IPI when the woken thread waits on the other side.
 */

#ifndef STRAMASH_KERNEL_FUTEX_HH
#define STRAMASH_KERNEL_FUTEX_HH

#include <deque>
#include <iterator>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stramash/common/types.hh"

namespace stramash
{

/** One blocked waiter. */
struct FutexWaiter
{
    NodeId node;
    Pid pid;
};

/** Wait queues keyed by the futex word's user virtual address. */
class FutexTable
{
  public:
    /** Append a waiter to the queue for @p uaddr. */
    void
    enqueue(Addr uaddr, const FutexWaiter &w)
    {
        queues_[uaddr].push_back(w);
    }

    /**
     * Pop up to @p count waiters (FUTEX_WAKE semantics).
     * @return the woken waiters.
     */
    std::vector<FutexWaiter>
    wake(Addr uaddr, unsigned count)
    {
        std::vector<FutexWaiter> out;
        auto it = queues_.find(uaddr);
        if (it == queues_.end())
            return out;
        auto &q = it->second;
        while (!q.empty() && out.size() < count) {
            out.push_back(q.front());
            q.pop_front();
        }
        if (q.empty())
            queues_.erase(it);
        return out;
    }

    /** Number of waiters parked on @p uaddr. */
    std::size_t
    waiters(Addr uaddr) const
    {
        auto it = queues_.find(uaddr);
        return it == queues_.end() ? 0 : it->second.size();
    }

    std::size_t activeFutexes() const { return queues_.size(); }

    // ---- crash-recovery sweeps (robust-futex semantics) ----

    /**
     * Drop every waiter whose thread ran on @p node — a dead node's
     * waiters no longer exist and must not absorb future wakes.
     * @return the number of waiters removed.
     */
    std::size_t
    removeWaitersOf(NodeId node)
    {
        std::size_t removed = 0;
        for (auto it = queues_.begin(); it != queues_.end();) {
            auto &q = it->second;
            for (auto w = q.begin(); w != q.end();) {
                if (w->node == node) {
                    w = q.erase(w);
                    ++removed;
                } else {
                    ++w;
                }
            }
            it = q.empty() ? queues_.erase(it) : std::next(it);
        }
        return removed;
    }

    /**
     * Empty the whole table, returning every (uaddr, waiter) pair in
     * queue order. The recovery sweep over a dead kernel's table uses
     * this: each surviving waiter must be woken exactly once, each
     * dead waiter reaped.
     */
    std::vector<std::pair<Addr, FutexWaiter>>
    drainAll()
    {
        std::vector<std::pair<Addr, FutexWaiter>> out;
        for (auto &[uaddr, q] : queues_) {
            for (const auto &w : q)
                out.emplace_back(uaddr, w);
        }
        queues_.clear();
        return out;
    }

    /** Forget everything (rejoin reboot). */
    void clear() { queues_.clear(); }

  private:
    std::unordered_map<Addr, std::deque<FutexWaiter>> queues_;
};

} // namespace stramash

#endif // STRAMASH_KERNEL_FUTEX_HH
