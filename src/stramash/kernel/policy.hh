/**
 * @file
 * The OS-design policy interfaces. The kernel core is design-neutral;
 * dsm/ plugs in the Popcorn (multiple-kernel, shared-nothing)
 * policies and fused/ plugs in the Stramash (fused-kernel,
 * shared-mostly) policies.
 */

#ifndef STRAMASH_KERNEL_POLICY_HH
#define STRAMASH_KERNEL_POLICY_HH

#include <functional>

#include "stramash/kernel/address_space.hh"
#include "stramash/kernel/task.hh"

namespace stramash
{

class KernelInstance;

/** Page-fault handling policy. */
class FaultHandler
{
  public:
    virtual ~FaultHandler() = default;

    /**
     * Resolve a fault raised on @p kernel by @p task at @p va.
     * On return a mapping usable for @p type must exist (the access
     * is retried and panics if it faults persistently).
     */
    virtual void handleFault(KernelInstance &kernel, Task &task,
                             Addr va, XlateStatus kind,
                             AccessType type) = 0;

    /** Task teardown hook (page release discipline differs, §6.4). */
    virtual void onTaskExit(KernelInstance &kernel, Task &task) = 0;
};

/** Futex policy (paper §6.5). */
class FutexPolicy
{
  public:
    virtual ~FutexPolicy() = default;

    /**
     * Block @p task (running on @p kernel) on the futex at @p uaddr
     * if the futex word still holds @p expected.
     * @return true if the task blocked (and was later woken), false
     *         if the value had already changed.
     */
    virtual bool wait(KernelInstance &kernel, Task &task, Addr uaddr,
                      std::uint32_t expected) = 0;

    /** Wake up to @p count waiters of the futex at @p uaddr. */
    virtual unsigned wake(KernelInstance &kernel, Task &task,
                          Addr uaddr, unsigned count) = 0;
};

/** Thread-migration policy. */
class MigrationPolicy
{
  public:
    virtual ~MigrationPolicy() = default;

    /** Move the task to @p dest; returns when it is runnable there. */
    virtual void migrate(Pid pid, NodeId dest) = 0;

    /**
     * Move the *whole process* to @p dest, which becomes its new
     * origin; the source kernel keeps no state (§5).
     */
    virtual void migrateProcess(Pid pid, NodeId dest) = 0;

    /** Messages and pages replicated since counters were reset
     *  (Table 3 bookkeeping lives with the policy). */
    virtual std::uint64_t replicatedPages() const = 0;
    virtual void resetCounters() = 0;

    // ---- thread-location bookkeeping ----
    // Both designs track where each task's thread currently runs;
    // crash recovery needs to read and rewrite that record through
    // the common interface (re-home a task whose node died, forget a
    // reaped one).

    /** Node the task's thread currently runs on. */
    virtual NodeId currentNode(Pid pid) const = 0;

    /** Rewrite the location record without moving any state. */
    virtual void setCurrentNode(Pid pid, NodeId node) = 0;

    /** Drop the location record (task reaped). */
    virtual void forgetTask(Pid pid) = 0;

    /** Visit every tracked (pid, current node) pair. */
    virtual void forEachTask(
        const std::function<void(Pid, NodeId)> &fn) const = 0;
};

} // namespace stramash

#endif // STRAMASH_KERNEL_POLICY_HH
