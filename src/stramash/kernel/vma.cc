#include "stramash/kernel/vma.hh"

namespace stramash
{

const char *
vmaKindName(VmaKind k)
{
    switch (k) {
      case VmaKind::Code: return "code";
      case VmaKind::Data: return "data";
      case VmaKind::Heap: return "heap";
      case VmaKind::Stack: return "stack";
      case VmaKind::Anon: return "anon";
    }
    panic("unknown VmaKind");
}

PteAttrs
vmaPageAttrs(const Vma &vma, bool writable)
{
    PteAttrs a = vma.prot;
    a.present = true;
    a.accessed = true;
    a.writable = writable && vma.prot.writable;
    a.dirty = a.writable;
    return a;
}

bool
VmaTree::insert(const Vma &vma)
{
    panic_if(vma.start >= vma.end, "empty VMA");
    panic_if(pageOffset(vma.start) || pageOffset(vma.end),
             "VMA must be page aligned");
    // Overlap check against the nearest neighbours.
    auto *pred = tree_.floor(vma.start);
    if (pred && pred->value.end > vma.start)
        return false;
    auto *succ = tree_.lowerBound(vma.start);
    if (succ && succ->value.start < vma.end)
        return false;
    auto [node, inserted] = tree_.insert(vma.start, vma);
    (void)node;
    return inserted;
}

bool
VmaTree::remove(Addr start)
{
    return tree_.eraseKey(start);
}

const Vma *
VmaTree::find(Addr addr) const
{
    auto *n = tree_.floor(addr);
    if (!n)
        return nullptr;
    return n->value.contains(addr) ? &n->value : nullptr;
}

const Vma *
VmaTree::findCounting(Addr addr, unsigned &nodesVisited) const
{
    // Reproduce floor()'s descent, counting visited nodes so the
    // remote walker can charge per-node access costs.
    nodesVisited = 0;
    const Vma *best = nullptr;
    // Re-walk using find() semantics over the tree interface: we
    // exploit forEach-free navigation via lowerBound/floor would not
    // count, so descend manually through lowerBound on successive
    // keys. Simplest faithful approach: binary descent emulation.
    // The RbTree interface hides nodes' children, so emulate with
    // floor() plus a log2(size) visit estimate.
    auto *n = tree_.floor(addr);
    std::size_t sz = tree_.size();
    unsigned depth = 1;
    while (sz > 1) {
        sz >>= 1;
        ++depth;
    }
    nodesVisited = depth;
    if (n && n->value.contains(addr))
        best = &n->value;
    return best;
}

} // namespace stramash
