/**
 * @file
 * One kernel instance: the design-neutral core each OS policy builds
 * on. Owns the node's physical allocator, its kernel data region in
 * guest memory, the task table, the futex table, and the user memory
 * access path (translate -> fault -> cache-charged data access).
 */

#ifndef STRAMASH_KERNEL_KERNEL_HH
#define STRAMASH_KERNEL_KERNEL_HH

#include <functional>
#include <map>

#include "stramash/kernel/futex.hh"
#include "stramash/kernel/namespaces.hh"
#include "stramash/kernel/phys_alloc.hh"
#include "stramash/kernel/policy.hh"
#include "stramash/kernel/remote_guard.hh"
#include "stramash/msg/transport.hh"

namespace stramash
{

class KernelInstance
{
  public:
    /**
     * @param reserved guest ranges the kernel must not allocate from
     *        (e.g. the messaging area).
     */
    KernelInstance(Machine &machine, NodeId node, MessageLayer &msg,
                   const std::vector<AddrRange> &reserved = {});

    KernelInstance(const KernelInstance &) = delete;
    KernelInstance &operator=(const KernelInstance &) = delete;

    NodeId nodeId() const { return node_; }
    IsaType isa() const { return isa_; }
    Machine &machine() { return machine_; }
    MessageLayer &msg() { return msg_; }
    PhysAllocator &palloc() { return palloc_; }
    FutexTable &futexTable() { return futexes_; }
    NamespaceSet &namespaces() { return namespaces_; }
    StatGroup &stats() { return stats_; }

    // ------------------------------------------------------------
    // Kernel data region: guest addresses for kernel structures, so
    // remote access to them is charged real (possibly remote) memory
    // latency.
    // ------------------------------------------------------------

    /** Bump-allocate a guest area for a kernel structure. */
    Addr allocDataArea(Addr bytes);

    /** Stable pseudo-address for a keyed structure (hash table
     *  buckets, futex queue heads, VMA nodes...). */
    Addr dataAddrFor(std::uint64_t key) const;

    /** Start of this kernel's data region. */
    Addr dataRegionBase() const { return dataRegion_.start; }

    // ------------------------------------------------------------
    // Task management
    // ------------------------------------------------------------

    /** Create this kernel's record (and address space) for a task. */
    Task &createTask(Pid pid, NodeId origin);

    Task *findTask(Pid pid);
    Task &task(Pid pid);
    bool hasTask(Pid pid) const { return tasks_.count(pid) != 0; }

    /** Tear down the task on this kernel (policy hook runs first). */
    void destroyTask(Pid pid);

    /** Visit every task record this kernel holds. */
    void forEachTask(const std::function<void(Task &)> &fn);

    /**
     * Reboot this kernel instance for the hot-plug rejoin path: every
     * task record, futex queue and allocation is discarded and the
     * boot-time memory layout restored, as a freshly booted kernel
     * would rediscover it from the firmware map. Policy exit hooks do
     * NOT run — the node crashed; recovery already dealt with shared
     * state.
     */
    void resetForRejoin();

    // ------------------------------------------------------------
    // Physical pages
    // ------------------------------------------------------------

    /**
     * Allocate a user page from this kernel's memory; invokes the
     * low-memory hook (global allocator) under pressure.
     * @param zero when true, the page is zeroed and the zeroing
     *        stores are charged to this node.
     */
    Addr allocUserPage(bool zero);
    void freeUserPage(Addr pa);

    /** Low-memory hook: invoked when pressure crosses the 70%
     *  threshold or allocation fails (paper §6.3). Returns true if
     *  more memory was made available. */
    void
    setLowMemoryHook(std::function<bool(KernelInstance &)> hook)
    {
        lowMem_ = std::move(hook);
    }

    // ------------------------------------------------------------
    // User memory access (the workload-facing path)
    // ------------------------------------------------------------

    /** Read user memory, faulting pages in as needed. */
    void userRead(Task &t, Addr va, void *dst, std::size_t size);

    /** Write user memory, faulting pages in as needed. */
    void userWrite(Task &t, Addr va, const void *src, std::size_t size);

    template <typename T>
    T
    userLoad(Task &t, Addr va)
    {
        T v;
        userRead(t, va, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    userStore(Task &t, Addr va, const T &v)
    {
        userWrite(t, va, &v, sizeof(T));
    }

    /**
     * Atomic read-modify-write on a user word (LSE-style CAS,
     * paper §6.5). Charges a store access (exclusive ownership).
     * @return the old value.
     */
    std::uint32_t userCas(Task &t, Addr va, std::uint32_t expected,
                          std::uint32_t desired, bool &success);

    /** Atomic fetch-add on a user word. */
    std::uint32_t userFetchAdd(Task &t, Addr va, std::uint32_t delta);

    // ------------------------------------------------------------
    // Policies and messaging
    // ------------------------------------------------------------

    void setFaultHandler(FaultHandler *h) { faultHandler_ = h; }
    FaultHandler *faultHandler() { return faultHandler_; }

    /**
     * Attach the remote kernel-memory guard and expose this kernel's
     * legitimately-shared extents (the kernel data region; page-table
     * frames register dynamically as they are allocated).
     */
    void attachGuard(RemoteAccessGuard *guard);
    RemoteAccessGuard *guard() { return guard_; }

    /**
     * A *cross-kernel* access to memory owned by @p owner, performed
     * by this kernel's fused accessor functions (remote walkers, lock
     * words, futex buckets, the migration mailbox). Consults the
     * guard, then charges the access like any other.
     */
    Cycles remoteAccess(NodeId owner, AccessType type, Addr addr,
                        unsigned size);

    /** Register a handler for one message type. */
    void registerMsgHandler(MsgType type,
                            std::function<void(const Message &)> fn);

    /** The master pump System registers with the message layer. */
    void pump(const Message &msg);

    /**
     * Design-neutral local anonymous fault: valid when this kernel
     * is the task's origin (or fully owns the page). Allocates and
     * maps a zeroed page if @p va falls in a mapped VMA.
     * @return false if @p va is outside every VMA (segfault).
     */
    bool handleLocalAnonFault(Task &t, Addr va, AccessType type);

    /** Resolve va -> pa, invoking the fault handler as needed. */
    Addr resolve(Task &t, Addr va, AccessType type);

  private:
    Machine &machine_;
    NodeId node_;
    IsaType isa_;
    MessageLayer &msg_;
    StatGroup stats_;
    PhysAllocator palloc_;
    FutexTable futexes_;
    NamespaceSet namespaces_;
    std::map<Pid, std::unique_ptr<Task>> tasks_;
    FaultHandler *faultHandler_ = nullptr;
    RemoteAccessGuard *guard_ = nullptr;
    std::function<bool(KernelInstance &)> lowMem_;
    std::map<MsgType, std::function<void(const Message &)>> msgHandlers_;

    AddrRange dataRegion_{0, 0};
    Addr dataBump_ = 0;
    Addr dataHashBase_ = 0;
    Addr dataHashSize_ = 0;
    /** The allocator ranges discovered at boot (after the data-region
     *  carve) — what a rejoining kernel re-discovers. */
    std::vector<AddrRange> bootExtents_;

    /** Size of the per-kernel data region carved at boot. */
    static constexpr Addr dataRegionBytes = 64 * 1024 * 1024;
    /** Leading part of the region served by allocDataArea(). */
    static constexpr Addr dataBumpBytes = 8 * 1024 * 1024;
};

} // namespace stramash

#endif // STRAMASH_KERNEL_KERNEL_HH
