/**
 * @file
 * Per-kernel physical page allocator.
 *
 * Each kernel instance boots with the ranges the firmware tables
 * assign it (paper §6.1) and allocates 4 KiB frames from a free-extent
 * set. The fused global memory allocator (fused/global_alloc) grows
 * and shrinks this pool at block granularity via addRange() and
 * removeRange(), mirroring Linux memory hot-plug online/offline.
 */

#ifndef STRAMASH_KERNEL_PHYS_ALLOC_HH
#define STRAMASH_KERNEL_PHYS_ALLOC_HH

#include <optional>

#include "stramash/common/addr_range.hh"
#include "stramash/common/stats.hh"
#include "stramash/common/types.hh"

namespace stramash
{

class PhysAllocator
{
  public:
    explicit PhysAllocator(std::string name);

    /** Donate a range (boot memory or an onlined block). */
    void addRange(const AddrRange &r);

    /**
     * Withdraw a range (block offline). Every frame in the range
     * must be free — evacuation is the caller's job.
     * @return false if any frame in the range is still allocated.
     */
    bool removeRange(const AddrRange &r);

    /** Allocate one zange-aligned frame. nullopt when exhausted. */
    std::optional<Addr> allocPage();

    /** Allocate @p count physically contiguous frames. */
    std::optional<AddrRange> allocContiguous(std::uint64_t count);

    /** Return a frame. */
    void freePage(Addr pa);

    /** True if @p pa lies in managed memory and is allocated. */
    bool isAllocated(Addr pa) const;

    /** True if @p pa lies in a managed range at all. */
    bool manages(Addr pa) const;

    std::uint64_t totalPages() const { return totalPages_; }
    std::uint64_t freePages() const;
    std::uint64_t usedPages() const;

    /** Fraction of managed frames in use (global allocator's 70%
     *  pressure trigger, paper §6.3). */
    double pressure() const;

    /** Allocated frames inside @p r (evacuation worklist). */
    std::vector<Addr> allocatedIn(const AddrRange &r) const;

    /**
     * Forget everything — managed ranges, allocations, the lot. The
     * rejoin path uses this to model a rebooted kernel rediscovering
     * its memory from the firmware map (the caller re-adds the boot
     * ranges). Counters survive; they describe history, not state.
     */
    void reset();

    StatGroup &stats() { return stats_; }

  private:
    StatGroup stats_;
    IntervalSet free_;
    IntervalSet managed_;
    std::uint64_t totalPages_ = 0;
};

} // namespace stramash

#endif // STRAMASH_KERNEL_PHYS_ALLOC_HH
