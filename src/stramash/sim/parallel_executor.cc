#include "stramash/sim/parallel_executor.hh"

#include <algorithm>

namespace stramash
{

HostExecutor::HostExecutor(Machine &machine, unsigned threads)
    : machine_(machine),
      threads_(std::clamp<unsigned>(
          threads, 1, static_cast<unsigned>(machine.nodeCount()))),
      barrier_(threads_)
{
    panic_if(machine.nodeCount() > 64,
             "parallel host sessions support at most 64 nodes");
    lanes_.resize(threads_);
    for (unsigned l = 0; l < threads_; ++l)
        lanes_[l].ctx.lane = l;
    for (NodeId n = 0; n < machine.nodeCount(); ++n) {
        Lane &lane = lanes_[laneOf(n)];
        lane.nodes.push_back(n);
        lane.ctx.ownedMask |= std::uint64_t{1} << n;
    }
    workers_.reserve(threads_ - 1);
    for (unsigned l = 1; l < threads_; ++l)
        workers_.emplace_back([this, l] { workerMain(l); });
}

HostExecutor::~HostExecutor()
{
    {
        std::lock_guard<std::mutex> g(poolMu_);
        shutdown_ = true;
    }
    poolCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
HostExecutor::runParallelJob(const std::function<void(unsigned)> &body)
{
    if (threads_ == 1) {
        body(0);
        return;
    }
    {
        std::lock_guard<std::mutex> g(poolMu_);
        job_ = body;
        jobDone_ = 0;
        ++jobGen_;
    }
    poolCv_.notify_all();
    body(0);
    std::unique_lock<std::mutex> lk(poolMu_);
    doneCv_.wait(lk, [this] { return jobDone_ == threads_ - 1; });
    job_ = nullptr;
}

void
HostExecutor::workerMain(unsigned lane)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::function<void(unsigned)> body;
        {
            std::unique_lock<std::mutex> lk(poolMu_);
            poolCv_.wait(lk,
                         [&] { return shutdown_ || jobGen_ != seen; });
            if (shutdown_)
                return;
            seen = jobGen_;
            body = job_;
        }
        body(lane);
        {
            std::lock_guard<std::mutex> g(poolMu_);
            ++jobDone_;
        }
        doneCv_.notify_one();
    }
}

void
HostExecutor::run(EpochDriver &driver)
{
    machine_.beginParallelSession(threads_);
    lookahead_ = machine_.minCrossNodeLookahead();
    epoch_ = 0;
    epochsRun_ = 0;
    stop_ = false;
    for (Lane &l : lanes_) {
        l.ctx.charges.clear();
        l.ctx.events.clear();
        l.ctx.nextSeq = 0;
        l.inCharges.clear();
        l.held.clear();
        l.due.clear();
        l.pending = false;
    }
    // First window: cover the earliest activity the driver knows of.
    Cycles minNext = kNoPendingEvent;
    for (NodeId n = 0; n < machine_.nodeCount(); ++n)
        minNext = std::min(minNext, driver.nextEventAt(n));
    windowEnd_ =
        (minNext == kNoPendingEvent ? Cycles(0) : minNext) + lookahead_;

    runParallelJob([this, &driver](unsigned lane) {
        for (;;) {
            driverEpochBody(driver, lane);
            barrier_.wait();
            // Redistribution runs on every lane: each pulls its own
            // inbound records from all outboxes. The serial barrier
            // work that remains is O(nodes + lanes), so the epoch's
            // critical path stays parallel even when most requests
            // stage cross-lane charges.
            pullInbound(lane);
            barrier_.wait();
            if (lane == 0)
                stop_ = driverBarrier(driver);
            barrier_.wait();
            if (stop_)
                return;
        }
    });
    machine_.endParallelSession();
}

void
HostExecutor::pullInbound(unsigned lane)
{
    Lane &me = lanes_[lane];
    // Source lanes ascending, FIFO within each: the application
    // order the sequential reference produces. Outboxes are
    // read-only here (every lane scans all of them); owners clear
    // them at the top of the next epoch body.
    for (unsigned src = 0; src < threads_; ++src) {
        for (const StagedCharge &c : lanes_[src].ctx.charges)
            if (laneOf(c.dst) == lane)
                me.inCharges.push_back(c);
        for (const StagedEvent &ev : lanes_[src].ctx.events)
            if (laneOf(ev.dst) == lane)
                me.held.push_back(ev);
    }
}

void
HostExecutor::driverEpochBody(EpochDriver &driver, unsigned lane)
{
    Lane &l = lanes_[lane];
    // Everyone has consumed last epoch's outbox (pullInbound); make
    // room before deliver/step stage fresh records.
    l.ctx.charges.clear();
    l.ctx.events.clear();
    LaneScope scope(l.ctx);

    // Inbound charges were queued in (src lane asc, FIFO) order.
    for (const StagedCharge &c : l.inCharges)
        machine_.applyStagedCharge(c);
    l.inCharges.clear();

    // Events whose ready time the window now covers become due.
    l.due.clear();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < l.held.size(); ++i) {
        if (l.held[i].ready < windowEnd_)
            l.due.push_back(l.held[i]);
        else
            l.held[keep++] = l.held[i];
    }
    l.held.resize(keep);
    std::sort(l.due.begin(), l.due.end(),
              [](const StagedEvent &a, const StagedEvent &b) {
                  if (a.ready != b.ready)
                      return a.ready < b.ready;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.seq < b.seq;
              });
    for (const StagedEvent &ev : l.due)
        driver.deliver(ev.dst, ev);

    EpochCtx ctx{epoch_, windowEnd_, lane};
    l.pending = false;
    for (NodeId n : l.nodes)
        l.pending = driver.step(n, ctx) || l.pending;
}

bool
HostExecutor::driverBarrier(EpochDriver &driver)
{
    machine_.pollCrashSites();
    driver.atBarrier(epoch_);
    machine_.fenceParallelGuards();
    ++epochsRun_;

    bool anyWork = false;
    Cycles minNext = kNoPendingEvent;
    for (const Lane &l : lanes_) {
        anyWork = anyWork || l.pending || !l.inCharges.empty();
        for (const StagedEvent &ev : l.held) {
            anyWork = true;
            minNext = std::min(minNext, ev.ready);
        }
    }
    for (NodeId n = 0; n < machine_.nodeCount(); ++n)
        minNext = std::min(minNext, driver.nextEventAt(n));
    if (!anyWork && minNext == kNoPendingEvent)
        return true;

    // CMB-style adaptive horizon: jump over globally idle stretches,
    // then extend by the conservative lookahead. Any send that will
    // happen inside the next window executes at >= minNext, so its
    // effect lands at >= minNext + W = the new horizon — never late.
    windowEnd_ = (minNext == kNoPendingEvent
                      ? windowEnd_
                      : std::max(windowEnd_, minNext)) +
                 lookahead_;
    ++epoch_;
    return false;
}

void
HostExecutor::runChain(const std::vector<std::function<void()>> &items)
{
    machine_.beginParallelSession(threads_);
    lookahead_ = machine_.minCrossNodeLookahead();
    epochsRun_ = 0;
    std::uint64_t all =
        machine_.nodeCount() >= 64
            ? ~std::uint64_t{0}
            : (std::uint64_t{1} << machine_.nodeCount()) - 1;

    runParallelJob([this, &items, all](unsigned lane) {
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i % threads_ == lane) {
                // The item owns every node: nothing stages, but the
                // machine is handed across host threads item by item,
                // with the epoch guards checking exclusivity.
                LaneContext &ctx = lanes_[lane].ctx;
                std::uint64_t saved = ctx.ownedMask;
                ctx.ownedMask = all;
                {
                    LaneScope scope(ctx);
                    items[i]();
                }
                ctx.ownedMask = saved;
            }
            barrier_.wait();
            if (lane == 0) {
                machine_.pollCrashSites();
                machine_.fenceParallelGuards();
                ++epochsRun_;
            }
            barrier_.wait();
        }
    });
    machine_.endParallelSession();
}

} // namespace stramash
