/**
 * @file
 * The fused machine: every node, one coherent guest memory, one
 * coherence domain, and cross-ISA IPI delivery. This is the
 * Stramash-QEMU analogue — the substrate both OS designs run on.
 */

#ifndef STRAMASH_SIM_MACHINE_HH
#define STRAMASH_SIM_MACHINE_HH

#include <memory>
#include <optional>
#include <vector>

#include "stramash/cache/coherence.hh"
#include "stramash/fault/fault.hh"
#include "stramash/mem/guest_memory.hh"
#include "stramash/mem/phys_map.hh"
#include "stramash/sim/node.hh"
#include "stramash/sim/parallel_epoch.hh"
#include "stramash/trace/trace.hh"

namespace stramash
{

/** Whole-machine configuration. */
struct MachineConfig
{
    MemoryModel memoryModel = MemoryModel::Shared;
    std::vector<NodeConfig> nodes;
    /**
     * N-node topology. When set, the physical memory map is generated
     * from it (PhysMap::generate) and `nodes`/`memoryModel` must
     * agree with it — fromTopology() fills all three consistently.
     * When absent, the paper's hard-wired two-node Figure-4 layout is
     * used, exactly as before the topology refactor.
     */
    std::optional<TopologySpec> topology;
    /** Per-node private L3 size (ignored when the model fully shares
     *  a single LLC). 4 MiB in Fig. 9, 32 MiB in Fig. 10. */
    Addr l3Size = 4 * 1024 * 1024;
    /** FullyShared uses one shared LLC (paper AE notes). */
    bool sharedLlcWhenFullyShared = true;
    SnoopCosts snoopCosts{};
    /** Cross-ISA IPI latency in microseconds (paper: 2 us). */
    double crossIsaIpiUs = 2.0;
    /** Outstanding misses a bulk kernel copy can overlap (stream
     *  MLP; 1 = fully serial, for ablation). */
    unsigned streamMlp = 8;
    /** When true, every cache access is skipped and memory costs a
     *  flat latency — used by functional-only runs like the kv-store
     *  experiment, where the paper also disables the Cache plugin. */
    bool cachePluginEnabled = true;
    /** Use the sharer-presence snoop filter in the coherence domain
     *  (directory-filtered probing). Disabling it falls back to
     *  broadcast probing — simulated timing and statistics are
     *  identical either way, only simulator speed changes. */
    bool snoopFilterEnabled = true;
    /** Event-tracing knobs (stramash/trace). */
    TraceConfig trace{};
    /** Attach a fault-injection plan (stramash/fault). Absent =
     *  nothing is ever injected and the sites cost one branch. */
    std::optional<FaultPlan> faultPlan;

    /** The evaluation's default pair: x86 Xeon Gold + Arm ThunderX2. */
    static MachineConfig paperPair(MemoryModel model,
                                   Addr l3Size = 4 * 1024 * 1024);

    /** Build a consistent config (nodes + memory model + map) from a
     *  topology spec. */
    static MachineConfig fromTopology(const TopologySpec &spec,
                                      Addr l3Size = 4 * 1024 * 1024);
};

class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const MachineConfig &config() const { return cfg_; }
    GuestMemory &memory() { return mem_; }
    const PhysMap &physMap() const { return map_; }
    CoherenceDomain &caches() { return *domain_; }

    /** The cross-layer event tracer (timestamps = node clocks). */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /** The fault injector; null when no plan is attached. */
    FaultInjector *faultInjector() { return injector_.get(); }
    const FaultInjector *faultInjector() const
    {
        return injector_.get();
    }

    Node &node(NodeId id);
    const Node &node(NodeId id) const;
    std::size_t nodeCount() const { return nodes_.size(); }

    // ---- crash-stop node lifecycle ----

    /**
     * True while @p id is running. Costs one integer compare while
     * nothing is dead (the common case), so the transport and IPI
     * paths can gate on it without measurable overhead.
     */
    bool
    nodeAlive(NodeId id) const
    {
        return deadNodes_ == 0 || node(id).alive();
    }

    /** True while at least one node is crashed. */
    bool anyNodeDead() const { return deadNodes_ != 0; }

    /**
     * Crash-stop @p id: freeze its clock (retire/stall become
     * no-ops) and mark it dead so the transport silences it.
     * Idempotent.
     */
    void killNode(NodeId id);

    /**
     * Bring a crashed node back (the rejoin path). Its clock is
     * fast-forwarded to @p clock — a rebooted machine re-enters at
     * the survivor's "now", not at the instant it died.
     */
    void reviveNode(NodeId id, Cycles clock);

    /**
     * The unique alive node whose ISA is @p isa (paper machines have
     * one of each). Panics, naming both nodes, when an N-node
     * topology runs the ISA on more than one alive node — address
     * nodes by id there.
     */
    Node &nodeByIsa(IsaType isa);

    // ---- link faults (network partitions) ----

    /**
     * Health of the directed message link @p from -> @p to. Costs one
     * integer compare while every link is up (the common case), so
     * the transport can gate on it without measurable overhead. Only
     * the *message* fabric is subject to link state; coherent memory
     * stays connected — that asymmetry is the fused design's
     * arbitration channel.
     */
    LinkState
    linkState(NodeId from, NodeId to) const
    {
        return impairedLinks_ == 0 ? LinkState::Up
                                   : rawLinkState(from, to);
    }

    /** True while at least one directed link is not Up. */
    bool anyLinkImpaired() const { return impairedLinks_ != 0; }

    /**
     * True once any link fault has been configured (a scheduled plan
     * or a chaos-API call) — the crash manager switches from the
     * quorum-only protocol to partition-safe arbitration only then,
     * so runs without link faults stay bit-identical to history.
     */
    bool partitionArmed() const { return partitionArmed_; }

    /**
     * Set the directed link @p from -> @p to. Requires an attached
     * fault injector (link faults are chaos machinery; the partition
     * counters live there). Counts, traces, then invokes the link
     * event hook. Idempotent per state.
     */
    void setLinkState(NodeId from, NodeId to, LinkState s);

    /** Observer for link transitions (System wires the crash
     *  manager's heal/reconcile path here). Fires after the state is
     *  applied. */
    using LinkEventFn = std::function<void(NodeId, NodeId, LinkState)>;
    void setLinkEventHook(LinkEventFn fn) { linkHook_ = std::move(fn); }

    /**
     * Charge a data access by @p node at physical address @p pa
     * through the cache/coherence model and advance the node's clock.
     * @return the latency charged.
     */
    Cycles dataAccess(NodeId nid, AccessType type, Addr pa,
                      unsigned size);

    /**
     * Charge a *bulk kernel copy* (ring payload, DSM page transfer,
     * page zeroing): the cache model runs per line, but miss
     * latencies overlap across @p mlp outstanding requests, as a
     * streaming kernel memcpy enjoys. Application accesses must NOT
     * use this — they are charged serially, exactly like the
     * per-instruction feedback of the paper's Cache plugin.
     */
    Cycles streamAccess(NodeId nid, AccessType type, Addr pa,
                        unsigned size, unsigned mlp = 0);

    /** Retire instructions on a node (fixed-IPC timing). */
    void retire(NodeId nid, ICount n);

    /** Add explicit overhead cycles (locks, protocol processing). */
    void stall(NodeId nid, Cycles c);

    /**
     * Deliver a cross-ISA IPI (paper §7.2): the receiver pays the
     * delivery latency. @return the latency in receiver cycles.
     */
    Cycles sendIpi(NodeId from, NodeId to);

    /** Cross-ISA IPI cost in @p node cycles. */
    Cycles ipiCycles(NodeId node) const;

    /** Count of IPIs received per node. */
    std::uint64_t ipisReceived(NodeId node) const;

    /**
     * Final runtime per the paper's AE formula:
     * Final Runtime = x86 runtime + Arm runtime (single app migrating
     * between nodes — only one side executes at a time).
     */
    Cycles totalRuntime() const;

    /** For genuinely concurrent phases: the slower node's clock. */
    Cycles maxRuntime() const;

    /** Reset every node clock and cache (between experiments). */
    void resetTiming(bool flushCaches = true);

    /**
     * Trace hooks: observe every charged access and retirement.
     * Used by the validation harnesses (Figs. 7 and 8) to replay an
     * execution through alternative timing models.
     */
    using AccessTraceFn =
        std::function<void(NodeId, AccessType, Addr, unsigned)>;
    using RetireTraceFn = std::function<void(NodeId, ICount)>;

    void
    setTraceHooks(AccessTraceFn access, RetireTraceFn retireFn)
    {
        accessTrace_ = std::move(access);
        retireTrace_ = std::move(retireFn);
    }

    void
    clearTraceHooks()
    {
        accessTrace_ = nullptr;
        retireTrace_ = nullptr;
    }

    // ---- parallel host sessions (sim/parallel_executor) ----

    /**
     * Enter a parallel host session: crash polling moves to the
     * epoch barriers (pollCrashSites), the coherence/snoop epoch
     * guards arm, and every charge aimed at a node the calling
     * lane does not own is staged in its LaneContext instead of
     * applied. Multi-lane sessions reject configurations whose
     * per-access side effects are order-dependent (trace hooks,
     * event tracing, non-crash fault sites).
     */
    void beginParallelSession(unsigned threads);
    void endParallelSession();
    bool parallelSessionActive() const { return parallelActive_; }

    /**
     * The conservative lookahead: the smallest latency any cross-node
     * effect is charged before a peer can observe it. Cross-ISA IPI
     * delivery (2 us, Table 2) is the cheapest interaction the
     * machine models — coherence probes and messages charge at least
     * as much — so the epoch window is bounded by the minimum
     * ipiCycles over all nodes.
     */
    Cycles minCrossNodeLookahead() const;

    /** Epoch-aligned scheduled-fault polling: fire any due scheduled
     *  crash (ascending node order) and any due link transition, in
     *  schedule order (serial barrier context only). */
    void pollCrashSites();

    /** Fence the coherence/snoop epoch guards at a barrier. */
    void fenceParallelGuards();

    /** Apply a charge staged by a foreign lane (owner lane context:
     *  the caller must own c.dst). */
    void applyStagedCharge(const StagedCharge &c);

  private:
    /**
     * Poll the scheduled crash + link sites after a clock advance on
     * @p nid. Two predictable branches when nothing is armed (the
     * injector pointer, then the armed flags); the slow paths live in
     * the .cc.
     */
    void
    maybeFireCrash(NodeId nid)
    {
        // Parallel sessions poll at epoch barriers instead: killNode
        // and setLinkState mutate machine-wide state no lane may
        // touch mid-epoch.
        if (injector_ && !parallelActive_ &&
            (injector_->crashArmed() || injector_->linkEventsArmed()))
            fireScheduledIfDue(nid);
    }

    /** Fire any due scheduled crash on @p nid and any due scheduled
     *  link transition (link deadlines read both endpoint clocks, so
     *  they are polled regardless of @p nid). */
    void fireScheduledIfDue(NodeId nid);
    void fireCrashIfDue(NodeId nid);
    void fireLinkEventsIfDue();

    LinkState
    rawLinkState(NodeId from, NodeId to) const
    {
        return static_cast<LinkState>(
            links_[from * byId_.size() + to]);
    }

    /** Receiver-side IPI delivery (charge + counters + trace). */
    Cycles deliverIpi(NodeId from, NodeId to);

    MachineConfig cfg_;
    GuestMemory mem_;
    PhysMap map_;
    std::unique_ptr<CoherenceDomain> domain_;
    std::vector<std::unique_ptr<Node>> nodes_;
    /** Dense NodeId -> Node index (ids are validated dense). */
    std::vector<Node *> byId_;
    std::vector<std::uint64_t> ipisReceived_;
    Tracer tracer_;
    std::unique_ptr<FaultInjector> injector_;
    AccessTraceFn accessTrace_;
    RetireTraceFn retireTrace_;
    /** Count of crashed nodes; non-zero activates liveness checks.
     *  Only mutated at epoch barriers during parallel sessions. */
    unsigned deadNodes_ = 0;
    /** n*n directed LinkState matrix (row = from). */
    std::vector<std::uint8_t> links_;
    /** Count of links not Up; non-zero activates link checks.
     *  Only mutated at epoch barriers during parallel sessions. */
    unsigned impairedLinks_ = 0;
    /** Latches true on the first configured link fault. */
    bool partitionArmed_ = false;
    LinkEventFn linkHook_;
    /** True between beginParallelSession / endParallelSession. */
    bool parallelActive_ = false;
};

} // namespace stramash

#endif // STRAMASH_SIM_MACHINE_HH
