/**
 * @file
 * HostExecutor: the epoch-based conservative parallel host loop.
 *
 * Nodes are partitioned across host lanes (lane = node % threads);
 * each epoch runs three phases:
 *
 *   parallel  — every lane first applies the records staged for its
 *               nodes at the previous barrier (charges in source-lane
 *               ascending FIFO order, timed events in (ready, src,
 *               seq) order up to the window horizon), then steps each
 *               owned node's driver below the horizon;
 *   exchange  — every lane pulls its own inbound records from all
 *               lanes' outboxes (read-only scan, source ascending),
 *               keeping redistribution off the serial critical path;
 *   barrier   — lane 0 polls crash sites (epoch-aligned fault
 *               delivery), fences the coherence/snoop epoch guards,
 *               gives the driver its serial hook, and advances the
 *               window. O(nodes + lanes), not O(staged records).
 *
 * The window advances by the machine's minimum cross-node interaction
 * latency (the conservative lookahead W): any effect produced at time
 * t becomes visible no earlier than t + W, so delivering it at the
 * next barrier can never be late. When every node is idle until some
 * future time, the window jumps there first (CMB-style adaptive
 * horizon) — sends that follow still land at >= horizon + W because
 * nothing can execute before the jump target.
 *
 * hostThreads = 1 runs the identical epoch algorithm inline on the
 * calling thread (one lane owning every node), which is what makes
 * thread-count sweeps bit-identical by construction.
 */

#ifndef STRAMASH_SIM_PARALLEL_EXECUTOR_HH
#define STRAMASH_SIM_PARALLEL_EXECUTOR_HH

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "stramash/sim/machine.hh"
#include "stramash/sim/parallel_epoch.hh"

namespace stramash
{

/** Per-epoch view handed to EpochDriver::step. */
struct EpochCtx
{
    std::uint64_t epoch;
    /** Exclusive horizon: timed drivers must not execute work at or
     *  beyond it. Untimed (block-structured) drivers may ignore it. */
    Cycles windowEnd;
    unsigned lane;
};

/**
 * A workload adapter the executor drives one node at a time. All
 * hooks except atBarrier() run with the calling lane's LaneContext
 * installed, so machine/messaging calls stage automatically.
 */
class EpochDriver
{
  public:
    virtual ~EpochDriver() = default;

    /**
     * Advance @p node's workload within the epoch (timed drivers:
     * strictly below ctx.windowEnd). @return true when the node still
     * has local work left after this epoch.
     */
    virtual bool step(NodeId node, const EpochCtx &ctx) = 0;

    /** A staged event addressed to @p node is due this epoch. */
    virtual void
    deliver(NodeId node, const StagedEvent &ev)
    {
        (void)node;
        (void)ev;
        panic("EpochDriver::deliver: driver staged events but does "
              "not accept them");
    }

    /** Earliest locally known future work on @p node (arrival, queued
     *  batch, ...); kNoPendingEvent when none. Serial context. */
    virtual Cycles
    nextEventAt(NodeId node) const
    {
        (void)node;
        return kNoPendingEvent;
    }

    /** Serial hook at every barrier (single thread, fully synced). */
    virtual void atBarrier(std::uint64_t epoch) { (void)epoch; }
};

/**
 * Centralized counter barrier with a phase word. Lanes spin (with
 * periodic yields) rather than sleep: epochs are microseconds long
 * and the pool is sized to the machine, so parking would dominate.
 * When the host is oversubscribed (more parties than hardware
 * threads) spinning only steals cycles from the lane everyone is
 * waiting on, so the barrier yields immediately instead.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties)
        : parties_(parties),
          spinLimit_(parties <= std::thread::hardware_concurrency()
                         ? 4096
                         : 1)
    {
    }

    void
    wait()
    {
        unsigned phase = phase_.load(std::memory_order_relaxed);
        if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            count_.store(0, std::memory_order_relaxed);
            phase_.fetch_add(1, std::memory_order_release);
        } else {
            unsigned spins = 0;
            while (phase_.load(std::memory_order_acquire) == phase) {
                if (++spins >= spinLimit_) {
                    std::this_thread::yield();
                    spins = 0;
                }
            }
        }
    }

  private:
    const unsigned parties_;
    const unsigned spinLimit_;
    std::atomic<unsigned> count_{0};
    std::atomic<unsigned> phase_{0};
};

class HostExecutor
{
  public:
    /**
     * @param threads host lanes; clamped to [1, nodeCount]. The pool
     *        spawns threads-1 workers that park between sessions.
     */
    HostExecutor(Machine &machine, unsigned threads);
    ~HostExecutor();

    HostExecutor(const HostExecutor &) = delete;
    HostExecutor &operator=(const HostExecutor &) = delete;

    unsigned threads() const { return threads_; }
    Machine &machine() { return machine_; }

    /** Lane that owns @p node (node % threads). */
    unsigned laneOf(NodeId node) const { return node % threads_; }

    /**
     * Run @p driver to quiescence: epochs continue until a barrier
     * finds every node idle with no staged records in flight.
     */
    void run(EpochDriver &driver);

    /**
     * Serial chain: item i runs alone in epoch i, on lane i %
     * threads, owning *every* node — the cross-thread machine-handoff
     * pattern (NPB-style phase chains). Guards are fenced between
     * items exactly as between driver epochs.
     */
    void runChain(const std::vector<std::function<void()>> &items);

    /** Epochs completed by the last run()/runChain(). */
    std::uint64_t epochsRun() const { return epochsRun_; }

    /** Conservative lookahead W used by the last run(). */
    Cycles lookahead() const { return lookahead_; }

  private:
    struct Lane
    {
        LaneContext ctx;
        /** Owned node ids, ascending. */
        std::vector<NodeId> nodes;
        /** Inbound charges, already in (src lane asc, FIFO) order. */
        std::vector<StagedCharge> inCharges;
        /** Held events addressed to this lane, not yet due. */
        std::vector<StagedEvent> held;
        /** Due this epoch, sorted (ready, src, seq). */
        std::vector<StagedEvent> due;
        /** Any owned node reported work left this epoch. */
        bool pending = false;
    };

    /** Dispatch body(lane) on every lane and wait for all. */
    void runParallelJob(const std::function<void(unsigned)> &body);
    void workerMain(unsigned lane);

    void driverEpochBody(EpochDriver &driver, unsigned lane);
    /** Pull records destined for @p lane's nodes from every lane's
     *  outbox (src ascending, FIFO) — runs on all lanes in parallel
     *  between the epoch body and the serial barrier. */
    void pullInbound(unsigned lane);
    /** Lane-0 serial barrier work; O(nodes + lanes). @return stop. */
    bool driverBarrier(EpochDriver &driver);

    Machine &machine_;
    unsigned threads_;
    std::vector<Lane> lanes_;
    SpinBarrier barrier_;

    // ---- session state (valid inside run()) ----
    EpochDriver *driver_ = nullptr;
    std::uint64_t epoch_ = 0;
    Cycles windowEnd_ = 0;
    Cycles lookahead_ = 0;
    bool stop_ = false;
    std::uint64_t epochsRun_ = 0;

    // ---- worker pool (threads_ - 1 parked workers) ----
    std::vector<std::thread> workers_;
    std::mutex poolMu_;
    std::condition_variable poolCv_;
    std::condition_variable doneCv_;
    std::function<void(unsigned)> job_;
    std::uint64_t jobGen_ = 0;
    unsigned jobDone_ = 0;
    bool shutdown_ = false;
};

} // namespace stramash

#endif // STRAMASH_SIM_PARALLEL_EXECUTOR_HH
