#include "stramash/sim/machine.hh"

#include "stramash/common/units.hh"

namespace stramash
{

MachineConfig
MachineConfig::paperPair(MemoryModel model, Addr l3Size)
{
    MachineConfig cfg;
    cfg.memoryModel = model;
    cfg.l3Size = l3Size;
    cfg.nodes = {
        {0, IsaType::X86_64, CoreModel::XeonGold, 1},
        {1, IsaType::AArch64, CoreModel::ThunderX2, 1},
    };
    return cfg;
}

MachineConfig
MachineConfig::fromTopology(const TopologySpec &spec, Addr l3Size)
{
    spec.validate();
    MachineConfig cfg;
    cfg.memoryModel = spec.memoryModel;
    cfg.l3Size = l3Size;
    cfg.nodes.reserve(spec.nodeCount());
    for (const auto &n : spec.nodes)
        cfg.nodes.push_back({n.id, n.isa, n.core, n.numCores});
    cfg.topology = spec;
    return cfg;
}

namespace
{

PhysMap
buildPhysMap(const MachineConfig &cfg)
{
    return cfg.topology ? PhysMap::generate(*cfg.topology)
                        : PhysMap::paperDefault(cfg.memoryModel);
}

} // namespace

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg),
      map_(buildPhysMap(cfg)),
      tracer_(cfg.trace, cfg.nodes.size(),
              [this](NodeId n) { return node(n).cycles(); })
{
    fatal_if(cfg_.nodes.empty(), "machine needs at least one node");
    if (cfg_.topology) {
        fatal_if(cfg_.topology->memoryModel != cfg_.memoryModel,
                 "machine: memoryModel disagrees with the topology "
                 "spec (use MachineConfig::fromTopology)");
        fatal_if(cfg_.topology->nodeCount() != cfg_.nodes.size(),
                 "machine: node list disagrees with the topology spec "
                 "(use MachineConfig::fromTopology)");
        for (const auto &nc : cfg_.nodes) {
            const TopologyNode *tn = cfg_.topology->nodeById(nc.id);
            fatal_if(!tn || tn->isa != nc.isa || tn->core != nc.core,
                     "machine: node ", nc.id, " disagrees with the "
                     "topology spec (use MachineConfig::fromTopology)");
        }
    }
    // Per-node tables below (IPI counters, tracer tracks) index by
    // NodeId, so ids must be dense {0..n-1}.
    std::vector<bool> seen(cfg_.nodes.size(), false);
    for (const auto &nc : cfg_.nodes) {
        fatal_if(nc.id >= cfg_.nodes.size() || seen[nc.id],
                 "machine: node ids must be dense and unique (id ",
                 nc.id, " in a ", cfg_.nodes.size(), "-node machine)");
        seen[nc.id] = true;
    }

    bool sharedLlc = cfg_.memoryModel == MemoryModel::FullyShared &&
                     cfg_.sharedLlcWhenFullyShared;
    CacheGeometry sharedGeom{cfg_.l3Size, 16};
    domain_ = std::make_unique<CoherenceDomain>(
        map_, cfg_.snoopCosts, sharedLlc ? &sharedGeom : nullptr);
    domain_->setBroadcastMode(!cfg_.snoopFilterEnabled);

    for (const auto &nc : cfg_.nodes) {
        auto geom = HierarchyGeometry::paperDefault(cfg_.l3Size);
        const LatencyProfile &prof = latencyProfile(nc.core);
        if (prof.l3 == 0)
            geom.l3.sizeBytes = 0; // e.g. Cortex-A72: no L3
        domain_->addNode(nc.id, geom, prof);
        nodes_.push_back(std::make_unique<Node>(nc));
    }
    byId_.assign(nodes_.size(), nullptr);
    for (auto &n : nodes_)
        byId_[n->id()] = n.get();
    ipisReceived_.assign(nodes_.size(), 0);
    links_.assign(nodes_.size() * nodes_.size(),
                  static_cast<std::uint8_t>(LinkState::Up));
    if (tracer_.enabled())
        domain_->setTracer(&tracer_);
    if (cfg_.faultPlan) {
        injector_ = std::make_unique<FaultInjector>(*cfg_.faultPlan);
        injector_->setTracer(&tracer_);
        for (const LinkEvent &ev : cfg_.faultPlan->linkSchedule) {
            panic_if(ev.from >= nodes_.size() || ev.to >= nodes_.size(),
                     "link schedule names unknown node");
        }
        partitionArmed_ = cfg_.faultPlan->linkFaultsPlanned();
    }
}

Node &
Machine::node(NodeId id)
{
    panic_if(id >= byId_.size(), "unknown node ", id);
    return *byId_[id];
}

const Node &
Machine::node(NodeId id) const
{
    panic_if(id >= byId_.size(), "unknown node ", id);
    return *byId_[id];
}

Node &
Machine::nodeByIsa(IsaType isa)
{
    // N-node machines can run the same ISA on several nodes; an
    // ISA-keyed lookup is only well-defined when exactly one alive
    // node matches, so name the ambiguity instead of silently
    // returning whichever node was built first.
    Node *match = nullptr;
    for (auto &n : nodes_) {
        if (n->isa() != isa || !n->alive())
            continue;
        panic_if(match, "nodeByIsa(", isaName(isa),
                 "): ambiguous — nodes ", match->id(), " and ",
                 n->id(), " both run ", isaName(isa),
                 "; address nodes by id in N-node topologies");
        match = n.get();
    }
    panic_if(!match, "no alive node with ISA ", isaName(isa));
    return *match;
}

Cycles
Machine::dataAccess(NodeId nid, AccessType type, Addr pa, unsigned size)
{
    if (LaneContext *lc = tlsLaneContext(); lc && !lc->owns(nid)) {
        // A lane touched a node it does not own. Functional mode
        // charges a flat per-access latency, which is additive and
        // can be staged; a cache-model access would mutate foreign
        // hierarchy state mid-epoch, which the epoch guards exist to
        // forbid — partition the workload so each node's accesses run
        // on its owner lane.
        panic_if(cfg_.cachePluginEnabled,
                 "parallel session: cache-mode access to foreign node ",
                 nid, " from lane ", lc->lane);
        Cycles lat = node(nid).profile().l1;
        lc->stageCharge(StagedCharge::Kind::Stall, nid, nid, lat);
        return lat;
    }
    if (accessTrace_)
        accessTrace_(nid, type, pa, size);
    Node &n = node(nid);
    Cycles lat;
    if (cfg_.cachePluginEnabled) {
        lat = domain_->access(nid, type, pa, size).latency;
    } else {
        // Functional mode: flat per-access cost, as when the paper
        // disables the Cache plugin (§9.2.8).
        lat = n.profile().l1;
    }
    n.stall(lat);
    maybeFireCrash(nid);
    return lat;
}

Cycles
Machine::streamAccess(NodeId nid, AccessType type, Addr pa,
                      unsigned size, unsigned mlp)
{
    if (mlp == 0)
        mlp = cfg_.streamMlp;
    panic_if(mlp == 0, "streamAccess needs mlp >= 1");
    if (LaneContext *lc = tlsLaneContext(); lc && !lc->owns(nid)) {
        panic_if(cfg_.cachePluginEnabled,
                 "parallel session: cache-mode stream access to "
                 "foreign node ",
                 nid, " from lane ", lc->lane);
        Cycles lat = node(nid).profile().l1;
        lc->stageCharge(StagedCharge::Kind::Stall, nid, nid, lat);
        return lat;
    }
    if (accessTrace_)
        accessTrace_(nid, type, pa, size);
    Node &n = node(nid);
    if (!cfg_.cachePluginEnabled || size == 0) {
        Cycles lat = n.profile().l1;
        n.stall(lat);
        maybeFireCrash(nid);
        return lat;
    }
    Cycles total = 0;
    Addr first = lineBase(pa);
    Addr last = lineBase(pa + size - 1);
    for (Addr line = first; line <= last; line += cacheLineSize) {
        AccessResult r = domain_->accessLine(nid, type, line);
        // Misses overlap; hits are already pipelined-cheap.
        if (r.level == HitLevel::Memory)
            total += (r.latency + mlp - 1) / mlp;
        else
            total += r.latency;
    }
    n.stall(total);
    maybeFireCrash(nid);
    return total;
}

void
Machine::retire(NodeId nid, ICount n)
{
    if (LaneContext *lc = tlsLaneContext(); lc && !lc->owns(nid)) {
        lc->stageCharge(StagedCharge::Kind::Retire, nid, nid, n);
        return;
    }
    if (retireTrace_)
        retireTrace_(nid, n);
    node(nid).retire(n);
    maybeFireCrash(nid);
}

void
Machine::stall(NodeId nid, Cycles c)
{
    if (LaneContext *lc = tlsLaneContext(); lc && !lc->owns(nid)) {
        lc->stageCharge(StagedCharge::Kind::Stall, nid, nid, c);
        return;
    }
    node(nid).stall(c);
    maybeFireCrash(nid);
}

Cycles
Machine::ipiCycles(NodeId nid) const
{
    const Node &n = node(nid);
    return usToCycles(cfg_.crossIsaIpiUs, n.profile().ghz);
}

Cycles
Machine::sendIpi(NodeId from, NodeId to)
{
    // A dead node neither raises nor takes interrupts. deadNodes_
    // only changes at epoch barriers during parallel sessions, so
    // this read is stable within an epoch.
    if (anyNodeDead() && (!nodeAlive(from) || !nodeAlive(to)))
        return 0;
    if (anyLinkImpaired() &&
        rawLinkState(from, to) == LinkState::Severed) {
        // The interrupt fabric rides the message links: on a severed
        // link the IPI is swallowed. Coherent *memory* stays up —
        // fused-design data written across a partition lands, only
        // the doorbell is lost. Counted so the asymmetry is visible.
        injector_->partition().counter("ipis_swallowed") += 1;
        tracer_.instant(TraceCategory::Chaos, "link.ipi_swallowed",
                        from, 0, from, to);
        return 0;
    }
    if (LaneContext *lc = tlsLaneContext(); lc && !lc->owns(to)) {
        // Drop faults were rejected at session start (the per-site
        // rng draw order would depend on host scheduling), so the
        // staged delivery is unconditional.
        lc->stageCharge(StagedCharge::Kind::Ipi, to, from, 0);
        return ipiCycles(to);
    }
    if (injector_ && injector_->shouldDropIpi(from, to))
        return 0;
    return deliverIpi(from, to);
}

Cycles
Machine::deliverIpi(NodeId from, NodeId to)
{
    Node &dst = node(to);
    Cycles lat = ipiCycles(to);
    // The receiver pays the delivery latency; the span covers it.
    Cycles start = dst.cycles();
    dst.stall(lat);
    ++ipisReceived_[to];
    dst.stats().counter("ipis_received") += 1;
    tracer_.emit(TraceCategory::Ipi, "ipi.deliver", to, 0, start,
                 dst.cycles(), from, to);
    return lat;
}

void
Machine::fireScheduledIfDue(NodeId nid)
{
    if (injector_->crashArmed())
        fireCrashIfDue(nid);
    if (injector_->linkEventsArmed())
        fireLinkEventsIfDue();
}

void
Machine::fireCrashIfDue(NodeId nid)
{
    if (injector_->shouldCrashNode(nid, node(nid).cycles()))
        killNode(nid);
}

void
Machine::fireLinkEventsIfDue()
{
    // One event per poll iteration: the hook a transition invokes
    // (heal/reconcile, rejoin) advances clocks itself, which can make
    // further schedule entries due — the injector's fired flags make
    // the re-entrant polls idempotent.
    while (const LinkEvent *ev = injector_->pollLinkEvent(
               [this](NodeId n) { return node(n).cycles(); })) {
        setLinkState(ev->from, ev->to, ev->state);
    }
}

void
Machine::setLinkState(NodeId from, NodeId to, LinkState s)
{
    panic_if(!injector_,
             "setLinkState without fault machinery: attach a "
             "FaultPlan (an empty one is enough)");
    panic_if(from >= byId_.size() || to >= byId_.size() || from == to,
             "setLinkState(", from, ", ", to, "): bad link");
    LinkState old = rawLinkState(from, to);
    partitionArmed_ = true;
    if (old == s)
        return;
    links_[from * byId_.size() + to] = static_cast<std::uint8_t>(s);
    if (old == LinkState::Up)
        ++impairedLinks_;
    else if (s == LinkState::Up)
        --impairedLinks_;
    StatGroup &part = injector_->partition();
    const char *name = "link.up";
    switch (s) {
      case LinkState::Up:
        part.counter("links_healed") += 1;
        break;
      case LinkState::Severed:
        part.counter("links_severed") += 1;
        name = "link.severed";
        break;
      case LinkState::Lossy:
        part.counter("links_lossy") += 1;
        name = "link.lossy";
        break;
      case LinkState::Delayed:
        part.counter("links_delayed") += 1;
        name = "link.delayed";
        break;
    }
    tracer_.instant(TraceCategory::Chaos, name, from, 0, from, to);
    if (linkHook_)
        linkHook_(from, to, s);
}

void
Machine::killNode(NodeId id)
{
    Node &n = node(id);
    if (!n.alive())
        return;
    n.setAlive(false);
    ++deadNodes_;
    n.stats().counter("crashes") += 1;
    tracer_.instant(TraceCategory::Chaos, "crash.node_dead", id, 0,
                    id, n.cycles());
}

void
Machine::reviveNode(NodeId id, Cycles clock)
{
    Node &n = node(id);
    panic_if(n.alive(), "reviveNode(", id, "): node is not dead");
    panic_if(deadNodes_ == 0, "reviveNode with no dead nodes");
    n.syncClock(clock);
    n.setAlive(true);
    --deadNodes_;
    n.stats().counter("revives") += 1;
    tracer_.instant(TraceCategory::Chaos, "crash.node_revive", id, 0,
                    id, clock);
}

std::uint64_t
Machine::ipisReceived(NodeId nid) const
{
    panic_if(nid >= ipisReceived_.size(), "unknown node");
    return ipisReceived_[nid];
}

Cycles
Machine::totalRuntime() const
{
    Cycles total = 0;
    for (const auto &n : nodes_)
        total += n->cycles();
    return total;
}

Cycles
Machine::maxRuntime() const
{
    Cycles best = 0;
    for (const auto &n : nodes_)
        best = std::max(best, n->cycles());
    return best;
}

void
Machine::beginParallelSession(unsigned threads)
{
    panic_if(parallelActive_, "nested parallel sessions");
    panic_if(nodes_.size() > 64,
             "parallel sessions support at most 64 nodes");
    if (threads > 1) {
        // Reject anything whose per-access side effects depend on
        // the global interleaving of accesses rather than per-node
        // program order: replay hooks see a global stream, event
        // tracing timestamps against a global observer, and every
        // non-crash fault site draws from its rng in arrival order.
        panic_if(accessTrace_ || retireTrace_,
                 "parallel session: trace hooks capture a global "
                 "access order and cannot run multi-threaded");
        panic_if(tracer_.enabled(),
                 "parallel session: event tracing is single-thread "
                 "only (set hostThreads = 1)");
        panic_if(injector_ && injector_->plan().any(),
                 "parallel session: transient fault sites draw rng "
                 "in global arrival order; only scheduled crash "
                 "plans are supported multi-threaded");
        panic_if(injector_ &&
                     !injector_->plan().linkScheduleParallelSafe(),
                 "parallel session: lossy/delayed links draw rng or "
                 "park messages in arrival order; only sever/heal "
                 "link schedules are supported multi-threaded");
        for (std::uint8_t l : links_) {
            LinkState s = static_cast<LinkState>(l);
            panic_if(s == LinkState::Lossy || s == LinkState::Delayed,
                     "parallel session: a link is currently "
                     "lossy/delayed; heal it (or sever it) before "
                     "running multi-threaded");
        }
    }
    parallelActive_ = true;
    domain_->setParallelGuard(true);
}

void
Machine::endParallelSession()
{
    panic_if(!parallelActive_, "endParallelSession: no session");
    domain_->setParallelGuard(false);
    parallelActive_ = false;
}

Cycles
Machine::minCrossNodeLookahead() const
{
    Cycles w = ~Cycles(0);
    for (const auto &n : nodes_)
        w = std::min(w, ipiCycles(n->id()));
    return std::max<Cycles>(w, 1);
}

void
Machine::pollCrashSites()
{
    if (!injector_)
        return;
    if (injector_->crashArmed()) {
        for (NodeId nid = 0; nid < byId_.size(); ++nid)
            fireCrashIfDue(nid);
    }
    if (injector_->linkEventsArmed())
        fireLinkEventsIfDue();
}

void
Machine::fenceParallelGuards()
{
    domain_->fenceParallelEpoch();
}

void
Machine::applyStagedCharge(const StagedCharge &c)
{
    switch (c.kind) {
      case StagedCharge::Kind::Stall:
        node(c.dst).stall(c.amount);
        return;
      case StagedCharge::Kind::Retire:
        node(c.dst).retire(c.amount);
        return;
      case StagedCharge::Kind::Ipi:
        // Liveness and link state were checked at send time; a node
        // crashed — or a link severed — at an intervening barrier
        // swallows the charge like any retire on a frozen clock, but
        // skips the delivery counters too.
        if (nodeAlive(c.dst) &&
            linkState(c.from, c.dst) != LinkState::Severed)
            deliverIpi(c.from, c.dst);
        return;
    }
    panic("unknown staged charge kind");
}

void
Machine::resetTiming(bool flushCaches)
{
    for (auto &n : nodes_)
        n->resetTime();
    if (flushCaches)
        domain_->flushAll();
    std::fill(ipisReceived_.begin(), ipisReceived_.end(), 0);
}

} // namespace stramash
