#include "stramash/sim/ipi_topology.hh"

#include <algorithm>

#include "stramash/common/logging.hh"

namespace stramash
{

IpiTopologyModel
IpiTopologyModel::smallArm()
{
    // 8 Cortex-A72 cores in two 4-core clusters, one socket.
    // Small parts have short on-chip paths: sub-microsecond.
    return {"small_Arm", 8, 4, 2, 550.0, 250.0, 0.0, 90.0};
}

IpiTopologyModel
IpiTopologyModel::bigArm()
{
    // Dual ThunderX2, 32 cores per socket on a ring/mesh; cluster =
    // 8-core slice. Large parts land around the 2 us average the
    // paper adopts.
    return {"big_Arm", 64, 8, 4, 1500.0, 350.0, 900.0, 220.0};
}

IpiTopologyModel
IpiTopologyModel::smallX86()
{
    // Xeon E5-2620 v4: 8 cores, one ring, one socket.
    return {"small_x86", 8, 4, 2, 700.0, 180.0, 0.0, 110.0};
}

IpiTopologyModel
IpiTopologyModel::bigX86()
{
    // Dual Xeon Gold 6230R: 26 cores per socket on a mesh; cluster =
    // mesh column of ~7 cores (pick 13 x 2 for a clean grid).
    return {"big_x86", 52, 13, 2, 1600.0, 300.0, 850.0, 240.0};
}

IpiTopologyModel
IpiTopologyModel::fused(const TopologySpec &spec)
{
    spec.validate();
    // One cluster per node, padded to the widest node so clusterOf()
    // stays a plain division; one socket (one coherent fabric).
    unsigned maxCores = 1;
    for (const auto &n : spec.nodes)
        maxCores = std::max(maxCores, n.numCores);
    unsigned clusters = static_cast<unsigned>(spec.nodeCount());
    return {"fused", maxCores * clusters, maxCores, clusters,
            1550.0, 450.0, 0.0, 230.0};
}

double
IpiTopologyModel::measureNs(unsigned from, unsigned to, Rng &rng) const
{
    panic_if(from >= numCores || to >= numCores,
             "IPI core out of range");
    if (from == to)
        return 0.0;
    double ns = baseNs;
    if (clusterOf(from) != clusterOf(to))
        ns += clusterNs;
    if (socketOf(from) != socketOf(to))
        ns += socketNs;
    // Deterministic uniform jitter in [-jitterNs, +jitterNs].
    ns += (rng.uniform() * 2.0 - 1.0) * jitterNs;
    return ns;
}

std::vector<std::vector<double>>
IpiTopologyModel::latencyMatrixNs(unsigned samples,
                                  std::uint64_t seed) const
{
    Rng rng(seed, 0x1991);
    std::vector<std::vector<double>> m(
        numCores, std::vector<double>(numCores, 0.0));
    for (unsigned f = 0; f < numCores; ++f) {
        for (unsigned t = 0; t < numCores; ++t) {
            if (f == t)
                continue;
            double sum = 0.0;
            for (unsigned s = 0; s < samples; ++s)
                sum += measureNs(f, t, rng);
            m[f][t] = sum / samples;
        }
    }
    return m;
}

double
IpiTopologyModel::meanOffDiagonalNs(
    const std::vector<std::vector<double>> &m)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t f = 0; f < m.size(); ++f) {
        for (std::size_t t = 0; t < m[f].size(); ++t) {
            if (f == t)
                continue;
            sum += m[f][t];
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // namespace stramash
