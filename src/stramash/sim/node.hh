/**
 * @file
 * One simulated node: an island of homogeneous-ISA cores with its own
 * icount timebase, mirroring one fused QEMU instance.
 */

#ifndef STRAMASH_SIM_NODE_HH
#define STRAMASH_SIM_NODE_HH

#include <string>

#include "stramash/common/stats.hh"
#include "stramash/isa/isa.hh"
#include "stramash/mem/latency_profile.hh"

namespace stramash
{

/** Static configuration of one node. */
struct NodeConfig
{
    NodeId id;
    IsaType isa;
    CoreModel core;
    unsigned numCores = 1;
};

/**
 * Runtime state of a node. Timing follows the paper's PriME-style
 * model (§7.3): instructions retire at a fixed non-memory IPC, and
 * the cache simulator feeds memory-access overhead back into the
 * icount-driven clock.
 */
class Node
{
  public:
    Node(const NodeConfig &cfg)
        : cfg_(cfg),
          desc_(isaDescriptor(cfg.isa)),
          profile_(latencyProfile(cfg.core)),
          stats_(std::string("node") + std::to_string(cfg.id))
    {
    }

    NodeId id() const { return cfg_.id; }
    IsaType isa() const { return cfg_.isa; }
    const NodeConfig &config() const { return cfg_; }
    const IsaDescriptor &isaDesc() const { return desc_; }
    const LatencyProfile &profile() const { return profile_; }

    /** Retire @p n instructions at the fixed non-memory IPC. */
    void
    retire(ICount n)
    {
        if (!alive_)
            return;
        icount_ += n;
        cycles_ += static_cast<Cycles>(
            static_cast<double>(n) / desc_.fixedIpc);
    }

    /** Add memory/IPI/etc. overhead cycles from the timing model. */
    void
    stall(Cycles c)
    {
        if (!alive_)
            return;
        cycles_ += c;
        memCycles_ += c;
    }

    ICount icount() const { return icount_; }
    Cycles cycles() const { return cycles_; }
    /** Cycles attributable to memory-system feedback. */
    Cycles memCycles() const { return memCycles_; }

    void
    resetTime()
    {
        icount_ = 0;
        cycles_ = 0;
        memCycles_ = 0;
    }

    /**
     * Crash-stop lifecycle. A dead node's clock is frozen: retire()
     * and stall() become no-ops, so every code path that would charge
     * time to a crashed node silently stops making progress there.
     * Machine::killNode()/reviveNode() are the only callers.
     */
    bool alive() const { return alive_; }
    void setAlive(bool alive) { alive_ = alive; }

    /** Fast-forward a rejoining node's frozen clock to @p c. */
    void
    syncClock(Cycles c)
    {
        cycles_ = c;
    }

    StatGroup &stats() { return stats_; }

  private:
    NodeConfig cfg_;
    const IsaDescriptor &desc_;
    const LatencyProfile &profile_;
    StatGroup stats_;
    ICount icount_ = 0;
    Cycles cycles_ = 0;
    Cycles memCycles_ = 0;
    bool alive_ = true;
};

} // namespace stramash

#endif // STRAMASH_SIM_NODE_HH
