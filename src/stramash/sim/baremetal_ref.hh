/**
 * @file
 * Bare-metal reference machines for icount validation (paper §9.1.2,
 * Figure 7).
 *
 * The paper validates Stramash-QEMU by running the same NPB workloads
 * on real Arm/x86 machine pairs under native Linux perf, then
 * comparing the icount-approximated cycle counts against the
 * perf-measured cycles, finding <13% error (about 4% on average).
 *
 * Standing in for silicon, BareMetalRef is a *higher-fidelity* timing
 * model of each physical machine: it replays the identical workload
 * trace through the machine's own (different!) cache configuration
 * and models out-of-order overlap of memory stalls and a per-machine
 * base CPI — effects the fixed-IPC icount model deliberately ignores.
 * Comparing the two models reproduces the validation methodology: a
 * cheap model is checked against a richer reference.
 */

#ifndef STRAMASH_SIM_BAREMETAL_REF_HH
#define STRAMASH_SIM_BAREMETAL_REF_HH

#include <memory>
#include <string>

#include "stramash/cache/hierarchy.hh"
#include "stramash/common/stats.hh"
#include "stramash/mem/latency_profile.hh"

namespace stramash
{

/** Configuration of one physical reference machine. */
struct BareMetalConfig
{
    std::string name;
    CoreModel core;
    HierarchyGeometry caches;
    /** Base CPI of non-memory instructions (superscalar: < 1). */
    double baseCpi;
    /**
     * Fraction of a memory stall the out-of-order window fails to
     * hide (1.0 = fully exposed, like the simple icount model).
     */
    double stallExposure;

    static BareMetalConfig smallArm();
    static BareMetalConfig bigArm();
    static BareMetalConfig smallX86();
    static BareMetalConfig bigX86();
};

/** perf-style counters from one run. */
struct PerfCounters
{
    ICount instructions = 0;
    Cycles cycles = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

/** A single-node reference machine replaying a workload trace. */
class BareMetalRef
{
  public:
    explicit BareMetalRef(const BareMetalConfig &cfg);

    const BareMetalConfig &config() const { return cfg_; }

    /** Retire @p n non-memory instructions. */
    void retire(ICount n);

    /** Replay one memory access. */
    void access(AccessType type, Addr addr);

    PerfCounters counters() const;

    void reset();

  private:
    BareMetalConfig cfg_;
    LatencyProfile profile_;
    StatGroup stats_;
    std::unique_ptr<CacheHierarchy> hier_;
    ICount inst_ = 0;
    double cycles_ = 0.0;
};

} // namespace stramash

#endif // STRAMASH_SIM_BAREMETAL_REF_HH
