/**
 * @file
 * IPI latency modelling (paper §7.2, §9.1.1, Figures 5 and 6).
 *
 * The paper measures IPI latency between every core pair on four real
 * machines (RDTSC + MONITOR/MWAIT) and finds ~2 us averages on the
 * large pairs, which it adopts as the simulated cross-ISA IPI cost.
 * We model each machine's interconnect topology — cores grouped into
 * clusters (sharing an L2/mesh stop) grouped into sockets — with a
 * latency term per boundary crossed plus deterministic measurement
 * jitter, and reproduce the per-pair latency matrices.
 */

#ifndef STRAMASH_SIM_IPI_TOPOLOGY_HH
#define STRAMASH_SIM_IPI_TOPOLOGY_HH

#include <string>
#include <vector>

#include "stramash/common/rng.hh"
#include "stramash/common/types.hh"
#include "stramash/mem/topology.hh"

namespace stramash
{

/** Topology-based IPI latency model for one physical machine. */
struct IpiTopologyModel
{
    std::string name;
    unsigned numCores;
    unsigned coresPerCluster;
    unsigned clustersPerSocket;
    double baseNs;     ///< same-cluster IPI latency
    double clusterNs;  ///< added when crossing clusters
    double socketNs;   ///< added when crossing sockets
    double jitterNs;   ///< half-width of uniform measurement noise

    /** Model of the paper's small_Arm (Broadcom A72, 8 cores). */
    static IpiTopologyModel smallArm();
    /** Model of big_Arm (dual ThunderX2, 32 cores/socket). */
    static IpiTopologyModel bigArm();
    /** Model of small_x86 (Xeon E5-2620 v4, 8 cores). */
    static IpiTopologyModel smallX86();
    /** Model of big_x86 (dual Xeon Gold 6230R, 26 cores/socket). */
    static IpiTopologyModel bigX86();

    /**
     * The interconnect of a fused machine built from @p spec: each
     * topology node is one cluster of its cores, all on one coherent
     * fabric ("socket"). Cross-node IPIs pay the cluster-crossing
     * term tuned so the mean lands on the paper's ~2 us cross-ISA
     * figure regardless of node count.
     */
    static IpiTopologyModel fused(const TopologySpec &spec);

    /** First core id of topology node @p node (clusters are laid out
     *  in node order). Only meaningful for fused() models, where
     *  every node contributes coresPerCluster slots. */
    unsigned
    firstCoreOfNode(NodeId node) const
    {
        return node * coresPerCluster;
    }

    unsigned
    socketOf(unsigned core) const
    {
        return core / (coresPerCluster * clustersPerSocket);
    }

    unsigned
    clusterOf(unsigned core) const
    {
        return core / coresPerCluster;
    }

    /** One measured IPI latency sample in nanoseconds. */
    double measureNs(unsigned from, unsigned to, Rng &rng) const;

    /**
     * The full from x to latency matrix (averaged over @p samples),
     * i.e. the data behind Figures 5 and 6.
     */
    std::vector<std::vector<double>> latencyMatrixNs(
        unsigned samples, std::uint64_t seed) const;

    /** Mean of the off-diagonal entries of the matrix, in ns. */
    static double meanOffDiagonalNs(
        const std::vector<std::vector<double>> &m);
};

} // namespace stramash

#endif // STRAMASH_SIM_IPI_TOPOLOGY_HH
