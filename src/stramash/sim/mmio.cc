#include "stramash/sim/mmio.hh"

namespace stramash
{

MmioDevice::MmioDevice(std::string name, NodeId owner, AddrRange window,
                       Cycles accessCycles)
    : name_(std::move(name)),
      owner_(owner),
      window_(window),
      accessCycles_(accessCycles)
{
    panic_if(window_.empty(), "MMIO window must be non-empty");
}

MmioBus::MmioBus(Machine &machine, Cycles redirectCycles)
    : machine_(machine), redirectCycles_(redirectCycles), stats_("mmio")
{
}

void
MmioBus::attach(MmioDevice *dev)
{
    panic_if(!dev, "attaching a null device");
    panic_if(machine_.physMap().isDram(dev->window().start) ||
                 machine_.physMap().isDram(dev->window().end - 1),
             "MMIO window overlaps DRAM");
    for (const auto *d : devices_) {
        panic_if(d->window().overlaps(dev->window()),
                 "MMIO windows overlap: ", d->name(), " and ",
                 dev->name());
    }
    devices_.push_back(dev);
}

bool
MmioBus::claims(Addr addr) const
{
    for (const auto *d : devices_) {
        if (d->window().contains(addr))
            return true;
    }
    return false;
}

MmioDevice &
MmioBus::deviceAt(Addr addr)
{
    for (auto *d : devices_) {
        if (d->window().contains(addr))
            return *d;
    }
    panic("MMIO access to unclaimed address 0x", std::hex, addr);
}

Cycles
MmioBus::charge(NodeId node, const MmioDevice &dev)
{
    Cycles lat = dev.accessCycles();
    if (node != dev.owner()) {
        // The fused path: the access is redirected to the owning
        // instance (paper §7.4).
        lat += redirectCycles_;
        stats_.counter("redirected") += 1;
    } else {
        stats_.counter("local") += 1;
    }
    machine_.stall(node, lat);
    return lat;
}

std::uint64_t
MmioBus::read(NodeId node, Addr addr)
{
    MmioDevice &dev = deviceAt(addr);
    charge(node, dev);
    return dev.read(addr - dev.window().start);
}

void
MmioBus::write(NodeId node, Addr addr, std::uint64_t value)
{
    MmioDevice &dev = deviceAt(addr);
    charge(node, dev);
    dev.write(addr - dev.window().start, value);
}

ConsoleDevice::ConsoleDevice(NodeId owner, Addr base)
    : MmioDevice("console", owner, {base, base + pageSize}, 200)
{
}

std::uint64_t
ConsoleDevice::read(Addr offset)
{
    switch (offset) {
      case 8:
        return out_.size();
      default:
        return 0;
    }
}

void
ConsoleDevice::write(Addr offset, std::uint64_t value)
{
    if (offset == 0)
        out_.push_back(static_cast<char>(value & 0xff));
}

} // namespace stramash
