#include "stramash/sim/baremetal_ref.hh"

#include "stramash/common/units.hh"

namespace stramash
{

BareMetalConfig
BareMetalConfig::smallArm()
{
    // Broadcom A72: 32K L1, 1M shared L2, no L3; modest OoO window.
    HierarchyGeometry g;
    g.l1i = {32_KiB, 2};
    g.l1d = {32_KiB, 2};
    g.l2 = {1_MiB, 16};
    g.l3 = {0, 16};
    return {"small_Arm", CoreModel::CortexA72, g, 0.95, 0.93};
}

BareMetalConfig
BareMetalConfig::bigArm()
{
    // ThunderX2: 32K L1, 256K L2, 32M L3 per socket.
    HierarchyGeometry g;
    g.l1i = {32_KiB, 8};
    g.l1d = {32_KiB, 8};
    g.l2 = {256_KiB, 8};
    g.l3 = {32_MiB, 16};
    return {"big_Arm", CoreModel::ThunderX2, g, 0.92, 0.90};
}

BareMetalConfig
BareMetalConfig::smallX86()
{
    // Broadwell E5-2620 v4: 32K L1, 256K L2, 20M L3.
    HierarchyGeometry g;
    g.l1i = {32_KiB, 8};
    g.l1d = {32_KiB, 8};
    g.l2 = {256_KiB, 8};
    g.l3 = {16_MiB, 16};
    return {"small_x86", CoreModel::E5_2620, g, 0.90, 0.90};
}

BareMetalConfig
BareMetalConfig::bigX86()
{
    // Cascade Lake Xeon Gold 6230R: 32K L1, 1M L2, 35.75M L3.
    HierarchyGeometry g;
    g.l1i = {32_KiB, 8};
    g.l1d = {32_KiB, 8};
    g.l2 = {1_MiB, 16};
    g.l3 = {32_MiB, 16};
    return {"big_x86", CoreModel::XeonGold, g, 0.88, 0.88};
}

BareMetalRef::BareMetalRef(const BareMetalConfig &cfg)
    : cfg_(cfg),
      profile_(latencyProfile(cfg.core)),
      stats_("baremetal." + cfg.name)
{
    HierarchyGeometry g = cfg_.caches;
    if (profile_.l3 == 0)
        g.l3.sizeBytes = 0;
    hier_ = std::make_unique<CacheHierarchy>(0, g, stats_);
}

void
BareMetalRef::retire(ICount n)
{
    inst_ += n;
    cycles_ += static_cast<double>(n) * cfg_.baseCpi;
}

void
BareMetalRef::access(AccessType type, Addr addr)
{
    Addr line = lineBase(addr);
    HitLevel level = hier_->lookup(line, type == AccessType::InstFetch);
    Cycles lat;
    switch (level) {
      case HitLevel::L1:
        lat = profile_.l1;
        break;
      case HitLevel::L2:
        lat = profile_.l2;
        break;
      case HitLevel::L3:
        lat = profile_.l3;
        break;
      default:
        lat = profile_.mem;
        hier_->fill(line,
                    type == AccessType::Store ? Mesi::Modified
                                              : Mesi::Exclusive,
                    type == AccessType::InstFetch, nullptr);
        break;
    }
    if (type == AccessType::Store && level != HitLevel::Memory)
        hier_->setState(line, Mesi::Modified);

    // L1 hits pipeline fully; deeper stalls are partially hidden by
    // the out-of-order window.
    if (level != HitLevel::L1)
        cycles_ += static_cast<double>(lat) * cfg_.stallExposure;
}

PerfCounters
BareMetalRef::counters() const
{
    return {inst_, static_cast<Cycles>(cycles_)};
}

void
BareMetalRef::reset()
{
    inst_ = 0;
    cycles_ = 0.0;
    hier_->flushAll();
}

} // namespace stramash
