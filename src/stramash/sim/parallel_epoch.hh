/**
 * @file
 * Shared vocabulary of the parallel host executor: the per-lane
 * staging context a host thread carries while it simulates its subset
 * of nodes, and the POD records that cross lane boundaries at epoch
 * barriers.
 *
 * The parallel loop is conservative PDES in the CMB tradition: each
 * epoch every lane free-runs its nodes up to a horizon bounded by the
 * minimum cross-node interaction latency (the lookahead), staging any
 * effect aimed at a node it does not own; a barrier then exchanges
 * the staged records. Determinism does not hinge on *when* a staged
 * charge is applied — every charge the machine accepts in functional
 * mode is an additive update to a per-node sum (cycles, icount,
 * counters, histogram bucket counts), so the final statistics are
 * invariant under any application order that preserves per-owner
 * program order. The executor still applies inbound records in a
 * fixed (source lane ascending, FIFO within lane) order, and timed
 * events in (ready, src, seq) order, so even intermediate states are
 * schedule-independent.
 */

#ifndef STRAMASH_SIM_PARALLEL_EPOCH_HH
#define STRAMASH_SIM_PARALLEL_EPOCH_HH

#include <cstdint>
#include <vector>

#include "stramash/common/logging.hh"
#include "stramash/common/types.hh"

namespace stramash
{

/** "No locally known future event" sentinel for timed drivers. */
constexpr Cycles kNoPendingEvent = ~Cycles(0);

/**
 * An additive cross-node effect staged until the next barrier:
 * explicit stall cycles, retired instructions, or a cross-ISA IPI
 * delivery (the receiver-side charge plus its counters).
 */
struct StagedCharge
{
    enum class Kind : std::uint8_t { Stall, Retire, Ipi };

    Kind kind;
    NodeId dst;
    /** IPI source node (stats attribution); unused otherwise. */
    NodeId from;
    /** Cycles (Stall), instructions (Retire); unused for Ipi. */
    std::uint64_t amount;
};

/**
 * A timed cross-node event for epoch drivers (e.g. a cross-shard
 * demand in the parallel kv service). The executor holds it back
 * until the epoch whose window covers `ready`, then delivers events
 * in (ready, src, seq) order — a total order independent of host
 * thread scheduling.
 */
struct StagedEvent
{
    Cycles ready;
    NodeId src;
    NodeId dst;
    /** Per-source FIFO sequence, assigned by the staging lane. */
    std::uint64_t seq;
    /** Driver-defined discriminator and payload. */
    std::uint32_t kind;
    std::uint64_t a;
    std::uint64_t b;
    std::uint64_t c;
};

/**
 * What a host lane carries while simulating its nodes. Installed in
 * thread-local storage for the duration of an epoch's parallel phase;
 * Machine and the message layer consult it to decide "mine, apply
 * directly" vs "foreign, stage until the barrier".
 */
struct LaneContext
{
    unsigned lane = 0;
    /** Bit per owned NodeId (machines are capped at 64 nodes when a
     *  parallel session is active). */
    std::uint64_t ownedMask = 0;
    /** Outbox: charges aimed at foreign nodes, FIFO. */
    std::vector<StagedCharge> charges;
    /** Outbox: timed events aimed at foreign nodes, FIFO. */
    std::vector<StagedEvent> events;
    /** seq generator for events staged by this lane. */
    std::uint64_t nextSeq = 0;

    bool
    owns(NodeId id) const
    {
        return (ownedMask >> id) & 1;
    }

    void
    stageCharge(StagedCharge::Kind kind, NodeId dst, NodeId from,
                std::uint64_t amount)
    {
        charges.push_back({kind, dst, from, amount});
    }
};

/**
 * The calling thread's lane context; null outside a parallel phase.
 * Inline so every layer (sim, msg) sees the same thread-local slot.
 */
inline LaneContext *&
tlsLaneContext()
{
    static thread_local LaneContext *ctx = nullptr;
    return ctx;
}

/** RAII installer for the epoch parallel phase. */
class LaneScope
{
  public:
    explicit LaneScope(LaneContext &ctx)
    {
        panic_if(tlsLaneContext(), "nested lane scopes");
        tlsLaneContext() = &ctx;
    }

    ~LaneScope() { tlsLaneContext() = nullptr; }

    LaneScope(const LaneScope &) = delete;
    LaneScope &operator=(const LaneScope &) = delete;
};

} // namespace stramash

#endif // STRAMASH_SIM_PARALLEL_EPOCH_HH
