/**
 * @file
 * Fused I/O devices (paper §7.4): "when an instance lacks a
 * particular device, it creates a memory mapping for that device.
 * Consequently, all memory accesses are redirected to the QEMU
 * instance containing the respective device."
 *
 * Devices register an MMIO window in the machine's physical space,
 * owned by one node. Any node may access the window; accesses from a
 * non-owning node pay the cross-node redirection latency on top of
 * the device's own access cost, and the device callback always runs
 * "at" the owning instance.
 */

#ifndef STRAMASH_SIM_MMIO_HH
#define STRAMASH_SIM_MMIO_HH

#include <functional>
#include <string>
#include <vector>

#include "stramash/common/addr_range.hh"
#include "stramash/common/stats.hh"
#include "stramash/sim/machine.hh"

namespace stramash
{

/** One memory-mapped device. */
class MmioDevice
{
  public:
    /**
     * @param name   human-readable identity
     * @param owner  node whose instance contains the device
     * @param window MMIO aperture (must lie outside DRAM)
     * @param accessCycles device-internal access cost
     */
    MmioDevice(std::string name, NodeId owner, AddrRange window,
               Cycles accessCycles = 300);
    virtual ~MmioDevice() = default;

    const std::string &name() const { return name_; }
    NodeId owner() const { return owner_; }
    const AddrRange &window() const { return window_; }
    Cycles accessCycles() const { return accessCycles_; }

    /** Device semantics: offset-addressed register file. */
    virtual std::uint64_t read(Addr offset) = 0;
    virtual void write(Addr offset, std::uint64_t value) = 0;

  private:
    std::string name_;
    NodeId owner_;
    AddrRange window_;
    Cycles accessCycles_;
};

/** The machine-wide MMIO router. */
class MmioBus
{
  public:
    /**
     * @param redirectCycles cross-instance redirection cost paid by
     *        a non-owning accessor (the fused device path).
     */
    explicit MmioBus(Machine &machine, Cycles redirectCycles = 2000);

    /** Register a device; windows must not overlap. */
    void attach(MmioDevice *dev);

    /** True if some device claims @p addr. */
    bool claims(Addr addr) const;

    /**
     * MMIO read by @p node; charges device + (if non-owner)
     * redirection cost and dispatches to the owning device.
     */
    std::uint64_t read(NodeId node, Addr addr);

    /** MMIO write by @p node. */
    void write(NodeId node, Addr addr, std::uint64_t value);

    StatGroup &stats() { return stats_; }

  private:
    Machine &machine_;
    Cycles redirectCycles_;
    StatGroup stats_;
    std::vector<MmioDevice *> devices_;

    MmioDevice &deviceAt(Addr addr);
    Cycles charge(NodeId node, const MmioDevice &dev);
};

/**
 * A simple UART-style character device: writes to offset 0 append to
 * an output buffer; reads of offset 8 return the count of characters
 * written. Enough to demonstrate (and test) fused device sharing.
 */
class ConsoleDevice final : public MmioDevice
{
  public:
    ConsoleDevice(NodeId owner, Addr base);

    std::uint64_t read(Addr offset) override;
    void write(Addr offset, std::uint64_t value) override;

    const std::string &output() const { return out_; }

  private:
    std::string out_;
};

} // namespace stramash

#endif // STRAMASH_SIM_MMIO_HH
