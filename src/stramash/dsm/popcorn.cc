#include "stramash/dsm/popcorn.hh"

namespace stramash
{

// ===================== PopcornFutexPolicy ============================

PopcornFutexPolicy::PopcornFutexPolicy(MessageLayer &msg,
                                       KernelLookup kernels)
    : msg_(msg), kernels_(std::move(kernels))
{
}

void
PopcornFutexPolicy::installHandlers(KernelInstance &k)
{
    k.registerMsgHandler(MsgType::FutexWait,
                         [this, &k](const Message &m) {
                             onFutexWait(k, m);
                         });
    k.registerMsgHandler(MsgType::FutexWake,
                         [this, &k](const Message &m) {
                             onFutexWake(k, m);
                         });
}

bool
PopcornFutexPolicy::wait(KernelInstance &kernel, Task &task, Addr uaddr,
                         std::uint32_t expected)
{
    // The value check happens where the task runs; DSM keeps the
    // word coherent.
    std::uint32_t v = kernel.userLoad<std::uint32_t>(task, uaddr);
    if (v != expected)
        return false;

    if (kernel.nodeId() == task.origin) {
        // Local: enqueue in the origin's futex table directly.
        kernel.machine().dataAccess(kernel.nodeId(), AccessType::Store,
                                    kernel.dataAddrFor(uaddr), 8);
        kernel.futexTable().enqueue(uaddr,
                                    {kernel.nodeId(), task.pid});
        return true;
    }

    // Remote: the origin kernel manages every futex instance; engage
    // it with a request/response round (paper §6.5).
    Message req;
    req.type = MsgType::FutexWait;
    req.from = kernel.nodeId();
    req.to = task.origin;
    req.arg0 = task.pid;
    req.arg1 = uaddr;
    req.arg2 = expected;
    if (!msg_.tryRpc(req, MsgType::FutexResponse)) {
        // Origin unreachable: degrade to a spurious wakeup — the
        // caller re-checks the futex word, exactly as after a real
        // EAGAIN race.
        kernel.stats().counter("futex_waits_unreachable") += 1;
        return false;
    }
    return true;
}

void
PopcornFutexPolicy::onFutexWait(KernelInstance &k, const Message &m)
{
    // Origin side: enqueue the remote waiter.
    k.machine().dataAccess(k.nodeId(), AccessType::Store,
                           k.dataAddrFor(m.arg1), 8);
    k.futexTable().enqueue(m.arg1, {m.from, static_cast<Pid>(m.arg0)});
    Message resp;
    resp.type = MsgType::FutexResponse;
    resp.from = k.nodeId();
    resp.to = m.from;
    resp.arg0 = m.arg0;
    resp.arg1 = m.arg1;
    msg_.send(resp);
}

unsigned
PopcornFutexPolicy::wake(KernelInstance &kernel, Task &task, Addr uaddr,
                         unsigned count)
{
    if (kernel.nodeId() == task.origin) {
        kernel.machine().dataAccess(kernel.nodeId(), AccessType::Store,
                                    kernel.dataAddrFor(uaddr), 8);
        auto woken = kernel.futexTable().wake(uaddr, count);
        for (const auto &w : woken) {
            if (w.node != kernel.nodeId()) {
                // Notify the remote kernel its thread is runnable.
                Message note;
                note.type = MsgType::FutexWake;
                note.from = kernel.nodeId();
                note.to = w.node;
                note.arg0 = w.pid;
                note.arg1 = uaddr;
                note.arg2 = 1; // notification, not a request
                if (msg_.sendReliable(note) != Errc::Ok) {
                    kernel.stats().counter("futex_wakes_lost") += 1;
                }
            }
        }
        return static_cast<unsigned>(woken.size());
    }

    // Remote: ask the origin to perform the wake.
    Message req;
    req.type = MsgType::FutexWake;
    req.from = kernel.nodeId();
    req.to = task.origin;
    req.arg0 = task.pid;
    req.arg1 = uaddr;
    req.arg2 = (static_cast<std::uint64_t>(count) << 8); // request
    auto resp = msg_.tryRpc(req, MsgType::FutexResponse);
    if (!resp) {
        // Origin unreachable after every retry: report zero wakeups.
        kernel.stats().counter("futex_wakes_unreachable") += 1;
        return 0;
    }
    return static_cast<unsigned>(resp->arg2);
}

void
PopcornFutexPolicy::onFutexWake(KernelInstance &k, const Message &m)
{
    if (m.arg2 & 1) {
        // Wake-up notification for a thread parked on this kernel:
        // scheduler work only.
        k.stats().counter("futex_wakeups_delivered") += 1;
        return;
    }
    // Origin side executing a remote kernel's wake request.
    unsigned count = static_cast<unsigned>(m.arg2 >> 8);
    k.machine().dataAccess(k.nodeId(), AccessType::Store,
                           k.dataAddrFor(m.arg1), 8);
    auto woken = k.futexTable().wake(m.arg1, count);
    for (const auto &w : woken) {
        if (w.node != k.nodeId()) {
            Message note;
            note.type = MsgType::FutexWake;
            note.from = k.nodeId();
            note.to = w.node;
            note.arg0 = w.pid;
            note.arg1 = m.arg1;
            note.arg2 = 1;
            // Fault-free: delivered when that node next dispatches
            // (if it is the requester, rpc() routes it to its pump).
            // Resilient mode acknowledges and retries instead.
            if (msg_.sendReliable(note, false) != Errc::Ok) {
                k.stats().counter("futex_wakes_lost") += 1;
            }
        }
    }
    Message resp;
    resp.type = MsgType::FutexResponse;
    resp.from = k.nodeId();
    resp.to = m.from;
    resp.arg0 = m.arg0;
    resp.arg1 = m.arg1;
    resp.arg2 = woken.size();
    msg_.send(resp);
}

// ===================== PopcornMigrationPolicy ========================

PopcornMigrationPolicy::PopcornMigrationPolicy(MessageLayer &msg,
                                               KernelLookup kernels,
                                               DsmEngine &engine)
    : msg_(msg), kernels_(std::move(kernels)), engine_(engine)
{
}

void
PopcornMigrationPolicy::installHandlers(KernelInstance &k)
{
    k.registerMsgHandler(MsgType::TaskMigrate,
                         [this, &k](const Message &m) {
                             onTaskMigrate(k, m);
                         });
    k.registerMsgHandler(MsgType::ProcessMigrate,
                         [this, &k](const Message &m) {
                             onProcessMigrate(k, m);
                         });
    k.registerMsgHandler(MsgType::ProcessVma,
                         [this, &k](const Message &m) {
                             onProcessVma(k, m);
                         });
    k.registerMsgHandler(MsgType::ProcessPage,
                         [this, &k](const Message &m) {
                             onProcessPage(k, m);
                         });
}

void
PopcornMigrationPolicy::trackTask(Pid pid, NodeId origin)
{
    current_[pid] = origin;
}

NodeId
PopcornMigrationPolicy::currentNode(Pid pid) const
{
    auto it = current_.find(pid);
    panic_if(it == current_.end(), "untracked task ", pid);
    return it->second;
}

void
PopcornMigrationPolicy::migrate(Pid pid, NodeId dest)
{
    NodeId src = currentNode(pid);
    if (src == dest)
        return;
    KernelInstance &ks = kernels_(src);
    Task &ts = ks.task(pid);

    // State transformation at the migration point (the Popcorn
    // compiler contract): source registers -> logical state.
    ks.machine().stall(src, transformCycles);

    Message m;
    m.type = MsgType::TaskMigrate;
    m.from = src;
    m.to = dest;
    m.arg0 = pid;
    m.arg1 = ts.origin;
    m.payload.resize(migrationStateWireSize());
    serializeMigrationState(ts.state, m.payload.data());
    if (msg_.sendReliable(m) != Errc::Ok) {
        // Destination unreachable: the thread keeps running at the
        // source — migration is best-effort placement, not
        // correctness.
        ks.stats().counter("migrations_aborted") += 1;
        ks.machine().tracer().instant(TraceCategory::Chaos,
                                      "migrate.aborted", src, pid,
                                      dest);
        return;
    }

    current_[pid] = dest;
}

void
PopcornMigrationPolicy::migrateProcess(Pid pid, NodeId dest)
{
    NodeId src = currentNode(pid);
    if (src == dest)
        return;
    KernelInstance &ks = kernels_(src);
    Task &ts = ks.task(pid);
    panic_if(src != ts.origin,
             "process migration must start from the origin (migrate "
             "the thread home first)");
    ks.machine().stall(src, transformCycles);

    // 0. Reclaim any page the remote kernel currently owns so the
    //    transfer ships the latest content (ownership pull-backs go
    //    through the normal DSM write path).
    std::vector<Vma> reclaimVmas;
    ts.as->vmas().forEach(
        [&](const Vma &v) { reclaimVmas.push_back(v); });
    for (const Vma &v : reclaimVmas) {
        if (!v.prot.writable)
            continue;
        for (Addr va = v.start; va < v.end; va += pageSize) {
            if (ts.as->pageTable().walk(va))
                continue;
            if (engine_.isManaged(pid, va)) {
                engine_.handlePageFault(ks, ts, va,
                                        XlateStatus::NotMapped,
                                        AccessType::Store);
            }
        }
    }

    // Any stage failing aborts the whole transfer: the destination's
    // partial copy is destroyed and the source keeps the authoritative
    // process — §5's "no kernel state to keep consistent" makes the
    // unwind exactly one destroyTask.
    auto abort = [&]() {
        KernelInstance &kd = kernels_(dest);
        if (kd.hasTask(pid))
            kd.destroyTask(pid);
        ks.stats().counter("process_migrations_aborted") += 1;
        ks.machine().tracer().instant(TraceCategory::Chaos,
                                      "migrate.process_aborted", src,
                                      pid, dest);
    };

    // 1. Kick-off: register state; the receiver becomes the origin.
    Message kick;
    kick.type = MsgType::ProcessMigrate;
    kick.from = src;
    kick.to = dest;
    kick.arg0 = pid;
    kick.payload.resize(migrationStateWireSize());
    serializeMigrationState(ts.state, kick.payload.data());
    if (msg_.sendReliable(kick) != Errc::Ok) {
        abort();
        return;
    }

    // 2. Every VMA.
    std::vector<Vma> vmas;
    ts.as->vmas().forEach([&](const Vma &v) { vmas.push_back(v); });
    for (const Vma &v : vmas) {
        Message vm;
        vm.type = MsgType::ProcessVma;
        vm.from = src;
        vm.to = dest;
        vm.arg0 = pid;
        vm.arg1 = v.start;
        vm.arg2 = v.end;
        vm.payload = {static_cast<std::uint8_t>(
                          (v.prot.writable ? 1 : 0) |
                          (v.prot.executable ? 2 : 0)),
                      static_cast<std::uint8_t>(v.kind)};
        if (msg_.sendReliable(vm) != Errc::Ok) {
            abort();
            return;
        }
    }

    // 3. Every resident page travels by content.
    for (const Vma &v : vmas) {
        for (Addr va = v.start; va < v.end; va += pageSize) {
            auto w = ts.as->pageTable().walk(va);
            if (!w)
                continue;
            Message pg;
            pg.type = MsgType::ProcessPage;
            pg.from = src;
            pg.to = dest;
            pg.arg0 = pid;
            pg.arg1 = va;
            pg.payload.resize(pageSize);
            ks.machine().streamAccess(src, AccessType::Load,
                                      pageBase(w->pte.frame),
                                      pageSize);
            ks.machine().memory().read(pageBase(w->pte.frame),
                                       pg.payload.data(), pageSize);
            if (msg_.sendReliable(pg) != Errc::Ok) {
                abort();
                return;
            }
        }
    }

    // 4. The source forgets the process entirely (no kernel state to
    //    keep consistent, §5).
    engine_.forgetTask(pid);
    ks.destroyTask(pid);
    current_[pid] = dest;
}

void
PopcornMigrationPolicy::onProcessMigrate(KernelInstance &k,
                                         const Message &m)
{
    Pid pid = static_cast<Pid>(m.arg0);
    if (k.hasTask(pid))
        k.destroyTask(pid);
    Task &t = k.createTask(pid, k.nodeId()); // new origin: here
    t.state = deserializeMigrationState(m.payload.data());
    k.machine().stall(k.nodeId(), transformCycles);
    k.stats().counter("process_migrations_in") += 1;
    k.machine().tracer().instant(TraceCategory::Migrate,
                                 "migrate.process_in", k.nodeId(), pid,
                                 m.from);
}

void
PopcornMigrationPolicy::onProcessVma(KernelInstance &k,
                                     const Message &m)
{
    Task &t = k.task(static_cast<Pid>(m.arg0));
    Vma v;
    v.start = m.arg1;
    v.end = m.arg2;
    v.prot.present = true;
    v.prot.user = true;
    v.prot.writable = m.payload.at(0) & 1;
    v.prot.executable = m.payload.at(0) & 2;
    v.kind = static_cast<VmaKind>(m.payload.at(1));
    bool ok = t.as->vmas().insert(v);
    panic_if(!ok, "process migration: VMA conflict");
}

void
PopcornMigrationPolicy::onProcessPage(KernelInstance &k,
                                      const Message &m)
{
    Task &t = k.task(static_cast<Pid>(m.arg0));
    Addr va = m.arg1;
    const Vma *vma = t.as->vmas().find(va);
    panic_if(!vma, "process migration: page outside every VMA");
    Addr frame = k.allocUserPage(false);
    t.ownedPages.push_back(frame);
    k.machine().memory().write(frame, m.payload.data(), pageSize);
    k.machine().streamAccess(k.nodeId(), AccessType::Store, frame,
                             pageSize);
    bool ok = t.as->mapPage(va, frame,
                            vmaPageAttrs(*vma, vma->prot.writable));
    panic_if(!ok, "process migration: duplicate page");
}

void
PopcornMigrationPolicy::onTaskMigrate(KernelInstance &k,
                                      const Message &m)
{
    Pid pid = static_cast<Pid>(m.arg0);
    NodeId origin = static_cast<NodeId>(m.arg1);
    Task *t = k.findTask(pid);
    if (!t)
        t = &k.createTask(pid, origin);
    t->state = deserializeMigrationState(m.payload.data());
    // Materialise into the destination ISA's registers.
    k.machine().stall(k.nodeId(), transformCycles);
    k.stats().counter("migrations_in") += 1;
    k.machine().tracer().instant(TraceCategory::Migrate, "migrate.in",
                                 k.nodeId(), pid, m.from);
}

} // namespace stramash
