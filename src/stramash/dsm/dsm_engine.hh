/**
 * @file
 * The software DSM page-coherence engine — Popcorn-Linux's mechanism
 * for providing a single application address space across
 * shared-nothing kernels (paper §2, §6.4, §9.2.3).
 *
 * Home-based write-invalidate protocol at page granularity:
 *
 *  - every page has an owner (initially the task's origin kernel);
 *  - a read fault replicates the page: the owner downgrades to
 *    read-only and ships the 4 KiB content; the requester maps a
 *    local copy (the "Replicated Pages" of Table 3);
 *  - a write fault (or upgrade) invalidates every other copy and
 *    transfers ownership;
 *  - first touch of an anonymous page at a non-origin kernel costs
 *    two message rounds — allocation at the origin, then replication
 *    — exactly as the paper describes Popcorn's behaviour.
 *
 * The engine is also reused by the Stramash policies for their
 * slow-path pages (upper page-table level missing, §9.2.3), which is
 * why it is a standalone class rather than part of the Popcorn
 * fault handler.
 */

#ifndef STRAMASH_DSM_DSM_ENGINE_HH
#define STRAMASH_DSM_DSM_ENGINE_HH

#include <functional>
#include <map>
#include <unordered_map>

#include "stramash/kernel/kernel.hh"

namespace stramash
{

/** Resolve a node id to its kernel instance. */
using KernelLookup = std::function<KernelInstance &(NodeId)>;

class DsmEngine
{
  public:
    DsmEngine(MessageLayer &msg, KernelLookup kernels);

    /** Register the protocol's message handlers on a kernel. */
    void installHandlers(KernelInstance &k);

    /**
     * Resolve a DSM fault raised at @p kernel. Covers NotMapped
     * (fetch/replicate) and NoWrite (upgrade/invalidate).
     *
     * Under fault injection a protocol round can exhaust its retry
     * budget; the engine then returns with the page still unmapped
     * (coherence metadata untouched or safely partial) and the
     * architectural retry loop in KernelInstance::resolve re-faults.
     */
    void handlePageFault(KernelInstance &kernel, Task &task, Addr va,
                         XlateStatus kind, AccessType type);

    /** True if this (pid, page) is under DSM management. */
    bool isManaged(Pid pid, Addr vpage) const;

    /** Mark a page DSM-managed without faulting (Stramash slow path
     *  entry). */
    void adopt(Pid pid, Addr vpage, NodeId owner);

    /**
     * CPU cost of one traversal of the Linux fault path plus the DSM
     * protocol state machine, charged at the faulting kernel and at
     * the owner serving the request.
     */
    static constexpr Cycles faultCpuCycles = 8000;

    /** Pages whose content was copied across kernels (Table 3). */
    std::uint64_t replicatedPages() const { return replicated_; }

    /** Invalidation rounds performed (write upgrades). */
    std::uint64_t invalidations() const { return invalidations_; }

    void
    resetCounters()
    {
        replicated_ = 0;
        invalidations_ = 0;
    }

    /** Drop all metadata for an exiting task. */
    void forgetTask(Pid pid);

    /** Outcome of a crash-recovery ownership sweep. */
    struct DsmRecovery
    {
        /** Pages whose ownership moved to a surviving holder. */
        std::uint64_t reowned = 0;
        /** Pages with no surviving copy: metadata dropped; a later
         *  touch re-faults them as fresh (zero-filled) pages — the
         *  honest shared-nothing data-loss semantics. */
        std::uint64_t lost = 0;
    };

    /**
     * Crash recovery: walk every page record, strip the dead node
     * from the holder sets, and re-assign ownership of pages the
     * dead node owned — to @p survivor when it holds a copy, to the
     * lowest surviving holder otherwise, or drop the record when no
     * copy survives. Frame-index entries whose frame satisfies
     * @p isDeadFrame (frames in the dead node's memory) are purged.
     */
    DsmRecovery recoverDeadNode(
        NodeId dead, NodeId survivor,
        const std::function<bool(Addr)> &isDeadFrame);

    /**
     * Cache write-back interplay (§9.2.2): a dirty line leaving a
     * node's LLC that belongs to a replicated page (another node
     * holds a copy) triggers the DSM consistency policy. Wired to
     * CoherenceDomain's writeback hook by the System.
     */
    void onWriteback(NodeId node, Addr lineAddr);

    /** Cost of one writeback-triggered consistency action. */
    static constexpr Cycles writebackActionCycles = 2000;

    std::uint64_t writebackActions() const { return wbActions_; }

  private:
    struct PageState
    {
        NodeId owner;
        /** Nodes holding a (read-only or owning) copy. */
        std::uint32_t holders;
    };

    MessageLayer &msg_;
    KernelLookup kernels_;
    /** (pid, vpage) -> coherence state. Mutated only inside message
     *  handlers / the faulting kernel's code path. */
    std::map<std::pair<Pid, Addr>, PageState> pages_;
    /** Physical frame -> (pid, vpage) for every frame backing a
     *  DSM-managed page on any node (writeback interplay). */
    std::unordered_map<Addr, std::pair<Pid, Addr>> frameIndex_;
    std::uint64_t replicated_ = 0;
    std::uint64_t invalidations_ = 0;
    std::uint64_t wbActions_ = 0;

    void indexFrame(Addr frame, Pid pid, Addr vpage);

    PageState &state(Pid pid, Addr vpage, NodeId defaultOwner);

    /** Charge @p kernel a metadata access for (pid, vpage). */
    void touchMeta(KernelInstance &k, Pid pid, Addr vpage,
                   AccessType type);

    // Message handlers (run on the receiving kernel).
    void onPageRequest(KernelInstance &k, const Message &m);
    void onPageInvalidate(KernelInstance &k, const Message &m);

    /** Ship 4 KiB of page content out of @p k's mapping. */
    std::vector<std::uint8_t> readPageContent(KernelInstance &k,
                                              Task &t, Addr vpage);

    /** Install @p content into a local frame for (task, vpage). */
    void installCopy(KernelInstance &k, Task &t, Addr vpage,
                     const std::vector<std::uint8_t> &content,
                     bool writable);

    /**
     * Ensure the requester knows the VMA covering @p va.
     * @return false if the origin could not be reached (the caller
     *         must back out and let the fault retry).
     */
    bool ensureVma(KernelInstance &k, Task &t, Addr va);

    void onVmaRequest(KernelInstance &k, const Message &m);
};

} // namespace stramash

#endif // STRAMASH_DSM_DSM_ENGINE_HH
