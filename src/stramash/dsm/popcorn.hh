/**
 * @file
 * The Popcorn-Linux policy set: the state-of-the-art multiple-kernel
 * (shared-nothing) baseline the paper compares against.
 *
 *  - PopcornFaultHandler: every cross-kernel page interaction goes
 *    through the DSM engine (replication, invalidation, origin-side
 *    anonymous allocation).
 *  - PopcornFutexPolicy: all futexes are created and managed by the
 *    origin kernel; remote kernels engage locks by messaging
 *    (paper §6.5).
 *  - PopcornMigrationPolicy: thread migration ships the transformed
 *    register state in a message; the address space follows lazily
 *    through DSM faults.
 */

#ifndef STRAMASH_DSM_POPCORN_HH
#define STRAMASH_DSM_POPCORN_HH

#include "stramash/dsm/dsm_engine.hh"

namespace stramash
{

class PopcornFaultHandler final : public FaultHandler
{
  public:
    explicit PopcornFaultHandler(DsmEngine &engine) : engine_(engine) {}

    void
    handleFault(KernelInstance &kernel, Task &task, Addr va,
                XlateStatus kind, AccessType type) override
    {
        engine_.handlePageFault(kernel, task, va, kind, type);
    }

    void
    onTaskExit(KernelInstance &kernel, Task &task) override
    {
        (void)kernel;
        engine_.forgetTask(task.pid);
    }

  private:
    DsmEngine &engine_;
};

/** Origin-managed futexes over messages. */
class PopcornFutexPolicy final : public FutexPolicy
{
  public:
    PopcornFutexPolicy(MessageLayer &msg, KernelLookup kernels);

    /** Register the origin-side protocol handlers on a kernel. */
    void installHandlers(KernelInstance &k);

    bool wait(KernelInstance &kernel, Task &task, Addr uaddr,
              std::uint32_t expected) override;
    unsigned wake(KernelInstance &kernel, Task &task, Addr uaddr,
                  unsigned count) override;

  private:
    MessageLayer &msg_;
    KernelLookup kernels_;

    void onFutexWait(KernelInstance &k, const Message &m);
    void onFutexWake(KernelInstance &k, const Message &m);
};

/** Message-based thread migration. */
class PopcornMigrationPolicy final : public MigrationPolicy
{
  public:
    PopcornMigrationPolicy(MessageLayer &msg, KernelLookup kernels,
                           DsmEngine &engine);

    void installHandlers(KernelInstance &k);

    /** Record a freshly spawned task (running at its origin). */
    void trackTask(Pid pid, NodeId origin);

    void migrate(Pid pid, NodeId dest) override;

    /** Whole-process transfer: register state, every VMA and every
     *  resident page travel as messages; the source forgets the
     *  task and the destination becomes the new origin (§5). */
    void migrateProcess(Pid pid, NodeId dest) override;

    std::uint64_t
    replicatedPages() const override
    {
        return engine_.replicatedPages();
    }

    void resetCounters() override { engine_.resetCounters(); }

    NodeId currentNode(Pid pid) const override;

    void
    setCurrentNode(Pid pid, NodeId node) override
    {
        current_[pid] = node;
    }

    void forgetTask(Pid pid) override { current_.erase(pid); }

    void
    forEachTask(
        const std::function<void(Pid, NodeId)> &fn) const override
    {
        for (const auto &[pid, node] : current_)
            fn(pid, node);
    }

    /** Fixed cost of the state-transformation runtime, per side. */
    static constexpr Cycles transformCycles = 2000;

  private:
    MessageLayer &msg_;
    KernelLookup kernels_;
    DsmEngine &engine_;
    std::map<Pid, NodeId> current_;

    void onTaskMigrate(KernelInstance &k, const Message &m);
    void onProcessMigrate(KernelInstance &k, const Message &m);
    void onProcessVma(KernelInstance &k, const Message &m);
    void onProcessPage(KernelInstance &k, const Message &m);
};

} // namespace stramash

#endif // STRAMASH_DSM_POPCORN_HH
