#include "stramash/dsm/dsm_engine.hh"

namespace stramash
{

namespace
{

constexpr std::uint64_t flagWrite = 1;
constexpr std::uint64_t flagAllocOnly = 2;

std::uint64_t
metaKey(Pid pid, Addr vpage)
{
    return (static_cast<std::uint64_t>(pid) << 44) ^ (vpage >> 12);
}

} // namespace

DsmEngine::DsmEngine(MessageLayer &msg, KernelLookup kernels)
    : msg_(msg), kernels_(std::move(kernels))
{
}

void
DsmEngine::installHandlers(KernelInstance &k)
{
    k.registerMsgHandler(MsgType::PageRequest,
                         [this, &k](const Message &m) {
                             onPageRequest(k, m);
                         });
    k.registerMsgHandler(MsgType::PageInvalidate,
                         [this, &k](const Message &m) {
                             onPageInvalidate(k, m);
                         });
    k.registerMsgHandler(MsgType::VmaRequest,
                         [this, &k](const Message &m) {
                             onVmaRequest(k, m);
                         });
}

DsmEngine::PageState &
DsmEngine::state(Pid pid, Addr vpage, NodeId defaultOwner)
{
    auto key = std::make_pair(pid, vpage);
    auto it = pages_.find(key);
    if (it == pages_.end())
        it = pages_.emplace(key, PageState{defaultOwner, 0}).first;
    return it->second;
}

bool
DsmEngine::isManaged(Pid pid, Addr vpage) const
{
    return pages_.count({pid, vpage}) != 0;
}

void
DsmEngine::adopt(Pid pid, Addr vpage, NodeId owner)
{
    state(pid, vpage, owner).owner = owner;
}

void
DsmEngine::forgetTask(Pid pid)
{
    auto it = pages_.lower_bound({pid, 0});
    while (it != pages_.end() && it->first.first == pid)
        it = pages_.erase(it);
    for (auto fit = frameIndex_.begin(); fit != frameIndex_.end();) {
        if (fit->second.first == pid)
            fit = frameIndex_.erase(fit);
        else
            ++fit;
    }
}

DsmEngine::DsmRecovery
DsmEngine::recoverDeadNode(NodeId dead, NodeId survivor,
                           const std::function<bool(Addr)> &isDeadFrame)
{
    DsmRecovery out;
    const std::uint32_t deadBit = 1u << dead;
    for (auto it = pages_.begin(); it != pages_.end();) {
        PageState &ps = it->second;
        ps.holders &= ~deadBit;
        if (ps.owner != dead) {
            ++it;
            continue;
        }
        if (ps.holders == 0) {
            // No surviving copy anywhere: the page's content died
            // with its owner. Drop the record — the next touch
            // re-faults it as a fresh anonymous page at the task's
            // (recovered) origin.
            ++out.lost;
            it = pages_.erase(it);
            continue;
        }
        // Prefer the designated survivor's copy; otherwise the lowest
        // surviving holder. A read-only copy is fine — the first
        // write after recovery upgrades it locally, as owner.
        NodeId newOwner = survivor;
        if (!(ps.holders & (1u << survivor))) {
            newOwner = 0;
            while (!(ps.holders & (1u << newOwner)))
                ++newOwner;
        }
        ps.owner = newOwner;
        ++out.reowned;
        ++it;
    }
    for (auto fit = frameIndex_.begin(); fit != frameIndex_.end();) {
        if (isDeadFrame(fit->first))
            fit = frameIndex_.erase(fit);
        else
            ++fit;
    }
    return out;
}

void
DsmEngine::indexFrame(Addr frame, Pid pid, Addr vpage)
{
    frameIndex_[pageBase(frame)] = {pid, vpage};
}

void
DsmEngine::onWriteback(NodeId node, Addr lineAddr)
{
    auto it = frameIndex_.find(pageBase(lineAddr));
    if (it == frameIndex_.end())
        return;
    auto [pid, vpage] = it->second;
    auto pit = pages_.find({pid, vpage});
    if (pit == pages_.end())
        return;
    // Only replicated pages (another node holds a copy) trigger the
    // consistency policy on write-back (paper §9.2.2).
    std::uint32_t others = pit->second.holders & ~(1u << node);
    if (others == 0)
        return;
    kernels_(node).machine().stall(node, writebackActionCycles);
    ++wbActions_;
}

void
DsmEngine::touchMeta(KernelInstance &k, Pid pid, Addr vpage,
                     AccessType type)
{
    k.machine().dataAccess(k.nodeId(), type,
                           k.dataAddrFor(metaKey(pid, vpage)), 8);
}

std::vector<std::uint8_t>
DsmEngine::readPageContent(KernelInstance &k, Task &t, Addr vpage)
{
    XlateResult x = t.as->translate(vpage, AccessType::Load);
    panic_if(x.status != XlateStatus::Ok,
             "DSM owner has no mapping to read");
    std::vector<std::uint8_t> content(pageSize);
    k.machine().streamAccess(k.nodeId(), AccessType::Load,
                             pageBase(x.pa), pageSize);
    k.machine().memory().read(pageBase(x.pa), content.data(), pageSize);
    return content;
}

void
DsmEngine::installCopy(KernelInstance &k, Task &t, Addr vpage,
                       const std::vector<std::uint8_t> &content,
                       bool writable)
{
    panic_if(content.size() != pageSize, "bad page payload");
    const Vma *vma = t.as->vmas().find(vpage);
    panic_if(!vma, "installCopy without a VMA");

    Addr frame;
    XlateResult existing = t.as->translate(vpage, AccessType::Load);
    if (existing.status == XlateStatus::Ok) {
        // Re-use the replica frame we already hold.
        frame = pageBase(existing.pa);
        t.as->protectPage(vpage, vmaPageAttrs(*vma, writable));
    } else {
        frame = k.allocUserPage(false);
        t.ownedPages.push_back(frame);
        bool ok = t.as->mapPage(vpage, frame, vmaPageAttrs(*vma, writable));
        panic_if(!ok, "installCopy: mapping already present");
    }
    indexFrame(frame, t.pid, vpage);
    k.machine().streamAccess(k.nodeId(), AccessType::Store, frame,
                             pageSize);
    k.machine().memory().write(frame, content.data(), pageSize);
    // The install writes through: the frame's memory copy *is* the
    // just-received content, so the cached lines are clean
    // (Exclusive). Only application stores re-dirty them.
    if (k.machine().config().cachePluginEnabled) {
        CacheHierarchy &hier =
            k.machine().caches().hierarchy(k.nodeId());
        for (Addr line = frame; line < frame + pageSize;
             line += cacheLineSize)
            hier.setState(line, Mesi::Exclusive);
    }
}

bool
DsmEngine::ensureVma(KernelInstance &k, Task &t, Addr va)
{
    if (t.as->vmas().find(va))
        return true;
    panic_if(t.origin == k.nodeId(),
             "origin fault outside every VMA (segfault) at 0x",
             std::hex, va);
    Message req;
    req.type = MsgType::VmaRequest;
    req.from = k.nodeId();
    req.to = t.origin;
    req.arg0 = t.pid;
    req.arg1 = va;
    auto resp = msg_.tryRpc(req, MsgType::VmaResponse);
    if (!resp) {
        k.stats().counter("dsm_vma_unreachable") += 1;
        return false;
    }
    panic_if(resp->arg1 == 0, "remote fault outside every VMA at 0x",
             std::hex, va);
    Vma vma;
    vma.start = resp->arg0;
    vma.end = resp->arg1;
    vma.prot.present = true;
    vma.prot.user = true;
    vma.prot.writable = resp->arg2 & 1;
    vma.prot.executable = resp->arg2 & 2;
    vma.kind = static_cast<VmaKind>((resp->arg2 >> 8) & 0xff);
    bool ok = t.as->vmas().insert(vma);
    panic_if(!ok, "remote VMA overlaps local tree");
    return true;
}

void
DsmEngine::onVmaRequest(KernelInstance &k, const Message &m)
{
    Task &t = k.task(static_cast<Pid>(m.arg0));
    const Vma *vma = t.as->vmas().find(m.arg1);
    // Charge the lookup (a handful of tree-node reads).
    k.machine().dataAccess(k.nodeId(), AccessType::Load,
                           k.dataAddrFor(metaKey(t.pid, m.arg1)), 64);
    Message resp;
    resp.type = MsgType::VmaResponse;
    resp.from = k.nodeId();
    resp.to = m.from;
    if (vma) {
        resp.arg0 = vma->start;
        resp.arg1 = vma->end;
        resp.arg2 = (vma->prot.writable ? 1 : 0) |
                    (vma->prot.executable ? 2 : 0) |
                    (static_cast<std::uint64_t>(vma->kind) << 8);
    }
    msg_.send(resp);
}

void
DsmEngine::handlePageFault(KernelInstance &kernel, Task &task, Addr va,
                           XlateStatus kind, AccessType type)
{
    Addr vpage = pageBase(va);
    NodeId self = kernel.nodeId();
    std::uint32_t selfBit = 1u << self;
    Pid pid = task.pid;

    if (!ensureVma(kernel, task, va))
        return; // back out: resolve() re-faults and retries
    bool fresh = !pages_.count({pid, vpage});
    PageState &st = state(pid, vpage, task.origin);
    touchMeta(kernel, pid, vpage, AccessType::Load);
    // The Linux fault path + DSM protocol machine on the requester.
    kernel.machine().stall(self, faultCpuCycles);

    bool wantWrite = type == AccessType::Store;

    if (kind == XlateStatus::NotMapped) {
        if (st.owner == self) {
            // First touch at the owner: plain anonymous fault.
            bool ok = kernel.handleLocalAnonFault(task, va, type);
            panic_if(!ok, "anon fault outside VMA");
            st.holders |= selfBit;
            return;
        }

        // Popcorn allocates anonymous pages at the origin: a fresh
        // remote touch costs an allocation round before replication
        // (paper §6.4: "at least 2 rounds of message passing").
        if (fresh) {
            Message alloc;
            alloc.type = MsgType::PageRequest;
            alloc.from = self;
            alloc.to = st.owner;
            alloc.arg0 = pid;
            alloc.arg1 = vpage;
            alloc.arg2 = flagAllocOnly;
            if (!msg_.tryRpc(alloc, MsgType::PageResponse)) {
                kernel.stats().counter("dsm_rounds_unreachable") += 1;
                return; // page still unmapped; resolve() retries
            }
        }

        Message req;
        req.type = MsgType::PageRequest;
        req.from = self;
        req.to = st.owner;
        req.arg0 = pid;
        req.arg1 = vpage;
        req.arg2 = wantWrite ? flagWrite : 0;
        auto resp = msg_.tryRpc(req, MsgType::PageResponse);
        if (!resp) {
            kernel.stats().counter("dsm_rounds_unreachable") += 1;
            return;
        }

        installCopy(kernel, task, vpage, resp->payload, wantWrite);
        ++replicated_;
        kernel.machine().tracer().instant(TraceCategory::Fault,
                                          "fault.dsm_replicate", self,
                                          pid, vpage, st.owner);
        touchMeta(kernel, pid, vpage, AccessType::Store);
        if (wantWrite) {
            st.owner = self;
            st.holders = selfBit;
        } else {
            st.holders |= selfBit;
        }
        return;
    }

    // NoWrite: upgrade an existing read-only copy.
    panic_if(kind != XlateStatus::NoWrite, "unexpected fault kind");
    const Vma *vma = task.as->vmas().find(va);
    panic_if(!vma, "upgrade fault without VMA");
    panic_if(!vma->prot.writable,
             "write to read-only VMA at 0x", std::hex, va);

    if (st.owner == self) {
        // We own it; invalidate the other read copies. Holder bits
        // clear incrementally so an aborted round never re-counts the
        // copies already invalidated when the fault retries.
        for (NodeId n = 0; n < 32; ++n) {
            if (n == self || !(st.holders & (1u << n)))
                continue;
            Message inv;
            inv.type = MsgType::PageInvalidate;
            inv.from = self;
            inv.to = n;
            inv.arg0 = pid;
            inv.arg1 = vpage;
            if (!msg_.tryRpc(inv, MsgType::PageInvalidateAck)) {
                kernel.stats().counter("dsm_rounds_unreachable") += 1;
                return; // page stays read-only; resolve() retries
            }
            st.holders &= ~(1u << n);
            ++invalidations_;
            kernel.machine().tracer().instant(
                TraceCategory::Fault, "fault.dsm_invalidate", self, pid,
                vpage, n);
        }
        st.holders = selfBit;
        task.as->protectPage(vpage, vmaPageAttrs(*vma, true));
        touchMeta(kernel, pid, vpage, AccessType::Store);
        return;
    }

    // Someone else owns it: request write ownership (ships content —
    // the owner may have newer data than our stale read copy).
    Message req;
    req.type = MsgType::PageRequest;
    req.from = self;
    req.to = st.owner;
    req.arg0 = pid;
    req.arg1 = vpage;
    req.arg2 = flagWrite;
    auto resp = msg_.tryRpc(req, MsgType::PageResponse);
    if (!resp) {
        kernel.stats().counter("dsm_rounds_unreachable") += 1;
        return;
    }
    installCopy(kernel, task, vpage, resp->payload, true);
    ++replicated_;
    kernel.machine().tracer().instant(TraceCategory::Fault,
                                      "fault.dsm_replicate", self, pid,
                                      vpage, st.owner);
    st.owner = self;
    st.holders = selfBit;
    touchMeta(kernel, pid, vpage, AccessType::Store);
}

void
DsmEngine::onPageRequest(KernelInstance &k, const Message &m)
{
    Pid pid = static_cast<Pid>(m.arg0);
    Addr vpage = m.arg1;
    NodeId self = k.nodeId();
    std::uint32_t selfBit = 1u << self;
    Task &t = k.task(pid);
    PageState &st = state(pid, vpage, t.origin);
    touchMeta(k, pid, vpage, AccessType::Load);
    k.machine().stall(self, faultCpuCycles);

    Message resp;
    resp.type = MsgType::PageResponse;
    resp.from = self;
    resp.to = m.from;
    resp.arg0 = pid;
    resp.arg1 = vpage;

    if (m.arg2 & flagAllocOnly) {
        // Allocation round: materialise the page at the origin.
        XlateResult x = t.as->translate(vpage, AccessType::Load);
        if (x.status != XlateStatus::Ok) {
            bool ok = k.handleLocalAnonFault(t, vpage, AccessType::Load);
            panic_if(!ok, "alloc round outside VMA");
        }
        st.holders |= selfBit;
        msg_.send(resp);
        return;
    }

    // The owner may itself have lost the mapping (it was created
    // fresh by the alloc round above, or this kernel re-gained
    // ownership without re-touching).
    XlateResult x = t.as->translate(vpage, AccessType::Load);
    if (x.status != XlateStatus::Ok) {
        bool ok = k.handleLocalAnonFault(t, vpage, AccessType::Load);
        panic_if(!ok, "owner cannot materialise page");
        st.holders |= selfBit;
    }

    resp.payload = readPageContent(k, t, vpage);
    {
        XlateResult owned = t.as->translate(vpage, AccessType::Load);
        if (owned.status == XlateStatus::Ok)
            indexFrame(pageBase(owned.pa), pid, vpage);
    }

    const Vma *vma = t.as->vmas().find(vpage);
    panic_if(!vma, "owner has mapping but no VMA");

    if (m.arg2 & flagWrite) {
        // Ownership transfer: drop our copy entirely.
        t.as->unmapPage(vpage);
        st.owner = m.from;
        st.holders = 1u << m.from;
        ++invalidations_;
    } else {
        // Keep a read-only copy alongside the new replica.
        t.as->protectPage(vpage, vmaPageAttrs(*vma, false));
        st.holders |= selfBit | (1u << m.from);
    }
    touchMeta(k, pid, vpage, AccessType::Store);
    msg_.send(resp);
}

void
DsmEngine::onPageInvalidate(KernelInstance &k, const Message &m)
{
    Pid pid = static_cast<Pid>(m.arg0);
    Addr vpage = m.arg1;
    Task *t = k.findTask(pid);
    if (t)
        t->as->unmapPage(vpage);
    touchMeta(k, pid, vpage, AccessType::Store);

    Message ack;
    ack.type = MsgType::PageInvalidateAck;
    ack.from = k.nodeId();
    ack.to = m.from;
    ack.arg0 = pid;
    ack.arg1 = vpage;
    msg_.send(ack);
}

} // namespace stramash
