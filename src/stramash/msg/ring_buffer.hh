/**
 * @file
 * A shared-memory message ring resident in guest physical memory
 * (paper §6.2: "one or more pairs of shared memory ring buffers per
 * kernel pair").
 *
 * The ring's storage is real guest memory, so every enqueue/dequeue
 * performs actual loads and stores *through the machine's cache and
 * coherence model*. The messaging cost the paper measures therefore
 * emerges from placement: a ring in the pool is remote for both
 * kernels (Shared-SHM), in x86-local memory it is remote only for
 * the Arm side (Separated-SHM), and so on — no per-model constants.
 */

#ifndef STRAMASH_MSG_RING_BUFFER_HH
#define STRAMASH_MSG_RING_BUFFER_HH

#include <optional>

#include "stramash/msg/message.hh"
#include "stramash/sim/machine.hh"

namespace stramash
{

/**
 * Fixed-slot SPSC ring in guest memory. Layout:
 *   [0,  8)  head (next slot to read), written by consumer
 *   [8, 16)  tail (next slot to write), written by producer
 *   [64, …)  slots of slotBytes each
 */
class MessageRing
{
  public:
    /** Header (64 B) + page payload: fits any DSM message. */
    static constexpr std::size_t slotBytes =
        Message::headerBytes + pageSize;

    /**
     * @param base guest-physical base of the ring area
     * @param bytes total bytes reserved (determines slot count)
     */
    MessageRing(Machine &machine, Addr base, Addr bytes);

    /** Capacity in messages. */
    std::size_t capacity() const { return numSlots_ - 1; }

    /** Messages currently queued. */
    std::size_t size() const;

    // ---- occupancy / backpressure hooks (uncharged host reads) ----

    /** Free slots before enqueue() starts failing. */
    std::size_t freeSlots() const { return capacity() - size(); }

    /** True when the next enqueue() would be refused. */
    bool full() const { return size() >= capacity(); }

    /** Queued fraction of capacity, in [0, 1]. */
    double
    occupancy() const
    {
        return static_cast<double>(size()) /
               static_cast<double>(capacity());
    }

    /** Deepest the ring has ever been (post-enqueue depth). An
     *  admission controller consults this to size its shed
     *  threshold; reset only by recreating the ring. */
    std::size_t highWatermark() const { return highWatermark_; }

    /**
     * Enqueue, charging the producing node the control-word and slot
     * stores through the cache model.
     * @return false if the ring is full.
     */
    bool enqueue(NodeId producer, const Message &msg);

    /**
     * Dequeue, charging the consuming node the control-word and slot
     * loads.
     */
    std::optional<Message> dequeue(NodeId consumer);

    /**
     * Charge one polling probe (a head/tail load) without consuming.
     * @return true if a message is available.
     */
    bool pollProbe(NodeId consumer);

    /**
     * Charge exactly what an empty dequeue() costs — the head and
     * tail control-word loads — without touching the ring's guest
     * memory at all. A parallel receive scan uses this for rings
     * another host lane has claimed: the classic scan would have
     * found them empty and paid this, so paying it blind keeps the
     * timing bit-identical without racing on the ring state.
     */
    void chargeEmptyPeek(NodeId consumer);

    Addr base() const { return base_; }

  private:
    Machine &machine_;
    Addr base_;
    std::size_t numSlots_;
    std::size_t highWatermark_ = 0;

    Addr headAddr() const { return base_; }
    Addr tailAddr() const { return base_ + 8; }
    Addr slotAddr(std::uint64_t idx) const
    {
        return base_ + 64 + idx * slotBytes;
    }
};

} // namespace stramash

#endif // STRAMASH_MSG_RING_BUFFER_HH
