#include "stramash/msg/transport.hh"

#include "stramash/common/units.hh"
#include "stramash/sim/parallel_epoch.hh"

namespace stramash
{

namespace
{

/** The channel pair the calling lane has claimed, if any. */
struct RingScope
{
    NodeId a = 0;
    NodeId b = 0;
    bool active = false;

    bool covers(NodeId n) const { return n == a || n == b; }
};

RingScope &
tlsRingScope()
{
    static thread_local RingScope scope;
    return scope;
}

} // namespace

MessageLayer::MessageLayer(Machine &machine)
    : machine_(machine), stats_("msg")
{
    pairNodes_ = machine.nodeCount();
    if (pairNodes_ > 1)
        pairMu_ =
            std::make_unique<std::mutex[]>(pairNodes_ * pairNodes_);
}

std::mutex &
MessageLayer::pairMutex(NodeId a, NodeId b)
{
    panic_if(a >= pairNodes_ || b >= pairNodes_ || a == b,
             "pairMutex(", a, ", ", b, "): bad channel pair");
    NodeId lo = std::min(a, b);
    NodeId hi = std::max(a, b);
    return pairMu_[lo * pairNodes_ + hi];
}

ChannelScope::ChannelScope(MessageLayer &layer, NodeId a, NodeId b)
{
    if (!tlsLaneContext())
        return;
    RingScope &rs = tlsRingScope();
    panic_if(rs.active, "nested channel scopes on one lane");
    mu_ = &layer.pairMutex(a, b);
    mu_->lock();
    rs = {std::min(a, b), std::max(a, b), true};
}

ChannelScope::~ChannelScope()
{
    if (!mu_)
        return;
    tlsRingScope().active = false;
    mu_->unlock();
}

void
MessageLayer::registerHandler(NodeId node, MsgHandler handler)
{
    handlers_[node] = std::move(handler);
}

bool
MessageLayer::resilient() const
{
    return machine_.faultInjector() != nullptr;
}

void
MessageLayer::cacheReply(std::uint32_t rpcId, const Message &resp)
{
    auto [it, fresh] = replyCache_.try_emplace(rpcId, resp);
    if (!fresh) {
        it->second = resp;
        return;
    }
    replyOrder_.push_back(rpcId);
    while (replyOrder_.size() > replyCacheCapacity) {
        replyCache_.erase(replyOrder_.front());
        replyOrder_.pop_front();
    }
}

Errc
MessageLayer::send(const Message &msg)
{
    panic_if(msg.from == msg.to, "message to self");
    // Crash-stop silencing: a dead node neither sends nor is sent to.
    // From the live sender's point of view the message just vanishes
    // (exactly like a wire drop); its retry/timeout machinery is what
    // notices the peer is gone.
    if (machine_.anyNodeDead() &&
        (!machine_.nodeAlive(msg.from) || !machine_.nodeAlive(msg.to))) {
        stats_.counter("dropped_dead_node") += 1;
        machine_.tracer().instant(
            TraceCategory::Chaos, "msg.drop_dead", msg.from, 0,
            static_cast<std::uint64_t>(msg.type), msg.to);
        return Errc::Ok;
    }
    Message m = msg;
    m.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    FaultInjector *fi = machine_.faultInjector();
    if (fi) {
        // Response capture for at-most-once replay: the first
        // response-typed message a serving handler sends back to its
        // requester answers that rpc.
        if (!serveStack_.empty() && m.rpcId == 0 &&
            m.respondsTo == 0 && msgTypeIsResponse(m.type)) {
            ServeCtx &ctx = serveStack_.back();
            if (!ctx.responded && m.to == ctx.requester) {
                m.respondsTo = ctx.rpcId;
                ctx.responded = true;
            }
        }
        m.crc = m.computeCrc();
        if (m.respondsTo != 0)
            cacheReply(m.respondsTo, m);
    }
    sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(m.wireSize(), std::memory_order_relaxed);
    stats_.counter("sent_total") += 1;
    stats_.counter(std::string("sent.") + msgTypeName(m.type)) += 1;
    stats_.counter("bytes_sent") += m.wireSize();
    stats_.histogram("wire_bytes", {64, 256, 1024, 4096})
        .sample(m.wireSize());
    // The span covers the sender-side transport costs (ring stores /
    // stack copy); the event name is the message type so Perfetto
    // tracks read as a protocol timeline.
    STRAMASH_TRACE_SPAN(machine_.tracer(), TraceCategory::Msg,
                        msgTypeName(m.type), m.from, 0, m.seq,
                        m.wireSize());

    if (fi) {
        if (machine_.anyLinkImpaired()) {
            switch (machine_.linkState(m.from, m.to)) {
              case LinkState::Up:
                break;
              case LinkState::Severed:
                // Dead wire: the NIC did its work (the message counts
                // as sent) but nothing arrives, and the sender cannot
                // tell — its retry/timeout machinery is what notices.
                fi->partition().counter("msgs_dropped_severed") += 1;
                machine_.tracer().instant(
                    TraceCategory::Chaos, "link.msg_drop", m.from, 0,
                    static_cast<std::uint64_t>(m.type), m.to);
                return Errc::Ok;
              case LinkState::Lossy:
                if (fi->shouldDropOnLossyLink(m.from, m.to))
                    return Errc::Ok;
                break;
              case LinkState::Delayed:
                // Park in flight: the copy re-enters the transport
                // only once the receiver's clock has advanced past
                // the link delay (releaseDueParked), so a sustained
                // delay starves timeouts instead of stalling anyone.
                fi->partition().counter("msgs_parked") += 1;
                machine_.tracer().instant(
                    TraceCategory::Chaos, "link.msg_park", m.from, 0,
                    m.seq, m.to);
                parked_[m.to].push_back(
                    {machine_.node(m.to).cycles() +
                         fi->plan().linkDelayCycles,
                     m});
                return Errc::Ok;
            }
        }
        if (fi->shouldDropMessage(m.from, m.to)) {
            // Lost on the wire: the sender cannot tell.
            return Errc::Ok;
        }
        Cycles delay = fi->messageDelayCycles(m.from, m.to);
        if (delay) {
            // Late delivery: the receiver's clock absorbs the delay.
            machine_.stall(m.to, delay);
        }
        bool pagePayload = m.type == MsgType::PageResponse ||
                           m.type == MsgType::ProcessPage;
        Message wire = m;
        if (fi->shouldCorruptPayload(m.from, m.to, pagePayload)) {
            // Damage the wire copy; the crc still describes the
            // original, so the receiver will detect the mismatch.
            fi->corrupt(wire.payload, wire.arg0);
        }
        Errc e = transportSend(wire);
        if (e != Errc::Ok) {
            stats_.counter("ring_full") += 1;
            machine_.tracer().instant(TraceCategory::Msg,
                                      "msg.ring_full", m.from, 0,
                                      m.seq, m.to);
            return e;
        }
        if (fi->shouldDuplicateMessage(m.from, m.to)) {
            // Second delivery with the same seq: the receiver's
            // dedup must swallow it.
            transportSend(wire);
        }
        return Errc::Ok;
    }

    Errc e = transportSend(m);
    if (e != Errc::Ok) {
        stats_.counter("ring_full") += 1;
        machine_.tracer().instant(TraceCategory::Msg, "msg.ring_full",
                                  m.from, 0, m.seq, m.to);
    }
    return e;
}

std::optional<Message>
MessageLayer::receive(NodeId node)
{
    Tracer &tracer = machine_.tracer();
    FaultInjector *fi = machine_.faultInjector();
    if (fi && !parked_.empty())
        releaseDueParked(node);
    for (;;) {
        Cycles start =
            tracer.enabledFor(TraceCategory::Msg) ? tracer.now(node)
                                                  : 0;
        auto m = transportReceive(node);
        if (!m)
            return std::nullopt;
        if (tracer.enabledFor(TraceCategory::Msg)) {
            tracer.emit(TraceCategory::Msg, "msg.recv", node, 0, start,
                        tracer.now(node), m->seq,
                        static_cast<std::uint64_t>(m->type));
        }
        if (!fi)
            return m;

        // Integrity: a payload the plan damaged fails its checksum
        // here and never reaches a handler.
        if (m->crc != 0 && m->crc != m->computeCrc()) {
            stats_.counter("crc_dropped") += 1;
            tracer.instant(TraceCategory::Chaos, "msg.crc_drop", node,
                           0, m->seq,
                           static_cast<std::uint64_t>(m->type));
            continue;
        }
        // Idempotent receive: per-channel seqs only move forward, so
        // a duplicated delivery is recognised and swallowed.
        auto [it, fresh] =
            lastSeq_.try_emplace(std::make_pair(m->from, m->to), 0);
        if (!fresh && m->seq <= it->second) {
            stats_.counter("dup_dropped") += 1;
            tracer.instant(TraceCategory::Chaos, "msg.dup_drop", node,
                           0, m->seq,
                           static_cast<std::uint64_t>(m->type));
            continue;
        }
        it->second = m->seq;
        return m;
    }
}

std::optional<Message>
MessageLayer::tryReceive(NodeId node)
{
    return receive(node);
}

void
MessageLayer::releaseDueParked(NodeId node)
{
    auto it = parked_.find(node);
    if (it == parked_.end())
        return;
    Cycles now = machine_.node(node).cycles();
    std::deque<ParkedMsg> &q = it->second;
    // releaseAt is monotone per destination (constant link delay,
    // monotone receiver clock at park time), so the due messages are
    // exactly the front of the FIFO.
    while (!q.empty() && q.front().releaseAt <= now) {
        Message m = q.front().msg;
        q.pop_front();
        machine_.tracer().instant(TraceCategory::Chaos,
                                  "link.msg_release", node, 0, m.seq,
                                  m.from);
        if (transportSend(m) != Errc::Ok)
            stats_.counter("ring_full") += 1;
    }
    if (q.empty())
        parked_.erase(it);
}

void
MessageLayer::deliver(NodeId node, const Message &m)
{
    FaultInjector *fi = machine_.faultInjector();
    if (fi && m.rpcId != 0) {
        // A retried request whose first execution already answered:
        // replay the cached response instead of re-running the
        // handler (at-most-once execution).
        auto cached = replyCache_.find(m.rpcId);
        if (cached != replyCache_.end()) {
            fi->retries().counter("replayed_responses") += 1;
            machine_.tracer().instant(TraceCategory::Chaos,
                                      "rpc.replay", node, 0, m.rpcId,
                                      m.seq);
            send(cached->second);
            return;
        }
        serveStack_.push_back({m.from, m.rpcId, false});
        auto it = handlers_.find(node);
        panic_if(it == handlers_.end(), "no handler on node ", node);
        it->second(m);
        ServeCtx ctx = serveStack_.back();
        serveStack_.pop_back();
        if (!ctx.responded) {
            // One-way message sent reliably: acknowledge delivery so
            // the sender's retry loop can stand down.
            Message ack;
            ack.type = MsgType::Ack;
            ack.from = node;
            ack.to = ctx.requester;
            ack.respondsTo = ctx.rpcId;
            send(ack);
        }
        return;
    }
    auto it = handlers_.find(node);
    panic_if(it == handlers_.end(), "no handler on node ", node);
    it->second(m);
}

void
MessageLayer::dispatchPending(NodeId node)
{
    // A crashed kernel runs no pump: whatever is queued for it stays
    // queued until purgeQueues() discards it at declaration time.
    if (machine_.anyNodeDead() && !machine_.nodeAlive(node))
        return;
    for (;;) {
        auto m = receive(node);
        if (!m)
            return;
        deliver(node, *m);
    }
}

std::size_t
MessageLayer::purgeQueues(NodeId node)
{
    // Discard everything queued for a crashed node without running
    // handlers. The receive-side stalls land on the dead node's
    // frozen clock, so draining is free in simulated time.
    std::size_t purged = 0;
    while (auto m = transportReceive(node))
        ++purged;
    // Messages still parked on a delayed link die with the node too.
    if (auto it = parked_.find(node); it != parked_.end()) {
        purged += it->second.size();
        parked_.erase(it);
    }
    if (purged) {
        stats_.counter("purged_dead") +=
            static_cast<std::int64_t>(purged);
        machine_.tracer().instant(TraceCategory::Chaos, "msg.purge",
                                  node, 0, purged, node);
    }
    return purged;
}

Message
MessageLayer::rpc(const Message &req, MsgType respType)
{
    auto resp = tryRpc(req, respType);
    panic_if(!resp, "rpc: destination produced no ",
             msgTypeName(respType), " response to ",
             msgTypeName(req.type));
    return *resp;
}

std::optional<Message>
MessageLayer::tryRpc(const Message &req, MsgType respType)
{
    FaultInjector *fi = machine_.faultInjector();
    Message r = req;

    if (!fi) {
        // Fault-free fast path: identical wire traffic and costs to
        // the historical synchronous rpc().
        Errc e = send(r);
        if (e != Errc::Ok)
            return std::nullopt;
        dispatchPending(r.to);
        for (;;) {
            auto m = receive(r.from);
            if (!m)
                return std::nullopt;
            if (m->type == respType)
                return m;
            // Unrelated traffic: hand it to our own pump.
            deliver(r.from, *m);
        }
    }

    if (r.rpcId == 0)
        r.rpcId = ++nextRpcId_;
    pendingRpcs_.emplace(r.rpcId, std::nullopt);

    std::optional<Message> resp;
    for (unsigned attempt = 1; attempt <= policy_.maxAttempts;
         ++attempt) {
        if (attempt > 1) {
            fi->retries().counter("attempts") += 1;
            Cycles backoff = policy_.backoffForAttempt(attempt - 1);
            machine_.stall(r.from, backoff);
            machine_.tracer().instant(TraceCategory::Chaos,
                                      "rpc.retry", r.from, 0, r.rpcId,
                                      attempt);
        }
        send(r);
        // Drive the destination (delivery is synchronous), then
        // drain our own queue looking for the response.
        dispatchPending(r.to);
        for (;;) {
            auto m = receive(r.from);
            if (!m)
                break;
            if (m->respondsTo != 0) {
                auto slot = pendingRpcs_.find(m->respondsTo);
                if (slot != pendingRpcs_.end()) {
                    // Ours, or an outer rpc's that a nested call
                    // drained first: park it in the pending slot.
                    slot->second = *m;
                    continue;
                }
            }
            deliver(r.from, *m);
        }
        resp = pendingRpcs_[r.rpcId];
        if (resp)
            break;
        // Nothing matched: charge the simulated-cycle deadline and
        // go around for another attempt.
        fi->retries().counter("timeouts") += 1;
        machine_.stall(r.from, policy_.responseTimeoutCycles);
        machine_.tracer().instant(TraceCategory::Chaos, "rpc.timeout",
                                  r.from, 0, r.rpcId, attempt);
    }
    pendingRpcs_.erase(r.rpcId);
    if (!resp) {
        fi->retries().counter("gave_up") += 1;
        machine_.tracer().instant(TraceCategory::Chaos, "rpc.gave_up",
                                  r.from, 0, r.rpcId,
                                  static_cast<std::uint64_t>(r.type));
    }
    return resp;
}

Errc
MessageLayer::sendReliable(const Message &msg, bool dispatchNow)
{
    if (!machine_.faultInjector()) {
        // Historical fire-and-forget behaviour, bit for bit.
        Errc e = send(msg);
        if (dispatchNow)
            dispatchPending(msg.to);
        return e;
    }
    auto resp = tryRpc(msg, MsgType::Ack);
    return resp ? Errc::Ok : Errc::Unreachable;
}

void
MessageLayer::resetCounters()
{
    sent_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    stats_.resetAll();
}

void
MessageLayer::noteModeledSend(const Message &msg)
{
    std::uint64_t wire = msg.wireSize();
    sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(wire, std::memory_order_relaxed);
    stats_.counter("sent_total") += 1;
    stats_.counter(std::string("sent.") + msgTypeName(msg.type)) += 1;
    stats_.counter("bytes_sent") += wire;
    stats_.histogram("wire_bytes", {64, 256, 1024, 4096}).sample(wire);
}

// ===================== ShmMessageLayer ===============================

ShmMessageLayer::ShmMessageLayer(Machine &machine, Addr areaBase,
                                 Addr areaBytes, bool useIpi,
                                 MsgCosts costs)
    : MessageLayer(machine), useIpi_(useIpi), costs_(costs)
{
    // One ring per ordered node pair, splitting the area evenly.
    std::size_t n = machine.nodeCount();
    std::size_t pairs = n * (n - 1);
    panic_if(pairs == 0, "SHM messaging needs >= 2 nodes");
    Addr perRing = areaBytes / pairs;
    Addr base = areaBase;
    for (NodeId f = 0; f < n; ++f) {
        for (NodeId t = 0; t < n; ++t) {
            if (f == t)
                continue;
            rings_.emplace(std::make_pair(f, t),
                           std::make_unique<MessageRing>(machine, base,
                                                         perRing));
            base += perRing;
        }
    }
}

Addr
ShmMessageLayer::paperAreaBase(MemoryModel model)
{
    switch (model) {
      case MemoryModel::Separated:
        // In x86 local memory: local for x86, remote for Arm.
        return 1_GiB;
      case MemoryModel::Shared:
        // In the CXL pool: remote for both.
        return 4_GiB;
      case MemoryModel::FullyShared:
        // Everything is local anyway.
        return 1_GiB;
    }
    panic("unknown MemoryModel");
}

Addr
ShmMessageLayer::areaBaseFor(const PhysMap &map, Addr areaBytes)
{
    if (map.model() == MemoryModel::Shared) {
        auto pools = map.poolRanges();
        panic_if(pools.empty() ||
                     pools.front().size() < areaBytes,
                 "messaging area (", areaBytes,
                 " bytes) does not fit the shared pool");
        return pools.front().start;
    }
    // Separated / FullyShared: node 0's lowest DRAM range (its boot
    // strip — bootRanges() is sorted ascending).
    auto boots = map.bootRanges(0);
    panic_if(boots.empty(),
             "node 0 has no DRAM to host the messaging area");
    AddrRange strip = boots.front();
    panic_if(strip.size() <= areaBytes, "messaging area (", areaBytes,
             " bytes) does not fit node 0's boot strip");
    return std::min(strip.start + 1_GiB, strip.end - areaBytes);
}

MessageRing &
ShmMessageLayer::ring(NodeId from, NodeId to)
{
    auto it = rings_.find({from, to});
    panic_if(it == rings_.end(), "no ring ", from, "->", to);
    return *it->second;
}

double
ShmMessageLayer::channelOccupancy(NodeId from, NodeId to) const
{
    auto it = rings_.find({from, to});
    panic_if(it == rings_.end(), "no ring ", from, "->", to);
    return it->second->occupancy();
}

Errc
ShmMessageLayer::transportSend(const Message &msg)
{
    machine_.stall(msg.from, costs_.sendSetupCycles);
    MessageRing &r = ring(msg.from, msg.to);
    if (!r.enqueue(msg.from, msg))
        return Errc::RingFull;
    // Post-enqueue depth: the queue-depth distribution an admission
    // controller needs to see to size its shed threshold.
    stats_.histogram("ring_depth", {1, 2, 4, 8, 16, 32, 64, 128})
        .sample(r.size());
    if (useIpi_)
        machine_.sendIpi(msg.from, msg.to);
    return Errc::Ok;
}

std::optional<Message>
ShmMessageLayer::transportReceive(NodeId node)
{
    const RingScope &rs = tlsRingScope();
    // Check every ring that targets this node.
    for (auto &kv : rings_) {
        if (kv.first.second != node)
            continue;
        // Under a channel claim, only the claimed pair's rings are
        // ours to drain: other pairs' traffic belongs to the lanes
        // holding those claims. The classic scan would have found
        // those rings empty (channels drain synchronously) and paid
        // the two control-word loads — charge the same, blind.
        if (rs.active && (!rs.covers(kv.first.first) ||
                          !rs.covers(node))) {
            kv.second->chargeEmptyPeek(node);
            continue;
        }
        auto m = kv.second->dequeue(node);
        if (m) {
            machine_.stall(node, costs_.handlerCycles);
            return m;
        }
    }
    return std::nullopt;
}

// ===================== TcpMessageLayer ===============================

TcpMessageLayer::TcpMessageLayer(Machine &machine, MsgCosts costs)
    : MessageLayer(machine), costs_(costs)
{
}

Errc
TcpMessageLayer::transportSend(const Message &msg)
{
    // One FIFO per destination mixes every source's traffic, which a
    // per-pair claim cannot untangle; the parallel benches run the
    // Popcorn design over SHM rings instead.
    panic_if(tlsLaneContext(),
             "TCP transport is not supported in parallel sessions");
    // Sender: stack setup plus per-byte copy through the NIC path.
    Cycles copy = static_cast<Cycles>(
        static_cast<double>(msg.wireSize()) * costs_.tcpPerByteCycles);
    machine_.stall(msg.from, costs_.sendSetupCycles + copy);
    queues_[msg.to].push_back(msg);
    return Errc::Ok;
}

std::optional<Message>
TcpMessageLayer::transportReceive(NodeId node)
{
    panic_if(tlsLaneContext(),
             "TCP transport is not supported in parallel sessions");
    auto &q = queues_[node];
    if (q.empty())
        return std::nullopt;
    Message m = q.front();
    q.pop_front();
    // Receiver pays propagation (one way), stack copy, and handler
    // dispatch. Two messages (request + response) sum to the paper's
    // 75 us round trip.
    const Node &n = machine_.node(node);
    Cycles prop = usToCycles(costs_.tcpOneWayUs, n.profile().ghz);
    Cycles copy = static_cast<Cycles>(
        static_cast<double>(m.wireSize()) * costs_.tcpPerByteCycles);
    machine_.stall(node, prop + copy + costs_.handlerCycles);
    return m;
}

} // namespace stramash
