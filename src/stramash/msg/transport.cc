#include "stramash/msg/transport.hh"

#include "stramash/common/units.hh"

namespace stramash
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::TaskMigrate: return "task_migrate";
      case MsgType::TaskMigrateBack: return "task_migrate_back";
      case MsgType::PageRequest: return "page_request";
      case MsgType::PageResponse: return "page_response";
      case MsgType::PageInvalidate: return "page_invalidate";
      case MsgType::PageInvalidateAck: return "page_invalidate_ack";
      case MsgType::VmaRequest: return "vma_request";
      case MsgType::VmaResponse: return "vma_response";
      case MsgType::FutexWait: return "futex_wait";
      case MsgType::FutexWake: return "futex_wake";
      case MsgType::FutexResponse: return "futex_response";
      case MsgType::MemBlockRequest: return "mem_block_request";
      case MsgType::MemBlockResponse: return "mem_block_response";
      case MsgType::RemoteFaultRequest: return "remote_fault_request";
      case MsgType::RemoteFaultResponse: return "remote_fault_response";
      case MsgType::ProcessMigrate: return "process_migrate";
      case MsgType::ProcessVma: return "process_vma";
      case MsgType::ProcessPage: return "process_page";
      case MsgType::AppRequest: return "app_request";
      case MsgType::AppResponse: return "app_response";
    }
    panic("unknown MsgType");
}

MessageLayer::MessageLayer(Machine &machine)
    : machine_(machine), stats_("msg")
{
}

void
MessageLayer::registerHandler(NodeId node, MsgHandler handler)
{
    handlers_[node] = std::move(handler);
}

void
MessageLayer::send(const Message &msg)
{
    panic_if(msg.from == msg.to, "message to self");
    Message m = msg;
    m.seq = ++seq_;
    ++sent_;
    bytes_ += m.wireSize();
    stats_.counter("sent_total") += 1;
    stats_.counter(std::string("sent.") + msgTypeName(m.type)) += 1;
    stats_.counter("bytes_sent") += m.wireSize();
    stats_.histogram("wire_bytes", {64, 256, 1024, 4096})
        .sample(m.wireSize());
    // The span covers the sender-side transport costs (ring stores /
    // stack copy); the event name is the message type so Perfetto
    // tracks read as a protocol timeline.
    STRAMASH_TRACE_SPAN(machine_.tracer(), TraceCategory::Msg,
                        msgTypeName(m.type), m.from, 0, m.seq,
                        m.wireSize());
    transportSend(m);
}

std::optional<Message>
MessageLayer::receive(NodeId node)
{
    Tracer &tracer = machine_.tracer();
    if (!tracer.enabledFor(TraceCategory::Msg))
        return transportReceive(node);
    Cycles start = tracer.now(node);
    auto m = transportReceive(node);
    if (m) {
        tracer.emit(TraceCategory::Msg, "msg.recv", node, 0, start,
                    tracer.now(node), m->seq,
                    static_cast<std::uint64_t>(m->type));
    }
    return m;
}

std::optional<Message>
MessageLayer::tryReceive(NodeId node)
{
    return receive(node);
}

void
MessageLayer::dispatchPending(NodeId node)
{
    for (;;) {
        auto m = receive(node);
        if (!m)
            return;
        auto it = handlers_.find(node);
        panic_if(it == handlers_.end(), "no handler on node ", node);
        it->second(*m);
    }
}

Message
MessageLayer::rpc(const Message &req, MsgType respType)
{
    send(req);
    dispatchPending(req.to);
    for (;;) {
        auto m = receive(req.from);
        panic_if(!m, "rpc: destination produced no ",
                 msgTypeName(respType), " response to ",
                 msgTypeName(req.type));
        if (m->type == respType)
            return *m;
        // Unrelated traffic: hand it to our own pump.
        auto it = handlers_.find(req.from);
        panic_if(it == handlers_.end(), "no handler on node ",
                 req.from);
        it->second(*m);
    }
}

void
MessageLayer::resetCounters()
{
    sent_ = 0;
    bytes_ = 0;
    stats_.resetAll();
}

// ===================== ShmMessageLayer ===============================

ShmMessageLayer::ShmMessageLayer(Machine &machine, Addr areaBase,
                                 Addr areaBytes, bool useIpi,
                                 MsgCosts costs)
    : MessageLayer(machine), useIpi_(useIpi), costs_(costs)
{
    // One ring per ordered node pair, splitting the area evenly.
    std::size_t n = machine.nodeCount();
    std::size_t pairs = n * (n - 1);
    panic_if(pairs == 0, "SHM messaging needs >= 2 nodes");
    Addr perRing = areaBytes / pairs;
    Addr base = areaBase;
    for (NodeId f = 0; f < n; ++f) {
        for (NodeId t = 0; t < n; ++t) {
            if (f == t)
                continue;
            rings_.emplace(std::make_pair(f, t),
                           std::make_unique<MessageRing>(machine, base,
                                                         perRing));
            base += perRing;
        }
    }
}

Addr
ShmMessageLayer::paperAreaBase(MemoryModel model)
{
    switch (model) {
      case MemoryModel::Separated:
        // In x86 local memory: local for x86, remote for Arm.
        return 1_GiB;
      case MemoryModel::Shared:
        // In the CXL pool: remote for both.
        return 4_GiB;
      case MemoryModel::FullyShared:
        // Everything is local anyway.
        return 1_GiB;
    }
    panic("unknown MemoryModel");
}

MessageRing &
ShmMessageLayer::ring(NodeId from, NodeId to)
{
    auto it = rings_.find({from, to});
    panic_if(it == rings_.end(), "no ring ", from, "->", to);
    return *it->second;
}

void
ShmMessageLayer::transportSend(const Message &msg)
{
    machine_.stall(msg.from, costs_.sendSetupCycles);
    bool ok = ring(msg.from, msg.to).enqueue(msg.from, msg);
    panic_if(!ok, "message ring full");
    if (useIpi_)
        machine_.sendIpi(msg.from, msg.to);
}

std::optional<Message>
ShmMessageLayer::transportReceive(NodeId node)
{
    // Check every ring that targets this node.
    for (auto &kv : rings_) {
        if (kv.first.second != node)
            continue;
        auto m = kv.second->dequeue(node);
        if (m) {
            machine_.stall(node, costs_.handlerCycles);
            return m;
        }
    }
    return std::nullopt;
}

// ===================== TcpMessageLayer ===============================

TcpMessageLayer::TcpMessageLayer(Machine &machine, MsgCosts costs)
    : MessageLayer(machine), costs_(costs)
{
}

void
TcpMessageLayer::transportSend(const Message &msg)
{
    // Sender: stack setup plus per-byte copy through the NIC path.
    Cycles copy = static_cast<Cycles>(
        static_cast<double>(msg.wireSize()) * costs_.tcpPerByteCycles);
    machine_.stall(msg.from, costs_.sendSetupCycles + copy);
    queues_[msg.to].push_back(msg);
}

std::optional<Message>
TcpMessageLayer::transportReceive(NodeId node)
{
    auto &q = queues_[node];
    if (q.empty())
        return std::nullopt;
    Message m = q.front();
    q.pop_front();
    // Receiver pays propagation (one way), stack copy, and handler
    // dispatch. Two messages (request + response) sum to the paper's
    // 75 us round trip.
    const Node &n = machine_.node(node);
    Cycles prop = usToCycles(costs_.tcpOneWayUs, n.profile().ghz);
    Cycles copy = static_cast<Cycles>(
        static_cast<double>(m.wireSize()) * costs_.tcpPerByteCycles);
    machine_.stall(node, prop + copy + costs_.handlerCycles);
    return m;
}

} // namespace stramash
