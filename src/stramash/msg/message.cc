#include "stramash/msg/message.hh"

#include <array>

#include "stramash/common/logging.hh"

namespace stramash
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::TaskMigrate: return "task_migrate";
      case MsgType::TaskMigrateBack: return "task_migrate_back";
      case MsgType::PageRequest: return "page_request";
      case MsgType::PageResponse: return "page_response";
      case MsgType::PageInvalidate: return "page_invalidate";
      case MsgType::PageInvalidateAck: return "page_invalidate_ack";
      case MsgType::VmaRequest: return "vma_request";
      case MsgType::VmaResponse: return "vma_response";
      case MsgType::FutexWait: return "futex_wait";
      case MsgType::FutexWake: return "futex_wake";
      case MsgType::FutexResponse: return "futex_response";
      case MsgType::MemBlockRequest: return "mem_block_request";
      case MsgType::MemBlockResponse: return "mem_block_response";
      case MsgType::RemoteFaultRequest: return "remote_fault_request";
      case MsgType::RemoteFaultResponse: return "remote_fault_response";
      case MsgType::ProcessMigrate: return "process_migrate";
      case MsgType::ProcessVma: return "process_vma";
      case MsgType::ProcessPage: return "process_page";
      case MsgType::AppRequest: return "app_request";
      case MsgType::AppResponse: return "app_response";
      case MsgType::Ack: return "ack";
      case MsgType::Heartbeat: return "heartbeat";
      case MsgType::HeartbeatAck: return "heartbeat_ack";
      case MsgType::CacheInvalidate: return "cache_invalidate";
      case MsgType::StealRequest: return "steal_request";
      case MsgType::StealResponse: return "steal_response";
    }
    panic("unknown MsgType");
}

bool
msgTypeIsResponse(MsgType t)
{
    switch (t) {
      case MsgType::PageResponse:
      case MsgType::PageInvalidateAck:
      case MsgType::VmaResponse:
      case MsgType::FutexResponse:
      case MsgType::MemBlockResponse:
      case MsgType::RemoteFaultResponse:
      case MsgType::AppResponse:
      case MsgType::StealResponse:
      case MsgType::Ack:
        return true;
      case MsgType::TaskMigrate:
      case MsgType::TaskMigrateBack:
      case MsgType::PageRequest:
      case MsgType::PageInvalidate:
      case MsgType::VmaRequest:
      case MsgType::FutexWait:
      case MsgType::FutexWake:
      case MsgType::MemBlockRequest:
      case MsgType::RemoteFaultRequest:
      case MsgType::ProcessMigrate:
      case MsgType::ProcessVma:
      case MsgType::ProcessPage:
      case MsgType::AppRequest:
      case MsgType::CacheInvalidate:
      case MsgType::StealRequest:
      // See message.hh: heartbeat acks must not be captured as an
      // unrelated RPC's response by the serve-stack machinery.
      case MsgType::Heartbeat:
      case MsgType::HeartbeatAck:
        return false;
    }
    panic("unknown MsgType");
}

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace stramash
