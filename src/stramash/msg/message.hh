/**
 * @file
 * Inter-kernel message types, mirroring Popcorn-Linux's pcn_kmsg
 * vocabulary. Both OS designs use the same Message struct; they
 * differ in *how many* messages they need (Table 3) and in what the
 * transport charges for them.
 */

#ifndef STRAMASH_MSG_MESSAGE_HH
#define STRAMASH_MSG_MESSAGE_HH

#include <cstdint>
#include <vector>

#include "stramash/common/types.hh"

namespace stramash
{

/** Message kinds exchanged between kernel instances. */
enum class MsgType : std::uint8_t {
    /** Thread migration request carrying transformed register state. */
    TaskMigrate,
    /** Migration-back notification. */
    TaskMigrateBack,
    /** DSM: fetch a page (request). */
    PageRequest,
    /** DSM: page content (response; carries the 4 KiB page). */
    PageResponse,
    /** DSM: invalidate replicas before a write. */
    PageInvalidate,
    /** DSM: acknowledge an invalidation. */
    PageInvalidateAck,
    /** VMA information request (Popcorn remote fault path). */
    VmaRequest,
    VmaResponse,
    /** Origin-managed futex protocol. */
    FutexWait,
    FutexWake,
    FutexResponse,
    /** Global memory allocator block negotiation. */
    MemBlockRequest,
    MemBlockResponse,
    /** Stramash slow-path fault (upper table level missing). */
    RemoteFaultRequest,
    RemoteFaultResponse,
    /** Whole-process migration kick-off (new origin = receiver). */
    ProcessMigrate,
    /** Process migration: one VMA descriptor. */
    ProcessVma,
    /** Process migration: one page of content. */
    ProcessPage,
    /** kv-store request/response (network-serving experiment). */
    AppRequest,
    AppResponse,
};

const char *msgTypeName(MsgType t);

/** One inter-kernel message. */
struct Message
{
    MsgType type = MsgType::TaskMigrate;
    NodeId from = 0;
    NodeId to = 0;
    std::uint64_t seq = 0;
    /** Typed scalar arguments (addresses, pids, values). */
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint64_t arg2 = 0;
    /** Bulk payload (page contents, register state, app data). */
    std::vector<std::uint8_t> payload;

    std::size_t
    wireSize() const
    {
        return headerBytes + payload.size();
    }

    /** Fixed header size on the wire. */
    static constexpr std::size_t headerBytes = 64;
};

} // namespace stramash

#endif // STRAMASH_MSG_MESSAGE_HH
