/**
 * @file
 * Inter-kernel message types, mirroring Popcorn-Linux's pcn_kmsg
 * vocabulary. Both OS designs use the same Message struct; they
 * differ in *how many* messages they need (Table 3) and in what the
 * transport charges for them.
 */

#ifndef STRAMASH_MSG_MESSAGE_HH
#define STRAMASH_MSG_MESSAGE_HH

#include <cstdint>
#include <vector>

#include "stramash/common/types.hh"

namespace stramash
{

/** Message kinds exchanged between kernel instances. */
enum class MsgType : std::uint8_t {
    /** Thread migration request carrying transformed register state. */
    TaskMigrate,
    /** Migration-back notification. */
    TaskMigrateBack,
    /** DSM: fetch a page (request). */
    PageRequest,
    /** DSM: page content (response; carries the 4 KiB page). */
    PageResponse,
    /** DSM: invalidate replicas before a write. */
    PageInvalidate,
    /** DSM: acknowledge an invalidation. */
    PageInvalidateAck,
    /** VMA information request (Popcorn remote fault path). */
    VmaRequest,
    VmaResponse,
    /** Origin-managed futex protocol. */
    FutexWait,
    FutexWake,
    FutexResponse,
    /** Global memory allocator block negotiation. */
    MemBlockRequest,
    MemBlockResponse,
    /** Stramash slow-path fault (upper table level missing). */
    RemoteFaultRequest,
    RemoteFaultResponse,
    /** Whole-process migration kick-off (new origin = receiver). */
    ProcessMigrate,
    /** Process migration: one VMA descriptor. */
    ProcessVma,
    /** Process migration: one page of content. */
    ProcessPage,
    /** kv-store request/response (network-serving experiment). */
    AppRequest,
    AppResponse,
    /** Generic delivery acknowledgement (reliable one-way sends). */
    Ack,
    /** Failure-detector ping (arg0 = ping sequence number). */
    Heartbeat,
    /** Failure-detector ping reply (arg0 echoes the ping seq).
     *  Deliberately *not* response-typed: heartbeats are
     *  fire-and-forget (rpcId = 0), and a response-typed ack emitted
     *  while an unrelated RPC is being served would be captured as
     *  that RPC's reply. */
    HeartbeatAck,
    /** Hot-key-cache invalidation note (multiple-kernel design only:
     *  the fused design invalidates through coherent memory and never
     *  sends one). arg0 = key. */
    CacheInvalidate,
    /** Scheduler work-steal request (multiple-kernel design only:
     *  the fused design pops the victim's coherent run queue
     *  directly and never sends one). arg0 = items granted to the
     *  thief (the caller computes the grant from queue depths). */
    StealRequest,
    /** Steal reply. arg0 echoes the grant; the payload carries the
     *  granted items' descriptors (grant x 64 bytes). */
    StealResponse,
};

/** Number of MsgType enumerators (keep in sync with the enum). */
inline constexpr unsigned msgTypeCount =
    static_cast<unsigned>(MsgType::StealResponse) + 1;

const char *msgTypeName(MsgType t);

/**
 * True for message kinds that answer an earlier request. The reliable
 * RPC layer uses this to recognise which message a serving handler
 * emitted as *the* response (so it can be cached for at-most-once
 * replay) without per-protocol knowledge.
 */
bool msgTypeIsResponse(MsgType t);

/** CRC-32 (IEEE 802.3, reflected) over @p size bytes. */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

/** One inter-kernel message. */
struct Message
{
    MsgType type = MsgType::TaskMigrate;
    NodeId from = 0;
    NodeId to = 0;
    /** Per-channel delivery sequence number; assigned by send().
     *  Fresh on every transmission, including retries, so the
     *  receiver can discard duplicated deliveries. */
    std::uint64_t seq = 0;
    /** Typed scalar arguments (addresses, pids, values). */
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint64_t arg2 = 0;
    /** Header+payload integrity check; computed by send() when the
     *  transport runs in resilient mode, 0 = unchecked. */
    std::uint32_t crc = 0;
    /** Logical RPC id: non-zero marks an rpc *request* and stays
     *  stable across retries of the same logical call. */
    std::uint32_t rpcId = 0;
    /** For responses: the rpcId this message answers (0 = n/a). */
    std::uint32_t respondsTo = 0;
    /** Bulk payload (page contents, register state, app data). */
    std::vector<std::uint8_t> payload;

    std::size_t
    wireSize() const
    {
        return headerBytes + payload.size();
    }

    /**
     * The integrity check covers everything that identifies the
     * logical message — type, endpoints, args, rpc ids and payload —
     * but *not* seq (reassigned per transmission) and not the crc
     * field itself, so a retransmission carries the same checksum.
     */
    std::uint32_t
    computeCrc() const
    {
        std::uint8_t hdr[] = {
            static_cast<std::uint8_t>(type),
            static_cast<std::uint8_t>(from),
            static_cast<std::uint8_t>(to),
        };
        std::uint64_t words[] = {arg0, arg1, arg2,
                                 (static_cast<std::uint64_t>(rpcId)
                                  << 32) |
                                     respondsTo};
        std::uint32_t c = crc32(hdr, sizeof(hdr));
        c = crc32(words, sizeof(words), c);
        if (!payload.empty())
            c = crc32(payload.data(), payload.size(), c);
        // 0 is reserved to mean "unchecked".
        return c ? c : 1;
    }

    /** Fixed header size on the wire. */
    static constexpr std::size_t headerBytes = 64;
};

} // namespace stramash

#endif // STRAMASH_MSG_MESSAGE_HH
