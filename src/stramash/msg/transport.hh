/**
 * @file
 * The inter-kernel messaging layer (paper §6.2, §8.2).
 *
 * Two transports:
 *
 *  - ShmMessageLayer: a pair of guest-memory rings per kernel pair
 *    plus a cross-ISA IPI (or polling) for notification. All costs
 *    emerge from real ring reads/writes through the cache model and
 *    the IPI latency.
 *
 *  - TcpMessageLayer: Popcorn's network transport; charges the
 *    measured SmartNIC round-trip latency (75 us per round trip,
 *    37.5 us per one-way message) plus per-byte stack costs. No
 *    shared memory involved, so it performs identically on every
 *    hardware memory model — exactly as the paper observes.
 *
 * The layer also provides the synchronous dispatch pump the kernels
 * use: handlers registered per node are driven by dispatchPending(),
 * and rpc() implements the request/response pattern every Popcorn
 * protocol is built on.
 */

#ifndef STRAMASH_MSG_TRANSPORT_HH
#define STRAMASH_MSG_TRANSPORT_HH

#include <algorithm>
#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "stramash/common/result.hh"
#include "stramash/common/stats.hh"
#include "stramash/msg/ring_buffer.hh"

namespace stramash
{

/**
 * Per-message CPU costs not covered by the memory system. The
 * defaults reflect measured Popcorn-Linux messaging behaviour: a
 * message is not just the IPI (2 us) but interrupt handling, work
 * queue scheduling, handler execution and marshalling — of the order
 * of 10 us of kernel time end to end.
 */
struct MsgCosts
{
    /** Handler dispatch cost on the receiver, per message. */
    Cycles handlerCycles = 15000;
    /** Enqueue/setup cost on the sender, per message. */
    Cycles sendSetupCycles = 5000;
    /** TCP one-way propagation (paper: 75 us per round trip). */
    double tcpOneWayUs = 37.5;
    /** TCP stack per-byte copy cost, each side. */
    double tcpPerByteCycles = 0.5;
};

/**
 * Every simulated-cycle deadline the resilient request/response layer
 * uses, in one place. Call sites must not carry their own magic
 * numbers.
 *
 * Timeouts and backoff are charged to the *requester's* clock in
 * simulated cycles, so a chaos run's timing results are exactly as
 * reproducible as a fault-free run's.
 */
struct RpcPolicy
{
    /** Cycles the requester waits for a response before retrying. */
    Cycles responseTimeoutCycles = 200000;
    /** Transmission attempts per logical RPC before giving up. */
    unsigned maxAttempts = 8;
    /** First retry backoff; doubles per retry (exponential). */
    Cycles backoffBaseCycles = 25000;
    /** Backoff growth stops here. */
    Cycles backoffCapCycles = 400000;

    Cycles
    backoffForAttempt(unsigned attempt) const
    {
        Cycles b = backoffBaseCycles;
        for (unsigned i = 1; i < attempt && b < backoffCapCycles; ++i)
            b *= 2;
        return std::min(b, backoffCapCycles);
    }
};

/** A kernel's message handler. */
using MsgHandler = std::function<void(const Message &)>;

class MessageLayer
{
  public:
    explicit MessageLayer(Machine &machine);
    virtual ~MessageLayer() = default;

    /** Register the kernel message pump for @p node. */
    void registerHandler(NodeId node, MsgHandler handler);

    /**
     * Send one message (msg.from/msg.to must be set).
     * @return Errc::RingFull when the transport had no room (the
     *         message was not delivered); Errc::Ok otherwise.
     */
    Errc send(const Message &msg);

    /** Pop one pending message for @p node, charging receive costs. */
    std::optional<Message> tryReceive(NodeId node);

    /**
     * Deliver every pending message for @p node to its handler.
     * Handlers may send further messages (including back to the
     * original sender); dispatch is re-entrant. No-op for a crashed
     * node (its pump no longer runs).
     */
    void dispatchPending(NodeId node);

    /**
     * Discard every message queued for @p node without running any
     * handler — the crash-recovery path's way of emptying a dead
     * kernel's inbox so a later rejoin starts clean.
     * @return how many messages were discarded.
     */
    std::size_t purgeQueues(NodeId node);

    /**
     * Synchronous RPC: send @p req, drive the destination's pump,
     * and return the first @p respType message that arrives back.
     * Other messages arriving at the caller meanwhile are routed to
     * the caller's own handler. Panics if the destination never
     * responds — use tryRpc() at recoverable boundaries.
     */
    Message rpc(const Message &req, MsgType respType);

    /**
     * Resilient RPC. In fault-free operation this is exactly rpc():
     * one send, one dispatch, same wire traffic, same costs. With a
     * fault injector attached it becomes an at-most-once call:
     * retries (fresh seq, same rpcId) with exponential backoff and
     * simulated-cycle timeouts per RpcPolicy, duplicate-request
     * suppression via the server-side reply cache, and duplicate /
     * corrupted-delivery suppression via seq + CRC on the receive
     * path.
     *
     * @return the response, or std::nullopt after maxAttempts
     *         timeouts (the caller decides how to degrade).
     */
    std::optional<Message> tryRpc(const Message &req, MsgType respType);

    /**
     * Reliable one-way send. Without an injector this is exactly the
     * historical fire-and-forget pattern: send() plus an optional
     * immediate dispatchPending(to). With an injector the message is
     * acknowledged (MsgType::Ack) and retried like any RPC, so a
     * dropped delivery cannot silently lose a migration stage or a
     * futex wakeup.
     *
     * @return Ok, or Unreachable when every attempt timed out.
     */
    Errc sendReliable(const Message &msg, bool dispatchNow = true);

    RpcPolicy &rpcPolicy() { return policy_; }
    const RpcPolicy &rpcPolicy() const { return policy_; }

    StatGroup &stats() { return stats_; }

    /**
     * Occupancy of the @p from → @p to channel in [0, 1], for
     * admission-control decisions (an open-loop front end sheds
     * load *before* committing work when the transport is backed
     * up). Transports without bounded channels report 0.
     */
    virtual double channelOccupancy(NodeId from, NodeId to) const
    {
        (void)from;
        (void)to;
        return 0.0;
    }

    /** Total messages sent since construction (Table 3). */
    std::uint64_t
    messagesSent() const
    {
        return sent_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    bytesSent() const
    {
        return bytes_.load(std::memory_order_relaxed);
    }

    void resetCounters();

    /**
     * Account a message the caller *modeled* rather than moved
     * through the transport (the parallel kv service charges wire
     * costs itself and delivers payloads as epoch events): bumps the
     * send counters and wire-size histogram exactly as send() would,
     * without touching rings or queues.
     */
    void noteModeledSend(const Message &msg);

    /**
     * Lock covering the unordered node pair {a, b}: a parallel lane
     * takes it (via ChannelScope) around any synchronous exchange on
     * the pair's rings, which other lanes' traffic must not interleave
     * with mid-epoch.
     */
    std::mutex &pairMutex(NodeId a, NodeId b);

    Machine &machine() { return machine_; }

  protected:
    /** Transport-specific delivery; must charge sender-side costs.
     *  @return Errc::RingFull when the channel had no room. */
    virtual Errc transportSend(const Message &msg) = 0;
    /** Transport-specific fetch; must charge receiver-side costs. */
    virtual std::optional<Message> transportReceive(NodeId node) = 0;

    Machine &machine_;
    StatGroup stats_;

  private:
    std::map<NodeId, MsgHandler> handlers_;
    // Relaxed atomics: parallel lanes send concurrently (on disjoint,
    // pair-locked channels); totals are exact sums either way. seq
    // values then depend on send interleaving, but nothing statistical
    // derives from a seq — per-channel FIFO order is what matters,
    // and the pair lock preserves it.
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> bytes_{0};
    std::atomic<std::uint64_t> seq_{0};
    /** Channel-pair locks, indexed min(a,b) * nodeCount + max(a,b). */
    std::size_t pairNodes_ = 0;
    std::unique_ptr<std::mutex[]> pairMu_;
    RpcPolicy policy_;

    // ---- resilient-mode state (touched only with an injector) ----

    /** rpcId generator; ids are unique across the whole layer. */
    std::uint32_t nextRpcId_ = 0;
    /** Last delivered seq per (from, to) channel, for dedup. */
    std::map<std::pair<NodeId, NodeId>, std::uint64_t> lastSeq_;
    /** At-most-once reply cache: rpcId -> the response that served
     *  it. Replayed instead of re-running the handler when a retried
     *  request arrives (handlers stay non-idempotent-safe). */
    std::unordered_map<std::uint32_t, Message> replyCache_;
    std::deque<std::uint32_t> replyOrder_;
    /** Outstanding tryRpc calls: responses drained by a *nested*
     *  rpc's receive loop park here for the frame that owns them. */
    std::map<std::uint32_t, std::optional<Message>> pendingRpcs_;
    static constexpr std::size_t replyCacheCapacity = 1024;

    /** One frame per rpc request currently being served. */
    struct ServeCtx
    {
        NodeId requester;
        std::uint32_t rpcId;
        bool responded;
    };
    std::vector<ServeCtx> serveStack_;

    /** A message in flight on a Delayed link: it re-enters the
     *  transport only once the receiver's clock reaches releaseAt —
     *  so a receiver that never advances never hears it, which is
     *  what lets a *sustained* delay exhaust a retry budget. */
    struct ParkedMsg
    {
        Cycles releaseAt;
        Message msg;
    };
    /** Parked messages keyed by destination, FIFO per destination. */
    std::map<NodeId, std::deque<ParkedMsg>> parked_;

    /** Re-inject every parked message for @p node whose release time
     *  the node's clock has reached. */
    void releaseDueParked(NodeId node);

    /** True when the resilient machinery is active. */
    bool resilient() const;

    /** transportReceive plus receive-side tracing, CRC verification
     *  and duplicate suppression. */
    std::optional<Message> receive(NodeId node);

    /** Route one received message: reply-cache replay for retried
     *  requests, handler invocation, response capture, auto-ack. */
    void deliver(NodeId node, const Message &m);

    /** Remember @p resp as the answer to @p rpcId. */
    void cacheReply(std::uint32_t rpcId, const Message &resp);
};

/** Shared-memory rings + IPI/polling notification. */
class ShmMessageLayer final : public MessageLayer
{
  public:
    /**
     * @param areaBase  guest-physical base of the 128 MiB messaging
     *                  area (placement decides local vs remote!)
     * @param areaBytes size of the area; split evenly per direction
     * @param useIpi    IPI notification (true) or polling (false)
     */
    ShmMessageLayer(Machine &machine, Addr areaBase, Addr areaBytes,
                    bool useIpi, MsgCosts costs = {});

    /**
     * The paper's placement rule for the messaging area under each
     * hardware model (§8.2): Separated → x86-local (Arm pays remote),
     * Shared → the pool (both pay remote), FullyShared → local to
     * both. Hard-wired to the Figure-4 layout; N-node machines use
     * areaBaseFor().
     */
    static Addr paperAreaBase(MemoryModel model);
    static constexpr Addr paperAreaBytes = 128 * 1024 * 1024;

    /**
     * The same placement rule expressed against an arbitrary PhysMap:
     * Shared → the start of the pool; otherwise inside node 0's boot
     * strip, 1 GiB in when the strip is large enough (which makes it
     * land exactly on paperAreaBase() for the paper layout) and
     * flush with the strip's end otherwise. Panics when the area
     * does not fit.
     */
    static Addr areaBaseFor(const PhysMap &map,
                            Addr areaBytes = paperAreaBytes);

    double channelOccupancy(NodeId from, NodeId to) const override;

  protected:
    Errc transportSend(const Message &msg) override;
    std::optional<Message> transportReceive(NodeId node) override;

  private:
    bool useIpi_;
    MsgCosts costs_;
    /** (from, to) -> ring. */
    std::map<std::pair<NodeId, NodeId>, std::unique_ptr<MessageRing>>
        rings_;

    MessageRing &ring(NodeId from, NodeId to);
};

/**
 * RAII channel claim for parallel host sessions. A lane simulating a
 * synchronous cross-node exchange (an rpc and its response) wraps it
 * in a ChannelScope over the two endpoints: the pair's mutex
 * serializes lanes sharing the physical rings — ring (i -> o) carries
 * lane(o)'s requests *and* lane(i)'s responses, so neither direction
 * is single-writer — and, while held, transportReceive only drains
 * rings between the scoped pair, so one lane's pump cannot steal or
 * deliver another lane's in-flight traffic. Outside a parallel phase
 * (no LaneContext installed) construction is a no-op.
 */
class ChannelScope
{
  public:
    ChannelScope(MessageLayer &layer, NodeId a, NodeId b);
    ~ChannelScope();

    ChannelScope(const ChannelScope &) = delete;
    ChannelScope &operator=(const ChannelScope &) = delete;

  private:
    std::mutex *mu_ = nullptr;
};

/** Network (TCP/IP) transport model. */
class TcpMessageLayer final : public MessageLayer
{
  public:
    explicit TcpMessageLayer(Machine &machine, MsgCosts costs = {});

  protected:
    Errc transportSend(const Message &msg) override;
    std::optional<Message> transportReceive(NodeId node) override;

  private:
    MsgCosts costs_;
    std::map<NodeId, std::deque<Message>> queues_;
};

} // namespace stramash

#endif // STRAMASH_MSG_TRANSPORT_HH
