#include "stramash/msg/ring_buffer.hh"

#include <cstring>

#include "stramash/common/logging.hh"

namespace stramash
{

namespace
{

/** On-wire header layout inside a slot. */
struct WireHeader
{
    std::uint8_t type;
    std::uint8_t pad[3];
    std::uint32_t from;
    std::uint32_t to;
    std::uint32_t crc;
    std::uint64_t seq;
    std::uint64_t arg0;
    std::uint64_t arg1;
    std::uint64_t arg2;
    std::uint64_t payloadSize;
    std::uint32_t rpcId;
    std::uint32_t respondsTo;
};
static_assert(sizeof(WireHeader) <= Message::headerBytes);

} // namespace

MessageRing::MessageRing(Machine &machine, Addr base, Addr bytes)
    : machine_(machine), base_(base)
{
    panic_if(bytes < 64 + 2 * slotBytes, "ring area too small");
    numSlots_ = (bytes - 64) / slotBytes;
    // Zero the control words through plain (uncharged) writes: this
    // is boot-time initialisation.
    machine_.memory().store<std::uint64_t>(headAddr(), 0);
    machine_.memory().store<std::uint64_t>(tailAddr(), 0);
    // Materialise every frame of the ring now: a first-touch write
    // mutates the guest frame map, which parallel host lanes read
    // concurrently — all ring storage must exist before any session.
    machine_.memory().ensureBacked(base_, bytes);
}

std::size_t
MessageRing::size() const
{
    auto head = machine_.memory().load<std::uint64_t>(headAddr());
    auto tail = machine_.memory().load<std::uint64_t>(tailAddr());
    return static_cast<std::size_t>(tail - head);
}

bool
MessageRing::enqueue(NodeId producer, const Message &msg)
{
    GuestMemory &mem = machine_.memory();
    panic_if(msg.payload.size() > slotBytes - Message::headerBytes,
             "message payload exceeds ring slot");

    // Control words: load head and tail.
    machine_.dataAccess(producer, AccessType::Load, headAddr(), 8);
    machine_.dataAccess(producer, AccessType::Load, tailAddr(), 8);
    auto head = mem.load<std::uint64_t>(headAddr());
    auto tail = mem.load<std::uint64_t>(tailAddr());
    if (tail - head >= numSlots_ - 1)
        return false;

    // Serialise into the slot, charging the stores.
    Addr slot = slotAddr(tail % numSlots_);
    WireHeader h{};
    h.type = static_cast<std::uint8_t>(msg.type);
    h.from = msg.from;
    h.to = msg.to;
    h.crc = msg.crc;
    h.seq = msg.seq;
    h.arg0 = msg.arg0;
    h.arg1 = msg.arg1;
    h.arg2 = msg.arg2;
    h.payloadSize = msg.payload.size();
    h.rpcId = msg.rpcId;
    h.respondsTo = msg.respondsTo;
    mem.write(slot, &h, sizeof(h));
    machine_.dataAccess(producer, AccessType::Store, slot,
                        Message::headerBytes);
    if (!msg.payload.empty()) {
        mem.write(slot + Message::headerBytes, msg.payload.data(),
                  msg.payload.size());
        // Bulk payload copy: streaming store with MLP.
        machine_.streamAccess(producer, AccessType::Store,
                              slot + Message::headerBytes,
                              static_cast<unsigned>(
                                  msg.payload.size()));
    }

    // Publish: bump tail.
    mem.store<std::uint64_t>(tailAddr(), tail + 1);
    machine_.dataAccess(producer, AccessType::Store, tailAddr(), 8);
    std::size_t depth = static_cast<std::size_t>(tail + 1 - head);
    if (depth > highWatermark_)
        highWatermark_ = depth;
    return true;
}

std::optional<Message>
MessageRing::dequeue(NodeId consumer)
{
    GuestMemory &mem = machine_.memory();

    machine_.dataAccess(consumer, AccessType::Load, headAddr(), 8);
    machine_.dataAccess(consumer, AccessType::Load, tailAddr(), 8);
    auto head = mem.load<std::uint64_t>(headAddr());
    auto tail = mem.load<std::uint64_t>(tailAddr());
    if (head == tail)
        return std::nullopt;

    Addr slot = slotAddr(head % numSlots_);
    WireHeader h{};
    mem.read(slot, &h, sizeof(h));
    machine_.dataAccess(consumer, AccessType::Load, slot,
                        Message::headerBytes);

    Message msg;
    msg.type = static_cast<MsgType>(h.type);
    msg.from = h.from;
    msg.to = h.to;
    msg.crc = h.crc;
    msg.seq = h.seq;
    msg.arg0 = h.arg0;
    msg.arg1 = h.arg1;
    msg.arg2 = h.arg2;
    msg.rpcId = h.rpcId;
    msg.respondsTo = h.respondsTo;
    msg.payload.resize(h.payloadSize);
    if (h.payloadSize) {
        mem.read(slot + Message::headerBytes, msg.payload.data(),
                 h.payloadSize);
        machine_.streamAccess(consumer, AccessType::Load,
                              slot + Message::headerBytes,
                              static_cast<unsigned>(h.payloadSize));
    }

    mem.store<std::uint64_t>(headAddr(), head + 1);
    machine_.dataAccess(consumer, AccessType::Store, headAddr(), 8);
    return msg;
}

bool
MessageRing::pollProbe(NodeId consumer)
{
    machine_.dataAccess(consumer, AccessType::Load, tailAddr(), 8);
    auto head = machine_.memory().load<std::uint64_t>(headAddr());
    auto tail = machine_.memory().load<std::uint64_t>(tailAddr());
    return head != tail;
}

void
MessageRing::chargeEmptyPeek(NodeId consumer)
{
    machine_.dataAccess(consumer, AccessType::Load, headAddr(), 8);
    machine_.dataAccess(consumer, AccessType::Load, tailAddr(), 8);
}

} // namespace stramash
