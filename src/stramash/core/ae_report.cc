#include "stramash/core/ae_report.hh"

#include <iomanip>
#include <sstream>

namespace stramash
{

AeNodeReport
collectAeReport(System &sys, NodeId node)
{
    AeNodeReport r;
    const Node &n = sys.machine().node(node);
    r.label = n.isa() == IsaType::X86_64 ? "x86" : "Arm";
    auto &cs = sys.machine().caches().nodeStats(node);

    r.l1Hits = cs.value("l1_hits");
    r.l1Accesses = cs.value("l1_accesses");
    r.l2Hits = cs.value("l2_hits");
    r.l2Accesses = cs.value("l2_accesses");
    r.l3Hits = cs.value("l3_hits");
    r.l3Accesses = cs.value("l3_accesses");
    auto rate = [](std::uint64_t h, std::uint64_t a) {
        return a ? 100.0 * static_cast<double>(h) /
                       static_cast<double>(a)
                 : 0.0;
    };
    r.l1HitRate = rate(r.l1Hits, r.l1Accesses);
    r.l2HitRate = rate(r.l2Hits, r.l2Accesses);
    r.l3HitRate = rate(r.l3Hits, r.l3Accesses);

    r.ipis = sys.machine().ipisReceived(node);
    r.localMemHits = cs.value("local_mem_hits");
    r.remoteMemHits = cs.value("remote_mem_hits");
    r.remoteSharedMemHits = cs.value("remote_shared_mem_hits");
    r.instructions = n.icount();
    r.memAccesses = r.l1Accesses;
    r.runtime = n.cycles();
    return r;
}

void
printAeReport(std::ostream &os, const AeNodeReport &r)
{
    auto pct = [&](double v) {
        std::ostringstream s;
        s << std::fixed << std::setprecision(2) << v << '%';
        return s.str();
    };
    os << r.label << ":\n"
       << "L1 Cache Hit Rate: " << pct(r.l1HitRate) << '\n'
       << "L2 Cache Hit Rate: " << pct(r.l2HitRate) << '\n'
       << "L3 Cache Hit Rate: " << pct(r.l3HitRate) << '\n'
       << "L1 Cache Hits: " << r.l1Hits << '\n'
       << "L2 Cache Hits: " << r.l2Hits << '\n'
       << "L3 Cache Hits: " << r.l3Hits << '\n'
       << "L1 Cache Accesses: " << r.l1Accesses << '\n'
       << "L2 Cache Accesses: " << r.l2Accesses << '\n'
       << "L3 Cache Accesses: " << r.l3Accesses << '\n'
       << "IPI: " << r.ipis << '\n'
       << "Local Memory Hits: " << r.localMemHits << '\n'
       << ">>> Remote Memory Hits: " << r.remoteMemHits << " <<<\n"
       << "Remote Shared Memory Hits: " << r.remoteSharedMemHits
       << '\n'
       << "Number of Instructions: " << r.instructions << '\n'
       << "Number of mem_access: " << r.memAccesses << '\n'
       << ">>> Runtime: " << r.runtime << " <<<\n";
}

void
printAeReport(std::ostream &os, System &sys)
{
    Cycles total = 0;
    for (NodeId n = 0; n < sys.nodeCount(); ++n) {
        AeNodeReport r = collectAeReport(sys, n);
        printAeReport(os, r);
        os << '\n';
        total += r.runtime;
    }
    os << "Final Runtime = sum of node runtimes = " << total << '\n';
}

Cycles
approximateFullyShared(System &sys)
{
    Cycles runtime = 0;
    double correction = 0.0;
    for (NodeId n = 0; n < sys.nodeCount(); ++n) {
        AeNodeReport r = collectAeReport(sys, n);
        runtime += r.runtime;
        const LatencyProfile &p =
            sys.machine().node(n).profile();
        // (remote - local) / remote, the artifact's 0.455 analogue,
        // computed from this node's actual Table 2 latencies.
        double ratio =
            static_cast<double>(p.remoteMem - p.mem) /
            static_cast<double>(p.remoteMem);
        correction += static_cast<double>(r.remoteMemHits +
                                          r.remoteSharedMemHits) *
                      ratio * static_cast<double>(p.remoteMem);
    }
    if (correction >= static_cast<double>(runtime))
        return 0;
    return runtime - static_cast<Cycles>(correction);
}

} // namespace stramash
