/**
 * @file
 * A migratable single-threaded application, compiled (conceptually)
 * with the Popcorn toolchain: one virtual address layout valid on
 * both ISAs, migration points at call boundaries, and state
 * transformation handled by the OS migration service.
 *
 * All data accesses go through the current kernel's user-access path
 * — translation, demand faults, cache/coherence charging — and land
 * in real guest memory, so workloads compute real answers while the
 * timing model runs underneath.
 */

#ifndef STRAMASH_CORE_APP_HH
#define STRAMASH_CORE_APP_HH

#include "stramash/core/system.hh"

namespace stramash
{

class App
{
  public:
    /** Standard layout bases (identical on both ISAs). */
    static constexpr Addr heapBase = 0x0000100000000000ULL;
    static constexpr Addr stackTop = 0x00007ffffffff000ULL;
    static constexpr Addr stackBytes = 8 * 1024 * 1024;

    App(System &sys, NodeId origin);

    /** Spawn at a policy-chosen origin (System::placeNode). With no
     *  Placer attached this honours the pin hint / defaults to node
     *  0, so scheduler-less code keeps its hand-placed behaviour. */
    App(System &sys, const PlacementHints &hints);

    ~App();

    App(const App &) = delete;
    App &operator=(const App &) = delete;

    Pid pid() const { return pid_; }
    NodeId where() const { return sys_.whereIs(pid_); }
    System &system() { return sys_; }

    /** Map an anonymous region; returns its base address. */
    Addr mmap(Addr bytes, bool writable = true,
              VmaKind kind = VmaKind::Anon,
              const std::string &name = "anon");

    /** Migrate to @p dest (no-op if already there). */
    void migrate(NodeId dest);

    /** Alias of migrate(): reads better at topology-aware call
     *  sites paired with migrateToNext(). */
    void migrateTo(NodeId peer) { migrate(peer); }

    /**
     * Migrate to the next alive node in cyclic node order. On the
     * paper pair this is exactly "the other node"; on an N-node
     * machine the task round-robins across the topology.
     * @return the destination node.
     */
    NodeId migrateToNext();

    // ---- memory access (charged, faulting, real data) ----

    template <typename T>
    T
    read(Addr va)
    {
        KernelInstance &k = currentKernel();
        retireForAccess(k);
        return k.userLoad<T>(currentTask(), va);
    }

    template <typename T>
    void
    write(Addr va, const T &v)
    {
        KernelInstance &k = currentKernel();
        retireForAccess(k);
        k.userStore<T>(currentTask(), va, v);
    }

    void readBuf(Addr va, void *dst, std::size_t size);
    void writeBuf(Addr va, const void *src, std::size_t size);

    /** Retire @p units of non-memory work (ISA-expanded). */
    void compute(std::uint64_t units);

    // ---- synchronisation ----

    bool futexWait(Addr uaddr, std::uint32_t expected);
    unsigned futexWake(Addr uaddr, unsigned count = 1);
    std::uint32_t fetchAdd(Addr uaddr, std::uint32_t delta);
    bool cas(Addr uaddr, std::uint32_t expected, std::uint32_t desired);

    /** The kernel hosting the task right now. Every user-level
     *  operation funnels through here, which is where the crash
     *  guard hooks in: if this task's kernel has died, detection and
     *  recovery run before the operation proceeds. */
    KernelInstance &currentKernel();
    Task &currentTask() { return currentKernel().task(pid_); }

  private:
    System &sys_;
    Pid pid_;
    NodeId origin_;
    Addr mmapCursor_ = heapBase;

    void retireForAccess(KernelInstance &k);
};

} // namespace stramash

#endif // STRAMASH_CORE_APP_HH
