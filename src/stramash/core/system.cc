#include "stramash/core/system.hh"

#include <algorithm>

#include "stramash/sim/parallel_executor.hh"
#include "stramash/trace/chrome_exporter.hh"
#include "stramash/trace/json_stats.hh"

namespace stramash
{

KernelLookup
System::lookup()
{
    return [this](NodeId n) -> KernelInstance & { return kernel(n); };
}

System::System(const SystemConfig &cfg) : cfg_(cfg)
{
    MachineConfig mc =
        cfg.topology
            ? MachineConfig::fromTopology(*cfg.topology, cfg.l3Size)
            : MachineConfig::paperPair(cfg.memoryModel, cfg.l3Size);
    // The spec owns the memory model on the topology path.
    cfg_.memoryModel = mc.memoryModel;
    mc.crossIsaIpiUs = cfg.crossIsaIpiUs;
    mc.cachePluginEnabled = cfg.cachePluginEnabled;
    mc.streamMlp = cfg.streamMlp;
    mc.snoopCosts = cfg.snoopCosts;
    mc.trace = cfg.trace;
    mc.faultPlan = cfg.faultPlan;
    if (cfg.crash.enabled && !mc.faultPlan) {
        // The detector needs the resilient transport (retries,
        // timeouts) to ride out a peer dying mid-RPC; an empty plan
        // turns that machinery on without injecting anything.
        mc.faultPlan = FaultPlan{};
    }
    machine_ = std::make_unique<Machine>(mc);

    // Messaging area (SHM transport): placed per the paper's rules,
    // reserved from kernel allocators.
    std::vector<AddrRange> reserved;
    if (cfg.transport == Transport::SharedMemory) {
        Addr base =
            ShmMessageLayer::areaBaseFor(machine_->physMap());
        reserved.push_back(
            {base, base + ShmMessageLayer::paperAreaBytes});
        msg_ = std::make_unique<ShmMessageLayer>(
            *machine_, base, ShmMessageLayer::paperAreaBytes,
            cfg.useIpiNotification, cfg.msgCosts);
    } else {
        msg_ = std::make_unique<TcpMessageLayer>(*machine_,
                                                 cfg.msgCosts);
    }

    guard_ = std::make_unique<RemoteAccessGuard>(cfg.remoteGuard);
    for (NodeId n = 0; n < machine_->nodeCount(); ++n) {
        kernels_.push_back(std::make_unique<KernelInstance>(
            *machine_, n, *msg_, reserved));
        KernelInstance *k = kernels_.back().get();
        k->attachGuard(guard_.get());
        msg_->registerHandler(n,
                              [k](const Message &m) { k->pump(m); });
    }

    if (cfg.osDesign == OsDesign::MultipleKernel) {
        dsmEngine_ = std::make_unique<DsmEngine>(*msg_, lookup());
        popcornFault_ =
            std::make_unique<PopcornFaultHandler>(*dsmEngine_);
        popcornFutex_ =
            std::make_unique<PopcornFutexPolicy>(*msg_, lookup());
        popcornMigration_ = std::make_unique<PopcornMigrationPolicy>(
            *msg_, lookup(), *dsmEngine_);
        for (auto &k : kernels_) {
            dsmEngine_->installHandlers(*k);
            popcornFutex_->installHandlers(*k);
            popcornMigration_->installHandlers(*k);
            k->setFaultHandler(popcornFault_.get());
            // Shared-nothing: each kernel has distinct namespaces.
            k->namespaces().pidNs = 0x1000 + k->nodeId();
            k->namespaces().mountNs = 0x2000 + k->nodeId();
            k->namespaces().netNs = 0x3000 + k->nodeId();
            k->namespaces().utsNs = 0x4000 + k->nodeId();
            k->namespaces().userNs = 0x5000 + k->nodeId();
            k->namespaces().cgroupNs = 0x6000 + k->nodeId();
        }
        futexPolicy_ = popcornFutex_.get();
        migrationPolicy_ = popcornMigration_.get();
        // Write-backs of dirty lines on replicated pages trigger the
        // DSM consistency policy (paper §9.2.2).
        machine_->caches().setWritebackHook(
            [this](NodeId n, Addr line) {
                dsmEngine_->onWriteback(n, line);
            });
    } else {
        stramashShared_ = std::make_unique<StramashShared>();
        stramashFault_ = std::make_unique<StramashFaultHandler>(
            *msg_, lookup(), *stramashShared_);
        stramashFutex_ = std::make_unique<StramashFutexPolicy>(
            lookup(), *stramashShared_);
        stramashMigration_ = std::make_unique<StramashMigrationPolicy>(
            *msg_, lookup(), *stramashShared_);
        for (auto &k : kernels_) {
            stramashFault_->installHandlers(*k);
            stramashMigration_->installHandlers(*k);
            k->setFaultHandler(stramashFault_.get());
            // Fused namespaces: identical ids everywhere (§6.6).
            k->namespaces().pidNs = 0x77;
            k->namespaces().mountNs = 0x78;
            k->namespaces().netNs = 0x79;
            k->namespaces().utsNs = 0x7a;
            k->namespaces().userNs = 0x7b;
            k->namespaces().cgroupNs = 0x7c;
        }
        futexPolicy_ = stramashFutex_.get();
        migrationPolicy_ = stramashMigration_.get();

        if (cfg.enableGlobalAllocator) {
            std::vector<KernelInstance *> ks;
            for (auto &k : kernels_)
                ks.push_back(k.get());
            gma_ = std::make_unique<GlobalMemoryAllocator>(
                *machine_, ks, cfg.gma, reserved, msg_.get());
            for (auto &k : kernels_) {
                k->setLowMemoryHook([this](KernelInstance &ki) {
                    return gma_->onLowMemory(ki);
                });
            }
        }
    }

    // Link-only plans deliberately do NOT imply a CrashManager: a
    // partition without a detector is a pure transport drill (and the
    // parallel thread-sweep harness relies on exactly that — the
    // heartbeat detector is sequential machinery). Fencing under
    // partitions needs crash.enabled like any other detection.
    bool crashPlanned = cfg.faultPlan && cfg.faultPlan->crashPlanned();
    if (crashPlanned || cfg.crash.enabled) {
        crash_ = std::make_unique<CrashManager>(
            *machine_, *msg_, lookup(), kernels_.size(), cfg.osDesign,
            *migrationPolicy_, cfg.crash);
        crash_->setDsm(dsmEngine_.get());
        crash_->setGma(gma_.get());
        crash_->setStramashShared(stramashShared_.get());
        for (auto &k : kernels_)
            crash_->installHandlers(*k);
        // Heal/reconcile rides every link transition: un-fence a
        // self-fenced endpoint, hot-plug a partition-fenced one, and
        // clear the partition's leftover suspicion.
        machine_->setLinkEventHook(
            [this](NodeId f, NodeId t, LinkState s) {
                crash_->onLinkChange(f, t, s);
            });
    }
}

System::~System() = default;

HostExecutor &
System::hostExecutor()
{
    if (!executor_)
        executor_ = std::make_unique<HostExecutor>(
            *machine_, std::max(1u, cfg_.hostThreads));
    return *executor_;
}

KernelInstance &
System::kernel(NodeId node)
{
    for (auto &k : kernels_) {
        if (k->nodeId() == node)
            return *k;
    }
    panic("unknown kernel node ", node);
}

KernelInstance &
System::kernelByIsa(IsaType isa)
{
    // Only well-defined when exactly one alive kernel runs the ISA;
    // N-node topologies can run it on several nodes, and silently
    // picking whichever was built first would hide the ambiguity.
    KernelInstance *match = nullptr;
    for (auto &k : kernels_) {
        if (k->isa() != isa || !machine_->nodeAlive(k->nodeId()))
            continue;
        panic_if(match, "kernelByIsa(", isaName(isa),
                 "): ambiguous — kernels on nodes ", match->nodeId(),
                 " and ", k->nodeId(), " both run ", isaName(isa),
                 "; address kernels by node id in N-node topologies");
        match = k.get();
    }
    panic_if(!match, "no alive kernel with ISA ", isaName(isa));
    return *match;
}

NodeId
System::firstAliveFrom(NodeId from) const
{
    std::size_t n = kernels_.size();
    for (std::size_t step = 0; step < n; ++step) {
        NodeId cand = static_cast<NodeId>((from + step) % n);
        if (machine_->nodeAlive(cand))
            return cand;
    }
    panic("firstAliveFrom: every node is dead");
}

NodeId
System::placeNode(const PlacementHints &hints)
{
    if (placer_)
        return placer_->place(hints);
    // No policy attached: honour the pin (sliding off a dead node
    // the same way migrateToNext does), default to node 0.
    return firstAliveFrom(hints.pin.value_or(0));
}

Pid
System::spawnPlaced(const PlacementHints &hints, NodeId *chosen)
{
    NodeId origin = placeNode(hints);
    if (chosen)
        *chosen = origin;
    return spawn(origin);
}

Pid
System::spawn(NodeId origin)
{
    Pid pid = nextPid_++;
    kernel(origin).createTask(pid, origin);
    if (popcornMigration_)
        popcornMigration_->trackTask(pid, origin);
    if (stramashMigration_)
        stramashMigration_->trackTask(pid, origin);
    return pid;
}

void
System::exit(Pid pid)
{
    if (crash_) {
        // Settle any pending crash first so the teardown below never
        // frees frames into a dead (or rebooted) allocator; a reaped
        // task was already torn down by recovery.
        crash_->guardTask(pid);
        if (crash_->taskReaped(pid))
            return;
    }
    // Frames borrowed from another kernel's allocator go home
    // before the task records disappear.
    std::vector<std::pair<NodeId, Addr>> borrowed;
    for (auto &k : kernels_) {
        if (Task *t = k->findTask(pid)) {
            borrowed.insert(borrowed.end(), t->borrowedPages.begin(),
                            t->borrowedPages.end());
            t->borrowedPages.clear();
        }
    }
    for (auto &k : kernels_) {
        if (k->hasTask(pid))
            k->destroyTask(pid);
    }
    for (auto [home, pa] : borrowed)
        kernel(home).freeUserPage(pa);
}

void
System::migrate(Pid pid, NodeId dest)
{
    if (crash_) {
        crash_->guardTask(pid);
        if (crash_->taskReaped(pid))
            return;
        if (!machine_->nodeAlive(dest)) {
            crash_->recovery().counter("migrations_refused_dead") += 1;
            return;
        }
    }
    NodeId src = whereIs(pid);
    // Span on the source track: covers state transform, the wire
    // transfer and the destination-side handler (which runs nested
    // inside dispatch while this frame is live).
    STRAMASH_TRACE_SPAN(machine_->tracer(), TraceCategory::Migrate,
                        "migrate.thread", src, pid, src, dest);
    migrationPolicy_->migrate(pid, dest);
}

void
System::migrateProcess(Pid pid, NodeId dest)
{
    if (crash_) {
        crash_->guardTask(pid);
        if (crash_->taskReaped(pid))
            return;
        if (!machine_->nodeAlive(dest)) {
            crash_->recovery().counter("migrations_refused_dead") += 1;
            return;
        }
    }
    NodeId src = whereIs(pid);
    STRAMASH_TRACE_SPAN(machine_->tracer(), TraceCategory::Migrate,
                        "migrate.process", src, pid, src, dest);
    migrationPolicy_->migrateProcess(pid, dest);
}

void
System::killNode(NodeId node)
{
    panic_if(!crash_, "killNode without crash machinery: set "
                      "SystemConfig::crash.enabled or plan a crash");
    crash_->killNow(node);
}

void
System::rejoinNode(NodeId node)
{
    panic_if(!crash_, "rejoinNode without crash machinery");
    crash_->rejoin(node);
}

void
System::severLink(NodeId a, NodeId b)
{
    machine_->setLinkState(a, b, LinkState::Severed);
    machine_->setLinkState(b, a, LinkState::Severed);
}

void
System::healLink(NodeId a, NodeId b)
{
    machine_->setLinkState(a, b, LinkState::Up);
    machine_->setLinkState(b, a, LinkState::Up);
}

NodeId
System::whereIs(Pid pid) const
{
    if (popcornMigration_)
        return popcornMigration_->currentNode(pid);
    return stramashMigration_->currentNode(pid);
}

void
System::resetExperimentCounters(bool flushCaches)
{
    machine_->resetTiming(flushCaches);
    msg_->resetCounters();
    migrationPolicy_->resetCounters();
}

std::uint64_t
System::replicatedPages() const
{
    return migrationPolicy_->replicatedPages();
}

bool
System::writeChromeTrace(const std::string &path)
{
    ChromeTraceExporter exporter(machine_->tracer());
    for (NodeId n = 0; n < machine_->nodeCount(); ++n) {
        exporter.setNodeLabel(
            n, "node" + std::to_string(n) + " (" +
                   isaName(machine_->node(n).isa()) + ")");
    }
    return exporter.writeFile(path);
}

void
System::forEachStatGroup(
    const std::function<void(const StatGroup &)> &fn)
{
    for (NodeId n = 0; n < machine_->nodeCount(); ++n)
        fn(machine_->node(n).stats());
    fn(msg_->stats());
    fn(guard_->stats());
    for (auto &k : kernels_) {
        fn(k->stats());
        fn(k->palloc().stats());
    }
    if (gma_)
        fn(gma_->stats());
    if (crash_)
        fn(crash_->recovery());
    if (FaultInjector *fi = machine_->faultInjector()) {
        fn(fi->faults());
        fn(fi->retries());
        fn(fi->partition());
    }
    for (const StatGroup *g : externalStats_)
        fn(*g);
}

void
System::registerExternalStatGroup(const StatGroup *group)
{
    panic_if(!group, "registerExternalStatGroup(nullptr)");
    if (std::find(externalStats_.begin(), externalStats_.end(),
                  group) == externalStats_.end())
        externalStats_.push_back(group);
}

void
System::unregisterExternalStatGroup(const StatGroup *group)
{
    externalStats_.erase(std::remove(externalStats_.begin(),
                                     externalStats_.end(), group),
                         externalStats_.end());
}

bool
System::writeStatsJson(const std::string &path)
{
    JsonStatsExporter exporter;
    forEachStatGroup([&](const StatGroup &g) { exporter.add(g); });
    return exporter.writeFile(path);
}

} // namespace stramash
