/**
 * @file
 * Placement abstraction between the core process layer and the
 * scheduler.
 *
 * The System consults a Placer (when one is attached) to decide
 * which node a new task should start on, and workloads consult it to
 * pick offload targets. The real implementation lives in
 * stramash/sched — core only sees this interface, which keeps the
 * library layering acyclic (core cannot depend on sched, because
 * sched depends on core).
 */

#ifndef STRAMASH_CORE_PLACEMENT_HH
#define STRAMASH_CORE_PLACEMENT_HH

#include <cstdint>
#include <optional>

#include "stramash/common/types.hh"

namespace stramash
{

/**
 * What the caller knows about a task at placement time. Everything is
 * optional: an empty hint set means "anywhere" and the policy decides
 * on load alone.
 */
struct PlacementHints
{
    /** Prefer a node running this ISA (e.g. an ISA-affine phase). */
    std::optional<IsaType> preferIsa;
    /** Expected compute weight in abstract work units; the load
     *  policies use it to balance queued work, the cost model to
     *  weigh migration charge against remaining benefit. */
    std::uint64_t weightCycles = 0;
    /** Warm-cache footprint in bytes: state the task would have to
     *  re-fetch after moving to another node's cache hierarchy. */
    std::uint64_t footprintBytes = 0;
    /** Hard pin: place exactly here (dead-node fallback aside). */
    std::optional<NodeId> pin;
};

/**
 * A placement policy. Implemented by sched::Scheduler; attached to
 * the System with setPlacer(). The Placer must outlive the window in
 * which it is attached (detach with setPlacer(nullptr) first).
 */
class Placer
{
  public:
    virtual ~Placer() = default;

    /** Choose a node for a task described by @p hints. Must return
     *  an alive node. */
    virtual NodeId place(const PlacementHints &hints) = 0;

    /**
     * Choose where a task currently at @p from should run its next
     * offloadable phase (the scheduler-driven replacement for the
     * hard-coded migrateToNext() hop). Returning @p from means
     * "stay put".
     */
    virtual NodeId offloadTarget(NodeId from,
                                 const PlacementHints &hints) = 0;
};

} // namespace stramash

#endif // STRAMASH_CORE_PLACEMENT_HH
