#include "stramash/core/app.hh"

namespace stramash
{

App::App(System &sys, const PlacementHints &hints)
    : App(sys, sys.placeNode(hints))
{
}

App::App(System &sys, NodeId origin) : sys_(sys), origin_(origin)
{
    pid_ = sys_.spawn(origin);
    KernelInstance &k = sys_.kernel(origin);
    Task &t = k.task(pid_);

    // Standard layout: code, stack. Heap regions come from mmap().
    Vma code;
    code.start = 0x400000;
    code.end = 0x400000 + 2 * 1024 * 1024;
    code.prot = {true, false, true, true, false, false};
    code.kind = VmaKind::Code;
    code.name = "code";
    bool ok = t.as->vmas().insert(code);
    panic_if(!ok, "code VMA insert failed");

    Vma stack;
    stack.start = stackTop - stackBytes;
    stack.end = stackTop;
    stack.prot = {true, true, true, false, false, false};
    stack.kind = VmaKind::Stack;
    stack.name = "stack";
    ok = t.as->vmas().insert(stack);
    panic_if(!ok, "stack VMA insert failed");

    t.state.pc = code.start;
    t.state.sp = stackTop - 64;
    t.state.fp = t.state.sp;
    t.state.pid = pid_;
    t.heapBrk = heapBase;
}

App::~App()
{
    sys_.exit(pid_);
}

Addr
App::mmap(Addr bytes, bool writable, VmaKind kind,
          const std::string &name)
{
    panic_if(bytes == 0, "mmap of zero bytes");
    Addr size = pageAlignUp(bytes);
    Addr base = mmapCursor_;
    // Guard gap between regions so a stray access faults loudly.
    mmapCursor_ += size + 16 * pageSize;

    KernelInstance &k = sys_.kernel(origin_);
    Task &t = k.task(pid_);
    Vma vma;
    vma.start = base;
    vma.end = base + size;
    vma.prot.present = true;
    vma.prot.user = true;
    vma.prot.writable = writable;
    vma.prot.executable = false;
    vma.kind = kind;
    vma.name = name;
    bool ok = t.as->vmas().insert(vma);
    panic_if(!ok, "mmap VMA overlap");
    return base;
}

KernelInstance &
App::currentKernel()
{
    sys_.noteUserOp(pid_);
    return sys_.kernel(where());
}

void
App::migrate(NodeId dest)
{
    sys_.migrate(pid_, dest);
}

NodeId
App::migrateToNext()
{
    NodeId cur = where();
    std::size_t n = sys_.nodeCount();
    panic_if(n < 2, "migrateToNext: no other node to migrate to");
    for (std::size_t step = 1; step < n; ++step) {
        NodeId cand = static_cast<NodeId>((cur + step) % n);
        if (sys_.isNodeAlive(cand)) {
            migrate(cand);
            return cand;
        }
    }
    // Every peer is dead. Attempt the cyclic successor anyway: the
    // migration layer refuses it (migrations_refused_dead), exactly
    // like the historical two-node dead-peer path.
    NodeId cand = static_cast<NodeId>((cur + 1) % n);
    migrate(cand);
    return cand;
}

void
App::retireForAccess(KernelInstance &k)
{
    // A memory instruction retires alongside its access.
    double exp = isaDescriptor(k.isa()).instExpansion;
    k.machine().retire(k.nodeId(),
                       static_cast<ICount>(exp < 1.0 ? 1.0 : exp));
}

void
App::readBuf(Addr va, void *dst, std::size_t size)
{
    KernelInstance &k = currentKernel();
    // One instruction per cache line moved.
    k.machine().retire(k.nodeId(), (size + cacheLineSize - 1) /
                                       cacheLineSize);
    k.userRead(currentTask(), va, dst, size);
}

void
App::writeBuf(Addr va, const void *src, std::size_t size)
{
    KernelInstance &k = currentKernel();
    k.machine().retire(k.nodeId(), (size + cacheLineSize - 1) /
                                       cacheLineSize);
    k.userWrite(currentTask(), va, src, size);
}

void
App::compute(std::uint64_t units)
{
    KernelInstance &k = currentKernel();
    double exp = isaDescriptor(k.isa()).instExpansion;
    k.machine().retire(k.nodeId(), static_cast<ICount>(
                                       static_cast<double>(units) *
                                       exp));
}

bool
App::futexWait(Addr uaddr, std::uint32_t expected)
{
    KernelInstance &k = currentKernel();
    STRAMASH_TRACE_SPAN(k.machine().tracer(), TraceCategory::Futex,
                        "futex.wait", k.nodeId(), pid_, uaddr,
                        expected);
    return sys_.futexPolicy().wait(k, currentTask(), uaddr, expected);
}

unsigned
App::futexWake(Addr uaddr, unsigned count)
{
    KernelInstance &k = currentKernel();
    STRAMASH_TRACE_SPAN(k.machine().tracer(), TraceCategory::Futex,
                        "futex.wake", k.nodeId(), pid_, uaddr, count);
    return sys_.futexPolicy().wake(k, currentTask(), uaddr, count);
}

std::uint32_t
App::fetchAdd(Addr uaddr, std::uint32_t delta)
{
    KernelInstance &k = currentKernel();
    retireForAccess(k);
    return k.userFetchAdd(currentTask(), uaddr, delta);
}

bool
App::cas(Addr uaddr, std::uint32_t expected, std::uint32_t desired)
{
    KernelInstance &k = currentKernel();
    retireForAccess(k);
    bool ok = false;
    k.userCas(currentTask(), uaddr, expected, desired, ok);
    return ok;
}

} // namespace stramash
