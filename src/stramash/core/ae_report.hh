/**
 * @file
 * The artifact-evaluation report (paper Appendix A.5): per-node
 * counters in the exact shape of the AE's example output — cache hit
 * rates per level, IPIs, local / remote / remote-shared memory hits,
 * instruction and access counts, and the icount runtime — plus the
 * appendix's Fully-Shared runtime approximation formula.
 */

#ifndef STRAMASH_CORE_AE_REPORT_HH
#define STRAMASH_CORE_AE_REPORT_HH

#include <ostream>
#include <string>

#include "stramash/core/system.hh"

namespace stramash
{

/** The counters behind one node's AE report block. */
struct AeNodeReport
{
    std::string label;
    double l1HitRate = 0;
    double l2HitRate = 0;
    double l3HitRate = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l3Hits = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l3Accesses = 0;
    std::uint64_t ipis = 0;
    std::uint64_t localMemHits = 0;
    std::uint64_t remoteMemHits = 0;
    std::uint64_t remoteSharedMemHits = 0;
    std::uint64_t instructions = 0;
    std::uint64_t memAccesses = 0;
    Cycles runtime = 0;
};

/** Collect one node's counters. */
AeNodeReport collectAeReport(System &sys, NodeId node);

/** Print one node's block in the AE example-output format. */
void printAeReport(std::ostream &os, const AeNodeReport &r);

/** Print every node ("x86:" / "Arm:" blocks) plus the final
 *  runtime = sum of node runtimes (the AE formula). */
void printAeReport(std::ostream &os, System &sys);

/**
 * The appendix's Fully-Shared approximation: subtract the
 * remote-vs-local latency difference for every remote hit,
 *
 *   Fully Shared Runtime = Final Runtime
 *                        - Remote Memory Hits x remoteLocalRatio
 *                          x local overhead
 *
 * where remoteLocalRatio = (remote - local) / remote (the artifact's
 * 0.455 with its 660/360 cycle pair).
 */
Cycles approximateFullyShared(System &sys);

} // namespace stramash

#endif // STRAMASH_CORE_AE_REPORT_HH
