/**
 * @file
 * The top-level Stramash library entry point.
 *
 * A System assembles the full stack for one experiment: the fused
 * machine (Stramash-QEMU analogue), the messaging transport, one
 * kernel instance per node, and the OS-design policy set — either
 * the Popcorn multiple-kernel baseline or the Stramash fused-kernel
 * design. Workloads interact through core::App.
 */

#ifndef STRAMASH_CORE_SYSTEM_HH
#define STRAMASH_CORE_SYSTEM_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "stramash/core/placement.hh"
#include "stramash/dsm/popcorn.hh"
#include "stramash/fault/crash.hh"
#include "stramash/fused/global_alloc.hh"
#include "stramash/fused/stramash.hh"

namespace stramash
{

class HostExecutor;

/** Everything needed to stand up one experiment configuration. */
struct SystemConfig
{
    OsDesign osDesign = OsDesign::FusedKernel;
    MemoryModel memoryModel = MemoryModel::Shared;
    /**
     * N-node machine description. Absent (the default) stands up the
     * paper's hard-wired x86+Arm pair — bit-identical to the
     * pre-topology code, as the differential tests check. When set,
     * it overrides `memoryModel` and decides node count, ISAs, DRAM
     * sizes and the messaging-area placement.
     */
    std::optional<TopologySpec> topology;
    Transport transport = Transport::SharedMemory;
    /** Per-node L3 (4 MiB default; 32 MiB in Fig. 10). */
    Addr l3Size = 4 * 1024 * 1024;
    /** IPI notification (true) or polling (false) for SHM rings. */
    bool useIpiNotification = true;
    /** Disable for functional-only runs (kv-store experiment). */
    bool cachePluginEnabled = true;
    double crossIsaIpiUs = 2.0;
    /** Bulk kernel-copy memory-level parallelism (ablation knob). */
    unsigned streamMlp = 8;
    /** CXL coherence action costs (ablation knob). */
    SnoopCosts snoopCosts{};
    /** Remote kernel-memory guard (paper §5 security postulate;
     *  Enforce = the MPU/capability behaviour of the future-work
     *  mechanism). */
    GuardMode remoteGuard = GuardMode::Audit;
    /** Wire the fused global memory allocator (fused design only). */
    bool enableGlobalAllocator = true;
    GmaConfig gma{};
    MsgCosts msgCosts{};
    /** Cross-layer event tracing (off by default; zero-ish cost). */
    TraceConfig trace{};
    /** Fault-injection plan (stramash/fault). Absent = nothing is
     *  injected and the transport runs the historical fast path. */
    std::optional<FaultPlan> faultPlan;
    /** Crash-stop failure detection & recovery (stramash/fault).
     *  A CrashManager is built when a crash is planned in faultPlan
     *  or crash.enabled is set; otherwise the per-operation guard is
     *  compiled out of the path entirely. */
    CrashConfig crash{};
    /**
     * Host threads for parallel-capable workload paths (the epoch
     * executor, sim/parallel_executor.hh). 1 — the default — runs the
     * identical epoch algorithm inline on the calling thread; any
     * value is clamped to the node count. Simulated timing and every
     * statistic are bit-identical across thread counts.
     */
    unsigned hostThreads = 1;
};

class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    const SystemConfig &config() const { return cfg_; }
    Machine &machine() { return *machine_; }
    MessageLayer &msg() { return *msg_; }

    /**
     * The epoch-based parallel host executor, sized to
     * config().hostThreads (lazily built: a 1-thread executor spawns
     * no workers). Workloads with a parallel path drive their epoch
     * loop through it; see DESIGN.md §6h.
     */
    HostExecutor &hostExecutor();

    KernelInstance &kernel(NodeId node);
    KernelInstance &kernelByIsa(IsaType isa);
    std::size_t nodeCount() const { return kernels_.size(); }

    // ---- process lifecycle ----

    /** Create a process at @p origin. VMAs are added via App. */
    Pid spawn(NodeId origin);

    // ---- scheduler-driven placement ----

    /**
     * Attach (or detach, with nullptr) the placement policy. The
     * scheduler implements Placer; while attached, placeNode() and
     * spawnPlaced() route through it. Without one they fall back to
     * the hint pin (or node 0), preserving hand-placed behaviour.
     */
    void setPlacer(Placer *placer) { placer_ = placer; }
    Placer *placer() { return placer_; }

    /**
     * Choose a node for a new task. With a Placer attached this is
     * policy-driven; without one the pin hint wins (first alive node
     * from it in cyclic order if it is dead), defaulting to node 0.
     */
    NodeId placeNode(const PlacementHints &hints);

    /** spawn() at a policy-chosen origin. @p chosen (optional)
     *  receives the node the placement decided on. */
    Pid spawnPlaced(const PlacementHints &hints,
                    NodeId *chosen = nullptr);

    /** First alive node at or cyclically after @p from. */
    NodeId firstAliveFrom(NodeId from) const;

    /** Terminate the process on every kernel hosting it. */
    void exit(Pid pid);

    /** Migrate one thread (policy-specific mechanics). */
    void migrate(Pid pid, NodeId dest);

    /**
     * Whole-process migration (paper §5: "Inter-kernel process
     * migration is simpler because there is no kernel state to be
     * kept consistent after migration"): the destination becomes the
     * process's new origin and the source kernel forgets it.
     */
    void migrateProcess(Pid pid, NodeId dest);

    /** Node the process currently runs on. */
    NodeId whereIs(Pid pid) const;

    // ---- crash-stop failure & recovery ----

    /**
     * Hook called before every user-level operation (App routes all
     * of its work through this): gives the failure detector a chance
     * to run, and forces detection + recovery when @p pid's own
     * kernel has crashed. One pointer test when no crash machinery
     * is attached.
     */
    void
    noteUserOp(Pid pid)
    {
        if (crash_)
            crash_->guardTask(pid);
    }

    /** Crash a node immediately (chaos/test API). Recovery runs on
     *  the next guarded operation. Requires crash machinery. */
    void killNode(NodeId node);

    /** Bring a declared-dead node back through the hot-plug flow. */
    void rejoinNode(NodeId node);

    /**
     * Cut both directions of the a<->b message link (chaos/test API,
     * mirroring killNode): messages and IPIs vanish, both nodes stay
     * alive, and the crash manager's partition arbitration decides
     * who may fence whom. Requires an attached fault plan (an empty
     * one is enough).
     */
    void severLink(NodeId a, NodeId b);

    /** Restore both directions of a<->b; a fully healed pair runs
     *  the reconcile flow (un-fence / hot-plug rejoin). */
    void healLink(NodeId a, NodeId b);

    bool isNodeAlive(NodeId node) const
    {
        return machine_->nodeAlive(node);
    }

    /** Non-null when a crash is planned or the detector enabled. */
    CrashManager *crashManager() { return crash_.get(); }

    // ---- policy access ----

    FutexPolicy &futexPolicy() { return *futexPolicy_; }
    MigrationPolicy &migrationPolicy() { return *migrationPolicy_; }

    /** Non-null for the MultipleKernel design. */
    DsmEngine *dsmEngine() { return dsmEngine_.get(); }
    RemoteAccessGuard &remoteGuard() { return *guard_; }
    /** Non-null for the FusedKernel design. */
    StramashShared *stramashState() { return stramashShared_.get(); }
    GlobalMemoryAllocator *globalAllocator() { return gma_.get(); }

    // ---- experiment bookkeeping ----

    /** Zero message/replication counters and node clocks. */
    void resetExperimentCounters(bool flushCaches = true);

    std::uint64_t messagesSent() const { return msg_->messagesSent(); }
    std::uint64_t replicatedPages() const;
    Cycles runtime() const { return machine_->totalRuntime(); }

    // ---- telemetry export ----

    Tracer &tracer() { return machine_->tracer(); }

    /**
     * Write the merged Chrome-trace JSON for everything recorded so
     * far. Node tracks are labelled "nodeN (<isa>)". Returns false
     * (with a warning) if the file cannot be written.
     */
    bool writeChromeTrace(const std::string &path);

    /**
     * Write every registered StatGroup (kernels, page allocators,
     * message layer, per-node machine stats, GMA when present) as one
     * JSON document.
     */
    bool writeStatsJson(const std::string &path);

    /** Visit every StatGroup owned by this system, plus any
     *  externally registered ones. */
    void forEachStatGroup(
        const std::function<void(const StatGroup &)> &fn);

    /**
     * Attach a StatGroup owned by a workload-side component (e.g.
     * the open-loop load front end) so it appears in writeStatsJson /
     * forEachStatGroup alongside the system-owned groups. The caller
     * must unregister (or outlive every export) before destroying
     * the group.
     */
    void registerExternalStatGroup(const StatGroup *group);
    void unregisterExternalStatGroup(const StatGroup *group);

  private:
    SystemConfig cfg_;
    std::unique_ptr<Machine> machine_;
    std::unique_ptr<MessageLayer> msg_;
    // Must outlive the kernels: their frame-free callbacks revoke
    // page-table frames from the guard during teardown.
    std::unique_ptr<RemoteAccessGuard> guard_;
    std::vector<std::unique_ptr<KernelInstance>> kernels_;

    // Popcorn policy set.
    std::unique_ptr<DsmEngine> dsmEngine_;
    std::unique_ptr<PopcornFaultHandler> popcornFault_;
    std::unique_ptr<PopcornFutexPolicy> popcornFutex_;
    std::unique_ptr<PopcornMigrationPolicy> popcornMigration_;

    // Stramash policy set.
    std::unique_ptr<StramashShared> stramashShared_;
    std::unique_ptr<StramashFaultHandler> stramashFault_;
    std::unique_ptr<StramashFutexPolicy> stramashFutex_;
    std::unique_ptr<StramashMigrationPolicy> stramashMigration_;

    std::unique_ptr<GlobalMemoryAllocator> gma_;
    std::unique_ptr<CrashManager> crash_;
    /** Declared after machine_: destroyed (workers joined) first. */
    std::unique_ptr<HostExecutor> executor_;
    std::vector<const StatGroup *> externalStats_;

    FutexPolicy *futexPolicy_ = nullptr;
    MigrationPolicy *migrationPolicy_ = nullptr;
    Placer *placer_ = nullptr;

    Pid nextPid_ = 100;

    KernelLookup lookup();
};

} // namespace stramash

#endif // STRAMASH_CORE_SYSTEM_HH
