#include "stramash/mem/topology.hh"

#include <algorithm>

#include "stramash/common/logging.hh"
#include "stramash/common/units.hh"

namespace stramash
{

const TopologyNode *
TopologySpec::nodeById(NodeId id) const
{
    for (const auto &n : nodes) {
        if (n.id == id)
            return &n;
    }
    return nullptr;
}

void
TopologySpec::validate() const
{
    panic_if(nodes.empty(), "topology: needs at least one node");
    // Dense ids {0..n-1}: every per-node table in the stack (tracer
    // tracks, IPI counters, detector matrices) indexes by NodeId.
    std::vector<bool> seen(nodes.size(), false);
    for (const auto &n : nodes) {
        panic_if(n.id >= nodes.size(), "topology: node id ", n.id,
                 " is not dense in a ", nodes.size(), "-node machine");
        panic_if(seen[n.id], "topology: duplicate node id ", n.id);
        seen[n.id] = true;
        panic_if(n.dramBytes == 0, "topology: node ", n.id,
                 " has no DRAM");
        panic_if(n.dramBytes % pageSize != 0, "topology: node ", n.id,
                 " DRAM is not page-aligned");
        panic_if(n.numCores == 0, "topology: node ", n.id,
                 " has no cores");
    }
    panic_if(bootStripBytes == 0 || bootStripBytes % pageSize != 0,
             "topology: boot strip must be a positive page multiple");
    panic_if(mmioHoleBytes % pageSize != 0,
             "topology: MMIO hole must be page-aligned");
    if (memoryModel == MemoryModel::Shared) {
        panic_if(poolBytes == 0,
                 "topology: the Shared model needs a non-empty pool");
    } else {
        panic_if(poolBytes != 0, "topology: only the Shared model has "
                                 "a pool; split the high memory into "
                                 "dramBytes instead");
    }
    panic_if(poolBytes % pageSize != 0,
             "topology: pool must be page-aligned");
}

TopologySpec
TopologySpec::paperPair(MemoryModel model, NodeId x86Node,
                        NodeId armNode)
{
    TopologySpec spec;
    spec.memoryModel = model;
    // Figure-4 sizing: 1.5 GiB boot strips; under Separated and
    // FullyShared the high 4 GiB is split 2+2, under Shared it is the
    // pool.
    const Addr boot = 1_GiB + 512_MiB;
    const bool pooled = model == MemoryModel::Shared;
    const Addr dram = pooled ? boot : boot + 2_GiB;
    spec.poolBytes = pooled ? 4_GiB : 0;
    spec.nodes = {
        {x86Node, IsaType::X86_64, CoreModel::XeonGold, 1, dram},
        {armNode, IsaType::AArch64, CoreModel::ThunderX2, 1, dram},
    };
    return spec;
}

TopologySpec
TopologySpec::alternating(std::size_t n, MemoryModel model,
                          Addr dramPerNode, Addr poolBytes)
{
    panic_if(n == 0, "topology: zero nodes");
    TopologySpec spec;
    spec.memoryModel = model;
    if (dramPerNode == 0)
        dramPerNode = 1_GiB + 512_MiB;
    if (model == MemoryModel::Shared)
        spec.poolBytes = poolBytes ? poolBytes : 4_GiB;
    for (std::size_t i = 0; i < n; ++i) {
        bool x86 = (i % 2) == 0;
        spec.nodes.push_back({static_cast<NodeId>(i),
                              x86 ? IsaType::X86_64 : IsaType::AArch64,
                              x86 ? CoreModel::XeonGold
                                  : CoreModel::ThunderX2,
                              1, dramPerNode});
    }
    return spec;
}

} // namespace stramash
