/**
 * @file
 * The fused guest physical memory.
 *
 * As in Stramash-QEMU, one coherent backing store holds the physical
 * memory of every node: "any memory operation from a single guest will
 * be reflected in others" (paper §7.1). We back it with host memory,
 * allocated sparsely in 4 KiB frames so an 8 GiB guest costs only what
 * it touches.
 *
 * GuestMemory is purely functional storage — it has no timing. Timing
 * comes from the cache hierarchy and memory model in cache/ and mem/.
 */

#ifndef STRAMASH_MEM_GUEST_MEMORY_HH
#define STRAMASH_MEM_GUEST_MEMORY_HH

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "stramash/common/logging.hh"
#include "stramash/common/types.hh"

namespace stramash
{

/** Sparse, host-backed guest physical memory. */
class GuestMemory
{
  public:
    GuestMemory() = default;

    GuestMemory(const GuestMemory &) = delete;
    GuestMemory &operator=(const GuestMemory &) = delete;

    /** Copy @p size bytes out of guest memory into @p dst. */
    void
    read(Addr addr, void *dst, std::size_t size) const
    {
        auto *out = static_cast<std::uint8_t *>(dst);
        while (size > 0) {
            Addr base = pageBase(addr);
            std::size_t off = pageOffset(addr);
            std::size_t chunk =
                std::min<std::size_t>(size, pageSize - off);
            auto it = frames_.find(base);
            if (it == frames_.end()) {
                // Untouched memory reads as zero.
                std::memset(out, 0, chunk);
            } else {
                std::memcpy(out, it->second->data() + off, chunk);
            }
            out += chunk;
            addr += chunk;
            size -= chunk;
        }
    }

    /** Copy @p size bytes from @p src into guest memory. */
    void
    write(Addr addr, const void *src, std::size_t size)
    {
        auto *in = static_cast<const std::uint8_t *>(src);
        while (size > 0) {
            Addr base = pageBase(addr);
            std::size_t off = pageOffset(addr);
            std::size_t chunk =
                std::min<std::size_t>(size, pageSize - off);
            std::memcpy(frame(base).data() + off, in, chunk);
            in += chunk;
            addr += chunk;
            size -= chunk;
        }
    }

    /** Typed load. T must be trivially copyable. */
    template <typename T>
    T
    load(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Typed store. */
    template <typename T>
    void
    store(Addr addr, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &v, sizeof(T));
    }

    /** Zero a byte range. */
    void
    zero(Addr addr, std::size_t size)
    {
        while (size > 0) {
            Addr base = pageBase(addr);
            std::size_t off = pageOffset(addr);
            std::size_t chunk =
                std::min<std::size_t>(size, pageSize - off);
            auto it = frames_.find(base);
            if (it != frames_.end())
                std::memset(it->second->data() + off, 0, chunk);
            addr += chunk;
            size -= chunk;
        }
    }

    /** Copy @p size bytes guest-to-guest (page replication). */
    void
    copy(Addr dst, Addr src, std::size_t size)
    {
        std::vector<std::uint8_t> buf(size);
        read(src, buf.data(), size);
        write(dst, buf.data(), size);
    }

    /** Number of host frames materialised so far. */
    std::size_t frameCount() const { return frames_.size(); }

    /**
     * Materialise every frame backing [addr, addr + size) now.
     * First-touch writes insert into the frame map, which is not
     * safe against concurrent lookups — a parallel host session must
     * pre-back any range its lanes may write for the first time
     * (Machine::beginParallelSession does this for the messaging
     * area). Already-backed pages are untouched.
     */
    void
    ensureBacked(Addr addr, std::size_t size)
    {
        for (Addr base = pageBase(addr);
             base < addr + size; base += pageSize)
            frame(base);
    }

  private:
    using Frame = std::array<std::uint8_t, pageSize>;

    Frame &
    frame(Addr base)
    {
        auto it = frames_.find(base);
        if (it == frames_.end()) {
            auto f = std::make_unique<Frame>();
            f->fill(0);
            it = frames_.emplace(base, std::move(f)).first;
        }
        return *it->second;
    }

    std::unordered_map<Addr, std::unique_ptr<Frame>> frames_;
};

} // namespace stramash

#endif // STRAMASH_MEM_GUEST_MEMORY_HH
