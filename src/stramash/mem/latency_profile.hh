/**
 * @file
 * Per-core-type memory operation latencies (paper Table 2).
 *
 * All values are in core cycles. "remoteMem" is the CXL-attached /
 * cross-node latency from Sharma's CXL characterisation, as cited by
 * the paper.
 */

#ifndef STRAMASH_MEM_LATENCY_PROFILE_HH
#define STRAMASH_MEM_LATENCY_PROFILE_HH

#include <string>

#include "stramash/common/types.hh"

namespace stramash
{

/** Which published core the latency numbers describe. */
enum class CoreModel : std::uint8_t {
    CortexA72,  ///< small_Arm  (Broadcom Armv8 A72)
    ThunderX2,  ///< big_Arm    (Cavium ThunderX2 CN9980)
    E5_2620,    ///< small_x86  (Xeon E5-2620 v4, Broadwell)
    XeonGold,   ///< big_x86    (Xeon Gold 6230R, Cascade Lake)
};

const char *coreModelName(CoreModel m);

/** Memory-operation latency table for one core type. */
struct LatencyProfile
{
    CoreModel model;
    Cycles l1;        ///< L1 hit
    Cycles l2;        ///< L2 hit
    Cycles l3;        ///< L3 hit (0 = no L3, e.g. Cortex-A72 pairs)
    Cycles mem;       ///< local DRAM
    Cycles remoteMem; ///< remote / CXL-pool DRAM
    double ghz;       ///< core clock, for us<->cycles conversion

    /** Latency of a hit at cache level 1..3. */
    Cycles
    levelLatency(int level) const
    {
        switch (level) {
          case 1: return l1;
          case 2: return l2;
          case 3: return l3;
          default: return mem;
        }
    }
};

/** Table 2 row for the given core. */
const LatencyProfile &latencyProfile(CoreModel m);

/**
 * CXL coherence (snoop) overheads, in cycles, applied on top of the
 * base memory latency when a cross-node coherence action is needed
 * (paper Section 7.3, "CXL Access Overhead Feedback").
 */
struct SnoopCosts
{
    /** Write hits a line another node holds: Snoop Invalidate. */
    Cycles snoopInvalidate = 120;
    /** Read hits a line another node holds dirty: Snoop Data. */
    Cycles snoopData = 100;
    /** Pool-device-initiated Back-Invalidate Snoop. */
    Cycles backInvalidate = 140;
};

} // namespace stramash

#endif // STRAMASH_MEM_LATENCY_PROFILE_HH
