/**
 * @file
 * The machine's physical memory layout (paper Figure 4 / Section 8.1)
 * and its classification under the three hardware memory models
 * (paper Figure 3).
 *
 * Default 8 GiB layout, matching the paper's evaluation setup:
 *
 *   [0x0,        1.5 GiB)  x86 local DRAM
 *   [1.5 GiB,    3 GiB  )  Arm local DRAM
 *   [3 GiB,      4 GiB  )  MMIO hole
 *   [4 GiB,      6 GiB  )  x86 local DRAM  (Separated)   / pool (Shared)
 *   [6 GiB,      8 GiB  )  Arm local DRAM  (Separated)   / pool (Shared)
 *
 * In the Shared model [4 GiB, 8 GiB) is the CXL shared memory pool,
 * remote to both nodes. In the FullyShared model every DRAM range is
 * local to every node.
 */

#ifndef STRAMASH_MEM_PHYS_MAP_HH
#define STRAMASH_MEM_PHYS_MAP_HH

#include <vector>

#include "stramash/common/addr_range.hh"
#include "stramash/common/types.hh"
#include "stramash/mem/topology.hh"

namespace stramash
{

/** One physical memory region and which node's DRAM it is. */
struct PhysRegion
{
    AddrRange range;
    /** Home node of the DRAM (invalidNode for the shared pool). */
    NodeId homeNode;
    /** True if this region belongs to the CXL shared pool. */
    bool sharedPool;
};

/**
 * Physical memory map for an N-node machine under a given memory
 * model. Immutable after construction.
 */
class PhysMap
{
  public:
    /**
     * Parametric layout generator: the N-node generalisation of the
     * paper's Figure-4 layout. Boot-local strips (one per node, in
     * node order, `spec.bootStripBytes` each) are laid out
     * consecutively from address 0, followed by the MMIO hole, the
     * per-node high remainders (dramBytes minus the boot strip, again
     * in node order), and finally the shared pool (Shared model).
     *
     * generate(TopologySpec::paperPair(model)) is bit-identical to
     * paperDefault(model) — the differential tests hold us to it.
     */
    static PhysMap generate(const TopologySpec &spec);

    /**
     * Build the paper's default 8 GiB layout for a given model.
     * Delegates to generate() on the paper-pair spec.
     * @param model  hardware memory model
     * @param x86Node node id of the x86 instance (Arm is the other)
     */
    static PhysMap paperDefault(MemoryModel model, NodeId x86Node = 0,
                                NodeId armNode = 1);

    /** Build from an explicit region list. */
    PhysMap(MemoryModel model, std::vector<PhysRegion> regions);

    MemoryModel model() const { return model_; }

    /** All regions, ascending. */
    const std::vector<PhysRegion> &regions() const { return regions_; }

    /** The region containing @p addr, or nullptr if unmapped. */
    const PhysRegion *regionOf(Addr addr) const;

    /**
     * Classify a physical access by @p accessor under the active
     * model: Local, Remote or SharedPool. Faults if the address is
     * not DRAM.
     */
    MemoryClass classify(Addr addr, NodeId accessor) const;

    /** True if the address is backed by DRAM (not a hole). */
    bool isDram(Addr addr) const;

    /** Total DRAM bytes whose home is @p node (excludes pool). */
    Addr localBytes(NodeId node) const;

    /** Total bytes in the shared pool. */
    Addr poolBytes() const;

    /** Ranges of DRAM local to @p node at boot (per §6.1 the kernel
     *  adjusts its boundaries from the firmware memory map). */
    std::vector<AddrRange> bootRanges(NodeId node) const;

    /** Ranges of the shared pool. */
    std::vector<AddrRange> poolRanges() const;

  private:
    MemoryModel model_;
    std::vector<PhysRegion> regions_;
};

} // namespace stramash

#endif // STRAMASH_MEM_PHYS_MAP_HH
