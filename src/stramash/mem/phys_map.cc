#include "stramash/mem/phys_map.hh"

#include <algorithm>

#include "stramash/common/logging.hh"
#include "stramash/common/units.hh"

namespace stramash
{

PhysMap
PhysMap::paperDefault(MemoryModel model, NodeId x86Node, NodeId armNode)
{
    const Addr gib = 1_GiB;
    const Addr half = 512_MiB;
    std::vector<PhysRegion> regions;

    // Low memory: always the boot-local split.
    regions.push_back({{0, gib + half}, x86Node, false});
    regions.push_back({{gib + half, 3 * gib}, armNode, false});
    // [3 GiB, 4 GiB) is the MMIO hole: deliberately absent.

    switch (model) {
      case MemoryModel::Separated:
      case MemoryModel::FullyShared:
        // High memory is split between the nodes. Under FullyShared
        // the split only defines allocation ownership; every access
        // is local-latency.
        regions.push_back({{4 * gib, 6 * gib}, x86Node, false});
        regions.push_back({{6 * gib, 8 * gib}, armNode, false});
        break;
      case MemoryModel::Shared:
        // High memory is the CXL shared pool.
        regions.push_back({{4 * gib, 8 * gib}, invalidNode, true});
        break;
    }
    return PhysMap(model, std::move(regions));
}

PhysMap::PhysMap(MemoryModel model, std::vector<PhysRegion> regions)
    : model_(model), regions_(std::move(regions))
{
    std::sort(regions_.begin(), regions_.end(),
              [](const PhysRegion &a, const PhysRegion &b) {
                  return a.range.start < b.range.start;
              });
    for (std::size_t i = 1; i < regions_.size(); ++i) {
        panic_if(regions_[i - 1].range.overlaps(regions_[i].range),
                 "overlapping physical regions");
    }
}

const PhysRegion *
PhysMap::regionOf(Addr addr) const
{
    for (const auto &r : regions_) {
        if (r.range.contains(addr))
            return &r;
    }
    return nullptr;
}

MemoryClass
PhysMap::classify(Addr addr, NodeId accessor) const
{
    const PhysRegion *r = regionOf(addr);
    panic_if(!r, "physical access to unmapped address 0x", std::hex,
             addr);
    if (model_ == MemoryModel::FullyShared)
        return MemoryClass::Local;
    if (r->sharedPool)
        return MemoryClass::SharedPool;
    return r->homeNode == accessor ? MemoryClass::Local
                                   : MemoryClass::Remote;
}

bool
PhysMap::isDram(Addr addr) const
{
    return regionOf(addr) != nullptr;
}

Addr
PhysMap::localBytes(NodeId node) const
{
    Addr total = 0;
    for (const auto &r : regions_) {
        if (!r.sharedPool && r.homeNode == node)
            total += r.range.size();
    }
    return total;
}

Addr
PhysMap::poolBytes() const
{
    Addr total = 0;
    for (const auto &r : regions_) {
        if (r.sharedPool)
            total += r.range.size();
    }
    return total;
}

std::vector<AddrRange>
PhysMap::bootRanges(NodeId node) const
{
    std::vector<AddrRange> out;
    for (const auto &r : regions_) {
        if (!r.sharedPool && r.homeNode == node)
            out.push_back(r.range);
    }
    return out;
}

std::vector<AddrRange>
PhysMap::poolRanges() const
{
    std::vector<AddrRange> out;
    for (const auto &r : regions_) {
        if (r.sharedPool)
            out.push_back(r.range);
    }
    return out;
}

} // namespace stramash
