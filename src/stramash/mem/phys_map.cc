#include "stramash/mem/phys_map.hh"

#include <algorithm>

#include "stramash/common/logging.hh"
#include "stramash/common/units.hh"

namespace stramash
{

PhysMap
PhysMap::generate(const TopologySpec &spec)
{
    spec.validate();
    std::vector<PhysRegion> regions;

    // Low memory: one boot-local strip per node, consecutive from 0.
    Addr cursor = 0;
    std::vector<Addr> bootBytes(spec.nodeCount());
    for (const auto &n : spec.nodes) {
        Addr boot = std::min(n.dramBytes, spec.bootStripBytes);
        bootBytes[n.id] = boot;
        regions.push_back({{cursor, cursor + boot}, n.id, false});
        cursor += boot;
    }

    // The MMIO hole sits directly after the boot strips: deliberately
    // absent from the region list (paper: [3 GiB, 4 GiB)).
    cursor += spec.mmioHoleBytes;

    // High memory: per-node remainders in node order. Under
    // FullyShared the split only defines allocation ownership; every
    // access is local-latency.
    for (const auto &n : spec.nodes) {
        Addr rem = n.dramBytes - bootBytes[n.id];
        if (rem == 0)
            continue;
        regions.push_back({{cursor, cursor + rem}, n.id, false});
        cursor += rem;
    }

    // The CXL shared pool closes the layout (Shared model only).
    if (spec.poolBytes) {
        regions.push_back(
            {{cursor, cursor + spec.poolBytes}, invalidNode, true});
    }
    return PhysMap(spec.memoryModel, std::move(regions));
}

PhysMap
PhysMap::paperDefault(MemoryModel model, NodeId x86Node, NodeId armNode)
{
    return generate(TopologySpec::paperPair(model, x86Node, armNode));
}

PhysMap::PhysMap(MemoryModel model, std::vector<PhysRegion> regions)
    : model_(model), regions_(std::move(regions))
{
    std::sort(regions_.begin(), regions_.end(),
              [](const PhysRegion &a, const PhysRegion &b) {
                  return a.range.start < b.range.start;
              });
    for (std::size_t i = 1; i < regions_.size(); ++i) {
        panic_if(regions_[i - 1].range.overlaps(regions_[i].range),
                 "overlapping physical regions");
    }
}

const PhysRegion *
PhysMap::regionOf(Addr addr) const
{
    for (const auto &r : regions_) {
        if (r.range.contains(addr))
            return &r;
    }
    return nullptr;
}

MemoryClass
PhysMap::classify(Addr addr, NodeId accessor) const
{
    const PhysRegion *r = regionOf(addr);
    panic_if(!r, "physical access to unmapped address 0x", std::hex,
             addr);
    if (model_ == MemoryModel::FullyShared)
        return MemoryClass::Local;
    if (r->sharedPool)
        return MemoryClass::SharedPool;
    return r->homeNode == accessor ? MemoryClass::Local
                                   : MemoryClass::Remote;
}

bool
PhysMap::isDram(Addr addr) const
{
    return regionOf(addr) != nullptr;
}

Addr
PhysMap::localBytes(NodeId node) const
{
    Addr total = 0;
    for (const auto &r : regions_) {
        if (!r.sharedPool && r.homeNode == node)
            total += r.range.size();
    }
    return total;
}

Addr
PhysMap::poolBytes() const
{
    Addr total = 0;
    for (const auto &r : regions_) {
        if (r.sharedPool)
            total += r.range.size();
    }
    return total;
}

std::vector<AddrRange>
PhysMap::bootRanges(NodeId node) const
{
    std::vector<AddrRange> out;
    for (const auto &r : regions_) {
        if (!r.sharedPool && r.homeNode == node)
            out.push_back(r.range);
    }
    return out;
}

std::vector<AddrRange>
PhysMap::poolRanges() const
{
    std::vector<AddrRange> out;
    for (const auto &r : regions_) {
        if (r.sharedPool)
            out.push_back(r.range);
    }
    return out;
}

} // namespace stramash
