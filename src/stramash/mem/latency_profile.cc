#include "stramash/mem/latency_profile.hh"

#include "stramash/common/logging.hh"

namespace stramash
{

const char *
coreModelName(CoreModel m)
{
    switch (m) {
      case CoreModel::CortexA72: return "Cortex-A72";
      case CoreModel::ThunderX2: return "ThunderX2";
      case CoreModel::E5_2620: return "E5-2620";
      case CoreModel::XeonGold: return "Xeon Gold";
    }
    panic("unknown CoreModel");
}

const LatencyProfile &
latencyProfile(CoreModel m)
{
    // Paper Table 2. The Cortex-A72 row has no L3 ("*"); we model it
    // as 0 and the hierarchy builder simply omits the level.
    static const LatencyProfile a72{CoreModel::CortexA72,
                                    4, 9, 0, 300, 780, 3.0};
    static const LatencyProfile tx2{CoreModel::ThunderX2,
                                    4, 9, 30, 300, 620, 2.0};
    static const LatencyProfile e5{CoreModel::E5_2620,
                                   4, 12, 38, 300, 640, 2.1};
    static const LatencyProfile gold{CoreModel::XeonGold,
                                     4, 14, 50, 300, 640, 2.1};
    switch (m) {
      case CoreModel::CortexA72: return a72;
      case CoreModel::ThunderX2: return tx2;
      case CoreModel::E5_2620: return e5;
      case CoreModel::XeonGold: return gold;
    }
    panic("unknown CoreModel");
}

} // namespace stramash
