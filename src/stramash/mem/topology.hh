/**
 * @file
 * The machine topology specification: how many kernel nodes the fused
 * machine has, which ISA and core model each runs, how much local DRAM
 * each boots with, and how large the CXL shared pool is.
 *
 * Nothing in the fused-kernel design is inherently pairwise — coherent
 * shared memory scales to many heterogeneous cores, and an ensemble of
 * kernels naturally spans more than two instances. A TopologySpec is
 * the single source of truth every layer builds per-node and per-pair
 * state from: PhysMap generates the physical layout, Machine builds
 * the node set, the messaging layer sizes one ring per ordered pair,
 * and CrashManager sizes its per-observer failure detector.
 *
 * The default (`paperPair`) reproduces the paper's evaluation machine
 * — one x86 node plus one Arm node with the Figure-4 8 GiB layout —
 * bit-identically to the historical hard-wired configuration.
 */

#ifndef STRAMASH_MEM_TOPOLOGY_HH
#define STRAMASH_MEM_TOPOLOGY_HH

#include <cstddef>
#include <vector>

#include "stramash/common/types.hh"
#include "stramash/mem/latency_profile.hh"

namespace stramash
{

/** One kernel node in the fused machine. */
struct TopologyNode
{
    NodeId id;
    IsaType isa;
    CoreModel core;
    unsigned numCores = 1;
    /** Node-local DRAM (boot strip plus high remainder; excludes the
     *  shared pool). */
    Addr dramBytes = 0;
};

/**
 * Whole-machine topology. Immutable intent: build one, validate() it,
 * hand it to SystemConfig/MachineConfig.
 */
struct TopologySpec
{
    MemoryModel memoryModel = MemoryModel::Shared;
    std::vector<TopologyNode> nodes;
    /** CXL shared-pool bytes (Shared model only; must be 0 for the
     *  Separated and FullyShared models, whose high memory is split
     *  between the nodes instead). */
    Addr poolBytes = 0;
    /** Per-node boot-local strip laid out consecutively from address
     *  0 (paper Fig. 4: 1.5 GiB per node). A node with less DRAM than
     *  this gets everything as its boot strip. */
    Addr bootStripBytes = (Addr{3} << 30) / 2;
    /** MMIO hole placed directly after the boot strips (paper:
     *  [3 GiB, 4 GiB) on the two-node machine). */
    Addr mmioHoleBytes = Addr{1} << 30;

    std::size_t nodeCount() const { return nodes.size(); }

    /** The node with @p id, or nullptr. */
    const TopologyNode *nodeById(NodeId id) const;

    /**
     * Structural validation: at least one node, ids are exactly
     * {0..n-1} (dense, unique), every node has DRAM, pool sizing
     * matches the memory model, sizes are page-aligned. Panics with
     * a descriptive message on violation.
     */
    void validate() const;

    /**
     * The paper's evaluation pair: x86 Xeon Gold + Arm ThunderX2,
     * Figure-4 8 GiB layout. Under Separated/FullyShared each node
     * owns 3.5 GiB (1.5 boot + 2 high); under Shared each owns its
     * 1.5 GiB boot strip and the high 4 GiB is the pool.
     */
    static TopologySpec paperPair(MemoryModel model, NodeId x86Node = 0,
                                  NodeId armNode = 1);

    /**
     * An N-node machine alternating x86 (Xeon Gold) and Arm
     * (ThunderX2) nodes: node 0 is x86, node 1 Arm, node 2 x86...
     * Each node gets @p dramPerNode local DRAM (default: the paper
     * boot strip, 1.5 GiB); under the Shared model the pool holds
     * @p poolBytes (default 4 GiB).
     */
    static TopologySpec alternating(std::size_t n, MemoryModel model,
                                    Addr dramPerNode = 0,
                                    Addr poolBytes = 0);
};

} // namespace stramash

#endif // STRAMASH_MEM_TOPOLOGY_HH
