/**
 * @file
 * A set-associative cache with per-line MESI state and LRU
 * replacement. This is the building block of the Stramash-QEMU
 * Cache-plugin model (paper §7.3): purely a tag store, no data —
 * data lives in the fused GuestMemory.
 */

#ifndef STRAMASH_CACHE_CACHE_HH
#define STRAMASH_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "stramash/common/logging.hh"
#include "stramash/common/types.hh"

namespace stramash
{

/** MESI coherence state of a cached line. */
enum class Mesi : std::uint8_t {
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

const char *mesiName(Mesi m);

/**
 * Static shape of one cache. SetAssocCache requires sizeBytes, ways
 * and lineSize to all be powers of two — set indexing is pure
 * mask/shift work, and a non-power-of-two shape would silently alias
 * sets. The constructor validates this loudly.
 */
struct CacheGeometry
{
    Addr sizeBytes;
    unsigned ways;
    Addr lineSize = cacheLineSize;

    Addr
    numSets() const
    {
        return sizeBytes / (lineSize * ways);
    }
};

/** Tag store for one cache level. */
class SetAssocCache
{
  public:
    struct Line
    {
        Addr tag = 0;
        Mesi state = Mesi::Invalid;
        std::uint64_t lru = 0;

        bool valid() const { return state != Mesi::Invalid; }
        bool dirty() const { return state == Mesi::Modified; }
    };

    explicit SetAssocCache(const CacheGeometry &geom);

    const CacheGeometry &geometry() const { return geom_; }

    /** Line-aligned address of the set/tag for @p addr. */
    Addr lineAddrOf(Addr addr) const { return addr & ~(geom_.lineSize - 1); }

    /**
     * Look up a line. On a hit the LRU stamp is refreshed.
     * @return the line, or nullptr on miss.
     */
    Line *probe(Addr addr);

    /** Look up without disturbing LRU (for coherence snoops). */
    const Line *peek(Addr addr) const;
    Line *peekMutable(Addr addr);

    /**
     * Install a line in the given state, evicting the LRU victim of
     * the set if necessary.
     * @return the physical line address of the evicted victim (and
     *         whether it was dirty), if a valid line was displaced.
     */
    struct Victim
    {
        Addr lineAddr;
        bool dirty;
    };
    std::optional<Victim> insert(Addr addr, Mesi state);

    /** Drop a line if present. @return previous state. */
    Mesi invalidate(Addr addr);

    /** True if the line is present in any valid state. */
    bool holds(Addr addr) const { return peek(addr) != nullptr; }

    /** Invalidate everything (e.g. between experiment phases). */
    void flushAll();

    /** Number of valid lines (for occupancy checks in tests). */
    std::size_t validCount() const;

    /** Set count, computed once in the constructor. */
    Addr numSets() const { return numSets_; }

  private:
    CacheGeometry geom_;
    Addr numSets_;
    Addr setMask_;
    unsigned lineShift_;
    std::vector<Line> lines_; // sets * ways, row-major by set
    std::uint64_t tick_ = 0;

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr addrOf(Addr tag, std::size_t set) const;
};

} // namespace stramash

#endif // STRAMASH_CACHE_CACHE_HH
