#include "stramash/cache/hierarchy.hh"

#include "stramash/common/units.hh"

namespace stramash
{

HierarchyGeometry
HierarchyGeometry::paperDefault(Addr l3Size)
{
    HierarchyGeometry g;
    g.l1i = {32_KiB, 8};
    g.l1d = {32_KiB, 8};
    g.l2 = {1_MiB, 16};
    g.l3 = {l3Size, 16};
    return g;
}

CacheHierarchy::CacheHierarchy(NodeId node, const HierarchyGeometry &geom,
                               StatGroup &stats)
    : node_(node),
      l1i_(std::make_unique<SetAssocCache>(geom.l1i)),
      l1d_(std::make_unique<SetAssocCache>(geom.l1d)),
      l2_(std::make_unique<SetAssocCache>(geom.l2)),
      l3_(geom.l3.sizeBytes
              ? std::make_unique<SetAssocCache>(geom.l3)
              : nullptr),
      stats_(stats),
      l1Hits_(stats.counter("l1_hits")),
      l1Accesses_(stats.counter("l1_accesses")),
      l2Hits_(stats.counter("l2_hits")),
      l2Accesses_(stats.counter("l2_accesses")),
      l3Hits_(stats.counter("l3_hits")),
      l3Accesses_(stats.counter("l3_accesses"))
{
}

SetAssocCache *
CacheHierarchy::lastLevel()
{
    if (sharedL3_)
        return sharedL3_;
    if (l3_)
        return l3_.get();
    return l2_.get();
}

const SetAssocCache *
CacheHierarchy::lastLevel() const
{
    if (sharedL3_)
        return sharedL3_;
    if (l3_)
        return l3_.get();
    return l2_.get();
}

namespace
{

/**
 * Install a promoted line into an inner level; a displaced dirty
 * victim is written back into the outer level (its state there
 * becomes Modified).
 */
void
promoteInto(SetAssocCache &inner, SetAssocCache &outer, Addr lineAddr,
            Mesi state)
{
    auto victim = inner.insert(lineAddr, state);
    if (victim && victim->dirty) {
        if (auto *l = outer.peekMutable(victim->lineAddr))
            l->state = Mesi::Modified;
    }
}

} // namespace

HitLevel
CacheHierarchy::lookupFromL2(Addr lineAddr, bool instFetch)
{
    SetAssocCache &l1 = instFetch ? *l1i_ : *l1d_;
    ++l2Accesses_;
    if (auto *line = l2_->probe(lineAddr)) {
        ++l2Hits_;
        promoteInto(l1, *l2_, lineAddr, line->state);
        return HitLevel::L2;
    }
    SetAssocCache *llc = sharedL3_ ? sharedL3_ : l3_.get();
    if (llc) {
        ++l3Accesses_;
        if (auto *line = llc->probe(lineAddr)) {
            ++l3Hits_;
            promoteInto(*l2_, *llc, lineAddr, line->state);
            promoteInto(l1, *l2_, lineAddr, line->state);
            return HitLevel::L3;
        }
    }
    return HitLevel::Memory;
}

Mesi
CacheHierarchy::lineState(Addr lineAddr) const
{
    // Inner levels can hold a more up-to-date (Modified) state than
    // the LLC under our simplified inclusion, so report the
    // "strongest" state across levels.
    Mesi strongest = Mesi::Invalid;
    auto consider = [&](const SetAssocCache *c) {
        if (!c)
            return;
        const auto *l = c->peek(lineAddr);
        if (l && static_cast<int>(l->state) > static_cast<int>(strongest))
            strongest = l->state;
    };
    consider(l1i_.get());
    consider(l1d_.get());
    consider(l2_.get());
    consider(l3_.get());
    // Deliberately not the shared L3: it is not private state.
    return strongest;
}

bool
CacheHierarchy::holds(Addr lineAddr) const
{
    // Inclusion makes the private last level a superset of the inner
    // levels (fills install outside-in, last-level victims
    // back-invalidate the inner copies), so a single probe answers
    // the membership query. This is the query every cross-node snoop
    // asks, so it must not walk all four arrays.
    //
    // With a shared LLC there is no private superset level: the
    // shared L3 is not private state, and L2 victims do not
    // back-invalidate the L1s when the L2 is not the last level — so
    // all three private levels must answer.
    if (sharedL3_)
        return l2_->holds(lineAddr) || l1i_->holds(lineAddr) ||
               l1d_->holds(lineAddr);
    return l3_ ? l3_->holds(lineAddr) : l2_->holds(lineAddr);
}

void
CacheHierarchy::setState(Addr lineAddr, Mesi state)
{
    auto apply = [&](SetAssocCache *c) {
        if (!c)
            return;
        if (auto *l = c->peekMutable(lineAddr))
            l->state = state;
    };
    apply(l1i_.get());
    apply(l1d_.get());
    apply(l2_.get());
    apply(l3_.get());
    apply(sharedL3_);
}

bool
CacheHierarchy::invalidateLine(Addr lineAddr)
{
    bool dirty = false;
    dirty |= l1i_->invalidate(lineAddr) == Mesi::Modified;
    dirty |= l1d_->invalidate(lineAddr) == Mesi::Modified;
    dirty |= l2_->invalidate(lineAddr) == Mesi::Modified;
    if (l3_)
        dirty |= l3_->invalidate(lineAddr) == Mesi::Modified;
    return dirty;
}

bool
CacheHierarchy::downgradeLine(Addr lineAddr)
{
    bool wasModified = false;
    auto apply = [&](SetAssocCache *c) {
        if (!c)
            return;
        if (auto *l = c->peekMutable(lineAddr)) {
            if (l->state == Mesi::Modified)
                wasModified = true;
            if (l->state == Mesi::Modified || l->state == Mesi::Exclusive)
                l->state = Mesi::Shared;
        }
    };
    apply(l1i_.get());
    apply(l1d_.get());
    apply(l2_.get());
    apply(l3_.get());
    return wasModified;
}

void
CacheHierarchy::flushAll()
{
    l1i_->flushAll();
    l1d_->flushAll();
    l2_->flushAll();
    if (l3_)
        l3_->flushAll();
}

} // namespace stramash
