/**
 * @file
 * A sharer-presence snoop filter: a directory answering "which nodes'
 * *private* hierarchies may hold this cache line" in O(1), so
 * CoherenceDomain probes only candidate nodes instead of broadcasting
 * to every hierarchy on each coherence-relevant access.
 *
 * The filter is purely a simulator-performance structure — it changes
 * *who we probe*, never the modelled CXL snoop costs — so enabling it
 * must be timing- and stats-invisible (tests/cache/test_snoop_filter.cc
 * replays identical traces through filtered and broadcast domains).
 *
 * Correctness invariant: the reported sharer set is a *superset* of
 * the nodes actually holding the line. A false positive only costs an
 * extra probe (the prober still checks holds()); a false negative
 * would suppress a required snoop and silently corrupt the
 * simulation.
 *
 * Representation: one saturating 8-bit presence counter per
 * (line-number slot, node), indexed by the line number directly
 * (lineAddr >> 6, masked). This is deliberately *lossy* — lines a
 * multiple of the table size apart share a counter — because the
 * superset invariant absorbs aliasing as conservative false
 * positives. What the lossy form buys over an exact line -> bitmask
 * hash table (the first implementation of this directory) is
 * hot-loop mechanical sympathy:
 *
 *   - identity indexing gives streaming workloads *sequential*
 *     directory traffic the host prefetcher can cover, where a hashed
 *     table turns every lookup into a random DRAM access;
 *   - the footprint is fixed and small (2 MiB per node by default, 64
 *     lines' presence per host cache line), so the directory stays
 *     host-LLC resident instead of growing with every line the
 *     workload has ever touched;
 *   - there is no rehash churn: a counter array never grows, and
 *     fully-removed entries need no tombstone purge.
 *
 * Maintenance contract (what keeps the superset exact rather than
 * merely safe): call addSharer exactly when a line *enters* a node's
 * private hierarchy (a fill, or a promotion out of a shared LLC) and
 * removeSharer only when a line verified to be resident *leaves* it
 * (snoop invalidation, LLC eviction, back-invalidation). Never
 * "repair" a suspected-stale positive: with shared counters an
 * unpaired decrement could zero an aliased line's count — the
 * corrupting false negative. Counters saturate sticky at 255 for the
 * same reason: once the count is no longer exact, only clear() may
 * drop it.
 */

#ifndef STRAMASH_CACHE_SNOOP_FILTER_HH
#define STRAMASH_CACHE_SNOOP_FILTER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "stramash/common/epoch_guard.hh"
#include "stramash/common/logging.hh"
#include "stramash/common/types.hh"

namespace stramash
{

class SnoopFilter
{
  public:
    /** Most nodes the directory can track. */
    static constexpr unsigned maxNodes = 32;

    /**
     * @param slotsPerNode presence counters per node; rounded up to a
     *        power of two. Lines slotsPerNode * 64 bytes apart alias
     *        (conservatively). The default covers 128 MiB of distinct
     *        lines in 2 MiB per node.
     */
    explicit SnoopFilter(std::size_t slotsPerNode = std::size_t{1} << 21);

    /** Bitmask of nodes that may hold @p lineAddr privately. */
    std::uint32_t
    sharers(Addr lineAddr) const
    {
        std::size_t i = index(lineAddr);
        std::uint32_t mask = 0;
        for (const NodeCounts &nc : active_)
            mask |= std::uint32_t{nc.counts[i] != 0} << nc.node;
        return mask;
    }

    /** Record that @p lineAddr entered @p node's private hierarchy. */
    void addSharer(Addr lineAddr, NodeId node);

    /**
     * Record that @p lineAddr left @p node's private hierarchy. Only
     * call for a residency that addSharer recorded (see the
     * maintenance contract above); removing for a node with no
     * recorded presence is a harmless no-op.
     */
    void
    removeSharer(Addr lineAddr, NodeId node)
    {
        guard_.check("snoop filter");
        std::uint8_t *counts =
            node < maxNodes ? byNode_[node] : nullptr;
        if (!counts)
            return;
        std::uint8_t &c = counts[index(lineAddr)];
        if (c != 0 && c != 255) // saturated counters stay sticky
            --c;
    }

    /** Forget everything (e.g. on CoherenceDomain::flushAll). */
    void clear();

    /** Slots with at least one node's presence recorded. */
    std::size_t entryCount() const;

    /** Presence slots per node. */
    std::size_t capacity() const { return slotMask_ + 1; }

    /**
     * Parallel-session guard: the directory is shared machine state,
     * so at most one host lane may mutate it per epoch. Armed and
     * fenced by the coherence domain.
     */
    EpochAccessGuard &epochGuard() { return guard_; }

  private:
    EpochAccessGuard guard_;
    struct NodeCounts
    {
        NodeId node;
        std::uint8_t *counts;
    };

    std::size_t slotMask_;
    /** Registered nodes' counter arrays, in first-use order. */
    std::vector<NodeCounts> active_;
    /** The same arrays indexed by NodeId; null until first use. */
    std::array<std::uint8_t *, maxNodes> byNode_{};
    /** Owns the counter storage. */
    std::vector<std::vector<std::uint8_t>> storage_;

    std::size_t
    index(Addr lineAddr) const
    {
        return static_cast<std::size_t>(lineAddr >> 6) & slotMask_;
    }
};

} // namespace stramash

#endif // STRAMASH_CACHE_SNOOP_FILTER_HH
