/**
 * @file
 * A node's private cache hierarchy: split L1 (I/D), unified L2 and an
 * optional unified L3. Mirrors the extended QEMU Cache plugin of
 * paper §7 ("we have extended the current QEMU Cache plugin to
 * support a 3-level cache and CXL").
 *
 * Inclusion policy: fills install in every level; an L3 (last-level)
 * eviction back-invalidates the inner levels, so the last level is a
 * superset of the inner ones. That makes the last level the single
 * point of truth for cross-node coherence queries.
 */

#ifndef STRAMASH_CACHE_HIERARCHY_HH
#define STRAMASH_CACHE_HIERARCHY_HH

#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "stramash/cache/cache.hh"
#include "stramash/common/stats.hh"
#include "stramash/common/types.hh"

namespace stramash
{

/** Geometry of a whole node hierarchy. */
struct HierarchyGeometry
{
    CacheGeometry l1i;
    CacheGeometry l1d;
    CacheGeometry l2;
    /** sizeBytes == 0 means the node has no private L3. */
    CacheGeometry l3;

    /**
     * The evaluation's default shape: 32 KiB 8-way L1s, 1 MiB 16-way
     * L2, and an L3 of the given size (4 MiB in Fig. 9, 32 MiB in
     * Fig. 10), 16-way.
     */
    static HierarchyGeometry paperDefault(Addr l3Size);
};

/** Where an access was satisfied. */
enum class HitLevel : std::uint8_t {
    L1 = 1,
    L2 = 2,
    L3 = 3,
    Memory = 4,
};

/**
 * One node's private hierarchy. Coherence actions across nodes are
 * orchestrated by CoherenceDomain; the hierarchy only answers
 * queries and applies state changes.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(NodeId node, const HierarchyGeometry &geom,
                   StatGroup &stats);

    NodeId node() const { return node_; }

    /**
     * Probe for a line; refreshes LRU at the level that hits.
     * @return the innermost level holding the line, or Memory.
     */
    HitLevel
    lookup(Addr lineAddr, bool instFetch)
    {
        if (probeL1(lineAddr, instFetch))
            return HitLevel::L1;
        return lookupFromL2(lineAddr, instFetch);
    }

    /**
     * L1-only probe (the hot-loop fast path): tallies the L1 access
     * and hit counters exactly like lookup() and refreshes LRU, but
     * touches no outer level.
     * @return the L1 line on a hit, nullptr on an L1 miss.
     */
    SetAssocCache::Line *
    probeL1(Addr lineAddr, bool instFetch)
    {
        ++l1Accesses_;
        SetAssocCache::Line *l =
            (instFetch ? *l1i_ : *l1d_).probe(lineAddr);
        if (l)
            ++l1Hits_;
        return l;
    }

    /**
     * Continue a lookup that already missed L1 (after probeL1):
     * probes L2 and the LLC, promoting a hit inward.
     */
    HitLevel lookupFromL2(Addr lineAddr, bool instFetch);

    /** State of the line as seen by this node (outermost level). */
    Mesi lineState(Addr lineAddr) const;

    /** True if any level holds the line. */
    bool holds(Addr lineAddr) const;

    /**
     * Install a line in every level in @p state.
     * Evicted victims are reported through @p onEvict (line address,
     * dirty, hadInner) — only last-level victims are reported, since
     * those are the ones leaving the node entirely. @p hadInner tells
     * whether an inner (pre-LLC) level still held the victim when it
     * was evicted: with a *shared* LLC that distinguishes "this
     * node's private copy is gone" from "the line left the shared
     * cache but this node never privately held it", which the
     * coherence directory needs to keep its presence counts paired.
     *
     * @p onEvict is any callable `(Addr, bool, bool)`, a
     * std::function, a function pointer, or nullptr. Taking it as a
     * template parameter keeps the per-fill cost at a direct
     * (inlinable) call — the hot loop fills on every miss, and
     * wrapping its capturing lambda in a std::function would
     * heap-allocate each time.
     */
    template <typename OnEvict>
    void
    fill(Addr lineAddr, Mesi state, bool instFetch, OnEvict &&onEvict)
    {
        auto handleVictim = [&](std::optional<SetAssocCache::Victim> v,
                                bool lastLevelCache) {
            if (!v)
                return;
            if (lastLevelCache) {
                // Maintain inclusion: the victim leaves the node.
                Mesi i1 = l1i_->invalidate(v->lineAddr);
                Mesi i2 = l1d_->invalidate(v->lineAddr);
                Mesi i3 = l2_->invalidate(v->lineAddr);
                bool dirtyInner = i1 == Mesi::Modified ||
                                  i2 == Mesi::Modified ||
                                  i3 == Mesi::Modified;
                bool hadInner = i1 != Mesi::Invalid ||
                                i2 != Mesi::Invalid ||
                                i3 != Mesi::Invalid;
                invokeEvict(onEvict, v->lineAddr,
                            v->dirty || dirtyInner, hadInner);
            }
        };

        // Fill outside-in so inclusion is never violated mid-fill.
        if (sharedL3_) {
            // The shared LLC victim may be held by *both* nodes; the
            // domain's eviction hook handles the other node.
            handleVictim(sharedL3_->insert(lineAddr, state), true);
            l2_->insert(lineAddr, state);
        } else if (l3_) {
            handleVictim(l3_->insert(lineAddr, state), true);
            l2_->insert(lineAddr, state);
        } else {
            handleVictim(l2_->insert(lineAddr, state), true);
        }
        if (instFetch)
            l1i_->insert(lineAddr, state);
        else
            l1d_->insert(lineAddr, state);
    }

    /** Set the line's MESI state at every level holding it. */
    void setState(Addr lineAddr, Mesi state);

    /** Invalidate the line everywhere. @return true if it was dirty. */
    bool invalidateLine(Addr lineAddr);

    /** Downgrade M/E to S (remote read snoop). @return true if was M. */
    bool downgradeLine(Addr lineAddr);

    /** Invalidate the whole hierarchy. */
    void flushAll();

    bool hasL3() const { return l3_ != nullptr; }

    SetAssocCache &l1i() { return *l1i_; }
    SetAssocCache &l1d() { return *l1d_; }
    SetAssocCache &l2() { return *l2_; }
    SetAssocCache *l3() { return l3_.get(); }

    /**
     * Attach a shared last-level cache (FullyShared model). The
     * shared L3 is owned by the CoherenceDomain and shared between
     * hierarchies.
     */
    void attachSharedL3(SetAssocCache *shared) { sharedL3_ = shared; }
    bool usesSharedL3() const { return sharedL3_ != nullptr; }

  private:
    /**
     * Dispatch the eviction report: callables are invoked directly;
     * null-testable ones (std::function, function pointers) are
     * skipped when empty; nullptr means "no observer".
     */
    template <typename F>
    static void
    invokeEvict(F &&f, Addr lineAddr, bool dirty, bool hadInner)
    {
        if constexpr (std::is_same_v<std::decay_t<F>,
                                     std::nullptr_t>) {
            (void)f;
            (void)lineAddr;
            (void)dirty;
            (void)hadInner;
        } else if constexpr (std::is_constructible_v<bool, F &>) {
            if (f)
                std::forward<F>(f)(lineAddr, dirty, hadInner);
        } else {
            std::forward<F>(f)(lineAddr, dirty, hadInner);
        }
    }

    NodeId node_;
    std::unique_ptr<SetAssocCache> l1i_;
    std::unique_ptr<SetAssocCache> l1d_;
    std::unique_ptr<SetAssocCache> l2_;
    std::unique_ptr<SetAssocCache> l3_;
    SetAssocCache *sharedL3_ = nullptr;

    StatGroup &stats_;
    Counter &l1Hits_;
    Counter &l1Accesses_;
    Counter &l2Hits_;
    Counter &l2Accesses_;
    Counter &l3Hits_;
    Counter &l3Accesses_;

    SetAssocCache *lastLevel();
    const SetAssocCache *lastLevel() const;
};

} // namespace stramash

#endif // STRAMASH_CACHE_HIERARCHY_HH
