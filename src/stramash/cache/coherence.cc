#include "stramash/cache/coherence.hh"

#include "stramash/trace/trace.hh"

namespace stramash
{

CoherenceDomain::CoherenceDomain(const PhysMap &map, SnoopCosts snoopCosts,
                                 const CacheGeometry *sharedLlc)
    : map_(map), snoopCosts_(snoopCosts)
{
    if (sharedLlc)
        sharedLlc_ = std::make_unique<SetAssocCache>(*sharedLlc);
}

void
CoherenceDomain::addNode(NodeId node, const HierarchyGeometry &geom,
                         const LatencyProfile &profile)
{
    panic_if(nodes_.count(node), "node ", node, " already registered");
    NodeCtx nc;
    nc.stats = std::make_unique<StatGroup>(
        std::string("cache.node") + std::to_string(node));
    HierarchyGeometry g = geom;
    if (sharedLlc_) {
        // Private L3 is replaced by the shared LLC.
        g.l3.sizeBytes = 0;
    }
    nc.hier = std::make_unique<CacheHierarchy>(node, g, *nc.stats);
    if (sharedLlc_)
        nc.hier->attachSharedL3(sharedLlc_.get());
    nc.profile = profile;
    nc.localMemHits = &nc.stats->counter("local_mem_hits");
    nc.remoteMemHits = &nc.stats->counter("remote_mem_hits");
    nc.remoteSharedMemHits = &nc.stats->counter("remote_shared_mem_hits");
    nc.memAccesses = &nc.stats->counter("mem_accesses");
    nc.snoopInvalidates = &nc.stats->counter("snoop_invalidates");
    nc.snoopDatas = &nc.stats->counter("snoop_datas");
    nc.writebacks = &nc.stats->counter("writebacks");
    nodes_.emplace(node, std::move(nc));
}

CoherenceDomain::NodeCtx &
CoherenceDomain::ctx(NodeId node)
{
    auto it = nodes_.find(node);
    panic_if(it == nodes_.end(), "unknown node ", node);
    return it->second;
}

StatGroup &
CoherenceDomain::nodeStats(NodeId node)
{
    return *ctx(node).stats;
}

CacheHierarchy &
CoherenceDomain::hierarchy(NodeId node)
{
    return *ctx(node).hier;
}

void
CoherenceDomain::flushAll()
{
    for (auto &kv : nodes_)
        kv.second.hier->flushAll();
    if (sharedLlc_)
        sharedLlc_->flushAll();
}

void
CoherenceDomain::evicted(NodeId node, Addr lineAddr, bool dirty)
{
    if (!dirty)
        return;
    ++*ctx(node).writebacks;
    if (tracer_) {
        tracer_->instant(TraceCategory::Coherence, "coh.writeback",
                         node, 0, lineAddr);
    }
    if (hook_)
        hook_(node, lineAddr);
}

Cycles
CoherenceDomain::snoopOthers(NodeId node, AccessType type, Addr lineAddr,
                             AccessResult &res)
{
    Cycles extra = 0;
    NodeCtx &self = ctx(node);
    for (auto &kv : nodes_) {
        if (kv.first == node)
            continue;
        CacheHierarchy &other = *kv.second.hier;
        if (!other.holds(lineAddr))
            continue;
        if (type == AccessType::Store) {
            // Snoop Invalidate: all other holders drop the line
            // (paper §7.3).
            bool dirty = other.invalidateLine(lineAddr);
            evicted(kv.first, lineAddr, dirty);
            extra += snoopCosts_.snoopInvalidate;
            res.snoopInvalidate = true;
            ++*self.snoopInvalidates;
            if (tracer_) {
                tracer_->instant(TraceCategory::Coherence,
                                 "coh.snoop_invalidate", node, 0,
                                 lineAddr, kv.first);
            }
        } else {
            // Read: only costs a snoop if the holder has it dirty
            // (Snoop Data, M/E -> S transition).
            Mesi state = other.lineState(lineAddr);
            if (state == Mesi::Modified || state == Mesi::Exclusive) {
                other.downgradeLine(lineAddr);
                extra += snoopCosts_.snoopData;
                res.snoopData = true;
                ++*self.snoopDatas;
                if (tracer_) {
                    tracer_->instant(TraceCategory::Coherence,
                                     "coh.snoop_data", node, 0,
                                     lineAddr, kv.first);
                }
            }
        }
    }
    return extra;
}

AccessResult
CoherenceDomain::accessLine(NodeId node, AccessType type, Addr addr)
{
    NodeCtx &nc = ctx(node);
    CacheHierarchy &hier = *nc.hier;
    Addr lineAddr = lineBase(addr);
    bool inst = type == AccessType::InstFetch;

    AccessResult res;
    res.level = hier.lookup(lineAddr, inst);

    if (res.level != HitLevel::Memory) {
        res.latency =
            nc.profile.levelLatency(static_cast<int>(res.level));
        if (type == AccessType::Store) {
            Mesi state = hier.lineState(lineAddr);
            if (state != Mesi::Modified && state != Mesi::Exclusive) {
                // Upgrade: invalidate any other holder first.
                res.latency += snoopOthers(node, type, lineAddr, res);
            }
            hier.setState(lineAddr, Mesi::Modified);
        }
        return res;
    }

    // Full miss: coherence first, then memory.
    res.latency += snoopOthers(node, type, lineAddr, res);

    res.memClass = map_.classify(addr, node);
    ++*nc.memAccesses;
    switch (res.memClass) {
      case MemoryClass::Local:
        res.latency += nc.profile.mem;
        ++*nc.localMemHits;
        break;
      case MemoryClass::Remote:
        res.latency += nc.profile.remoteMem;
        ++*nc.remoteMemHits;
        break;
      case MemoryClass::SharedPool:
        res.latency += nc.profile.remoteMem;
        ++*nc.remoteSharedMemHits;
        break;
    }

    // Decide the fill state. A load installs Exclusive when no other
    // node holds the line, Shared otherwise; a store installs
    // Modified (others were invalidated above).
    Mesi fillState = Mesi::Modified;
    if (type != AccessType::Store) {
        bool othersHold = false;
        for (auto &kv : nodes_) {
            if (kv.first != node && kv.second.hier->holds(lineAddr)) {
                othersHold = true;
                break;
            }
        }
        fillState = othersHold ? Mesi::Shared : Mesi::Exclusive;
    }

    hier.fill(lineAddr, fillState, inst, [&](Addr victim, bool dirty) {
        evicted(node, victim, dirty);
        if (sharedLlc_) {
            // A shared-LLC eviction removes the line from every
            // node's private levels to preserve inclusion — a
            // Back-Invalidate Snoop in CXL terms (§7.3), charged to
            // the access that caused the eviction.
            for (auto &kv : nodes_) {
                if (kv.first == node)
                    continue;
                if (!kv.second.hier->holds(victim))
                    continue;
                bool d = kv.second.hier->invalidateLine(victim);
                evicted(kv.first, victim, d);
                res.latency += snoopCosts_.backInvalidate;
                nc.stats->counter("back_invalidates") += 1;
            }
        }
    });
    return res;
}

AccessResult
CoherenceDomain::access(NodeId node, AccessType type, Addr addr,
                        unsigned size)
{
    panic_if(size == 0, "zero-size access");
    AccessResult total;
    Addr first = lineBase(addr);
    Addr last = lineBase(addr + size - 1);
    for (Addr line = first; line <= last; line += cacheLineSize) {
        AccessResult r = accessLine(node, type, line);
        total.latency += r.latency;
        total.level = r.level; // last line's level
        total.memClass = r.memClass;
        total.snoopInvalidate |= r.snoopInvalidate;
        total.snoopData |= r.snoopData;
    }
    return total;
}

} // namespace stramash
