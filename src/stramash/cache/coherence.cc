#include "stramash/cache/coherence.hh"

#include <algorithm>
#include <bit>

#include "stramash/trace/trace.hh"

namespace stramash
{

CoherenceDomain::CoherenceDomain(const PhysMap &map, SnoopCosts snoopCosts,
                                 const CacheGeometry *sharedLlc)
    : map_(map), snoopCosts_(snoopCosts)
{
    if (sharedLlc)
        sharedLlc_ = std::make_unique<SetAssocCache>(*sharedLlc);
}

void
CoherenceDomain::addNode(NodeId node, const HierarchyGeometry &geom,
                         const LatencyProfile &profile)
{
    panic_if(node >= SnoopFilter::maxNodes,
             "coherence domain supports NodeIds below ",
             SnoopFilter::maxNodes, ", got ", node);
    if (node >= nodes_.size())
        nodes_.resize(node + 1);
    panic_if(nodes_[node].registered(), "node ", node,
             " already registered");
    NodeCtx &nc = nodes_[node];
    nc.stats = std::make_unique<StatGroup>(
        std::string("cache.node") + std::to_string(node));
    HierarchyGeometry g = geom;
    if (sharedLlc_) {
        // Private L3 is replaced by the shared LLC.
        g.l3.sizeBytes = 0;
    }
    nc.hier = std::make_unique<CacheHierarchy>(node, g, *nc.stats);
    if (sharedLlc_)
        nc.hier->attachSharedL3(sharedLlc_.get());
    nc.profile = profile;
    nc.localMemHits = &nc.stats->counter("local_mem_hits");
    nc.remoteMemHits = &nc.stats->counter("remote_mem_hits");
    nc.remoteSharedMemHits = &nc.stats->counter("remote_shared_mem_hits");
    nc.memAccesses = &nc.stats->counter("mem_accesses");
    nc.snoopInvalidates = &nc.stats->counter("snoop_invalidates");
    nc.snoopDatas = &nc.stats->counter("snoop_datas");
    nc.writebacks = &nc.stats->counter("writebacks");
    nc.backInvalidates = &nc.stats->counter("back_invalidates");
    nodeIds_.insert(
        std::upper_bound(nodeIds_.begin(), nodeIds_.end(), node),
        node);
    allNodesMask_ |= std::uint32_t{1} << node;
}

StatGroup &
CoherenceDomain::nodeStats(NodeId node)
{
    return *ctx(node).stats;
}

CacheHierarchy &
CoherenceDomain::hierarchy(NodeId node)
{
    return *ctx(node).hier;
}

void
CoherenceDomain::flushAll()
{
    for (NodeId id : nodeIds_)
        nodes_[id].hier->flushAll();
    if (sharedLlc_)
        sharedLlc_->flushAll();
    // Every presence bit went stale-present; drop them all rather
    // than letting the next accesses probe emptied hierarchies.
    filter_.clear();
}

void
CoherenceDomain::evicted(NodeId node, Addr lineAddr, bool dirty)
{
    if (!dirty)
        return;
    ++*ctx(node).writebacks;
    if (tracer_) {
        tracer_->instant(TraceCategory::Coherence, "coh.writeback",
                         node, 0, lineAddr);
    }
    if (hook_)
        hook_(node, lineAddr);
}

Cycles
CoherenceDomain::snoopOthers(NodeId node, AccessType type, Addr lineAddr,
                             AccessResult &res, bool *othersHold)
{
    if (othersHold)
        *othersHold = false;
    std::uint32_t candidates = snoopCandidates(node, lineAddr);
    if (!candidates)
        return 0; // private-data common case: nobody to probe
    Cycles extra = 0;
    NodeCtx &self = nodes_[node];
    while (candidates) {
        auto otherId =
            static_cast<NodeId>(std::countr_zero(candidates));
        candidates &= candidates - 1;
        CacheHierarchy &other = *nodes_[otherId].hier;
        if (!other.holds(lineAddr)) {
            // Directory false positive (an aliased line, or a copy
            // that left silently): just skip. No "repair" — the
            // filter's counters are shared between aliasing lines,
            // so an unpaired decrement could hide a real holder.
            continue;
        }
        // Read snoops never remove the line from the holder (a
        // downgrade keeps it Shared), so for loads "held before the
        // snoop" is exactly "held after" — the fill-state answer.
        if (othersHold)
            *othersHold = true;
        if (type == AccessType::Store) {
            // Snoop Invalidate: all other holders drop the line
            // (paper §7.3).
            bool dirty = other.invalidateLine(lineAddr);
            filter_.removeSharer(lineAddr, otherId);
            evicted(otherId, lineAddr, dirty);
            extra += snoopCosts_.snoopInvalidate;
            res.snoopInvalidate = true;
            ++*self.snoopInvalidates;
            if (tracer_) {
                tracer_->instant(TraceCategory::Coherence,
                                 "coh.snoop_invalidate", node, 0,
                                 lineAddr, otherId);
            }
        } else {
            // Read: only costs a snoop if the holder has it dirty
            // (Snoop Data, M/E -> S transition).
            Mesi state = other.lineState(lineAddr);
            if (state == Mesi::Modified || state == Mesi::Exclusive) {
                other.downgradeLine(lineAddr);
                extra += snoopCosts_.snoopData;
                res.snoopData = true;
                ++*self.snoopDatas;
                if (tracer_) {
                    tracer_->instant(TraceCategory::Coherence,
                                     "coh.snoop_data", node, 0,
                                     lineAddr, otherId);
                }
            }
        }
    }
    return extra;
}

AccessResult
CoherenceDomain::accessLine(NodeId node, AccessType type, Addr addr)
{
    guard_.check("coherence domain");
    NodeCtx &nc = ctx(node);
    CacheHierarchy &hier = *nc.hier;
    Addr lineAddr = lineBase(addr);
    bool inst = type == AccessType::InstFetch;

    // L1-hit fast path: loads and fetches need no coherence action
    // and no memory classification, and a store that already owns
    // the line Modified needs nothing either — return before any
    // cross-node structure is touched.
    if (SetAssocCache::Line *l1 = hier.probeL1(lineAddr, inst)) {
        AccessResult res;
        res.level = HitLevel::L1;
        res.latency = nc.profile.l1;
        if (type == AccessType::Store && l1->state != Mesi::Modified) {
            Mesi state = hier.lineState(lineAddr);
            if (state != Mesi::Modified && state != Mesi::Exclusive) {
                // Upgrade: invalidate any other holder first.
                res.latency += snoopOthers(node, type, lineAddr, res);
            }
            hier.setState(lineAddr, Mesi::Modified);
        }
        return res;
    }

    AccessResult res;
    res.level = hier.lookupFromL2(lineAddr, inst);

    // A shared-LLC hit promotes the line into this node's private
    // levels without a fill() — for the directory that is a private
    // install, so the presence bit must be set here or a later store
    // by another node would miss this copy.
    if (res.level == HitLevel::L3 && hier.usesSharedL3())
        filter_.addSharer(lineAddr, node);

    if (res.level != HitLevel::Memory) {
        res.latency =
            nc.profile.levelLatency(static_cast<int>(res.level));
        if (type == AccessType::Store) {
            Mesi state = hier.lineState(lineAddr);
            if (state != Mesi::Modified && state != Mesi::Exclusive) {
                // Upgrade: invalidate any other holder first.
                res.latency += snoopOthers(node, type, lineAddr, res);
            }
            hier.setState(lineAddr, Mesi::Modified);
        }
        return res;
    }

    // Full miss: coherence first, then memory.
    bool othersHold = false;
    res.latency += snoopOthers(node, type, lineAddr, res, &othersHold);

    res.memClass = map_.classify(addr, node);
    ++*nc.memAccesses;
    switch (res.memClass) {
      case MemoryClass::Local:
        res.latency += nc.profile.mem;
        ++*nc.localMemHits;
        break;
      case MemoryClass::Remote:
        res.latency += nc.profile.remoteMem;
        ++*nc.remoteMemHits;
        break;
      case MemoryClass::SharedPool:
        res.latency += nc.profile.remoteMem;
        ++*nc.remoteSharedMemHits;
        break;
    }

    // Decide the fill state. A load installs Exclusive when no other
    // node holds the line (answered by the snoop round above),
    // Shared otherwise; a store installs Modified (others were
    // invalidated above).
    Mesi fillState = Mesi::Modified;
    if (type != AccessType::Store)
        fillState = othersHold ? Mesi::Shared : Mesi::Exclusive;

    hier.fill(lineAddr, fillState, inst,
              [&](Addr victim, bool dirty, bool hadInner) {
        // With a private LLC the victim always leaves this node; with
        // a shared LLC it only leaves *this* node's private hierarchy
        // if an inner level still held it — decrementing otherwise
        // would unpair the presence count (and could hide an aliased
        // real holder).
        if (!sharedLlc_ || hadInner)
            filter_.removeSharer(victim, node);
        evicted(node, victim, dirty);
        if (sharedLlc_) {
            // A shared-LLC eviction removes the line from every
            // node's private levels to preserve inclusion — a
            // Back-Invalidate Snoop in CXL terms (§7.3), charged to
            // the access that caused the eviction.
            std::uint32_t cands = snoopCandidates(node, victim);
            while (cands) {
                auto otherId =
                    static_cast<NodeId>(std::countr_zero(cands));
                cands &= cands - 1;
                CacheHierarchy &other = *nodes_[otherId].hier;
                if (!other.holds(victim))
                    continue; // false positive: no repair (aliasing)
                bool d = other.invalidateLine(victim);
                filter_.removeSharer(victim, otherId);
                evicted(otherId, victim, d);
                res.latency += snoopCosts_.backInvalidate;
                ++*nc.backInvalidates;
            }
        }
    });
    filter_.addSharer(lineAddr, node);
    return res;
}

AccessResult
CoherenceDomain::access(NodeId node, AccessType type, Addr addr,
                        unsigned size)
{
    panic_if(size == 0, "zero-size access");
    AccessResult total;
    Addr first = lineBase(addr);
    Addr last = lineBase(addr + size - 1);
    for (Addr line = first; line <= last; line += cacheLineSize) {
        AccessResult r = accessLine(node, type, line);
        total.latency += r.latency;
        total.level = r.level; // last line's level
        total.memClass = r.memClass;
        total.snoopInvalidate |= r.snoopInvalidate;
        total.snoopData |= r.snoopData;
    }
    return total;
}

} // namespace stramash
