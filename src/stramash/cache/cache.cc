#include "stramash/cache/cache.hh"

#include <bit>

namespace stramash
{

const char *
mesiName(Mesi m)
{
    switch (m) {
      case Mesi::Invalid: return "I";
      case Mesi::Shared: return "S";
      case Mesi::Exclusive: return "E";
      case Mesi::Modified: return "M";
    }
    panic("unknown Mesi state");
}

SetAssocCache::SetAssocCache(const CacheGeometry &geom) : geom_(geom)
{
    // All the indexing below is mask/shift work cached here once; a
    // non-power-of-two shape would alias sets silently, so fail loud.
    panic_if(!std::has_single_bit(geom_.lineSize),
             "cache line size must be a power of two, got ",
             geom_.lineSize);
    panic_if(geom_.ways == 0 || !std::has_single_bit(geom_.ways),
             "cache way count must be a power of two, got ",
             geom_.ways);
    panic_if(geom_.sizeBytes == 0 ||
                 !std::has_single_bit(geom_.sizeBytes),
             "cache size must be a power of two, got ",
             geom_.sizeBytes);
    panic_if(geom_.sizeBytes < geom_.lineSize * geom_.ways,
             "cache of ", geom_.sizeBytes,
             " bytes cannot hold one set of ", geom_.ways, " ",
             geom_.lineSize, "-byte lines");
    numSets_ = geom_.numSets();
    setMask_ = numSets_ - 1;
    lineShift_ = std::countr_zero(geom_.lineSize);
    lines_.resize(numSets_ * geom_.ways);
}

std::size_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & setMask_;
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

Addr
SetAssocCache::addrOf(Addr tag, std::size_t) const
{
    // The tag keeps the full line number, so the set index is
    // redundant for reconstruction.
    return tag << lineShift_;
}

SetAssocCache::Line *
SetAssocCache::probe(Addr addr)
{
    std::size_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *base = &lines_[set * geom_.ways];
    for (unsigned w = 0; w < geom_.ways; ++w) {
        Line &l = base[w];
        if (l.valid() && l.tag == tag) {
            l.lru = ++tick_;
            return &l;
        }
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::peek(Addr addr) const
{
    std::size_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    const Line *base = &lines_[set * geom_.ways];
    for (unsigned w = 0; w < geom_.ways; ++w) {
        const Line &l = base[w];
        if (l.valid() && l.tag == tag)
            return &l;
    }
    return nullptr;
}

SetAssocCache::Line *
SetAssocCache::peekMutable(Addr addr)
{
    return const_cast<Line *>(
        static_cast<const SetAssocCache *>(this)->peek(addr));
}

std::optional<SetAssocCache::Victim>
SetAssocCache::insert(Addr addr, Mesi state)
{
    panic_if(state == Mesi::Invalid, "inserting an Invalid line");
    std::size_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *base = &lines_[set * geom_.ways];

    // Reuse the line if already present (state change).
    Line *victim = nullptr;
    for (unsigned w = 0; w < geom_.ways; ++w) {
        Line &l = base[w];
        if (l.valid() && l.tag == tag) {
            l.state = state;
            l.lru = ++tick_;
            return std::nullopt;
        }
        if (!l.valid()) {
            if (!victim || victim->valid())
                victim = &l;
        } else if (!victim || (victim->valid() && l.lru < victim->lru)) {
            victim = &l;
        }
    }

    std::optional<Victim> out;
    if (victim->valid())
        out = Victim{addrOf(victim->tag, set), victim->dirty()};
    victim->tag = tag;
    victim->state = state;
    victim->lru = ++tick_;
    return out;
}

Mesi
SetAssocCache::invalidate(Addr addr)
{
    Line *l = peekMutable(addr);
    if (!l)
        return Mesi::Invalid;
    Mesi prev = l->state;
    l->state = Mesi::Invalid;
    return prev;
}

void
SetAssocCache::flushAll()
{
    for (Line &l : lines_)
        l.state = Mesi::Invalid;
}

std::size_t
SetAssocCache::validCount() const
{
    std::size_t n = 0;
    for (const Line &l : lines_) {
        if (l.valid())
            ++n;
    }
    return n;
}

} // namespace stramash
