#include "stramash/cache/ruby_ref.hh"

#include "stramash/common/logging.hh"
#include "stramash/common/units.hh"

namespace stramash
{

RubyGeometry
RubyGeometry::paperDefault(Addr l3Size)
{
    return {32_KiB, 32_KiB, 1_MiB, l3Size, 8, 16, 16};
}

void
RubyRefModel::Level::init(Addr bytes, unsigned w)
{
    ways = w;
    sets = bytes / (cacheLineSize * w);
    panic_if(sets == 0, "ruby level with zero sets");
    table.assign(sets, {});
}

std::size_t
RubyRefModel::Level::setOf(Addr lineAddr) const
{
    return (lineAddr / cacheLineSize) % sets;
}

bool
RubyRefModel::Level::extract(Addr lineAddr, Entry &out)
{
    auto &lst = table[setOf(lineAddr)];
    for (auto it = lst.begin(); it != lst.end(); ++it) {
        if (it->lineAddr == lineAddr) {
            out = *it;
            lst.erase(it);
            return true;
        }
    }
    return false;
}

bool
RubyRefModel::Level::present(Addr lineAddr) const
{
    const auto &lst = table[setOf(lineAddr)];
    for (const auto &e : lst) {
        if (e.lineAddr == lineAddr)
            return true;
    }
    return false;
}

RubyRefModel::Mesi8
RubyRefModel::Level::stateOf(Addr lineAddr) const
{
    const auto &lst = table[setOf(lineAddr)];
    for (const auto &e : lst) {
        if (e.lineAddr == lineAddr)
            return e.state;
    }
    return I8;
}

void
RubyRefModel::Level::setState(Addr lineAddr, Mesi8 s)
{
    auto &lst = table[setOf(lineAddr)];
    for (auto &e : lst) {
        if (e.lineAddr == lineAddr) {
            e.state = s;
            return;
        }
    }
}

void
RubyRefModel::Level::remove(Addr lineAddr)
{
    auto &lst = table[setOf(lineAddr)];
    for (auto it = lst.begin(); it != lst.end(); ++it) {
        if (it->lineAddr == lineAddr) {
            lst.erase(it);
            return;
        }
    }
}

bool
RubyRefModel::Level::insert(const Entry &e, Entry &victim)
{
    auto &lst = table[setOf(e.lineAddr)];
    lst.push_front(e);
    if (lst.size() > ways) {
        victim = lst.back();
        lst.pop_back();
        return true;
    }
    return false;
}

RubyRefModel::RubyRefModel(unsigned numNodes, const RubyGeometry &geom)
    : nodes_(numNodes)
{
    for (auto &nc : nodes_) {
        nc.l1i.init(geom.l1iBytes, geom.l1Ways);
        nc.l1d.init(geom.l1dBytes, geom.l1Ways);
        nc.l2.init(geom.l2Bytes, geom.l2Ways);
        nc.l3.init(geom.l3Bytes, geom.l3Ways);
    }
}

void
RubyRefModel::invalidateAt(NodeId node, Addr lineAddr)
{
    NodeCaches &nc = nodes_[node];
    nc.l1i.remove(lineAddr);
    nc.l1d.remove(lineAddr);
    nc.l2.remove(lineAddr);
    nc.l3.remove(lineAddr);
}

void
RubyRefModel::downgradeAt(NodeId node, Addr lineAddr)
{
    NodeCaches &nc = nodes_[node];
    auto apply = [&](Level &l) {
        Mesi8 s = l.stateOf(lineAddr);
        if (s == E8 || s == M8)
            l.setState(lineAddr, S8);
    };
    apply(nc.l1i);
    apply(nc.l1d);
    apply(nc.l2);
    apply(nc.l3);
}

void
RubyRefModel::installL1(NodeCaches &nc, bool inst, Addr lineAddr,
                        Mesi8 st)
{
    // Exclusive hierarchy: install in L1, spill victims down.
    Entry v1;
    Level &l1 = inst ? nc.l1i : nc.l1d;
    if (l1.insert({lineAddr, st}, v1)) {
        Entry v2;
        if (nc.l2.insert(v1, v2)) {
            Entry v3;
            if (nc.l3.insert(v2, v3)) {
                // v3 leaves the node entirely.
                if (v3.state != I8) {
                    // Drop from the directory.
                    auto it = directory_.find(v3.lineAddr);
                    if (it != directory_.end()) {
                        NodeId self =
                            static_cast<NodeId>(&nc - nodes_.data());
                        it->second.sharers &= ~(1u << self);
                        if (it->second.owner == self)
                            it->second.owner = invalidNode;
                        if (it->second.sharers == 0)
                            directory_.erase(it);
                    }
                }
            }
        }
    }
}

void
RubyRefModel::access(NodeId node, AccessType type, Addr addr)
{
    panic_if(node >= nodes_.size(), "ruby: unknown node");
    NodeCaches &nc = nodes_[node];
    Addr lineAddr = lineBase(addr);
    bool inst = type == AccessType::InstFetch;
    bool store = type == AccessType::Store;

    Level &l1 = inst ? nc.l1i : nc.l1d;
    RubyLevelStats &s1 = nc.stats[inst ? 0 : 1];

    DirEntry &dir = directory_[lineAddr];
    std::uint32_t selfBit = 1u << node;

    auto coherenceOnStore = [&]() {
        // Invalidate every other sharer.
        for (NodeId n = 0; n < nodes_.size(); ++n) {
            if (n != node && (dir.sharers & (1u << n)))
                invalidateAt(n, lineAddr);
        }
        dir.sharers = selfBit;
        dir.owner = node;
    };
    auto coherenceOnLoad = [&]() {
        if (dir.owner != invalidNode && dir.owner != node) {
            downgradeAt(dir.owner, lineAddr);
            dir.owner = invalidNode;
        }
        dir.sharers |= selfBit;
    };

    // L1 lookup.
    ++s1.accesses;
    Entry e;
    if (l1.extract(lineAddr, e)) {
        ++s1.hits;
        if (store) {
            coherenceOnStore();
            e.state = M8;
        } else {
            coherenceOnLoad();
        }
        Entry victim;
        // Cannot overflow: we just extracted this entry from the set.
        l1.insert(e, victim);
        return;
    }

    // L2 lookup.
    ++nc.stats[2].accesses;
    if (nc.l2.extract(lineAddr, e)) {
        ++nc.stats[2].hits;
        if (store) {
            coherenceOnStore();
            e.state = M8;
        } else {
            coherenceOnLoad();
        }
        installL1(nc, inst, e.lineAddr, e.state);
        return;
    }

    // L3 lookup.
    ++nc.stats[3].accesses;
    if (nc.l3.extract(lineAddr, e)) {
        ++nc.stats[3].hits;
        if (store) {
            coherenceOnStore();
            e.state = M8;
        } else {
            coherenceOnLoad();
        }
        installL1(nc, inst, e.lineAddr, e.state);
        return;
    }

    // Miss everywhere: fetch from memory.
    Mesi8 st;
    if (store) {
        coherenceOnStore();
        st = M8;
    } else {
        coherenceOnLoad();
        st = (dir.sharers == selfBit) ? E8 : S8;
    }
    installL1(nc, inst, lineAddr, st);
}

const RubyLevelStats &
RubyRefModel::levelStats(NodeId node, int level) const
{
    panic_if(node >= nodes_.size() || level < 0 || level > 3,
             "ruby: bad stats index");
    return nodes_[node].stats[level];
}

void
RubyRefModel::flushAll()
{
    for (auto &nc : nodes_) {
        for (auto &set : nc.l1i.table)
            set.clear();
        for (auto &set : nc.l1d.table)
            set.clear();
        for (auto &set : nc.l2.table)
            set.clear();
        for (auto &set : nc.l3.table)
            set.clear();
    }
    directory_.clear();
}

} // namespace stramash
