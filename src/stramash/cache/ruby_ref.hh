/**
 * @file
 * An independent reference cache model in the style of gem5 Ruby's
 * MESI_Three_Level protocol, used to validate the primary Cache
 * plugin model (paper Figure 8).
 *
 * This is a deliberately separate implementation — different storage
 * (list-based true-LRU sets), different hierarchy policy (exclusive:
 * lines live in exactly one level; L1 victims spill to L2, L2 victims
 * spill to L3), and a directory for cross-node coherence — so that
 * agreement between the two models is evidence of correctness rather
 * than shared code.
 */

#ifndef STRAMASH_CACHE_RUBY_REF_HH
#define STRAMASH_CACHE_RUBY_REF_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "stramash/common/stats.hh"
#include "stramash/common/types.hh"

namespace stramash
{

/** Per-level hit/access tallies reported by the reference model. */
struct RubyLevelStats
{
    std::uint64_t hits = 0;
    std::uint64_t accesses = 0;

    double
    hitRate() const
    {
        return accesses ? static_cast<double>(hits) / accesses : 0.0;
    }
};

/** Cache shape for the reference model. */
struct RubyGeometry
{
    Addr l1iBytes;
    Addr l1dBytes;
    Addr l2Bytes;
    Addr l3Bytes;
    unsigned l1Ways;
    unsigned l2Ways;
    unsigned l3Ways;

    /** Match HierarchyGeometry::paperDefault. */
    static RubyGeometry paperDefault(Addr l3Size);
};

class RubyRefModel
{
  public:
    RubyRefModel(unsigned numNodes, const RubyGeometry &geom);

    /** Simulate one access; updates hit/access tallies. */
    void access(NodeId node, AccessType type, Addr addr);

    /** Tallies: level 0 = L1I, 1 = L1D, 2 = L2, 3 = L3. */
    const RubyLevelStats &levelStats(NodeId node, int level) const;

    void flushAll();

  private:
    /** Mesi states, kept distinct from the primary model's enum. */
    enum Mesi8 : std::uint8_t { I8, S8, E8, M8 };

    struct Entry
    {
        Addr lineAddr;
        Mesi8 state;
    };

    /** One exclusive cache level: per-set LRU lists. */
    struct Level
    {
        unsigned ways = 0;
        Addr sets = 0;
        // set index -> MRU-ordered entries
        std::vector<std::list<Entry>> table;

        void init(Addr bytes, unsigned w);
        std::size_t setOf(Addr lineAddr) const;
        /** Find and remove the entry if present. */
        bool extract(Addr lineAddr, Entry &out);
        bool present(Addr lineAddr) const;
        Mesi8 stateOf(Addr lineAddr) const;
        void setState(Addr lineAddr, Mesi8 s);
        void remove(Addr lineAddr);
        /** Insert at MRU; returns displaced LRU entry if any. */
        bool insert(const Entry &e, Entry &victim);
    };

    struct NodeCaches
    {
        Level l1i, l1d, l2, l3;
        RubyLevelStats stats[4];
    };

    /** Directory entry tracking which nodes hold a line. */
    struct DirEntry
    {
        std::uint32_t sharers = 0; // bitmask by node
        NodeId owner = invalidNode; // modified owner, if any
    };

    std::vector<NodeCaches> nodes_;
    std::unordered_map<Addr, DirEntry> directory_;

    void invalidateAt(NodeId node, Addr lineAddr);
    void downgradeAt(NodeId node, Addr lineAddr);
    void installL1(NodeCaches &nc, bool inst, Addr lineAddr, Mesi8 st);
};

} // namespace stramash

#endif // STRAMASH_CACHE_RUBY_REF_HH
