#include "stramash/cache/snoop_filter.hh"

#include <algorithm>
#include <bit>

namespace stramash
{

SnoopFilter::SnoopFilter(std::size_t slotsPerNode)
    : slotMask_(std::bit_ceil(std::max<std::size_t>(slotsPerNode, 16)) -
                1)
{
}

void
SnoopFilter::addSharer(Addr lineAddr, NodeId node)
{
    guard_.check("snoop filter");
    panic_if(node >= maxNodes, "snoop filter supports at most ",
             maxNodes, " nodes, got node ", node);
    std::uint8_t *counts = byNode_[node];
    if (!counts) {
        // First presence for this node: allocate its counter array.
        storage_.emplace_back(slotMask_ + 1, 0);
        counts = storage_.back().data();
        byNode_[node] = counts;
        active_.push_back({node, counts});
    }
    std::uint8_t &c = counts[index(lineAddr)];
    if (c != 255) // saturate sticky rather than wrap to "absent"
        ++c;
}

void
SnoopFilter::clear()
{
    for (auto &counts : storage_)
        std::fill(counts.begin(), counts.end(), 0);
}

std::size_t
SnoopFilter::entryCount() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i <= slotMask_; ++i) {
        for (const NodeCounts &nc : active_) {
            if (nc.counts[i] != 0) {
                ++n;
                break;
            }
        }
    }
    return n;
}

} // namespace stramash
