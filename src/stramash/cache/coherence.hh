/**
 * @file
 * The cross-node MESI coherence domain with CXL snoop-cost feedback
 * (paper §7.1, §7.3, §8.1).
 *
 * The domain owns one CacheHierarchy per node plus, in the
 * FullyShared model, a single shared last-level cache. Every memory
 * access in the simulation funnels through CoherenceDomain::access(),
 * which:
 *
 *   1. looks the line up in the accessor's hierarchy,
 *   2. performs any required cross-node coherence action
 *      (Snoop Invalidate on writes, Snoop Data on reads of a line
 *       another node holds dirty), adding the CXL snoop costs,
 *   3. on a miss, charges the local / remote / shared-pool memory
 *      latency from the accessor's LatencyProfile (Table 2), and
 *   4. returns the total latency, which the caller adds to the
 *      node's icount-based timebase.
 *
 * This is the simulator's hottest loop, so it is built as a
 * directory-filtered fast path rather than a broadcast protocol:
 * node contexts live in a dense vector indexed by NodeId, an L1 hit
 * returns without ever consulting another node, and cross-node
 * actions consult a SnoopFilter directory so only nodes whose
 * presence bit is set get their hierarchy probed. Broadcast probing
 * (the pre-directory behaviour) is kept behind setBroadcastMode()
 * as the reference for differential testing; both modes must produce
 * byte-identical AccessResults and statistics.
 */

#ifndef STRAMASH_CACHE_COHERENCE_HH
#define STRAMASH_CACHE_COHERENCE_HH

#include <functional>
#include <memory>
#include <vector>

#include "stramash/cache/hierarchy.hh"
#include "stramash/cache/snoop_filter.hh"
#include "stramash/common/epoch_guard.hh"
#include "stramash/common/stats.hh"
#include "stramash/mem/latency_profile.hh"
#include "stramash/mem/phys_map.hh"

namespace stramash
{

class Tracer;

/** Timing and classification of one line access. */
struct AccessResult
{
    Cycles latency = 0;
    HitLevel level = HitLevel::Memory;
    MemoryClass memClass = MemoryClass::Local;
    bool snoopInvalidate = false;
    bool snoopData = false;
};

/** Fired when a dirty line leaves a node (LLC writeback). */
using WritebackHook = std::function<void(NodeId, Addr)>;

class CoherenceDomain
{
  public:
    /**
     * @param map        the physical memory layout and model
     * @param snoopCosts CXL coherence action costs
     * @param sharedLlc  geometry for a single shared L3 (FullyShared
     *                   model); nullptr for private LLCs
     */
    CoherenceDomain(const PhysMap &map, SnoopCosts snoopCosts,
                    const CacheGeometry *sharedLlc = nullptr);

    /** Register a node's hierarchy and latency table. */
    void addNode(NodeId node, const HierarchyGeometry &geom,
                 const LatencyProfile &profile);

    /** Access possibly spanning cache lines; latencies accumulate. */
    AccessResult access(NodeId node, AccessType type, Addr addr,
                        unsigned size);

    /** Single-line access (addr need not be aligned). */
    AccessResult accessLine(NodeId node, AccessType type, Addr addr);

    /** Per-node statistics (cache hits, memory hits, snoops). */
    StatGroup &nodeStats(NodeId node);

    /**
     * The node's hierarchy, for tests and the Ruby comparison.
     * Callers may *remove* lines directly (the snoop-filter directory
     * stays a conservative superset); installing lines behind the
     * domain's back would break filtering and must go through
     * access()/accessLine().
     */
    CacheHierarchy &hierarchy(NodeId node);

    /** Register a writeback observer (DSM consistency interplay). */
    void setWritebackHook(WritebackHook hook) { hook_ = std::move(hook); }

    /** Attach the machine's tracer: writebacks and cross-node snoop
     *  actions become `coherence`-category events. */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /** Invalidate every cache in the domain. */
    void flushAll();

    const PhysMap &physMap() const { return map_; }
    const SnoopCosts &snoopCosts() const { return snoopCosts_; }

    /** True when one shared LLC serves all nodes. */
    bool hasSharedLlc() const { return sharedLlc_ != nullptr; }

    /**
     * Broadcast mode disables the snoop-filter directory and probes
     * every other node's hierarchy on each coherence action — the
     * pre-directory reference behaviour. Timing, AccessResults and
     * statistics must be identical in both modes; only simulator
     * wall-clock differs (see bench_throughput).
     */
    void setBroadcastMode(bool broadcast) { broadcast_ = broadcast; }
    bool broadcastMode() const { return broadcast_; }

    /** The sharer-presence directory, exposed for invariant tests. */
    const SnoopFilter &snoopFilter() const { return filter_; }

    // ---- parallel host sessions ----

    /**
     * Arm (or disarm) the epoch guards. The whole domain — every
     * hierarchy, the shared LLC, the directory — is cross-node
     * machine state the parallel executor cannot partition, so at
     * most one host lane may drive it per epoch: the first access of
     * an epoch claims the guard, and an access from a second thread
     * before the next fence panics (the conservative "probe deferral
     * at epoch edges" contract — a probe that *would* cross lanes
     * mid-epoch is a lookahead-bound violation, not a queueing
     * opportunity).
     */
    void
    setParallelGuard(bool on)
    {
        guard_.setActive(on);
        filter_.epochGuard().setActive(on);
    }

    /** Barrier point: release the epoch's claim. */
    void
    fenceParallelEpoch()
    {
        guard_.fence();
        filter_.epochGuard().fence();
    }

  private:
    EpochAccessGuard guard_;
    struct NodeCtx
    {
        std::unique_ptr<StatGroup> stats;
        std::unique_ptr<CacheHierarchy> hier;
        LatencyProfile profile;
        Counter *localMemHits = nullptr;
        Counter *remoteMemHits = nullptr;
        Counter *remoteSharedMemHits = nullptr;
        Counter *memAccesses = nullptr;
        Counter *snoopInvalidates = nullptr;
        Counter *snoopDatas = nullptr;
        Counter *writebacks = nullptr;
        Counter *backInvalidates = nullptr;

        bool registered() const { return hier != nullptr; }
    };

    const PhysMap &map_;
    SnoopCosts snoopCosts_;
    std::unique_ptr<SetAssocCache> sharedLlc_;
    /** Dense, indexed by NodeId; unregistered slots have no hier. */
    std::vector<NodeCtx> nodes_;
    /** Registered node ids, ascending (broadcast iteration order). */
    std::vector<NodeId> nodeIds_;
    /** Bit per registered node. */
    std::uint32_t allNodesMask_ = 0;
    SnoopFilter filter_;
    bool broadcast_ = false;
    WritebackHook hook_;
    Tracer *tracer_ = nullptr;

    NodeCtx &
    ctx(NodeId node)
    {
        panic_if(node >= nodes_.size() || !nodes_[node].registered(),
                 "unknown node ", node,
                 " (never registered with addNode)");
        return nodes_[node];
    }

    /** Nodes other than @p node that may hold @p lineAddr. */
    std::uint32_t
    snoopCandidates(NodeId node, Addr lineAddr) const
    {
        std::uint32_t mask = broadcast_
                                 ? allNodesMask_
                                 : filter_.sharers(lineAddr);
        return mask & ~(std::uint32_t{1} << node);
    }

    /**
     * Apply cross-node coherence for @p node's access to a line.
     * When @p othersHold is non-null it is set to whether any other
     * node's hierarchy still holds the line after the snoop round —
     * the load-miss fill-state question (Shared vs Exclusive),
     * answered here so the miss path consults the directory and each
     * candidate hierarchy exactly once.
     */
    Cycles snoopOthers(NodeId node, AccessType type, Addr lineAddr,
                       AccessResult &res, bool *othersHold = nullptr);

    void evicted(NodeId node, Addr lineAddr, bool dirty);
};

} // namespace stramash

#endif // STRAMASH_CACHE_COHERENCE_HH
