/**
 * @file
 * The cross-node MESI coherence domain with CXL snoop-cost feedback
 * (paper §7.1, §7.3, §8.1).
 *
 * The domain owns one CacheHierarchy per node plus, in the
 * FullyShared model, a single shared last-level cache. Every memory
 * access in the simulation funnels through CoherenceDomain::access(),
 * which:
 *
 *   1. looks the line up in the accessor's hierarchy,
 *   2. performs any required cross-node coherence action
 *      (Snoop Invalidate on writes, Snoop Data on reads of a line
 *       another node holds dirty), adding the CXL snoop costs,
 *   3. on a miss, charges the local / remote / shared-pool memory
 *      latency from the accessor's LatencyProfile (Table 2), and
 *   4. returns the total latency, which the caller adds to the
 *      node's icount-based timebase.
 */

#ifndef STRAMASH_CACHE_COHERENCE_HH
#define STRAMASH_CACHE_COHERENCE_HH

#include <functional>
#include <map>
#include <memory>

#include "stramash/cache/hierarchy.hh"
#include "stramash/common/stats.hh"
#include "stramash/mem/latency_profile.hh"
#include "stramash/mem/phys_map.hh"

namespace stramash
{

class Tracer;

/** Timing and classification of one line access. */
struct AccessResult
{
    Cycles latency = 0;
    HitLevel level = HitLevel::Memory;
    MemoryClass memClass = MemoryClass::Local;
    bool snoopInvalidate = false;
    bool snoopData = false;
};

/** Fired when a dirty line leaves a node (LLC writeback). */
using WritebackHook = std::function<void(NodeId, Addr)>;

class CoherenceDomain
{
  public:
    /**
     * @param map        the physical memory layout and model
     * @param snoopCosts CXL coherence action costs
     * @param sharedLlc  geometry for a single shared L3 (FullyShared
     *                   model); nullptr for private LLCs
     */
    CoherenceDomain(const PhysMap &map, SnoopCosts snoopCosts,
                    const CacheGeometry *sharedLlc = nullptr);

    /** Register a node's hierarchy and latency table. */
    void addNode(NodeId node, const HierarchyGeometry &geom,
                 const LatencyProfile &profile);

    /** Access possibly spanning cache lines; latencies accumulate. */
    AccessResult access(NodeId node, AccessType type, Addr addr,
                        unsigned size);

    /** Single-line access (addr need not be aligned). */
    AccessResult accessLine(NodeId node, AccessType type, Addr addr);

    /** Per-node statistics (cache hits, memory hits, snoops). */
    StatGroup &nodeStats(NodeId node);

    /** The node's hierarchy, for tests and the Ruby comparison. */
    CacheHierarchy &hierarchy(NodeId node);

    /** Register a writeback observer (DSM consistency interplay). */
    void setWritebackHook(WritebackHook hook) { hook_ = std::move(hook); }

    /** Attach the machine's tracer: writebacks and cross-node snoop
     *  actions become `coherence`-category events. */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /** Invalidate every cache in the domain. */
    void flushAll();

    const PhysMap &physMap() const { return map_; }
    const SnoopCosts &snoopCosts() const { return snoopCosts_; }

    /** True when one shared LLC serves all nodes. */
    bool hasSharedLlc() const { return sharedLlc_ != nullptr; }

  private:
    struct NodeCtx
    {
        std::unique_ptr<StatGroup> stats;
        std::unique_ptr<CacheHierarchy> hier;
        LatencyProfile profile;
        Counter *localMemHits;
        Counter *remoteMemHits;
        Counter *remoteSharedMemHits;
        Counter *memAccesses;
        Counter *snoopInvalidates;
        Counter *snoopDatas;
        Counter *writebacks;
    };

    const PhysMap &map_;
    SnoopCosts snoopCosts_;
    std::unique_ptr<SetAssocCache> sharedLlc_;
    std::map<NodeId, NodeCtx> nodes_;
    WritebackHook hook_;
    Tracer *tracer_ = nullptr;

    NodeCtx &ctx(NodeId node);

    /** Apply cross-node coherence for @p node's access to a line. */
    Cycles snoopOthers(NodeId node, AccessType type, Addr lineAddr,
                       AccessResult &res);

    void evicted(NodeId node, Addr lineAddr, bool dirty);
};

} // namespace stramash

#endif // STRAMASH_CACHE_COHERENCE_HH
