#include "stramash/fault/crash.hh"

#include <algorithm>

#include "stramash/isa/page_table.hh"

namespace stramash
{

namespace
{

/** Exit status recorded for tasks reaped by crash recovery. */
constexpr int reapExitStatus = 128 + 9; // 128 + SIGKILL

/** Instructions of heartbeat service work on the pinged node. */
constexpr ICount heartbeatServeInst = 200;

/** Popcorn-side cost of one robust-futex list repair step. */
constexpr Cycles robustSweepCycles = 4'000;

/** Cost of re-pointing a reaped/re-homed task's origin record. */
constexpr Cycles rehomeBookkeepingCycles = 2'000;

/** Key of the shared fence word in kernel 0's data region. The CPU
 *  that owns the region may die or fence; the cacheline does not. */
constexpr std::uint64_t fenceWordKey = 0xfe2ce0'00000000ULL;

} // namespace

CrashManager::CrashManager(Machine &machine, MessageLayer &msg,
                           KernelLookup kernels,
                           std::size_t nodeCount, OsDesign design,
                           MigrationPolicy &migration, CrashConfig cfg)
    : machine_(machine),
      msg_(msg),
      kernels_(std::move(kernels)),
      nodeCount_(nodeCount),
      design_(design),
      migration_(migration),
      cfg_(cfg),
      recovery_("recovery"),
      det_(nodeCount, std::vector<PeerState>(nodeCount)),
      dead_(nodeCount, false),
      selfFenced_(nodeCount, false),
      fencedByPartition_(nodeCount, false),
      selfFenceEpoch_(nodeCount, 0)
{
    panic_if(nodeCount_ < 2, "crash recovery needs a survivor");
}

void
CrashManager::installHandlers(KernelInstance &k)
{
    k.registerMsgHandler(
        MsgType::Heartbeat, [this, &k](const Message &m) {
            // Alive-check service: echo the sequence number. The ack
            // is fire-and-forget (rpcId 0), deliberately *not* a
            // response type — see MsgType::HeartbeatAck.
            machine_.retire(k.nodeId(), heartbeatServeInst);
            Message ack;
            ack.type = MsgType::HeartbeatAck;
            ack.from = k.nodeId();
            ack.to = m.from;
            ack.arg0 = m.arg0;
            msg_.send(ack);
        });
    k.registerMsgHandler(MsgType::HeartbeatAck,
                         [this](const Message &m) {
                             // m.to is the observer whose ping this
                             // answers, m.from the pinged peer.
                             PeerState &ps = det_[m.to][m.from];
                             ps.lastAckSeq =
                                 std::max(ps.lastAckSeq, m.arg0);
                         });
}

bool
CrashManager::taskReaped(Pid pid, int *status) const
{
    auto it = exitStatus_.find(pid);
    if (it == exitStatus_.end())
        return false;
    if (status)
        *status = it->second;
    return true;
}

void
CrashManager::killNow(NodeId node)
{
    recovery_.counter("manual_kills") += 1;
    machine_.killNode(node);
}

NodeId
CrashManager::anyLiveNode() const
{
    // Prefer an unfenced survivor: a self-fenced node's detector
    // stands down, so forced convergence would spin on it. It is
    // still the fallback of last resort — declaring an actually-dead
    // peer is allowed even from inside the fence.
    NodeId fenced = invalidNode;
    for (NodeId n = 0; n < nodeCount_; ++n) {
        if (!machine_.nodeAlive(n))
            continue;
        if (!selfFenced_[n])
            return n;
        if (fenced == invalidNode)
            fenced = n;
    }
    if (fenced != invalidNode)
        return fenced;
    panic("crash recovery: every node is dead");
}

void
CrashManager::guardTask(Pid pid)
{
    if (exitStatus_.count(pid))
        return;
    NodeId cur = migration_.currentNode(pid);
    if (machine_.nodeAlive(cur)) {
        // A self-fenced kernel's detector stands down: it has no
        // standing to suspect anyone until its links heal.
        if (!selfFenced_[cur])
            pollFrom(cur);
        return;
    }
    // The kernel hosting this task crashed out from under it. Force
    // the survivor's detector to convergence — the declaration path
    // runs recovery, after which the task is either re-homed (fused)
    // or reaped (Popcorn) and the caller's operation can proceed.
    NodeId obs = anyLiveNode();
    while (!dead_[cur])
        pingRound(obs, cur, true);
}

void
CrashManager::pollFrom(NodeId observer)
{
    for (NodeId peer = 0; peer < nodeCount_; ++peer) {
        if (peer == observer || dead_[peer])
            continue;
        pingRound(observer, peer, false);
    }
}

bool
CrashManager::heartbeatExchange(NodeId observer, NodeId peer)
{
    PeerState &ps = det_[observer][peer];
    const std::uint64_t seq = ++ps.pingSeq;
    Message ping;
    ping.type = MsgType::Heartbeat;
    ping.from = observer;
    ping.to = peer;
    ping.arg0 = seq;
    msg_.send(ping);
    msg_.dispatchPending(peer);     // the peer answers, if it can
    msg_.dispatchPending(observer); // drain the ack

    if (ps.lastAckSeq < seq) {
        // Miss so far: charge the detection timeout, then look again
        // — under a delay-injecting plan a slow ack can land during
        // the wait.
        machine_.stall(observer, cfg_.ackTimeoutCycles);
        msg_.dispatchPending(observer);
    }
    return ps.lastAckSeq >= seq;
}

bool
CrashManager::pingRound(NodeId observer, NodeId peer, bool forced)
{
    PeerState &ps = det_[observer][peer];
    Cycles now = machine_.node(observer).cycles();
    if (!forced && now < ps.nextPingAt)
        return true;
    ps.nextPingAt = now + cfg_.pingIntervalCycles;

    if (heartbeatExchange(observer, peer)) {
        ps.suspicion = 0;
        return true;
    }
    ++ps.suspicion;
    recovery_.counter("heartbeat_misses") += 1;
    machine_.tracer().instant(TraceCategory::Chaos, "crash.suspect",
                              observer, 0, peer, ps.suspicion);
    if (ps.suspicion >= cfg_.suspicionThreshold)
        tryDeclareDead(peer, observer);
    return false;
}

bool
CrashManager::fusedArbitrate(NodeId peer, NodeId suspector)
{
    // One coherent load + store by the suspector — the CAS. The word
    // lives in kernel 0's data region, but ownership is irrelevant:
    // the fabric keeps the line coherent whoever's CPU is fenced.
    Addr w = kernels_(0).dataAddrFor(fenceWordKey);
    kernels_(suspector).remoteAccess(0, AccessType::Load, w, 8);
    recovery_.counter("fused_arbitrations") += 1;
    if (fenceWord_.victim == suspector) {
        // The other side of the split won the word first; our own
        // declaration is void and we are the one being fenced.
        machine_.tracer().instant(TraceCategory::Chaos,
                                  "crash.arbitration_lost", suspector,
                                  0, peer, fenceWord_.epoch);
        return false;
    }
    kernels_(suspector).remoteAccess(0, AccessType::Store, w, 8);
    return true;
}

void
CrashManager::selfFence(NodeId node, NodeId peer)
{
    if (selfFenced_[node] || dead_[node])
        return;
    selfFenced_[node] = true;
    selfFenceEpoch_[node] = fenceWord_.epoch;
    det_[node][peer].suspicion = 0;
    recovery_.counter("self_fences") += 1;
    machine_.tracer().instant(TraceCategory::Chaos, "crash.self_fence",
                              node, 0, peer, fenceWord_.epoch);
}

void
CrashManager::tryDeclareDead(NodeId peer, NodeId suspector)
{
    if (dead_[peer])
        return;
    if (partitionMode()) {
        if (!machine_.nodeAlive(peer)) {
            // The peer is machine-dead (scheduled crash, chaos kill):
            // declaring it is convergence of fact, not split-brain,
            // so no arbitration — and even a self-fenced observer may
            // do it.
            declareDead(peer, suspector);
            return;
        }
        if (selfFenced_[suspector])
            return;
        if (design_ == OsDesign::FusedKernel) {
            // Arbitrate through coherent memory: zero messages.
            if (fusedArbitrate(peer, suspector))
                declareDead(peer, suspector);
            else
                selfFence(suspector, peer);
            return;
        }
        // Popcorn reachable-majority lease. `live` is every node not
        // yet declared dead — including the suspected peer, whose
        // silence is exactly what is in dispute. `reachable` is the
        // suspector's side of the split: itself plus every other live
        // node whose links are not severed (the peer counts too — a
        // suspector that can still reach its peer is not partitioned
        // from it, so the suspicion must stand or fall on the quorum,
        // not on side arithmetic).
        unsigned live = 0;
        NodeId lowestLive = invalidNode;
        for (NodeId n = 0; n < nodeCount_; ++n) {
            if (dead_[n] || !machine_.nodeAlive(n))
                continue;
            ++live;
            if (lowestLive == invalidNode)
                lowestLive = n;
        }
        unsigned reachable = 1;
        bool lowestOnOurSide = suspector == lowestLive;
        std::vector<NodeId> reachableObs;
        for (NodeId obs = 0; obs < nodeCount_; ++obs) {
            if (obs == suspector || dead_[obs] ||
                !machine_.nodeAlive(obs)) {
                continue;
            }
            if (machine_.linkState(suspector, obs) !=
                    LinkState::Severed &&
                machine_.linkState(obs, suspector) !=
                    LinkState::Severed) {
                ++reachable;
                if (obs != peer)
                    reachableObs.push_back(obs);
                if (obs == lowestLive)
                    lowestOnOurSide = true;
            }
        }
        if (reachable * 2 < live ||
            (reachable * 2 == live && !lowestOnOurSide)) {
            // Minority side (ties go to the side holding the lowest
            // live id — the N=2 lease authority): no standing to
            // declare anyone. Freeze instead of split-brain.
            selfFence(suspector, peer);
            return;
        }
        // Majority (or tied authority) side: run the quorum poll, but
        // only over observers this side can actually reach — votes
        // cannot cross the partition. On N=2 there are no voters and
        // the authority's word stands (the lease has expired).
        unsigned voters = 1;
        unsigned deadVotes = 1;
        for (NodeId obs : reachableObs) {
            ++voters;
            recovery_.counter("quorum_probes") += 1;
            if (!heartbeatExchange(obs, peer))
                ++deadVotes;
        }
        if (deadVotes * 2 > voters) {
            declareDead(peer, suspector);
            return;
        }
        det_[suspector][peer].suspicion = 0;
        recovery_.counter("suspicions_outvoted") += 1;
        machine_.tracer().instant(TraceCategory::Chaos,
                                  "crash.outvoted", suspector, 0, peer,
                                  deadVotes);
        return;
    }
    // Quorum poll over the other surviving observers. The suspector
    // already voted dead; each other survivor probes the suspect once
    // on its own channel. On the two-node machine the loop finds no
    // voters and the suspector's word is final (STONITH fallback).
    unsigned voters = 1;
    unsigned deadVotes = 1;
    for (NodeId obs = 0; obs < nodeCount_; ++obs) {
        if (obs == peer || obs == suspector || dead_[obs] ||
            !machine_.nodeAlive(obs)) {
            continue;
        }
        ++voters;
        recovery_.counter("quorum_probes") += 1;
        if (!heartbeatExchange(obs, peer))
            ++deadVotes;
    }
    if (deadVotes * 2 > voters) {
        declareDead(peer, suspector);
        return;
    }
    // Outvoted: the suspect answered a majority of the probes, so the
    // suspector's link (not the peer) is the likely fault. Reset its
    // count and keep the peer alive.
    det_[suspector][peer].suspicion = 0;
    recovery_.counter("suspicions_outvoted") += 1;
    machine_.tracer().instant(TraceCategory::Chaos, "crash.outvoted",
                              suspector, 0, peer, deadVotes);
}

void
CrashManager::forceSuspicion(NodeId observer, NodeId peer)
{
    panic_if(observer == peer, "a node cannot suspect itself");
    det_[observer][peer].suspicion = cfg_.suspicionThreshold;
    recovery_.counter("forced_suspicions") += 1;
    machine_.tracer().instant(TraceCategory::Chaos,
                              "crash.force_suspect", observer, 0, peer,
                              cfg_.suspicionThreshold);
    tryDeclareDead(peer, observer);
}

void
CrashManager::declareDead(NodeId peer, NodeId observer)
{
    if (dead_[peer])
        return;
    // Fence first (STONITH): with two nodes there is no quorum, so a
    // false suspicion must be made true — the peer is killed before
    // its state is redistributed, never after.
    machine_.killNode(peer);
    dead_[peer] = true;
    for (NodeId obs = 0; obs < nodeCount_; ++obs)
        det_[obs][peer].suspicion = 0;
    if (partitionMode()) {
        // Every partition-armed declaration advances the fence epoch
        // — the generation number heal-time reconciliation compares
        // against a fenced node's snapshot. A peer fenced *because of
        // the partition* (its link was down, or it had already frozen
        // itself) auto-rejoins when the pair heals; a genuinely
        // crashed peer does not.
        ++fenceWord_.epoch;
        fenceWord_.victim = peer;
        fenceWord_.fencedBy = observer;
        bool linkDown =
            machine_.linkState(observer, peer) != LinkState::Up ||
            machine_.linkState(peer, observer) != LinkState::Up;
        if (linkDown || selfFenced_[peer])
            fencedByPartition_[peer] = true;
        selfFenced_[peer] = false;
    }
    recovery_.counter("nodes_declared_dead") += 1;
    machine_.tracer().instant(TraceCategory::Chaos,
                              "crash.declare_dead", observer, 0, peer,
                              observer);
    recover(peer, observer);
}

void
CrashManager::recover(NodeId dead, NodeId survivor)
{
    STRAMASH_TRACE_SPAN(machine_.tracer(), TraceCategory::Chaos,
                        "crash.recover", survivor, 0, dead, survivor);

    // 1. Silence the dead node's messaging: drain its inbox (free —
    // its clock is frozen) so stale requests never get served.
    msg_.purgeQueues(dead);

    // 2. Robust-futex sweep: no surviving waiter may hang on a dead
    // node's queue, and no dead waiter may absorb a future wake.
    sweepFutexes(dead, survivor);

    // 3. Orphaned tasks.
    if (design_ == OsDesign::FusedKernel)
        recoverTasksFused(dead, survivor);
    else
        recoverTasksPopcorn(dead, survivor);

    // 4. Global-allocator reclamation — strictly after the frame
    // sweep above, which copies live data out of the dead node's
    // blocks.
    if (gma_) {
        recovery_.counter("gma_blocks_reclaimed") +=
            static_cast<std::int64_t>(gma_->reclaimDeadNode(dead));
    }

    // 5. The migration mailbox lives in one kernel's data region; if
    // that kernel died, drop it — the next migration re-allocates it
    // from a live kernel.
    if (shared_ && shared_->mailboxOwner == dead) {
        shared_->mailbox = 0;
        shared_->mailboxOwner = invalidNode;
        recovery_.counter("mailboxes_rehomed") += 1;
    }

    // 6. Higher-layer state homed on the dead node (the scheduler's
    // run queue) drains through the same recovery pass, charged to
    // the survivor like everything above.
    for (auto &hook : recoveryHooks_) {
        if (hook.second)
            hook.second(dead, survivor);
    }

    recovery_.counter("recoveries") += 1;
}

std::uint64_t
CrashManager::addRecoveryHook(RecoveryHook fn)
{
    panic_if(!fn, "addRecoveryHook(nullptr)");
    std::uint64_t token = nextHookToken_++;
    recoveryHooks_.emplace_back(token, std::move(fn));
    return token;
}

void
CrashManager::removeRecoveryHook(std::uint64_t token)
{
    for (auto it = recoveryHooks_.begin(); it != recoveryHooks_.end();
         ++it) {
        if (it->first == token) {
            recoveryHooks_.erase(it);
            return;
        }
    }
}

void
CrashManager::sweepFutexes(NodeId dead, NodeId survivor)
{
    std::int64_t reaped = 0;
    std::int64_t woken = 0;

    // Dead waiters parked in surviving kernels' tables are reaped so
    // they never absorb a wake meant for a live thread.
    for (NodeId n = 0; n < nodeCount_; ++n) {
        if (n == dead)
            continue;
        reaped += static_cast<std::int64_t>(
            kernels_(n).futexTable().removeWaitersOf(dead));
    }

    // The dead kernel's own table: reap its local waiters, wake each
    // surviving waiter exactly once.
    KernelInstance &ks = kernels_(survivor);
    KernelInstance &kd = kernels_(dead);
    for (auto &[uaddr, w] : kd.futexTable().drainAll()) {
        if (w.node == dead) {
            ++reaped;
            continue;
        }
        if (design_ == OsDesign::FusedKernel) {
            // The dead kernel's futex buckets are plain structures in
            // coherent shared memory — the CPU died, the memory did
            // not. The survivor unlinks the waiter with the same
            // charged bucket walk as the §6.5 fast path.
            Addr bucket = kd.dataAddrFor(uaddr ^ 0xf07e);
            ks.remoteAccess(dead, AccessType::Store, bucket, 8);
            ks.remoteAccess(dead, AccessType::Store, bucket + 64, 16);
            ks.remoteAccess(dead, AccessType::Store, bucket, 8);
        } else {
            // Popcorn: the origin's queues died with it; the
            // survivor re-creates local state, as a robust-futex
            // EOWNERDEAD pass would.
            machine_.stall(survivor, robustSweepCycles);
        }
        if (w.node != survivor)
            machine_.sendIpi(survivor, w.node);
        ++woken;
        machine_.tracer().instant(TraceCategory::Chaos,
                                  "crash.futex_wake", survivor, w.pid,
                                  uaddr, w.node);
    }
    recovery_.counter("futex_waiters_woken") += woken;
    recovery_.counter("futex_waiters_reaped") += reaped;
}

void
CrashManager::adoptTaskFused(Pid pid, NodeId dead, NodeId survivor)
{
    KernelInstance &kd = kernels_(dead);
    Task *tdead = kd.findTask(pid);
    NodeId cur = migration_.currentNode(pid);
    NodeId host = cur == dead ? survivor : cur;
    KernelInstance &kh = kernels_(host);

    Task *t = kh.findTask(pid);
    NodeId origin = t ? t->origin : tdead->origin;

    // Every read of the dead kernel's structures below is an ordinary
    // coherent load: the fused design's recovery superpower.
    auto touch = [&](AccessType type, Addr a) {
        kh.remoteAccess(dead, type, a, 8);
    };

    if (!t) {
        // The surviving kernel never hosted this task; rebuild the
        // record straight out of the dead kernel's memory.
        t = &kh.createTask(pid, origin == dead ? host : origin);
        t->heapBrk = tdead->heapBrk;
    }

    if (tdead) {
        // VMA copy, §6.4-style but lock-free: the tree's owner is
        // dead, so nobody else can be writing it.
        unsigned i = 0;
        tdead->as->vmas().forEach([&](const Vma &v) {
            kh.remoteAccess(dead, AccessType::Load,
                            kd.dataAddrFor((Addr{pid} << 32) ^ i),
                            64);
            ++i;
            if (!t->as->vmas().find(v.start))
                (void)t->as->vmas().insert(v);
        });

        // Frame adoption through the Software Remote Page Table
        // Walker: pages present only in the dead table are re-pointed
        // into the survivor's table — same frames, no copies. Frames
        // that live in the dead node's own memory are dealt with by
        // sweepDeadFrames() afterwards.
        const PteFormat &dfmt = tdead->as->pageTable().format();
        // Tagged entries in the dead table decode in their recorded
        // writer's format (N-node machines can have several foreign
        // writers); unrecorded tags default to the adopter's format.
        const PteFormat *hostFmt = &t->as->pageTable().format();
        TaggedFmtFn taggedFmtOf = [&](Addr va) -> const PteFormat * {
            if (shared_) {
                auto pit = shared_->foreignMapped.find(pid);
                if (pit != shared_->foreignMapped.end()) {
                    auto vit = pit->second.find(pageBase(va));
                    if (vit != pit->second.end()) {
                        return isaDescriptor(
                                   machine_.node(vit->second).isa())
                            .pteFormat;
                    }
                }
            }
            return hostFmt;
        };
        kh.remoteAccess(dead, AccessType::Store,
                        tdead->as->ptlAddr(), 8);
        t->as->vmas().forEach([&](const Vma &v) {
            for (Addr va = v.start; va < v.end; va += pageSize) {
                if (t->as->pageTable().walk(va))
                    continue;
                auto w = walkForeign(
                    machine_.memory(), dfmt,
                    tdead->as->pageTable().rootAddr(), va, touch,
                    taggedFmtOf);
                if (!w)
                    continue;
                (void)t->as->mapPage(
                    va, w->pte.frame,
                    vmaPageAttrs(v, v.prot.writable));
                recovery_.counter("pages_adopted") += 1;
            }
        });
        kh.remoteAccess(dead, AccessType::Store,
                        tdead->as->ptlAddr(), 8);

        // Frames the dead record borrowed from live kernels follow
        // the task; frames it owned die with the kernel (the frame
        // sweep re-copies any that are still mapped).
        for (auto [home, pa] : tdead->borrowedPages) {
            if (home != dead)
                t->borrowedPages.emplace_back(home, pa);
        }
        tdead->borrowedPages.clear();
        tdead->ownedPages.clear();
    }

    if (cur == dead) {
        // Register-state handover out of the dead kernel's memory —
        // the §6.4 mailbox path, minus the notification message
        // (there is nobody left to notify).
        panic_if(!tdead, "task ", pid, " ran on dead node ", dead,
                 " with no record");
        std::size_t wire = migrationStateWireSize();
        for (std::size_t off = 0; off < wire; off += 8) {
            kh.remoteAccess(dead, AccessType::Load,
                            kd.dataAddrFor((Addr{pid} << 16) ^ off),
                            8);
        }
        t->state = tdead->state;
        machine_.stall(host, StramashMigrationPolicy::transformCycles);
        migration_.setCurrentNode(pid, host);
        recovery_.counter("tasks_rehomed") += 1;
        machine_.tracer().instant(TraceCategory::Chaos,
                                  "crash.rehome", host, pid, dead,
                                  host);
    }

    if (origin == dead) {
        t->origin = host;
        if (shared_)
            shared_->foreignMapped.erase(pid);
        machine_.stall(host, rehomeBookkeepingCycles);
        recovery_.counter("origins_rehomed") += 1;
    }
}

void
CrashManager::recoverTasksFused(NodeId dead, NodeId survivor)
{
    KernelInstance &kd = kernels_(dead);

    std::vector<std::pair<Pid, NodeId>> tracked;
    migration_.forEachTask([&](Pid p, NodeId n) {
        tracked.emplace_back(p, n);
    });
    for (auto [pid, cur] : tracked) {
        bool involved = cur == dead || kd.hasTask(pid);
        if (!involved) {
            Task *t = kernels_(cur).findTask(pid);
            involved = t && t->origin == dead;
        }
        if (involved)
            adoptTaskFused(pid, dead, survivor);
    }

    sweepDeadFrames(dead, survivor);

    // Drop the dead kernel's task records last — the sweeps above
    // read through them. Their owned/borrowed page lists were
    // cleared during adoption, so destroyTask only erases records.
    std::vector<Pid> deadPids;
    kd.forEachTask([&](Task &t) { deadPids.push_back(t.pid); });
    for (Pid p : deadPids)
        kd.destroyTask(p);
}

void
CrashManager::sweepDeadFrames(NodeId dead, NodeId survivor)
{
    KernelInstance &kd = kernels_(dead);
    std::int64_t copied = 0;
    for (NodeId n = 0; n < nodeCount_; ++n) {
        if (n == dead)
            continue;
        KernelInstance &k = kernels_(n);
        k.forEachTask([&](Task &t) {
            // Borrowed-frame entries pointing at the dead allocator
            // must go before its blocks return to the pool.
            std::erase_if(t.borrowedPages, [&](const auto &bp) {
                return bp.first == dead;
            });
            t.as->vmas().forEach([&](const Vma &v) {
                for (Addr va = v.start; va < v.end; va += pageSize) {
                    auto w = t.as->pageTable().walk(va);
                    if (!w || !kd.palloc().manages(w->pte.frame))
                        continue;
                    Addr fresh = k.allocUserPage(false);
                    machine_.memory().copy(fresh, w->pte.frame,
                                           pageSize);
                    machine_.streamAccess(n, AccessType::Load,
                                          w->pte.frame, pageSize);
                    machine_.streamAccess(n, AccessType::Store, fresh,
                                          pageSize);
                    (void)t.as->unmapPage(va);
                    (void)t.as->mapPage(
                        va, fresh, vmaPageAttrs(v, v.prot.writable));
                    t.ownedPages.push_back(fresh);
                    ++copied;
                }
            });
        });
    }
    recovery_.counter("pages_copied_from_dead") += copied;
    if (copied) {
        machine_.tracer().instant(
            TraceCategory::Chaos, "crash.frame_sweep", survivor, 0,
            static_cast<std::uint64_t>(copied), dead);
    }
}

void
CrashManager::reapTask(Pid pid, NodeId dead)
{
    exitStatus_[pid] = reapExitStatus;

    // Route borrowed frames home (live homes only) before the
    // records disappear, mirroring System::exit.
    std::vector<std::pair<NodeId, Addr>> borrowed;
    for (NodeId n = 0; n < nodeCount_; ++n) {
        Task *t = kernels_(n).findTask(pid);
        if (!t)
            continue;
        for (auto [home, pa] : t->borrowedPages) {
            if (home != dead && machine_.nodeAlive(home))
                borrowed.emplace_back(home, pa);
        }
        t->borrowedPages.clear();
    }
    for (NodeId n = 0; n < nodeCount_; ++n) {
        KernelInstance &k = kernels_(n);
        if (k.hasTask(pid))
            k.destroyTask(pid);
    }
    for (auto [home, pa] : borrowed)
        kernels_(home).freeUserPage(pa);

    if (dsm_)
        dsm_->forgetTask(pid);
    migration_.forgetTask(pid);
    recovery_.counter("tasks_reaped") += 1;
    machine_.tracer().instant(TraceCategory::Chaos, "crash.reap",
                              dead, pid, static_cast<std::uint64_t>(
                                             reapExitStatus),
                              dead);
}

void
CrashManager::recoverTasksPopcorn(NodeId dead, NodeId survivor)
{
    std::vector<std::pair<Pid, NodeId>> tracked;
    migration_.forEachTask([&](Pid p, NodeId n) {
        tracked.emplace_back(p, n);
    });
    for (auto [pid, cur] : tracked) {
        if (cur == dead) {
            // Shared-nothing: the thread context is unreachable.
            // Crash-stop semantics are honest here — reap with an
            // exit status rather than pretend to resurrect state the
            // survivor cannot read.
            reapTask(pid, dead);
            continue;
        }
        KernelInstance &kc = kernels_(cur);
        Task *t = kc.findTask(pid);
        if (t && t->origin == dead) {
            // The thread survived but its home kernel did not:
            // re-home the origin so future DSM and futex traffic
            // stays local to the survivor.
            t->origin = cur;
            machine_.stall(cur, rehomeBookkeepingCycles);
            recovery_.counter("origins_rehomed") += 1;
        }
        // Stale records on the dead kernel (if any) keep their page
        // lists but lend no frames in the shared-nothing design;
        // they are cleared hook-free when the node rejoins.
    }

    if (dsm_) {
        KernelInstance &kd = kernels_(dead);
        auto r = dsm_->recoverDeadNode(dead, survivor, [&](Addr f) {
            return kd.palloc().manages(f);
        });
        recovery_.counter("dsm_pages_reowned") +=
            static_cast<std::int64_t>(r.reowned);
        recovery_.counter("dsm_pages_lost") +=
            static_cast<std::int64_t>(r.lost);
    }
}

void
CrashManager::rejoin(NodeId node)
{
    panic_if(!dead_[node], "rejoin(", node,
             "): node was never declared dead");
    // The rebooted kernel's clock starts past every survivor's: the
    // cluster kept running while it booted.
    Cycles clock = 0;
    for (NodeId n = 0; n < nodeCount_; ++n) {
        if (machine_.nodeAlive(n))
            clock = std::max(clock, machine_.node(n).cycles());
    }
    clock += cfg_.rebootCycles;
    machine_.reviveNode(node, clock);
    kernels_(node).resetForRejoin();
    dead_[node] = false;
    fencedByPartition_[node] = false;
    selfFenced_[node] = false;
    // Every observer's view of the rebooted node starts over, and so
    // does the rebooted node's view of every peer: a kernel that
    // boots fresh has no memory of pre-crash suspicions, and leaving
    // its old rows in place let a node slandered just before its
    // death resume one miss short of re-declaring a healthy peer.
    for (NodeId obs = 0; obs < nodeCount_; ++obs) {
        det_[obs][node] = PeerState{};
        det_[node][obs] = PeerState{};
    }
    recovery_.counter("rejoins") += 1;
}

void
CrashManager::onLinkChange(NodeId from, NodeId to, LinkState s)
{
    if (s != LinkState::Up)
        return;
    // setLinkState updated the matrix before calling us, so `from ->
    // to` is already Up; reconcile only once both directions are.
    if (machine_.linkState(to, from) == LinkState::Up)
        healPair(from, to);
}

void
CrashManager::healPair(NodeId a, NodeId b)
{
    // Suspicion accumulated across the dead link is stale by
    // construction — the pair can talk again. Full reset: ping
    // sequence and last-ack counters restart together.
    det_[a][b] = PeerState{};
    det_[b][a] = PeerState{};
    for (NodeId n : {a, b}) {
        NodeId other = n == a ? b : a;
        if (selfFenced_[n]) {
            // Epoch comparison decides whose declarations stand: if
            // the cluster declared deaths while this node sat fenced,
            // the survivors' view wins and the fenced node adopts it
            // (it never declared anything itself, so adoption is
            // free).
            if (fenceWord_.epoch > selfFenceEpoch_[n])
                recovery_.counter("epoch_yields") += 1;
            selfFenced_[n] = false;
            for (NodeId obs = 0; obs < nodeCount_; ++obs) {
                det_[obs][n].suspicion = 0;
                det_[n][obs].suspicion = 0;
            }
            recovery_.counter("self_fence_rejoins") += 1;
            machine_.tracer().instant(TraceCategory::Chaos,
                                      "crash.unfence", n, 0, other,
                                      fenceWord_.epoch);
        } else if (dead_[n] && fencedByPartition_[n]) {
            // Fenced by the partition, not by a real crash: the heal
            // is the reboot signal. Hot-plug rejoin with a fresh
            // kernel — unacknowledged work from before the fence is
            // gone, which is exactly the no-acknowledged-loss
            // contract.
            recovery_.counter("heal_rejoins") += 1;
            machine_.tracer().instant(TraceCategory::Chaos,
                                      "crash.heal_rejoin", n, 0, other,
                                      fenceWord_.epoch);
            rejoin(n);
        }
    }
}

} // namespace stramash
