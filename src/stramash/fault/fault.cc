#include "stramash/fault/fault.hh"

#include <algorithm>

namespace stramash
{

FaultPlan
FaultPlan::transientChaos(std::uint64_t seed, double rate,
                          std::uint64_t budget)
{
    FaultPlan p;
    p.seed = seed;
    p.msgDropRate = rate;
    p.msgDupRate = rate;
    p.msgCorruptRate = rate;
    p.msgDelayRate = rate;
    p.ipiDropRate = rate;
    p.memBlockDenyRate = rate;
    p.pageCorruptRate = rate;
    p.maxFaults = budget;
    return p;
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan),
      faults_("faults"),
      retries_("retries"),
      partition_("partition")
{
    panic_if(plan_.msgDropRate < 0 || plan_.msgDropRate > 1 ||
                 plan_.msgDupRate < 0 || plan_.msgDupRate > 1 ||
                 plan_.msgCorruptRate < 0 || plan_.msgCorruptRate > 1 ||
                 plan_.msgDelayRate < 0 || plan_.msgDelayRate > 1 ||
                 plan_.ipiDropRate < 0 || plan_.ipiDropRate > 1 ||
                 plan_.memBlockDenyRate < 0 ||
                 plan_.memBlockDenyRate > 1 ||
                 plan_.pageCorruptRate < 0 ||
                 plan_.pageCorruptRate > 1 || plan_.linkLossRate < 0 ||
                 plan_.linkLossRate > 1,
             "fault rates must be probabilities in [0, 1]");
    for (const LinkEvent &ev : plan_.linkSchedule) {
        panic_if(ev.from == ev.to || ev.from == invalidNode ||
                     ev.to == invalidNode,
                 "link schedule: a link joins two distinct nodes");
    }
    linkFired_.assign(plan_.linkSchedule.size(), false);
    rngs_.reserve(siteCount);
    for (unsigned s = 0; s < siteCount; ++s)
        rngs_.emplace_back(plan_.seed, s);
}

bool
FaultInjector::fire(Site site, double rate, const char *name,
                    NodeId node, std::uint64_t arg0, std::uint64_t arg1)
{
    if (rate <= 0 || exhausted())
        return false;
    if (!rngs_[site].chance(rate))
        return false;
    ++injected_;
    faults_.counter("injected") += 1;
    faults_.counter(name) += 1;
    if (tracer_) {
        tracer_->instant(TraceCategory::Chaos, name, node, 0, arg0,
                         arg1);
    }
    return true;
}

bool
FaultInjector::shouldDropMessage(NodeId from, NodeId to)
{
    return fire(SiteMsgDrop, plan_.msgDropRate, "msg_drop", from, from,
                to);
}

bool
FaultInjector::shouldDuplicateMessage(NodeId from, NodeId to)
{
    return fire(SiteMsgDup, plan_.msgDupRate, "msg_dup", from, from,
                to);
}

bool
FaultInjector::shouldCorruptPayload(NodeId from, NodeId to,
                                    bool pagePayload)
{
    if (pagePayload) {
        double rate =
            std::max(plan_.msgCorruptRate, plan_.pageCorruptRate);
        return fire(SitePageCorrupt, rate, "page_corrupt", from, from,
                    to);
    }
    return fire(SiteMsgCorrupt, plan_.msgCorruptRate, "msg_corrupt",
                from, from, to);
}

Cycles
FaultInjector::messageDelayCycles(NodeId from, NodeId to)
{
    if (!fire(SiteMsgDelay, plan_.msgDelayRate, "msg_delay", from,
              from, to)) {
        return 0;
    }
    return plan_.msgDelayCycles;
}

bool
FaultInjector::shouldDropIpi(NodeId from, NodeId to)
{
    return fire(SiteIpi, plan_.ipiDropRate, "ipi_drop", from, from,
                to);
}

bool
FaultInjector::shouldDenyMemBlock(NodeId donor)
{
    return fire(SiteMemBlock, plan_.memBlockDenyRate, "mem_block_deny",
                donor, donor, 0);
}

bool
FaultInjector::shouldDropOnLossyLink(NodeId from, NodeId to)
{
    // Not budget-exempt: a lossy link is a transient-style site, so a
    // bounded plan still converges once the budget is spent.
    return fire(SiteLinkLoss, plan_.linkLossRate, "link_loss", from,
                from, to);
}

const LinkEvent *
FaultInjector::pollLinkEvent(
    const std::function<Cycles(NodeId)> &endpointClock)
{
    if (!linkEventsArmed())
        return nullptr;
    for (std::size_t i = 0; i < plan_.linkSchedule.size(); ++i) {
        if (linkFired_[i])
            continue;
        const LinkEvent &ev = plan_.linkSchedule[i];
        Cycles now = std::max(endpointClock(ev.from),
                              endpointClock(ev.to));
        if (now < ev.atCycle)
            continue;
        // Scheduled, permanent-until-healed: bypasses maxFaults like
        // the crash site (but still counts toward injected()).
        linkFired_[i] = true;
        ++linkEventsFired_;
        ++injected_;
        faults_.counter("injected") += 1;
        faults_.counter("link_event") += 1;
        return &ev;
    }
    return nullptr;
}

bool
FaultInjector::shouldCrashNode(NodeId nid, Cycles now)
{
    if (!crashArmed() || nid != plan_.crashNode ||
        now < plan_.crashAtCycle) {
        return false;
    }
    crashFired_ = true;
    ++injected_;
    faults_.counter("injected") += 1;
    faults_.counter("crash.node_killed") += 1;
    if (tracer_) {
        tracer_->instant(TraceCategory::Chaos, "crash.node_killed",
                         nid, 0, nid, now);
    }
    return true;
}

void
FaultInjector::corrupt(std::vector<std::uint8_t> &payload,
                       std::uint64_t &arg0)
{
    Rng &rng = rngs_[SiteCorruptBytes];
    if (payload.empty()) {
        arg0 ^= std::uint64_t{1} << rng.below(64);
        return;
    }
    std::size_t at = static_cast<std::size_t>(
        rng.below64(payload.size()));
    // Flipping a whole byte guarantees the stored value changes.
    payload[at] ^= 0xff;
}

} // namespace stramash
