/**
 * @file
 * Deterministic, seed-driven fault injection (the `stramash/fault`
 * subsystem).
 *
 * A FaultPlan names the sites and rates at which the simulated
 * platform misbehaves: message drop / duplication / delivery delay /
 * payload corruption in the transport, cross-ISA IPI loss, denied
 * global-allocator block negotiations, and page-content corruption on
 * the DSM path. A FaultInjector executes the plan with one private
 * PCG32 stream per site, so adding faults at one site never perturbs
 * the draw sequence of another and every run is reproducible
 * bit-for-bit from (plan, seed).
 *
 * Determinism contract:
 *
 *  - Each site draws from its own Rng(seed, site) stream, in the
 *    order the simulation reaches the site. Same plan + same workload
 *    => same faults, every run.
 *  - `maxFaults` is a global budget. Once spent, every site reports
 *    "no fault" forever — which makes any bounded plan *transient* by
 *    construction: the system must converge to the fault-free end
 *    state after the budget is exhausted.
 *  - A site with rate 0 never draws, so enabling one site leaves the
 *    others' streams untouched.
 *
 * When no plan is attached, the hot paths see a null FaultInjector
 * pointer: one predictable branch, nothing else.
 */

#ifndef STRAMASH_FAULT_FAULT_HH
#define STRAMASH_FAULT_FAULT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "stramash/common/rng.hh"
#include "stramash/common/stats.hh"
#include "stramash/trace/trace.hh"

namespace stramash
{

/**
 * Health of one *directed* message link. A network partition is just
 * a set of Severed links; the coherent memory fabric of the fused
 * design is deliberately NOT subject to link state — that asymmetry
 * (messages cut, cache coherence intact) is the paper's arbitration
 * story.
 */
enum class LinkState : std::uint8_t {
    Up = 0,
    /** Messages and IPIs vanish silently; the sender cannot tell. */
    Severed,
    /** Each message survives a per-link Bernoulli draw
     *  (FaultPlan::linkLossRate, its own PCG32 stream). */
    Lossy,
    /** Messages park in flight and deliver only once the receiver's
     *  clock has advanced FaultPlan::linkDelayCycles past the send —
     *  a *sustained* delay, unlike the budget-bounded SiteMsgDelay. */
    Delayed,
};

inline const char *
linkStateName(LinkState s)
{
    switch (s) {
      case LinkState::Up: return "up";
      case LinkState::Severed: return "severed";
      case LinkState::Lossy: return "lossy";
      case LinkState::Delayed: return "delayed";
    }
    panic("unknown LinkState");
}

/** One scheduled link transition, fired like crashAtCycle. */
struct LinkEvent
{
    NodeId from = invalidNode;
    NodeId to = invalidNode;
    LinkState state = LinkState::Up;
    /** Fires when max(clock(from), clock(to)) reaches this — the max
     *  so a heal scheduled against a fenced (frozen-clock) endpoint
     *  still fires off the survivor's clock. */
    Cycles atCycle = 0;
};

/** What to break, how often, and for how long. */
struct FaultPlan
{
    /** Master seed; every site stream derives from it. */
    std::uint64_t seed = 1;

    // ---- transport sites ----
    /** Probability a sent message vanishes before the wire. */
    double msgDropRate = 0.0;
    /** Probability a sent message is delivered twice. */
    double msgDupRate = 0.0;
    /** Probability a payload byte (or arg word) is flipped. */
    double msgCorruptRate = 0.0;
    /** Probability delivery is delayed by msgDelayCycles. */
    double msgDelayRate = 0.0;
    /** Receiver-side delivery delay for delayed messages. */
    Cycles msgDelayCycles = 50000;

    // ---- platform sites ----
    /** Probability a cross-ISA IPI is lost in delivery. */
    double ipiDropRate = 0.0;
    /** Probability the donor denies a MemBlockRequest. */
    double memBlockDenyRate = 0.0;
    /** Extra corruption rate for page-carrying payloads
     *  (PageResponse / ProcessPage); max()ed with msgCorruptRate. */
    double pageCorruptRate = 0.0;

    /** Total faults the plan may inject before going quiet. A
     *  bounded budget makes the plan transient by construction. */
    std::uint64_t maxFaults = UINT64_MAX;

    // ---- crash-stop site ----
    /** Kill this kernel node outright (invalidNode = never). Unlike
     *  the transient sites above this is a *scheduled* fault: it
     *  fires exactly once, at a chosen simulated cycle, and is not
     *  subject to maxFaults (a crash is not transient). */
    NodeId crashNode = invalidNode;
    /** Node clock reading at (or after) which the crash fires. */
    Cycles crashAtCycle = 0;

    // ---- link-fault sites ----
    /** Scheduled link transitions, fired in order like crashAtCycle.
     *  Like the crash site these are *scheduled* faults: exempt from
     *  maxFaults and excluded from any(). */
    std::vector<LinkEvent> linkSchedule;
    /** Per-message drop probability while a link is Lossy (its own
     *  PCG32 stream, SiteLinkLoss). */
    double linkLossRate = 0.25;
    /** Park time for messages crossing a Delayed link; chosen above
     *  RpcPolicy::responseTimeoutCycles so a sustained delay looks
     *  exactly like death to the retry machinery. */
    Cycles linkDelayCycles = 300000;

    /** Schedule one directed link transition. */
    FaultPlan &
    linkEventAt(NodeId from, NodeId to, LinkState s, Cycles at)
    {
        linkSchedule.push_back(LinkEvent{from, to, s, at});
        return *this;
    }

    /** Sever both directions of a<->b at @p at (a partition edge). */
    FaultPlan &
    severLinkAt(NodeId a, NodeId b, Cycles at)
    {
        linkEventAt(a, b, LinkState::Severed, at);
        return linkEventAt(b, a, LinkState::Severed, at);
    }

    /** Restore both directions of a<->b at @p at. */
    FaultPlan &
    healLinkAt(NodeId a, NodeId b, Cycles at)
    {
        linkEventAt(a, b, LinkState::Up, at);
        return linkEventAt(b, a, LinkState::Up, at);
    }

    /** True when the plan schedules any link transition. */
    bool linkFaultsPlanned() const { return !linkSchedule.empty(); }

    /** True when every scheduled transition is Severed/Up. Lossy and
     *  Delayed draw rng / park messages in arrival order, so only
     *  pure sever/heal schedules are legal multi-threaded. */
    bool
    linkScheduleParallelSafe() const
    {
        for (const LinkEvent &ev : linkSchedule) {
            if (ev.state == LinkState::Lossy ||
                ev.state == LinkState::Delayed) {
                return false;
            }
        }
        return true;
    }

    /** True when the plan schedules a crash-stop failure. */
    bool crashPlanned() const { return crashNode != invalidNode; }

    /** True when any site can fire. */
    bool
    any() const
    {
        return msgDropRate > 0 || msgDupRate > 0 ||
               msgCorruptRate > 0 || msgDelayRate > 0 ||
               ipiDropRate > 0 || memBlockDenyRate > 0 ||
               pageCorruptRate > 0;
    }

    /** Every site active at @p rate, with a fault budget — the chaos
     *  harness's standard transient plan. */
    static FaultPlan transientChaos(std::uint64_t seed,
                                    double rate = 0.05,
                                    std::uint64_t budget = 48);
};

/**
 * Executes a FaultPlan. Owned by sim::Machine; every layer that hosts
 * an injection site asks it for decisions through `machine().
 * faultInjector()` (null when no plan is attached).
 *
 * Also owns the `faults.*` and `retries.*` stat groups: retries can
 * only happen while an injector is attached, so the recovery
 * machinery's counters live next to the faults that caused them.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Attach the machine tracer (events land in TraceCategory::Chaos). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    const FaultPlan &plan() const { return plan_; }

    // ---- decision points (one per named site) ----

    bool shouldDropMessage(NodeId from, NodeId to);
    bool shouldDuplicateMessage(NodeId from, NodeId to);
    /** @p pagePayload selects the DSM page-corruption site. */
    bool shouldCorruptPayload(NodeId from, NodeId to, bool pagePayload);
    /** 0 = deliver on time. */
    Cycles messageDelayCycles(NodeId from, NodeId to);
    bool shouldDropIpi(NodeId from, NodeId to);
    bool shouldDenyMemBlock(NodeId donor);
    /** Lossy-link site: drop this message crossing a Lossy link? */
    bool shouldDropOnLossyLink(NodeId from, NodeId to);

    /**
     * Crash-stop site. The machine polls this after every clock
     * advance of @p nid; it fires exactly once, when the scheduled
     * node's clock reaches the scheduled cycle. Bypasses the
     * maxFaults budget — a crash is permanent, not transient.
     */
    bool shouldCrashNode(NodeId nid, Cycles now);

    /** True while a scheduled crash has not fired yet — lets the
     *  machine's per-access poll stay one predictable branch. */
    bool
    crashArmed() const
    {
        return plan_.crashPlanned() && !crashFired_;
    }

    /** True while scheduled link transitions remain unfired. */
    bool
    linkEventsArmed() const
    {
        return linkEventsFired_ < plan_.linkSchedule.size();
    }

    /**
     * Scheduled link site. @return the next unfired schedule entry
     * whose deadline has passed per @p endpointClock (called with the
     * event's from and to; the event fires off the *max* of the two,
     * so a heal scheduled against a frozen-clock endpoint still
     * fires), or nullptr when none is due. Marks the entry fired and
     * counts it; the caller (Machine) applies the state change.
     * Bypasses maxFaults exactly like the crash site.
     */
    const LinkEvent *
    pollLinkEvent(const std::function<Cycles(NodeId)> &endpointClock);

    /**
     * Deterministically damage a message: flip one payload byte, or
     * one bit of @p arg0 when the payload is empty.
     */
    void corrupt(std::vector<std::uint8_t> &payload,
                 std::uint64_t &arg0);

    /** Faults injected so far (every site combined). */
    std::uint64_t injected() const { return injected_; }
    /** True once the budget is spent: the plan has gone quiet. */
    bool exhausted() const { return injected_ >= plan_.maxFaults; }

    StatGroup &faults() { return faults_; }
    StatGroup &retries() { return retries_; }
    /** Link/partition machinery counters (severs, heals, swallowed
     *  IPIs, arbitration outcomes, self-fences). */
    StatGroup &partition() { return partition_; }

  private:
    /** Site index doubles as the per-site Rng stream selector. */
    enum Site : unsigned {
        SiteMsgDrop = 0,
        SiteMsgDup,
        SiteMsgCorrupt,
        SiteMsgDelay,
        SiteIpi,
        SiteMemBlock,
        SitePageCorrupt,
        SiteCorruptBytes,
        /** Appended (not inserted) so the historical sites keep their
         *  stream selectors and seeded replays stay bit-identical. */
        SiteLinkLoss,
        siteCount,
    };

    /** Draw at @p site; on a hit, spend budget, count and trace. */
    bool fire(Site site, double rate, const char *name, NodeId node,
              std::uint64_t arg0, std::uint64_t arg1);

    FaultPlan plan_;
    std::vector<Rng> rngs_;
    std::uint64_t injected_ = 0;
    bool crashFired_ = false;
    /** Per-entry fired flags for the link schedule. */
    std::vector<bool> linkFired_;
    std::size_t linkEventsFired_ = 0;
    StatGroup faults_;
    StatGroup retries_;
    StatGroup partition_;
    Tracer *tracer_ = nullptr;
};

} // namespace stramash

#endif // STRAMASH_FAULT_FAULT_HH
