/**
 * @file
 * Crash-stop kernel-node failure, failure detection, and recovery.
 *
 * A Stramash machine is one chip with several kernels on it; a kernel
 * node can crash-stop (firmware fault, watchdog reset, deliberate
 * power-gating) while the *memory system keeps running* — the fabric,
 * the LLCs of the surviving nodes, and DRAM stay coherent. That
 * asymmetry is the whole point of this subsystem: in the fused design
 * the survivor can read the dead kernel's structures (task records,
 * VMA trees, page tables, futex buckets) directly out of shared
 * memory and *re-home* everything; in the shared-nothing Popcorn
 * design the dead node's state is simply gone and the survivor can
 * only reap what lived there and re-own what it holds copies of.
 *
 * Three pieces:
 *
 *  - failure detection: a heartbeat protocol layered on the ordinary
 *    message transport. Each user-level operation gives the hosting
 *    kernel a chance to ping its peers (the simulator is synchronous,
 *    so the detector is driven from the operation stream rather than
 *    a timer tick). An unanswered ping charges the detection timeout
 *    and raises suspicion; enough consecutive misses and the observer
 *    moves to declare the peer dead. On a machine with three or more
 *    nodes the declaration first runs a *quorum poll*: every other
 *    surviving node probes the suspect once, and only a strict
 *    majority of dead votes (suspector included) lets the
 *    declaration proceed — a single observer with a bad link is
 *    outvoted and the suspect survives. With only two nodes there is
 *    nobody to ask, so the poll degenerates to the survivor's word
 *    being final; either way declaration *fences* the peer (STONITH):
 *    even a false suspicion is made true by killing the node before
 *    its state is redistributed.
 *
 *  - recovery: purge the dead node's message queues, sweep its futex
 *    waiters (robust-futex semantics: every surviving waiter woken
 *    exactly once, every dead waiter reaped), re-home or reap its
 *    tasks, return its global-allocator blocks to the pool, and
 *    re-own the DSM pages it owned.
 *
 *  - rejoin: the existing memory hot-plug flow in reverse. The node
 *    reboots with its firmware-map memory, a fresh kernel state, and
 *    a clock ahead of every survivor's.
 *
 *  - partition arbitration (armed only when the fault plan schedules
 *    link events — see Machine::partitionArmed): a severed link makes
 *    both sides suspect each other, and naive STONITH would let both
 *    declare and "kill" a healthy peer. The fused design arbitrates
 *    through the one thing a partition cannot cut — coherent memory:
 *    a charged CAS on a shared *fence word* decides, with zero
 *    messages, which side's declaration stands; the loser self-fences
 *    into a frozen degraded mode (sheds new work, preserves state).
 *    The shared-nothing Popcorn design cannot do that, so it falls
 *    back to a reachable-majority lease: a suspector that can reach
 *    at most half of the live nodes self-fences instead of declaring
 *    (ties go to the side holding the lowest live node id — the N=2
 *    lease authority). Healing a link runs reconciliation: fence
 *    epochs decide whose declarations stand, self-fenced nodes
 *    resume in place, and partition-fenced dead nodes auto-rejoin
 *    through the hot-plug flow.
 *
 * When no crash is planned and the detector is disabled the System
 * never constructs a CrashManager, so the hot paths are untouched —
 * zero overhead, bit-identical behaviour. Likewise, with no link
 * schedule the arbitration layer never runs and the historical
 * quorum/STONITH paths are bit-identical.
 */

#ifndef STRAMASH_FAULT_CRASH_HH
#define STRAMASH_FAULT_CRASH_HH

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "stramash/dsm/dsm_engine.hh"
#include "stramash/fused/global_alloc.hh"
#include "stramash/fused/stramash.hh"
#include "stramash/kernel/kernel.hh"
#include "stramash/kernel/policy.hh"

namespace stramash
{

/** Failure-detector tuning. */
struct CrashConfig
{
    /**
     * Construct the detector even without a planned crash (manual
     * kills via killNow / System::killNode still recover). When
     * false, a CrashManager is only built if the fault plan
     * schedules a crash.
     */
    bool enabled = false;
    /** Minimum cycles between heartbeat pings to one peer. */
    Cycles pingIntervalCycles = 250'000;
    /** Cycles the observer waits for an ack before counting a miss. */
    Cycles ackTimeoutCycles = 60'000;
    /** Consecutive misses before the peer is declared dead. */
    unsigned suspicionThreshold = 3;
    /** Boot time modelled for a rejoining node. */
    Cycles rebootCycles = 2'000'000;
};

/**
 * The crash-stop failure detector and recovery coordinator.
 *
 * Owned by the System when (and only when) a crash is planned or the
 * detector is explicitly enabled. All recovery work is charged to
 * the surviving node's clock; the dead node's clock is frozen at the
 * instant of death.
 */
class CrashManager
{
  public:
    CrashManager(Machine &machine, MessageLayer &msg,
                 KernelLookup kernels, std::size_t nodeCount,
                 OsDesign design, MigrationPolicy &migration,
                 CrashConfig cfg = {});

    /** Optional subsystem hooks (design-dependent). */
    void setDsm(DsmEngine *dsm) { dsm_ = dsm; }
    void setGma(GlobalMemoryAllocator *gma) { gma_ = gma; }
    void setStramashShared(StramashShared *s) { shared_ = s; }

    /** Register the heartbeat request/ack handlers on a kernel. */
    void installHandlers(KernelInstance &k);

    /**
     * The per-operation guard, called before every user-level
     * operation on @p pid. Runs the heartbeat detector from the
     * task's kernel; if that kernel itself has crashed, forces
     * detection from a survivor and recovers before returning, so
     * the caller sees the task already re-homed (fused) or reaped
     * (Popcorn).
     */
    void guardTask(Pid pid);

    /** True once @p node has been declared dead (and not rejoined). */
    bool
    isDeclaredDead(NodeId node) const
    {
        return dead_[node];
    }

    /**
     * True if @p pid was reaped by crash recovery; the exit status
     * (128 + SIGKILL) is written through @p status when given.
     */
    bool taskReaped(Pid pid, int *status = nullptr) const;

    /**
     * Kill a node immediately (test / chaos API). Detection and
     * recovery still run through the normal heartbeat path on the
     * next guarded operation.
     */
    void killNow(NodeId node);

    /**
     * Declare @p peer dead as seen from @p observer: fence it
     * (STONITH), then run full recovery. Idempotent. Bypasses the
     * quorum poll — callers with their own certainty only.
     */
    void declareDead(NodeId peer, NodeId observer);

    /**
     * Chaos/test API: make @p observer fully suspect @p peer right
     * now, as a broken observer-side link would, and run the normal
     * declaration path — including the quorum poll on N>=3 machines,
     * where a healthy peer gets probed by the other survivors and
     * the false suspicion is outvoted (suspicions_outvoted).
     */
    void forceSuspicion(NodeId observer, NodeId peer);

    /**
     * Bring a dead node back through the hot-plug flow: revive its
     * clock past every survivor's (plus the modelled reboot time),
     * reset its kernel to boot state, and clear detector state so
     * heartbeats to it resume.
     */
    void rejoin(NodeId node);

    /**
     * True while @p node sits in the partition-fenced degraded mode:
     * alive, state intact, answering heartbeats, but shedding new
     * work (Errc::Degraded) until its links heal.
     */
    bool
    isSelfFenced(NodeId node) const
    {
        return selfFenced_[node];
    }

    /** Current fence-word epoch (generation of declarations). */
    std::uint64_t fenceEpoch() const { return fenceWord_.epoch; }

    /** Detector introspection (test API). */
    unsigned
    suspicionOf(NodeId observer, NodeId peer) const
    {
        return det_[observer][peer].suspicion;
    }

    /** Detector override (chaos/test API): plant raw suspicion
     *  without running the declaration path. */
    void
    setSuspicion(NodeId observer, NodeId peer, unsigned n)
    {
        det_[observer][peer].suspicion = n;
    }

    /**
     * Link-state change notification, wired by the System to
     * Machine::setLinkEventHook. A pair whose both directions come
     * back Up runs the heal-time reconcile flow (un-fence /
     * auto-rejoin / stale-suspicion clearing).
     */
    void onLinkChange(NodeId from, NodeId to, LinkState s);

    StatGroup &recovery() { return recovery_; }
    const CrashConfig &config() const { return cfg_; }

    /**
     * Subscribe to the end of recover(): after tasks, futexes, DSM
     * pages and allocator blocks are settled, each hook runs with
     * (dead, survivor) so layers above the System — the scheduler's
     * per-node run queues — can drain state homed on the dead node
     * through the same recovery path. Returns a token for
     * removeRecoveryHook(); the subscriber must remove itself before
     * it is destroyed.
     */
    using RecoveryHook = std::function<void(NodeId dead,
                                            NodeId survivor)>;
    std::uint64_t addRecoveryHook(RecoveryHook fn);
    void removeRecoveryHook(std::uint64_t token);

  private:
    /** Detector state one observer keeps about one pinged peer. */
    struct PeerState
    {
        Cycles nextPingAt = 0;
        std::uint64_t pingSeq = 0;
        std::uint64_t lastAckSeq = 0;
        unsigned suspicion = 0;
    };

    Machine &machine_;
    MessageLayer &msg_;
    KernelLookup kernels_;
    std::size_t nodeCount_;
    OsDesign design_;
    MigrationPolicy &migration_;
    CrashConfig cfg_;
    StatGroup recovery_;
    DsmEngine *dsm_ = nullptr;
    GlobalMemoryAllocator *gma_ = nullptr;
    StramashShared *shared_ = nullptr;
    /** det_[observer][peer]: the full observer x peer matrix. On the
     *  paper pair each peer has exactly one possible observer, so
     *  this collapses to the historical per-peer vector. */
    std::vector<std::vector<PeerState>> det_;
    std::vector<bool> dead_;
    /** pid -> exit status for tasks reaped by recovery. */
    std::map<Pid, int> exitStatus_;
    /** (token, fn) recovery subscribers, in registration order. */
    std::vector<std::pair<std::uint64_t, RecoveryHook>> recoveryHooks_;
    std::uint64_t nextHookToken_ = 1;

    /**
     * Host mirror of the fence word. In the fused design this models
     * one cacheline of coherent memory (kernel 0's data region) that
     * every declaration CASes — the partition-proof arbiter. In the
     * Popcorn design there is no such memory, so the same record
     * stands in for the lease generation number survivors would
     * carry in their rejoin handshakes. Either way `epoch` counts
     * declarations made while partition-armed, and heal-time
     * reconciliation compares it against a fenced node's snapshot to
     * decide whose view of the cluster stands.
     */
    struct FenceWord
    {
        std::uint64_t epoch = 0;
        NodeId victim = invalidNode;
        NodeId fencedBy = invalidNode;
    };
    FenceWord fenceWord_;
    /** Nodes frozen in the self-fenced degraded mode. */
    std::vector<bool> selfFenced_;
    /** Dead nodes fenced *by the partition* (link down or already
     *  self-fenced at declaration): healing their links auto-rejoins
     *  them, unlike genuinely crashed nodes which need an explicit
     *  rejoin. */
    std::vector<bool> fencedByPartition_;
    /** fenceWord_.epoch at the instant each node self-fenced. */
    std::vector<std::uint64_t> selfFenceEpoch_;

    NodeId anyLiveNode() const;

    /** Run every due ping from @p observer. */
    void pollFrom(NodeId observer);

    /**
     * One ping exchange from @p observer to @p peer. @p forced
     * ignores the ping schedule (used when a task's own kernel is
     * found dead and detection must converge now).
     * @return true if the peer answered.
     */
    bool pingRound(NodeId observer, NodeId peer, bool forced);

    /**
     * The bare wire exchange of one heartbeat: send, give the peer a
     * chance to answer, charge the ack timeout on a miss. No
     * suspicion bookkeeping — pingRound() and the quorum poll both
     * sit on top of this.
     * @return true if the peer answered.
     */
    bool heartbeatExchange(NodeId observer, NodeId peer);

    /**
     * A suspicion crossed the threshold: poll every other surviving
     * node for a probe of @p peer and declare it dead only on a
     * strict majority of dead votes (@p suspector included). On the
     * two-node machine there are no other voters and the suspector's
     * word stands — the historical STONITH path, bit-identical.
     * Partition-armed machines route through the arbitration layer
     * first (fused CAS / Popcorn reachable-majority lease).
     */
    void tryDeclareDead(NodeId peer, NodeId suspector);

    /** True when the fault plan schedules link events (or a chaos
     *  severLink ran): the split-brain arbitration layer is live. */
    bool partitionMode() const { return machine_.partitionArmed(); }

    /**
     * Fused split-brain arbitration: a charged CAS (coherent load +
     * store by @p suspector) on the shared fence word. Zero messages
     * — the partition cannot cut coherent memory. @return true if
     * @p suspector won and may declare @p peer dead; false if the
     * word already names @p suspector as the victim.
     */
    bool fusedArbitrate(NodeId peer, NodeId suspector);

    /**
     * Freeze @p node in the degraded mode: detector stands down, new
     * work is shed, state is preserved. Heartbeats are still
     * answered, so a reconnected majority sees it alive.
     */
    void selfFence(NodeId node, NodeId peer);

    /** Heal-time reconciliation for a fully-healed a<->b pair. */
    void healPair(NodeId a, NodeId b);

    /** Full recovery, run once per death from declareDead(). */
    void recover(NodeId dead, NodeId survivor);

    void sweepFutexes(NodeId dead, NodeId survivor);
    void recoverTasksFused(NodeId dead, NodeId survivor);
    void recoverTasksPopcorn(NodeId dead, NodeId survivor);

    /**
     * Fused re-homing of one task touched by the crash: rebuild or
     * extend the surviving record straight out of the dead kernel's
     * coherent memory (VMA tree, page table, register state), then
     * re-point the task's home.
     */
    void adoptTaskFused(Pid pid, NodeId dead, NodeId survivor);

    /**
     * Copy every surviving mapping that still points into the dead
     * node's memory onto fresh local frames. Must run before the
     * global allocator reclaims the dead node's blocks.
     */
    void sweepDeadFrames(NodeId dead, NodeId survivor);

    /** Popcorn reap of a task whose hosting kernel died. */
    void reapTask(Pid pid, NodeId dead);
};

} // namespace stramash

#endif // STRAMASH_FAULT_CRASH_HH
