#include <gtest/gtest.h>

#include "stramash/kernel/vma.hh"

using namespace stramash;

namespace
{

Vma
mkVma(Addr start, Addr end, bool writable = true)
{
    Vma v;
    v.start = start;
    v.end = end;
    v.prot.present = true;
    v.prot.user = true;
    v.prot.writable = writable;
    v.kind = VmaKind::Anon;
    return v;
}

} // namespace

TEST(VmaTree, InsertAndFind)
{
    VmaTree t;
    EXPECT_TRUE(t.insert(mkVma(0x1000, 0x3000)));
    EXPECT_TRUE(t.insert(mkVma(0x5000, 0x7000)));
    EXPECT_EQ(t.size(), 2u);
    const Vma *v = t.find(0x2000);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->start, 0x1000u);
    EXPECT_EQ(t.find(0x3000), nullptr); // end is exclusive
    EXPECT_EQ(t.find(0x4000), nullptr); // gap
    EXPECT_NE(t.find(0x6fff), nullptr);
    EXPECT_EQ(t.find(0x7000), nullptr);
}

TEST(VmaTree, OverlapRejected)
{
    VmaTree t;
    EXPECT_TRUE(t.insert(mkVma(0x2000, 0x4000)));
    EXPECT_FALSE(t.insert(mkVma(0x1000, 0x3000))); // tail overlap
    EXPECT_FALSE(t.insert(mkVma(0x3000, 0x5000))); // head overlap
    EXPECT_FALSE(t.insert(mkVma(0x2000, 0x4000))); // exact dup
    EXPECT_FALSE(t.insert(mkVma(0x3000, 0x4000))); // contained
    EXPECT_TRUE(t.insert(mkVma(0x1000, 0x2000)));  // abutting is fine
    EXPECT_TRUE(t.insert(mkVma(0x4000, 0x5000)));
    EXPECT_EQ(t.size(), 3u);
}

TEST(VmaTree, Remove)
{
    VmaTree t;
    t.insert(mkVma(0x1000, 0x2000));
    EXPECT_TRUE(t.remove(0x1000));
    EXPECT_FALSE(t.remove(0x1000));
    EXPECT_EQ(t.find(0x1800), nullptr);
}

TEST(VmaTree, ForEachAscending)
{
    VmaTree t;
    t.insert(mkVma(0x5000, 0x6000));
    t.insert(mkVma(0x1000, 0x2000));
    t.insert(mkVma(0x3000, 0x4000));
    std::vector<Addr> starts;
    t.forEach([&](const Vma &v) { starts.push_back(v.start); });
    EXPECT_EQ(starts, (std::vector<Addr>{0x1000, 0x3000, 0x5000}));
}

TEST(VmaTree, FindCountingReportsDepth)
{
    VmaTree t;
    for (Addr i = 0; i < 64; ++i)
        t.insert(mkVma(i * 0x10000, i * 0x10000 + 0x1000));
    unsigned visited = 0;
    const Vma *v = t.findCounting(5 * 0x10000 + 0x500, visited);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->start, 5 * 0x10000u);
    // log2(64) + 1 = 7-ish nodes.
    EXPECT_GE(visited, 5u);
    EXPECT_LE(visited, 9u);
    EXPECT_TRUE(t.checkInvariants());
}

TEST(VmaTree, PageAttrsFollowProtection)
{
    Vma rw = mkVma(0, 0x1000, true);
    PteAttrs a = vmaPageAttrs(rw, true);
    EXPECT_TRUE(a.present);
    EXPECT_TRUE(a.writable);
    EXPECT_TRUE(a.dirty);
    a = vmaPageAttrs(rw, false);
    EXPECT_FALSE(a.writable);
    EXPECT_FALSE(a.dirty);
    // A read-only VMA never yields writable pages.
    Vma ro = mkVma(0, 0x1000, false);
    a = vmaPageAttrs(ro, true);
    EXPECT_FALSE(a.writable);
}

TEST(VmaTree, KindNames)
{
    EXPECT_STREQ(vmaKindName(VmaKind::Code), "code");
    EXPECT_STREQ(vmaKindName(VmaKind::Stack), "stack");
    EXPECT_STREQ(vmaKindName(VmaKind::Anon), "anon");
}

TEST(VmaTreeDeath, EmptyVmaPanics)
{
    VmaTree t;
    EXPECT_DEATH(t.insert(mkVma(0x1000, 0x1000)), "empty");
}

TEST(VmaTreeDeath, UnalignedVmaPanics)
{
    VmaTree t;
    EXPECT_DEATH(t.insert(mkVma(0x1001, 0x3000)), "aligned");
}
