#include <gtest/gtest.h>

#include "stramash/common/units.hh"
#include "stramash/kernel/kernel.hh"

using namespace stramash;

namespace
{

/** Minimal fault handler: local anonymous faults only. */
class LocalOnlyHandler final : public FaultHandler
{
  public:
    void
    handleFault(KernelInstance &kernel, Task &task, Addr va,
                XlateStatus, AccessType type) override
    {
        bool ok = kernel.handleLocalAnonFault(task, va, type);
        panic_if(!ok, "fault outside VMA in test");
    }

    void onTaskExit(KernelInstance &, Task &) override {}
};

class KernelTest : public testing::Test
{
  protected:
    KernelTest()
        : machine_(MachineConfig::paperPair(MemoryModel::Shared)),
          layer_(machine_),
          kernel_(machine_, 0, layer_)
    {
        kernel_.setFaultHandler(&handler_);
    }

    Task &
    spawn()
    {
        Task &t = kernel_.createTask(7, 0);
        Vma v;
        v.start = 0x100000;
        v.end = 0x100000 + 1_MiB;
        v.prot.present = true;
        v.prot.user = true;
        v.prot.writable = true;
        t.as->vmas().insert(v);
        return t;
    }

    Machine machine_;
    TcpMessageLayer layer_;
    KernelInstance kernel_;
    LocalOnlyHandler handler_;
};

} // namespace

TEST_F(KernelTest, BootTakesFirmwareRanges)
{
    // x86 boots with 1.5 GiB minus the 64 MiB kernel data region.
    EXPECT_EQ(kernel_.palloc().totalPages(),
              (1_GiB + 512_MiB - 64_MiB) / pageSize);
    EXPECT_EQ(kernel_.isa(), IsaType::X86_64);
}

TEST_F(KernelTest, ReservedRangesExcluded)
{
    KernelInstance k2(machine_, 1, layer_, {{2_GiB, 2_GiB + 256_MiB}});
    // Arm boots with 1.5 GiB minus reservation minus data region.
    EXPECT_EQ(k2.palloc().totalPages(),
              (1_GiB + 512_MiB - 256_MiB - 64_MiB) / pageSize);
    EXPECT_FALSE(k2.palloc().manages(2_GiB + 1_MiB));
}

TEST_F(KernelTest, DataRegionAllocations)
{
    Addr a = kernel_.allocDataArea(100);
    Addr b = kernel_.allocDataArea(100);
    EXPECT_GE(b, a + 100);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    // Hashed addresses are stable and line-aligned.
    EXPECT_EQ(kernel_.dataAddrFor(42), kernel_.dataAddrFor(42));
    EXPECT_NE(kernel_.dataAddrFor(42), kernel_.dataAddrFor(43));
    EXPECT_EQ(kernel_.dataAddrFor(42) % 64, 0u);
}

TEST_F(KernelTest, TaskLifecycle)
{
    EXPECT_FALSE(kernel_.hasTask(7));
    Task &t = spawn();
    EXPECT_TRUE(kernel_.hasTask(7));
    EXPECT_EQ(t.pid, 7u);
    EXPECT_EQ(kernel_.findTask(7), &t);
    kernel_.destroyTask(7);
    EXPECT_FALSE(kernel_.hasTask(7));
    EXPECT_EQ(kernel_.findTask(7), nullptr);
}

TEST_F(KernelTest, UserReadWriteFaultsAndRoundTrips)
{
    Task &t = spawn();
    std::uint64_t v = 0xfeedfacecafe;
    kernel_.userStore<std::uint64_t>(t, 0x100100, v);
    EXPECT_EQ(kernel_.userLoad<std::uint64_t>(t, 0x100100), v);
    EXPECT_GE(kernel_.stats().value("page_faults"), 1u);
    EXPECT_GE(kernel_.stats().value("anon_faults"), 1u);
}

TEST_F(KernelTest, UserAccessSpansPages)
{
    Task &t = spawn();
    std::vector<std::uint8_t> buf(3 * pageSize);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(i * 3);
    Addr va = 0x100000 + pageSize - 100;
    kernel_.userWrite(t, va, buf.data(), buf.size());
    std::vector<std::uint8_t> back(buf.size());
    kernel_.userRead(t, va, back.data(), back.size());
    EXPECT_EQ(back, buf);
    // Four pages faulted in.
    EXPECT_EQ(kernel_.stats().value("anon_faults"), 4u);
}

TEST_F(KernelTest, CasSemantics)
{
    Task &t = spawn();
    kernel_.userStore<std::uint32_t>(t, 0x100000, 5);
    bool ok = false;
    EXPECT_EQ(kernel_.userCas(t, 0x100000, 5, 9, ok), 5u);
    EXPECT_TRUE(ok);
    EXPECT_EQ(kernel_.userCas(t, 0x100000, 5, 11, ok), 9u);
    EXPECT_FALSE(ok);
    EXPECT_EQ(kernel_.userLoad<std::uint32_t>(t, 0x100000), 9u);
}

TEST_F(KernelTest, FetchAdd)
{
    Task &t = spawn();
    EXPECT_EQ(kernel_.userFetchAdd(t, 0x100040, 3), 0u);
    EXPECT_EQ(kernel_.userFetchAdd(t, 0x100040, 4), 3u);
    EXPECT_EQ(kernel_.userLoad<std::uint32_t>(t, 0x100040), 7u);
}

TEST_F(KernelTest, TaskPagesFreedOnDestroy)
{
    Task &t = spawn();
    kernel_.userStore<std::uint64_t>(t, 0x100000, 1);
    kernel_.userStore<std::uint64_t>(t, 0x101000, 1);
    std::uint64_t used = kernel_.palloc().usedPages();
    kernel_.destroyTask(7);
    // At least the two data pages returned (table frames too).
    EXPECT_LT(kernel_.palloc().usedPages(), used);
}

TEST_F(KernelTest, LocalAnonFaultOutsideVmaFails)
{
    Task &t = spawn();
    EXPECT_FALSE(
        kernel_.handleLocalAnonFault(t, 0x9990000, AccessType::Load));
}

TEST_F(KernelTest, LowMemoryHookInvokedUnderPressure)
{
    Task &t = spawn();
    int calls = 0;
    kernel_.setLowMemoryHook([&](KernelInstance &) {
        ++calls;
        return false;
    });
    // Force pressure over 70% by draining the allocator directly.
    auto &pa = kernel_.palloc();
    while (pa.pressure() <= 0.70)
        ASSERT_TRUE(pa.allocPage().has_value());
    kernel_.userStore<std::uint64_t>(t, 0x100000, 1);
    EXPECT_GE(calls, 1);
}

TEST_F(KernelTest, MessagePumpDispatchesByType)
{
    int hits = 0;
    kernel_.registerMsgHandler(MsgType::FutexWake,
                               [&](const Message &) { ++hits; });
    Message m;
    m.type = MsgType::FutexWake;
    kernel_.pump(m);
    EXPECT_EQ(hits, 1);
}

TEST_F(KernelTest, NamespacesListAllCpus)
{
    EXPECT_EQ(kernel_.namespaces().cpus.size(), 2u);
    EXPECT_EQ(kernel_.namespaces().cpus[0].isa, IsaType::X86_64);
    EXPECT_EQ(kernel_.namespaces().cpus[1].isa, IsaType::AArch64);
}

TEST_F(KernelTest, DeathOnDuplicateTask)
{
    spawn();
    EXPECT_DEATH(kernel_.createTask(7, 0), "already");
}

TEST_F(KernelTest, DeathOnUnhandledMessage)
{
    Message m;
    m.type = MsgType::PageRequest;
    EXPECT_DEATH(kernel_.pump(m), "no handler");
}
