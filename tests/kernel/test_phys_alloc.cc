#include <gtest/gtest.h>

#include "stramash/common/units.hh"
#include "stramash/kernel/phys_alloc.hh"

using namespace stramash;

TEST(PhysAllocator, AllocFromRange)
{
    PhysAllocator pa("t");
    pa.addRange({0x100000, 0x100000 + 16 * pageSize});
    EXPECT_EQ(pa.totalPages(), 16u);
    EXPECT_EQ(pa.freePages(), 16u);
    auto p = pa.allocPage();
    ASSERT_TRUE(p.has_value());
    EXPECT_GE(*p, 0x100000u);
    EXPECT_EQ(pa.freePages(), 15u);
    EXPECT_TRUE(pa.isAllocated(*p));
}

TEST(PhysAllocator, ExhaustionReturnsNullopt)
{
    PhysAllocator pa("t");
    pa.addRange({0, 2 * pageSize});
    EXPECT_TRUE(pa.allocPage().has_value());
    EXPECT_TRUE(pa.allocPage().has_value());
    EXPECT_FALSE(pa.allocPage().has_value());
}

TEST(PhysAllocator, FreeAndReuse)
{
    PhysAllocator pa("t");
    pa.addRange({0, 4 * pageSize});
    Addr p = *pa.allocPage();
    pa.freePage(p);
    EXPECT_FALSE(pa.isAllocated(p));
    EXPECT_EQ(pa.freePages(), 4u);
}

TEST(PhysAllocator, ContiguousAllocation)
{
    PhysAllocator pa("t");
    pa.addRange({0, 16 * pageSize});
    auto r = pa.allocContiguous(8);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->size(), 8 * pageSize);
    EXPECT_FALSE(pa.allocContiguous(9).has_value());
    EXPECT_TRUE(pa.allocContiguous(8).has_value());
}

TEST(PhysAllocator, PressureTracking)
{
    PhysAllocator pa("t");
    pa.addRange({0, 10 * pageSize});
    EXPECT_DOUBLE_EQ(pa.pressure(), 0.0);
    for (int i = 0; i < 7; ++i)
        pa.allocPage();
    EXPECT_DOUBLE_EQ(pa.pressure(), 0.7);
}

TEST(PhysAllocator, RemoveRangeRequiresFreePages)
{
    PhysAllocator pa("t");
    pa.addRange({0, 8 * pageSize});
    Addr p = *pa.allocPage(); // in [0, 8 pages)
    AddrRange lower{0, 4 * pageSize};
    // p landed in the lower half, so removal must fail.
    ASSERT_TRUE(lower.contains(p));
    EXPECT_FALSE(pa.removeRange(lower));
    pa.freePage(p);
    EXPECT_TRUE(pa.removeRange(lower));
    EXPECT_EQ(pa.totalPages(), 4u);
    EXPECT_FALSE(pa.manages(0));
}

TEST(PhysAllocator, RemoveUnmanagedRangeFails)
{
    PhysAllocator pa("t");
    pa.addRange({0, 4 * pageSize});
    EXPECT_FALSE(pa.removeRange({8 * pageSize, 12 * pageSize}));
}

TEST(PhysAllocator, AllocatedIn)
{
    PhysAllocator pa("t");
    pa.addRange({0, 8 * pageSize});
    Addr a = *pa.allocPage();
    Addr b = *pa.allocPage();
    auto live = pa.allocatedIn({0, 8 * pageSize});
    EXPECT_EQ(live.size(), 2u);
    pa.freePage(a);
    live = pa.allocatedIn({0, 8 * pageSize});
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0], b);
}

TEST(PhysAllocator, MultipleDisjointRanges)
{
    PhysAllocator pa("t");
    pa.addRange({0, 2 * pageSize});
    pa.addRange({1_MiB, 1_MiB + 2 * pageSize});
    EXPECT_EQ(pa.totalPages(), 4u);
    // Exhaust: allocations span both ranges.
    std::set<Addr> pages;
    while (auto p = pa.allocPage())
        pages.insert(*p);
    EXPECT_EQ(pages.size(), 4u);
    EXPECT_TRUE(pages.count(0));
    EXPECT_TRUE(pages.count(1_MiB));
}

TEST(PhysAllocatorDeath, DoubleFreePanics)
{
    PhysAllocator pa("t");
    pa.addRange({0, 4 * pageSize});
    Addr p = *pa.allocPage();
    pa.freePage(p);
    EXPECT_DEATH(pa.freePage(p), "double free");
}

TEST(PhysAllocatorDeath, UnmanagedFreePanics)
{
    PhysAllocator pa("t");
    pa.addRange({0, 4 * pageSize});
    EXPECT_DEATH(pa.freePage(1_GiB), "not managed");
}

TEST(PhysAllocatorDeath, UnalignedRangePanics)
{
    PhysAllocator pa("t");
    EXPECT_DEATH(pa.addRange({1, pageSize}), "aligned");
}
