#include <gtest/gtest.h>

#include "stramash/kernel/address_space.hh"

using namespace stramash;

namespace
{

class AddressSpaceTest : public testing::Test
{
  protected:
    AddressSpaceTest() : nextFrame_(0x200000)
    {
        as_ = std::make_unique<AddressSpace>(
            mem_, X86PteFormat::instance(),
            &ArmPteFormat::instance(), [this] { return alloc(); },
            [](Addr) {}, 0x10000);
    }

    Addr
    alloc()
    {
        Addr f = nextFrame_;
        nextFrame_ += pageSize;
        return f;
    }

    PteAttrs
    attrs(bool writable)
    {
        PteAttrs a;
        a.present = true;
        a.user = true;
        a.writable = writable;
        return a;
    }

    GuestMemory mem_;
    Addr nextFrame_;
    std::unique_ptr<AddressSpace> as_;
};

} // namespace

TEST_F(AddressSpaceTest, TranslateUnmapped)
{
    auto x = as_->translate(0x1000, AccessType::Load);
    EXPECT_EQ(x.status, XlateStatus::NotMapped);
}

TEST_F(AddressSpaceTest, TranslateMappedWithOffset)
{
    Addr pa = alloc();
    ASSERT_TRUE(as_->mapPage(0x5000, pa, attrs(true)));
    auto x = as_->translate(0x5123, AccessType::Load);
    EXPECT_EQ(x.status, XlateStatus::Ok);
    EXPECT_EQ(x.pa, pa + 0x123);
}

TEST_F(AddressSpaceTest, StoreToReadOnlyFaults)
{
    ASSERT_TRUE(as_->mapPage(0x6000, alloc(), attrs(false)));
    EXPECT_EQ(as_->translate(0x6000, AccessType::Load).status,
              XlateStatus::Ok);
    EXPECT_EQ(as_->translate(0x6000, AccessType::Store).status,
              XlateStatus::NoWrite);
}

TEST_F(AddressSpaceTest, TlbCachesTranslations)
{
    as_->mapPage(0x7000, alloc(), attrs(true));
    as_->translate(0x7000, AccessType::Load); // miss, fills TLB
    auto misses = as_->tlbMisses();
    as_->translate(0x7008, AccessType::Load);
    as_->translate(0x7ff8, AccessType::Store);
    EXPECT_EQ(as_->tlbMisses(), misses);
    EXPECT_GE(as_->tlbHits(), 2u);
}

TEST_F(AddressSpaceTest, UnmapPurgesTlb)
{
    as_->mapPage(0x8000, alloc(), attrs(true));
    as_->translate(0x8000, AccessType::Load);
    ASSERT_TRUE(as_->unmapPage(0x8000));
    EXPECT_EQ(as_->translate(0x8000, AccessType::Load).status,
              XlateStatus::NotMapped);
}

TEST_F(AddressSpaceTest, ProtectPurgesTlb)
{
    as_->mapPage(0x9000, alloc(), attrs(true));
    as_->translate(0x9000, AccessType::Store); // TLB says writable
    ASSERT_TRUE(as_->protectPage(0x9000, attrs(false)));
    EXPECT_EQ(as_->translate(0x9000, AccessType::Store).status,
              XlateStatus::NoWrite);
}

TEST_F(AddressSpaceTest, ExternalPtChangeNeedsExplicitInvalidate)
{
    // Models a remote kernel rewriting our PTE behind our back
    // (cross-ISA PT lock discipline requires the TLB shootdown).
    Addr pa1 = alloc();
    as_->mapPage(0xa000, pa1, attrs(true));
    as_->translate(0xa000, AccessType::Load);
    // Rewrite the PTE directly in guest memory.
    auto w = as_->pageTable().walk(0xa000);
    Addr pa2 = alloc();
    mem_.store<std::uint64_t>(
        w->pteAddr,
        X86PteFormat::instance().encodeLeaf(pa2, attrs(true)));
    // Stale TLB still returns the old frame...
    EXPECT_EQ(pageBase(as_->translate(0xa000, AccessType::Load).pa),
              pa1);
    // ...until invalidated.
    as_->tlbInvalidate(0xa000);
    EXPECT_EQ(pageBase(as_->translate(0xa000, AccessType::Load).pa),
              pa2);
}

TEST_F(AddressSpaceTest, TlbFlushDropsEverything)
{
    as_->mapPage(0xb000, alloc(), attrs(true));
    as_->translate(0xb000, AccessType::Load);
    auto hits = as_->tlbHits();
    as_->tlbFlush();
    as_->translate(0xb000, AccessType::Load);
    EXPECT_EQ(as_->tlbHits(), hits); // that was a miss
}

TEST_F(AddressSpaceTest, LockWordAddresses)
{
    EXPECT_EQ(as_->vmaLockAddr(), 0x10000u);
    EXPECT_EQ(as_->ptlAddr(), 0x10040u);
}
