#include <gtest/gtest.h>

#include "stramash/core/app.hh"
#include "stramash/kernel/remote_guard.hh"
#include "stramash/workloads/npb.hh"

using namespace stramash;

TEST(RemoteGuard, AllowRevokePermitted)
{
    RemoteAccessGuard g(GuardMode::Audit);
    g.allow(0, {0x1000, 0x3000});
    EXPECT_TRUE(g.permitted(0, 0x1000, 8));
    EXPECT_TRUE(g.permitted(0, 0x2ff8, 8));
    EXPECT_FALSE(g.permitted(0, 0x2ffc, 8)); // crosses the boundary
    EXPECT_FALSE(g.permitted(0, 0x3000, 8));
    EXPECT_FALSE(g.permitted(1, 0x1000, 8)); // other owner
    g.revoke(0, {0x1000, 0x2000});
    EXPECT_FALSE(g.permitted(0, 0x1800, 8));
    EXPECT_TRUE(g.permitted(0, 0x2800, 8));
    EXPECT_EQ(g.exposedBytes(0), 0x1000u);
}

TEST(RemoteGuard, OwnAccessesAlwaysPass)
{
    RemoteAccessGuard g(GuardMode::Enforce);
    EXPECT_TRUE(g.checkAccess(0, 0, 0xdeadbeef, 8));
    EXPECT_EQ(g.violations(), 0u);
}

TEST(RemoteGuard, AuditCountsViolationsButAllows)
{
    RemoteAccessGuard g(GuardMode::Audit);
    g.allow(0, {0x1000, 0x2000});
    EXPECT_TRUE(g.checkAccess(1, 0, 0x1000, 8));
    EXPECT_TRUE(g.checkAccess(1, 0, 0x9000, 8)); // violation
    EXPECT_EQ(g.violations(), 1u);
    EXPECT_EQ(g.checked(), 1u);
}

TEST(RemoteGuard, OffModeChecksNothing)
{
    RemoteAccessGuard g(GuardMode::Off);
    EXPECT_TRUE(g.checkAccess(1, 0, 0x9000, 8));
    EXPECT_EQ(g.violations(), 0u);
}

TEST(RemoteGuardDeath, EnforcePanicsOnViolation)
{
    RemoteAccessGuard g(GuardMode::Enforce);
    g.allow(0, {0x1000, 0x2000});
    EXPECT_DEATH(g.checkAccess(1, 0, 0x9000, 8), "violation");
}

TEST(RemoteGuard, ModeNames)
{
    EXPECT_STREQ(guardModeName(GuardMode::Off), "off");
    EXPECT_STREQ(guardModeName(GuardMode::Audit), "audit");
    EXPECT_STREQ(guardModeName(GuardMode::Enforce), "enforce");
}

// ---- System-level: the fused design's legitimate remote accesses
// all fall inside the shared set -------------------------------------

TEST(RemoteGuardSystem, FusedNpbRunIsViolationFreeUnderEnforce)
{
    // The strongest statement: run a full migrating workload with
    // the guard enforcing. Every remote walker / lock / futex /
    // mailbox access must hit only registered extents, or panic.
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.remoteGuard = GuardMode::Enforce;
    System sys(cfg);
    App app(sys, 0);
    NpbConfig ncfg;
    ncfg.iterations = 2;
    ncfg.problemBytes = 128 * 1024;
    NpbResult r = makeNpbKernel("ft")->run(app, ncfg);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(sys.remoteGuard().violations(), 0u);
    EXPECT_GT(sys.remoteGuard().checked(), 0u);
}

TEST(RemoteGuardSystem, ProcessMigrationIsViolationFree)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.remoteGuard = GuardMode::Enforce;
    System sys(cfg);
    App app(sys, 0);
    Addr buf = app.mmap(8 * pageSize);
    for (int i = 0; i < 8; ++i)
        app.write<std::uint64_t>(buf + Addr(i) * pageSize, i);
    sys.migrateProcess(app.pid(), 1);
    EXPECT_EQ(app.read<std::uint64_t>(buf + pageSize), 1u);
    EXPECT_EQ(sys.remoteGuard().violations(), 0u);
}

TEST(RemoteGuardSystem, StrayRemoteAccessIsCaught)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.remoteGuard = GuardMode::Audit;
    System sys(cfg);
    // A rogue accessor touching the other kernel's *private* memory
    // (a frame in its boot range beyond the 64 MiB data region,
    // never exposed).
    sys.kernel(1).remoteAccess(0, AccessType::Load, 100 * 1024 * 1024,
                               8);
    EXPECT_EQ(sys.remoteGuard().violations(), 1u);
}

TEST(RemoteGuardSystem, FreedPageTableFramesAreRevoked)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.remoteGuard = GuardMode::Audit;
    System sys(cfg);
    Addr exposedBefore = sys.remoteGuard().exposedBytes(0);
    Pid pid = sys.spawn(0);
    // Creating the task exposed its page-table frames.
    EXPECT_GT(sys.remoteGuard().exposedBytes(0), exposedBefore);
    sys.exit(pid);
    EXPECT_EQ(sys.remoteGuard().exposedBytes(0), exposedBefore);
}
