#include <gtest/gtest.h>

#include <vector>

#include "stramash/fault/fault.hh"

using namespace stramash;

namespace
{

std::vector<bool>
dropSequence(const FaultPlan &plan, unsigned n)
{
    FaultInjector fi(plan);
    std::vector<bool> out;
    for (unsigned i = 0; i < n; ++i)
        out.push_back(fi.shouldDropMessage(0, 1));
    return out;
}

} // namespace

TEST(FaultInjector, SameSeedSameDecisions)
{
    FaultPlan p;
    p.seed = 1234;
    p.msgDropRate = 0.3;
    EXPECT_EQ(dropSequence(p, 500), dropSequence(p, 500));

    FaultPlan q = p;
    q.seed = 1235;
    EXPECT_NE(dropSequence(p, 500), dropSequence(q, 500));
}

TEST(FaultInjector, SiteStreamsAreIsolated)
{
    // Enabling another site must not perturb the drop stream: each
    // site draws from its own Rng(seed, site) sequence.
    FaultPlan dropOnly;
    dropOnly.seed = 77;
    dropOnly.msgDropRate = 0.25;

    FaultPlan both = dropOnly;
    both.msgDupRate = 0.9;
    both.ipiDropRate = 0.9;

    FaultInjector a(dropOnly);
    FaultInjector b(both);
    for (unsigned i = 0; i < 300; ++i) {
        EXPECT_EQ(a.shouldDropMessage(0, 1), b.shouldDropMessage(0, 1));
        // b draws its other sites in between; a never touches them.
        b.shouldDuplicateMessage(0, 1);
        b.shouldDropIpi(0, 1);
    }
}

TEST(FaultInjector, RateZeroNeverFiresRateOneAlwaysFires)
{
    FaultPlan p;
    p.msgDropRate = 1.0;
    FaultInjector fi(p);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_TRUE(fi.shouldDropMessage(0, 1));
        EXPECT_FALSE(fi.shouldDuplicateMessage(0, 1)); // rate 0
    }
    EXPECT_EQ(fi.injected(), 64u);
    EXPECT_EQ(fi.faults().value("injected"), 64u);
    EXPECT_EQ(fi.faults().value("msg_drop"), 64u);
}

TEST(FaultInjector, BudgetMakesThePlanTransient)
{
    FaultPlan p;
    p.msgDropRate = 1.0;
    p.maxFaults = 5;
    FaultInjector fi(p);
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_FALSE(fi.exhausted());
        EXPECT_TRUE(fi.shouldDropMessage(0, 1));
    }
    EXPECT_TRUE(fi.exhausted());
    for (unsigned i = 0; i < 100; ++i)
        EXPECT_FALSE(fi.shouldDropMessage(0, 1));
    EXPECT_EQ(fi.injected(), 5u);
}

TEST(FaultInjector, PageCorruptionUsesMaxOfBothRates)
{
    FaultPlan p;
    p.pageCorruptRate = 1.0; // msgCorruptRate stays 0
    FaultInjector fi(p);
    EXPECT_FALSE(fi.shouldCorruptPayload(0, 1, false));
    EXPECT_TRUE(fi.shouldCorruptPayload(0, 1, true));
    EXPECT_EQ(fi.faults().value("page_corrupt"), 1u);
}

TEST(FaultInjector, CorruptAlwaysChangesSomething)
{
    FaultPlan p;
    p.msgCorruptRate = 1.0;
    FaultInjector fi(p);

    std::vector<std::uint8_t> payload(4096, 0xab);
    std::uint64_t arg0 = 17;
    fi.corrupt(payload, arg0);
    EXPECT_EQ(arg0, 17u); // payload present: args untouched
    EXPECT_NE(payload, std::vector<std::uint8_t>(4096, 0xab));

    std::vector<std::uint8_t> empty;
    fi.corrupt(empty, arg0);
    EXPECT_NE(arg0, 17u); // no payload: one arg bit flips
}

TEST(FaultInjector, DelaySiteReturnsConfiguredCycles)
{
    FaultPlan p;
    p.msgDelayRate = 1.0;
    p.msgDelayCycles = 1234;
    FaultInjector fi(p);
    EXPECT_EQ(fi.messageDelayCycles(0, 1), 1234u);
}

TEST(FaultInjector, TransientChaosActivatesEverySite)
{
    FaultPlan p = FaultPlan::transientChaos(9, 0.1, 32);
    EXPECT_TRUE(p.any());
    EXPECT_EQ(p.seed, 9u);
    EXPECT_EQ(p.maxFaults, 32u);
    EXPECT_DOUBLE_EQ(p.msgDropRate, 0.1);
    EXPECT_DOUBLE_EQ(p.memBlockDenyRate, 0.1);

    FaultPlan quiet;
    EXPECT_FALSE(quiet.any());
}

TEST(FaultInjector, DeathOnBadRate)
{
    FaultPlan p;
    p.msgDropRate = 1.5;
    EXPECT_DEATH(FaultInjector{p}, "probabilities");
}
