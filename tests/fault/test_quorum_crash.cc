/**
 * @file
 * Quorum failure detection on a three-node machine: a single
 * observer's false suspicion is outvoted by the other survivors and
 * the suspect lives; a real crash reaches a majority, is fenced, and
 * recovery preserves the fault-free workload invariants — the same
 * checksum contract the two-node crash harness enforces.
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "stramash/workloads/npb.hh"

using namespace stramash;

namespace
{

constexpr std::uint64_t chaosSeeds[] = {3, 11, 29};

TopologySpec
threeNodes()
{
    return TopologySpec::alternating(3, MemoryModel::Shared);
}

struct Outcome
{
    std::uint64_t checksum = 0;
    bool verified = false;
    NodeId endedOn = 0;
    bool victimDeclaredDead = false;
};

Outcome
runNpb(std::optional<FaultPlan> plan,
       std::optional<NodeId> victim = std::nullopt)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.topology = threeNodes();
    cfg.faultPlan = plan;
    System sys(cfg);
    App app(sys, 0);
    NpbConfig nc;
    nc.iterations = 2;
    nc.problemBytes = 256 * 1024;
    nc.seed = 7;
    NpbResult r = makeNpbKernel("is")->run(app, nc);

    Outcome out;
    out.checksum = r.checksum;
    out.verified = r.verified;
    out.endedOn = app.where();
    if (victim && sys.crashManager())
        out.victimDeclaredDead =
            sys.crashManager()->isDeclaredDead(*victim);
    return out;
}

Cycles
victimClockBaseline(NodeId victim)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.topology = threeNodes();
    System sys(cfg);
    App app(sys, 0);
    NpbConfig nc;
    nc.iterations = 2;
    nc.problemBytes = 256 * 1024;
    nc.seed = 7;
    makeNpbKernel("is")->run(app, nc);
    return sys.machine().node(victim).cycles();
}

} // namespace

TEST(QuorumCrash, FalseSuspicionFromOneObserverIsOutvoted)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.topology = threeNodes();
    cfg.crash.enabled = true;
    System sys(cfg);
    App app(sys, 0);
    CrashManager &cm = *sys.crashManager();

    // Observer 0's link to node 1 "breaks": full suspicion, normal
    // declaration path. Node 2 probes node 1, gets an answer, and the
    // lone dead vote loses 1:2.
    cm.forceSuspicion(0, 1);
    EXPECT_FALSE(cm.isDeclaredDead(1));
    EXPECT_GE(cm.recovery().value("suspicions_outvoted"), 1u);
    EXPECT_GE(cm.recovery().value("quorum_probes"), 1u);

    // The slandered node is fully alive: run real work through it.
    app.migrateTo(1);
    NpbConfig nc;
    nc.iterations = 1;
    nc.problemBytes = 64 * 1024;
    nc.seed = 7;
    NpbResult r = makeNpbKernel("is")->run(app, nc);
    EXPECT_TRUE(r.verified);
    EXPECT_FALSE(cm.isDeclaredDead(1));
}

TEST(QuorumCrash, RepeatedFalseSuspicionStaysOutvoted)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.topology = threeNodes();
    cfg.crash.enabled = true;
    System sys(cfg);
    App app(sys, 0);
    CrashManager &cm = *sys.crashManager();

    for (int i = 0; i < 3; ++i)
        cm.forceSuspicion(2, 0);
    EXPECT_FALSE(cm.isDeclaredDead(0));
    EXPECT_GE(cm.recovery().value("suspicions_outvoted"), 3u);
}

TEST(QuorumCrash, RealDeathReachesMajorityAndIsFenced)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.topology = threeNodes();
    cfg.crash.enabled = true;
    System sys(cfg);
    App app(sys, 0);
    CrashManager &cm = *sys.crashManager();

    sys.killNode(1);
    // The suspecting observer's dead vote now agrees with node 2's
    // probe: 2:0 majority, declaration proceeds.
    cm.forceSuspicion(0, 1);
    EXPECT_TRUE(cm.isDeclaredDead(1));
    EXPECT_GE(cm.recovery().value("quorum_probes"), 1u);
    EXPECT_EQ(cm.recovery().value("suspicions_outvoted"), 0u);
}

TEST(QuorumCrash, MidRunCrashRecoversWithFaultFreeChecksums)
{
    Outcome baseline = runNpb(std::nullopt);
    ASSERT_TRUE(baseline.verified);

    // The workload ping-pongs between nodes 0 and 1, so those are the
    // victims whose own clock can cross the scheduled crash point;
    // the idle third node is covered by the test below.
    for (NodeId victim = 0; victim <= 1; ++victim) {
        Cycles clock = victimClockBaseline(victim);
        ASSERT_GT(clock, 0u) << "victim " << victim;
        for (std::uint64_t seed : chaosSeeds) {
            FaultPlan plan;
            plan.seed = seed;
            plan.crashNode = victim;
            plan.crashAtCycle = clock * (25 + seed) / 100;
            Outcome out = runNpb(plan, victim);
            EXPECT_TRUE(out.verified)
                << "victim " << victim << " seed " << seed;
            EXPECT_EQ(out.checksum, baseline.checksum)
                << "victim " << victim << " seed " << seed;
            EXPECT_TRUE(out.victimDeclaredDead)
                << "victim " << victim << " seed " << seed;
            EXPECT_NE(out.endedOn, victim)
                << "victim " << victim << " seed " << seed;
        }
    }
}

TEST(QuorumCrash, KillingTheIdleThirdNodeIsDetectedFromTheStream)
{
    Outcome baseline = runNpb(std::nullopt);
    ASSERT_TRUE(baseline.verified);

    for (std::uint64_t seed : chaosSeeds) {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        cfg.topology = threeNodes();
        cfg.crash.enabled = true;
        System sys(cfg);
        App app(sys, 0);
        sys.killNode(2);

        NpbConfig nc;
        nc.iterations = 2;
        nc.problemBytes = 256 * 1024;
        nc.seed = 7;
        NpbResult r = makeNpbKernel("is")->run(app, nc);
        EXPECT_TRUE(r.verified) << "seed " << seed;
        EXPECT_EQ(r.checksum, baseline.checksum) << "seed " << seed;

        // The heartbeat detector rides the operation stream: by the
        // end of the run the dead bystander has been suspected,
        // probed by the other survivor, and fenced on a 2:0 vote.
        CrashManager &cm = *sys.crashManager();
        for (unsigned i = 0; i < 400 && !cm.isDeclaredDead(2); ++i)
            app.compute(50'000);
        EXPECT_TRUE(cm.isDeclaredDead(2)) << "seed " << seed;
        EXPECT_EQ(cm.recovery().value("suspicions_outvoted"), 0u)
            << "seed " << seed;
    }
}
