/**
 * @file
 * Crash-stop acceptance harness: kill either kernel node in the
 * middle of a real workload (NPB mid-run, kv-store mid-request
 * stream) at several seeds and insist the survivor finishes the work
 * with the right answers — no hang, no panic, no lost data.
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "stramash/workloads/kvstore.hh"
#include "stramash/workloads/npb.hh"

using namespace stramash;

namespace
{

constexpr std::uint64_t crashSeeds[] = {3, 11, 29};

struct Outcome
{
    std::uint64_t checksum = 0;
    bool verified = false;
    NodeId endedOn = 0;
    bool victimDeclaredDead = false;
};

/**
 * Run the IS kernel with an optional scheduled crash. The crash is a
 * FaultPlan site: the victim's own clock crossing @p crashAt kills
 * it mid-run; detection and recovery then ride the operation stream.
 */
Outcome
runNpb(OsDesign design, std::optional<FaultPlan> plan,
       std::optional<NodeId> victim = std::nullopt)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.faultPlan = plan;
    System sys(cfg);
    App app(sys, 0);
    NpbConfig nc;
    nc.iterations = 2;
    nc.problemBytes = 256 * 1024;
    nc.seed = 7;
    NpbResult r = makeNpbKernel("is")->run(app, nc);

    Outcome out;
    out.checksum = r.checksum;
    out.verified = r.verified;
    out.endedOn = app.where();
    if (victim && sys.crashManager())
        out.victimDeclaredDead =
            sys.crashManager()->isDeclaredDead(*victim);
    return out;
}

/** Victim-node clock at the end of a fault-free run, used to place
 *  the scheduled crash inside the run. */
Cycles
victimClockBaseline(OsDesign design, NodeId victim)
{
    SystemConfig cfg;
    cfg.osDesign = design;
    System sys(cfg);
    App app(sys, 0);
    NpbConfig nc;
    nc.iterations = 2;
    nc.problemBytes = 256 * 1024;
    nc.seed = 7;
    makeNpbKernel("is")->run(app, nc);
    return sys.machine().node(victim).cycles();
}

} // namespace

TEST(CrashNpb, FusedSurvivesKillingEitherNodeMidRun)
{
    Outcome baseline = runNpb(OsDesign::FusedKernel, std::nullopt);
    ASSERT_TRUE(baseline.verified);

    for (NodeId victim = 0; victim < 2; ++victim) {
        Cycles clock =
            victimClockBaseline(OsDesign::FusedKernel, victim);
        ASSERT_GT(clock, 0u);
        for (std::uint64_t seed : crashSeeds) {
            // A seed-varied point strictly inside the run.
            FaultPlan plan;
            plan.seed = seed;
            plan.crashNode = victim;
            plan.crashAtCycle = clock * (25 + seed) / 100;
            Outcome out =
                runNpb(OsDesign::FusedKernel, plan, victim);
            EXPECT_TRUE(out.verified)
                << "victim " << victim << " seed " << seed;
            EXPECT_EQ(out.checksum, baseline.checksum)
                << "victim " << victim << " seed " << seed;
            EXPECT_TRUE(out.victimDeclaredDead)
                << "victim " << victim << " seed " << seed;
            EXPECT_NE(out.endedOn, victim)
                << "victim " << victim << " seed " << seed;
        }
    }
}

TEST(CrashNpb, PopcornSurvivorCompletesItsShare)
{
    for (std::uint64_t seed : crashSeeds) {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::MultipleKernel;
        cfg.crash.enabled = true;
        System sys(cfg);
        App a(sys, 0); // the survivor's share
        App b(sys, 1); // dies with its node, mid-work

        Addr bbuf = b.mmap(2 * pageSize);
        b.write<std::uint64_t>(bbuf, seed);
        sys.killNode(1);

        NpbConfig nc;
        nc.iterations = 2;
        nc.problemBytes = 128 * 1024;
        nc.seed = seed;
        NpbResult r = makeNpbKernel("is")->run(a, nc);
        EXPECT_TRUE(r.verified) << "seed " << seed;
        EXPECT_EQ(a.where(), 0u) << "seed " << seed;

        // The run outlives the detection window: b is reaped, the
        // run's migrations toward the dead node were refused, and the
        // survivor still finished with the right answer.
        CrashManager &cm = *sys.crashManager();
        EXPECT_TRUE(cm.isDeclaredDead(1)) << "seed " << seed;
        int status = 0;
        EXPECT_TRUE(cm.taskReaped(b.pid(), &status))
            << "seed " << seed;
        EXPECT_EQ(status, 128 + 9);
        EXPECT_GE(cm.recovery().value("migrations_refused_dead"), 1u)
            << "seed " << seed;
    }
}

TEST(CrashKvstore, KillingTheServerNodeFailsTheSocketOver)
{
    for (std::uint64_t seed : crashSeeds) {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        cfg.cachePluginEnabled = false; // functional mode
        cfg.crash.enabled = true;
        System sys(cfg);
        App app(sys, 0);
        KvStore store(app, 32, 256);
        store.populate();

        // Serve from the remote node, then kill the server-socket
        // node mid-stream at a seed-derived request index.
        app.migrateToNext();
        std::vector<std::uint8_t> payload(256);
        for (std::uint64_t key = 0; key < 32; ++key) {
            if (key == seed % 32)
                sys.killNode(0);
            for (std::size_t i = 0; i < payload.size(); ++i)
                payload[i] = static_cast<std::uint8_t>(key + i);
            store.exec(KvOp::Set, key, payload.data());
        }

        CrashManager &cm = *sys.crashManager();
        EXPECT_GE(cm.recovery().value("kv_socket_failovers"), 1u)
            << "seed " << seed;

        // Push past the detection window so recovery (including the
        // sweep copying kv frames out of the dead node's memory)
        // definitely ran, then re-check every value.
        for (unsigned i = 0; i < 400 && !cm.isDeclaredDead(0); ++i)
            app.compute(50'000);
        ASSERT_TRUE(cm.isDeclaredDead(0)) << "seed " << seed;
        for (std::uint64_t key = 0; key < 32; ++key) {
            auto back = store.getValue(key);
            for (std::size_t i = 0; i < back.size(); ++i) {
                ASSERT_EQ(back[i],
                          static_cast<std::uint8_t>(key + i))
                    << "seed " << seed << " key " << key << " byte "
                    << i;
            }
        }
        EXPECT_EQ(app.where(), 1u) << "seed " << seed;
    }
}

TEST(CrashKvstore, KillingTheClientNodeRehomesAndServesLocally)
{
    for (std::uint64_t seed : crashSeeds) {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        cfg.cachePluginEnabled = false;
        cfg.crash.enabled = true;
        System sys(cfg);
        App app(sys, 0);
        KvStore store(app, 32, 256);
        store.populate();

        app.migrateToNext();
        ASSERT_EQ(app.where(), 1u);
        std::vector<std::uint8_t> payload(256);
        for (std::uint64_t key = 0; key < 32; ++key) {
            if (key == seed % 32)
                sys.killNode(1); // the node the task runs on
            for (std::size_t i = 0; i < payload.size(); ++i)
                payload[i] = static_cast<std::uint8_t>(key + i);
            store.exec(KvOp::Set, key, payload.data());
        }

        // Losing its own kernel forces detection on the very next
        // operation: the task is re-homed to the origin and requests
        // are served locally from then on.
        CrashManager &cm = *sys.crashManager();
        EXPECT_TRUE(cm.isDeclaredDead(1)) << "seed " << seed;
        EXPECT_GE(cm.recovery().value("tasks_rehomed"), 1u);
        EXPECT_EQ(app.where(), 0u) << "seed " << seed;
        for (std::uint64_t key = 0; key < 32; ++key) {
            auto back = store.getValue(key);
            for (std::size_t i = 0; i < back.size(); ++i) {
                ASSERT_EQ(back[i],
                          static_cast<std::uint8_t>(key + i))
                    << "seed " << seed << " key " << key << " byte "
                    << i;
            }
        }
    }
}
