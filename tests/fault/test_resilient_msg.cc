#include <gtest/gtest.h>

#include <memory>

#include "stramash/core/app.hh"
#include "stramash/msg/transport.hh"

using namespace stramash;

namespace
{

/**
 * A two-node machine with a fault plan attached, a message layer on
 * top, and a counting request server on node 1: PageRequest is
 * answered with a recognisable PageResponse payload.
 */
struct Rig
{
    explicit Rig(const FaultPlan &plan, bool shm = false)
    {
        MachineConfig mc = MachineConfig::paperPair(MemoryModel::Shared);
        mc.faultPlan = plan;
        machine = std::make_unique<Machine>(mc);
        if (shm) {
            layer = std::make_unique<ShmMessageLayer>(
                *machine, ShmMessageLayer::paperAreaBase(
                              MemoryModel::Shared),
                ShmMessageLayer::paperAreaBytes, true);
        } else {
            layer = std::make_unique<TcpMessageLayer>(*machine);
        }
        layer->registerHandler(1, [this](const Message &m) {
            if (m.type != MsgType::PageRequest) {
                ++notesServed;
                return;
            }
            ++requestsServed;
            Message resp;
            resp.type = MsgType::PageResponse;
            resp.from = 1;
            resp.to = m.from;
            resp.arg0 = m.arg0;
            resp.payload.assign(64, 0x5a);
            layer->send(resp);
        });
        layer->registerHandler(0, [](const Message &) {});
    }

    Message
    request() const
    {
        Message req;
        req.type = MsgType::PageRequest;
        req.from = 0;
        req.to = 1;
        req.arg0 = 7;
        return req;
    }

    FaultInjector &injector() { return *machine->faultInjector(); }

    std::unique_ptr<Machine> machine;
    std::unique_ptr<MessageLayer> layer;
    unsigned requestsServed = 0;
    unsigned notesServed = 0;
};

} // namespace

TEST(ResilientMsg, DroppedRequestIsRetriedAndAnswered)
{
    FaultPlan plan;
    plan.msgDropRate = 1.0;
    plan.maxFaults = 1;
    Rig rig(plan);

    auto resp = rig.layer->tryRpc(rig.request(), MsgType::PageResponse);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->payload, std::vector<std::uint8_t>(64, 0x5a));
    EXPECT_EQ(rig.requestsServed, 1u);
    EXPECT_EQ(rig.injector().faults().value("msg_drop"), 1u);
    EXPECT_EQ(rig.injector().retries().value("attempts"), 1u);
    EXPECT_EQ(rig.injector().retries().value("timeouts"), 1u);
}

TEST(ResilientMsg, TimeoutAndBackoffAreChargedInSimulatedCycles)
{
    FaultPlan plan;
    plan.msgDropRate = 1.0;
    plan.maxFaults = 1;
    Rig rig(plan);

    Cycles before = rig.machine->node(0).cycles();
    ASSERT_TRUE(rig.layer->tryRpc(rig.request(), MsgType::PageResponse));
    Cycles spent = rig.machine->node(0).cycles() - before;
    const RpcPolicy &pol = rig.layer->rpcPolicy();
    // One timeout plus one backoff, at minimum, on the requester.
    EXPECT_GE(spent,
              pol.responseTimeoutCycles + pol.backoffForAttempt(1));
}

TEST(ResilientMsg, DuplicatedDeliveryIsSuppressedBySeq)
{
    FaultPlan plan;
    plan.msgDupRate = 1.0;
    plan.maxFaults = 1;
    Rig rig(plan);

    auto resp = rig.layer->tryRpc(rig.request(), MsgType::PageResponse);
    ASSERT_TRUE(resp.has_value());
    // The wire carried the request twice; the handler ran once.
    EXPECT_EQ(rig.requestsServed, 1u);
    EXPECT_EQ(rig.layer->stats().value("dup_dropped"), 1u);
}

TEST(ResilientMsg, CorruptedRequestIsDroppedByCrcAndRetried)
{
    FaultPlan plan;
    plan.msgCorruptRate = 1.0;
    plan.maxFaults = 1;
    Rig rig(plan);

    auto resp = rig.layer->tryRpc(rig.request(), MsgType::PageResponse);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->payload, std::vector<std::uint8_t>(64, 0x5a));
    EXPECT_EQ(rig.requestsServed, 1u);
    EXPECT_EQ(rig.layer->stats().value("crc_dropped"), 1u);
    EXPECT_EQ(rig.injector().retries().value("attempts"), 1u);
}

TEST(ResilientMsg, LostResponseIsReplayedFromReplyCacheNotReServed)
{
    // Pick a seed whose drop stream spares the request (draw 1) and
    // kills the response (draw 2), so the retried request reaches a
    // server that has already executed the handler.
    FaultPlan plan;
    plan.msgDropRate = 0.5;
    plan.maxFaults = 1;
    std::uint64_t seed = 0;
    for (std::uint64_t s = 1; s < 1000; ++s) {
        FaultPlan probePlan = plan;
        probePlan.seed = s;
        FaultInjector probe(probePlan);
        if (!probe.shouldDropMessage(0, 1) &&
            probe.shouldDropMessage(1, 0)) {
            seed = s;
            break;
        }
    }
    ASSERT_NE(seed, 0u) << "no suitable seed below 1000";
    plan.seed = seed;
    Rig rig(plan);

    auto resp = rig.layer->tryRpc(rig.request(), MsgType::PageResponse);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->payload, std::vector<std::uint8_t>(64, 0x5a));
    // At-most-once: the handler must not have run twice even though
    // the request was transmitted twice.
    EXPECT_EQ(rig.requestsServed, 1u);
    EXPECT_GE(rig.injector().retries().value("replayed_responses"), 1u);
}

TEST(ResilientMsg, SendReliableAcksOneWayMessages)
{
    FaultPlan plan;
    plan.msgDropRate = 1.0;
    plan.maxFaults = 1;
    Rig rig(plan);

    Message note;
    note.type = MsgType::FutexWake;
    note.from = 0;
    note.to = 1;
    note.arg2 = 1;
    // First transmission dropped; the Ack-based retry recovers it.
    EXPECT_EQ(rig.layer->sendReliable(note), Errc::Ok);
    EXPECT_EQ(rig.notesServed, 1u);
    EXPECT_EQ(rig.injector().retries().value("attempts"), 1u);
}

TEST(ResilientMsg, GiveUpAfterMaxAttemptsReturnsNullopt)
{
    FaultPlan plan;
    plan.msgDropRate = 1.0; // unbounded: every attempt dies
    Rig rig(plan);

    auto resp = rig.layer->tryRpc(rig.request(), MsgType::PageResponse);
    EXPECT_FALSE(resp.has_value());
    EXPECT_EQ(rig.requestsServed, 0u);
    const RpcPolicy &pol = rig.layer->rpcPolicy();
    EXPECT_EQ(rig.injector().retries().value("timeouts"),
              pol.maxAttempts);
    EXPECT_EQ(rig.injector().retries().value("gave_up"), 1u);
    // Errc streams symbolically ("unreachable", not a raw integer).
    Errc e = rig.layer->sendReliable(rig.request());
    EXPECT_EQ(e, Errc::Unreachable) << "sendReliable returned " << e;
}

TEST(ResilientMsg, DelayedDeliveryChargesTheReceiverClock)
{
    FaultPlan plan;
    plan.msgDelayRate = 1.0;
    plan.msgDelayCycles = 77777;
    plan.maxFaults = 1;
    Rig rig(plan);

    Cycles before = rig.machine->node(1).cycles();
    ASSERT_TRUE(rig.layer->tryRpc(rig.request(), MsgType::PageResponse));
    EXPECT_GE(rig.machine->node(1).cycles() - before, 77777u);
    EXPECT_EQ(rig.injector().faults().value("msg_delay"), 1u);
}

TEST(ResilientMsg, IpiLossSiteSwallowsTheInterrupt)
{
    FaultPlan plan;
    plan.ipiDropRate = 1.0;
    plan.maxFaults = 1;
    Rig rig(plan);

    EXPECT_EQ(rig.machine->sendIpi(0, 1), 0u);
    EXPECT_GT(rig.machine->sendIpi(0, 1), 0u); // budget spent
    EXPECT_EQ(rig.injector().faults().value("ipi_drop"), 1u);
}

TEST(ResilientMsg, ShmRingOverflowReturnsRingFull)
{
    // Satellite: a full ring is an error code and a stat, not a
    // panic. No fault plan needed — this is plain backpressure.
    MachineConfig mc = MachineConfig::paperPair(MemoryModel::Shared);
    Machine machine(mc);
    // A 64 KiB area across two directed rings leaves a handful of
    // 4 KiB + header slots per ring.
    ShmMessageLayer layer(
        machine, ShmMessageLayer::paperAreaBase(MemoryModel::Shared),
        64 * 1024, false);

    Message m;
    m.type = MsgType::PageRequest;
    m.from = 0;
    m.to = 1;
    Errc last = Errc::Ok;
    unsigned sent = 0;
    for (; sent < 64; ++sent) {
        last = layer.send(m);
        if (last != Errc::Ok)
            break;
    }
    EXPECT_EQ(last, Errc::RingFull);
    EXPECT_GT(sent, 0u);
    EXPECT_EQ(layer.stats().value("ring_full"), 1u);
}

TEST(ResilientMsg, FaultFreeWireTrafficIsUnchanged)
{
    // With no plan attached, the resilient layer must not add
    // messages, ids or checksums — Table 3 message counts depend on
    // it.
    MachineConfig mc = MachineConfig::paperPair(MemoryModel::Shared);
    Machine machine(mc);
    TcpMessageLayer layer(machine);
    Message m;
    m.type = MsgType::FutexWait;
    m.from = 0;
    m.to = 1;
    EXPECT_EQ(layer.send(m), Errc::Ok);
    auto out = layer.tryReceive(1);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->crc, 0u);
    EXPECT_EQ(out->rpcId, 0u);
    EXPECT_EQ(out->respondsTo, 0u);
    EXPECT_EQ(layer.messagesSent(), 1u);
}

TEST(DsmPageIntegrity, CorruptedPageResponseIsNeverInstalled)
{
    // Acceptance criterion: corruption injected into a PageResponse
    // payload must be caught by the CRC, retried, and never land in
    // guest memory.
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    FaultPlan plan;
    plan.seed = 5;
    plan.pageCorruptRate = 1.0;
    plan.maxFaults = 1;
    cfg.faultPlan = plan;
    System sys(cfg);
    App app(sys, 0);

    constexpr unsigned pages = 4;
    Addr buf = app.mmap(pages * pageSize);
    for (unsigned i = 0; i < pages; ++i)
        app.write<std::uint64_t>(buf + i * pageSize,
                                 0xfeed0000ull + i);

    app.migrateToNext();
    for (unsigned i = 0; i < pages; ++i) {
        EXPECT_EQ(app.read<std::uint64_t>(buf + i * pageSize),
                  0xfeed0000ull + i)
            << "page " << i << " content corrupted";
    }

    FaultInjector *fi = sys.machine().faultInjector();
    ASSERT_NE(fi, nullptr);
    EXPECT_EQ(fi->faults().value("page_corrupt"), 1u);
    EXPECT_EQ(sys.msg().stats().value("crc_dropped"), 1u);
    EXPECT_GE(fi->retries().value("attempts"), 1u);
}
