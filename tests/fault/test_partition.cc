/**
 * @file
 * Network-partition chaos suite: link-level fault injection,
 * split-brain fencing, and heal-time reconciliation.
 *
 * The contract under test, per OS design:
 *
 *  - FusedKernel: a severed *message* link cannot split the brain,
 *    because declarations arbitrate through a CAS on a fence word in
 *    coherent memory — zero messages, zero quorum probes — and the
 *    kv fast path (doorbells over coherent memory) serves straight
 *    through the partition.
 *
 *  - MultipleKernel (Popcorn): shared-nothing nodes fall back to a
 *    reachable-majority lease. The minority side self-fences into a
 *    frozen degraded mode — sheds new work with Errc::Degraded,
 *    preserves state — so no acknowledged write can ever be lost.
 *
 *  - Healing reuses the hot-plug/rejoin flow: partition-fenced dead
 *    nodes auto-rejoin, self-fenced nodes resume in place, and fence
 *    epochs decide whose declarations stand.
 *
 * Timing stays deterministic: a mid-run sever/heal schedule replays
 * bit-identically across host-thread counts, and a plan whose link
 * events never fire leaves every clock and counter untouched.
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "stramash/load/service.hh"
#include "stramash/sim/parallel_executor.hh"
#include "stramash/trace/json_stats.hh"
#include "stramash/workloads/npb.hh"
#include "stramash/workloads/sharded_kvstore.hh"

using namespace stramash;

namespace
{

constexpr std::uint64_t chaosSeeds[] = {3, 11, 29};

TopologySpec
nNodes(std::size_t n)
{
    return TopologySpec::alternating(n, MemoryModel::Shared);
}

std::uint64_t
partitionStat(System &sys, const std::string &name)
{
    return sys.machine().faultInjector()->partition().value(name);
}

/** Machine-level fingerprint: every per-node clock and counter a
 *  partition could possibly perturb. */
std::vector<std::uint64_t>
machineFingerprint(System &sys)
{
    std::vector<std::uint64_t> fp;
    Machine &m = sys.machine();
    for (NodeId n = 0; n < m.nodeCount(); ++n) {
        fp.push_back(m.node(n).cycles());
        fp.push_back(m.node(n).icount());
        fp.push_back(m.node(n).memCycles());
        fp.push_back(m.ipisReceived(n));
    }
    fp.push_back(sys.msg().messagesSent());
    fp.push_back(sys.msg().bytesSent());
    return fp;
}

} // namespace

// ---------------------------------------------------------------------
// Zero overhead: a link schedule whose events never fire must not
// perturb a single bit of the run. The baseline carries the same
// (empty) fault plan, because attaching *any* injector switches the
// transport into its documented at-most-once resilient mode — the
// link machinery itself must add nothing on top of that.
// ---------------------------------------------------------------------

TEST(Partition, UnfiredLinkScheduleIsBitIdenticalToEmptyPlan)
{
    auto runKv = [](const FaultPlan &plan, bool armed) {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::MultipleKernel;
        cfg.cachePluginEnabled = false;
        cfg.topology = nNodes(3);
        cfg.faultPlan = plan;
        auto sys = std::make_unique<System>(cfg);
        ShardedKvStore store(*sys);
        store.populate();
        store.run(400);
        EXPECT_TRUE(store.verify());
        EXPECT_EQ(sys->machine().partitionArmed(), armed);
        EXPECT_EQ(partitionStat(*sys, "links_severed"), 0u);
        EXPECT_EQ(partitionStat(*sys, "msgs_dropped_severed"), 0u);
        EXPECT_EQ(partitionStat(*sys, "msgs_parked"), 0u);
        EXPECT_EQ(partitionStat(*sys, "ipis_swallowed"), 0u);
        return machineFingerprint(*sys);
    };

    FaultPlan farFuture;
    farFuture.severLinkAt(0, 1, Cycles{1} << 62);
    EXPECT_EQ(runKv(FaultPlan{}, false), runKv(farFuture, true));
}

// ---------------------------------------------------------------------
// Fused split-brain arbitration: coherent memory, zero messages.
// ---------------------------------------------------------------------

TEST(Partition, FusedArbitrationIsMessageFree)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.crash.enabled = true;
    cfg.faultPlan = FaultPlan{};
    System sys(cfg);
    App app(sys, 0);
    CrashManager &cm = *sys.crashManager();

    std::uint64_t msgsBefore = sys.messagesSent();
    std::uint64_t probesBefore = cm.recovery().value("quorum_probes");

    sys.severLink(0, 1);
    cm.forceSuspicion(0, 1);

    // Exactly one side survives, and the declaration crossed no wire:
    // the fence word in coherent memory is the whole protocol.
    EXPECT_TRUE(cm.isDeclaredDead(1));
    EXPECT_FALSE(cm.isDeclaredDead(0));
    EXPECT_FALSE(cm.isSelfFenced(0));
    EXPECT_EQ(sys.messagesSent(), msgsBefore);
    EXPECT_EQ(cm.recovery().value("quorum_probes"), probesBefore);
    EXPECT_EQ(cm.recovery().value("fused_arbitrations"), 1u);
    EXPECT_EQ(cm.fenceEpoch(), 1u);
    EXPECT_EQ(partitionStat(sys, "links_severed"), 2u);

    // Healing the pair is the reboot signal for a partition-fenced
    // node: hot-plug rejoin, no explicit rejoinNode() needed.
    sys.healLink(0, 1);
    EXPECT_TRUE(sys.isNodeAlive(1));
    EXPECT_FALSE(cm.isDeclaredDead(1));
    EXPECT_EQ(cm.recovery().value("heal_rejoins"), 1u);
    EXPECT_EQ(partitionStat(sys, "links_healed"), 2u);

    // The revived node is fully usable.
    app.migrateTo(1);
    app.compute(10'000);
    EXPECT_EQ(app.where(), 1u);
}

// ---------------------------------------------------------------------
// Popcorn N=2 lease: the non-authority side self-fences, preserves
// state, sheds work, and resumes in place on heal.
// ---------------------------------------------------------------------

TEST(Partition, PopcornTwoNodeLeaseMinoritySelfFences)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    cfg.cachePluginEnabled = false;
    cfg.crash.enabled = true;
    // Quiet the background detector: arbitration in this test is
    // driven explicitly, so declarations cannot race the checks.
    cfg.crash.pingIntervalCycles = Cycles{1} << 60;
    cfg.faultPlan = FaultPlan{};
    System sys(cfg);
    ShardedKvStore store(sys);
    store.populate();
    store.run(64);
    ASSERT_TRUE(store.verify());
    CrashManager &cm = *sys.crashManager();

    sys.severLink(0, 1);
    // Node 1 suspects node 0. Its side of the 1:1 split does not hold
    // the lease authority (lowest live id), so it must freeze rather
    // than shoot.
    cm.forceSuspicion(1, 0);
    EXPECT_TRUE(cm.isSelfFenced(1));
    EXPECT_FALSE(cm.isDeclaredDead(0));
    EXPECT_FALSE(cm.isDeclaredDead(1));
    EXPECT_TRUE(sys.isNodeAlive(1));
    EXPECT_EQ(cm.recovery().value("self_fences"), 1u);

    // The fenced node sheds new work without touching its state.
    std::uint64_t servedBefore = store.requestsServed();
    EXPECT_EQ(store.exec(KvOp::Set, 1, 1), Errc::Degraded);
    EXPECT_EQ(store.exec(KvOp::Get, 1, 0), Errc::Degraded); // owner 1
    EXPECT_EQ(store.exec(KvOp::Get, 0, 0), Errc::Ok); // shard 0 local
    EXPECT_EQ(store.requestsServed(), servedBefore + 1);
    EXPECT_EQ(store.requestsShed(), 2u);

    // Heal: the self-fenced node resumes in place — no reboot, no
    // state loss — and nothing was declared while it was fenced.
    sys.healLink(0, 1);
    EXPECT_FALSE(cm.isSelfFenced(1));
    EXPECT_EQ(cm.recovery().value("self_fence_rejoins"), 1u);
    EXPECT_EQ(cm.recovery().value("epoch_yields"), 0u);
    EXPECT_EQ(store.exec(KvOp::Set, 1, 1), Errc::Ok);
    EXPECT_TRUE(store.verify());
}

TEST(Partition, PopcornTwoNodeLeaseAuthorityDeclares)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    cfg.crash.enabled = true;
    cfg.crash.pingIntervalCycles = Cycles{1} << 60;
    cfg.faultPlan = FaultPlan{};
    System sys(cfg);
    App app(sys, 0);
    CrashManager &cm = *sys.crashManager();

    sys.severLink(0, 1);
    // Node 0 holds the lease authority: when the lease expires the
    // peer is fenced — the historical STONITH outcome, now reached
    // through the arbitration layer.
    cm.forceSuspicion(0, 1);
    EXPECT_TRUE(cm.isDeclaredDead(1));
    EXPECT_FALSE(cm.isSelfFenced(0));
    EXPECT_EQ(cm.recovery().value("nodes_declared_dead"), 1u);
    EXPECT_EQ(cm.fenceEpoch(), 1u);

    // Partition-fenced, so the heal auto-rejoins it.
    sys.healLink(0, 1);
    EXPECT_TRUE(sys.isNodeAlive(1));
    EXPECT_FALSE(cm.isDeclaredDead(1));
    EXPECT_EQ(cm.recovery().value("heal_rejoins"), 1u);
}

// ---------------------------------------------------------------------
// Popcorn N=3: reachable-majority, with quorum votes restricted to
// the suspector's side of the split.
// ---------------------------------------------------------------------

TEST(Partition, PopcornIsolatedMinoritySelfFencesAndMajorityDeclares)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    cfg.cachePluginEnabled = false;
    cfg.topology = nNodes(3);
    cfg.crash.enabled = true;
    cfg.crash.pingIntervalCycles = Cycles{1} << 60;
    cfg.faultPlan = FaultPlan{};
    System sys(cfg);
    App app(sys, 0);
    CrashManager &cm = *sys.crashManager();

    // Isolate node 2 from both peers.
    sys.severLink(0, 2);
    sys.severLink(1, 2);

    // The isolated side (1 of 3 live) must freeze...
    cm.forceSuspicion(2, 0);
    EXPECT_TRUE(cm.isSelfFenced(2));
    EXPECT_FALSE(cm.isDeclaredDead(0));

    // ...and the majority side declares it, polling only the voters
    // it can reach (node 1) — no probe may cross the partition.
    std::uint64_t probesBefore = cm.recovery().value("quorum_probes");
    cm.forceSuspicion(0, 2);
    EXPECT_TRUE(cm.isDeclaredDead(2));
    EXPECT_EQ(cm.recovery().value("quorum_probes"), probesBefore + 1);

    // Healing both pairs brings it back through hot-plug; the epoch
    // advanced while it sat fenced, so its stale view yields.
    sys.healLink(0, 2);
    sys.healLink(1, 2);
    EXPECT_TRUE(sys.isNodeAlive(2));
    EXPECT_FALSE(cm.isDeclaredDead(2));
    EXPECT_EQ(cm.recovery().value("heal_rejoins"), 1u);

    // A false suspicion between the two connected survivors is still
    // outvoted the historical way.
    cm.forceSuspicion(0, 1);
    EXPECT_FALSE(cm.isDeclaredDead(1));
}

// ---------------------------------------------------------------------
// Sever mid-NPB (fused, 3 nodes): the run completes with fault-free
// checksums, exactly one side is fenced, and the heal rejoins it.
// ---------------------------------------------------------------------

namespace
{

struct NpbOutcome
{
    std::uint64_t checksum = 0;
    bool verified = false;
    std::uint64_t declared = 0;
    std::uint64_t healRejoins = 0;
    bool allAlive = true;
};

NpbOutcome
runNpbPartition(std::optional<FaultPlan> plan)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.topology = nNodes(3);
    cfg.faultPlan = plan;
    cfg.crash.enabled = plan.has_value();
    System sys(cfg);
    App app(sys, 0);
    NpbConfig nc;
    nc.iterations = 2;
    nc.problemBytes = 256 * 1024;
    nc.seed = 7;
    NpbResult r = makeNpbKernel("is")->run(app, nc);

    NpbOutcome out;
    out.checksum = r.checksum;
    out.verified = r.verified;
    if (CrashManager *cm = sys.crashManager()) {
        // Let the operation stream absorb a heal that fired near the
        // end of the run.
        for (unsigned i = 0; i < 50; ++i)
            app.compute(50'000);
        out.declared = cm->recovery().value("nodes_declared_dead");
        out.healRejoins = cm->recovery().value("heal_rejoins");
    }
    for (NodeId n = 0; n < sys.nodeCount(); ++n)
        out.allAlive = out.allAlive && sys.isNodeAlive(n);
    return out;
}

} // namespace

TEST(Partition, SeverMidNpbFusedFencesOneSideAndHealRejoins)
{
    NpbOutcome baseline = runNpbPartition(std::nullopt);
    ASSERT_TRUE(baseline.verified);

    // Find the fault-free span of node 0's clock to aim the schedule.
    Cycles span = 0;
    {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        cfg.topology = nNodes(3);
        System sys(cfg);
        App app(sys, 0);
        NpbConfig nc;
        nc.iterations = 2;
        nc.problemBytes = 256 * 1024;
        nc.seed = 7;
        makeNpbKernel("is")->run(app, nc);
        span = sys.machine().node(0).cycles();
    }
    ASSERT_GT(span, 0u);

    for (std::uint64_t seed : chaosSeeds) {
        FaultPlan plan;
        plan.seed = seed;
        plan.severLinkAt(0, 1, span * (20 + seed) / 100);
        plan.healLinkAt(0, 1, span * (70 + seed) / 100);
        NpbOutcome out = runNpbPartition(plan);
        EXPECT_TRUE(out.verified) << "seed " << seed;
        EXPECT_EQ(out.checksum, baseline.checksum) << "seed " << seed;
        // Split-brain-safe: the severed pair produced exactly one
        // declaration (never two), and the heal brought the victim
        // back.
        EXPECT_EQ(out.declared, 1u) << "seed " << seed;
        EXPECT_EQ(out.healRejoins, 1u) << "seed " << seed;
        EXPECT_TRUE(out.allAlive) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Sharded kv under partition.
// ---------------------------------------------------------------------

TEST(Partition, FusedKvServesStraightThroughASeveredLink)
{
    // The fused design's doorbell path rides coherent memory; a
    // severed message link costs it nothing but the wakeup IPIs.
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.cachePluginEnabled = false;
    cfg.topology = nNodes(3);
    cfg.faultPlan = FaultPlan{};
    System sys(cfg);
    ShardedKvStore store(sys);
    store.populate();

    store.run(200);
    sys.severLink(0, 1);
    store.run(200);
    sys.healLink(0, 1);
    store.run(200);

    EXPECT_TRUE(store.verify());
    EXPECT_EQ(store.requestsServed(), 600u);
    EXPECT_EQ(store.requestsShed(), 0u);
    EXPECT_GT(partitionStat(sys, "ipis_swallowed"), 0u);
}

TEST(Partition, PopcornKvShedsOnFencedShardWithZeroAckedWriteLoss)
{
    for (std::uint64_t seed : chaosSeeds) {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::MultipleKernel;
        cfg.cachePluginEnabled = false;
        cfg.topology = nNodes(3);
        cfg.crash.enabled = true;
        cfg.crash.pingIntervalCycles = Cycles{1} << 60;
        cfg.faultPlan = FaultPlan{};
        System sys(cfg);
        ShardedKvConfig kc;
        kc.seed = seed;
        ShardedKvStore store(sys, kc);
        store.populate();
        CrashManager &cm = *sys.crashManager();

        store.run(300);
        ASSERT_TRUE(store.verify()) << "seed " << seed;

        // Isolate node 2 mid-run; it fences itself on its first
        // suspicion.
        sys.severLink(0, 2);
        sys.severLink(1, 2);
        cm.forceSuspicion(2, 0);
        ASSERT_TRUE(cm.isSelfFenced(2)) << "seed " << seed;

        std::uint64_t servedBefore = store.requestsServed();
        store.run(300);
        // Requests touching the fenced shard (ingress or owner) were
        // refused before any acknowledgement; the rest were served.
        std::uint64_t shed = store.requestsShed();
        EXPECT_GT(shed, 0u) << "seed " << seed;
        EXPECT_EQ(store.requestsServed() - servedBefore + shed, 300u)
            << "seed " << seed;

        // Heal and resume: the fenced node kept its state, so the
        // full keyspace — including every write acknowledged before
        // and during the partition — verifies bit-exact.
        sys.healLink(0, 2);
        sys.healLink(1, 2);
        EXPECT_FALSE(cm.isSelfFenced(2)) << "seed " << seed;
        store.run(300);
        EXPECT_EQ(store.requestsShed(), shed) << "seed " << seed;
        EXPECT_TRUE(store.verify()) << "seed " << seed;
    }
}

TEST(Partition, FrontEndShedsAtTheSocketWhileFencedAndResumesOnHeal)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    cfg.cachePluginEnabled = false;
    cfg.topology = nNodes(3);
    cfg.crash.enabled = true;
    cfg.crash.pingIntervalCycles = Cycles{1} << 60;
    cfg.faultPlan = FaultPlan{};
    System sys(cfg);
    ShardedKvStore store(sys);
    store.populate();
    KvFrontEnd fe(sys, store);
    CrashManager &cm = *sys.crashManager();

    Cycles arrival = 0;
    auto offer = [&](std::uint64_t key, NodeId ingress) {
        arrival += 10'000;
        return fe.inject(arrival, KvOp::Set, key, ingress);
    };

    for (std::uint64_t k = 0; k < 9; ++k)
        EXPECT_EQ(offer(k, static_cast<NodeId>(k % 3)), Errc::Ok);
    fe.drain();
    EXPECT_EQ(fe.stats().value("served"), 9u);

    sys.severLink(0, 2);
    sys.severLink(1, 2);
    cm.forceSuspicion(2, 0);
    ASSERT_TRUE(cm.isSelfFenced(2));

    // A fenced ingress refuses at the socket — the request is never
    // queued, so nothing can be acknowledged and then lost.
    EXPECT_EQ(offer(0, 2), Errc::Degraded);
    EXPECT_EQ(fe.queueDepth(2), 0u);
    EXPECT_EQ(fe.stats().value("degraded_shed"), 1u);

    // A healthy ingress still admits a request for the fenced shard;
    // the shed happens at serve time, with no latency sample taken.
    EXPECT_EQ(offer(2, 0), Errc::Ok); // key 2 -> owner 2
    EXPECT_EQ(offer(1, 1), Errc::Ok); // key 1 -> owner 1, healthy
    fe.drain();
    EXPECT_EQ(fe.stats().value("degraded_shed"), 2u);
    EXPECT_EQ(fe.stats().value("served"), 10u);

    // Heal: the fenced node resumes and the front end serves its
    // shard again.
    sys.healLink(0, 2);
    sys.healLink(1, 2);
    EXPECT_FALSE(cm.isSelfFenced(2));
    EXPECT_EQ(offer(2, 2), Errc::Ok);
    fe.drain();
    EXPECT_EQ(fe.stats().value("served"), 11u);
    EXPECT_EQ(fe.stats().value("degraded_shed"), 2u);
    EXPECT_TRUE(store.verify());
}

// ---------------------------------------------------------------------
// Determinism: a scheduled sever/heal replays bit-identically across
// host-thread counts.
// ---------------------------------------------------------------------

namespace
{

std::string
statsString(System &sys)
{
    JsonStatsExporter ex;
    sys.forEachStatGroup([&](const StatGroup &g) { ex.add(g); });
    std::ostringstream os;
    ex.write(os);
    return os.str();
}

struct KvParallelOutcome
{
    bool verified = false;
    std::uint64_t served = 0;
    std::uint64_t severed = 0;
    std::uint64_t healed = 0;
    std::vector<std::uint64_t> machine;
    std::string statsJson;

    bool
    operator==(const KvParallelOutcome &o) const
    {
        return verified == o.verified && served == o.served &&
               severed == o.severed && healed == o.healed &&
               machine == o.machine && statsJson == o.statsJson;
    }
};

KvParallelOutcome
runParallelPartition(unsigned threads, const FaultPlan &plan)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.cachePluginEnabled = false;
    cfg.topology = nNodes(4);
    cfg.hostThreads = threads;
    cfg.faultPlan = plan;
    System sys(cfg);
    ShardedKvStore store(sys);
    store.populate();
    store.runParallel(1200, sys.hostExecutor());

    KvParallelOutcome out;
    out.verified = store.verify();
    out.served = store.requestsServed();
    out.severed = partitionStat(sys, "links_severed");
    out.healed = partitionStat(sys, "links_healed");
    out.machine = machineFingerprint(sys);
    out.statsJson = statsString(sys);
    return out;
}

} // namespace

TEST(Partition, SeverHealScheduleIsBitIdenticalAcrossHostThreads)
{
    // Probe the fault-free span to place the events mid-run.
    Cycles span = 0;
    {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        cfg.cachePluginEnabled = false;
        cfg.topology = nNodes(4);
        System sys(cfg);
        ShardedKvStore store(sys);
        store.populate();
        store.runParallel(1200, sys.hostExecutor());
        span = sys.machine().node(0).cycles();
    }
    ASSERT_GT(span, 0u);

    FaultPlan plan;
    plan.severLinkAt(0, 1, span / 3);
    plan.healLinkAt(0, 1, 2 * span / 3);
    ASSERT_TRUE(plan.linkScheduleParallelSafe());

    KvParallelOutcome ref = runParallelPartition(1, plan);
    ASSERT_TRUE(ref.verified);
    ASSERT_EQ(ref.served, 1200u);
    EXPECT_EQ(ref.severed, 2u);
    EXPECT_EQ(ref.healed, 2u);
    for (unsigned threads : {2u, 4u}) {
        KvParallelOutcome par = runParallelPartition(threads, plan);
        EXPECT_TRUE(par == ref) << threads << " threads";
    }
}

// ---------------------------------------------------------------------
// Regression: a node slandered before its death must come back from
// rejoin with a clean detector — both its column AND its own rows.
// ---------------------------------------------------------------------

TEST(Partition, SlanderedThenRejoinedNodeStartsWithCleanDetector)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.topology = nNodes(3);
    cfg.crash.enabled = true;
    System sys(cfg);
    App app(sys, 0);
    CrashManager &cm = *sys.crashManager();

    // Node 1 has been accumulating (unfounded) suspicion of node 0 —
    // one miss short of a declaration — when it dies and is fenced.
    cm.setSuspicion(1, 0, cfg.crash.suspicionThreshold - 1);
    sys.killNode(1);
    cm.forceSuspicion(0, 1);
    ASSERT_TRUE(cm.isDeclaredDead(1));

    // The reboot wipes its memory: pre-crash slander must not
    // survive into the fresh kernel, or its very next heartbeat miss
    // would re-declare a healthy peer.
    sys.rejoinNode(1);
    EXPECT_EQ(cm.suspicionOf(1, 0), 0u);
    EXPECT_EQ(cm.suspicionOf(0, 1), 0u);
    app.migrateTo(1);
    app.compute(10'000);
    EXPECT_FALSE(cm.isDeclaredDead(0));
    EXPECT_FALSE(cm.isDeclaredDead(1));
}

// ---------------------------------------------------------------------
// Link impairment plumbing: lossy draws and delayed parking.
// ---------------------------------------------------------------------

TEST(Partition, LossyLinkDropsByRateAndDelayedLinkParks)
{
    FaultPlan plan;
    plan.linkLossRate = 1.0; // every draw drops while lossy
    MachineConfig mc = MachineConfig::paperPair(MemoryModel::Shared);
    mc.faultPlan = plan;
    Machine machine(mc);
    TcpMessageLayer layer(machine);
    unsigned delivered = 0;
    layer.registerHandler(1, [&](const Message &) { ++delivered; });
    layer.registerHandler(0, [](const Message &) {});

    Message m;
    m.type = MsgType::PageRequest;
    m.from = 0;
    m.to = 1;

    machine.setLinkState(0, 1, LinkState::Lossy);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(layer.send(m), Errc::Ok);
    layer.dispatchPending(1);
    EXPECT_EQ(delivered, 0u);
    EXPECT_EQ(machine.faultInjector()->faults().value("link_loss"), 8u);

    // Delayed: messages park until the *receiver's* clock passes the
    // release point — a sustained delay, not a one-shot stall.
    machine.setLinkState(0, 1, LinkState::Delayed);
    EXPECT_EQ(layer.send(m), Errc::Ok);
    layer.dispatchPending(1);
    EXPECT_EQ(delivered, 0u);
    EXPECT_EQ(
        machine.faultInjector()->partition().value("msgs_parked"), 1u);

    machine.stall(1, plan.linkDelayCycles + 1);
    layer.dispatchPending(1);
    EXPECT_EQ(delivered, 1u);

    // Back to Up: messages flow normally again.
    machine.setLinkState(0, 1, LinkState::Up);
    EXPECT_EQ(layer.send(m), Errc::Ok);
    layer.dispatchPending(1);
    EXPECT_EQ(delivered, 2u);
}
