#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "stramash/workloads/kvstore.hh"
#include "stramash/workloads/npb.hh"

using namespace stramash;

namespace
{

/**
 * The chaos harness: replay a real workload under a transient fault
 * plan and insist it converges to the *same functional end state* as
 * the fault-free run. The plans are deterministic (seeded PCG
 * streams) and bounded (maxFaults), so transient faults must always
 * heal: retries recover drops, CRC catches corruption, and the fault
 * budget guarantees a quiet tail.
 */

constexpr std::uint64_t chaosSeeds[] = {3, 11, 29};

struct Outcome
{
    std::uint64_t checksum = 0;
    bool verified = false;
    Cycles runtime = 0;
    std::uint64_t messages = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t retryAttempts = 0;
};

Outcome
runNpb(OsDesign design, std::optional<FaultPlan> plan,
       const std::string &kernel = "is")
{
    SystemConfig cfg;
    cfg.osDesign = design;
    cfg.faultPlan = plan;
    System sys(cfg);
    App app(sys, 0);
    NpbConfig nc;
    nc.iterations = 2;
    nc.problemBytes = 256 * 1024;
    nc.seed = 7;
    NpbResult r = makeNpbKernel(kernel)->run(app, nc);

    Outcome out;
    out.checksum = r.checksum;
    out.verified = r.verified;
    out.runtime = sys.runtime();
    out.messages = sys.messagesSent();
    if (FaultInjector *fi = sys.machine().faultInjector()) {
        out.faultsInjected = fi->faults().value("injected");
        out.retryAttempts = fi->retries().value("attempts");
    }
    return out;
}

} // namespace

TEST(ChaosNpb, PopcornConvergesToFaultFreeResultAcrossSeeds)
{
    Outcome baseline = runNpb(OsDesign::MultipleKernel, std::nullopt);
    ASSERT_TRUE(baseline.verified);

    for (std::uint64_t seed : chaosSeeds) {
        Outcome chaos = runNpb(OsDesign::MultipleKernel,
                               FaultPlan::transientChaos(seed));
        EXPECT_TRUE(chaos.verified) << "seed " << seed;
        EXPECT_EQ(chaos.checksum, baseline.checksum)
            << "seed " << seed;
        EXPECT_GT(chaos.faultsInjected, 0u) << "seed " << seed;
        EXPECT_GT(chaos.retryAttempts, 0u) << "seed " << seed;
    }
}

TEST(ChaosNpb, FusedDesignConvergesUnderAggressiveChaos)
{
    Outcome baseline = runNpb(OsDesign::FusedKernel, std::nullopt);
    ASSERT_TRUE(baseline.verified);

    for (std::uint64_t seed : chaosSeeds) {
        // The fused design exchanges far fewer messages, so push the
        // rates up to make the plan bite.
        Outcome chaos = runNpb(OsDesign::FusedKernel,
                               FaultPlan::transientChaos(seed, 0.3, 24));
        EXPECT_TRUE(chaos.verified) << "seed " << seed;
        EXPECT_EQ(chaos.checksum, baseline.checksum)
            << "seed " << seed;
        EXPECT_GT(chaos.faultsInjected, 0u) << "seed " << seed;
    }
}

TEST(ChaosNpb, SameSeedReproducesBitForBit)
{
    FaultPlan plan = FaultPlan::transientChaos(chaosSeeds[0]);
    Outcome a = runNpb(OsDesign::MultipleKernel, plan);
    Outcome b = runNpb(OsDesign::MultipleKernel, plan);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.retryAttempts, b.retryAttempts);
}

TEST(ChaosKvstore, RemoteServingKeepsEveryValueIntact)
{
    for (std::uint64_t seed : chaosSeeds) {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::MultipleKernel;
        cfg.cachePluginEnabled = false; // functional mode (§9.2.8)
        cfg.faultPlan = FaultPlan::transientChaos(seed);
        System sys(cfg);
        App app(sys, 0);
        KvStore store(app, 32, 256);
        store.populate();

        // Serve from the remote ISA: every request crosses the
        // chaotic messaging layer (socket forwarding + DSM).
        app.migrateToNext();
        std::vector<std::uint8_t> payload(256);
        for (std::uint64_t key = 0; key < 32; ++key) {
            for (std::size_t i = 0; i < payload.size(); ++i) {
                payload[i] = static_cast<std::uint8_t>(key + i);
            }
            store.exec(KvOp::Set, key, payload.data());
        }
        for (std::uint64_t key = 0; key < 32; ++key) {
            auto back = store.getValue(key);
            ASSERT_EQ(back.size(), payload.size());
            for (std::size_t i = 0; i < back.size(); ++i) {
                ASSERT_EQ(back[i],
                          static_cast<std::uint8_t>(key + i))
                    << "seed " << seed << " key " << key
                    << " byte " << i;
            }
        }
        EXPECT_GT(sys.machine().faultInjector()->injected(), 0u)
            << "seed " << seed;
    }
}

TEST(ChaosMigration, ProcessMigrationAbortsCleanlyAndEventuallyLands)
{
    for (std::uint64_t seed : chaosSeeds) {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::MultipleKernel;
        cfg.faultPlan = FaultPlan::transientChaos(seed, 0.2, 32);
        System sys(cfg);
        App app(sys, 0);

        constexpr unsigned pages = 8;
        Addr buf = app.mmap(pages * pageSize);
        for (unsigned i = 0; i < pages; ++i)
            app.write<std::uint64_t>(buf + i * pageSize,
                                     0xabcd0000ull + i);

        // An aborted attempt must leave the process fully usable at
        // the source; the bounded budget guarantees a later attempt
        // succeeds.
        unsigned attempts = 0;
        while (sys.whereIs(app.pid()) != 1) {
            ASSERT_LT(attempts++, 64u) << "seed " << seed;
            sys.migrateProcess(app.pid(), 1);
            for (unsigned i = 0; i < pages; ++i) {
                ASSERT_EQ(app.read<std::uint64_t>(buf + i * pageSize),
                          0xabcd0000ull + i)
                    << "seed " << seed << " after attempt "
                    << attempts;
            }
        }
        EXPECT_EQ(sys.whereIs(app.pid()), 1u);
        EXPECT_EQ(sys.kernel(1).task(app.pid()).origin, 1u);
        EXPECT_FALSE(sys.kernel(0).hasTask(app.pid()));
    }
}

TEST(ChaosMigration, ThreadPingPongUnderChaosKeepsDataCoherent)
{
    for (std::uint64_t seed : chaosSeeds) {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::MultipleKernel;
        cfg.faultPlan = FaultPlan::transientChaos(seed);
        System sys(cfg);
        App app(sys, 0);

        Addr buf = app.mmap(4 * pageSize);
        std::uint64_t expect = 0;
        for (unsigned round = 0; round < 6; ++round) {
            // migrate() may abort under chaos — the thread then just
            // keeps computing wherever it is.
            app.migrate(round % 2 ? 0 : 1);
            for (unsigned p = 0; p < 4; ++p) {
                Addr a = buf + p * pageSize;
                app.write<std::uint64_t>(
                    a, app.read<std::uint64_t>(a) + round + p);
            }
            expect += round;
        }
        for (unsigned p = 0; p < 4; ++p) {
            EXPECT_EQ(app.read<std::uint64_t>(buf + p * pageSize),
                      expect + 6 * p)
                << "seed " << seed << " page " << p;
        }
    }
}

TEST(ChaosTrace, InjectedFaultsAppearInTheChaosCategory)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    cfg.trace.enabled = true;
    cfg.faultPlan = FaultPlan::transientChaos(chaosSeeds[0]);
    System sys(cfg);
    App app(sys, 0);
    NpbConfig nc;
    nc.iterations = 1;
    nc.problemBytes = 64 * 1024;
    makeNpbKernel("is")->run(app, nc);

    ASSERT_GT(sys.machine().faultInjector()->injected(), 0u);
    std::uint64_t chaosEvents = 0;
    for (const auto &ev : sys.tracer().merged()) {
        if (ev.category == TraceCategory::Chaos)
            ++chaosEvents;
    }
    EXPECT_GE(chaosEvents,
              sys.machine().faultInjector()->injected());
}
