#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "stramash/common/units.hh"
#include "stramash/fused/global_alloc.hh"

using namespace stramash;

namespace
{

/**
 * Two kernels with the global allocator wired over the message layer
 * (the System arrangement), so MemBlockRequest negotiations really
 * travel as messages and can be denied, lost and retried.
 */
class AllocDegradationTest : public testing::Test
{
  protected:
    void
    build(std::optional<FaultPlan> plan)
    {
        MachineConfig mc =
            MachineConfig::paperPair(MemoryModel::Shared);
        mc.faultPlan = plan;
        machine_ = std::make_unique<Machine>(mc);
        layer_ = std::make_unique<TcpMessageLayer>(*machine_);
        k0_ = std::make_unique<KernelInstance>(*machine_, 0, *layer_);
        k1_ = std::make_unique<KernelInstance>(*machine_, 1, *layer_);
        layer_->registerHandler(
            0, [this](const Message &m) { k0_->pump(m); });
        layer_->registerHandler(
            1, [this](const Message &m) { k1_->pump(m); });
        GmaConfig cfg;
        cfg.blockSize = 256_MiB;
        gma_ = std::make_unique<GlobalMemoryAllocator>(
            *machine_, std::vector<KernelInstance *>{k0_.get(),
                                                     k1_.get()},
            cfg, std::vector<AddrRange>{}, layer_.get());
    }

    /** All pool blocks to k1, k0's pressure raised above k1's: the
     *  next onLowMemory(k0) must negotiate a block away from k1. */
    void
    forceNegotiation()
    {
        while (gma_->freeBlocks() > 0)
            ASSERT_TRUE(gma_->onLowMemory(*k1_));
        auto &pa = k0_->palloc();
        while (pa.pressure() < 0.75)
            ASSERT_TRUE(pa.allocPage().has_value());
    }

    std::unique_ptr<Machine> machine_;
    std::unique_ptr<TcpMessageLayer> layer_;
    std::unique_ptr<KernelInstance> k0_;
    std::unique_ptr<KernelInstance> k1_;
    std::unique_ptr<GlobalMemoryAllocator> gma_;
};

} // namespace

TEST_F(AllocDegradationTest, NegotiationMigratesBlockWithoutFaults)
{
    build(std::nullopt);
    forceNegotiation();
    EXPECT_TRUE(gma_->onLowMemory(*k0_));
    EXPECT_EQ(gma_->blocksOwnedBy(0), 1u);
    EXPECT_EQ(gma_->blocksOwnedBy(1), 15u);
    EXPECT_EQ(gma_->stats().value("blocks_migrated"), 1u);
    EXPECT_EQ(gma_->stats().value("negotiation_retries"), 0u);
}

TEST_F(AllocDegradationTest, TransientDenialIsRetriedThenGranted)
{
    FaultPlan plan;
    plan.memBlockDenyRate = 1.0;
    plan.maxFaults = 1;
    build(plan);
    forceNegotiation();

    EXPECT_TRUE(gma_->onLowMemory(*k0_));
    EXPECT_EQ(gma_->blocksOwnedBy(0), 1u);
    EXPECT_EQ(gma_->stats().value("negotiations_denied"), 1u);
    EXPECT_GE(gma_->stats().value("negotiation_retries"), 1u);
    EXPECT_EQ(gma_->stats().value("blocks_migrated"), 1u);
    EXPECT_EQ(gma_->stats().value("degraded_local"), 0u);
}

TEST_F(AllocDegradationTest, PersistentDenialDegradesToLocalMemory)
{
    FaultPlan plan;
    plan.memBlockDenyRate = 1.0; // unbounded
    build(plan);
    forceNegotiation();

    EXPECT_FALSE(gma_->onLowMemory(*k0_));
    EXPECT_EQ(gma_->blocksOwnedBy(0), 0u);
    EXPECT_EQ(gma_->blocksOwnedBy(1), 16u); // donor untouched
    const RpcPolicy &pol = layer_->rpcPolicy();
    EXPECT_EQ(gma_->stats().value("negotiations_denied"),
              pol.maxAttempts);
    EXPECT_EQ(gma_->stats().value("degraded_local"), 1u);
}

TEST_F(AllocDegradationTest, BackoffIsChargedToTheRequesterClock)
{
    FaultPlan plan;
    plan.memBlockDenyRate = 1.0;
    build(plan);
    forceNegotiation();

    Cycles before = machine_->node(0).cycles();
    EXPECT_FALSE(gma_->onLowMemory(*k0_));
    Cycles spent = machine_->node(0).cycles() - before;
    const RpcPolicy &pol = layer_->rpcPolicy();
    Cycles floor = 0;
    for (unsigned a = 1; a < pol.maxAttempts; ++a)
        floor += pol.backoffForAttempt(a);
    EXPECT_GE(spent, floor);
}

TEST_F(AllocDegradationTest, DonorWithOnlyLiveBlocksReportsNoMemory)
{
    build(std::nullopt);
    GmaConfig big;
    big.blockSize = 1_GiB; // 4 pool blocks: cheap to keep all live
    gma_ = std::make_unique<GlobalMemoryAllocator>(
        *machine_,
        std::vector<KernelInstance *>{k0_.get(), k1_.get()}, big,
        std::vector<AddrRange>{}, layer_.get());

    while (gma_->freeBlocks() > 0)
        ASSERT_TRUE(gma_->onLowMemory(*k1_));
    // Put at least one live frame into every k1 block so none can be
    // evacuated for free. Contiguous chunks sweep the address space
    // quickly; tracking them makes the liveness probe cheap.
    std::vector<AddrRange> chunks;
    auto blockIsLive = [&](const AddrRange &b) {
        for (const auto &c : chunks) {
            if (c.start < b.end && b.start < c.end)
                return true;
        }
        return false;
    };
    auto allLive = [&]() {
        for (const auto &b : gma_->ownedBlocks(1)) {
            if (!blockIsLive(b))
                return false;
        }
        return true;
    };
    while (!allLive()) {
        auto c = k1_->palloc().allocContiguous(8192); // 32 MiB
        ASSERT_TRUE(c.has_value());
        chunks.push_back(*c);
    }

    auto &pa = k0_->palloc();
    while (pa.pressure() <= k1_->palloc().pressure() ||
           pa.pressure() < 0.75)
        ASSERT_TRUE(pa.allocPage().has_value());

    // NoMemory is permanent for this donor: no retries, immediate
    // degradation.
    EXPECT_FALSE(gma_->onLowMemory(*k0_));
    EXPECT_EQ(gma_->stats().value("negotiation_retries"), 0u);
    EXPECT_EQ(gma_->stats().value("degraded_local"), 1u);
}

TEST_F(AllocDegradationTest, RequestBlockFromReturnsTypedVerdicts)
{
    build(std::nullopt);
    while (gma_->freeBlocks() > 0)
        ASSERT_TRUE(gma_->onLowMemory(*k1_));

    Result<AddrRange> got = gma_->requestBlockFrom(*k0_, *k1_);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().end - got.value().start, 256_MiB);
    // The donor offlined it; it is not yet onlined anywhere.
    EXPECT_EQ(gma_->blocksOwnedBy(1), 15u);
    EXPECT_EQ(gma_->freeBlocks(), 1u);
}
