/**
 * @file
 * Crash-stop failure, detection, and recovery mechanism tests: the
 * heartbeat detector, the frozen dead clock, scheduled crashes from a
 * FaultPlan, robust-futex sweeps (exactly-once wakes), global-
 * allocator reclamation, hot-plug rejoin, Popcorn task reaping and
 * DSM re-ownership — plus the zero-overhead guarantee when no crash
 * machinery is configured.
 */

#include <gtest/gtest.h>

#include <memory>

#include "stramash/workloads/npb.hh"

using namespace stramash;

namespace
{

/** Charge survivor-side work until @p node is declared dead (the
 *  detector runs from the guarded operation stream, so time must
 *  pass for the ping schedule and miss timeouts to play out). */
void
driveDetection(System &sys, App &app, NodeId node)
{
    CrashManager *cm = sys.crashManager();
    ASSERT_NE(cm, nullptr);
    for (unsigned i = 0; i < 400 && !cm->isDeclaredDead(node); ++i)
        app.compute(50'000);
    ASSERT_TRUE(cm->isDeclaredDead(node));
}

} // namespace

TEST(CrashDetection, HeartbeatMissesDeclareDeadAndFreezeTheClock)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.crash.enabled = true;
    System sys(cfg);
    App app(sys, 0);

    sys.killNode(1);
    Cycles frozen = sys.machine().node(1).cycles();
    EXPECT_FALSE(sys.isNodeAlive(1));

    CrashManager &cm = *sys.crashManager();
    EXPECT_FALSE(cm.isDeclaredDead(1)); // not yet noticed
    driveDetection(sys, app, 1);

    // Declaration took at least `suspicionThreshold` missed pings.
    EXPECT_GE(cm.recovery().value("heartbeat_misses"),
              cm.config().suspicionThreshold);
    EXPECT_EQ(cm.recovery().value("nodes_declared_dead"), 1u);
    EXPECT_EQ(cm.recovery().value("recoveries"), 1u);
    EXPECT_EQ(cm.recovery().value("manual_kills"), 1u);
    // The dead node's clock never advanced past the instant of death.
    EXPECT_EQ(sys.machine().node(1).cycles(), frozen);
}

TEST(CrashDetection, ScheduledCrashFiresAtTheConfiguredCycle)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    FaultPlan plan;
    plan.crashNode = 1;
    plan.crashAtCycle = 5'000'000;
    cfg.faultPlan = plan;
    System sys(cfg);
    App app(sys, 0);

    constexpr unsigned pages = 4;
    Addr buf = app.mmap(pages * pageSize);
    for (unsigned i = 0; i < pages; ++i)
        app.write<std::uint64_t>(buf + i * pageSize, 0xc0de00 + i);

    app.migrate(1);
    ASSERT_EQ(app.where(), 1u);
    ASSERT_TRUE(sys.isNodeAlive(1));

    // Burn cycles on the doomed node until its clock crosses the
    // scheduled crash point.
    for (unsigned i = 0; i < 2000 && sys.isNodeAlive(1); ++i)
        app.compute(50'000);
    ASSERT_FALSE(sys.isNodeAlive(1));
    EXPECT_GE(sys.machine().node(1).cycles(), plan.crashAtCycle);

    // The next user operation forces detection + recovery: the task
    // is re-homed to the survivor and its memory is intact.
    for (unsigned i = 0; i < pages; ++i) {
        EXPECT_EQ(app.read<std::uint64_t>(buf + i * pageSize),
                  0xc0de00 + i)
            << "page " << i;
    }
    EXPECT_EQ(app.where(), 0u);
    EXPECT_TRUE(sys.crashManager()->isDeclaredDead(1));
    EXPECT_GE(sys.crashManager()->recovery().value("tasks_rehomed"),
              1u);
}

TEST(CrashRecovery, FutexWaitersAreSweptExactlyOnce)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.crash.enabled = true;
    System sys(cfg);
    App a(sys, 0); // survives
    App b(sys, 1); // dies with its node

    // Seed the tables directly so the sweep's accounting is exact:
    //  - dead kernel's table: one surviving waiter (must be woken
    //    exactly once), one dead waiter (must be reaped);
    //  - surviving kernel's table: one dead waiter (must be reaped).
    constexpr Addr fA = 0x1000'0000;
    constexpr Addr fB = 0x2000'0000;
    KernelInstance &k0 = sys.kernel(0);
    KernelInstance &k1 = sys.kernel(1);
    k1.futexTable().enqueue(fA, {0, a.pid()});
    k1.futexTable().enqueue(fA, {1, b.pid()});
    k0.futexTable().enqueue(fB, {1, b.pid()});

    CrashManager &cm = *sys.crashManager();
    cm.killNow(1);
    cm.declareDead(1, 0);

    EXPECT_EQ(cm.recovery().value("futex_waiters_woken"), 1u);
    EXPECT_EQ(cm.recovery().value("futex_waiters_reaped"), 2u);
    EXPECT_EQ(k0.futexTable().activeFutexes(), 0u);
    EXPECT_EQ(k1.futexTable().activeFutexes(), 0u);
}

TEST(CrashRecovery, GmaReclaimsDeadNodeBlocksAndStaysBalanced)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.crash.enabled = true;
    System sys(cfg);
    App app(sys, 0);

    GlobalMemoryAllocator *gma = sys.globalAllocator();
    ASSERT_NE(gma, nullptr);
    std::size_t owned0 = gma->blocksOwnedBy(0);
    std::size_t owned1 = gma->blocksOwnedBy(1);
    std::size_t freeBefore = gma->freeBlocks();
    std::size_t total = freeBefore + owned0 + owned1;
    ASSERT_GT(freeBefore, 0u);

    // Grow the doomed kernel by one pool block, then crash it.
    ASSERT_TRUE(gma->onLowMemory(sys.kernel(1)));
    ASSERT_EQ(gma->blocksOwnedBy(1), owned1 + 1);

    CrashManager &cm = *sys.crashManager();
    cm.killNow(1);
    cm.declareDead(1, 0);

    // Every dead-owned block is back in the pool; the books balance.
    EXPECT_EQ(gma->blocksOwnedBy(1), 0u);
    EXPECT_EQ(cm.recovery().value("gma_blocks_reclaimed"), owned1 + 1);
    EXPECT_EQ(gma->freeBlocks() + gma->blocksOwnedBy(0), total);
}

TEST(CrashRecovery, KillRecoverRejoinLoopServesFreshWorkload)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::FusedKernel;
    cfg.crash.enabled = true;
    System sys(cfg);
    CrashManager &cm = *sys.crashManager();

    constexpr unsigned rounds = 3;
    for (unsigned round = 0; round < rounds; ++round) {
        // A fresh workload on the (re)joined node.
        App app(sys, 1);
        Addr buf = app.mmap(2 * pageSize);
        app.write<std::uint64_t>(buf, 0xbeef00 + round);
        app.write<std::uint64_t>(buf + pageSize, round);
        ASSERT_EQ(app.where(), 1u) << "round " << round;

        // Kill the node out from under it; the next operation forces
        // detection and the task is re-homed with its data.
        sys.killNode(1);
        EXPECT_EQ(app.read<std::uint64_t>(buf), 0xbeef00 + round)
            << "round " << round;
        EXPECT_EQ(app.read<std::uint64_t>(buf + pageSize), round);
        EXPECT_EQ(app.where(), 0u) << "round " << round;
        ASSERT_TRUE(cm.isDeclaredDead(1));

        // Hot-plug the node back: alive again, clock ahead of the
        // survivor's (reboot is not free), detector reset.
        sys.rejoinNode(1);
        EXPECT_TRUE(sys.isNodeAlive(1));
        EXPECT_FALSE(cm.isDeclaredDead(1));
        EXPECT_GT(sys.machine().node(1).cycles(),
                  sys.machine().node(0).cycles());
    }
    EXPECT_EQ(cm.recovery().value("rejoins"), rounds);
    EXPECT_EQ(cm.recovery().value("recoveries"), rounds);
    EXPECT_EQ(cm.recovery().value("nodes_declared_dead"), rounds);
}

TEST(CrashRecovery, PopcornReapsTasksOnTheDeadNodeWithExitStatus)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    cfg.crash.enabled = true;
    System sys(cfg);
    App a(sys, 0);
    App b(sys, 1);

    Addr abuf = a.mmap(pageSize);
    a.write<std::uint64_t>(abuf, 0xa11ce);
    Addr bbuf = b.mmap(pageSize);
    b.write<std::uint64_t>(bbuf, 0xb0b);

    sys.killNode(1);
    driveDetection(sys, a, 1);

    // Shared-nothing: b's kernel state is gone, so b is reaped with
    // a kill status; a is untouched.
    CrashManager &cm = *sys.crashManager();
    int status = 0;
    EXPECT_TRUE(cm.taskReaped(b.pid(), &status));
    EXPECT_EQ(status, 128 + 9);
    EXPECT_EQ(cm.recovery().value("tasks_reaped"), 1u);
    EXPECT_FALSE(cm.taskReaped(a.pid()));
    EXPECT_EQ(a.read<std::uint64_t>(abuf), 0xa11ceu);
    EXPECT_EQ(a.where(), 0u);
}

TEST(CrashRecovery, PopcornReownsDsmPagesFromSurvivingReplicas)
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    cfg.crash.enabled = true;
    System sys(cfg);
    App app(sys, 0);

    constexpr unsigned pages = 4;
    Addr buf = app.mmap(pages * pageSize);
    for (unsigned i = 0; i < pages; ++i)
        app.write<std::uint64_t>(buf + i * pageSize, 0xd5a00 + i);

    // Replicate every page onto node 1, then lose the origin.
    app.migrateToNext();
    ASSERT_EQ(app.where(), 1u);
    for (unsigned i = 0; i < pages; ++i)
        ASSERT_EQ(app.read<std::uint64_t>(buf + i * pageSize),
                  0xd5a00u + i);

    sys.killNode(0);
    driveDetection(sys, app, 0);

    CrashManager &cm = *sys.crashManager();
    EXPECT_GE(cm.recovery().value("dsm_pages_reowned"), pages);
    EXPECT_GE(cm.recovery().value("origins_rehomed"), 1u);
    EXPECT_EQ(sys.kernel(1).task(app.pid()).origin, 1u);
    // The replicated data survives the origin's death.
    for (unsigned i = 0; i < pages; ++i) {
        EXPECT_EQ(app.read<std::uint64_t>(buf + i * pageSize),
                  0xd5a00u + i)
            << "page " << i;
    }
}

TEST(CrashRecovery, NoCrashConfiguredMeansNoMachineryAndBitIdentity)
{
    // With neither a planned crash nor the detector enabled, the
    // System must not build any crash machinery — and two identical
    // runs must be bit-identical (the guard is one null test).
    auto run = [] {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::FusedKernel;
        System sys(cfg);
        EXPECT_EQ(sys.crashManager(), nullptr);
        EXPECT_EQ(sys.machine().faultInjector(), nullptr);
        App app(sys, 0);
        NpbConfig nc;
        nc.iterations = 1;
        nc.problemBytes = 64 * 1024;
        NpbResult r = makeNpbKernel("is")->run(app, nc);
        EXPECT_TRUE(r.verified);
        return std::tuple(r.checksum, sys.runtime(),
                          sys.messagesSent());
    };
    EXPECT_EQ(run(), run());
}
