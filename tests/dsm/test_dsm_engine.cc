#include <gtest/gtest.h>

#include "stramash/core/app.hh"

using namespace stramash;

namespace
{

class DsmTest : public testing::Test
{
  protected:
    DsmTest()
    {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::MultipleKernel;
        cfg.memoryModel = MemoryModel::Shared;
        cfg.transport = Transport::SharedMemory;
        sys_ = std::make_unique<System>(cfg);
        app_ = std::make_unique<App>(*sys_, 0);
        buf_ = app_->mmap(64 * pageSize);
    }

    DsmEngine &engine() { return *sys_->dsmEngine(); }

    std::unique_ptr<System> sys_;
    std::unique_ptr<App> app_;
    Addr buf_ = 0;
};

} // namespace

TEST_F(DsmTest, OriginFirstTouchHasNoMessages)
{
    app_->write<std::uint64_t>(buf_, 1);
    EXPECT_EQ(sys_->messagesSent(), 0u);
    EXPECT_EQ(engine().replicatedPages(), 0u);
}

TEST_F(DsmTest, RemoteReadReplicatesPage)
{
    app_->write<std::uint64_t>(buf_, 0x1234);
    app_->migrateToNext();
    auto msgsBefore = sys_->messagesSent();
    EXPECT_EQ(app_->read<std::uint64_t>(buf_), 0x1234u);
    EXPECT_EQ(engine().replicatedPages(), 1u);
    // VMA round + replication round (the page already exists at the
    // origin, so no allocation round).
    EXPECT_EQ(sys_->messagesSent() - msgsBefore, 4u);
    // The replica is local: both kernels now map the page.
    EXPECT_TRUE(engine().isManaged(app_->pid(), buf_));
}

TEST_F(DsmTest, FreshRemoteTouchCostsAllocationRound)
{
    app_->migrateToNext();
    auto msgsBefore = sys_->messagesSent();
    app_->write<std::uint64_t>(buf_, 5);
    // VMA round + allocation round + replication round.
    EXPECT_EQ(sys_->messagesSent() - msgsBefore, 6u);
    EXPECT_EQ(engine().replicatedPages(), 1u);
}

TEST_F(DsmTest, SecondAccessToReplicaIsFree)
{
    app_->write<std::uint64_t>(buf_, 9);
    app_->migrateToNext();
    app_->read<std::uint64_t>(buf_);
    auto msgs = sys_->messagesSent();
    auto repl = engine().replicatedPages();
    // Warm accesses to the replicated page: no protocol traffic.
    for (int i = 0; i < 100; ++i)
        app_->read<std::uint64_t>(buf_ + 8 * i);
    EXPECT_EQ(sys_->messagesSent(), msgs);
    EXPECT_EQ(engine().replicatedPages(), repl);
}

TEST_F(DsmTest, WriteUpgradeInvalidatesOtherCopy)
{
    app_->write<std::uint64_t>(buf_, 10); // origin owns, RW
    app_->migrateToNext();
    app_->read<std::uint64_t>(buf_); // remote RO replica
    auto inv = engine().invalidations();
    app_->write<std::uint64_t>(buf_, 20); // remote upgrade
    EXPECT_GT(engine().invalidations(), inv);
    // Migrate home: the origin's copy was invalidated, so its read
    // must re-fetch — and see the new value.
    app_->migrateToNext();
    EXPECT_EQ(app_->read<std::uint64_t>(buf_), 20u);
}

TEST_F(DsmTest, OwnershipPingPong)
{
    // Alternating writers force repeated ownership transfers while
    // values stay coherent.
    for (int round = 0; round < 4; ++round) {
        app_->write<std::uint64_t>(buf_,
                                   static_cast<std::uint64_t>(round));
        app_->migrateToNext();
        EXPECT_EQ(app_->read<std::uint64_t>(buf_),
                  static_cast<std::uint64_t>(round));
        app_->write<std::uint64_t>(buf_, round + 100u);
        app_->migrateToNext();
        EXPECT_EQ(app_->read<std::uint64_t>(buf_), round + 100u);
    }
}

TEST_F(DsmTest, RemoteVmaFetchedOnce)
{
    app_->migrateToNext();
    app_->write<std::uint64_t>(buf_, 1);
    auto vmaMsgs = sys_->msg().stats().value("sent.vma_request");
    EXPECT_EQ(vmaMsgs, 1u);
    // Faulting other pages in the same VMA needs no new VMA round.
    app_->write<std::uint64_t>(buf_ + pageSize, 1);
    EXPECT_EQ(sys_->msg().stats().value("sent.vma_request"), 1u);
}

TEST_F(DsmTest, DistinctPagesReplicateIndependently)
{
    for (int p = 0; p < 8; ++p)
        app_->write<std::uint64_t>(buf_ + Addr{4096} * p, p);
    app_->migrateToNext();
    for (int p = 0; p < 8; ++p) {
        EXPECT_EQ(app_->read<std::uint64_t>(buf_ + Addr{4096} * p),
                  static_cast<std::uint64_t>(p));
    }
    EXPECT_EQ(engine().replicatedPages(), 8u);
}

TEST_F(DsmTest, ReadSharingKeepsBothCopiesReadable)
{
    app_->write<std::uint64_t>(buf_, 0x42);
    app_->migrateToNext();
    EXPECT_EQ(app_->read<std::uint64_t>(buf_), 0x42u);
    app_->migrateToNext(); // back home
    // The origin kept its RO copy: no new replication needed.
    auto repl = engine().replicatedPages();
    EXPECT_EQ(app_->read<std::uint64_t>(buf_), 0x42u);
    EXPECT_EQ(engine().replicatedPages(), repl);
}

TEST_F(DsmTest, ForgetTaskClearsState)
{
    app_->write<std::uint64_t>(buf_, 1);
    app_->migrateToNext();
    app_->read<std::uint64_t>(buf_);
    Pid pid = app_->pid();
    EXPECT_TRUE(engine().isManaged(pid, buf_));
    app_.reset(); // exits the task on both kernels
    EXPECT_FALSE(engine().isManaged(pid, buf_));
}

TEST_F(DsmTest, PayloadContentTravelsCorrectly)
{
    // Fill a page with a pattern at the origin, verify remotely.
    std::vector<std::uint8_t> pattern(pageSize);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::uint8_t>((i * 31) ^ 0x5a);
    app_->writeBuf(buf_, pattern.data(), pattern.size());
    app_->migrateToNext();
    std::vector<std::uint8_t> back(pageSize);
    app_->readBuf(buf_, back.data(), back.size());
    EXPECT_EQ(back, pattern);
}
