#include <gtest/gtest.h>

#include "stramash/core/app.hh"

using namespace stramash;

namespace
{

class PopcornTest : public testing::Test
{
  protected:
    PopcornTest()
    {
        SystemConfig cfg;
        cfg.osDesign = OsDesign::MultipleKernel;
        cfg.memoryModel = MemoryModel::Shared;
        cfg.transport = Transport::SharedMemory;
        sys_ = std::make_unique<System>(cfg);
    }

    std::unique_ptr<System> sys_;
};

} // namespace

TEST_F(PopcornTest, MigrationMovesTaskAndState)
{
    App app(*sys_, 0);
    EXPECT_EQ(app.where(), 0u);
    Task &originTask = sys_->kernel(0).task(app.pid());
    originTask.state.args[0] = 0xabcdef;

    auto msgs = sys_->messagesSent();
    app.migrate(1);
    EXPECT_EQ(app.where(), 1u);
    // Exactly one migration message, carrying the transformed state.
    EXPECT_EQ(sys_->messagesSent() - msgs, 1u);
    ASSERT_TRUE(sys_->kernel(1).hasTask(app.pid()));
    EXPECT_EQ(sys_->kernel(1).task(app.pid()).state.args[0],
              0xabcdefu);
    EXPECT_EQ(sys_->kernel(1).stats().value("migrations_in"), 1u);
}

TEST_F(PopcornTest, MigrateToSameNodeIsNoop)
{
    App app(*sys_, 0);
    auto msgs = sys_->messagesSent();
    app.migrate(0);
    EXPECT_EQ(sys_->messagesSent(), msgs);
}

TEST_F(PopcornTest, RemoteTaskKeepsOwnAddressSpaceFormat)
{
    App app(*sys_, 0);
    app.migrate(1);
    // x86 origin, Arm remote: each kernel's page table is in its own
    // ISA format.
    EXPECT_EQ(sys_->kernel(0)
                  .task(app.pid())
                  .as->pageTable()
                  .format()
                  .isa(),
              IsaType::X86_64);
    EXPECT_EQ(sys_->kernel(1)
                  .task(app.pid())
                  .as->pageTable()
                  .format()
                  .isa(),
              IsaType::AArch64);
}

TEST_F(PopcornTest, FutexLocalWaitWake)
{
    App app(*sys_, 0);
    Addr page = app.mmap(pageSize);
    app.write<std::uint32_t>(page, 1);

    // Wait with matching value blocks (enqueues).
    EXPECT_TRUE(app.futexWait(page, 1));
    EXPECT_EQ(sys_->kernel(0).futexTable().waiters(page), 1u);
    // Wait with stale value refuses.
    EXPECT_FALSE(app.futexWait(page, 2));
    // Wake releases the queued waiter.
    EXPECT_EQ(app.futexWake(page, 1), 1u);
    EXPECT_EQ(sys_->kernel(0).futexTable().waiters(page), 0u);
}

TEST_F(PopcornTest, RemoteFutexGoesThroughOrigin)
{
    App app(*sys_, 0);
    Addr page = app.mmap(pageSize);
    app.write<std::uint32_t>(page, 7);
    app.migrate(1);

    auto msgs = sys_->messagesSent();
    EXPECT_TRUE(app.futexWait(page, 7));
    // Remote wait = request + response through the origin.
    EXPECT_GE(sys_->messagesSent() - msgs, 2u);
    // The waiter was parked at the *origin's* futex table.
    EXPECT_EQ(sys_->kernel(0).futexTable().waiters(page), 1u);

    msgs = sys_->messagesSent();
    EXPECT_EQ(app.futexWake(page, 1), 1u);
    EXPECT_GE(sys_->messagesSent() - msgs, 2u);
}

TEST_F(PopcornTest, WakeNotifiesRemoteWaiter)
{
    App app(*sys_, 0);
    Addr page = app.mmap(pageSize);
    app.write<std::uint32_t>(page, 3);

    // Park a waiter from the remote side.
    app.migrate(1);
    EXPECT_TRUE(app.futexWait(page, 3));
    app.migrate(0);

    // Origin wakes: a notification message reaches the remote node.
    auto notesBefore = sys_->kernel(1).stats().value(
        "futex_wakeups_delivered");
    EXPECT_EQ(app.futexWake(page, 1), 1u);
    EXPECT_EQ(sys_->kernel(1).stats().value(
                  "futex_wakeups_delivered"),
              notesBefore + 1);
}

TEST_F(PopcornTest, NamespacesAreDistinctAcrossKernels)
{
    // Shared-nothing baseline: each kernel has its own namespaces.
    EXPECT_NE(sys_->kernel(0).namespaces().pidNs,
              sys_->kernel(1).namespaces().pidNs);
    EXPECT_FALSE(sys_->kernel(0).namespaces() ==
                 sys_->kernel(1).namespaces());
}

TEST_F(PopcornTest, TransformCostChargedOnBothSides)
{
    App app(*sys_, 0);
    Cycles x86Before = sys_->machine().node(0).cycles();
    Cycles armBefore = sys_->machine().node(1).cycles();
    app.migrate(1);
    EXPECT_GE(sys_->machine().node(0).cycles() - x86Before,
              PopcornMigrationPolicy::transformCycles);
    EXPECT_GE(sys_->machine().node(1).cycles() - armBefore,
              PopcornMigrationPolicy::transformCycles);
}

TEST_F(PopcornTest, WhereIsTracksCurrentNode)
{
    App app(*sys_, 0);
    EXPECT_EQ(sys_->whereIs(app.pid()), 0u);
    app.migrate(1);
    EXPECT_EQ(sys_->whereIs(app.pid()), 1u);
    app.migrate(0);
    EXPECT_EQ(sys_->whereIs(app.pid()), 0u);
}
