#include <gtest/gtest.h>

#include "stramash/core/app.hh"

using namespace stramash;

namespace
{

/** System with a tiny L3 so dirty evictions are easy to provoke. */
std::unique_ptr<System>
tinyCacheSystem()
{
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    cfg.memoryModel = MemoryModel::Shared;
    cfg.l3Size = 128 * 1024;
    return std::make_unique<System>(cfg);
}

} // namespace

TEST(WritebackInterplay, DirtyEvictionOnReplicatedPageTriggersAction)
{
    auto sys = tinyCacheSystem();
    App app(*sys, 0);
    Addr buf = app.mmap(256 * pageSize);

    // Origin dirties a page (lines become Modified in its caches),
    // the remote replicates it: the page is now read-shared while
    // the origin still holds the dirty lines.
    for (Addr a = 0; a < pageSize; a += cacheLineSize)
        app.write<std::uint64_t>(buf + a, a);
    app.migrateToNext();
    app.read<std::uint64_t>(buf);
    app.migrateToNext(); // back home; holders = {origin, remote}

    // Flood the origin's caches with reads elsewhere so the dirty
    // lines of the replicated page must be written back.
    std::uint64_t before = sys->dsmEngine()->writebackActions();
    for (Addr a = pageSize; a < 200 * pageSize; a += cacheLineSize)
        app.read<std::uint64_t>(buf + a);
    EXPECT_GT(sys->dsmEngine()->writebackActions(), before);
}

TEST(WritebackInterplay, UnsharedPagesDoNotTrigger)
{
    auto sys = tinyCacheSystem();
    App app(*sys, 0);
    Addr buf = app.mmap(256 * pageSize);

    // Never migrated, never replicated: flooding the cache with
    // dirty lines must not produce any DSM writeback actions.
    for (Addr a = 0; a < 200 * pageSize; a += cacheLineSize)
        app.write<std::uint64_t>(buf + a, a);
    EXPECT_EQ(sys->dsmEngine()->writebackActions(), 0u);
}

TEST(WritebackInterplay, ReplicaInstallLeavesCleanLines)
{
    // The DSM install writes through; the replica's lines must be
    // clean (Exclusive) so they do not masquerade as dirty data.
    SystemConfig cfg;
    cfg.osDesign = OsDesign::MultipleKernel;
    cfg.memoryModel = MemoryModel::Shared;
    System sys(cfg);
    App app(sys, 0);
    Addr buf = app.mmap(pageSize);
    app.write<std::uint64_t>(buf, 7);
    app.migrateToNext();
    app.read<std::uint64_t>(buf); // replicates to node 1

    Pid pid = app.pid();
    auto w = sys.kernel(1).task(pid).as->pageTable().walk(buf);
    ASSERT_TRUE(w.has_value());
    Mesi state =
        sys.machine().caches().hierarchy(1).lineState(w->pte.frame);
    EXPECT_TRUE(state == Mesi::Exclusive || state == Mesi::Invalid)
        << mesiName(state);
}
