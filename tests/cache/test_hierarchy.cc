#include <gtest/gtest.h>

#include "stramash/cache/hierarchy.hh"
#include "stramash/common/units.hh"

using namespace stramash;

namespace
{

HierarchyGeometry
smallGeom()
{
    HierarchyGeometry g;
    g.l1i = {1_KiB, 2};
    g.l1d = {1_KiB, 2};
    g.l2 = {4_KiB, 4};
    g.l3 = {16_KiB, 4};
    return g;
}

} // namespace

TEST(HierarchyGeometry, PaperDefaultShape)
{
    auto g = HierarchyGeometry::paperDefault(4_MiB);
    EXPECT_EQ(g.l1i.sizeBytes, 32_KiB);
    EXPECT_EQ(g.l1d.sizeBytes, 32_KiB);
    EXPECT_EQ(g.l2.sizeBytes, 1_MiB);
    EXPECT_EQ(g.l3.sizeBytes, 4_MiB);
}

TEST(CacheHierarchy, FillThenHitAtL1)
{
    StatGroup stats("h");
    CacheHierarchy h(0, smallGeom(), stats);
    EXPECT_EQ(h.lookup(0x1000, false), HitLevel::Memory);
    h.fill(0x1000, Mesi::Exclusive, false, nullptr);
    EXPECT_EQ(h.lookup(0x1000, false), HitLevel::L1);
    EXPECT_EQ(stats.value("l1_hits"), 1u);
    EXPECT_EQ(stats.value("l1_accesses"), 2u);
}

TEST(CacheHierarchy, InstFetchFillsL1I)
{
    StatGroup stats("h");
    CacheHierarchy h(0, smallGeom(), stats);
    h.fill(0x2000, Mesi::Exclusive, true, nullptr);
    EXPECT_TRUE(h.l1i().holds(0x2000));
    EXPECT_FALSE(h.l1d().holds(0x2000));
    EXPECT_EQ(h.lookup(0x2000, true), HitLevel::L1);
    // A data access to the same line hits in L2 and gets promoted
    // into L1D.
    EXPECT_EQ(h.lookup(0x2000, false), HitLevel::L2);
    EXPECT_TRUE(h.l1d().holds(0x2000));
}

TEST(CacheHierarchy, PromotionFromL2AndL3)
{
    StatGroup stats("h");
    CacheHierarchy h(0, smallGeom(), stats);
    h.fill(0x3000, Mesi::Exclusive, false, nullptr);
    // Evict from L1 (2 ways per set in 1 KiB/2-way = 8 sets): lines
    // 8*64 apart collide in L1, but not in the larger L2.
    Addr l1Stride = (1_KiB / 2);
    h.fill(0x3000 + l1Stride, Mesi::Exclusive, false, nullptr);
    h.fill(0x3000 + 2 * l1Stride, Mesi::Exclusive, false, nullptr);
    EXPECT_FALSE(h.l1d().holds(0x3000));
    // Next access hits L2 and promotes back to L1.
    EXPECT_EQ(h.lookup(0x3000, false), HitLevel::L2);
    EXPECT_TRUE(h.l1d().holds(0x3000));
}

TEST(CacheHierarchy, LastLevelEvictionBackInvalidatesInner)
{
    StatGroup stats("h");
    HierarchyGeometry g = smallGeom();
    g.l3 = {1_KiB, 1}; // 16 sets, direct-mapped: easy conflicts
    CacheHierarchy h(0, g, stats);
    Addr stride = 1_KiB;
    std::vector<Addr> evicted;
    auto onEvict = [&](Addr a, bool, bool) { evicted.push_back(a); };
    h.fill(0x0, Mesi::Exclusive, false, onEvict);
    EXPECT_TRUE(h.l1d().holds(0x0));
    h.fill(stride, Mesi::Exclusive, false, onEvict);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 0x0u);
    // Inclusion: the inner copies disappeared too.
    EXPECT_FALSE(h.holds(0x0));
}

TEST(CacheHierarchy, DirtyEvictionReported)
{
    StatGroup stats("h");
    HierarchyGeometry g = smallGeom();
    g.l3 = {1_KiB, 1};
    CacheHierarchy h(0, g, stats);
    bool sawDirty = false;
    auto onEvict = [&](Addr, bool dirty, bool) { sawDirty = dirty; };
    h.fill(0x0, Mesi::Modified, false, onEvict);
    h.fill(1_KiB, Mesi::Exclusive, false, onEvict);
    EXPECT_TRUE(sawDirty);
}

TEST(CacheHierarchy, StateQueriesAndTransitions)
{
    StatGroup stats("h");
    CacheHierarchy h(0, smallGeom(), stats);
    h.fill(0x4000, Mesi::Exclusive, false, nullptr);
    EXPECT_EQ(h.lineState(0x4000), Mesi::Exclusive);
    h.setState(0x4000, Mesi::Modified);
    EXPECT_EQ(h.lineState(0x4000), Mesi::Modified);
    EXPECT_TRUE(h.downgradeLine(0x4000)); // was Modified
    EXPECT_EQ(h.lineState(0x4000), Mesi::Shared);
    EXPECT_FALSE(h.downgradeLine(0x4000)); // already Shared
    EXPECT_FALSE(h.invalidateLine(0x4000)); // Shared, not dirty
    EXPECT_FALSE(h.holds(0x4000));
}

TEST(CacheHierarchy, InvalidateDirtyLineReportsDirty)
{
    StatGroup stats("h");
    CacheHierarchy h(0, smallGeom(), stats);
    h.fill(0x5000, Mesi::Modified, false, nullptr);
    EXPECT_TRUE(h.invalidateLine(0x5000));
}

TEST(CacheHierarchy, NoL3Works)
{
    StatGroup stats("h");
    HierarchyGeometry g = smallGeom();
    g.l3.sizeBytes = 0; // Cortex-A72 style
    CacheHierarchy h(0, g, stats);
    EXPECT_FALSE(h.hasL3());
    h.fill(0x6000, Mesi::Exclusive, false, nullptr);
    EXPECT_EQ(h.lookup(0x6000, false), HitLevel::L1);
    EXPECT_EQ(stats.value("l3_accesses"), 0u);
}

TEST(CacheHierarchy, FlushAllEmptiesEverything)
{
    StatGroup stats("h");
    CacheHierarchy h(0, smallGeom(), stats);
    for (Addr a = 0; a < 16 * 64; a += 64)
        h.fill(a, Mesi::Exclusive, false, nullptr);
    h.flushAll();
    for (Addr a = 0; a < 16 * 64; a += 64)
        EXPECT_FALSE(h.holds(a));
}
