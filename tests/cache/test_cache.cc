#include <gtest/gtest.h>

#include "stramash/cache/cache.hh"
#include "stramash/common/units.hh"

using namespace stramash;

namespace
{

CacheGeometry
tinyCache(unsigned ways = 2, Addr sets = 4)
{
    return {sets * ways * cacheLineSize, ways};
}

} // namespace

TEST(CacheGeometry, SetMath)
{
    CacheGeometry g{32_KiB, 8};
    EXPECT_EQ(g.numSets(), 32_KiB / (8 * 64));
}

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c(tinyCache());
    EXPECT_EQ(c.probe(0x1000), nullptr);
    c.insert(0x1000, Mesi::Exclusive);
    auto *l = c.probe(0x1000);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->state, Mesi::Exclusive);
    EXPECT_EQ(c.validCount(), 1u);
}

TEST(SetAssocCache, SameSetEvictsLru)
{
    // 2-way, 4 sets: addresses 4 sets * 64 B apart collide.
    SetAssocCache c(tinyCache(2, 4));
    Addr stride = 4 * 64;
    c.insert(0 * stride, Mesi::Exclusive);
    c.insert(1 * stride, Mesi::Exclusive);
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_NE(c.probe(0 * stride), nullptr);
    auto victim = c.insert(2 * stride, Mesi::Exclusive);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->lineAddr, 1 * stride);
    EXPECT_FALSE(victim->dirty);
    EXPECT_TRUE(c.holds(0 * stride));
    EXPECT_FALSE(c.holds(1 * stride));
    EXPECT_TRUE(c.holds(2 * stride));
}

TEST(SetAssocCache, DirtyVictimReported)
{
    SetAssocCache c(tinyCache(1, 4));
    Addr stride = 4 * 64;
    c.insert(0, Mesi::Modified);
    auto victim = c.insert(stride, Mesi::Exclusive);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->dirty);
    EXPECT_EQ(victim->lineAddr, 0u);
}

TEST(SetAssocCache, InsertExistingUpdatesState)
{
    SetAssocCache c(tinyCache());
    c.insert(0x40, Mesi::Shared);
    auto victim = c.insert(0x40, Mesi::Modified);
    EXPECT_FALSE(victim.has_value());
    EXPECT_EQ(c.peek(0x40)->state, Mesi::Modified);
    EXPECT_EQ(c.validCount(), 1u);
}

TEST(SetAssocCache, InvalidateReturnsPreviousState)
{
    SetAssocCache c(tinyCache());
    c.insert(0x80, Mesi::Modified);
    EXPECT_EQ(c.invalidate(0x80), Mesi::Modified);
    EXPECT_EQ(c.invalidate(0x80), Mesi::Invalid);
    EXPECT_FALSE(c.holds(0x80));
}

TEST(SetAssocCache, PeekDoesNotRefreshLru)
{
    SetAssocCache c(tinyCache(2, 1));
    c.insert(0x0, Mesi::Exclusive);
    c.insert(0x40, Mesi::Exclusive);
    // Peek at line 0 (no LRU refresh): it stays LRU and is evicted.
    EXPECT_NE(c.peek(0x0), nullptr);
    auto victim = c.insert(0x80, Mesi::Exclusive);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->lineAddr, 0x0u);
}

TEST(SetAssocCache, UnalignedAddressesShareLine)
{
    SetAssocCache c(tinyCache());
    c.insert(0x1000, Mesi::Exclusive);
    EXPECT_TRUE(c.holds(0x103f));
    EXPECT_FALSE(c.holds(0x1040));
    EXPECT_EQ(c.lineAddrOf(0x107f), 0x1040u);
}

TEST(SetAssocCache, FlushAll)
{
    SetAssocCache c(tinyCache());
    for (Addr a = 0; a < 8 * 64; a += 64)
        c.insert(a, Mesi::Shared);
    EXPECT_GT(c.validCount(), 0u);
    c.flushAll();
    EXPECT_EQ(c.validCount(), 0u);
}

TEST(SetAssocCacheDeath, BadGeometry)
{
    // Every geometry field must be a power of two, or set indexing
    // would silently alias; the constructor fails loudly instead.
    EXPECT_DEATH(SetAssocCache({100, 2}), "power of two");
    EXPECT_DEATH(SetAssocCache({1024, 0}), "way count");
    EXPECT_DEATH(SetAssocCache({1024, 3}), "way count");
    EXPECT_DEATH(SetAssocCache({0, 2}), "cache size");
    EXPECT_DEATH(SetAssocCache({1024, 2, 48}), "line size");
    // Too small to hold even one full set.
    EXPECT_DEATH(SetAssocCache({128, 4}), "cannot hold one set");
}

TEST(SetAssocCache, CachedGeometryMatchesComputed)
{
    SetAssocCache c({32_KiB, 8});
    EXPECT_EQ(c.numSets(), c.geometry().numSets());
    EXPECT_EQ(c.numSets(), 64u);
}

TEST(Mesi, Names)
{
    EXPECT_STREQ(mesiName(Mesi::Invalid), "I");
    EXPECT_STREQ(mesiName(Mesi::Shared), "S");
    EXPECT_STREQ(mesiName(Mesi::Exclusive), "E");
    EXPECT_STREQ(mesiName(Mesi::Modified), "M");
}
