#include <gtest/gtest.h>

#include "stramash/cache/coherence.hh"
#include "stramash/common/units.hh"

using namespace stramash;

namespace
{

class CoherenceTest : public testing::Test
{
  protected:
    void
    build(MemoryModel model, bool sharedLlc = false)
    {
        map_ = std::make_unique<PhysMap>(PhysMap::paperDefault(model));
        CacheGeometry shared{4_MiB, 16};
        domain_ = std::make_unique<CoherenceDomain>(
            *map_, SnoopCosts{}, sharedLlc ? &shared : nullptr);
        auto geom = HierarchyGeometry::paperDefault(4_MiB);
        domain_->addNode(0, geom, latencyProfile(CoreModel::XeonGold));
        domain_->addNode(1, geom, latencyProfile(CoreModel::ThunderX2));
    }

    std::unique_ptr<PhysMap> map_;
    std::unique_ptr<CoherenceDomain> domain_;
};

} // namespace

TEST_F(CoherenceTest, ColdMissPaysLocalMemoryLatency)
{
    build(MemoryModel::Separated);
    auto r = domain_->accessLine(0, AccessType::Load, 0x1000);
    EXPECT_EQ(r.level, HitLevel::Memory);
    EXPECT_EQ(r.memClass, MemoryClass::Local);
    EXPECT_EQ(r.latency, latencyProfile(CoreModel::XeonGold).mem);
}

TEST_F(CoherenceTest, RemoteMissPaysRemoteLatency)
{
    build(MemoryModel::Separated);
    // Node 0 (x86) touching Arm-home memory at 2 GiB.
    auto r = domain_->accessLine(0, AccessType::Load, 2_GiB);
    EXPECT_EQ(r.memClass, MemoryClass::Remote);
    EXPECT_EQ(r.latency,
              latencyProfile(CoreModel::XeonGold).remoteMem);
}

TEST_F(CoherenceTest, SharedPoolCountsSeparately)
{
    build(MemoryModel::Shared);
    domain_->accessLine(1, AccessType::Load, 5_GiB);
    EXPECT_EQ(domain_->nodeStats(1).value("remote_shared_mem_hits"),
              1u);
    EXPECT_EQ(domain_->nodeStats(1).value("remote_mem_hits"), 0u);
}

TEST_F(CoherenceTest, HitAfterFill)
{
    build(MemoryModel::Separated);
    domain_->accessLine(0, AccessType::Load, 0x1000);
    auto r = domain_->accessLine(0, AccessType::Load, 0x1000);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(r.latency, latencyProfile(CoreModel::XeonGold).l1);
}

TEST_F(CoherenceTest, LoadInstallsExclusiveThenSharedOnOtherReader)
{
    build(MemoryModel::FullyShared);
    domain_->accessLine(0, AccessType::Load, 0x1000);
    EXPECT_EQ(domain_->hierarchy(0).lineState(0x1000),
              Mesi::Exclusive);
    auto r = domain_->accessLine(1, AccessType::Load, 0x1000);
    // Reader snoops the Exclusive holder: Snoop Data + downgrade.
    EXPECT_TRUE(r.snoopData);
    EXPECT_EQ(domain_->hierarchy(0).lineState(0x1000), Mesi::Shared);
    EXPECT_EQ(domain_->nodeStats(1).value("snoop_datas"), 1u);
}

TEST_F(CoherenceTest, StoreInvalidatesOtherHolder)
{
    build(MemoryModel::FullyShared);
    domain_->accessLine(0, AccessType::Load, 0x2000);
    auto r = domain_->accessLine(1, AccessType::Store, 0x2000);
    EXPECT_TRUE(r.snoopInvalidate);
    EXPECT_FALSE(domain_->hierarchy(0).holds(0x2000));
    EXPECT_EQ(domain_->hierarchy(1).lineState(0x2000), Mesi::Modified);
    EXPECT_EQ(domain_->nodeStats(1).value("snoop_invalidates"), 1u);
}

TEST_F(CoherenceTest, StoreUpgradeFromSharedSnoopsOthers)
{
    build(MemoryModel::FullyShared);
    domain_->accessLine(0, AccessType::Load, 0x3000);
    domain_->accessLine(1, AccessType::Load, 0x3000); // both Shared
    auto r = domain_->accessLine(0, AccessType::Store, 0x3000);
    EXPECT_NE(r.level, HitLevel::Memory); // hit, upgrade in place
    EXPECT_TRUE(r.snoopInvalidate);
    EXPECT_FALSE(domain_->hierarchy(1).holds(0x3000));
    EXPECT_EQ(domain_->hierarchy(0).lineState(0x3000), Mesi::Modified);
}

TEST_F(CoherenceTest, StoreToOwnModifiedLineIsCheap)
{
    build(MemoryModel::FullyShared);
    domain_->accessLine(0, AccessType::Store, 0x4000);
    auto r = domain_->accessLine(0, AccessType::Store, 0x4000);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_FALSE(r.snoopInvalidate);
    EXPECT_EQ(r.latency, latencyProfile(CoreModel::XeonGold).l1);
}

TEST_F(CoherenceTest, ReadOfDirtyRemoteLineGetsSnoopDataCost)
{
    build(MemoryModel::Separated);
    domain_->accessLine(1, AccessType::Store, 2_GiB); // Arm dirties
    auto r = domain_->accessLine(0, AccessType::Load, 2_GiB);
    EXPECT_TRUE(r.snoopData);
    EXPECT_EQ(r.latency,
              latencyProfile(CoreModel::XeonGold).remoteMem +
                  domain_->snoopCosts().snoopData);
    // Fill state must be Shared since the other node keeps a copy.
    EXPECT_EQ(domain_->hierarchy(0).lineState(2_GiB), Mesi::Shared);
    EXPECT_EQ(domain_->hierarchy(1).lineState(2_GiB), Mesi::Shared);
}

TEST_F(CoherenceTest, WritebackHookFiresOnDirtyInvalidation)
{
    build(MemoryModel::FullyShared);
    std::vector<std::pair<NodeId, Addr>> writebacks;
    domain_->setWritebackHook([&](NodeId n, Addr a) {
        writebacks.emplace_back(n, a);
    });
    domain_->accessLine(0, AccessType::Store, 0x5000);
    domain_->accessLine(1, AccessType::Store, 0x5000);
    ASSERT_EQ(writebacks.size(), 1u);
    EXPECT_EQ(writebacks[0].first, 0u);
    EXPECT_EQ(writebacks[0].second, 0x5000u);
}

TEST_F(CoherenceTest, MultiLineAccessAccumulatesLatency)
{
    build(MemoryModel::Separated);
    // 256 bytes spanning 4 lines, plus one for misalignment.
    auto r = domain_->access(0, AccessType::Load, 0x1020, 256);
    Cycles mem = latencyProfile(CoreModel::XeonGold).mem;
    EXPECT_EQ(r.latency, 5 * mem);
}

TEST_F(CoherenceTest, SharedLlcServesBothNodes)
{
    build(MemoryModel::FullyShared, true);
    EXPECT_TRUE(domain_->hasSharedLlc());
    domain_->accessLine(0, AccessType::Load, 0x6000);
    // Evict node 0's private copies so only the shared LLC holds it.
    domain_->hierarchy(0).l1d().invalidate(0x6000);
    domain_->hierarchy(0).l2().invalidate(0x6000);
    auto r = domain_->accessLine(1, AccessType::Load, 0x6000);
    EXPECT_EQ(r.level, HitLevel::L3);
}

TEST_F(CoherenceTest, FlushAllResetsState)
{
    build(MemoryModel::FullyShared);
    domain_->accessLine(0, AccessType::Store, 0x7000);
    domain_->flushAll();
    EXPECT_FALSE(domain_->hierarchy(0).holds(0x7000));
    auto r = domain_->accessLine(0, AccessType::Load, 0x7000);
    EXPECT_EQ(r.level, HitLevel::Memory);
}

TEST_F(CoherenceTest, StatsTrackHitsAndAccesses)
{
    build(MemoryModel::Separated);
    for (int i = 0; i < 10; ++i)
        domain_->accessLine(0, AccessType::Load, 0x8000);
    auto &s = domain_->nodeStats(0);
    EXPECT_EQ(s.value("l1_accesses"), 10u);
    EXPECT_EQ(s.value("l1_hits"), 9u);
    EXPECT_EQ(s.value("mem_accesses"), 1u);
    EXPECT_EQ(s.value("local_mem_hits"), 1u);
}

TEST(CoherenceDeath, UnknownNodePanics)
{
    PhysMap map = PhysMap::paperDefault(MemoryModel::Separated);
    CoherenceDomain d(map, SnoopCosts{});
    EXPECT_DEATH(d.accessLine(3, AccessType::Load, 0x1000),
                 "unknown node");
}

TEST(CoherenceDeath, ZeroSizeAccessPanics)
{
    PhysMap map = PhysMap::paperDefault(MemoryModel::Separated);
    CoherenceDomain d(map, SnoopCosts{});
    d.addNode(0, HierarchyGeometry::paperDefault(4_MiB),
              latencyProfile(CoreModel::XeonGold));
    EXPECT_DEATH(d.access(0, AccessType::Load, 0x1000, 0),
                 "zero-size");
}
